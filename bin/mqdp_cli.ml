(* mqdp — command-line front-end for the multi-query diversification
   library: generate synthetic workloads, solve offline or streaming
   instances, and demo the NP-hardness reductions. *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let duration_arg =
  Arg.(
    value & opt float 600.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Stream duration in seconds.")

let rate_arg =
  Arg.(
    value & opt float 30.
    & info [ "rate" ] ~docv:"N" ~doc:"Matching posts per minute.")

let labels_arg =
  Arg.(
    value & opt int 5
    & info [ "labels"; "L" ] ~docv:"N" ~doc:"Number of labels (queries).")

let lambda_arg =
  Arg.(
    value & opt float 30.
    & info [ "lambda" ] ~docv:"SECONDS" ~doc:"Diversity threshold λ.")

let tau_arg =
  Arg.(
    value & opt float 10.
    & info [ "tau" ] ~docv:"SECONDS" ~doc:"Streaming reporting delay budget τ.")

let overlap_arg =
  Arg.(
    value & opt float 1.25
    & info [ "overlap" ] ~docv:"RATE"
        ~doc:"Target post overlap rate (mean labels per post), in [1, 3].")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel solver phases (default 1 = \
           sequential). The cover is identical for every N.")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Save the generated posts as TSV.")

let in_arg =
  Arg.(
    value & opt (some string) None
    & info [ "in"; "i" ] ~docv:"FILE"
        ~doc:"Load posts from a TSV file instead of generating them.")

let config ~seed ~duration ~rate ~labels ~overlap =
  let base =
    { (Workload.Direct_gen.default_config ~num_labels:labels ~seed) with
      duration;
      rate_per_min = rate }
  in
  Workload.Direct_gen.overlap_config ~base ~overlap

let print_instance_stats inst =
  Printf.printf "instance: %d posts, %d labels, overlap rate %.3f, s=%d\n"
    (Mqdp.Instance.size inst) (Mqdp.Instance.num_labels inst)
    (Mqdp.Instance.overlap_rate inst)
    (Mqdp.Instance.max_labels_per_post inst)

(* generate *)

let generate_cmd =
  let run seed duration rate labels overlap verbose out =
    let posts =
      Workload.Direct_gen.generate (config ~seed ~duration ~rate ~labels ~overlap)
    in
    let inst = Mqdp.Instance.create posts in
    print_instance_stats inst;
    (match out with
    | Some path ->
      Workload.Post_io.save path posts;
      Printf.printf "saved %d posts to %s\n" (List.length posts) path
    | None -> ());
    if verbose then
      Array.iter
        (fun p -> print_endline (Workload.Post_io.post_to_line p))
        (Mqdp.Instance.posts inst)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every post as TSV.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic labeled post stream.")
    Term.(
      const run $ seed_arg $ duration_arg $ rate_arg $ labels_arg $ overlap_arg
      $ verbose $ out_arg)

(* solve *)

let algorithm_arg =
  let parse s =
    match Mqdp.Solver.algorithm_of_string s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown algorithm %S (expected one of: %s)" s
              (String.concat ", "
                 (List.map Mqdp.Solver.algorithm_name Mqdp.Solver.all_algorithms))))
  in
  let print fmt a = Format.pp_print_string fmt (Mqdp.Solver.algorithm_name a) in
  Arg.(
    value
    & opt (conv (parse, print)) Mqdp.Solver.Greedy_sc
    & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"Algorithm to run.")

let load_or_generate ~input ~seed ~duration ~rate ~labels ~overlap =
  match input with
  | Some path -> begin
    match Workload.Post_io.load path with
    | posts -> Mqdp.Instance.create posts
    | exception Workload.Post_io.Parse_error { line; what } ->
      Printf.eprintf "%s:%d: %s\n" path line what;
      exit 1
  end
  | None -> Workload.Direct_gen.instance (config ~seed ~duration ~rate ~labels ~overlap)

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds. Routes the solve through the \
           supervisor's degradation ladder: when the requested algorithm \
           runs out of budget, progressively cheaper algorithms answer \
           (seeded with any salvaged partial cover), bottoming out at an \
           instant per-label pick. The answer is always a valid cover.")

let max_steps_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Deterministic work budget in solver steps (loop iterations). \
           Like --timeout-ms but reproducible: the same instance and budget \
           always degrade to the same rung.")

let expect_rung_arg =
  Arg.(
    value & opt (some string) None
    & info [ "expect-rung" ] ~docv:"NAME"
        ~doc:
          "Exit non-zero unless the named ladder rung (opt, greedy-sc, \
           scan+, instant, ...) produced the answer. For CI assertions.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write spans as Chrome-trace JSONL to \
           \\$(docv) (one complete event per line). Wrap the lines in \
           [...] to load the file in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable telemetry and print the counter/gauge/histogram registry \
           snapshot after the solve.")

(* Run [f] with telemetry enabled when --trace/--metrics ask for it; always
   restore the disabled/null-sink resting state, even if [f] raises. *)
let with_telemetry ~trace ~metrics f =
  if trace = None && not metrics then f ()
  else begin
    let oc = Option.map open_out trace in
    Option.iter (fun oc -> Util.Telemetry.set_sink (Util.Telemetry.Trace.to_channel oc)) oc;
    Util.Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        Util.Telemetry.disable ();
        Util.Telemetry.set_sink Util.Telemetry.null_sink;
        Option.iter close_out oc;
        Option.iter (Printf.printf "wrote trace events to %s\n") trace;
        if metrics then Util.Telemetry.print_snapshot stdout)
      f
  end

let save_cover out inst cover =
  match out with
  | Some path ->
    Workload.Post_io.save_cover path inst cover;
    Printf.printf "saved the cover to %s\n" path
  | None -> ()

let governed_solve ~jobs ~algorithm ~timeout_ms ~max_steps ~expect_rung inst
    lambda out =
  let budget =
    Util.Budget.create
      ?deadline:(Option.map (fun ms -> ms /. 1e3) timeout_ms)
      ?max_steps ()
  in
  let solve pool =
    Mqdp.Supervisor.solve ?pool ~budget
      ~ladder:(Mqdp.Supervisor.ladder_from algorithm)
      inst lambda
  in
  let report =
    if jobs = 1 then solve None
    else Util.Pool.with_pool ~jobs (fun pool -> solve (Some pool))
  in
  Printf.printf "%s\n" (Mqdp.Supervisor.describe report);
  Printf.printf
    "governed solve: answered by %s, cover size %d (%.2f%% of stream), %.2f \
     ms, valid=%b\n"
    report.Mqdp.Supervisor.answered_by report.Mqdp.Supervisor.size
    (100.
    *. float_of_int report.Mqdp.Supervisor.size
    /. float_of_int (max 1 (Mqdp.Instance.size inst)))
    (report.Mqdp.Supervisor.total_elapsed *. 1000.)
    (Mqdp.Coverage.is_cover inst lambda report.Mqdp.Supervisor.cover);
  save_cover out inst report.Mqdp.Supervisor.cover;
  match expect_rung with
  | Some rung when rung <> report.Mqdp.Supervisor.answered_by ->
    Printf.eprintf "expected rung %s to answer, got %s\n" rung
      report.Mqdp.Supervisor.answered_by;
    exit 1
  | _ -> ()

let solve_cmd =
  let run seed duration rate labels overlap lambda algorithm jobs timeout_ms
      max_steps expect_rung input out trace metrics =
    (if jobs < 1 then (
       Printf.eprintf "--jobs must be >= 1, got %d\n" jobs;
       exit 1));
    let inst = load_or_generate ~input ~seed ~duration ~rate ~labels ~overlap in
    print_instance_stats inst;
    let lambda = Mqdp.Coverage.Fixed lambda in
    with_telemetry ~trace ~metrics @@ fun () ->
    if timeout_ms <> None || max_steps <> None || expect_rung <> None then
      governed_solve ~jobs ~algorithm ~timeout_ms ~max_steps ~expect_rung inst
        lambda out
    else begin
      (* Compile explicitly so the trace separates the index build from the
         selection loop. *)
      let index = Mqdp.Solver.compile ~jobs inst lambda in
      let result = Mqdp.Solver.solve_compiled algorithm index in
      Printf.printf "%s: cover size %d (%.2f%% of stream), %.2f ms, valid=%b\n"
        (Mqdp.Solver.algorithm_name algorithm)
        result.Mqdp.Solver.size
        (100. *. float_of_int result.Mqdp.Solver.size
         /. float_of_int (max 1 (Mqdp.Instance.size inst)))
        (result.Mqdp.Solver.elapsed *. 1000.)
        (Mqdp.Coverage.is_cover inst lambda result.Mqdp.Solver.cover);
      save_cover out inst result.Mqdp.Solver.cover
    end
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve MQDP on a generated or loaded workload.")
    Term.(
      const run $ seed_arg $ duration_arg $ rate_arg $ labels_arg $ overlap_arg
      $ lambda_arg $ algorithm_arg $ jobs_arg $ timeout_arg $ max_steps_arg
      $ expect_rung_arg $ in_arg $ out_arg $ trace_arg $ metrics_arg)

(* stream *)

let streaming_algorithm_arg =
  let parse s =
    match Mqdp.Solver.streaming_algorithm_of_string s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown streaming algorithm %S (expected one of: %s)" s
              (String.concat ", "
                 (List.map Mqdp.Solver.streaming_algorithm_name
                    Mqdp.Solver.all_streaming_algorithms))))
  in
  let print fmt a =
    Format.pp_print_string fmt (Mqdp.Solver.streaming_algorithm_name a)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Mqdp.Solver.Stream_scan
    & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"Streaming algorithm to run.")

let stream_cmd =
  let run seed duration rate labels overlap lambda tau algorithm input =
    let inst = load_or_generate ~input ~seed ~duration ~rate ~labels ~overlap in
    print_instance_stats inst;
    let result =
      Mqdp.Solver.solve_stream algorithm ~tau inst (Mqdp.Coverage.Fixed lambda)
    in
    let delays = Mqdp.Stream.delays inst result.Mqdp.Solver.stream in
    Printf.printf "%s (λ=%gs τ=%gs): emitted %d posts, mean delay %.2fs, max %.2fs\n"
      (Mqdp.Solver.streaming_algorithm_name algorithm)
      lambda tau result.Mqdp.Solver.stream_size (Util.Stats.mean delays)
      (Array.fold_left max 0. delays)
  in
  Cmd.v
    (Cmd.info "stream" ~doc:"Run a streaming diversifier over a generated stream.")
    Term.(
      const run $ seed_arg $ duration_arg $ rate_arg $ labels_arg $ overlap_arg
      $ lambda_arg $ tau_arg $ streaming_algorithm_arg $ in_arg)

(* reduce *)

let reduce_cmd =
  let run num_vars num_clauses clause_size seed sound =
    let cnf =
      Sat.Cnf.random ~seed ~num_vars ~num_clauses ~clause_size
    in
    Format.printf "formula: %a@." Sat.Cnf.pp cnf;
    let reduction =
      if sound then Mqdp.Hardness.of_cnf_set_cover cnf else Mqdp.Hardness.of_cnf cnf
    in
    Printf.printf "reduction (%s): %d posts, %d labels, budget %d\n"
      (if sound then "set-cover" else "lemma-1")
      (Mqdp.Instance.size reduction.Mqdp.Hardness.instance)
      (Mqdp.Instance.num_labels reduction.Mqdp.Hardness.instance)
      reduction.Mqdp.Hardness.budget;
    let sat = Sat.Dpll.satisfiable cnf in
    let via = Mqdp.Hardness.satisfiable_via_cover reduction in
    Printf.printf "DPLL: %s; exact cover within budget: %s%s\n"
      (if sat then "satisfiable" else "unsatisfiable")
      (if via then "exists" else "does not exist")
      (if sat = via then " — reduction agrees"
       else " — reduction DISAGREES (the published Lemma 1 gap; see DESIGN.md)")
  in
  let num_vars =
    Arg.(value & opt int 3 & info [ "vars" ] ~docv:"N" ~doc:"Number of variables.")
  in
  let num_clauses =
    Arg.(value & opt int 4 & info [ "clauses" ] ~docv:"M" ~doc:"Number of clauses.")
  in
  let clause_size =
    Arg.(value & opt int 2 & info [ "clause-size" ] ~docv:"K" ~doc:"Literals per clause.")
  in
  let sound =
    Arg.(
      value & flag
      & info [ "sound" ]
          ~doc:"Use the sound set-cover reduction instead of the published Lemma 1.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Reduce a random CNF formula to MQDP and compare with DPLL.")
    Term.(const run $ num_vars $ num_clauses $ clause_size $ seed_arg $ sound)

(* spatial *)

let spatial_cmd =
  let run seed duration rate labels lambda radius =
    let config =
      { (Workload.Geo_gen.default_config ~num_labels:labels ~seed) with
        Workload.Geo_gen.duration;
        rate_per_min = rate }
    in
    let geo = Workload.Geo_gen.instance config in
    Printf.printf "instance: %d geotagged posts, %d labels\n"
      (Mqdp.Spatial.size geo) labels;
    let thresholds = { Mqdp.Spatial.lambda_time = lambda; radius_km = radius } in
    let cover, elapsed = Util.Timer.time_it (fun () -> Mqdp.Spatial.greedy geo thresholds) in
    Printf.printf
      "spatiotemporal greedy (λ=%gs, r=%gkm): %d posts (%.2f%%), %.2f ms, valid=%b\n"
      lambda radius (List.length cover)
      (100. *. float_of_int (List.length cover)
       /. float_of_int (max 1 (Mqdp.Spatial.size geo)))
      (elapsed *. 1000.)
      (Mqdp.Spatial.is_cover geo thresholds cover)
  in
  let radius =
    Arg.(
      value & opt float 50.
      & info [ "radius" ] ~docv:"KM" ~doc:"Geographic coverage radius in km.")
  in
  Cmd.v
    (Cmd.info "spatial"
       ~doc:"Solve spatiotemporal MQDP on a generated geotagged stream.")
    Term.(
      const run $ seed_arg $ duration_arg $ rate_arg $ labels_arg $ lambda_arg
      $ radius)

let main_cmd =
  let info =
    Cmd.info "mqdp" ~version:"1.0.0"
      ~doc:"Multi-query diversification of microblogging posts (EDBT 2014 reproduction)."
  in
  Cmd.group info [ generate_cmd; solve_cmd; stream_cmd; spatial_cmd; reduce_cmd ]

let () = exit (Cmd.eval main_cmd)
