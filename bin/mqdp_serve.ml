(* mqdp_serve — the crash-tolerant multi-tenant streaming daemon over
   Mqdp.Serve: line protocol on stdin (default) or a concurrent TCP
   event loop (--port) multiplexing many clients through per-connection
   Mqdp.Transport state machines, durable shard snapshots (--state-dir),
   and bulk ingestion of TSV post files through the streaming reader
   (--replay).

   usage: mqdp_serve [--port N] [--shards N] [--jobs N]
                     [--max-profiles N] [--degrade-above N]
                     [--queue-capacity N] [--tick-steps N] [--deadline S]
                     [--checkpoint-every N] [--max-restarts N]
                     [--overload-budget N] [--seq-cache N]
                     [--max-sessions N] [--session-ttl S]
                     [--max-conns N] [--idle-timeout S] [--max-line N]
                     [--state-dir DIR] [--replay FILE]
                     [--telemetry] [--trace FILE]

   Protocol: one `<seq> VERB args` request per line; responses echo the
   sequence number and end with `<seq> OK ...` or `<seq> ERR <code> ...`
   (see Serve's interface, and the ops runbook in README.md). Over TCP
   each connection has its own session (sequence space); opening with
   `HELLO <id>` binds a named session that survives reconnects — and,
   with --state-dir, daemon restarts: every executed command is appended
   to a durable session journal before its response leaves the process,
   so a kill -9 between execution and acknowledgment cannot make a
   retried command run twice (DESIGN.md §21).

   With --state-dir, durability works in epochs: CHECKPOINT/DRAIN (and
   clean shutdown) write a fresh epoch of shard snapshot files, then one
   atomic manifest write (shard count, epoch, journal watermark) commits
   the whole set, then the journal compacts down to per-session
   watermark + response-cache records. On boot the manifest picks the
   snapshot epoch to load and the journal replays on top — re-executing
   only the commands newer than the snapshots. The daemon refuses to
   load state written under a different --shards.

   SIGTERM/SIGINT trigger a graceful drain: stop accepting, serve every
   fully-received request, flush, close, write final snapshots, exit 0. *)

let state_file dir i epoch =
  Filename.concat dir
    (if epoch = 0 then Printf.sprintf "shard-%d.snap" i
     else Printf.sprintf "shard-%d.ep%d.snap" i epoch)

let manifest_file dir = Filename.concat dir "manifest"

(* The snapshot epoch the manifest last committed. Epoch 0 means "no
   epoch snapshots yet" (a fresh dir, or one written before epochs
   existed — its legacy shard-N.snap files still load). *)
let current_epoch = ref 0

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
    Printf.eprintf "mqdp_serve: cannot create state dir %s: %s\n%!" dir
      (Unix.error_message e);
    exit 1

(* One durability point, crash-safe at every step boundary:
   1. write the next epoch's shard snapshot files (a crash here leaves
      orphan files the old manifest never references);
   2. one atomic manifest write commits the new epoch AND the journal
      watermark it covers — multiple snapshot files cannot be collectively
      atomic, so this single rename is the commit point;
   3. compact the journal (safe now: every journaled command is inside
      the committed snapshots; a crash mid-compaction leaves the old,
      larger journal, which replays to the same state);
   4. remove the previous epoch's files (pure space reclamation). *)
let persist serve = function
  | None -> ()
  | Some dir ->
    let next = !current_epoch + 1 in
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      Util.Fs.atomic_write ~path:(state_file dir i next)
        (Mqdp.Serve.shard_snapshot serve i)
    done;
    let covered = Mqdp.Serve.journal_gsn serve in
    Util.Fs.atomic_write ~path:(manifest_file dir)
      (Mqdp.Serve.manifest ~extra:[ ("epoch", next); ("journal", covered) ] serve);
    Mqdp.Serve.compact_journal serve;
    let old = !current_epoch in
    current_epoch := next;
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      Util.Fs.remove_if_exists (state_file dir i old)
    done

(* Loading a state dir under the wrong --shards would silently re-hash
   profile names onto different shards: snapshots would load but every
   misplaced profile's durable state would be orphaned. Refuse loudly. *)
(* Returns the (epoch, covered-journal-watermark) pair the manifest
   committed; writes a fresh epoch-0 manifest into an empty dir. *)
let check_manifest serve dir =
  let path = manifest_file dir in
  if Sys.file_exists path then begin
    let content = Util.Fs.read path in
    match Mqdp.Serve.parse_manifest content with
    | Ok n when n = Mqdp.Serve.shard_count serve ->
      ( Option.value ~default:0 (Mqdp.Serve.manifest_field content "epoch"),
        Option.value ~default:0 (Mqdp.Serve.manifest_field content "journal") )
    | Ok n ->
      Printf.eprintf
        "mqdp_serve: state dir %s was written with --shards %d, but this \
         daemon is running with --shards %d.\n\
         Loading would misplace every profile whose name hashes to a \
         different shard. Re-run with --shards %d, or point --state-dir at \
         a fresh directory.\n%!"
        dir n (Mqdp.Serve.shard_count serve) n;
      exit 2
    | Error why ->
      Printf.eprintf
        "mqdp_serve: state dir %s has an unreadable manifest (%s); refusing \
         to guess its shard count. Remove %s only if you are certain the \
         snapshots match --shards %d.\n%!"
        dir why path (Mqdp.Serve.shard_count serve);
      exit 2
  end
  else begin
    Util.Fs.atomic_write ~path
      (Mqdp.Serve.manifest ~extra:[ ("epoch", 0); ("journal", 0) ] serve);
    (0, 0)
  end

let load_state serve = function
  | None -> ()
  | Some dir ->
    (* Stale temp siblings are debris of a writer killed mid-write; no
       writer is live yet, so sweeping them is safe exactly here. *)
    let swept = Util.Fs.sweep_temps dir in
    if swept > 0 then
      Printf.eprintf "mqdp_serve: swept %d stale temp file(s) from %s\n%!" swept
        dir;
    let epoch, covered = check_manifest serve dir in
    current_epoch := epoch;
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      let path = state_file dir i epoch in
      if Sys.file_exists path then
        match Mqdp.Serve.load_shard serve i (Util.Fs.read path) with
        | () -> Printf.eprintf "mqdp_serve: restored shard %d from %s\n%!" i path
        | exception Mqdp.Shard.Corrupt what ->
          Printf.eprintf "mqdp_serve: shard %d snapshot corrupt (%s), starting empty\n%!"
            i what
    done;
    (* Journal replay: rebuild session watermarks + response caches, and
       redo the commands newer than the snapshots just loaded. *)
    match Mqdp.Serve.attach_journal serve ~dir ~covered with
    | () ->
      if Mqdp.Serve.journal_gsn serve > covered then
        Printf.eprintf
          "mqdp_serve: replayed session journal (%d command(s) redone)\n%!"
          (Mqdp.Serve.journal_gsn serve - covered)
    | exception Util.Fs.Journal.Corrupt what ->
      Printf.eprintf
        "mqdp_serve: session journal corrupt (%s); refusing to guess which \
         acknowledged commands it held. Remove %s only if duplicate \
         re-execution of retried commands is acceptable.\n%!"
        what
        (Filename.concat dir "sessions.journal");
      exit 2

let serve_channel serve state_dir ic oc =
  try
    while true do
      let line = input_line ic in
      List.iter (fun r -> output_string oc (r ^ "\n")) (Mqdp.Serve.exec serve line);
      flush oc;
      (* Durability points become durable the moment the client asked for
         them, not at shutdown: a kill between CHECKPOINT/DRAIN and exit
         must not lose them. *)
      if Mqdp.Serve.is_durability_point_line line then persist serve state_dir
    done
  with End_of_file -> ()

let replay serve path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* Number above the default session's recovered watermark: a journal
         replay may already have executed sequences a previous run's
         replay or stdin client issued. *)
      let seq =
        ref (Mqdp.Serve.session_seq (Mqdp.Serve.default_session serve))
      in
      let exec fmt =
        Printf.ksprintf
          (fun cmd ->
            incr seq;
            ignore (Mqdp.Serve.exec serve (Printf.sprintf "%d %s" !seq cmd)))
          fmt
      in
      let fed = ref 0 in
      let skipped =
        Workload.Post_io.iter_channel ~lenient:true ic ~f:(fun p ->
            exec "FEED %d %.17g %s" p.Mqdp.Post.id p.Mqdp.Post.value
              (match Mqdp.Label_set.to_list p.Mqdp.Post.labels with
              | [] -> "-"
              | ls -> String.concat "," (List.map string_of_int ls));
            incr fed;
            if !fed mod 256 = 0 then exec "TICK")
      in
      exec "TICK";
      Printf.eprintf
        "mqdp_serve: replayed %d posts from %s (%d skipped); next sequence %d\n%!"
        !fed path skipped (!seq + 1);
      !seq)

let tcp_loop serve state_dir ~port ~server_config =
  let server = Net.Server.create ~config:server_config ~port serve in
  let request_drain _signal = Net.Server.drain server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
  Printf.eprintf
    "mqdp_serve: listening on port %d (max %d connections, idle timeout %s)\n%!"
    (Net.Server.port server) server_config.Net.Server.max_connections
    (match server_config.Net.Server.transport.Mqdp.Transport.idle_timeout with
    | None -> "off"
    | Some s -> Printf.sprintf "%gs" s);
  Net.Server.run ~on_checkpoint:(fun () -> persist serve state_dir) server;
  let s = Net.Server.stats server in
  Printf.eprintf
    "mqdp_serve: drained (%d requests over %d connections; shed %d, idle %d, \
     oversized %d, reset %d)\n%!"
    s.Net.Server.requests s.Net.Server.accepted s.Net.Server.shed
    s.Net.Server.closed_idle s.Net.Server.closed_too_long s.Net.Server.closed_reset

let () =
  (* A client vanishing mid-response must cost a write error on its
     connection, never the process — also covers the stdin transport when
     the driving pipe closes early. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let config = ref Mqdp.Serve.default_config in
  let port = ref 0 in
  let max_conns = ref Net.Server.default_config.Net.Server.max_connections in
  let idle_timeout =
    ref
      (match Mqdp.Transport.default_config.Mqdp.Transport.idle_timeout with
      | Some s -> s
      | None -> 0.)
  in
  let max_line = ref Mqdp.Transport.default_config.Mqdp.Transport.max_line in
  let state_dir = ref None in
  let replay_file = ref None in
  let trace_file = ref None in
  let set f = Arg.Int (fun v -> config := f !config v) in
  let args =
    [
      ("--port", Arg.Set_int port, "N  listen on TCP port N (default: stdin)");
      ("--shards", set (fun c v -> { c with Mqdp.Serve.shards = v }), "N  failure domains");
      ("--jobs", set (fun c v -> { c with Mqdp.Serve.jobs = v }), "N  pool width for TICK");
      ( "--max-profiles",
        set (fun c v -> { c with Mqdp.Serve.max_profiles = v }),
        "N  hard admission ceiling" );
      ( "--degrade-above",
        set (fun c v -> { c with Mqdp.Serve.degrade_above = v }),
        "N  admit degraded beyond this" );
      ( "--queue-capacity",
        set (fun c v -> { c with Mqdp.Serve.queue_capacity = v }),
        "N  per-shard pending-post bound" );
      ( "--tick-steps",
        set (fun c v -> { c with Mqdp.Serve.tick_steps = Some v }),
        "N  per-shard step budget per TICK" );
      ( "--deadline",
        Arg.Float
          (fun v -> config := { !config with Mqdp.Serve.request_deadline = Some v }),
        "S  per-request deadline, seconds" );
      ( "--checkpoint-every",
        set (fun c v -> { c with Mqdp.Serve.checkpoint_every = v }),
        "N  per-profile auto-checkpoint period" );
      ( "--max-restarts",
        set (fun c v -> { c with Mqdp.Serve.max_restarts = v }),
        "N  profile crashes before quarantine" );
      ( "--overload-budget",
        set (fun c v -> { c with Mqdp.Serve.overload_budget = Some v }),
        "N  feed degradation threshold" );
      ( "--seq-cache",
        set (fun c v -> { c with Mqdp.Serve.seq_cache = v }),
        "N  retried-response window" );
      ( "--max-sessions",
        set (fun c v -> { c with Mqdp.Serve.max_sessions = v }),
        "N  named-session ceiling (LRU eviction beyond it)" );
      ( "--session-ttl",
        Arg.Float
          (fun v -> config := { !config with Mqdp.Serve.session_ttl = Some v }),
        "S  evict named sessions idle this long" );
      ( "--max-conns",
        Arg.Set_int max_conns,
        "N  concurrent-connection ceiling (beyond it: 0 ERR capacity)" );
      ( "--idle-timeout",
        Arg.Set_float idle_timeout,
        "S  close connections idle this long (0: never)" );
      ( "--max-line",
        Arg.Set_int max_line,
        "N  request-framing cap, bytes (0 ERR line-too-long beyond it)" );
      ( "--state-dir",
        Arg.String (fun d -> state_dir := Some d),
        "DIR  durable shard snapshots" );
      ( "--replay",
        Arg.String (fun f -> replay_file := Some f),
        "FILE  bulk-feed a TSV post file at startup" );
      ( "--telemetry",
        Arg.Unit (fun () -> Util.Telemetry.enable ()),
        "  enable metrics (STATS reports them)" );
      ( "--trace",
        Arg.String (fun f -> trace_file := Some f),
        "FILE  write a Chrome-trace span log" );
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "mqdp_serve [options]";
  (match !trace_file with
  | None -> ()
  | Some f ->
    Util.Telemetry.enable ();
    Util.Telemetry.set_sink (Util.Telemetry.Trace.to_channel (open_out f)));
  let serve = Mqdp.Serve.create !config in
  Option.iter ensure_dir !state_dir;
  load_state serve !state_dir;
  ignore (Option.map (replay serve) !replay_file);
  (if !port > 0 then begin
     let transport =
       {
         Mqdp.Transport.default_config with
         Mqdp.Transport.max_line = !max_line;
         idle_timeout = (if !idle_timeout <= 0. then None else Some !idle_timeout);
       }
     in
     let server_config =
       { Net.Server.default_config with Net.Server.max_connections = !max_conns; transport }
     in
     tcp_loop serve !state_dir ~port:!port ~server_config
   end
   else serve_channel serve !state_dir stdin stdout);
  (* Final durability point: exit snapshots hold everything, and the
     compaction inside [persist] drops the redo records so the next boot
     does not re-execute commands the snapshots already contain. *)
  persist serve !state_dir;
  Mqdp.Serve.shutdown serve
