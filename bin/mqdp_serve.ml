(* mqdp_serve — the crash-tolerant multi-tenant streaming daemon over
   Mqdp.Serve: line protocol on stdin (default) or a concurrent TCP
   event loop (--port) multiplexing many clients through per-connection
   Mqdp.Transport state machines, durable shard snapshots (--state-dir),
   and bulk ingestion of TSV post files through the streaming reader
   (--replay).

   usage: mqdp_serve [--port N] [--shards N] [--jobs N]
                     [--max-profiles N] [--degrade-above N]
                     [--queue-capacity N] [--tick-steps N] [--deadline S]
                     [--checkpoint-every N] [--max-restarts N]
                     [--overload-budget N] [--seq-cache N]
                     [--max-conns N] [--idle-timeout S] [--max-line N]
                     [--state-dir DIR] [--replay FILE]
                     [--telemetry] [--trace FILE]

   Protocol: one `<seq> VERB args` request per line; responses echo the
   sequence number and end with `<seq> OK ...` or `<seq> ERR <code> ...`
   (see Serve's interface, and the ops runbook in README.md). Over TCP
   each connection has its own session (sequence space); opening with
   `HELLO <id>` binds a named session that survives reconnects. With
   --state-dir, shard snapshots are written crash-safely (temp + fsync +
   rename) after every CHECKPOINT command and at shutdown, and reloaded
   on startup; a manifest records the shard count and the daemon refuses
   to load state written under a different --shards.

   SIGTERM/SIGINT trigger a graceful drain: stop accepting, serve every
   fully-received request, flush, close, write final snapshots, exit 0. *)

let state_file dir i = Filename.concat dir (Printf.sprintf "shard-%d.snap" i)
let manifest_file dir = Filename.concat dir "manifest"

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
    Printf.eprintf "mqdp_serve: cannot create state dir %s: %s\n%!" dir
      (Unix.error_message e);
    exit 1

let save_state serve = function
  | None -> ()
  | Some dir ->
    Util.Fs.atomic_write ~path:(manifest_file dir) (Mqdp.Serve.manifest serve);
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      Util.Fs.atomic_write ~path:(state_file dir i) (Mqdp.Serve.shard_snapshot serve i)
    done

(* Loading a state dir under the wrong --shards would silently re-hash
   profile names onto different shards: snapshots would load but every
   misplaced profile's durable state would be orphaned. Refuse loudly. *)
let check_manifest serve dir =
  let path = manifest_file dir in
  if Sys.file_exists path then
    match Mqdp.Serve.parse_manifest (Util.Fs.read path) with
    | Ok n when n = Mqdp.Serve.shard_count serve -> ()
    | Ok n ->
      Printf.eprintf
        "mqdp_serve: state dir %s was written with --shards %d, but this \
         daemon is running with --shards %d.\n\
         Loading would misplace every profile whose name hashes to a \
         different shard. Re-run with --shards %d, or point --state-dir at \
         a fresh directory.\n%!"
        dir n (Mqdp.Serve.shard_count serve) n;
      exit 2
    | Error why ->
      Printf.eprintf
        "mqdp_serve: state dir %s has an unreadable manifest (%s); refusing \
         to guess its shard count. Remove %s only if you are certain the \
         snapshots match --shards %d.\n%!"
        dir why path (Mqdp.Serve.shard_count serve);
      exit 2
  else Util.Fs.atomic_write ~path (Mqdp.Serve.manifest serve)

let load_state serve = function
  | None -> ()
  | Some dir ->
    check_manifest serve dir;
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      let path = state_file dir i in
      if Sys.file_exists path then
        match Mqdp.Serve.load_shard serve i (Util.Fs.read path) with
        | () -> Printf.eprintf "mqdp_serve: restored shard %d from %s\n%!" i path
        | exception Mqdp.Shard.Corrupt what ->
          Printf.eprintf "mqdp_serve: shard %d snapshot corrupt (%s), starting empty\n%!"
            i what
    done

let serve_channel serve state_dir ic oc =
  try
    while true do
      let line = input_line ic in
      List.iter (fun r -> output_string oc (r ^ "\n")) (Mqdp.Serve.exec serve line);
      flush oc;
      (* Checkpoints become durable the moment the client asked for them,
         not at shutdown: a kill between CHECKPOINT and exit must not lose
         them. *)
      if Mqdp.Serve.is_checkpoint_line line then save_state serve state_dir
    done
  with End_of_file -> ()

let replay serve path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let seq = ref 0 in
      let exec fmt =
        Printf.ksprintf
          (fun cmd ->
            incr seq;
            ignore (Mqdp.Serve.exec serve (Printf.sprintf "%d %s" !seq cmd)))
          fmt
      in
      let fed = ref 0 in
      let skipped =
        Workload.Post_io.iter_channel ~lenient:true ic ~f:(fun p ->
            exec "FEED %d %.17g %s" p.Mqdp.Post.id p.Mqdp.Post.value
              (match Mqdp.Label_set.to_list p.Mqdp.Post.labels with
              | [] -> "-"
              | ls -> String.concat "," (List.map string_of_int ls));
            incr fed;
            if !fed mod 256 = 0 then exec "TICK")
      in
      exec "TICK";
      Printf.eprintf
        "mqdp_serve: replayed %d posts from %s (%d skipped); next sequence %d\n%!"
        !fed path skipped (!seq + 1);
      !seq)

let tcp_loop serve state_dir ~port ~server_config =
  let server = Net.Server.create ~config:server_config ~port serve in
  let request_drain _signal = Net.Server.drain server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
  Printf.eprintf
    "mqdp_serve: listening on port %d (max %d connections, idle timeout %s)\n%!"
    (Net.Server.port server) server_config.Net.Server.max_connections
    (match server_config.Net.Server.transport.Mqdp.Transport.idle_timeout with
    | None -> "off"
    | Some s -> Printf.sprintf "%gs" s);
  Net.Server.run ~on_checkpoint:(fun () -> save_state serve state_dir) server;
  let s = Net.Server.stats server in
  Printf.eprintf
    "mqdp_serve: drained (%d requests over %d connections; shed %d, idle %d, \
     oversized %d, reset %d)\n%!"
    s.Net.Server.requests s.Net.Server.accepted s.Net.Server.shed
    s.Net.Server.closed_idle s.Net.Server.closed_too_long s.Net.Server.closed_reset

let () =
  (* A client vanishing mid-response must cost a write error on its
     connection, never the process — also covers the stdin transport when
     the driving pipe closes early. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let config = ref Mqdp.Serve.default_config in
  let port = ref 0 in
  let max_conns = ref Net.Server.default_config.Net.Server.max_connections in
  let idle_timeout =
    ref
      (match Mqdp.Transport.default_config.Mqdp.Transport.idle_timeout with
      | Some s -> s
      | None -> 0.)
  in
  let max_line = ref Mqdp.Transport.default_config.Mqdp.Transport.max_line in
  let state_dir = ref None in
  let replay_file = ref None in
  let trace_file = ref None in
  let set f = Arg.Int (fun v -> config := f !config v) in
  let args =
    [
      ("--port", Arg.Set_int port, "N  listen on TCP port N (default: stdin)");
      ("--shards", set (fun c v -> { c with Mqdp.Serve.shards = v }), "N  failure domains");
      ("--jobs", set (fun c v -> { c with Mqdp.Serve.jobs = v }), "N  pool width for TICK");
      ( "--max-profiles",
        set (fun c v -> { c with Mqdp.Serve.max_profiles = v }),
        "N  hard admission ceiling" );
      ( "--degrade-above",
        set (fun c v -> { c with Mqdp.Serve.degrade_above = v }),
        "N  admit degraded beyond this" );
      ( "--queue-capacity",
        set (fun c v -> { c with Mqdp.Serve.queue_capacity = v }),
        "N  per-shard pending-post bound" );
      ( "--tick-steps",
        set (fun c v -> { c with Mqdp.Serve.tick_steps = Some v }),
        "N  per-shard step budget per TICK" );
      ( "--deadline",
        Arg.Float
          (fun v -> config := { !config with Mqdp.Serve.request_deadline = Some v }),
        "S  per-request deadline, seconds" );
      ( "--checkpoint-every",
        set (fun c v -> { c with Mqdp.Serve.checkpoint_every = v }),
        "N  per-profile auto-checkpoint period" );
      ( "--max-restarts",
        set (fun c v -> { c with Mqdp.Serve.max_restarts = v }),
        "N  profile crashes before quarantine" );
      ( "--overload-budget",
        set (fun c v -> { c with Mqdp.Serve.overload_budget = Some v }),
        "N  feed degradation threshold" );
      ( "--seq-cache",
        set (fun c v -> { c with Mqdp.Serve.seq_cache = v }),
        "N  retried-response window" );
      ( "--max-conns",
        Arg.Set_int max_conns,
        "N  concurrent-connection ceiling (beyond it: 0 ERR capacity)" );
      ( "--idle-timeout",
        Arg.Set_float idle_timeout,
        "S  close connections idle this long (0: never)" );
      ( "--max-line",
        Arg.Set_int max_line,
        "N  request-framing cap, bytes (0 ERR line-too-long beyond it)" );
      ( "--state-dir",
        Arg.String (fun d -> state_dir := Some d),
        "DIR  durable shard snapshots" );
      ( "--replay",
        Arg.String (fun f -> replay_file := Some f),
        "FILE  bulk-feed a TSV post file at startup" );
      ( "--telemetry",
        Arg.Unit (fun () -> Util.Telemetry.enable ()),
        "  enable metrics (STATS reports them)" );
      ( "--trace",
        Arg.String (fun f -> trace_file := Some f),
        "FILE  write a Chrome-trace span log" );
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "mqdp_serve [options]";
  (match !trace_file with
  | None -> ()
  | Some f ->
    Util.Telemetry.enable ();
    Util.Telemetry.set_sink (Util.Telemetry.Trace.to_channel (open_out f)));
  let serve = Mqdp.Serve.create !config in
  Option.iter ensure_dir !state_dir;
  load_state serve !state_dir;
  ignore (Option.map (replay serve) !replay_file);
  (if !port > 0 then begin
     let transport =
       {
         Mqdp.Transport.default_config with
         Mqdp.Transport.max_line = !max_line;
         idle_timeout = (if !idle_timeout <= 0. then None else Some !idle_timeout);
       }
     in
     let server_config =
       { Net.Server.default_config with Net.Server.max_connections = !max_conns; transport }
     in
     tcp_loop serve !state_dir ~port:!port ~server_config
   end
   else serve_channel serve !state_dir stdin stdout);
  save_state serve !state_dir;
  Mqdp.Serve.shutdown serve
