(* mqdp_serve — the crash-tolerant multi-tenant streaming daemon over
   Mqdp.Serve: line protocol on stdin (default) or an iterative TCP
   accept loop (--port), durable shard snapshots (--state-dir), and bulk
   ingestion of TSV post files through the streaming reader (--replay).

   usage: mqdp_serve [--port N] [--shards N] [--jobs N]
                     [--max-profiles N] [--degrade-above N]
                     [--queue-capacity N] [--tick-steps N] [--deadline S]
                     [--checkpoint-every N] [--max-restarts N]
                     [--overload-budget N] [--seq-cache N]
                     [--state-dir DIR] [--replay FILE]
                     [--telemetry] [--trace FILE]

   Protocol: one `<seq> VERB args` request per line; responses echo the
   sequence number and end with `<seq> OK ...` or `<seq> ERR <code> ...`
   (see Serve's interface, and the ops runbook in README.md). With
   --state-dir, shard snapshots are written crash-safely (temp + fsync +
   rename) after every CHECKPOINT command and at shutdown, and reloaded
   on startup. *)

let state_file dir i = Filename.concat dir (Printf.sprintf "shard-%d.snap" i)

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
    Printf.eprintf "mqdp_serve: cannot create state dir %s: %s\n%!" dir
      (Unix.error_message e);
    exit 1

let save_state serve = function
  | None -> ()
  | Some dir ->
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      Util.Fs.atomic_write ~path:(state_file dir i) (Mqdp.Serve.shard_snapshot serve i)
    done

let load_state serve = function
  | None -> ()
  | Some dir ->
    for i = 0 to Mqdp.Serve.shard_count serve - 1 do
      let path = state_file dir i in
      if Sys.file_exists path then
        match Mqdp.Serve.load_shard serve i (Util.Fs.read path) with
        | () -> Printf.eprintf "mqdp_serve: restored shard %d from %s\n%!" i path
        | exception Mqdp.Shard.Corrupt what ->
          Printf.eprintf "mqdp_serve: shard %d snapshot corrupt (%s), starting empty\n%!"
            i what
    done

(* Checkpoints become durable the moment the client asked for them, not
   at shutdown: a kill between CHECKPOINT and exit must not lose them. *)
let is_checkpoint line =
  match String.split_on_char ' ' (String.trim line) with
  | _ :: "CHECKPOINT" :: _ -> true
  | _ -> false

let serve_channel serve state_dir ic oc =
  try
    while true do
      let line = input_line ic in
      List.iter (fun r -> output_string oc (r ^ "\n")) (Mqdp.Serve.exec serve line);
      flush oc;
      if is_checkpoint line then save_state serve state_dir
    done
  with End_of_file -> ()

let replay serve path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let seq = ref 0 in
      let exec fmt =
        Printf.ksprintf
          (fun cmd ->
            incr seq;
            ignore (Mqdp.Serve.exec serve (Printf.sprintf "%d %s" !seq cmd)))
          fmt
      in
      let fed = ref 0 in
      let skipped =
        Workload.Post_io.iter_channel ~lenient:true ic ~f:(fun p ->
            exec "FEED %d %.17g %s" p.Mqdp.Post.id p.Mqdp.Post.value
              (match Mqdp.Label_set.to_list p.Mqdp.Post.labels with
              | [] -> "-"
              | ls -> String.concat "," (List.map string_of_int ls));
            incr fed;
            if !fed mod 256 = 0 then exec "TICK")
      in
      exec "TICK";
      Printf.eprintf
        "mqdp_serve: replayed %d posts from %s (%d skipped); next sequence %d\n%!"
        !fed path skipped (!seq + 1);
      !seq)

let tcp_loop serve state_dir port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen sock 8;
  Printf.eprintf "mqdp_serve: listening on port %d\n%!" port;
  while true do
    let client, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr client
    and oc = Unix.out_channel_of_descr client in
    (try serve_channel serve state_dir ic oc
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.close client with Unix.Unix_error _ -> ());
    save_state serve state_dir
  done

let () =
  let config = ref Mqdp.Serve.default_config in
  let port = ref 0 in
  let state_dir = ref None in
  let replay_file = ref None in
  let trace_file = ref None in
  let set f = Arg.Int (fun v -> config := f !config v) in
  let args =
    [
      ("--port", Arg.Set_int port, "N  listen on TCP port N (default: stdin)");
      ("--shards", set (fun c v -> { c with Mqdp.Serve.shards = v }), "N  failure domains");
      ("--jobs", set (fun c v -> { c with Mqdp.Serve.jobs = v }), "N  pool width for TICK");
      ( "--max-profiles",
        set (fun c v -> { c with Mqdp.Serve.max_profiles = v }),
        "N  hard admission ceiling" );
      ( "--degrade-above",
        set (fun c v -> { c with Mqdp.Serve.degrade_above = v }),
        "N  admit degraded beyond this" );
      ( "--queue-capacity",
        set (fun c v -> { c with Mqdp.Serve.queue_capacity = v }),
        "N  per-shard pending-post bound" );
      ( "--tick-steps",
        set (fun c v -> { c with Mqdp.Serve.tick_steps = Some v }),
        "N  per-shard step budget per TICK" );
      ( "--deadline",
        Arg.Float
          (fun v -> config := { !config with Mqdp.Serve.request_deadline = Some v }),
        "S  per-request deadline, seconds" );
      ( "--checkpoint-every",
        set (fun c v -> { c with Mqdp.Serve.checkpoint_every = v }),
        "N  per-profile auto-checkpoint period" );
      ( "--max-restarts",
        set (fun c v -> { c with Mqdp.Serve.max_restarts = v }),
        "N  profile crashes before quarantine" );
      ( "--overload-budget",
        set (fun c v -> { c with Mqdp.Serve.overload_budget = Some v }),
        "N  feed degradation threshold" );
      ( "--seq-cache",
        set (fun c v -> { c with Mqdp.Serve.seq_cache = v }),
        "N  retried-response window" );
      ( "--state-dir",
        Arg.String (fun d -> state_dir := Some d),
        "DIR  durable shard snapshots" );
      ( "--replay",
        Arg.String (fun f -> replay_file := Some f),
        "FILE  bulk-feed a TSV post file at startup" );
      ( "--telemetry",
        Arg.Unit (fun () -> Util.Telemetry.enable ()),
        "  enable metrics (STATS reports them)" );
      ( "--trace",
        Arg.String (fun f -> trace_file := Some f),
        "FILE  write a Chrome-trace span log" );
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "mqdp_serve [options]";
  (match !trace_file with
  | None -> ()
  | Some f ->
    Util.Telemetry.enable ();
    Util.Telemetry.set_sink (Util.Telemetry.Trace.to_channel (open_out f)));
  let serve = Mqdp.Serve.create !config in
  Option.iter ensure_dir !state_dir;
  load_state serve !state_dir;
  ignore (Option.map (replay serve) !replay_file);
  (if !port > 0 then tcp_loop serve !state_dir !port
   else serve_channel serve !state_dir stdin stdout);
  save_state serve !state_dir;
  Mqdp.Serve.shutdown serve
