(* Differential fuzzer: cross-checks every solver against the exact ones
   on randomized instances until a time budget expires. Exits non-zero and
   prints the reproducing seed on the first discrepancy — the tool to run
   after touching any algorithm.

   usage: mqdp_fuzz [--fault <drop|clamp|raise|mixed> | --budget | --window
                    | --serve | --transport]
                    [seconds (default 10)] [start-seed (default 1)]

   With --fault the tool switches from differential solver checks to the
   hardened-frontend torture loop: every round builds a clean stream,
   corrupts it (drops, duplicates, clock skew, bursts, injected non-finite
   timestamps), runs it through Mqdp.Feed under the given policy twice —
   once uninterrupted, once crash/checkpoint/restored at Fault-chosen push
   boundaries — and checks that nothing crashes, both runs emit
   bit-identical streams, every delivered post is λ-covered within its
   deadline, and the overload budget is honored.

   With --budget the tool tortures the resource governor instead: random
   instances are solved through Mqdp.Supervisor under random tiny budgets
   (steps / deadline / allocation / combinations) and the loop checks that
   every answer is Coverage-valid no matter which ladder rung produced it,
   that steps-only budgets degrade deterministically, that an unlimited
   budget reproduces the direct solver call bit-for-bit, that a cancelled
   or exhausted Solver.compile leaves no observable half-compiled state,
   and that pre-cancelled budgets abort with Cancelled before any work.

   With --window the tool tortures the sliding-window geometry: every
   round drives a Window_index through a random interleaving of push
   batches, expiries (by time and by count), solves (every selection
   strategy, with a reused scratch solver, occasionally against a domain
   pool), and export/import round-trips — and after every solve
   cross-checks the cover bit-for-bit against a fresh Pair_index.build
   over the materialized live posts, under fixed and per-post λ alike. *)

let random_instance rng =
  let n = 2 + Util.Rng.int rng 12 in
  let num_labels = 1 + Util.Rng.int rng 3 in
  let span = 4 + Util.Rng.int rng 10 in
  let integral = Util.Rng.bool rng in
  let posts =
    List.init n (fun id ->
        let value =
          if integral then float_of_int (Util.Rng.int rng span)
          else Util.Rng.float rng (float_of_int span)
        in
        let k = 1 + Util.Rng.int rng (min 3 num_labels) in
        let labels =
          List.init k (fun _ -> Util.Rng.int rng num_labels)
        in
        Mqdp.Post.make ~id ~value ~labels:(Mqdp.Label_set.of_list labels))
  in
  Mqdp.Instance.create posts

exception Discrepancy of string

let check ~seed cond message =
  if not cond then
    raise (Discrepancy (Printf.sprintf "seed %d: %s" seed message))

let one_round seed =
  let rng = Util.Rng.create seed in
  let inst = random_instance rng in
  let l = 0.5 +. Util.Rng.float rng 3.5 in
  let lambda = Mqdp.Coverage.Fixed l in
  let tau = Util.Rng.float rng 6. in
  let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
  check ~seed
    (List.length (Mqdp.Opt.solve inst lambda) = optimal)
    "OPT disagrees with brute force";
  let s = Mqdp.Instance.max_labels_per_post inst in
  List.iter
    (fun algo ->
      let result = Mqdp.Solver.solve algo inst lambda in
      check ~seed
        (Mqdp.Coverage.is_cover inst lambda result.Mqdp.Solver.cover)
        (Mqdp.Solver.algorithm_name algo ^ " returned a non-cover");
      check ~seed
        (result.Mqdp.Solver.size >= optimal)
        (Mqdp.Solver.algorithm_name algo ^ " beat the optimum"))
    [ Mqdp.Solver.Greedy_sc; Mqdp.Solver.Greedy_sc_heap;
      Mqdp.Solver.Greedy_sc_linear; Mqdp.Solver.Scan; Mqdp.Solver.Scan_plus ];
  check ~seed
    (List.length (Mqdp.Scan.solve inst lambda) <= s * optimal)
    "Scan exceeded its s-approximation bound";
  (* Kernel cross-check: the three GreedySC selection strategies promise
     bit-identical covers; any tie-rule drift between the bucket queue,
     the lazy heap, and the linear re-scan shows up here. *)
  let g_bucket = Mqdp.Greedy_sc.solve ~selection:`Bucket_queue inst lambda in
  let g_linear = Mqdp.Greedy_sc.solve ~selection:`Linear_scan inst lambda in
  let g_heap = Mqdp.Greedy_sc.solve ~selection:`Lazy_heap inst lambda in
  check ~seed
    (List.equal Int.equal g_bucket g_linear)
    "bucket-queue GreedySC diverged from the linear re-scan";
  check ~seed
    (List.equal Int.equal g_bucket g_heap)
    "bucket-queue GreedySC diverged from the lazy heap";
  List.iter
    (fun algo ->
      let result = Mqdp.Solver.solve_stream algo ~tau inst lambda in
      let effective_tau = match algo with Mqdp.Solver.Instant -> 0. | _ -> tau in
      check ~seed
        (Mqdp.Coverage.is_cover inst lambda result.Mqdp.Solver.stream.Mqdp.Stream.cover)
        (Mqdp.Solver.streaming_algorithm_name algo ^ " returned a non-cover");
      check ~seed
        (Mqdp.Stream.check_deadline ~tau:effective_tau inst result.Mqdp.Solver.stream)
        (Mqdp.Solver.streaming_algorithm_name algo ^ " violated its deadline"))
    Mqdp.Solver.all_streaming_algorithms;
  let offline_scan = Mqdp.Scan.solve inst lambda in
  let streaming_scan =
    Mqdp.Stream_scan.solve ~plus:false ~tau:(l +. 0.25) inst lambda
  in
  check ~seed
    (List.equal Int.equal streaming_scan.Mqdp.Stream.cover offline_scan)
    "StreamScan with tau > lambda diverged from offline Scan";
  (* The instant bound of Section 5.1. *)
  let instant =
    List.length (Mqdp.Stream_scan.solve_instant inst lambda).Mqdp.Stream.cover
  in
  check ~seed (instant <= 2 * s * optimal) "instant output exceeded 2s bound";
  (* Telemetry is observation only: the same solve with the registry and a
     live span sink enabled must produce bit-identical covers, through the
     plain solver and through the governed ladder alike. *)
  let with_telemetry f =
    Util.Telemetry.enable ();
    Util.Telemetry.set_sink
      { Util.Telemetry.on_span = (fun ~name:_ ~depth:_ ~start_ns:_ ~dur_ns:_ ~args:_ -> ()) };
    Fun.protect
      ~finally:(fun () ->
        Util.Telemetry.disable ();
        Util.Telemetry.set_sink Util.Telemetry.null_sink)
      f
  in
  List.iter
    (fun algo ->
      let off = (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.cover in
      let on = with_telemetry (fun () -> (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.cover) in
      check ~seed
        (List.equal Int.equal on off)
        (Mqdp.Solver.algorithm_name algo ^ " cover changed with telemetry enabled"))
    [ Mqdp.Solver.Greedy_sc; Mqdp.Solver.Greedy_sc_heap;
      Mqdp.Solver.Greedy_sc_linear; Mqdp.Solver.Scan; Mqdp.Solver.Scan_plus ];
  let governed () =
    (Mqdp.Supervisor.solve
       ~budget:(Util.Budget.create ~max_steps:(50 + (seed mod 500)) ())
       inst lambda)
      .Mqdp.Supervisor.cover
  in
  let gov_off = governed () in
  let gov_on = with_telemetry governed in
  check ~seed
    (List.equal Int.equal gov_on gov_off)
    "governed cover changed with telemetry enabled"

(* ---------------- budget mode: the resource governor ---------------- *)

let random_budget rng =
  match Util.Rng.int rng 4 with
  | 0 -> Util.Budget.create ~max_steps:(Util.Rng.int rng 3000) ()
  | 1 -> Util.Budget.create ~deadline:(Util.Rng.float rng 0.002) ()
  | 2 ->
    Util.Budget.create
      ~max_alloc_bytes:(Util.Rng.float rng 300_000.) ()
  | _ ->
    Util.Budget.create ~max_steps:(Util.Rng.int rng 2000)
      ~deadline:(Util.Rng.float rng 0.005) ()

let one_budget_round seed =
  let rng = Util.Rng.create (0xB06E7 + seed) in
  let inst = random_instance rng in
  let l = 0.5 +. Util.Rng.float rng 3.5 in
  let lambda = Mqdp.Coverage.Fixed l in
  let algorithm =
    List.nth Mqdp.Solver.all_algorithms
      (Util.Rng.int rng (List.length Mqdp.Solver.all_algorithms))
  in
  let ladder = Mqdp.Supervisor.ladder_from algorithm in
  let with_optional_pool f =
    (* Every eighth round runs governed solving over a real domain pool so
       worker-side exhaustion and chunk cancellation get fuzzed too. *)
    if seed mod 8 = 0 then Util.Pool.with_pool ~jobs:2 (fun p -> f (Some p))
    else f None
  in
  (* 1. Any answer under any budget is a valid cover, whatever the rung. *)
  let report =
    with_optional_pool (fun pool ->
        Mqdp.Supervisor.solve ?pool ~budget:(random_budget rng) ~ladder inst lambda)
  in
  check ~seed
    (Mqdp.Coverage.is_cover inst lambda report.Mqdp.Supervisor.cover)
    (Printf.sprintf "governed solve (answered by %s) returned a non-cover"
       report.Mqdp.Supervisor.answered_by);
  (* 2. Steps-only budgets are deterministic: same budget, same rung, same
     cover. *)
  let steps = Util.Rng.int rng 4000 in
  let governed () =
    Mqdp.Supervisor.solve
      ~budget:(Util.Budget.create ~max_steps:steps ())
      ~ladder inst lambda
  in
  let r1 = governed () and r2 = governed () in
  check ~seed
    (List.equal Int.equal r1.Mqdp.Supervisor.cover r2.Mqdp.Supervisor.cover
    && String.equal r1.Mqdp.Supervisor.answered_by r2.Mqdp.Supervisor.answered_by)
    "steps-governed degradation is not deterministic";
  (* 3. An unlimited budget reproduces the direct solver call exactly. *)
  let direct = Mqdp.Solver.run algorithm inst lambda in
  let unlimited = Mqdp.Supervisor.solve ~ladder inst lambda in
  check ~seed
    (List.equal Int.equal unlimited.Mqdp.Supervisor.cover direct
    && String.equal unlimited.Mqdp.Supervisor.answered_by
         (Mqdp.Solver.algorithm_name algorithm))
    "unlimited-budget supervisor diverged from the direct solver call";
  (* 4. Solver.compile under a tiny budget either returns a fully usable
     index or raises — and after a raise, nothing is left behind: a fresh
     compile still agrees with the uncompiled path. *)
  let reference = Mqdp.Solver.run Mqdp.Solver.Greedy_sc inst lambda in
  let compiled_cover index =
    (Mqdp.Solver.solve_compiled Mqdp.Solver.Greedy_sc index).Mqdp.Solver.cover
  in
  (match
     Mqdp.Solver.compile
       ~budget:(Util.Budget.create ~max_steps:(Util.Rng.int rng 60) ())
       inst lambda
   with
  | index ->
    check ~seed
      (List.equal Int.equal (compiled_cover index) reference)
      "index compiled under a budget diverged from the uncompiled path"
  | exception Mqdp.Interrupt.Budget_exceeded _ ->
    check ~seed
      (List.equal Int.equal (compiled_cover (Mqdp.Solver.compile inst lambda)) reference)
      "aborted compile left observable state behind");
  (* 5. A pre-cancelled budget aborts before any work, with Cancelled. *)
  let cancelled = Util.Budget.create ~max_steps:max_int () in
  Util.Budget.cancel cancelled;
  match Mqdp.Solver.run ~budget:cancelled Mqdp.Solver.Greedy_sc inst lambda with
  | _ -> check ~seed false "pre-cancelled budget still completed a solve"
  | exception
      Mqdp.Interrupt.Budget_exceeded { reason = Util.Budget.Cancelled; _ } ->
    ()

(* ---------------- fault mode: the hardened frontend ---------------- *)

let policy_of_string = function
  | "drop" -> Some Mqdp.Feed.Drop
  | "clamp" -> Some Mqdp.Feed.Clamp
  | "raise" -> Some Mqdp.Feed.Raise
  | "mixed" -> None  (* drawn per round *)
  | s ->
    Printf.eprintf "unknown fault policy %S (expected drop|clamp|raise|mixed)\n" s;
    exit 2

let random_policy rng =
  match Util.Rng.int rng 3 with
  | 0 -> Mqdp.Feed.Drop
  | 1 -> Mqdp.Feed.Clamp
  | _ -> Mqdp.Feed.Raise

(* A clean, time-ordered stream with unique ids. *)
let clean_stream rng ~n ~num_labels ~span =
  List.init n (fun id ->
      let value = Util.Rng.float rng span in
      let k = 1 + Util.Rng.int rng (min 3 num_labels) in
      let labels = List.init k (fun _ -> Util.Rng.int rng num_labels) in
      Mqdp.Post.make ~id ~value ~labels:(Mqdp.Label_set.of_list labels))
  |> List.sort Mqdp.Post.compare_by_value

(* Occasionally smuggle in a non-finite timestamp (bypassing Post.make the
   way a buggy upstream serializer would) so the non_finite policy runs. *)
let inject_non_finite rng posts =
  List.map
    (fun p ->
      if Util.Rng.float rng 1. < 0.03 then
        let v =
          match Util.Rng.int rng 3 with
          | 0 -> Float.infinity
          | 1 -> Float.neg_infinity
          | _ -> Float.nan
        in
        { p with Mqdp.Post.value = v }
      else p)
    posts

(* Push [posts] through a feed, checkpointing + restoring (through the
   string serialization) at every boundary in [crashes]. Returns the
   delivered posts (as admitted, newest clamps included) and the full
   emission stream. *)
let run_feed ~config ~lambda ~mode ~crashes posts =
  let feed = ref (Mqdp.Feed.create ~config ~lambda mode) in
  let delivered = ref [] in
  let emissions = ref [] in
  let budget_ok = ref true in
  List.iteri
    (fun i post ->
      if List.mem i crashes then feed := Mqdp.Feed.restore (Mqdp.Feed.checkpoint !feed);
      (match Mqdp.Feed.push !feed post with
      | { Mqdp.Feed.admitted; emissions = es } ->
        (match admitted with Some p -> delivered := p :: !delivered | None -> ());
        emissions := List.rev_append es !emissions
      | exception Mqdp.Feed.Rejected _ -> ());
      match config.Mqdp.Feed.overload_budget with
      | Some b ->
        if Mqdp.Online.pending_labels (Mqdp.Feed.engine !feed) > b then budget_ok := false
      | None -> ())
    posts;
  if List.mem (List.length posts) crashes then
    feed := Mqdp.Feed.restore (Mqdp.Feed.checkpoint !feed);
  emissions := List.rev_append (Mqdp.Feed.finish !feed) !emissions;
  (List.rev !delivered, List.rev !emissions, !budget_ok, !feed)

let emission_key e =
  (e.Mqdp.Online.post.Mqdp.Post.id, Int64.bits_of_float e.Mqdp.Online.emit_time)

let one_fault_round ~policy seed =
  let rng = Util.Rng.create (0x5EED + seed) in
  let n = 20 + Util.Rng.int rng 60 in
  let num_labels = 1 + Util.Rng.int rng 6 in
  let span = 20. +. Util.Rng.float rng 60. in
  let lambda = 0.5 +. Util.Rng.float rng 6. in
  let tau = Util.Rng.float rng 4. in
  let mode =
    if Util.Rng.int rng 4 = 0 then Mqdp.Online.Instant
    else Mqdp.Online.Delayed { tau; plus = Util.Rng.bool rng }
  in
  let tau_eff = match mode with Mqdp.Online.Instant -> 0. | Mqdp.Online.Delayed _ -> tau in
  let pick () = match policy with Some p -> p | None -> random_policy rng in
  let config =
    {
      Mqdp.Feed.reorder_window = Util.Rng.int rng 24;
      late = pick ();
      duplicate = pick ();
      non_finite = pick ();
      overload_budget = (if Util.Rng.bool rng then Some (1 + Util.Rng.int rng 4) else None);
    }
  in
  let fault =
    Util.Fault.create
      ~config:
        {
          Util.Fault.drop_p = 0.05;
          duplicate_p = 0.08;
          dup_delay = 5;
          skew_p = 0.15;
          skew_sigma = span /. 10.;
          burst_p = 0.05;
          burst_len = 4;
        }
      ~seed ()
  in
  let hostile =
    clean_stream rng ~n ~num_labels ~span
    |> Util.Fault.corrupt fault
         ~time:(fun p -> p.Mqdp.Post.value)
         ~retime:(fun p v -> { p with Mqdp.Post.value = v })
    |> inject_non_finite rng
  in
  let crashes =
    Util.Fault.crash_points fault ~n:(List.length hostile) ~max_points:4
  in
  let delivered, emissions, budget_ok, _ =
    run_feed ~config ~lambda ~mode ~crashes:[] hostile
  in
  let delivered', emissions', budget_ok', _ =
    run_feed ~config ~lambda ~mode ~crashes hostile
  in
  check ~seed budget_ok "overload budget exceeded (uninterrupted run)";
  check ~seed budget_ok' "overload budget exceeded (crash/restore run)";
  check ~seed
    (List.map emission_key emissions = List.map emission_key emissions')
    "crash/restore emissions diverge from the uninterrupted run";
  check ~seed
    (List.map (fun p -> (p.Mqdp.Post.id, Int64.bits_of_float p.Mqdp.Post.value)) delivered
    = List.map (fun p -> (p.Mqdp.Post.id, Int64.bits_of_float p.Mqdp.Post.value)) delivered')
    "crash/restore admission decisions diverge";
  (* Every delivered post is λ-covered within its deadline: a covering
     emission is itself emitted within τ of its own timestamp, so the
     end-to-end bound is value + τ + λ. *)
  let eps = 1e-9 in
  List.iter
    (fun p ->
      Mqdp.Label_set.iter
        (fun a ->
          let covered =
            List.exists
              (fun e ->
                let q = e.Mqdp.Online.post in
                Mqdp.Label_set.mem a q.Mqdp.Post.labels
                && Float.abs (q.Mqdp.Post.value -. p.Mqdp.Post.value) <= lambda +. eps
                && e.Mqdp.Online.emit_time <= p.Mqdp.Post.value +. tau_eff +. lambda +. eps)
              emissions
          in
          if not covered then
            raise
              (Discrepancy
                 (Printf.sprintf "seed %d: delivered post %d label %d not covered in time"
                    seed p.Mqdp.Post.id a)))
        p.Mqdp.Post.labels)
    delivered

(* ---------------- window mode: the sliding-window geometry ---------------- *)

let one_window_round seed =
  let rng = Util.Rng.create (0xA11CE + seed) in
  let num_labels = 1 + Util.Rng.int rng 5 in
  let span = 10. +. Util.Rng.float rng 40. in
  let lambda =
    if Util.Rng.bool rng then Mqdp.Coverage.Fixed (0.5 +. Util.Rng.float rng 4.)
    else
      Mqdp.Coverage.Per_post_label
        (fun p a -> 0.4 +. (0.3 *. float_of_int ((p.Mqdp.Post.id + a) mod 5)))
  in
  let n = 30 + Util.Rng.int rng 90 in
  let stream = Array.of_list (clean_stream rng ~n ~num_labels ~span) in
  let n = Array.length stream in
  let w = Mqdp.Window_index.create lambda in
  let wsolver = Mqdp.Greedy_sc.window_solver () in
  (* Reference model: the live posts as a plain list, ascending. *)
  let live = ref [] in
  let next = ref 0 in
  let push_batch () =
    let k = 1 + Util.Rng.int rng 6 in
    for _ = 1 to k do
      if !next < n then begin
        let p = stream.(!next) in
        incr next;
        Mqdp.Window_index.push w p;
        live := p :: !live
      end
    done
  in
  let live_posts () = List.rev !live in
  let expire () =
    match live_posts () with
    | [] -> ()
    | posts ->
      if Util.Rng.bool rng then begin
        (* By time: cut at a random live post's value. *)
        let arr = Array.of_list posts in
        let t = arr.(Util.Rng.int rng (Array.length arr)).Mqdp.Post.value in
        Mqdp.Window_index.expire_before w ~time:t;
        live := List.rev (List.filter (fun p -> p.Mqdp.Post.value >= t) posts)
      end
      else begin
        (* By count. *)
        let k = Util.Rng.int rng (List.length posts + 1) in
        Mqdp.Window_index.expire_posts w k;
        live := List.rev (List.filteri (fun i _ -> i >= k) posts)
      end
  in
  let solve_and_check () =
    let posts = live_posts () in
    let slice = Mqdp.Instance.create posts in
    check ~seed
      (Mqdp.Instance.size slice = Mqdp.Window_index.size w)
      "window size diverged from the reference model";
    let index = Mqdp.Pair_index.build slice lambda in
    let reference = Mqdp.Greedy_sc.solve_indexed index in
    check ~seed
      (Mqdp.Coverage.is_cover slice lambda reference)
      "fresh-index greedy returned a non-cover";
    List.iter
      (fun selection ->
        let got = Mqdp.Greedy_sc.solve_window ~selection ~solver:wsolver w in
        check ~seed
          (List.equal Int.equal got reference)
          "windowed cover diverged from the fresh Pair_index")
      [ `Bucket_queue; `Lazy_heap; `Linear_scan ];
    if seed mod 8 = 0 then begin
      let pooled =
        Util.Pool.with_pool ~jobs:4 (fun pool ->
            Mqdp.Greedy_sc.solve ~pool slice lambda)
      in
      check ~seed
        (List.equal Int.equal pooled reference)
        "pooled solve diverged from the windowed cover"
    end
  in
  let roundtrip () =
    let size = Mqdp.Window_index.size w and head = Mqdp.Window_index.expired w in
    let restored = Mqdp.Window_index.import lambda (Mqdp.Window_index.export w) in
    check ~seed
      (Mqdp.Window_index.size restored = size && Mqdp.Window_index.expired restored = head)
      "export/import changed the window shape";
    check ~seed
      (List.equal Int.equal
         (Mqdp.Greedy_sc.solve_window restored)
         (Mqdp.Greedy_sc.solve_window ~solver:wsolver w))
      "restored window solves differently"
  in
  while !next < n do
    match Util.Rng.int rng 4 with
    | 0 | 1 -> push_batch ()
    | 2 -> expire ()
    | _ -> if Util.Rng.bool rng then solve_and_check () else roundtrip ()
  done;
  solve_and_check ();
  roundtrip ()

(* --serve: torture the multi-tenant serving engine against a
   single-threaded oracle. Every round builds a random Serve engine
   (shards, pool jobs, queue capacity, checkpoint cadence, overload
   budget), admits a handful of profiles, and drives a Fault-corrupted
   post stream through the wire protocol — with crash injection firing
   between post applications, whole-shard snapshot/restore restarts
   mid-stream, and verbatim client retries — while an oracle of plain
   per-profile Feeds (no crashes, no restarts) replicates the shard hash
   and queue-capacity accounting. At every sync point the engine's
   REPORTs must match the oracle's emissions bit-for-bit (sequence
   numbers, ids, IEEE-754 emit times), FEED acknowledgments must match
   the oracle's shed model, and the final drain must leave zero
   acknowledged posts unapplied.

   Half the rounds additionally run durable: the engine journals every
   named-session command to a state dir and whole-daemon deaths are
   injected — after execution but before the response is delivered
   (retry must replay the recorded response from the recovered cache),
   mid-journal-append via Util.Fs crash points (torn record truncated,
   retry re-executes exactly once), between the epoch snapshots and the
   manifest commit, and mid-compaction. Every death is followed by the
   daemon's own boot path (sweep temps, manifest epoch + watermark,
   snapshot load, journal replay); the unchanged oracle comparison then
   doubles as the audit that no command ever executed twice. *)

exception Injected_crash

(* The daemon's durable-state discipline, replicated for the simulated
   process deaths: epoch-named shard snapshots committed by one atomic
   manifest write carrying the journal watermark they cover, then journal
   compaction (bin/mqdp_serve.ml has the crash-window analysis). The
   fuzzer drives the exact same file layout so recovery code paths are
   the ones the real daemon runs. *)
let sim_manifest_path dir = Filename.concat dir "manifest"

let sim_snap_path dir i epoch =
  Filename.concat dir (Printf.sprintf "shard-%d.ep%d.snap" i epoch)

let sim_persist ?compact_crash ~dir ~epoch engine =
  let next = !epoch + 1 in
  for i = 0 to Mqdp.Serve.shard_count engine - 1 do
    Util.Fs.atomic_write ~fsync:false ~path:(sim_snap_path dir i next)
      (Mqdp.Serve.shard_snapshot engine i)
  done;
  let covered = Mqdp.Serve.journal_gsn engine in
  Util.Fs.atomic_write ~fsync:false ~path:(sim_manifest_path dir)
    (Mqdp.Serve.manifest ~extra:[ ("epoch", next); ("journal", covered) ] engine);
  (* Raises Util.Fs.Crashed under [compact_crash] — the manifest already
     committed, so recovery must replay the old journal cache-only. *)
  Mqdp.Serve.compact_journal ?crash_after:compact_crash engine;
  let old = !epoch in
  epoch := next;
  for i = 0 to Mqdp.Serve.shard_count engine - 1 do
    Util.Fs.remove_if_exists (sim_snap_path dir i old)
  done

(* Write the next epoch's snapshots but die before the manifest commits:
   recovery must ignore the orphans and redo from the old watermark. *)
let sim_persist_torn ~dir ~epoch engine =
  for i = 0 to Mqdp.Serve.shard_count engine - 1 do
    Util.Fs.atomic_write ~fsync:false ~path:(sim_snap_path dir i (!epoch + 1))
      (Mqdp.Serve.shard_snapshot engine i)
  done

(* Boot a fresh engine from the durable state, exactly like the daemon:
   sweep temps, read the manifest's committed epoch + covered watermark,
   load that epoch's snapshots, attach + replay the journal. *)
let sim_reboot ~config ~dir ~epoch engine =
  Mqdp.Serve.shutdown !engine;
  engine := Mqdp.Serve.create config;
  ignore (Util.Fs.sweep_temps dir);
  let m = Util.Fs.read (sim_manifest_path dir) in
  let on_disk = Option.value ~default:0 (Mqdp.Serve.manifest_field m "epoch") in
  let covered = Option.value ~default:0 (Mqdp.Serve.manifest_field m "journal") in
  epoch := on_disk;
  for i = 0 to Mqdp.Serve.shard_count !engine - 1 do
    let p = sim_snap_path dir i on_disk in
    if Sys.file_exists p then Mqdp.Serve.load_shard !engine i (Util.Fs.read p)
  done;
  Mqdp.Serve.attach_journal ~fsync:false !engine ~dir ~covered

type oracle_profile = {
  o_name : string;
  o_sub : Mqdp.Label_set.t;
  o_shard : int;
  o_feed : Mqdp.Feed.t;
  mutable o_seq : int;
  mutable o_pending : Mqdp.Post.t list;  (* newest first *)
  mutable o_unreported : (int * Mqdp.Online.emission) list;  (* newest first *)
}

let one_serve_round seed =
  let rng = Util.Rng.create (0x5E44E + seed) in
  let num_labels = 2 + Util.Rng.int rng 3 in
  let shards = 1 + Util.Rng.int rng 4 in
  let capacity = 4 + Util.Rng.int rng 12 in
  let overload_budget =
    if Util.Rng.int rng 4 = 0 then Some (1 + Util.Rng.int rng 2) else None
  in
  let config =
    {
      Mqdp.Serve.default_config with
      Mqdp.Serve.shards;
      jobs = 1 + Util.Rng.int rng 2;
      queue_capacity = capacity;
      checkpoint_every = Util.Rng.int rng 5;
      (* Quarantine is a divergence from the crash-free oracle by design;
         the restart ceiling is effectively infinite here and quarantine
         gets its own unit tests. *)
      max_restarts = max_int - 1;
      overload_budget;
    }
  in
  (* Half the rounds run durable: journal attached, daemon deaths injected
     at journal-append and compaction boundaries, recovery via the same
     snapshot-manifest-journal discipline the real daemon uses. The other
     half keep the original memory-only engine as a control. *)
  let durable = Util.Rng.bool rng in
  let state_dir =
    if durable then Some (Filename.temp_dir "mqdp_fuzz_serve" ".state") else None
  in
  let epoch = ref 0 in
  let engine = ref (Mqdp.Serve.create config) in
  (match state_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.atomic_write ~fsync:false ~path:(sim_manifest_path dir)
      (Mqdp.Serve.manifest ~extra:[ ("epoch", 0); ("journal", 0) ] !engine);
    Mqdp.Serve.attach_journal ~fsync:false !engine ~dir ~covered:0);
  Fun.protect
    ~finally:(fun () ->
      Mqdp.Serve.shutdown !engine;
      if Sys.getenv_opt "MQDP_FUZZ_KEEP" = None then Option.iter Util.Fs.remove_tree state_dir)
  @@ fun () ->
  (* Crash schedule: a small set of application indices at which the chaos
     hook (called from pool workers, hence the atomic) kills the profile
     mid-tick. Recovery is checkpoint restore + journal replay, so any
     schedule must leave the observable stream untouched. Armed only after
     the oracle profiles are admitted (as before the journal existed). *)
  let crash_counter = Atomic.make 0 in
  let crash_points =
    List.init (Util.Rng.int rng 5) (fun _ -> 1 + Util.Rng.int rng 100)
  in
  let chaos () =
    let c = Atomic.fetch_and_add crash_counter 1 in
    if List.mem c crash_points then raise Injected_crash
  in
  let chaos_armed = ref false in
  let reboot () =
    match state_dir with
    | None -> ()
    | Some dir ->
      sim_reboot ~config ~dir ~epoch engine;
      (* attach_journal replayed the redo chaos-free on the fresh engine
         (its hook starts empty); re-arm only for live traffic. *)
      if !chaos_armed then Mqdp.Serve.set_chaos !engine (Some chaos)
  in
  let seq = ref 0 in
  let raw line =
    if durable && Util.Rng.int rng 24 = 0 then
      Mqdp.Serve.set_journal_crash_after !engine (Some (Util.Rng.int rng 12));
    match Mqdp.Serve.exec !engine line with
    | response ->
      if durable && Util.Rng.int rng 16 = 0 then begin
        (* The daemon dies after executing (and journaling) the command but
           before the response reaches the wire. The client retries the
           same line against the rebooted daemon and must be answered from
           the journal-recovered response cache, bit-identically. *)
        reboot ();
        let replayed = Mqdp.Serve.exec !engine line in
        check ~seed
          (List.equal String.equal replayed response)
          (Printf.sprintf
             "retry of %S across a daemon death was not replayed from the \
              recovered cache" line);
        replayed
      end
      else response
    | exception Util.Fs.Crashed _ ->
      (* Death mid-journal-append: the command executed but its record is
         torn, so it was never acknowledged. Reboot truncates the torn
         tail and the retry re-executes exactly once — the oracle
         comparison downstream is the no-double-execution audit. *)
      reboot ();
      Mqdp.Serve.exec !engine line
  in
  let exec fmt =
    Printf.ksprintf
      (fun cmd ->
        incr seq;
        let line = Printf.sprintf "%d %s" !seq cmd in
        (line, raw line))
      fmt
  in
  let expect_ok what (line, response) check_body =
    let prefix = Printf.sprintf "%d OK " !seq in
    match response with
    | [ r ] when String.starts_with ~prefix r ->
      let body = String.sub r (String.length prefix) (String.length r - String.length prefix) in
      check ~seed (check_body body)
        (Printf.sprintf "%s: unexpected body %S for %S" what body line);
      body
    | _ ->
      check ~seed false
        (Printf.sprintf "%s: unexpected response %S for %S" what
           (String.concat " / " response) line);
      ""
  in
  let labels_csv ls = String.concat "," (List.map string_of_int (Mqdp.Label_set.to_list ls)) in
  let feed_config = { Mqdp.Feed.default_config with overload_budget } in
  (* Admit profiles; the oracle mirrors each with a plain Feed. *)
  let nprof = 2 + Util.Rng.int rng 5 in
  let oracle =
    List.init nprof (fun i ->
        let o_name = Printf.sprintf "p%d" i in
        let k = 1 + Util.Rng.int rng (min 3 num_labels) in
        let o_sub =
          Mqdp.Label_set.of_list (List.init k (fun _ -> Util.Rng.int rng num_labels))
        in
        let lambda = float_of_int (1 + Util.Rng.int rng 8) in
        let mode, mode_str =
          match Util.Rng.int rng 3 with
          | 0 -> (Mqdp.Online.Instant, "instant")
          | plus_tag ->
            let tau = Util.Rng.float rng lambda in
            let plus = plus_tag = 2 in
            ( Mqdp.Online.Delayed { tau; plus },
              Printf.sprintf "delayed%s:%.17g" (if plus then "+" else "") tau )
        in
        let nowindow = Util.Rng.bool rng in
        ignore
          (expect_ok "ADD"
             (exec "ADD %s %.17g %s %s%s" o_name lambda mode_str (labels_csv o_sub)
                (if nowindow then " nowindow" else ""))
             (String.equal "added"));
        {
          o_name;
          o_sub;
          o_shard = Mqdp.Serve.shard_of_name ~shards o_name;
          o_feed =
            Mqdp.Feed.create ~config:feed_config ~window:false ~lambda mode;
          o_seq = 0;
          o_pending = [];
          o_unreported = [];
        })
  in
  chaos_armed := true;
  Mqdp.Serve.set_chaos !engine (Some chaos);
  let backlog = Array.make shards 0 in
  let oracle_matches post =
    List.filter
      (fun op -> not (Mqdp.Label_set.disjoint post.Mqdp.Post.labels op.o_sub))
      oracle
  in
  let deliver post =
    let expected_delivered = ref 0 and expected_shed = ref 0 in
    List.iter
      (fun op ->
        if backlog.(op.o_shard) >= capacity then incr expected_shed
        else begin
          backlog.(op.o_shard) <- backlog.(op.o_shard) + 1;
          let projected = Mqdp.Label_set.inter post.Mqdp.Post.labels op.o_sub in
          op.o_pending <-
            Mqdp.Post.make ~id:post.Mqdp.Post.id ~value:post.Mqdp.Post.value
              ~labels:projected
            :: op.o_pending;
          incr expected_delivered
        end)
      (oracle_matches post);
    let sent =
      exec "FEED %d %.17g %s" post.Mqdp.Post.id post.Mqdp.Post.value
        (labels_csv post.Mqdp.Post.labels)
    in
    ignore
      (expect_ok "FEED" sent
         (String.equal
            (Printf.sprintf "delivered=%d shed=%d" !expected_delivered !expected_shed)));
    sent
  in
  let oracle_tick () =
    let applied = ref 0 in
    List.iter
      (fun op ->
        List.iter
          (fun p ->
            incr applied;
            match Mqdp.Feed.push op.o_feed p with
            | outcome ->
              List.iter
                (fun e ->
                  op.o_seq <- op.o_seq + 1;
                  op.o_unreported <- (op.o_seq, e) :: op.o_unreported)
                outcome.Mqdp.Feed.emissions
            | exception Mqdp.Feed.Rejected _ -> ())
          (List.rev op.o_pending);
        op.o_pending <- [])
      oracle;
    Array.fill backlog 0 shards 0;
    !applied
  in
  let compare_report op =
    let _, response = exec "REPORT %s" op.o_name in
    let expected =
      List.rev_map
        (fun (eseq, e) ->
          Printf.sprintf "%d EMIT %d %d %016Lx" !seq eseq
            e.Mqdp.Online.post.Mqdp.Post.id
            (Int64.bits_of_float e.Mqdp.Online.emit_time))
        op.o_unreported
      @ [ Printf.sprintf "%d OK %d" !seq (List.length op.o_unreported) ]
    in
    op.o_unreported <- [];
    check ~seed
      (List.equal String.equal response expected)
      (Printf.sprintf "REPORT %s diverged from the oracle:\n  got      %s\n  expected %s"
         op.o_name
         (String.concat " | " response)
         (String.concat " | " expected))
  in
  let tick_and_compare () =
    let expected = oracle_tick () in
    ignore
      (expect_ok "TICK" (exec "TICK")
         (String.equal (Printf.sprintf "applied=%d backlog=0" expected)));
    List.iter compare_report oracle
  in
  (* The corrupted stream: drops, duplicates, skew, bursts, plus injected
     infinities (the Drop policy consumes them identically on both
     sides). *)
  let n = 20 + Util.Rng.int rng 40 in
  let t = ref 0. in
  let clean =
    List.init n (fun id ->
        t := !t +. Util.Rng.exponential rng ~rate:1.;
        let k = 1 + Util.Rng.int rng (min 3 num_labels) in
        let labels =
          Mqdp.Label_set.of_list (List.init k (fun _ -> Util.Rng.int rng num_labels))
        in
        Mqdp.Post.make ~id ~value:!t ~labels)
  in
  let fault = Util.Fault.create ~seed:(0xFA0C7 + seed) () in
  let stream =
    Util.Fault.corrupt fault
      ~time:(fun p -> p.Mqdp.Post.value)
      ~retime:(fun p v ->
        Mqdp.Post.make ~id:p.Mqdp.Post.id ~value:v ~labels:p.Mqdp.Post.labels)
      clean
    |> List.map (fun p ->
           if Util.Rng.int rng 32 = 0 then
             Mqdp.Post.make ~id:p.Mqdp.Post.id ~value:infinity
               ~labels:p.Mqdp.Post.labels
           else p)
  in
  let last_feed = ref None in
  List.iter
    (fun post ->
      last_feed := Some (deliver post);
      (match (!last_feed, Util.Rng.int rng 6) with
      | Some (line, response), 0 ->
        (* A client retry: the same line verbatim must replay the cached
           response without delivering the post a second time. *)
        check ~seed
          (List.equal String.equal (raw line) response)
          (Printf.sprintf "retried %S did not replay its cached response" line)
      | _ -> ());
      if Util.Rng.int rng 6 = 0 then tick_and_compare ();
      if Util.Rng.int rng 10 = 0 then
        Mqdp.Serve.restart_shard !engine (Util.Rng.int rng shards);
      (match (state_dir, Util.Rng.int rng 8) with
      | Some dir, 0 -> (
        (* A durability point, with the persist discipline itself under
           attack: die between the snapshot writes and the manifest commit
           (recovery ignores the orphan epoch and redoes from the old
           watermark), die mid-compaction (manifest committed, journal
           rewrite torn — recovery replays cache-only), or complete
           cleanly. An armed one-shot journal crash can also fire inside
           the clean path's compaction, so it reboots too. *)
        match Util.Rng.int rng 6 with
        | 0 ->
          sim_persist_torn ~dir ~epoch !engine;
          reboot ()
        | 1 -> (
          try
            sim_persist ~compact_crash:(Util.Rng.int rng 20) ~dir ~epoch
              !engine
          with Util.Fs.Crashed _ -> reboot ())
        | _ -> (
          try sim_persist ~dir ~epoch !engine
          with Util.Fs.Crashed _ -> reboot ()))
      | _ -> ());
      if Util.Rng.int rng 12 = 0 then begin
        let op = List.nth oracle (Util.Rng.int rng nprof) in
        let _, response = exec "QUERY %s" op.o_name in
        match response with
        | [ r ] ->
          check ~seed
            (String.starts_with ~prefix:(Printf.sprintf "%d OK rung=" !seq) r
            || String.starts_with ~prefix:(Printf.sprintf "%d ERR no-window" !seq) r)
            (Printf.sprintf "QUERY %s: unexpected response %S" op.o_name r)
        | _ -> check ~seed false "QUERY returned multiple lines"
      end)
    stream;
  (* Final sync: drain both sides and audit zero acknowledged-post loss. *)
  tick_and_compare ();
  let expected_drained =
    List.iter
      (fun op ->
        List.iter
          (fun e ->
            op.o_seq <- op.o_seq + 1;
            op.o_unreported <- (op.o_seq, e) :: op.o_unreported)
          (Mqdp.Feed.finish op.o_feed))
      oracle;
    nprof
  in
  ignore
    (expect_ok "DRAIN" (exec "DRAIN")
       (String.equal (Printf.sprintf "drained=%d" expected_drained)));
  List.iter compare_report oracle;
  check ~seed (Mqdp.Serve.backlog !engine = 0) "acknowledged posts left unapplied";
  let stats = expect_ok "STATS" (exec "STATS") (String.starts_with ~prefix:"{") in
  check ~seed
    (let needle = "\"backlog\":0" in
     let rec find i =
       i + String.length needle <= String.length stats
       && (String.sub stats i (String.length needle) = needle || find (i + 1))
     in
     find 0)
    "STATS does not report an empty backlog after drain";
  (* The idempotency window is finite: a sequence number far below the
     watermark whose cache slot was reused must be refused, not rerun. *)
  if !seq > Mqdp.Serve.default_config.Mqdp.Serve.seq_cache + 1 then
    check ~seed
      (match raw "1 PING" with
      | [ r ] -> String.starts_with ~prefix:"1 ERR stale-seq" r
      | _ -> false)
      "an evicted stale sequence number was not refused"

(* --transport: the concurrent hardened transport, differentially. Every
   round drives 8 concurrent simulated clients — each with its own named
   session, profiles, and disjoint label universe — through per-connection
   Mqdp.Transport state machines under a deterministic Fault.Net chaos
   schedule: requests arrive re-chunked down to single bytes with
   scheduling delays interleaving the clients, connections reset at
   arbitrary byte boundaries (client reconnects, re-HELLOs, retries the
   same line verbatim), responses are eaten by resets (retry must replay
   the cached response, never re-execute), and mid-round the engine
   drain/snapshot/restarts with every session lost. Two hostile clients
   run alongside: a slowloris trickling bytes without ever completing a
   request (must be condemned by the idle deadline) and an oversized-line
   client (must be condemned by the framing cap) — neither may perturb
   anyone else. The oracle is a clean sequential run of the same scripts
   against a fresh engine with no transport at all: per-client transcripts
   must match bit-for-bit (TICK/QUERY/REPORT bodies masked — they are the
   only interleaving-dependent responses) and each profile's concatenated
   EMIT stream — sequence numbers, post ids, IEEE-754 emit times — must be
   identical, which also proves zero acknowledged-post loss across the
   resets and the restart.

   Half the rounds run durable: every named session journals to a state
   dir, the engine persists at each CHECKPOINT/DRAIN it executes, the
   graceful restart goes through the daemon's real persist + boot path
   (sessions survive, HELLO greetings must report the recovered seq=
   watermark), and one hard kill -9 lands between a command's execution
   and its response delivery — every client retries its in-flight line
   verbatim against the rebooted engine, and the bit-identical-transcript
   oracle proves recovered caches replayed instead of re-executing. *)

let transport_tokens line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

let response_is_final line =
  match transport_tokens line with
  | _ :: ("OK" | "ERR") :: _ -> true
  | _ -> false

(* Mask the interleaving-dependent response bodies, folding REPORT's EMIT
   payloads (sans the request's own sequence number) into the per-profile
   stream first — REPORT batching depends on when other clients ticked,
   but the concatenated stream cannot. *)
let transport_mask ~streams line response =
  match transport_tokens line with
  | _ :: "REPORT" :: name :: _ ->
    List.iter
      (fun r ->
        match transport_tokens r with
        | _ :: "EMIT" :: payload ->
          let prev = try Hashtbl.find streams name with Not_found -> [] in
          Hashtbl.replace streams name (String.concat " " payload :: prev)
        | _ -> ())
      response;
    [ "<masked>" ]
  | _ :: ("TICK" | "QUERY") :: _ -> [ "<masked>" ]
  | _ -> response

type transport_client = {
  tc_id : string;  (* HELLO identity: the named session *)
  tc_script : string array;  (* rendered once; retried verbatim *)
  mutable tc_k : int;  (* next command index *)
  mutable tc_transcript : (string * string list) list;  (* reverse order *)
  mutable tc_conn : Mqdp.Transport.t option;
  mutable tc_session : Mqdp.Serve.session option;
  mutable tc_sending : Util.Fault.Net.action list;
  mutable tc_reset_after : bool;  (* the plan ends in a connection reset *)
  mutable tc_backoff : int;  (* scheduler turns left to sleep *)
  mutable tc_attempts : int;  (* attempts on the current command *)
}

let one_transport_round seed =
  let rng = Util.Rng.create (0x7A45B + seed) in
  let fault = Util.Fault.create ~seed:(0xC4A05 + seed) () in
  let net_cfg =
    {
      Util.Fault.Net.max_chunk = 1 + Util.Rng.int rng 16;
      delay_p = 0.15;
      reset_p = 0.08;
    }
  in
  (* The idle deadline re-arms only on completed requests (the slowloris
     defense), so it must exceed the worst-case single-command delivery:
     with 1-byte chunks and delays, a ~60-byte line can take ~80 turns. *)
  let tconfig =
    {
      Mqdp.Transport.max_line = 512;
      max_pending_out = 1 lsl 16;
      idle_timeout = Some 250.;
    }
  in
  let nclients = 8 in
  let config =
    {
      Mqdp.Serve.default_config with
      Mqdp.Serve.shards = 1 + Util.Rng.int rng 4;
      jobs = 1 + Util.Rng.int rng 2;
      (* Shedding depends on the global backlog, which depends on the
         interleaving; a huge queue keeps FEED responses (delivered=n
         shed=0) a pure function of the sending client's own profiles. *)
      queue_capacity = 1 lsl 20;
      checkpoint_every = Util.Rng.int rng 5;
    }
  in
  (* Per-client scripts over disjoint label universes (labels 4i..4i+3),
     so every per-profile observable is independent of the other clients
     and any interleaving must produce the oracle's answers. *)
  let scripts =
    Array.init nclients (fun i ->
        let base = 4 * i in
        let nprof = 1 + Util.Rng.int rng 2 in
        let profiles = Array.init nprof (fun j -> Printf.sprintf "c%dp%d" i j) in
        let labels_csv () =
          let k = 1 + Util.Rng.int rng 3 in
          List.init k (fun _ -> base + Util.Rng.int rng 4)
          |> List.sort_uniq Int.compare
          |> List.map string_of_int |> String.concat ","
        in
        let cmds = ref [] in
        Array.iteri
          (fun j name ->
            let lambda = float_of_int (1 + Util.Rng.int rng 8) in
            let mode =
              match Util.Rng.int rng 3 with
              | 0 -> "instant"
              | plus ->
                Printf.sprintf "delayed%s:%.17g"
                  (if plus = 2 then "+" else "")
                  (Util.Rng.float rng lambda)
            in
            let nowindow = j > 0 && Util.Rng.bool rng in
            cmds :=
              Printf.sprintf "ADD %s %.17g %s %s%s" name lambda mode (labels_csv ())
                (if nowindow then " nowindow" else "")
              :: !cmds)
          profiles;
        let t = ref 0. in
        for n = 0 to 9 + Util.Rng.int rng 15 do
          t := !t +. Util.Rng.exponential rng ~rate:1.;
          cmds :=
            Printf.sprintf "FEED %d %.17g %s" ((i * 100000) + n) !t (labels_csv ())
            :: !cmds;
          if Util.Rng.int rng 4 = 0 then cmds := "TICK" :: !cmds;
          if Util.Rng.int rng 5 = 0 then
            cmds :=
              Printf.sprintf "REPORT %s" profiles.(Util.Rng.int rng nprof) :: !cmds;
          if Util.Rng.int rng 8 = 0 then cmds := "PING" :: !cmds;
          if Util.Rng.int rng 8 = 0 then
            cmds :=
              Printf.sprintf "QUERY %s" profiles.(Util.Rng.int rng nprof) :: !cmds;
          if Util.Rng.int rng 10 = 0 then
            cmds :=
              Printf.sprintf "CHECKPOINT %s" profiles.(Util.Rng.int rng nprof)
              :: !cmds
        done;
        cmds := "TICK" :: !cmds;
        Array.iter
          (fun name ->
            cmds := Printf.sprintf "REPORT %s" name :: Printf.sprintf "DRAIN %s" name :: !cmds)
          profiles;
        let bare = List.rev !cmds in
        Array.of_list (List.mapi (fun k cmd -> Printf.sprintf "%d %s" (k + 1) cmd) bare))
  in
  let engine = ref (Mqdp.Serve.create config) in
  let shutdown_engine () = Mqdp.Serve.shutdown !engine in
  (* Half the rounds run durable: sessions journal to a state dir, the
     graceful mid-round restart goes through the daemon's real persist +
     boot path, and one extra hard kill -9 lands between a command's
     execution and its response delivery. *)
  let durable = Util.Rng.bool rng in
  let state_dir =
    if durable then Some (Filename.temp_dir "mqdp_fuzz_transport" ".state")
    else None
  in
  let epoch = ref 0 in
  (match state_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.atomic_write ~fsync:false ~path:(sim_manifest_path dir)
      (Mqdp.Serve.manifest ~extra:[ ("epoch", 0); ("journal", 0) ] !engine);
    Mqdp.Serve.attach_journal ~fsync:false !engine ~dir ~covered:0);
  Fun.protect
    ~finally:(fun () ->
      shutdown_engine ();
      if Sys.getenv_opt "MQDP_FUZZ_KEEP" = None then Option.iter Util.Fs.remove_tree state_dir)
  @@ fun () ->
  let clients =
    Array.init nclients (fun i ->
        {
          tc_id = Printf.sprintf "c%d" i;
          tc_script = scripts.(i);
          tc_k = 0;
          tc_transcript = [];
          tc_conn = None;
          tc_session = None;
          tc_sending = [];
          tc_reset_after = false;
          tc_backoff = 0;
          tc_attempts = 0;
        })
  in
  let streams = Hashtbl.create 32 in
  let turn = ref 0 in
  let now () = float_of_int !turn in
  (* Drive a connection's state machine exactly the way the event loop
     does: execute every framed request, queue its response. *)
  let pump tr session =
    let rec go () =
      match Mqdp.Transport.next tr ~now:(now ()) with
      | Mqdp.Transport.Request line ->
        (match Mqdp.Transport.parse_hello line with
        | Mqdp.Transport.Hello_empty ->
          Mqdp.Transport.respond tr [ "0 ERR parse empty client id" ]
        | Mqdp.Transport.Hello id ->
          (* Same greeting the real server sends: the session's recovered
             watermark rides along so reconnecting clients resume their
             sequence space above everything already executed. *)
          let s = Mqdp.Serve.session !engine ~id in
          Mqdp.Transport.respond tr
            [ Mqdp.Transport.hello_greeting ~id ~seq:(Mqdp.Serve.session_seq s) ]
        | Mqdp.Transport.Not_hello -> (
          match session with
          | Some s ->
            Mqdp.Transport.respond tr (Mqdp.Serve.exec_on !engine s line);
            (* The daemon persists at every durability point; the durable
               rounds replicate that discipline (and its compaction). *)
            if Mqdp.Serve.is_durability_point_line line then
              Option.iter
                (fun dir -> sim_persist ~dir ~epoch !engine)
                state_dir
          | None -> check ~seed false "request before HELLO in the simulator"));
        go ()
      | Mqdp.Transport.Wait | Mqdp.Transport.Close _ -> ()
    in
    go ()
  in
  let take_output tr =
    match Mqdp.Transport.output tr with
    | None -> ""
    | Some (store, pos, len) ->
      let s = Bytes.sub_string store pos len in
      Mqdp.Transport.wrote tr len;
      s
  in
  let rec start_send c =
    let data = c.tc_script.(c.tc_k) ^ "\n" in
    let actions, reset = Util.Fault.Net.plan fault ~config:net_cfg data in
    c.tc_sending <- actions;
    c.tc_reset_after <- reset;
    (* A reset at byte 0: nothing was delivered; the connection just
       died. *)
    if actions = [] && reset then kill_and_retry c
  and kill_and_retry c =
    if Sys.getenv_opt "MQDP_FUZZ_DEBUG" <> None then
      Printf.eprintf "[turn %d] %s retry #%d on %S\n%!" !turn c.tc_id
        (c.tc_attempts + 1) c.tc_script.(c.tc_k);
    c.tc_conn <- None;
    c.tc_session <- None;
    c.tc_sending <- [];
    c.tc_attempts <- c.tc_attempts + 1;
    c.tc_backoff <- 1 + min c.tc_attempts 6;
    check ~seed (c.tc_attempts < 200)
      (Printf.sprintf "client %s starved retrying %S" c.tc_id
         c.tc_script.(c.tc_k))
  in
  let deliver_response c tr ~chaos =
    let out = take_output tr in
    let condemned =
      match Mqdp.Transport.next tr ~now:(now ()) with
      | Mqdp.Transport.Close _ -> true
      | Mqdp.Transport.Request _ | Mqdp.Transport.Wait -> false
    in
    let lines =
      if out = "" then []
      else begin
        check ~seed
          (out.[String.length out - 1] = '\n')
          "transport output did not end at a line boundary";
        String.split_on_char '\n' (String.sub out 0 (String.length out - 1))
      end
    in
    match lines with
    | [] -> kill_and_retry c
    | first :: _ when String.starts_with ~prefix:"0 ERR" first ->
      (* Transport-level rejection: the request never executed. *)
      kill_and_retry c
    | _ ->
      check ~seed
        (response_is_final (List.nth lines (List.length lines - 1)))
        "response did not terminate with <seq> OK|ERR";
      let eaten =
        chaos && snd (Util.Fault.Net.plan fault ~config:net_cfg out)
      in
      if eaten then kill_and_retry c
      else begin
        let line = c.tc_script.(c.tc_k) in
        c.tc_transcript <- (line, transport_mask ~streams line lines) :: c.tc_transcript;
        c.tc_k <- c.tc_k + 1;
        c.tc_attempts <- 0;
        if condemned then kill_and_retry c |> ignore
      end
  in
  let client_done c = c.tc_k >= Array.length c.tc_script in
  (* kill -9, durable rounds only: no quiesce, no drain. Every connection
     dies on the spot — clients mid-script retry their current command
     verbatim — and the engine reboots through the daemon's boot path, so
     recovered sessions must answer already-executed retries from the
     journal cache instead of re-executing them. *)
  let kill_pending = ref false in
  let hard_kill () =
    Array.iter
      (fun c ->
        match c.tc_conn with
        | None -> ()
        | Some _ ->
          if client_done c then begin
            c.tc_conn <- None;
            c.tc_session <- None
          end
          else kill_and_retry c)
      clients;
    match state_dir with
    | Some dir -> sim_reboot ~config ~dir ~epoch engine
    | None -> assert false
  in
  (* One scheduler turn for one client. [quiesce] suppresses new commands
     (the pre-drain barrier); in-flight ones still run to completion. *)
  let step_client ~quiesce c =
    if not (client_done c) then
      if c.tc_backoff > 0 then c.tc_backoff <- c.tc_backoff - 1
      else
        match c.tc_conn with
        | None ->
          if not quiesce || c.tc_attempts > 0 then begin
            let tr = Mqdp.Transport.create ~config:tconfig ~now:(now ()) () in
            (* Bind the session first to know the watermark the greeting
               must carry — 0 on a fresh engine, the journal-recovered
               last_seq after a durable reboot. *)
            let session = Mqdp.Serve.session !engine ~id:c.tc_id in
            let expected =
              Mqdp.Transport.hello_greeting ~id:c.tc_id
                ~seq:(Mqdp.Serve.session_seq session)
              ^ "\n"
            in
            Mqdp.Transport.feed_string tr ("HELLO " ^ c.tc_id ^ "\n");
            pump tr None;
            let greeting = take_output tr in
            check ~seed (greeting = expected)
              (Printf.sprintf "unexpected greeting %S (want %S)" greeting
                 expected);
            c.tc_conn <- Some tr;
            c.tc_session <- Some session;
            start_send c
          end
        | Some tr -> (
          match c.tc_sending with
          | Util.Fault.Net.Delay :: rest -> c.tc_sending <- rest
          | Util.Fault.Net.Chunk s :: rest ->
            Mqdp.Transport.feed_string tr s;
            pump tr c.tc_session;
            c.tc_sending <- rest;
            if rest = [] then
              if !kill_pending then begin
                (* The daemon dies right here: the command just executed
                   (and journaled) but its response never leaves the
                   transport buffer. *)
                kill_pending := false;
                ignore (take_output tr);
                hard_kill ()
              end
              else if c.tc_reset_after then kill_and_retry c
              else deliver_response c tr ~chaos:true
          | [] ->
            (* Between commands on a live connection. *)
            pump tr c.tc_session;
            if not quiesce then start_send c)
  in
  (* Hostile client 1: slowloris. One junk byte per turn, never a
     newline — the idle deadline must condemn it. *)
  let sl = Mqdp.Transport.create ~config:tconfig ~now:0. () in
  let sl_closed = ref None in
  let step_slowloris () =
    if !sl_closed = None then begin
      Mqdp.Transport.feed_string sl "x";
      match Mqdp.Transport.next sl ~now:(now ()) with
      | Mqdp.Transport.Close r -> sl_closed := Some r
      | Mqdp.Transport.Wait -> ()
      | Mqdp.Transport.Request _ ->
        check ~seed false "slowloris bytes framed a request"
    end
  in
  (* Hostile client 2: an unterminated line far beyond the framing cap. *)
  let ov = Mqdp.Transport.create ~config:tconfig ~now:0. () in
  let ov_closed = ref None in
  let step_oversizer () =
    if !ov_closed = None then begin
      Mqdp.Transport.feed_string ov (String.make 64 'A');
      match Mqdp.Transport.next ov ~now:(now ()) with
      | Mqdp.Transport.Close r -> ov_closed := Some r
      | Mqdp.Transport.Wait -> ()
      | Mqdp.Transport.Request _ ->
        check ~seed false "oversized bytes framed a request"
    end
  in
  (* Mid-round SIGTERM: quiesce in-flight commands, drain surviving
     connections, snapshot every shard, boot a fresh engine from the
     snapshots, reconnect everyone. Memory-only rounds lose every session
     (clients restart their sequence space against fresh watermarks);
     durable rounds persist + reboot through the daemon's real paths and
     sessions survive. *)
  let drain_at =
    if Util.Rng.int rng 2 = 0 then Some (20 + Util.Rng.int rng 200) else None
  in
  let kill_at = if durable then Some (20 + Util.Rng.int rng 200) else None in
  let killed = ref false in
  let restart_engine () =
    Array.iter
      (fun c ->
        match c.tc_conn with
        | Some tr ->
          Mqdp.Transport.begin_drain tr;
          pump tr c.tc_session;
          check ~seed
            (match Mqdp.Transport.next tr ~now:(now ()) with
            (* Idle_timeout: the connection was condemned while the
               quiesce barrier waited on a slower client — still a clean
               close with nothing framed left behind. *)
            | Mqdp.Transport.Close (Mqdp.Transport.Drained | Mqdp.Transport.Idle_timeout)
              ->
              true
            | _ -> false)
            "an idle connection did not drain to Close Drained";
          c.tc_conn <- None;
          c.tc_session <- None
        | None -> ())
      clients;
    match state_dir with
    | Some dir ->
      sim_persist ~dir ~epoch !engine;
      sim_reboot ~config ~dir ~epoch engine
    | None ->
      let snaps =
        List.init (Mqdp.Serve.shard_count !engine)
          (Mqdp.Serve.shard_snapshot !engine)
      in
      shutdown_engine ();
      engine := Mqdp.Serve.create config;
      List.iteri (fun i s -> Mqdp.Serve.load_shard !engine i s) snaps
  in
  let draining = ref false in
  let drained = ref false in
  let all_done () = Array.for_all client_done clients in
  let idle_or_done c =
    client_done c || (c.tc_sending = [] && c.tc_attempts = 0 && c.tc_backoff = 0)
  in
  while
    (not (all_done ()))
    || !sl_closed = None
    || !ov_closed = None
  do
    incr turn;
    check ~seed (!turn < 500_000) "the simulated round did not terminate";
    (match drain_at with
    | Some at when (not !drained) && !turn >= at -> draining := true
    | _ -> ());
    (match kill_at with
    | Some at when (not !killed) && (not !draining) && !turn >= at ->
      (* Arm the kill: it fires at the next completed request, between
         execution and response delivery. *)
      killed := true;
      kill_pending := true
    | _ -> ());
    if !draining && Array.for_all idle_or_done clients then begin
      restart_engine ();
      draining := false;
      drained := true
    end;
    Array.iter (step_client ~quiesce:!draining) clients;
    step_slowloris ();
    step_oversizer ()
  done;
  check ~seed
    (!sl_closed = Some Mqdp.Transport.Idle_timeout)
    "the slowloris was not condemned by the idle deadline";
  check ~seed
    (String.starts_with ~prefix:"0 ERR idle-timeout" (take_output sl))
    "the slowloris got no transport-level idle-timeout notice";
  check ~seed
    (!ov_closed = Some Mqdp.Transport.Line_too_long)
    "the oversized line was not condemned by the framing cap";
  check ~seed
    (String.starts_with ~prefix:"0 ERR line-too-long" (take_output ov))
    "the oversized line got no transport-level notice";
  check ~seed (Mqdp.Serve.backlog !engine = 0)
    "acknowledged posts left unapplied after the chaos run";
  (* The oracle: the same scripts, sequentially, no transport, no chaos. *)
  let clean = Mqdp.Serve.create config in
  Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown clean) @@ fun () ->
  let clean_streams = Hashtbl.create 32 in
  Array.iteri
    (fun i script ->
      let session = Mqdp.Serve.session clean ~id:(Printf.sprintf "c%d" i) in
      let transcript =
        Array.to_list script
        |> List.map (fun line ->
               let response = Mqdp.Serve.exec_on clean session line in
               (line, transport_mask ~streams:clean_streams line response))
      in
      let got = List.rev clients.(i).tc_transcript in
      List.iteri
        (fun k ((line, masked) : string * string list) ->
          let exp_line, exp_masked = List.nth transcript k in
          check ~seed (String.equal line exp_line) "transcript lines diverged";
          check ~seed
            (List.equal String.equal masked exp_masked)
            (Printf.sprintf
               "client %d diverged from the sequential oracle on %S:\n\
               \  got      %s\n  expected %s" i line
               (String.concat " | " masked)
               (String.concat " | " exp_masked)))
        got;
      check ~seed
        (List.length got = List.length transcript)
        (Printf.sprintf "client %d transcript length %d, oracle %d" i
           (List.length got) (List.length transcript)))
    scripts;
  check ~seed (Mqdp.Serve.backlog clean = 0) "oracle backlog nonzero";
  Hashtbl.iter
    (fun name stream ->
      let chaos_stream = try Hashtbl.find streams name with Not_found -> [] in
      check ~seed
        (List.equal String.equal stream chaos_stream)
        (Printf.sprintf
           "profile %s emission stream diverged:\n  chaos %s\n  clean %s" name
           (String.concat " | " (List.rev chaos_stream))
           (String.concat " | " (List.rev stream))))
    clean_streams

let fuzz_loop ~seconds ~seed0 ~what round =
  let start = Unix.gettimeofday () in
  let rounds = ref 0 and seed = ref seed0 in
  try
    while Unix.gettimeofday () -. start < seconds do
      round !seed;
      incr rounds;
      incr seed
    done;
    Printf.printf "fuzz[%s]: %d rounds clean in %.1fs (seeds %d..%d)\n" what !rounds
      seconds seed0 (!seed - 1)
  with
  | Discrepancy message ->
    Printf.eprintf "fuzz[%s]: DISCREPANCY after %d rounds — %s\n" what !rounds message;
    exit 1
  | e ->
    Printf.eprintf "fuzz[%s]: CRASH at seed %d — %s\n" what !seed (Printexc.to_string e);
    exit 1

type mode =
  | Diff
  | Budget
  | Window
  | Serve
  | Transport
  | Fault of string * Mqdp.Feed.policy option

let () =
  let mode, rest =
    match Array.to_list Sys.argv with
    | _ :: "--fault" :: p :: rest -> (Fault (p, policy_of_string p), rest)
    | _ :: "--budget" :: rest -> (Budget, rest)
    | _ :: "--window" :: rest -> (Window, rest)
    | _ :: "--serve" :: rest -> (Serve, rest)
    | _ :: "--transport" :: rest -> (Transport, rest)
    | _ :: rest -> (Diff, rest)
    | [] -> (Diff, [])
  in
  let seconds = match rest with s :: _ -> float_of_string s | [] -> 10. in
  let seed0 = match rest with _ :: s :: _ -> int_of_string s | _ -> 1 in
  match mode with
  | Diff -> fuzz_loop ~seconds ~seed0 ~what:"diff" one_round
  | Budget -> fuzz_loop ~seconds ~seed0 ~what:"budget" one_budget_round
  | Window -> fuzz_loop ~seconds ~seed0 ~what:"window" one_window_round
  | Serve -> fuzz_loop ~seconds ~seed0 ~what:"serve" one_serve_round
  | Transport -> fuzz_loop ~seconds ~seed0 ~what:"transport" one_transport_round
  | Fault (name, policy) ->
    fuzz_loop ~seconds ~seed0 ~what:("fault:" ^ name) (one_fault_round ~policy)
