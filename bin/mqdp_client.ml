(* mqdp_client — retry-safe command-line client for mqdp_serve's TCP
   transport. Reads bare commands (no sequence numbers) from stdin, lets
   Mqdp.Client own the sequence space and the retry/backoff discipline,
   and prints each response. With --hello the client lands on a named
   server-side session, so killing and restarting mqdp_client (or the
   connection) keeps idempotent retries working.

   usage: mqdp_client --port N [--hello ID] [--timeout S] [--attempts N]

   Exit status: 0 when every command got a response (server-level ERR
   responses included — they are answers); 1 when the transport gave up. *)

let () =
  let port = ref 0 in
  let hello = ref None in
  let timeout = ref 10. in
  let attempts = ref Mqdp.Client.default_config.Mqdp.Client.max_attempts in
  let args =
    [
      ("--port", Arg.Set_int port, "N  daemon TCP port (required)");
      ( "--hello",
        Arg.String (fun id -> hello := Some id),
        "ID  bind the named session ID (survives reconnects)" );
      ("--timeout", Arg.Set_float timeout, "S  per-exchange socket timeout");
      ("--attempts", Arg.Set_int attempts, "N  tries per command before giving up");
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "mqdp_client --port N [options] < commands";
  if !port <= 0 then begin
    prerr_endline "mqdp_client: --port is required";
    exit 2
  end;
  let lc = Net.Line_client.create ?hello:!hello ~timeout:!timeout ~port:!port () in
  let client =
    Mqdp.Client.create
      ~config:{ Mqdp.Client.default_config with Mqdp.Client.max_attempts = !attempts }
      (Net.Line_client.io lc)
  in
  (* Greet eagerly so a journal-recovered session's watermark is known
     before the first request is numbered. *)
  if !hello <> None then ignore (Net.Line_client.ensure_connected lc);
  let failed = ref false in
  (try
     while true do
       let line = String.trim (input_line stdin) in
       if line <> "" then begin
         (* A daemon restart may have recovered our --hello session from
            its journal: the greeting's seq=N watermark tells us where its
            sequence space already reaches, and numbering above it keeps
            a restarted mqdp_client from colliding with (and being
            answered stale cached responses for) executed sequences. *)
         Option.iter
           (Mqdp.Client.sync_seq client)
           (Net.Line_client.hello_watermark lc);
         match Mqdp.Client.request client line with
         | Ok response -> List.iter print_endline response
         | Error (Mqdp.Client.Gave_up { attempts; line }) ->
           Printf.eprintf "mqdp_client: gave up on %S after %d attempts\n%!" line
             attempts;
           failed := true
       end
     done
   with End_of_file -> ());
  Net.Line_client.close lc;
  exit (if !failed then 1 else 0)
