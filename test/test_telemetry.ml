(* Util.Telemetry: registry exactness under domain parallelism, span
   nesting and exception safety, histogram quantiles, the disabled
   fast path, and the Chrome-trace JSONL exporter.

   Telemetry is process-global state, so every test that enables it
   restores the disabled/null-sink resting state in a finally — a leaked
   enable would silently change what other suites measure. *)

let with_telemetry ?sink f =
  Util.Telemetry.reset ();
  Option.iter Util.Telemetry.set_sink sink;
  Util.Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Util.Telemetry.disable ();
      Util.Telemetry.set_sink Util.Telemetry.null_sink)
    f

let test_disabled_is_inert () =
  Util.Telemetry.reset ();
  Alcotest.(check bool) "disabled by default" false (Util.Telemetry.enabled ());
  let c = Util.Telemetry.counter "t.inert_counter" in
  let g = Util.Telemetry.gauge "t.inert_gauge" in
  let h = Util.Telemetry.histogram "t.inert_histogram" in
  Util.Telemetry.incr c;
  Util.Telemetry.add c 41;
  Util.Telemetry.set g 7;
  Util.Telemetry.observe h 0.5;
  Alcotest.(check int) "counter untouched" 0 (Util.Telemetry.counter_value c);
  Alcotest.(check int) "gauge untouched" 0 (Util.Telemetry.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Util.Telemetry.count h);
  (* A disabled span still runs its body, exactly once, with no events. *)
  let fired = ref 0 in
  let body_runs = ref 0 in
  Util.Telemetry.set_sink
    { Util.Telemetry.on_span = (fun ~name:_ ~depth:_ ~start_ns:_ ~dur_ns:_ ~args:_ -> incr fired) };
  let out = Util.Telemetry.span ~name:"t.inert_span" (fun () -> incr body_runs; 5) in
  Util.Telemetry.set_sink Util.Telemetry.null_sink;
  Alcotest.(check int) "span returns the body's value" 5 out;
  Alcotest.(check int) "body ran once" 1 !body_runs;
  Alcotest.(check int) "no sink event while disabled" 0 !fired

let test_counters_and_gauges () =
  with_telemetry (fun () ->
      let c = Util.Telemetry.counter "t.counter" in
      Alcotest.(check bool) "interned by name" true
        (c == Util.Telemetry.counter "t.counter");
      Util.Telemetry.incr c;
      Util.Telemetry.add c 9;
      Alcotest.(check int) "counter value" 10 (Util.Telemetry.counter_value c);
      let g = Util.Telemetry.gauge "t.gauge" in
      Util.Telemetry.set g 3;
      Util.Telemetry.set g 12;
      Alcotest.(check int) "gauge keeps the last set" 12
        (Util.Telemetry.gauge_value g))

(* Counters must be exact (not approximate) under Pool parallelism: the
   whole point of atomic cells is that concurrent bumps never lose
   increments. *)
let test_counter_exact_under_pool () =
  with_telemetry (fun () ->
      let c = Util.Telemetry.counter "t.parallel_counter" in
      let n = 50_000 in
      Util.Pool.with_pool ~jobs:4 (fun pool ->
          Util.Pool.parallel_for pool n ~f:(fun _ -> Util.Telemetry.incr c));
      Alcotest.(check int) "no lost increments" n (Util.Telemetry.counter_value c))

let test_histogram_quantiles () =
  with_telemetry (fun () ->
      let h = Util.Telemetry.histogram "t.histogram" in
      Alcotest.(check (float 0.)) "empty quantile is 0" 0.
        (Util.Telemetry.quantile h 50.);
      (* 100 observations at 1ms, 10 at 100ms: p50 lands in the 1ms
         bucket, p99 in the 100ms bucket. Bucket representatives carry a
         half-bucket (~4.5%) error, hence the loose tolerance. *)
      for _ = 1 to 100 do
        Util.Telemetry.observe h 1e-3
      done;
      for _ = 1 to 10 do
        Util.Telemetry.observe h 0.1
      done;
      Alcotest.(check int) "count" 110 (Util.Telemetry.count h);
      Alcotest.(check (float 0.05)) "sum" 1.1 (Util.Telemetry.sum h);
      let p50 = Util.Telemetry.quantile h 50. in
      let p90 = Util.Telemetry.quantile h 90. in
      let p99 = Util.Telemetry.quantile h 99. in
      Alcotest.(check bool) "p50 near 1ms" true (p50 > 0.8e-3 && p50 < 1.2e-3);
      Alcotest.(check bool) "p99 near 100ms" true (p99 > 0.08 && p99 < 0.12);
      Alcotest.(check bool) "quantiles are monotone" true (p50 <= p90 && p90 <= p99);
      Util.Telemetry.reset_histogram h;
      Alcotest.(check int) "reset clears the count" 0 (Util.Telemetry.count h);
      Alcotest.check_raises "quantile range check"
        (Invalid_argument "Telemetry.quantile: p out of [0, 100]")
        (fun () -> ignore (Util.Telemetry.quantile h 101.)))

let test_histogram_extremes () =
  with_telemetry (fun () ->
      let h = Util.Telemetry.histogram "t.extremes" in
      (* Sub-lo, zero, negative, NaN land in bucket 0; +inf clamps to the
         last bucket. Nothing raises, counts stay exact. *)
      List.iter (Util.Telemetry.observe h)
        [ 1e-12; 0.; -5.; Float.nan; Float.infinity ];
      Alcotest.(check int) "all observations counted" 5 (Util.Telemetry.count h);
      Alcotest.(check bool) "p100 is finite" true
        (Float.is_finite (Util.Telemetry.quantile h 100.)))

let test_span_nesting_and_exceptions () =
  let events = ref [] in
  let sink =
    {
      Util.Telemetry.on_span =
        (fun ~name ~depth ~start_ns:_ ~dur_ns ~args ->
          events := (name, depth, dur_ns, args) :: !events);
    }
  in
  with_telemetry ~sink (fun () ->
      let out =
        Util.Telemetry.span ~name:"t.outer" (fun () ->
            Util.Telemetry.span ~name:"t.inner"
              ~args:(fun () -> [ ("k", "v") ])
              (fun () -> 21)
            * 2)
      in
      Alcotest.(check int) "nested result" 42 out;
      (match List.rev !events with
      | [ ("t.inner", 1, _, [ ("k", "v") ]); ("t.outer", 0, _, []) ] -> ()
      | es ->
        Alcotest.failf "unexpected events: %s"
          (String.concat "; "
             (List.map (fun (n, d, _, _) -> Printf.sprintf "%s@%d" n d) es)));
      (* Span durations also feed a "span.<name>" histogram. *)
      Alcotest.(check int) "span histogram recorded" 1
        (Util.Telemetry.count (Util.Telemetry.histogram "span.t.outer"));
      (* An exception closes the span (event fired, depth restored) and
         propagates unchanged. *)
      events := [];
      (match Util.Telemetry.span ~name:"t.raises" (fun () -> failwith "boom") with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "exception intact" "boom" m);
      (match !events with
      | [ ("t.raises", 0, _, _) ] -> ()
      | _ -> Alcotest.fail "span event missing after an exception");
      events := [];
      ignore (Util.Telemetry.span ~name:"t.after" (fun () -> ()));
      match !events with
      | [ ("t.after", 0, _, _) ] -> ()
      | [ ("t.after", d, _, _) ] -> Alcotest.failf "depth leaked: %d" d
      | _ -> Alcotest.fail "expected exactly one event")

let test_snapshot_deterministic () =
  with_telemetry (fun () ->
      Util.Telemetry.incr (Util.Telemetry.counter "t.snap_b");
      Util.Telemetry.incr (Util.Telemetry.counter "t.snap_a");
      Util.Telemetry.set (Util.Telemetry.gauge "t.snap_g") 4;
      Util.Telemetry.observe (Util.Telemetry.histogram "t.snap_h") 1e-3;
      let names snapshot =
        List.filter_map
          (function
            | Util.Telemetry.Counter_entry (n, _) when String.length n > 6
                                                       && String.sub n 0 6 = "t.snap" ->
              Some n
            | Util.Telemetry.Gauge_entry (n, _)
            | Util.Telemetry.Histogram_entry (n, _)
              when String.length n > 6 && String.sub n 0 6 = "t.snap" ->
              Some n
            | _ -> None)
          snapshot
      in
      let s1 = names (Util.Telemetry.snapshot ()) in
      Alcotest.(check (list string)) "sorted within kind, counters first"
        [ "t.snap_a"; "t.snap_b"; "t.snap_g"; "t.snap_h" ] s1;
      (* Registration order cannot perturb the snapshot: identical calls
         give identical listings. *)
      Alcotest.(check (list string)) "stable across calls" s1
        (names (Util.Telemetry.snapshot ()));
      Util.Telemetry.reset ();
      Alcotest.(check int) "reset zeroes counters" 0
        (Util.Telemetry.counter_value (Util.Telemetry.counter "t.snap_a")))

(* Snapshot determinism under parallism: concurrent recording from Pool
   workers must not make two snapshots of the same quiesced registry
   differ. *)
let test_snapshot_after_parallel_load () =
  with_telemetry (fun () ->
      let c = Util.Telemetry.counter "t.load_counter" in
      let h = Util.Telemetry.histogram "t.load_histogram" in
      Util.Pool.with_pool ~jobs:4 (fun pool ->
          Util.Pool.parallel_for pool 10_000 ~f:(fun i ->
              Util.Telemetry.incr c;
              Util.Telemetry.observe h (1e-6 *. float_of_int (1 + (i mod 7)))));
      Alcotest.(check int) "counter exact" 10_000 (Util.Telemetry.counter_value c);
      Alcotest.(check int) "histogram exact" 10_000 (Util.Telemetry.count h);
      let s1 = Util.Telemetry.snapshot () and s2 = Util.Telemetry.snapshot () in
      Alcotest.(check bool) "snapshots agree once quiesced" true (s1 = s2))

(* Solver integration: counters move when the instrumented paths run, and
   the cover is bit-identical with telemetry on vs off. *)
let test_solver_counters_move () =
  let inst =
    List.init 30 (fun i ->
        Helpers.post ~id:i ~value:(float_of_int i) [ i mod 3 ])
    |> Helpers.instance_of
  in
  let lambda = Mqdp.Coverage.Fixed 2.5 in
  let off = (Mqdp.Solver.solve Mqdp.Solver.Greedy_sc inst lambda).Mqdp.Solver.cover in
  with_telemetry (fun () ->
      let before = Util.Telemetry.counter_value (Util.Telemetry.counter "greedy.picks") in
      let on = (Mqdp.Solver.solve Mqdp.Solver.Greedy_sc inst lambda).Mqdp.Solver.cover in
      Alcotest.(check (list int)) "cover identical with telemetry on" off on;
      let picks = Util.Telemetry.counter_value (Util.Telemetry.counter "greedy.picks") in
      Alcotest.(check int) "one pick counted per cover element"
        (List.length on) (picks - before);
      Alcotest.(check int) "solve span recorded" 1
        (Util.Telemetry.count (Util.Telemetry.histogram "span.solve.greedy-sc")))

let test_feed_counters_move () =
  with_telemetry (fun () ->
      let dropped () =
        Util.Telemetry.counter_value (Util.Telemetry.counter "feed.duplicate_dropped")
      in
      let before = dropped () in
      let feed =
        Mqdp.Feed.create
          ~config:{ Mqdp.Feed.default_config with reorder_window = 0 }
          ~lambda:1.0 Mqdp.Online.Instant
      in
      let p = Helpers.post ~id:1 ~value:0. [ 0 ] in
      ignore (Mqdp.Feed.push feed p);
      ignore (Mqdp.Feed.push feed p);
      Alcotest.(check int) "registry mirrors the feed's duplicate counter" 1
        (dropped () - before);
      Alcotest.(check int) "internal counter agrees" 1
        (Mqdp.Feed.counters feed).Mqdp.Feed.duplicate_dropped)

(* The JSONL exporter: one parseable object per line with the span name,
   microsecond timestamps, and args escaped. *)
let test_trace_exporter_format () =
  let path = Filename.temp_file "mqdp_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      with_telemetry ~sink:(Util.Telemetry.Trace.to_channel oc) (fun () ->
          Util.Telemetry.span ~name:"t.traced"
            ~args:(fun () -> [ ("key", "va\"lue") ])
            (fun () -> ()));
      close_out oc;
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      let has needle =
        let ln = String.length needle in
        let rec at i =
          i + ln <= String.length line
          && (String.sub line i ln = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) "names the span" true (has {|"name":"t.traced"|});
      Alcotest.(check bool) "complete event" true (has {|"ph":"X"|});
      Alcotest.(check bool) "has a duration" true (has {|"dur":|});
      Alcotest.(check bool) "escapes arg values" true (has {|"key":"va\"lue"|});
      Alcotest.(check bool) "one event, one line" true
        (line.[0] = '{' && line.[String.length line - 1] = '}'))

let suite =
  [
    Alcotest.test_case "disabled telemetry is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "counter exact under pool" `Quick
      test_counter_exact_under_pool;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
    Alcotest.test_case "span nesting and exceptions" `Quick
      test_span_nesting_and_exceptions;
    Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
    Alcotest.test_case "snapshot after parallel load" `Quick
      test_snapshot_after_parallel_load;
    Alcotest.test_case "solver counters move" `Quick test_solver_counters_move;
    Alcotest.test_case "feed counters mirror" `Quick test_feed_counters_move;
    Alcotest.test_case "trace exporter format" `Quick test_trace_exporter_format;
  ]
