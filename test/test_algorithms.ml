(* Offline algorithms: OPT (DP), brute force, GreedySC, Scan, Scan+.

   The heart of the suite: the exact algorithms must agree with each other
   on random small instances (with and without tied values), and every
   approximation must produce a valid cover within its proven bound. *)

open Helpers

let fixed l = Mqdp.Coverage.Fixed l

let figure2 =
  instance_of
    [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 0 ];
      post ~id:3 ~value:2. [ 0; 1 ]; post ~id:4 ~value:3. [ 1 ] ]

let all_solvers =
  [
    ("opt", fun inst l -> Mqdp.Opt.solve inst l);
    ("brute", fun inst l -> Mqdp.Brute_force.solve inst l);
    ("greedy", fun inst l -> Mqdp.Greedy_sc.solve inst l);
    ("greedy-heap", fun inst l -> Mqdp.Greedy_sc.solve ~selection:`Lazy_heap inst l);
    ("greedy-bucket", fun inst l -> Mqdp.Greedy_sc.solve ~selection:`Bucket_queue inst l);
    ("greedy-linear", fun inst l -> Mqdp.Greedy_sc.solve ~selection:`Linear_scan inst l);
    ("scan", fun inst l -> Mqdp.Scan.solve inst l);
    ("scan+", fun inst l -> Mqdp.Scan.solve_plus inst l);
  ]

let test_figure2_all () =
  List.iter
    (fun (name, solve) ->
      let cover = solve figure2 (fixed 1.) in
      Alcotest.(check bool) (name ^ " valid") true
        (Mqdp.Coverage.is_cover figure2 (fixed 1.) cover);
      Alcotest.(check int) (name ^ " optimal here") 2 (List.length cover))
    all_solvers

let test_empty_instance () =
  let inst = instance_of [] in
  List.iter
    (fun (name, solve) ->
      Alcotest.(check (list int)) (name ^ " empty") [] (solve inst (fixed 1.)))
    all_solvers

let test_single_post () =
  let inst = instance_of [ post ~id:1 ~value:0. [ 0; 1 ] ] in
  List.iter
    (fun (name, solve) ->
      Alcotest.(check (list int)) (name ^ " singleton") [ 0 ] (solve inst (fixed 1.)))
    all_solvers

let test_lambda_zero () =
  (* λ = 0: posts only cover posts at the same value. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:0. [ 0 ];
        post ~id:3 ~value:1. [ 0 ] ]
  in
  List.iter
    (fun (name, solve) ->
      let cover = solve inst (fixed 0.) in
      Alcotest.(check bool) (name ^ " valid") true
        (Mqdp.Coverage.is_cover inst (fixed 0.) cover);
      Alcotest.(check int) (name ^ " size") 2 (List.length cover))
    all_solvers

let test_set_cover_degenerate () =
  (* All posts at one time: MQDP degenerates to set cover; the optimum
     picks the two-label posts. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0; 1 ]; post ~id:2 ~value:0. [ 2; 3 ];
        post ~id:3 ~value:0. [ 0 ]; post ~id:4 ~value:0. [ 3 ] ]
  in
  Alcotest.(check int) "brute" 2 (List.length (Mqdp.Brute_force.solve inst (fixed 1.)));
  Alcotest.(check int) "greedy matches" 2
    (List.length (Mqdp.Greedy_sc.solve inst (fixed 1.)))

let test_scan_plus_orders () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0; 1 ]; post ~id:2 ~value:1. [ 0 ];
        post ~id:3 ~value:4. [ 1 ]; post ~id:4 ~value:5. [ 0; 1 ] ]
  in
  List.iter
    (fun order ->
      let cover = Mqdp.Scan.solve_plus ~order inst (fixed 1.) in
      Alcotest.(check bool) "valid under any order" true
        (Mqdp.Coverage.is_cover inst (fixed 1.) cover))
    [ Mqdp.Scan.Given; Mqdp.Scan.Most_frequent_first; Mqdp.Scan.Least_frequent_first ]

let test_opt_rejects_variable_lambda () =
  Alcotest.check_raises "unsupported"
    (Mqdp.Opt.Unsupported "Opt.solve requires a fixed lambda") (fun () ->
      ignore (Mqdp.Opt.solve figure2 (Mqdp.Coverage.Per_post_label (fun _ _ -> 1.))))

let test_opt_state_limit () =
  Alcotest.check_raises "state limit"
    (Mqdp.Opt.Too_large "Opt: more than 1 candidate end-patterns at step 1")
    (fun () -> ignore (Mqdp.Opt.solve ~max_states:1 figure2 (fixed 1.)))

let test_brute_force_limits () =
  let big =
    instance_of (List.init 50 (fun id -> post ~id ~value:(float_of_int id) [ 0; 1 ]))
  in
  Alcotest.check_raises "pair limit"
    (Mqdp.Brute_force.Too_large
       "Brute_force: 100 (post,label) pairs exceeds limit 10") (fun () ->
      ignore (Mqdp.Brute_force.solve ~max_pairs:10 big (fixed 1.)))

(* --- properties --- *)

let exact_agreement =
  qtest ~count:150 "OPT size = brute-force size (and both are covers)"
    (arb_instance_lambda ~max_posts:11 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let bf = Mqdp.Brute_force.solve inst lambda in
      let opt = Mqdp.Opt.solve inst lambda in
      ignore (check_cover "opt" inst lambda opt);
      ignore (check_cover "brute" inst lambda bf);
      if List.length bf <> List.length opt then
        QCheck.Test.fail_reportf "brute=%d opt=%d on %s" (List.length bf)
          (List.length opt) (describe_instance inst);
      Mqdp.Opt.min_size inst lambda = List.length bf)

let approximations_are_covers =
  qtest "all approximations produce valid covers"
    (arb_instance_lambda ~max_posts:30 ~max_labels:5 ~span:25. ())
    (fun (inst, l) ->
      let lambda = fixed l in
      List.for_all
        (fun (name, solve) -> check_cover name inst lambda (solve inst lambda))
        [ ("greedy", fun i l -> Mqdp.Greedy_sc.solve i l);
          ("greedy-heap", fun i l -> Mqdp.Greedy_sc.solve ~selection:`Lazy_heap i l);
          ("scan", fun i l -> Mqdp.Scan.solve i l);
          ("scan+", fun i l -> Mqdp.Scan.solve_plus i l) ])

let scan_bound =
  qtest ~count:150 "Scan within s times optimal"
    (arb_instance_lambda ~max_posts:11 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
      let scan = List.length (Mqdp.Scan.solve inst lambda) in
      let s = Mqdp.Instance.max_labels_per_post inst in
      scan <= s * optimal)

(* Scan+ is a heuristic; the paper makes no dominance claim over Scan (its
   effect depends on the label order), so we only check per-label pick
   counts: Scan+ never selects more posts for a label than Scan does. *)
let scan_plus_per_label_bound =
  qtest "Scan+ total picks bounded by Scan's per-label sum"
    (arb_instance_lambda ~max_posts:30 ~max_labels:4 ~span:25. ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let scan_sum =
        List.fold_left
          (fun acc a -> acc + List.length (Mqdp.Scan.solve_label inst lambda a))
          0
          (Mqdp.Instance.label_universe inst)
      in
      List.length (Mqdp.Scan.solve_plus inst lambda) <= scan_sum)

let scan_optimal_single_label =
  qtest ~count:150 "Scan optimal when every post has one label"
    (QCheck.pair (arb_instance ~max_posts:12 ~max_labels:3 ~max_per:1 ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.))))
    (fun (inst, l) ->
      let lambda = fixed l in
      List.length (Mqdp.Scan.solve inst lambda)
      = List.length (Mqdp.Brute_force.solve inst lambda))

let scan_per_label_optimal =
  qtest ~count:150 "Scan's per-label pass is optimal for that label"
    (arb_instance_lambda ~max_posts:12 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      List.for_all
        (fun a ->
          (* Restrict the instance to label a and compare with brute force. *)
          let restricted =
            Mqdp.Instance.create
              (Array.to_list (Mqdp.Instance.label_posts inst a)
              |> List.map (fun i ->
                     let p = Mqdp.Instance.post inst i in
                     Mqdp.Post.make ~id:p.Mqdp.Post.id ~value:p.Mqdp.Post.value
                       ~labels:(Mqdp.Label_set.singleton a)))
          in
          List.length (Mqdp.Scan.solve_label inst lambda a)
          = List.length (Mqdp.Brute_force.solve restricted lambda))
        (Mqdp.Instance.label_universe inst))

let greedy_selections_agree_on_size_invariant =
  qtest "greedy heap/linear both within ln bound of optimum"
    (arb_instance_lambda ~max_posts:11 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
      let bound =
        int_of_float
          (ceil
             (float_of_int optimal
             *. (1.
                +. log
                     (float_of_int
                        (max 2
                           (Mqdp.Instance.size inst * Mqdp.Instance.num_labels inst))))))
      in
      List.length (Mqdp.Greedy_sc.solve inst lambda) <= bound
      && List.length (Mqdp.Greedy_sc.solve ~selection:`Lazy_heap inst lambda) <= bound)

let monotone_in_lambda =
  qtest "optimal size non-increasing in lambda"
    (arb_instance ~max_posts:10 ~max_labels:3 ())
    (fun inst ->
      let size l = List.length (Mqdp.Brute_force.solve inst (fixed l)) in
      size 1. >= size 2. && size 2. >= size 4.)

let huge_lambda_collapses =
  qtest "lambda covering the whole span reduces to set cover on labels"
    (arb_instance ~max_posts:10 ~max_labels:3 ())
    (fun inst ->
      (* With lambda >= span every same-label pair covers each other, so
         the optimum equals the min number of posts whose label union is
         the universe. For 1-label posts that is |universe|; in general it
         is min set cover — we just check OPT <= |universe| and
         OPT >= ceil(|universe| / s). *)
      let lambda = fixed 1000. in
      let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
      let u = Mqdp.Instance.num_labels inst in
      let s = Mqdp.Instance.max_labels_per_post inst in
      optimal <= u && optimal * s >= u)

let variable_lambda_covers =
  qtest "approximations handle per-post lambda"
    (arb_instance ~max_posts:20 ~max_labels:3 ())
    (fun inst ->
      (* Radius grows with the post id parity — arbitrary but directional. *)
      let lambda =
        Mqdp.Coverage.Per_post_label
          (fun p _ -> if p.Mqdp.Post.id mod 2 = 0 then 3. else 0.5)
      in
      List.for_all
        (fun (name, cover) -> check_cover name inst lambda cover)
        [ ("greedy", Mqdp.Greedy_sc.solve inst lambda);
          ("scan", Mqdp.Scan.solve inst lambda);
          ("scan+", Mqdp.Scan.solve_plus inst lambda) ])

let brute_matches_on_variable_lambda =
  qtest ~count:100 "scan per-label optimality holds under per-post lambda"
    (arb_instance ~max_posts:10 ~max_labels:2 ~max_per:1 ())
    (fun inst ->
      let lambda =
        Mqdp.Coverage.Per_post_label (fun p _ -> if p.Mqdp.Post.id mod 3 = 0 then 2.5 else 1.)
      in
      List.length (Mqdp.Scan.solve inst lambda)
      = List.length (Mqdp.Brute_force.solve inst lambda))

(* The tentpole invariant: every GreedySC selection kernel returns the
   bit-identical cover — sequential and pooled, fixed and per-post λ —
   and commits the same number of greedy picks (pinned through the
   telemetry counter, so a kernel can't shortcut or double-pick without
   tripping this). *)
let kernel_variants_bit_identical =
  qtest ~count:60 "greedy kernels bit-identical across selection/jobs/lambda"
    (arb_instance_lambda ~max_posts:25 ~max_labels:4 ~span:25. ())
    (fun (inst, l) ->
      let picks = Util.Telemetry.counter "greedy.picks" in
      let solve_counted f =
        Util.Telemetry.enable ();
        Fun.protect ~finally:Util.Telemetry.disable (fun () ->
            let before = Util.Telemetry.counter_value picks in
            let cover = f () in
            (cover, Util.Telemetry.counter_value picks - before))
      in
      Util.Pool.with_pool ~jobs:2 (fun pool ->
          List.for_all
            (fun lambda ->
              let reference, ref_picks =
                solve_counted (fun () ->
                    Mqdp.Greedy_sc.solve ~selection:`Linear_scan inst lambda)
              in
              List.for_all
                (fun selection ->
                  let seq, seq_picks =
                    solve_counted (fun () -> Mqdp.Greedy_sc.solve ~selection inst lambda)
                  in
                  let pooled, pooled_picks =
                    solve_counted (fun () ->
                        Mqdp.Greedy_sc.solve ~selection ~pool inst lambda)
                  in
                  List.equal Int.equal seq reference
                  && List.equal Int.equal pooled reference
                  && seq_picks = ref_picks
                  && pooled_picks = ref_picks)
                [ `Linear_scan; `Lazy_heap; `Bucket_queue ])
            [
              fixed l;
              Mqdp.Coverage.Per_post_label
                (fun p _ -> if p.Mqdp.Post.id mod 2 = 0 then l else l /. 2.);
            ]))

(* Structural boundedness of the selection data structures: the bucket
   queue holds at most one slot per candidate, and the lazy heap's
   pop-then-repush refresh is net non-growing — so both peaks are bounded
   by the post count. This is the regression test for the old heap's
   lazy-deletion growth, now impossible by construction. *)
let test_selection_peaks_bounded () =
  let inst =
    instance_of
      (List.init 60 (fun id ->
           post ~id ~value:(float_of_int (id / 2)) [ id mod 3 ]))
  in
  let n = Mqdp.Instance.size inst in
  let lambda = fixed 4. in
  let queue_peak = Util.Telemetry.gauge "greedy.queue_peak" in
  let heap_peak = Util.Telemetry.gauge "greedy.heap_peak" in
  Util.Telemetry.enable ();
  Fun.protect ~finally:Util.Telemetry.disable (fun () ->
      ignore (Mqdp.Greedy_sc.solve ~selection:`Bucket_queue inst lambda);
      ignore (Mqdp.Greedy_sc.solve ~selection:`Lazy_heap inst lambda));
  let qp = Util.Telemetry.gauge_value queue_peak in
  let hp = Util.Telemetry.gauge_value heap_peak in
  Alcotest.(check bool) "queue peak positive" true (qp > 0);
  Alcotest.(check bool)
    (Printf.sprintf "queue peak %d bounded by %d candidates" qp n)
    true (qp <= n);
  Alcotest.(check bool) "heap peak positive" true (hp > 0);
  Alcotest.(check bool)
    (Printf.sprintf "heap peak %d bounded by %d candidates" hp n)
    true (hp <= n)

let solver_dispatch_consistent =
  qtest ~count:60 "Solver.solve dispatch equals direct calls"
    (arb_instance_lambda ~max_posts:10 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      List.for_all
        (fun (algo, direct) ->
          (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.cover = direct inst lambda)
        [ (Mqdp.Solver.Scan, fun i l -> Mqdp.Scan.solve i l);
          (Mqdp.Solver.Scan_plus, fun i l -> Mqdp.Scan.solve_plus i l);
          (Mqdp.Solver.Greedy_sc, fun i l -> Mqdp.Greedy_sc.solve i l);
          (Mqdp.Solver.Opt, fun i l -> Mqdp.Opt.solve i l) ])

let suite =
  [
    Alcotest.test_case "Figure 2, all algorithms" `Quick test_figure2_all;
    Alcotest.test_case "empty instance" `Quick test_empty_instance;
    Alcotest.test_case "single post" `Quick test_single_post;
    Alcotest.test_case "lambda = 0" `Quick test_lambda_zero;
    Alcotest.test_case "set-cover degenerate case" `Quick test_set_cover_degenerate;
    Alcotest.test_case "Scan+ label orders" `Quick test_scan_plus_orders;
    Alcotest.test_case "OPT rejects variable lambda" `Quick test_opt_rejects_variable_lambda;
    Alcotest.test_case "OPT state limit" `Quick test_opt_state_limit;
    Alcotest.test_case "brute-force limits" `Quick test_brute_force_limits;
    exact_agreement;
    approximations_are_covers;
    scan_bound;
    scan_plus_per_label_bound;
    scan_optimal_single_label;
    scan_per_label_optimal;
    greedy_selections_agree_on_size_invariant;
    monotone_in_lambda;
    huge_lambda_collapses;
    variable_lambda_covers;
    brute_matches_on_variable_lambda;
    kernel_variants_bit_identical;
    Alcotest.test_case "selection peaks bounded by candidates" `Quick
      test_selection_peaks_bounded;
    solver_dispatch_consistent;
  ]
