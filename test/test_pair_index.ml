(* The compiled pair-index layer: every compiled fact must match a naive
   O(n²) recomputation, and the solvers running off the index must return
   exactly the covers the pre-refactor implementations produced — the
   reference implementations below are literal translations of the old
   per-solver geometry code (linear-scan best pick, per-label covered
   bytes, boxed coverer lists, hashtable pair ids). *)

open Helpers

let fixed l = Mqdp.Coverage.Fixed l

(* Deterministic per-post λ, directional like Proportional's Eq. 2. *)
let variable =
  Mqdp.Coverage.Per_post_label
    (fun p a -> 0.3 +. (0.4 *. float_of_int ((p.Mqdp.Post.id + a) mod 4)))

let both_lambdas l = [ ("fixed", fixed l); ("per-post", variable) ]

let pair_ids inst index =
  List.concat_map
    (fun a ->
      let base = Mqdp.Pair_index.label_base index a in
      List.init (Mqdp.Pair_index.label_size index a) (fun ia -> (a, base + ia)))
    (Mqdp.Instance.label_universe inst)

(* Naive coverer set of pair (a, pos): every post carrying [a] whose
   coverage interval — endpoint arithmetic, as the algorithms compute it —
   contains the pair's value. *)
let naive_coverers inst lambda a pos =
  let x = Mqdp.Instance.value inst pos in
  List.filter
    (fun k ->
      let p = Mqdp.Instance.post inst k in
      Mqdp.Label_set.mem a p.Mqdp.Post.labels
      &&
      let r = Mqdp.Coverage.radius lambda p a in
      x >= p.Mqdp.Post.value -. r && x <= p.Mqdp.Post.value +. r)
    (List.init (Mqdp.Instance.size inst) Fun.id)

(* --- reference implementations: the pre-refactor solver geometry --- *)

(* Old Scan.best_pick: binary search for a fixed λ, linear scan under a
   per-post λ. *)
let ref_best_pick inst lambda a lp x =
  match lambda with
  | Mqdp.Coverage.Fixed l ->
    let key pos = Mqdp.Instance.value inst pos in
    let j = Util.Array_util.upper_bound ~key lp (x +. l) - 1 in
    if j < 0 || Mqdp.Instance.value inst lp.(j) < x -. l then
      invalid_arg "ref_best_pick: no candidate";
    j
  | Mqdp.Coverage.Per_post_label _ ->
    let best = ref (-1) and best_reach = ref neg_infinity in
    Array.iteri
      (fun j pos ->
        let p = Mqdp.Instance.post inst pos in
        let r = Mqdp.Coverage.radius lambda p a in
        if Float.abs (p.Mqdp.Post.value -. x) <= r then begin
          let right = p.Mqdp.Post.value +. r in
          if right > !best_reach then begin
            best := j;
            best_reach := right
          end
        end)
      lp;
    if !best < 0 then invalid_arg "ref_best_pick: no candidate";
    !best

let ref_chain inst lambda a =
  let lp = Mqdp.Instance.label_posts inst a in
  let n = Array.length lp in
  let rec loop i acc =
    if i >= n then List.rev acc
    else begin
      let x = Mqdp.Instance.value inst lp.(i) in
      let j = ref_best_pick inst lambda a lp x in
      let p = Mqdp.Instance.post inst lp.(j) in
      let right = p.Mqdp.Post.value +. Mqdp.Coverage.radius lambda p a in
      let key pos = Mqdp.Instance.value inst pos in
      let next = Util.Array_util.upper_bound ~key lp right in
      loop (max next (i + 1)) ((i, j) :: acc)
    end
  in
  loop 0 []

let ref_scan inst lambda =
  List.concat_map
    (fun a ->
      let lp = Mqdp.Instance.label_posts inst a in
      List.map (fun (_, j) -> lp.(j)) (ref_chain inst lambda a))
    (Mqdp.Instance.label_universe inst)
  |> List.sort_uniq Int.compare

let ref_scan_plus inst lambda =
  let max_label = Mqdp.Instance.max_label inst in
  let covered =
    Array.init (max_label + 1) (fun a ->
        Bytes.make (Array.length (Mqdp.Instance.label_posts inst a)) '\000')
  in
  let mark_covered_by picked =
    let p = Mqdp.Instance.post inst picked in
    Mqdp.Label_set.iter
      (fun b ->
        let r = Mqdp.Coverage.radius lambda p b in
        match
          Mqdp.Instance.posts_in_range inst b ~lo:(p.Mqdp.Post.value -. r)
            ~hi:(p.Mqdp.Post.value +. r)
        with
        | None -> ()
        | Some (first, last) -> Bytes.fill covered.(b) first (last - first + 1) '\001')
      p.Mqdp.Post.labels
  in
  let picks = ref [] in
  List.iter
    (fun a ->
      let lp = Mqdp.Instance.label_posts inst a in
      let rec loop i =
        if i < Array.length lp then begin
          if Bytes.get covered.(a) i <> '\000' then loop (i + 1)
          else begin
            let x = Mqdp.Instance.value inst lp.(i) in
            let j = ref_best_pick inst lambda a lp x in
            picks := lp.(j) :: !picks;
            mark_covered_by lp.(j);
            loop (i + 1)
          end
        end
      in
      loop 0)
    (Mqdp.Instance.label_universe inst);
  List.sort_uniq Int.compare !picks

(* Old GreedySC: per-label covered bytes, boxed coverer lists under a
   per-post λ, range recomputation under a fixed λ. *)
type ref_greedy_state = {
  covered : Bytes.t array;
  gain : int array;
  coverer_lists : int list array array option;
}

let ref_greedy_setup inst lambda =
  let max_label = Mqdp.Instance.max_label inst in
  let iter_pairs_covered_by k f =
    let p = Mqdp.Instance.post inst k in
    Mqdp.Label_set.iter
      (fun a ->
        let r = Mqdp.Coverage.radius lambda p a in
        match
          Mqdp.Instance.posts_in_range inst a ~lo:(p.Mqdp.Post.value -. r)
            ~hi:(p.Mqdp.Post.value +. r)
        with
        | None -> ()
        | Some (first, last) ->
          for ia = first to last do
            f a ia
          done)
      p.Mqdp.Post.labels
  in
  let coverer_lists =
    match lambda with
    | Mqdp.Coverage.Fixed _ -> None
    | Mqdp.Coverage.Per_post_label _ ->
      let lists =
        Array.init (max_label + 1) (fun a ->
            Array.make (Array.length (Mqdp.Instance.label_posts inst a)) [])
      in
      for k = 0 to Mqdp.Instance.size inst - 1 do
        iter_pairs_covered_by k (fun a ia -> lists.(a).(ia) <- k :: lists.(a).(ia))
      done;
      Some lists
  in
  let state =
    {
      covered =
        Array.init (max_label + 1) (fun a ->
            Bytes.make (Array.length (Mqdp.Instance.label_posts inst a)) '\000');
      gain = Array.make (Mqdp.Instance.size inst) 0;
      coverer_lists;
    }
  in
  for k = 0 to Mqdp.Instance.size inst - 1 do
    iter_pairs_covered_by k (fun _ _ -> state.gain.(k) <- state.gain.(k) + 1)
  done;
  let iter_coverers a ia f =
    match state.coverer_lists with
    | Some lists -> List.iter f lists.(a).(ia)
    | None ->
      let l =
        match lambda with Mqdp.Coverage.Fixed l -> l | _ -> assert false
      in
      let lp = Mqdp.Instance.label_posts inst a in
      let x = Mqdp.Instance.value inst lp.(ia) in
      (match Mqdp.Instance.posts_in_range inst a ~lo:(x -. l) ~hi:(x +. l) with
      | None -> ()
      | Some (first, last) ->
        for j = first to last do
          f lp.(j)
        done)
  in
  let select k =
    iter_pairs_covered_by k (fun a ia ->
        if Bytes.get state.covered.(a) ia = '\000' then begin
          Bytes.set state.covered.(a) ia '\001';
          iter_coverers a ia (fun k' -> state.gain.(k') <- state.gain.(k') - 1)
        end)
  in
  (state, select)

let ref_greedy inst lambda =
  let state, select = ref_greedy_setup inst lambda in
  let rec loop acc =
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun k g ->
        if g > !best_gain then begin
          best := k;
          best_gain := g
        end)
      state.gain;
    if !best_gain = 0 then acc
    else begin
      select !best;
      loop (!best :: acc)
    end
  in
  List.sort_uniq Int.compare (loop [])

let ref_greedy_heap inst lambda =
  let state, select = ref_greedy_setup inst lambda in
  (* (gain desc, position asc): the tie-broken comparator the library's
     lazy heap uses, which pins its pick sequence to the linear re-scan's
     first-strict-maximum rule. *)
  let cmp (ga, ka) (gb, kb) =
    let c = Int.compare gb ga in
    if c <> 0 then c else Int.compare ka kb
  in
  let heap = Util.Heap.create cmp in
  Array.iteri (fun k g -> if g > 0 then Util.Heap.push heap (g, k)) state.gain;
  let rec loop acc =
    match Util.Heap.pop heap with
    | None -> acc
    | Some (g, k) ->
      if g <> state.gain.(k) then begin
        if state.gain.(k) > 0 then Util.Heap.push heap (state.gain.(k), k);
        loop acc
      end
      else if g = 0 then acc
      else begin
        select k;
        loop (k :: acc)
      end
  in
  List.sort_uniq Int.compare (loop [])

(* Old Brute_force.build_sets: hashtable pair ids over the same label-major
   enumeration, then the shared exact engine. *)
let ref_brute inst lambda =
  if Mqdp.Instance.size inst = 0 then []
  else begin
    let pair_id = Hashtbl.create 256 in
    let next = ref 0 in
    List.iter
      (fun a ->
        Array.iteri
          (fun ia _ ->
            Hashtbl.add pair_id (a, ia) !next;
            incr next)
          (Mqdp.Instance.label_posts inst a))
      (Mqdp.Instance.label_universe inst);
    let sets =
      Array.init (Mqdp.Instance.size inst) (fun k ->
          let p = Mqdp.Instance.post inst k in
          let pairs = ref [] in
          Mqdp.Label_set.iter
            (fun a ->
              let r = Mqdp.Coverage.radius lambda p a in
              match
                Mqdp.Instance.posts_in_range inst a ~lo:(p.Mqdp.Post.value -. r)
                  ~hi:(p.Mqdp.Post.value +. r)
              with
              | None -> ()
              | Some (first, last) ->
                for ia = first to last do
                  pairs := Hashtbl.find pair_id (a, ia) :: !pairs
                done)
            p.Mqdp.Post.labels;
          Array.of_list !pairs)
    in
    Mqdp.Set_cover.minimum ~num_elements:!next sets
  end

(* --- properties --- *)

let coverers_match_naive =
  qtest ~count:150 "every pair's coverer set = naive O(n^2) recomputation"
    (arb_instance_lambda ~max_posts:20 ~max_labels:4 ())
    (fun (inst, l) ->
      List.for_all
        (fun (name, lambda) ->
          let index = Mqdp.Pair_index.build ~coverers:true inst lambda in
          List.for_all
            (fun (a, id) ->
              let compiled = ref [] in
              Mqdp.Pair_index.iter_coverers index id (fun k ->
                  compiled := k :: !compiled);
              let compiled = List.rev !compiled in
              let naive =
                naive_coverers inst lambda a (Mqdp.Pair_index.pair_pos index id)
              in
              if compiled <> naive then
                QCheck.Test.fail_reportf "%s coverers of pair %d: [%s] vs [%s] on %s"
                  name id
                  (String.concat "," (List.map string_of_int compiled))
                  (String.concat "," (List.map string_of_int naive))
                  (describe_instance inst);
              true)
            (pair_ids inst index))
        (both_lambdas l))

let best_pick_matches_reference =
  qtest ~count:150 "best_coverer = the old linear/binary best pick, every pair"
    (arb_instance_lambda ~max_posts:20 ~max_labels:4 ())
    (fun (inst, l) ->
      List.for_all
        (fun (name, lambda) ->
          let index = Mqdp.Pair_index.build ~coverers:false inst lambda in
          List.for_all
            (fun (a, id) ->
              let base = Mqdp.Pair_index.label_base index a in
              let lp = Mqdp.Instance.label_posts inst a in
              let x = Mqdp.Pair_index.pair_value index id in
              let got = Mqdp.Pair_index.best_coverer index a id - base in
              let expected = ref_best_pick inst lambda a lp x in
              if got <> expected then
                QCheck.Test.fail_reportf "%s best pick of pair %d: %d vs %d on %s"
                  name id got expected (describe_instance inst);
              true)
            (pair_ids inst index))
        (both_lambdas l))

(* Dedicated tie-rule pins. Under fixed λ the best pick is the
   furthest-right value and, among posts tied at that value, the LARGEST
   LP index — the newest arrival, which is what the Online engine emits
   for a pending tied pair (the fuzzer's StreamScan ≡ Scan invariant
   depends on this). Under per-post λ ties on reach resolve to the
   SMALLEST LP index (the sweep heap's (reach desc, index asc) order). *)
let test_best_pick_tie_rules () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 0 ];
        post ~id:3 ~value:1. [ 0 ]; post ~id:4 ~value:1. [ 0 ] ]
  in
  let fixed = Mqdp.Coverage.Fixed 1. in
  let index = Mqdp.Pair_index.build ~coverers:false inst fixed in
  let base = Mqdp.Pair_index.label_base index 0 in
  (* Pair of P1 (value 0): P2, P3, P4 are tied at the furthest value 1;
     the newest (largest LP index, position 3) must win. *)
  Alcotest.(check int) "fixed λ tie → largest LP index" (base + 3)
    (Mqdp.Pair_index.best_coverer index 0 base);
  let prop = Mqdp.Coverage.Per_post_label (fun _ _ -> 1.) in
  let index = Mqdp.Pair_index.build ~coverers:false inst prop in
  let base = Mqdp.Pair_index.label_base index 0 in
  (* Same geometry, per-post mode: P2, P3, P4 are tied at reach 2; the
     smallest LP index (position 1) must win. *)
  Alcotest.(check int) "per-post λ tie → smallest LP index" (base + 1)
    (Mqdp.Pair_index.best_coverer index 0 base)

let tie_rules_pinned =
  (* Integral values on a tiny span make value and reach ties dense; the
     naive scans below encode the two tie rules explicitly and
     independently of the library's binary-search/heap-sweep paths. *)
  qtest ~count:200 "best_coverer tie rules on tie-dense integral instances"
    QCheck.(list_of_size Gen.(int_range 1 12) (pair (int_bound 5) (int_bound 2)))
    (fun spec ->
      let inst =
        instance_of
          (List.mapi (fun id (v, a) -> post ~id ~value:(float_of_int v) [ a ]) spec)
      in
      let l = 2. in
      let fixed = Mqdp.Coverage.Fixed l in
      let prop =
        Mqdp.Coverage.Per_post_label
          (fun p _ -> if p.Mqdp.Post.id mod 2 = 0 then 2. else 1.)
      in
      let check_mode name lambda naive =
        let index = Mqdp.Pair_index.build ~coverers:false inst lambda in
        List.for_all
          (fun (a, id) ->
            let base = Mqdp.Pair_index.label_base index a in
            let lp = Mqdp.Instance.label_posts inst a in
            let x = Mqdp.Pair_index.pair_value index id in
            let got = Mqdp.Pair_index.best_coverer index a id - base in
            let expected = naive a lp x in
            if got <> expected then
              QCheck.Test.fail_reportf "%s tie pick of pair %d: %d vs %d on %s" name
                id got expected (describe_instance inst);
            true)
          (pair_ids inst index)
      in
      let naive_fixed _ lp x =
        (* candidate with the max value; >= keeps the later (larger) index. *)
        let best = ref (-1) and best_v = ref neg_infinity in
        Array.iteri
          (fun j pos ->
            let v = Mqdp.Instance.value inst pos in
            if Float.abs (v -. x) <= l && v >= !best_v then begin
              best := j;
              best_v := v
            end)
          lp;
        !best
      in
      let naive_prop a lp x =
        (* candidate with the max reach; strict > keeps the first index. *)
        let best = ref (-1) and best_r = ref neg_infinity in
        Array.iteri
          (fun j pos ->
            let p = Mqdp.Instance.post inst pos in
            let r = Mqdp.Coverage.radius prop p a in
            if Float.abs (p.Mqdp.Post.value -. x) <= r then begin
              let reach = p.Mqdp.Post.value +. r in
              if reach > !best_r then begin
                best := j;
                best_r := reach
              end
            end)
          lp;
        !best
      in
      check_mode "fixed" fixed naive_fixed && check_mode "per-post" prop naive_prop)

let reach_and_reverse_maps =
  qtest "reach, covered ranges and own pairs agree with direct recomputation"
    (arb_instance_lambda ~max_posts:20 ~max_labels:4 ())
    (fun (inst, l) ->
      List.for_all
        (fun (_, lambda) ->
          let index = Mqdp.Pair_index.build ~coverers:true inst lambda in
          (* reach of every pair *)
          List.for_all
            (fun (a, id) ->
              let p = Mqdp.Instance.post inst (Mqdp.Pair_index.pair_pos index id) in
              Mqdp.Pair_index.reach index id = Mqdp.Coverage.reach lambda p a)
            (pair_ids inst index)
          && List.for_all
               (fun k ->
                 (* pairs covered by k, via ranges = via per-pair coverer sets *)
                 let via_ranges = ref [] in
                 Mqdp.Pair_index.iter_covered_ranges index k (fun first last ->
                     for id = first to last do
                       via_ranges := id :: !via_ranges
                     done);
                 let via_coverers =
                   List.filter
                     (fun (_, id) ->
                       let mem = ref false in
                       Mqdp.Pair_index.iter_coverers index id (fun k' ->
                           if k' = k then mem := true);
                       !mem)
                     (pair_ids inst index)
                   |> List.map snd
                 in
                 List.sort Int.compare !via_ranges = via_coverers
                 &&
                 (* own pairs point back at k *)
                 let own = ref [] in
                 Mqdp.Pair_index.iter_own_pairs index k (fun id -> own := id :: !own);
                 List.for_all
                   (fun id -> Mqdp.Pair_index.pair_pos index id = k)
                   !own
                 && List.length !own
                    = Mqdp.Label_set.cardinal (Mqdp.Instance.labels inst k))
               (List.init (Mqdp.Instance.size inst) Fun.id))
        (both_lambdas l))

let solvers_match_pre_refactor =
  qtest ~count:120
    "greedy(+heap)/scan/scan+/brute return the pre-refactor covers"
    (arb_instance_lambda ~max_posts:16 ~max_labels:4 ())
    (fun (inst, l) ->
      List.for_all
        (fun (name, lambda) ->
          List.for_all
            (fun (algo, reference, solve) ->
              let expected = reference inst lambda in
              let got = solve inst lambda in
              if got <> expected then
                QCheck.Test.fail_reportf "%s/%s: [%s] vs reference [%s] on %s" algo
                  name
                  (String.concat "," (List.map string_of_int got))
                  (String.concat "," (List.map string_of_int expected))
                  (describe_instance inst);
              true)
            [ ("greedy", ref_greedy, fun i lm -> Mqdp.Greedy_sc.solve i lm);
              ( "greedy-heap",
                ref_greedy_heap,
                fun i lm -> Mqdp.Greedy_sc.solve ~selection:`Lazy_heap i lm );
              ("scan", ref_scan, fun i lm -> Mqdp.Scan.solve i lm);
              ("scan+", ref_scan_plus, fun i lm -> Mqdp.Scan.solve_plus i lm);
              ("brute", ref_brute, fun i lm -> Mqdp.Brute_force.solve i lm) ])
        (both_lambdas l))

let parallel_build_identical =
  qtest ~count:60 "jobs=4 covers = jobs=1 covers, both λ modes, all four solvers"
    (arb_instance_lambda ~max_posts:25 ~max_labels:4 ~span:20. ())
    (fun (inst, l) ->
      List.for_all
        (fun (_, lambda) ->
          List.for_all
            (fun algo ->
              (Mqdp.Solver.solve ~jobs:4 algo inst lambda).Mqdp.Solver.cover
              = (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.cover)
            [ Mqdp.Solver.Greedy_sc; Mqdp.Solver.Greedy_sc_heap; Mqdp.Solver.Scan;
              Mqdp.Solver.Scan_plus ])
        (both_lambdas l))

let compiled_facade_consistent =
  qtest ~count:60 "Solver.solve_compiled = Solver.solve on a shared index"
    (arb_instance_lambda ~max_posts:14 ~max_labels:3 ())
    (fun (inst, l) ->
      List.for_all
        (fun (_, lambda) ->
          let index = Mqdp.Solver.compile inst lambda in
          let algorithms =
            match lambda with
            | Mqdp.Coverage.Fixed _ -> Mqdp.Solver.all_algorithms
            | Mqdp.Coverage.Per_post_label _ ->
              (* OPT requires a fixed λ. *)
              [ Mqdp.Solver.Brute_force; Mqdp.Solver.Greedy_sc;
                Mqdp.Solver.Greedy_sc_heap; Mqdp.Solver.Scan; Mqdp.Solver.Scan_plus ]
          in
          List.for_all
            (fun algo ->
              (Mqdp.Solver.solve_compiled algo index).Mqdp.Solver.cover
              = (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.cover)
            algorithms)
        (both_lambdas l))

(* --- unit cases --- *)

let test_layout () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0; 2 ]; post ~id:2 ~value:1. [ 0 ];
        post ~id:3 ~value:2. [ 2 ] ]
  in
  let index = Mqdp.Pair_index.build inst (fixed 1.) in
  Alcotest.(check int) "total pairs" 4 (Mqdp.Pair_index.total_pairs index);
  Alcotest.(check int) "base 0" 0 (Mqdp.Pair_index.label_base index 0);
  Alcotest.(check int) "size 0" 2 (Mqdp.Pair_index.label_size index 0);
  Alcotest.(check int) "base 2" 2 (Mqdp.Pair_index.label_base index 2);
  Alcotest.(check int) "size 2" 2 (Mqdp.Pair_index.label_size index 2);
  Alcotest.(check int) "unused label size" 0 (Mqdp.Pair_index.label_size index 1);
  Alcotest.(check int) "pair 1 position" 1 (Mqdp.Pair_index.pair_pos index 1);
  Alcotest.(check (float 0.)) "pair 3 value" 2. (Mqdp.Pair_index.pair_value index 3);
  Alcotest.(check (float 0.)) "pair 3 reach" 3. (Mqdp.Pair_index.reach index 3);
  Alcotest.(check int) "first_above" 1 (Mqdp.Pair_index.first_above index 0 0.5)

let test_empty () =
  let index = Mqdp.Pair_index.build (instance_of []) (fixed 1.) in
  Alcotest.(check int) "no pairs" 0 (Mqdp.Pair_index.total_pairs index)

let test_absent_coverers_guarded () =
  let inst = instance_of [ post ~id:1 ~value:0. [ 0 ] ] in
  let index = Mqdp.Pair_index.build ~coverers:false inst variable in
  Alcotest.check_raises "guarded"
    (Invalid_argument "Pair_index.iter_coverers: built with ~coverers:false")
    (fun () -> Mqdp.Pair_index.iter_coverers index 0 ignore)

let suite =
  [
    Alcotest.test_case "layout on a small instance" `Quick test_layout;
    Alcotest.test_case "empty instance" `Quick test_empty;
    Alcotest.test_case "coverers guarded when not built" `Quick
      test_absent_coverers_guarded;
    coverers_match_naive;
    best_pick_matches_reference;
    Alcotest.test_case "best-pick tie rules (crafted ties)" `Quick
      test_best_pick_tie_rules;
    tie_rules_pinned;
    reach_and_reverse_maps;
    solvers_match_pre_refactor;
    parallel_build_identical;
    compiled_facade_consistent;
  ]
