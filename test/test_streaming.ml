(* Streaming algorithms (paper §5): validity, the τ deadline, and the
   structural relationships the paper proves — StreamScan with τ ≥ λ
   reproduces offline Scan; the instant variant stays within 2s of the
   per-label optimum. *)

open Helpers

let fixed l = Mqdp.Coverage.Fixed l

let instance_of = Helpers.instance_of

let all_streaming ~tau =
  [
    ("stream-scan", fun inst l -> Mqdp.Stream_scan.solve ~plus:false ~tau inst l);
    ("stream-scan+", fun inst l -> Mqdp.Stream_scan.solve ~plus:true ~tau inst l);
    ("stream-greedy", fun inst l -> Mqdp.Stream_greedy.solve ~plus:false ~tau inst l);
    ("stream-greedy+", fun inst l -> Mqdp.Stream_greedy.solve ~plus:true ~tau inst l);
  ]

let simple_stream =
  instance_of
    [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 0 ];
      post ~id:3 ~value:2. [ 0; 1 ]; post ~id:4 ~value:3. [ 1 ];
      post ~id:5 ~value:10. [ 0 ] ]

let test_all_cover_and_deadline () =
  let lambda = fixed 1. and tau = 0.5 in
  List.iter
    (fun (name, solve) ->
      let result = solve simple_stream lambda in
      Alcotest.(check bool) (name ^ " covers") true
        (Mqdp.Coverage.is_cover simple_stream lambda result.Mqdp.Stream.cover);
      Alcotest.(check bool) (name ^ " respects tau") true
        (Mqdp.Stream.check_deadline ~tau simple_stream result))
    (all_streaming ~tau)

let test_instant_simple () =
  let lambda = fixed 1. in
  let result = Mqdp.Stream_scan.solve_instant simple_stream lambda in
  Alcotest.(check bool) "covers" true
    (Mqdp.Coverage.is_cover simple_stream lambda result.Mqdp.Stream.cover);
  (* Instant output: zero delay for every emission. *)
  Alcotest.(check bool) "zero delay" true
    (Mqdp.Stream.check_deadline ~tau:0. simple_stream result);
  (* First arrival is always emitted. *)
  Alcotest.(check bool) "first post emitted" true
    (List.mem 0 result.Mqdp.Stream.cover)

let test_negative_tau_rejected () =
  Alcotest.check_raises "scan" (Invalid_argument "Stream_scan.solve: negative tau")
    (fun () -> ignore (Mqdp.Stream_scan.solve ~tau:(-1.) simple_stream (fixed 1.)));
  Alcotest.check_raises "greedy" (Invalid_argument "Stream_greedy.solve: negative tau")
    (fun () -> ignore (Mqdp.Stream_greedy.solve ~tau:(-1.) simple_stream (fixed 1.)))

let test_variable_lambda_rejected () =
  let lambda = Mqdp.Coverage.Per_post_label (fun _ _ -> 1.) in
  Alcotest.check_raises "scan"
    (Mqdp.Stream.Unsupported "Stream_scan.solve requires a fixed lambda") (fun () ->
      ignore (Mqdp.Stream_scan.solve ~tau:1. simple_stream lambda));
  Alcotest.check_raises "greedy"
    (Mqdp.Stream.Unsupported "Stream_greedy.solve requires a fixed lambda") (fun () ->
      ignore (Mqdp.Stream_greedy.solve ~tau:1. simple_stream lambda))

let test_make_result_dedup () =
  let result =
    Mqdp.Stream.make_result
      [ { Mqdp.Stream.position = 3; emit_time = 5. };
        { Mqdp.Stream.position = 1; emit_time = 2. };
        { Mqdp.Stream.position = 3; emit_time = 4. } ]
  in
  Alcotest.(check (list int)) "cover dedup" [ 1; 3 ] result.Mqdp.Stream.cover;
  Alcotest.(check int) "emissions dedup" 2 (List.length result.Mqdp.Stream.emissions);
  (* The earliest emission time is kept for a duplicated position. *)
  let e3 =
    List.find (fun e -> e.Mqdp.Stream.position = 3) result.Mqdp.Stream.emissions
  in
  Alcotest.(check (float 0.)) "earliest kept" 4. e3.Mqdp.Stream.emit_time

let test_stream_greedy_window_semantics () =
  (* Posts at 0, 1, 2 (label 0), tau = 2: the window opened by the post at
     0 spans [0, 2]; one greedy pick (the post at 1) covers all three with
     lambda = 1, emitted at the window deadline 2. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 0 ];
        post ~id:3 ~value:2. [ 0 ] ]
  in
  let result = Mqdp.Stream_greedy.solve ~tau:2. inst (fixed 1.) in
  (match result.Mqdp.Stream.emissions with
  | [ e ] ->
    Alcotest.(check int) "middle post picked" 1 e.Mqdp.Stream.position;
    Alcotest.(check (float 1e-9)) "emitted at the deadline" 2. e.Mqdp.Stream.emit_time
  | other -> Alcotest.failf "expected 1 emission, got %d" (List.length other));
  (* With tau = 0 the window is a single post: every post emits itself. *)
  let zero = Mqdp.Stream_greedy.solve ~tau:0. inst (fixed 1.) in
  Alcotest.(check int) "tau=0 windows degenerate" 2
    (List.length zero.Mqdp.Stream.cover)

let test_stream_greedy_plus_reopens_window () =
  (* Two labels interleaved: the + variant stops as soon as the window
     opener is covered and re-opens from the next uncovered post, so both
     emit valid covers; both must cover. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:0.5 [ 1 ];
        post ~id:3 ~value:1. [ 0 ]; post ~id:4 ~value:1.5 [ 1 ] ]
  in
  List.iter
    (fun plus ->
      let result = Mqdp.Stream_greedy.solve ~plus ~tau:1. inst (fixed 0.4) in
      Alcotest.(check bool)
        (Printf.sprintf "plus=%b covers" plus)
        true
        (Mqdp.Coverage.is_cover inst (fixed 0.4) result.Mqdp.Stream.cover))
    [ false; true ]

(* --- properties --- *)

let streaming_always_covers =
  qtest "every streaming algorithm emits a cover within tau"
    (QCheck.triple
       (arb_instance ~max_posts:30 ~max_labels:4 ~span:25. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, l, tau) ->
      let lambda = fixed l in
      List.for_all
        (fun (name, solve) ->
          let result = solve inst lambda in
          ignore (check_cover name inst lambda result.Mqdp.Stream.cover);
          if not (Mqdp.Stream.check_deadline ~tau inst result) then
            QCheck.Test.fail_reportf "%s violated tau=%g (max delay %g)" name tau
              (Mqdp.Stream.max_delay inst result);
          true)
        (all_streaming ~tau))

let instant_covers_with_zero_delay =
  qtest "instant variant: cover, zero delay"
    (arb_instance_lambda ~max_posts:30 ~max_labels:4 ~span:25. ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let result = Mqdp.Stream_scan.solve_instant inst lambda in
      ignore (check_cover "instant" inst lambda result.Mqdp.Stream.cover);
      Mqdp.Stream.check_deadline ~tau:0. inst result)

let stream_scan_equals_scan_when_tau_ge_lambda =
  qtest "StreamScan with tau >= lambda emits exactly offline Scan"
    (arb_instance_lambda ~max_posts:25 ~max_labels:4 ~span:25. ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let offline = Mqdp.Scan.solve inst lambda in
      let streaming =
        Mqdp.Stream_scan.solve ~plus:false ~tau:(l +. 0.1) inst lambda
      in
      if streaming.Mqdp.Stream.cover <> offline then
        QCheck.Test.fail_reportf "stream=%d offline=%d on %s"
          (List.length streaming.Mqdp.Stream.cover)
          (List.length offline) (describe_instance inst);
      true)

let instant_single_label_2_approx =
  qtest ~count:150 "instant variant within 2x optimal on single-label posts"
    (QCheck.pair (arb_instance ~max_posts:12 ~max_labels:2 ~max_per:1 ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.))))
    (fun (inst, l) ->
      let lambda = fixed l in
      let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
      let instant = List.length (Mqdp.Stream_scan.solve_instant inst lambda).Mqdp.Stream.cover in
      instant <= 2 * optimal)

let instant_2s_bound =
  qtest ~count:150 "instant variant within 2s of optimal"
    (arb_instance_lambda ~max_posts:11 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
      let instant = List.length (Mqdp.Stream_scan.solve_instant inst lambda).Mqdp.Stream.cover in
      let s = Mqdp.Instance.max_labels_per_post inst in
      instant <= 2 * s * optimal)

let greedy_windows_respect_order =
  qtest "stream-greedy emission times are non-decreasing"
    (QCheck.pair (arb_instance ~max_posts:30 ~max_labels:3 ~span:25. ())
       (QCheck.make QCheck.Gen.(float_bound_exclusive 5.)))
    (fun (inst, tau) ->
      let result = Mqdp.Stream_greedy.solve ~tau inst (fixed 2.) in
      let times =
        List.map (fun e -> e.Mqdp.Stream.emit_time) result.Mqdp.Stream.emissions
      in
      List.sort Float.compare times = times)

let stream_scan_no_duplicate_emissions =
  qtest ~count:150 "StreamScan(+) emits each position at most once"
    (QCheck.triple
       (arb_instance ~max_posts:30 ~max_labels:4 ~span:25. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, l, tau) ->
      List.for_all
        (fun plus ->
          let result = Mqdp.Stream_scan.solve ~plus ~tau inst (fixed l) in
          let positions =
            List.map (fun e -> e.Mqdp.Stream.position) result.Mqdp.Stream.emissions
          in
          List.sort_uniq Int.compare positions = List.sort Int.compare positions
          && result.Mqdp.Stream.cover
             = List.sort_uniq Int.compare result.Mqdp.Stream.cover)
        [ false; true ])

let delays_match_definition =
  qtest "Stream.delays = emit - value"
    (QCheck.pair (arb_instance ~max_posts:20 ~max_labels:3 ())
       (QCheck.make QCheck.Gen.(float_bound_exclusive 3.)))
    (fun (inst, tau) ->
      let result = Mqdp.Stream_scan.solve ~tau inst (fixed 1.5) in
      let delays = Mqdp.Stream.delays inst result in
      let expected =
        List.map
          (fun e -> e.Mqdp.Stream.emit_time -. Mqdp.Instance.value inst e.Mqdp.Stream.position)
          result.Mqdp.Stream.emissions
      in
      Array.to_list delays = expected)

(* --- legacy reference for the windowed Stream_greedy ----------------

   The shipped Stream_greedy now runs incrementally on a Window_index;
   this is a literal port of the implementation it replaced (whole-stream
   Pair_index, O(window²) gain recomputation every round), kept as the
   behavioural oracle: emissions must stay bit-identical. *)

module Legacy_greedy = struct
  type state = {
    index : Mqdp.Pair_index.t;
    covered : Bytes.t;
  }

  let make_state instance lambda =
    {
      index = Mqdp.Pair_index.build ~coverers:false instance (Mqdp.Coverage.Fixed lambda);
      covered = Bytes.make (Mqdp.Instance.total_pairs instance) '\000';
    }

  exception Uncovered_pair

  let fully_covered st pos =
    try
      Mqdp.Pair_index.iter_own_pairs st.index pos (fun id ->
          if Bytes.get st.covered id = '\000' then raise Uncovered_pair);
      true
    with Uncovered_pair -> false

  let mark_covered_by st k =
    Mqdp.Pair_index.iter_covered_ranges st.index k (fun first last ->
        Bytes.fill st.covered first (last - first + 1) '\001')

  let window_gain st ~z_lo ~z_hi k =
    let gain = ref 0 in
    Mqdp.Pair_index.iter_covered_ranges st.index k (fun first last ->
        for id = first to last do
          let pos = Mqdp.Pair_index.pair_pos st.index id in
          if pos >= z_lo && pos <= z_hi && Bytes.get st.covered id = '\000' then
            incr gain
        done);
    !gain

  let window_all_covered st ~z_lo ~z_hi =
    let rec loop pos = pos > z_hi || (fully_covered st pos && loop (pos + 1)) in
    loop z_lo

  let solve ?(plus = false) ~tau instance lambda =
    let l = Mqdp.Stream.fixed_lambda_exn ~who:"legacy" lambda in
    let st = make_state instance l in
    let n = Mqdp.Instance.size instance in
    let posts = Mqdp.Instance.posts instance in
    let post_value (p : Mqdp.Post.t) = p.Mqdp.Post.value in
    let emissions = ref [] in
    let rec advance cursor =
      if cursor < n && fully_covered st cursor then advance (cursor + 1) else cursor
    in
    let rec process cursor =
      let cursor = advance cursor in
      if cursor < n then begin
        let t' = Mqdp.Instance.value instance cursor in
        let deadline = t' +. tau in
        let z_lo = cursor in
        let z_hi = Util.Array_util.upper_bound ~key:post_value posts deadline - 1 in
        let stop () =
          if plus then fully_covered st cursor else window_all_covered st ~z_lo ~z_hi
        in
        let rec greedy_rounds () =
          if not (stop ()) then begin
            let best = ref (-1) and best_gain = ref 0 in
            for k = z_lo to z_hi do
              let g = window_gain st ~z_lo ~z_hi k in
              if g > !best_gain then begin
                best := k;
                best_gain := g
              end
            done;
            assert (!best >= 0);
            emissions :=
              { Mqdp.Stream.position = !best; emit_time = deadline } :: !emissions;
            mark_covered_by st !best;
            greedy_rounds ()
          end
        in
        greedy_rounds ();
        process cursor
      end
    in
    process 0;
    Mqdp.Stream.make_result (List.rev !emissions)
end

let windowed_greedy_matches_legacy =
  qtest ~count:200 "windowed stream-greedy ≡ legacy whole-stream greedy"
    (QCheck.triple
       (arb_instance ~max_posts:24 ~max_labels:4 ~span:20. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, lambda, tau) ->
      List.for_all
        (fun plus ->
          let got = Mqdp.Stream_greedy.solve ~plus ~tau inst (fixed lambda) in
          let want = Legacy_greedy.solve ~plus ~tau inst (fixed lambda) in
          let key e =
            (e.Mqdp.Stream.position, Int64.bits_of_float e.Mqdp.Stream.emit_time)
          in
          List.map key got.Mqdp.Stream.emissions
          = List.map key want.Mqdp.Stream.emissions)
        [ false; true ])

let suite =
  [
    Alcotest.test_case "cover & deadline on a simple stream" `Quick
      test_all_cover_and_deadline;
    Alcotest.test_case "instant variant basics" `Quick test_instant_simple;
    Alcotest.test_case "negative tau rejected" `Quick test_negative_tau_rejected;
    Alcotest.test_case "variable lambda rejected" `Quick test_variable_lambda_rejected;
    Alcotest.test_case "make_result dedup" `Quick test_make_result_dedup;
    Alcotest.test_case "stream-greedy window semantics" `Quick
      test_stream_greedy_window_semantics;
    Alcotest.test_case "stream-greedy+ window reopening" `Quick
      test_stream_greedy_plus_reopens_window;
    streaming_always_covers;
    instant_covers_with_zero_delay;
    stream_scan_equals_scan_when_tau_ge_lambda;
    instant_single_label_2_approx;
    instant_2s_bound;
    greedy_windows_respect_order;
    stream_scan_no_duplicate_emissions;
    delays_match_definition;
    windowed_greedy_matches_legacy;
  ]
