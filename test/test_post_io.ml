(* TSV persistence of posts and covers. *)

open Helpers

let temp_file () = Filename.temp_file "mqdp_test" ".tsv"

let test_line_roundtrip () =
  let p = post ~id:7 ~value:123.456 [ 0; 3; 9 ] in
  let back = Workload.Post_io.post_of_line (Workload.Post_io.post_to_line p) in
  Alcotest.(check int) "id" 7 back.Mqdp.Post.id;
  Alcotest.(check (float 1e-12)) "value" 123.456 back.Mqdp.Post.value;
  Alcotest.(check (list int)) "labels" [ 0; 3; 9 ]
    (Mqdp.Label_set.to_list back.Mqdp.Post.labels)

let test_no_labels () =
  let back = Workload.Post_io.post_of_line "5\t1.5\t" in
  Alcotest.(check bool) "empty labels" true
    (Mqdp.Label_set.is_empty back.Mqdp.Post.labels)

let test_malformed () =
  List.iter
    (fun line ->
      match Workload.Post_io.post_of_line line with
      | _ -> Alcotest.failf "accepted %S" line
      | exception Workload.Post_io.Parse_error { line = l; what } ->
        Alcotest.(check int) "bare lines report line 0" 0 l;
        Alcotest.(check bool)
          (Printf.sprintf "error for %S quotes the input: %s" line what)
          true
          (String.length what > 0))
    [ "nonsense"; "a\t1.0\t2"; "1\tx\t2"; "1\t1.0\tx"; "1\t1.0\t-3"; "1\t2.0";
      "1\tnan\t2" ]

let test_file_roundtrip () =
  let posts =
    [ post ~id:1 ~value:0.25 [ 0 ]; post ~id:2 ~value:10. [ 1; 2 ];
      post ~id:3 ~value:(-5.5) [ 0; 1 ] ]
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Post_io.save path posts;
      let loaded = Workload.Post_io.load path in
      Alcotest.(check int) "count" 3 (List.length loaded);
      List.iter2
        (fun original back ->
          Alcotest.(check int) "id" original.Mqdp.Post.id back.Mqdp.Post.id;
          Alcotest.(check (float 1e-12)) "value" original.Mqdp.Post.value
            back.Mqdp.Post.value;
          Alcotest.(check bool) "labels" true
            (Mqdp.Label_set.equal original.Mqdp.Post.labels back.Mqdp.Post.labels))
        posts loaded)

let test_load_reports_line () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\n1\t1.0\t0\nbroken line\n";
      close_out oc;
      match Workload.Post_io.load path with
      | _ -> Alcotest.fail "accepted broken file"
      | exception Workload.Post_io.Parse_error { line; what = _ } ->
        Alcotest.(check int) "reports the offending line" 3 line)

let test_load_lenient () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# header\n1\t1.0\t0\nbroken line\n2\t2.0\t1\n\n3\tnan\t0\n4\t4.0\t0,2\n";
      close_out oc;
      let posts, skipped = Workload.Post_io.load_lenient path in
      Alcotest.(check int) "keeps the good lines" 3 (List.length posts);
      Alcotest.(check int) "counts the bad lines" 2 skipped;
      Alcotest.(check (list int)) "ids in file order" [ 1; 2; 4 ]
        (List.map (fun p -> p.Mqdp.Post.id) posts))

let test_load_lenient_clean_file () =
  let posts = [ post ~id:1 ~value:0.5 [ 0 ]; post ~id:2 ~value:1.5 [ 1 ] ]
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Post_io.save path posts;
      let loaded, skipped = Workload.Post_io.load_lenient path in
      Alcotest.(check int) "nothing skipped" 0 skipped;
      Alcotest.(check int) "all loaded" 2 (List.length loaded))

let test_save_cover_loadable () =
  let inst =
    instance_of [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:5. [ 0 ] ]
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Post_io.save_cover path inst [ 1 ];
      match Workload.Post_io.load path with
      | [ p ] -> Alcotest.(check int) "the selected post" 2 p.Mqdp.Post.id
      | other -> Alcotest.failf "expected 1 post, got %d" (List.length other))

let roundtrip_property =
  qtest ~count:100 "generated workloads roundtrip through TSV"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let posts =
        Workload.Direct_gen.generate
          { (Workload.Direct_gen.default_config ~num_labels:4 ~seed) with
            Workload.Direct_gen.duration = 120. }
      in
      let path = temp_file () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Workload.Post_io.save path posts;
          let loaded = Workload.Post_io.load path in
          List.length loaded = List.length posts
          && List.for_all2
               (fun a b ->
                 a.Mqdp.Post.id = b.Mqdp.Post.id
                 && a.Mqdp.Post.value = b.Mqdp.Post.value
                 && Mqdp.Label_set.equal a.Mqdp.Post.labels b.Mqdp.Post.labels)
               posts loaded))

let suite =
  [
    Alcotest.test_case "line roundtrip" `Quick test_line_roundtrip;
    Alcotest.test_case "no labels" `Quick test_no_labels;
    Alcotest.test_case "malformed lines rejected" `Quick test_malformed;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "load reports line numbers" `Quick test_load_reports_line;
    Alcotest.test_case "lenient load skips and counts" `Quick test_load_lenient;
    Alcotest.test_case "lenient load on a clean file" `Quick
      test_load_lenient_clean_file;
    Alcotest.test_case "covers are loadable post files" `Quick test_save_cover_loadable;
    roundtrip_property;
  ]
