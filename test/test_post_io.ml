(* TSV persistence of posts and covers. *)

open Helpers

let temp_file () = Filename.temp_file "mqdp_test" ".tsv"

let test_line_roundtrip () =
  let p = post ~id:7 ~value:123.456 [ 0; 3; 9 ] in
  let back = Workload.Post_io.post_of_line (Workload.Post_io.post_to_line p) in
  Alcotest.(check int) "id" 7 back.Mqdp.Post.id;
  Alcotest.(check (float 1e-12)) "value" 123.456 back.Mqdp.Post.value;
  Alcotest.(check (list int)) "labels" [ 0; 3; 9 ]
    (Mqdp.Label_set.to_list back.Mqdp.Post.labels)

let test_no_labels () =
  let back = Workload.Post_io.post_of_line "5\t1.5\t" in
  Alcotest.(check bool) "empty labels" true
    (Mqdp.Label_set.is_empty back.Mqdp.Post.labels)

let test_malformed () =
  List.iter
    (fun line ->
      match Workload.Post_io.post_of_line line with
      | _ -> Alcotest.failf "accepted %S" line
      | exception Workload.Post_io.Parse_error { line = l; what } ->
        Alcotest.(check int) "bare lines report line 0" 0 l;
        Alcotest.(check bool)
          (Printf.sprintf "error for %S quotes the input: %s" line what)
          true
          (String.length what > 0))
    [ "nonsense"; "a\t1.0\t2"; "1\tx\t2"; "1\t1.0\tx"; "1\t1.0\t-3"; "1\t2.0";
      "1\tnan\t2" ]

let test_file_roundtrip () =
  let posts =
    [ post ~id:1 ~value:0.25 [ 0 ]; post ~id:2 ~value:10. [ 1; 2 ];
      post ~id:3 ~value:(-5.5) [ 0; 1 ] ]
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Post_io.save path posts;
      let loaded = Workload.Post_io.load path in
      Alcotest.(check int) "count" 3 (List.length loaded);
      List.iter2
        (fun original back ->
          Alcotest.(check int) "id" original.Mqdp.Post.id back.Mqdp.Post.id;
          Alcotest.(check (float 1e-12)) "value" original.Mqdp.Post.value
            back.Mqdp.Post.value;
          Alcotest.(check bool) "labels" true
            (Mqdp.Label_set.equal original.Mqdp.Post.labels back.Mqdp.Post.labels))
        posts loaded)

let test_load_reports_line () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\n1\t1.0\t0\nbroken line\n";
      close_out oc;
      match Workload.Post_io.load path with
      | _ -> Alcotest.fail "accepted broken file"
      | exception Workload.Post_io.Parse_error { line; what = _ } ->
        Alcotest.(check int) "reports the offending line" 3 line)

let test_load_lenient () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# header\n1\t1.0\t0\nbroken line\n2\t2.0\t1\n\n3\tnan\t0\n4\t4.0\t0,2\n";
      close_out oc;
      let posts, skipped = Workload.Post_io.load_lenient path in
      Alcotest.(check int) "keeps the good lines" 3 (List.length posts);
      Alcotest.(check int) "counts the bad lines" 2 skipped;
      Alcotest.(check (list int)) "ids in file order" [ 1; 2; 4 ]
        (List.map (fun p -> p.Mqdp.Post.id) posts))

let test_load_lenient_clean_file () =
  let posts = [ post ~id:1 ~value:0.5 [ 0 ]; post ~id:2 ~value:1.5 [ 1 ] ]
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Post_io.save path posts;
      let loaded, skipped = Workload.Post_io.load_lenient path in
      Alcotest.(check int) "nothing skipped" 0 skipped;
      Alcotest.(check int) "all loaded" 2 (List.length loaded))

let test_save_cover_loadable () =
  let inst =
    instance_of [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:5. [ 0 ] ]
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Post_io.save_cover path inst [ 1 ];
      match Workload.Post_io.load path with
      | [ p ] -> Alcotest.(check int) "the selected post" 2 p.Mqdp.Post.id
      | other -> Alcotest.failf "expected 1 post, got %d" (List.length other))

let roundtrip_property =
  qtest ~count:100 "generated workloads roundtrip through TSV"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let posts =
        Workload.Direct_gen.generate
          { (Workload.Direct_gen.default_config ~num_labels:4 ~seed) with
            Workload.Direct_gen.duration = 120. }
      in
      let path = temp_file () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Workload.Post_io.save path posts;
          let loaded = Workload.Post_io.load path in
          List.length loaded = List.length posts
          && List.for_all2
               (fun a b ->
                 a.Mqdp.Post.id = b.Mqdp.Post.id
                 && a.Mqdp.Post.value = b.Mqdp.Post.value
                 && Mqdp.Label_set.equal a.Mqdp.Post.labels b.Mqdp.Post.labels)
               posts loaded))

(* The malformed fixture a socket feed could deliver: good lines
   interleaved with garbage, comments, and blanks. *)
let malformed_fixture =
  "# header\n1\t1.0\t0\nbroken line\n2\t2.0\t1\n\n3\tnan\t0\n# mid comment\n4\t4.0\t0,2\n5\tx\t1\n"

let with_fixture k =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc malformed_fixture;
      close_out oc;
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic))

let test_fold_channel_lenient () =
  (* Streaming lenient mode over the malformed fixture: every good line is
     folded in order, every bad one is counted — one Parse_error per line,
     none escaping. *)
  with_fixture (fun ic ->
      let ids_rev, skipped =
        Workload.Post_io.fold_channel ~lenient:true ic ~init:[]
          ~f:(fun acc p -> p.Mqdp.Post.id :: acc)
      in
      Alcotest.(check (list int)) "good lines in order" [ 1; 2; 4 ]
        (List.rev ids_rev);
      Alcotest.(check int) "bad lines counted" 3 skipped)

let test_fold_channel_strict_raises () =
  with_fixture (fun ic ->
      match
        Workload.Post_io.fold_channel ic ~init:0 ~f:(fun acc _ -> acc + 1)
      with
      | _ -> Alcotest.fail "strict fold accepted garbage"
      | exception Workload.Post_io.Parse_error { line; _ } ->
        Alcotest.(check int) "reports the offending line" 3 line)

let test_fold_channel_is_incremental () =
  (* The reader must consume the channel lazily: fold over a pipe that is
     written incrementally, proving no whole-file read happens up front. *)
  let fd_r, fd_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr fd_r in
  let oc = Unix.out_channel_of_descr fd_w in
  output_string oc "1\t1.0\t0\n2\t2.0\t1\n";
  flush oc;
  (* First two posts must already be parseable while the writer is open. *)
  let first = input_line ic in
  Alcotest.(check int) "first post parsed before EOF" 1
    (Workload.Post_io.post_of_line first).Mqdp.Post.id;
  output_string oc "garbage\n3\t3.0\t2\n";
  close_out oc;
  let count = Workload.Post_io.iter_channel ~lenient:true ic ~f:(fun _ -> ()) in
  close_in ic;
  Alcotest.(check int) "one bad line skipped" 1 count

let suite =
  [
    Alcotest.test_case "line roundtrip" `Quick test_line_roundtrip;
    Alcotest.test_case "streaming lenient fold over malformed fixture" `Quick
      test_fold_channel_lenient;
    Alcotest.test_case "streaming strict fold raises with line" `Quick
      test_fold_channel_strict_raises;
    Alcotest.test_case "channel reader is incremental" `Quick
      test_fold_channel_is_incremental;
    Alcotest.test_case "no labels" `Quick test_no_labels;
    Alcotest.test_case "malformed lines rejected" `Quick test_malformed;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "load reports line numbers" `Quick test_load_reports_line;
    Alcotest.test_case "lenient load skips and counts" `Quick test_load_lenient;
    Alcotest.test_case "lenient load on a clean file" `Quick
      test_load_lenient_clean_file;
    Alcotest.test_case "covers are loadable post files" `Quick test_save_cover_loadable;
    roundtrip_property;
  ]
