(* Concurrent transport: Netio byte queues, the sans-IO Transport state
   machine, the chaos network planner, the retrying client, and the
   per-session serving contract it all rides on.

   The differential fuzzer (mqdp_fuzz --transport) covers whole-system
   equivalence under chaos; these tests pin the local behaviors a failed
   round would not localize — framing edge cases, deadline arithmetic,
   backpressure bounds, retry schedules, and the state-dir manifest. *)

(* --- Netio.Buf ----------------------------------------------------- *)

module Buf = Util.Netio.Buf

let buf_contents b =
  match Buf.peek b with
  | None -> ""
  | Some (store, pos, len) -> Bytes.sub_string store pos len

let test_buf_queue () =
  let b = Buf.create ~initial:4 () in
  Alcotest.(check bool) "empty" true (Buf.is_empty b);
  Buf.add_string b "hello ";
  Buf.add_string b "world";
  Alcotest.(check int) "length" 11 (Buf.length b);
  Alcotest.(check string) "contents" "hello world" (buf_contents b);
  Buf.drop b 6;
  Alcotest.(check string) "front consumed" "world" (buf_contents b);
  (* Append after a drop: the queue must keep front bytes intact while
     growing at the back. *)
  Buf.add_string b "!";
  Alcotest.(check string) "append after drop" "world!" (buf_contents b);
  Alcotest.(check int) "index_from start" 1 (Buf.index_from b ~from:0 'o');
  Alcotest.(check int) "index_from resume" (-1) (Buf.index_from b ~from:2 'o');
  Alcotest.(check int) "index_from past end" (-1) (Buf.index_from b ~from:99 'o');
  Alcotest.(check string) "sub_string" "rld" (Buf.sub_string b ~pos:2 ~len:3);
  Alcotest.check_raises "drop past end" (Invalid_argument "Netio.Buf.drop")
    (fun () -> Buf.drop b 7);
  Buf.clear b;
  Alcotest.(check bool) "cleared" true (Buf.is_empty b)

(* --- Transport framing --------------------------------------------- *)

module Transport = Mqdp.Transport

let no_idle =
  { Transport.default_config with Transport.idle_timeout = None }

let transport ?(config = no_idle) ?(now = 0.) () =
  Transport.create ~config ~now ()

let step =
  Alcotest.testable
    (fun fmt -> function
      | Transport.Request line -> Format.fprintf fmt "Request %S" line
      | Transport.Wait -> Format.fprintf fmt "Wait"
      | Transport.Close r ->
        Format.fprintf fmt "Close %s" (Transport.close_reason_string r))
    ( = )

let take_output tr =
  let b = Buffer.create 64 in
  let rec go () =
    match Transport.output tr with
    | None -> Buffer.contents b
    | Some (store, pos, len) ->
      Buffer.add_subbytes b store pos len;
      Transport.wrote tr len;
      go ()
  in
  go ()

let test_request_response_cycle () =
  let tr = transport () in
  Transport.feed_string tr "1 PING\n";
  Alcotest.check step "framed" (Transport.Request "1 PING")
    (Transport.next tr ~now:0.);
  Alcotest.check step "drained input" Transport.Wait (Transport.next tr ~now:0.);
  Transport.respond tr [ "1 OK pong" ];
  Alcotest.(check bool) "has output" true (Transport.has_output tr);
  Alcotest.(check string) "newline appended" "1 OK pong\n" (take_output tr);
  Alcotest.(check bool) "flushed" false (Transport.has_output tr)

let test_partial_reads_reassemble () =
  let tr = transport () in
  String.iter
    (fun c ->
      Alcotest.check step "no request yet" Transport.Wait
        (Transport.next tr ~now:0.);
      Transport.feed_string tr (String.make 1 c))
    "2 QUERY alice";
  Transport.feed_string tr "\n";
  Alcotest.check step "reassembled" (Transport.Request "2 QUERY alice")
    (Transport.next tr ~now:0.)

let test_framing_edge_cases () =
  let tr = transport () in
  (* CRLF tolerated, empty lines and NUL bytes frame verbatim (the
     engine rejects them at parse time — the transport's job is only to
     cut lines), non-numeric sequence tokens pass through untouched. *)
  Transport.feed_string tr "3 PING\r\n\nnot-a-seq PING\n4 FEED a\x00b\n";
  Alcotest.check step "crlf stripped" (Transport.Request "3 PING")
    (Transport.next tr ~now:0.);
  Alcotest.check step "empty line framed" (Transport.Request "")
    (Transport.next tr ~now:0.);
  Alcotest.check step "non-numeric seq framed"
    (Transport.Request "not-a-seq PING") (Transport.next tr ~now:0.);
  Alcotest.check step "nul byte framed" (Transport.Request "4 FEED a\x00b")
    (Transport.next tr ~now:0.);
  Alcotest.check step "wait" Transport.Wait (Transport.next tr ~now:0.)

let test_oversized_line_condemns () =
  let config = { no_idle with Transport.max_line = 16 } in
  let tr = transport ~config () in
  (* No newline in sight: the cap must fire on arrival, not at framing. *)
  Transport.feed_string tr (String.make 17 'A');
  Alcotest.check step "condemned" (Transport.Close Transport.Line_too_long)
    (Transport.next tr ~now:0.);
  let out = take_output tr in
  Alcotest.(check bool) "transport-level error response" true
    (String.starts_with ~prefix:"0 ERR line-too-long" out);
  (* Late bytes after the fault are ignored. *)
  Transport.feed_string tr "5 PING\n";
  Alcotest.check step "still condemned" (Transport.Close Transport.Line_too_long)
    (Transport.next tr ~now:0.)

let test_oversized_terminated_line_condemns () =
  let config = { no_idle with Transport.max_line = 16 } in
  let tr = transport ~config () in
  (* The newline arrives in the same chunk, so the arrival-time tail
     counter resets — the pop-time recheck must still reject the line. *)
  Transport.feed_string tr (String.make 17 'A' ^ "\n");
  Alcotest.check step "condemned at pop" (Transport.Close Transport.Line_too_long)
    (Transport.next tr ~now:0.)

let test_idle_deadline_rearms_on_completed_requests_only () =
  let config = { no_idle with Transport.idle_timeout = Some 10. } in
  let tr = transport ~config ~now:0. () in
  Alcotest.(check (option (float 1e-9))) "armed at creation" (Some 10.)
    (Transport.idle_deadline tr);
  Alcotest.check step "before deadline" Transport.Wait (Transport.next tr ~now:9.);
  (* A completed request re-arms. *)
  Transport.feed_string tr "1 PING\n";
  Alcotest.check step "request" (Transport.Request "1 PING")
    (Transport.next tr ~now:9.);
  Alcotest.(check (option (float 1e-9))) "re-armed" (Some 19.)
    (Transport.idle_deadline tr);
  (* Slowloris: raw bytes without a newline must NOT re-arm. *)
  Transport.feed_string tr "2 PI";
  Alcotest.check step "trickle does not reset" Transport.Wait
    (Transport.next tr ~now:18.);
  Transport.feed_string tr "NG";
  Alcotest.check step "idle fires" (Transport.Close Transport.Idle_timeout)
    (Transport.next tr ~now:19.);
  Alcotest.(check bool) "idle error response" true
    (String.starts_with ~prefix:"0 ERR idle-timeout" (take_output tr));
  Alcotest.(check (option (float 1e-9))) "deadline cleared once condemned" None
    (Transport.idle_deadline tr)

let test_output_overflow_condemns () =
  let config = { no_idle with Transport.max_pending_out = 32 } in
  let tr = transport ~config () in
  Transport.respond tr [ String.make 40 'x' ];
  Alcotest.check step "condemned" (Transport.Close Transport.Output_overflow)
    (Transport.next tr ~now:0.)

let test_drain_serves_buffered_then_closes () =
  let tr = transport () in
  Transport.feed_string tr "1 PING\n2 PING\n3 PARTIAL";
  Transport.begin_drain tr;
  Alcotest.(check bool) "draining" true (Transport.draining tr);
  Alcotest.check step "first buffered request" (Transport.Request "1 PING")
    (Transport.next tr ~now:0.);
  Alcotest.check step "second buffered request" (Transport.Request "2 PING")
    (Transport.next tr ~now:0.);
  (* The unterminated tail never framed a request — abandoned. *)
  Alcotest.check step "drained" (Transport.Close Transport.Drained)
    (Transport.next tr ~now:0.)

let test_eof_serves_buffered_then_closes () =
  let tr = transport () in
  Transport.feed_string tr "1 PING\n";
  Transport.feed_eof tr;
  Alcotest.check step "buffered request" (Transport.Request "1 PING")
    (Transport.next tr ~now:0.);
  Alcotest.check step "eof" (Transport.Close Transport.Eof)
    (Transport.next tr ~now:0.)

let test_partial_write_bookkeeping () =
  let tr = transport () in
  Transport.respond tr [ "1 OK alpha"; "2 OK beta" ];
  Alcotest.(check int) "queued" 21 (Transport.output_length tr);
  (match Transport.output tr with
  | None -> Alcotest.fail "expected output"
  | Some (store, pos, len) ->
    Alcotest.(check int) "contiguous view" 21 len;
    Alcotest.(check string) "view contents" "1 OK alpha\n2 OK beta\n"
      (Bytes.sub_string store pos len));
  Transport.wrote tr 5;
  (match Transport.output tr with
  | None -> Alcotest.fail "expected remainder"
  | Some (store, pos, len) ->
    Alcotest.(check string) "remainder after partial write"
      "alpha\n2 OK beta\n"
      (Bytes.sub_string store pos len));
  Transport.wrote tr 16;
  Alcotest.(check bool) "fully flushed" false (Transport.has_output tr)

(* --- Fault.Net chaos planner --------------------------------------- *)

let plan_of ~seed ~config data =
  Util.Fault.Net.plan (Util.Fault.create ~seed ()) ~config data

let chunk_concat actions =
  String.concat ""
    (List.filter_map
       (function Util.Fault.Net.Chunk c -> Some c | Util.Fault.Net.Delay -> None)
       actions)

let test_net_plan_deterministic () =
  let data = "1 FEED 100 1.0 1,2\n" in
  let a1, r1 = plan_of ~seed:42 ~config:Util.Fault.Net.default data in
  let a2, r2 = plan_of ~seed:42 ~config:Util.Fault.Net.default data in
  Alcotest.(check bool) "same reset" r1 r2;
  Alcotest.(check string) "same delivery" (chunk_concat a1) (chunk_concat a2);
  Alcotest.(check int) "same action count" (List.length a1) (List.length a2)

let test_net_plan_delivery_identity () =
  let data = String.init 257 (fun i -> Char.chr (32 + (i mod 64))) in
  let config = { Util.Fault.Net.default with Util.Fault.Net.max_chunk = 7 } in
  for seed = 0 to 49 do
    let actions, reset = plan_of ~seed ~config data in
    let delivered = chunk_concat actions in
    List.iter
      (function
        | Util.Fault.Net.Chunk c ->
          Alcotest.(check bool) "chunk non-empty" true (String.length c > 0);
          Alcotest.(check bool) "chunk within max_chunk" true
            (String.length c <= 7)
        | Util.Fault.Net.Delay -> ())
      actions;
    if reset then
      (* A reset truncates: delivery is a strict prefix, torn anywhere. *)
      Alcotest.(check bool) "strict prefix under reset" true
        (String.length delivered < String.length data
        && String.sub data 0 (String.length delivered) = delivered)
    else Alcotest.(check string) "bit-identical without reset" data delivered
  done

(* --- Client retry discipline --------------------------------------- *)

module Client = Mqdp.Client

let fast_retry =
  { Client.default_config with Client.base_delay = 0.; max_delay = 0. }

(* A scripted transport: each call consumes the next canned outcome and
   records the wire line it was asked to send. *)
let scripted outcomes =
  let sent = ref [] and slept = ref 0 and script = ref outcomes in
  let io =
    {
      Client.send =
        (fun line ->
          sent := line :: !sent;
          match !script with
          | [] -> Alcotest.fail "client sent more requests than scripted"
          | o :: rest ->
            script := rest;
            o);
      sleep = (fun _ -> incr slept);
    }
  in
  (io, sent, slept)

let test_client_success_and_seq () =
  let io, sent, _ = scripted [ Some [ "1 OK pong" ]; Some [ "2 OK pong" ] ] in
  let cl = Client.create ~config:fast_retry io in
  Alcotest.(check int) "first seq" 1 (Client.next_seq cl);
  (match Client.request cl "PING" with
  | Ok lines -> Alcotest.(check (list string)) "response" [ "1 OK pong" ] lines
  | Error _ -> Alcotest.fail "expected success");
  ignore (Client.request cl "PING");
  Alcotest.(check (list string)) "seq-prefixed wire lines"
    [ "1 PING"; "2 PING" ] (List.rev !sent);
  Alcotest.(check int) "no retries" 0 (Client.retries cl)

let test_client_retries_verbatim_on_failure () =
  (* One transport failure, one transport-level shed: both must retry
     the SAME line (the engine's idempotency contract), then succeed. *)
  let io, sent, slept =
    scripted [ None; Some [ "0 ERR capacity retry later" ]; Some [ "1 OK pong" ] ]
  in
  let cl = Client.create ~config:fast_retry io in
  (match Client.request cl "PING" with
  | Ok lines -> Alcotest.(check (list string)) "response" [ "1 OK pong" ] lines
  | Error _ -> Alcotest.fail "expected eventual success");
  Alcotest.(check (list string)) "identical line each attempt"
    [ "1 PING"; "1 PING"; "1 PING" ] (List.rev !sent);
  Alcotest.(check int) "two retries" 2 (Client.retries cl);
  Alcotest.(check int) "slept between attempts" 2 !slept

let test_client_server_error_is_a_response () =
  let io, _, _ = scripted [ Some [ "1 ERR parse bad verb" ] ] in
  let cl = Client.create ~config:fast_retry io in
  match Client.request cl "FROB" with
  | Ok lines ->
    Alcotest.(check (list string)) "returned, not retried"
      [ "1 ERR parse bad verb" ] lines
  | Error _ -> Alcotest.fail "server-level ERR must not exhaust retries"

let test_client_gives_up () =
  let config = { fast_retry with Client.max_attempts = 3 } in
  let io, sent, _ = scripted [ None; None; None ] in
  let cl = Client.create ~config io in
  (match Client.request cl "PING" with
  | Ok _ -> Alcotest.fail "expected give-up"
  | Error (Client.Gave_up { attempts; line }) ->
    Alcotest.(check int) "attempts" 3 attempts;
    Alcotest.(check string) "line" "1 PING" line);
  Alcotest.(check int) "stopped at max_attempts" 3 (List.length !sent)

let test_client_backoff_schedule () =
  let config =
    {
      Client.max_attempts = 6;
      base_delay = 0.01;
      max_delay = 0.08;
      jitter = 0.5;
    }
  in
  let s1 = Client.backoff_schedule config ~seed:7 ~attempts:5 in
  let s2 = Client.backoff_schedule config ~seed:7 ~attempts:5 in
  let s3 = Client.backoff_schedule config ~seed:8 ~attempts:5 in
  Alcotest.(check (list (float 1e-12))) "deterministic per seed" s1 s2;
  Alcotest.(check bool) "seed moves the jitter" true (s1 <> s3);
  List.iter
    (fun d ->
      Alcotest.(check bool) "positive" true (d > 0.);
      Alcotest.(check bool) "capped (ceiling + jitter)" true
        (d <= config.Client.max_delay *. 1.25))
    s1;
  (* Exponential growth until the cap dominates. *)
  Alcotest.(check bool) "grows" true (List.nth s1 2 > List.nth s1 0)

(* --- Serve sessions and the manifest ------------------------------- *)

module Serve = Mqdp.Serve

let engine () =
  Serve.create { Serve.default_config with Serve.shards = 2; jobs = 1 }

let test_sessions_are_independent_seq_spaces () =
  let serve = engine () in
  Fun.protect ~finally:(fun () -> Serve.shutdown serve) @@ fun () ->
  let a = Serve.new_session serve and b = Serve.new_session serve in
  (* Same sequence number on two sessions: both must execute. *)
  Alcotest.(check (list string)) "a executes"
    [ "1 OK added" ] (Serve.exec_on serve a "1 ADD alice 60 instant 1 nowindow");
  Alcotest.(check (list string)) "b executes (not a's cache)"
    [ "1 OK added" ] (Serve.exec_on serve b "1 ADD bob 60 instant 2 nowindow");
  (* Retrying a's line verbatim replays the cache — re-execution would
     report duplicate-profile. *)
  Alcotest.(check (list string)) "verbatim retry replays cache"
    [ "1 OK added" ] (Serve.exec_on serve a "1 ADD alice 60 instant 1 nowindow");
  Alcotest.(check int) "profiles" 2 (Serve.profile_count serve)

let test_named_sessions_survive_reconnects () =
  let serve = engine () in
  Fun.protect ~finally:(fun () -> Serve.shutdown serve) @@ fun () ->
  let s1 = Serve.session serve ~id:"cli1" in
  ignore (Serve.exec_on serve s1 "1 ADD carol 60 instant 1 nowindow");
  (* The same HELLO id after a reconnect resolves to the same sequence
     space: the retry of an acked command replays instead of failing. *)
  let s2 = Serve.session serve ~id:"cli1" in
  Alcotest.(check (list string)) "replay across reconnect"
    [ "1 OK added" ] (Serve.exec_on serve s2 "1 ADD carol 60 instant 1 nowindow");
  Alcotest.(check int) "one named session" 1 (Serve.session_count serve);
  ignore (Serve.session serve ~id:"cli2");
  Alcotest.(check int) "two named sessions" 2 (Serve.session_count serve)

let test_is_checkpoint_line_whitespace () =
  List.iter
    (fun (line, expected) ->
      Alcotest.(check bool) (Printf.sprintf "%S" line) expected
        (Serve.is_checkpoint_line line))
    [
      ("5 CHECKPOINT", true);
      (* The pre-transport splitter broke on doubled separators: the
         token after the seq was "", not CHECKPOINT. *)
      ("5  CHECKPOINT", true);
      ("5 CHECKPOINT extra", true);
      ("5 CHECKPOINTX", false);
      ("5 checkpoint", false);
      ("CHECKPOINT", false);
      ("", false);
    ]

let test_manifest_roundtrip_and_mismatch () =
  let serve = engine () in
  Fun.protect ~finally:(fun () -> Serve.shutdown serve) @@ fun () ->
  (match Serve.parse_manifest (Serve.manifest serve) with
  | Ok shards -> Alcotest.(check int) "roundtrip" 2 shards
  | Error e -> Alcotest.failf "manifest did not parse: %s" e);
  (match Serve.parse_manifest "mqdp-serve state v999\nshards=2\n" with
  | Ok _ -> Alcotest.fail "unknown version must not parse"
  | Error _ -> ());
  match Serve.parse_manifest "garbage" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "netio buf queue" `Quick test_buf_queue;
    Alcotest.test_case "request/response cycle" `Quick test_request_response_cycle;
    Alcotest.test_case "partial reads reassemble" `Quick
      test_partial_reads_reassemble;
    Alcotest.test_case "framing edge cases" `Quick test_framing_edge_cases;
    Alcotest.test_case "oversized line condemns" `Quick
      test_oversized_line_condemns;
    Alcotest.test_case "oversized terminated line condemns" `Quick
      test_oversized_terminated_line_condemns;
    Alcotest.test_case "idle deadline re-arms on requests only" `Quick
      test_idle_deadline_rearms_on_completed_requests_only;
    Alcotest.test_case "output overflow condemns" `Quick
      test_output_overflow_condemns;
    Alcotest.test_case "drain serves buffered then closes" `Quick
      test_drain_serves_buffered_then_closes;
    Alcotest.test_case "eof serves buffered then closes" `Quick
      test_eof_serves_buffered_then_closes;
    Alcotest.test_case "partial write bookkeeping" `Quick
      test_partial_write_bookkeeping;
    Alcotest.test_case "net plan deterministic" `Quick test_net_plan_deterministic;
    Alcotest.test_case "net plan delivery identity" `Quick
      test_net_plan_delivery_identity;
    Alcotest.test_case "client success and seq" `Quick test_client_success_and_seq;
    Alcotest.test_case "client retries verbatim" `Quick
      test_client_retries_verbatim_on_failure;
    Alcotest.test_case "client server-error is a response" `Quick
      test_client_server_error_is_a_response;
    Alcotest.test_case "client gives up" `Quick test_client_gives_up;
    Alcotest.test_case "client backoff schedule" `Quick
      test_client_backoff_schedule;
    Alcotest.test_case "sessions independent" `Quick
      test_sessions_are_independent_seq_spaces;
    Alcotest.test_case "named sessions survive reconnects" `Quick
      test_named_sessions_survive_reconnects;
    Alcotest.test_case "is_checkpoint_line whitespace" `Quick
      test_is_checkpoint_line_whitespace;
    Alcotest.test_case "manifest roundtrip and mismatch" `Quick
      test_manifest_roundtrip_and_mismatch;
  ]
