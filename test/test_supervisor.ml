(* Resource governance: Supervisor ladder walking, budget exhaustion,
   salvage/seeding, typed refusals, and the per-rung circuit breaker.

   Degradation tests use step budgets, never wall-clock ones: steps are
   charged deterministically, so "OPT exhausts mid-run and GreedySC
   answers" is bit-reproducible on any machine. *)

let fixed l = Mqdp.Coverage.Fixed l

(* A dense instance: [posts] posts at regular spacing, two labels each,
   drawn from a universe of [labels]. Every label is populated and the
   coverage windows overlap heavily, which is the expensive regime for
   OPT's end-pattern enumeration. *)
let dense_instance ~posts ~labels ~spacing =
  List.init posts (fun i ->
      Helpers.post ~id:i
        ~value:(float_of_int i *. spacing)
        [ i mod labels; ((i * 7) + 3) mod labels ])
  |> Helpers.instance_of

(* Steps a computation needs, measured with a counting-only budget. *)
let steps_needed f =
  let b = Util.Budget.create () in
  ignore (f b);
  Util.Budget.spent_steps b

let check_valid name inst lambda cover =
  Alcotest.(check bool)
    (name ^ " is a valid cover")
    true
    (Mqdp.Coverage.is_cover inst lambda cover)

(* With an unlimited budget the supervisor is a transparent wrapper: the
   first rung answers and the cover is bit-identical to calling the
   algorithm directly. *)
let unlimited_is_transparent =
  Helpers.qtest "unlimited supervisor = direct solver"
    (Helpers.arb_instance_lambda ())
    (fun (inst, l) ->
      List.for_all
        (fun algorithm ->
          let lambda = fixed l in
          match Mqdp.Solver.run algorithm inst lambda with
          | direct ->
            let report =
              Mqdp.Supervisor.solve ~ladder:[ algorithm ] inst lambda
            in
            report.Mqdp.Supervisor.answered_by
            = Mqdp.Solver.algorithm_name algorithm
            && report.Mqdp.Supervisor.cover = direct
          | exception
              ( Mqdp.Opt.Too_large _ | Mqdp.Opt.Unsupported _
              | Mqdp.Brute_force.Too_large _ ) ->
            true)
        Mqdp.Solver.all_algorithms)

(* Seeds are honoured by every algorithm: the seed positions appear in the
   result and the result is still a valid cover (GreedySC and Scan+
   pre-mark the seed's coverage; the others union it in). *)
let seeds_are_sound =
  Helpers.qtest "seeded run: seed subset of valid result"
    (Helpers.arb_instance_lambda ())
    (fun (inst, l) ->
      let n = Mqdp.Instance.size inst in
      let seed = List.sort_uniq Int.compare [ 0; n / 2; n - 1 ] in
      let lambda = fixed l in
      List.for_all
        (fun algorithm ->
          match Mqdp.Solver.run ~seed algorithm inst lambda with
          | cover ->
            List.for_all (fun p -> List.mem p cover) seed
            && Mqdp.Coverage.is_cover inst lambda cover
          | exception
              ( Mqdp.Opt.Too_large _ | Mqdp.Opt.Unsupported _
              | Mqdp.Brute_force.Too_large _ ) ->
            true)
        Mqdp.Solver.all_algorithms)

(* Deterministic mid-OPT degradation: pick a step budget big enough for
   GreedySC's rung but too small for OPT's, and check the ladder hands
   over cleanly — OPT exhausts (salvaging nothing, its DP layers are not
   positions), GreedySC answers, and the cover equals running GreedySC
   directly. *)
let test_opt_exhausts_greedy_answers () =
  let inst = dense_instance ~posts:30 ~labels:5 ~spacing:0.5 in
  let lambda = fixed 1.5 in
  let s_opt =
    steps_needed (fun b -> Mqdp.Opt.solve ~budget:b inst lambda)
  in
  let s_greedy =
    steps_needed (fun b ->
        Mqdp.Solver.run ~budget:b Mqdp.Solver.Greedy_sc inst lambda)
  in
  (* Total budget T: OPT's child slice (T/2) must fall short of OPT's
     need, while GreedySC's child slice (~T/4) must exceed its own. *)
  let total = (4 * s_greedy) + 64 in
  Alcotest.(check bool)
    (Printf.sprintf "window exists (opt=%d greedy=%d)" s_opt s_greedy)
    true
    ((2 * s_greedy) + 32 < s_opt);
  let report =
    Mqdp.Supervisor.solve
      ~budget:(Util.Budget.create ~max_steps:total ())
      inst lambda
  in
  Alcotest.(check string) "greedy-sc answered" "greedy-sc"
    report.Mqdp.Supervisor.answered_by;
  (match report.Mqdp.Supervisor.attempts with
  | first :: second :: _ ->
    Alcotest.(check string) "opt attempted first" "opt"
      first.Mqdp.Supervisor.rung;
    (match first.Mqdp.Supervisor.outcome with
    | Mqdp.Supervisor.Exhausted Util.Budget.Steps -> ()
    | o ->
      Alcotest.failf "opt outcome: expected exhausted (steps), got %s"
        (Mqdp.Supervisor.outcome_to_string o));
    Alcotest.(check int) "opt salvages nothing to seed with" 0
      second.Mqdp.Supervisor.seeded_with
  | attempts ->
    Alcotest.failf "expected >= 2 attempts, got %d" (List.length attempts));
  Alcotest.(check Helpers.sorted_ints) "same cover as direct GreedySC"
    (Mqdp.Solver.run Mqdp.Solver.Greedy_sc inst lambda)
    report.Mqdp.Supervisor.cover;
  check_valid "degraded answer" inst lambda report.Mqdp.Supervisor.cover

(* A zero-step budget exhausts every ladder rung immediately; the
   unguarded instant floor still answers with a valid cover. *)
let test_zero_budget_reaches_instant () =
  let inst = dense_instance ~posts:30 ~labels:4 ~spacing:0.5 in
  let lambda = fixed 1.5 in
  let report =
    Mqdp.Supervisor.solve
      ~budget:(Util.Budget.create ~max_steps:0 ())
      inst lambda
  in
  Alcotest.(check string) "instant answered" "instant"
    report.Mqdp.Supervisor.answered_by;
  Alcotest.(check int) "all three rungs plus the floor recorded" 4
    (List.length report.Mqdp.Supervisor.attempts);
  check_valid "instant floor" inst lambda report.Mqdp.Supervisor.cover

(* OPT's pre-flight feasibility check: 24 populated labels imply a DP
   pattern space of at least 2^24 entries, so under a small allocation
   budget OPT must refuse with the typed exception — before allocating —
   rather than die in the middle of the table build. *)
let test_opt_infeasible_typed () =
  let inst = dense_instance ~posts:48 ~labels:24 ~spacing:0.25 in
  let lambda = fixed 1.0 in
  let budget = Util.Budget.create ~max_alloc_bytes:5e6 () in
  (match Mqdp.Opt.solve ~budget inst lambda with
  | _ -> Alcotest.fail "Opt.solve should refuse 24 labels under 5MB"
  | exception Mqdp.Opt.Infeasible { labels; bytes } ->
    Alcotest.(check int) "labels reported" 24 labels;
    Alcotest.(check bool) "bytes bound exceeds the budget" true (bytes > 5e6))

let test_supervisor_routes_infeasible () =
  let inst = dense_instance ~posts:48 ~labels:24 ~spacing:0.25 in
  let lambda = fixed 1.0 in
  let report =
    Mqdp.Supervisor.solve
      ~budget:(Util.Budget.create ~max_alloc_bytes:5e6 ())
      inst lambda
  in
  (match report.Mqdp.Supervisor.attempts with
  | first :: _ ->
    Alcotest.(check string) "opt attempted first" "opt"
      first.Mqdp.Supervisor.rung;
    (match first.Mqdp.Supervisor.outcome with
    | Mqdp.Supervisor.Refused msg ->
      Alcotest.(check bool)
        (Printf.sprintf "refusal names infeasibility: %s" msg)
        true
        (String.length msg >= 10 && String.sub msg 0 10 = "infeasible")
    | o ->
      Alcotest.failf "opt outcome: expected a refusal, got %s"
        (Mqdp.Supervisor.outcome_to_string o))
  | [] -> Alcotest.fail "no attempts recorded");
  Alcotest.(check bool) "a cheaper rung answered" true
    (report.Mqdp.Supervisor.answered_by <> "opt");
  check_valid "post-refusal answer" inst lambda report.Mqdp.Supervisor.cover

(* The acceptance scenario from the issue: |L| = 24, a 50ms budget, and
   the answer must still be a valid cover with the report naming the rung
   that produced it. *)
let test_acceptance_24_labels_50ms () =
  let inst = dense_instance ~posts:240 ~labels:24 ~spacing:0.05 in
  let lambda = fixed 1.0 in
  let report =
    Mqdp.Supervisor.solve
      ~budget:(Util.Budget.create ~deadline:0.05 ())
      inst lambda
  in
  Alcotest.(check bool) "a rung is named" true
    (report.Mqdp.Supervisor.answered_by <> "");
  Alcotest.(check bool) "attempts recorded" true
    (report.Mqdp.Supervisor.attempts <> []);
  check_valid "50ms answer" inst lambda report.Mqdp.Supervisor.cover

(* Branch-and-bound keeps a complete incumbent cover at all times, so
   cutting its budget one step short of what it needs must surface the
   incumbent as a Salvaged (already valid) answer, not fall through the
   ladder. *)
let test_brute_force_salvages_incumbent () =
  let inst = dense_instance ~posts:12 ~labels:3 ~spacing:0.6 in
  let lambda = fixed 1.8 in
  let needed =
    steps_needed (fun b ->
        Mqdp.Solver.run ~budget:b Mqdp.Solver.Brute_force inst lambda)
  in
  Alcotest.(check bool) "instance is nontrivial" true (needed > 1);
  let report =
    Mqdp.Supervisor.solve
      ~budget:(Util.Budget.create ~max_steps:(needed - 1) ())
      ~ladder:[ Mqdp.Solver.Brute_force ]
      inst lambda
  in
  Alcotest.(check string) "brute-force answered with its incumbent"
    "brute-force" report.Mqdp.Supervisor.answered_by;
  (match report.Mqdp.Supervisor.attempts with
  | [ only ] ->
    (match only.Mqdp.Supervisor.outcome with
    | Mqdp.Supervisor.Salvaged Util.Budget.Steps -> ()
    | o ->
      Alcotest.failf "expected salvaged (steps), got %s"
        (Mqdp.Supervisor.outcome_to_string o))
  | attempts ->
    Alcotest.failf "expected exactly 1 attempt, got %d" (List.length attempts));
  check_valid "salvaged incumbent" inst lambda report.Mqdp.Supervisor.cover

(* OPT's budget exception deliberately carries no partial: DP layers are
   end-patterns, not committed positions. *)
let test_opt_salvages_nothing () =
  let inst = dense_instance ~posts:30 ~labels:5 ~spacing:0.5 in
  match Mqdp.Opt.solve ~budget:(Util.Budget.create ~max_steps:50 ()) inst (fixed 1.5) with
  | _ -> Alcotest.fail "50 steps should not complete OPT here"
  | exception Mqdp.Interrupt.Budget_exceeded { reason; partial } ->
    Alcotest.(check bool) "steps reason" true (reason = Util.Budget.Steps);
    (match partial with
    | Mqdp.Interrupt.No_partial -> ()
    | Mqdp.Interrupt.Partial_cover ps ->
      Alcotest.failf "OPT salvaged %d positions; expected none" (List.length ps))

(* ladder_from: a suffix of the default ladder for members, a singleton
   for outsiders. *)
let test_ladder_from () =
  Alcotest.(check bool) "scan+ suffix" true
    (Mqdp.Supervisor.ladder_from Mqdp.Solver.Scan_plus = [ Mqdp.Solver.Scan_plus ]);
  Alcotest.(check bool) "greedy suffix" true
    (Mqdp.Supervisor.ladder_from Mqdp.Solver.Greedy_sc
    = [ Mqdp.Solver.Greedy_sc; Mqdp.Solver.Scan_plus ]);
  Alcotest.(check bool) "opt = whole ladder" true
    (Mqdp.Supervisor.ladder_from Mqdp.Solver.Opt = Mqdp.Supervisor.default_ladder);
  Alcotest.(check bool) "non-member is a singleton" true
    (Mqdp.Supervisor.ladder_from Mqdp.Solver.Brute_force
    = [ Mqdp.Solver.Brute_force ])

(* The instant floor is valid under both λ families without any budget. *)
let test_instant_floor_valid () =
  let inst = dense_instance ~posts:50 ~labels:6 ~spacing:0.3 in
  let lambda = fixed 1.2 in
  check_valid "fixed lambda floor" inst lambda
    (Mqdp.Supervisor.instant_cover inst lambda);
  let directional = Mqdp.Coverage.Per_post_label (fun _ _ -> 0.7) in
  check_valid "per-post lambda floor" inst directional
    (Mqdp.Supervisor.instant_cover inst directional)

(* Breaker unit behaviour: threshold opens the circuit, success closes
   it, an elapsed cooldown allows a half-open trial, and a failed trial
   re-arms the cooldown. *)
let test_breaker_threshold_and_reset () =
  let b = Mqdp.Supervisor.Breaker.create ~threshold:2 ~cooldown:1000. () in
  Alcotest.(check bool) "fresh rung available" true
    (Mqdp.Supervisor.Breaker.available b "opt");
  Mqdp.Supervisor.Breaker.record_failure b "opt";
  Alcotest.(check int) "one failure" 1 (Mqdp.Supervisor.Breaker.failures b "opt");
  Alcotest.(check bool) "below threshold still available" true
    (Mqdp.Supervisor.Breaker.available b "opt");
  Mqdp.Supervisor.Breaker.record_failure b "opt";
  Alcotest.(check bool) "circuit open" false
    (Mqdp.Supervisor.Breaker.available b "opt");
  Alcotest.(check bool) "other rungs unaffected" true
    (Mqdp.Supervisor.Breaker.available b "greedy-sc");
  Mqdp.Supervisor.Breaker.record_success b "opt";
  Alcotest.(check int) "success resets the count" 0
    (Mqdp.Supervisor.Breaker.failures b "opt");
  Alcotest.(check bool) "closed again" true
    (Mqdp.Supervisor.Breaker.available b "opt")

let test_breaker_half_open () =
  let b = Mqdp.Supervisor.Breaker.create ~threshold:1 ~cooldown:0. () in
  Mqdp.Supervisor.Breaker.record_failure b "opt";
  (* cooldown 0: the half-open trial is allowed immediately *)
  Alcotest.(check bool) "half-open after cooldown" true
    (Mqdp.Supervisor.Breaker.available b "opt");
  let armed = Mqdp.Supervisor.Breaker.create ~threshold:1 ~cooldown:1000. () in
  Mqdp.Supervisor.Breaker.record_failure armed "opt";
  Alcotest.(check bool) "long cooldown keeps it open" false
    (Mqdp.Supervisor.Breaker.available armed "opt")

let test_breaker_validation () =
  Alcotest.check_raises "threshold < 1"
    (Invalid_argument "Supervisor.Breaker.create: threshold < 1") (fun () ->
      ignore (Mqdp.Supervisor.Breaker.create ~threshold:0 ()));
  Alcotest.check_raises "cooldown < 0"
    (Invalid_argument "Supervisor.Breaker.create: cooldown < 0") (fun () ->
      ignore (Mqdp.Supervisor.Breaker.create ~cooldown:(-1.) ()))

(* Spawn [n] domains that all start on a shared barrier and run [f i];
   join them all, re-raising the first failure. *)
let in_domains n f =
  let barrier = Atomic.make 0 in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n do
              Domain.cpu_relax ()
            done;
            f i))
  in
  List.iter Domain.join domains

(* The breaker is shared by every domain supervising the same profile, so
   concurrent transitions must never tear its state: whatever the
   interleaving, the failure count stays in range and the circuit is
   either cleanly closed or cleanly open. *)
let test_breaker_multi_domain_hammer () =
  let b = Mqdp.Supervisor.Breaker.create ~threshold:3 ~cooldown:1000. () in
  let rounds = 2_000 in
  in_domains 4 (fun i ->
      for k = 1 to rounds do
        ignore (Mqdp.Supervisor.Breaker.available b "opt");
        if (k + i) mod 3 = 0 then Mqdp.Supervisor.Breaker.record_success b "opt"
        else Mqdp.Supervisor.Breaker.record_failure b "opt";
        ignore (Mqdp.Supervisor.Breaker.failures b "opt")
      done);
  let f = Mqdp.Supervisor.Breaker.failures b "opt" in
  Alcotest.(check bool)
    (Printf.sprintf "failure count %d within the recorded range" f)
    true
    (f >= 0 && f <= 4 * rounds);
  (* The breaker still behaves sequentially after the barrage. *)
  Mqdp.Supervisor.Breaker.record_success b "opt";
  Alcotest.(check int) "success closes the circuit" 0
    (Mqdp.Supervisor.Breaker.failures b "opt");
  Alcotest.(check bool) "available once closed" true
    (Mqdp.Supervisor.Breaker.available b "opt")

(* The half-open race, driven from multiple domains: after the cooldown
   elapses, several domains may each observe the rung as available and run
   a trial concurrently. If every trial fails, the circuit must end up
   open again with the cooldown re-armed — no interleaving may leave it
   closed, and no failure may be lost mid-transition. *)
let test_breaker_half_open_race_multi_domain () =
  let threshold = 2 in
  let b =
    Mqdp.Supervisor.Breaker.create ~threshold ~cooldown:0.02 ()
  in
  for _ = 1 to threshold do
    Mqdp.Supervisor.Breaker.record_failure b "opt"
  done;
  (* Wait out the cooldown so every domain sees the half-open window. *)
  let deadline = Util.Timer.now () +. 5. in
  while
    (not (Mqdp.Supervisor.Breaker.available b "opt"))
    && Util.Timer.now () < deadline
  do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "half-open after cooldown" true
    (Mqdp.Supervisor.Breaker.available b "opt");
  let trials = Atomic.make 0 in
  in_domains 4 (fun _ ->
      if Mqdp.Supervisor.Breaker.available b "opt" then begin
        Atomic.incr trials;
        Mqdp.Supervisor.Breaker.record_failure b "opt"
      end);
  Alcotest.(check bool) "at least one domain ran a half-open trial" true
    (Atomic.get trials >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "failed trials re-open the circuit (failures=%d)"
       (Mqdp.Supervisor.Breaker.failures b "opt"))
    true
    (Mqdp.Supervisor.Breaker.failures b "opt" >= threshold);
  Alcotest.(check bool) "cooldown re-armed: circuit closed to callers" false
    (Mqdp.Supervisor.Breaker.available b "opt");
  (* One successful trial from any domain closes it for everyone. *)
  Mqdp.Supervisor.Breaker.record_success b "opt";
  in_domains 2 (fun _ ->
      if not (Mqdp.Supervisor.Breaker.available b "opt") then
        failwith "closed circuit not visible across domains")

(* Breaker integration: a rung that burned its budget once is skipped on
   the next solve (threshold 1, long cooldown), and the report says so. *)
let test_breaker_skips_failed_rung () =
  let inst = dense_instance ~posts:30 ~labels:5 ~spacing:0.5 in
  let lambda = fixed 1.5 in
  let breaker = Mqdp.Supervisor.Breaker.create ~threshold:1 ~cooldown:1000. () in
  let s_greedy =
    steps_needed (fun b ->
        Mqdp.Solver.run ~budget:b Mqdp.Solver.Greedy_sc inst lambda)
  in
  let budget () = Util.Budget.create ~max_steps:((4 * s_greedy) + 64) () in
  let first = Mqdp.Supervisor.solve ~budget:(budget ()) ~breaker inst lambda in
  Alcotest.(check string) "first call degrades past opt" "greedy-sc"
    first.Mqdp.Supervisor.answered_by;
  Alcotest.(check int) "opt failure recorded" 1
    (Mqdp.Supervisor.Breaker.failures breaker "opt");
  let second = Mqdp.Supervisor.solve ~budget:(budget ()) ~breaker inst lambda in
  (match second.Mqdp.Supervisor.attempts with
  | first_attempt :: _ ->
    Alcotest.(check string) "opt still heads the ladder" "opt"
      first_attempt.Mqdp.Supervisor.rung;
    Alcotest.(check bool) "but the circuit is open" true
      (first_attempt.Mqdp.Supervisor.outcome = Mqdp.Supervisor.Skipped_breaker)
  | [] -> Alcotest.fail "no attempts recorded");
  check_valid "second answer" inst lambda second.Mqdp.Supervisor.cover

(* A payload-carrying Budget_exceeded raised inside a pool worker arrives
   at the submitter intact — the supervisor's salvage path depends on the
   pool never wrapping or rebuilding the exception. *)
let test_pool_preserves_budget_payload () =
  Util.Pool.with_pool ~jobs:3 (fun pool ->
      match
        Util.Pool.parallel_for pool ~chunk:1 32 ~f:(fun i ->
            if i = 9 then
              raise
                (Mqdp.Interrupt.Budget_exceeded
                   {
                     reason = Util.Budget.Steps;
                     partial = Mqdp.Interrupt.Partial_cover [ 3; 1; 2 ];
                   }))
      with
      | () -> Alcotest.fail "exception vanished in the pool"
      | exception Mqdp.Interrupt.Budget_exceeded { reason; partial } ->
        Alcotest.(check bool) "reason intact" true (reason = Util.Budget.Steps);
        Alcotest.(check Helpers.sorted_ints) "partial intact" [ 1; 2; 3 ]
          (Mqdp.Interrupt.positions_of partial))

(* Cancellation beats every other limit and compile never leaks a
   half-built index: a pre-cancelled budget makes Solver.compile raise
   with reason Cancelled before any geometry escapes. *)
let test_compile_cancellation () =
  let inst = dense_instance ~posts:60 ~labels:8 ~spacing:0.3 in
  let budget = Util.Budget.create ~max_steps:max_int () in
  Util.Budget.cancel budget;
  match Mqdp.Solver.compile ~budget inst (fixed 1.5) with
  | _ -> Alcotest.fail "compile under a cancelled budget returned an index"
  | exception Mqdp.Interrupt.Budget_exceeded { reason; _ } ->
    Alcotest.(check bool) "cancellation reported" true
      (reason = Util.Budget.Cancelled)

(* Ladder under tiny step budgets (1..24): every rung's child budget used
   to floor to 0 steps for small remainders, making speculative rungs trip
   before doing any work. Whatever the budget, the answer must be a valid
   cover, and the walk must be deterministic (steps are charged exactly,
   never by the clock). *)
let test_ladder_tiny_step_budgets () =
  let inst = dense_instance ~posts:12 ~labels:3 ~spacing:1.0 in
  let lambda = fixed 2.5 in
  for steps = 1 to 24 do
    let solve () =
      Mqdp.Supervisor.solve
        ~budget:(Util.Budget.create ~max_steps:steps ())
        inst lambda
    in
    let r1 = solve () and r2 = solve () in
    check_valid (Printf.sprintf "budget %d answer" steps) inst lambda
      r1.Mqdp.Supervisor.cover;
    Alcotest.(check string)
      (Printf.sprintf "budget %d deterministic rung" steps)
      r1.Mqdp.Supervisor.answered_by r2.Mqdp.Supervisor.answered_by;
    Alcotest.(check (list int))
      (Printf.sprintf "budget %d deterministic cover" steps)
      r1.Mqdp.Supervisor.cover r2.Mqdp.Supervisor.cover
  done

let suite =
  [
    unlimited_is_transparent;
    seeds_are_sound;
    Alcotest.test_case "ladder under tiny step budgets" `Quick
      test_ladder_tiny_step_budgets;
    Alcotest.test_case "mid-OPT steps budget degrades to GreedySC" `Quick
      test_opt_exhausts_greedy_answers;
    Alcotest.test_case "zero budget reaches the instant floor" `Quick
      test_zero_budget_reaches_instant;
    Alcotest.test_case "opt refuses infeasible table (typed)" `Quick
      test_opt_infeasible_typed;
    Alcotest.test_case "supervisor routes infeasibility refusal" `Quick
      test_supervisor_routes_infeasible;
    Alcotest.test_case "acceptance: 24 labels under 50ms" `Quick
      test_acceptance_24_labels_50ms;
    Alcotest.test_case "brute-force salvages its incumbent" `Quick
      test_brute_force_salvages_incumbent;
    Alcotest.test_case "opt exhaustion carries no partial" `Quick
      test_opt_salvages_nothing;
    Alcotest.test_case "ladder_from suffixes" `Quick test_ladder_from;
    Alcotest.test_case "instant floor valid under both lambdas" `Quick
      test_instant_floor_valid;
    Alcotest.test_case "breaker threshold and reset" `Quick
      test_breaker_threshold_and_reset;
    Alcotest.test_case "breaker half-open after cooldown" `Quick
      test_breaker_half_open;
    Alcotest.test_case "breaker validation" `Quick test_breaker_validation;
    Alcotest.test_case "breaker skips a burned rung" `Quick
      test_breaker_skips_failed_rung;
    Alcotest.test_case "breaker survives a multi-domain hammer" `Quick
      test_breaker_multi_domain_hammer;
    Alcotest.test_case "breaker half-open race across domains" `Quick
      test_breaker_half_open_race_multi_domain;
    Alcotest.test_case "pool preserves Budget_exceeded payload" `Quick
      test_pool_preserves_budget_payload;
    Alcotest.test_case "compile honours cancellation" `Quick
      test_compile_cancellation;
  ]
