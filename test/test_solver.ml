(* The Solver facade: naming round-trips, stats, and cross-algorithm
   size relations. *)

open Helpers

let test_name_roundtrips () =
  List.iter
    (fun algo ->
      Alcotest.(check bool) (Mqdp.Solver.algorithm_name algo) true
        (Mqdp.Solver.algorithm_of_string (Mqdp.Solver.algorithm_name algo) = Some algo))
    Mqdp.Solver.all_algorithms;
  List.iter
    (fun algo ->
      Alcotest.(check bool) (Mqdp.Solver.streaming_algorithm_name algo) true
        (Mqdp.Solver.streaming_algorithm_of_string
           (Mqdp.Solver.streaming_algorithm_name algo)
        = Some algo))
    Mqdp.Solver.all_streaming_algorithms;
  Alcotest.(check bool) "unknown name" true
    (Mqdp.Solver.algorithm_of_string "nonsense" = None);
  Alcotest.(check bool) "unknown streaming name" true
    (Mqdp.Solver.streaming_algorithm_of_string "nonsense" = None)

let test_result_fields () =
  let inst =
    instance_of [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:10. [ 0 ] ]
  in
  let result = Mqdp.Solver.solve Mqdp.Solver.Scan inst (Mqdp.Coverage.Fixed 1.) in
  Alcotest.(check int) "size = length" (List.length result.Mqdp.Solver.cover)
    result.Mqdp.Solver.size;
  Alcotest.(check bool) "elapsed nonnegative" true (result.Mqdp.Solver.elapsed >= 0.);
  let streaming =
    Mqdp.Solver.solve_stream Mqdp.Solver.Instant ~tau:0. inst (Mqdp.Coverage.Fixed 1.)
  in
  Alcotest.(check int) "stream size = cover length"
    (List.length streaming.Mqdp.Solver.stream.Mqdp.Stream.cover)
    streaming.Mqdp.Solver.stream_size

let test_names_are_distinct () =
  let names = List.map Mqdp.Solver.algorithm_name Mqdp.Solver.all_algorithms in
  Alcotest.(check int) "offline distinct" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  let snames =
    List.map Mqdp.Solver.streaming_algorithm_name Mqdp.Solver.all_streaming_algorithms
  in
  Alcotest.(check int) "streaming distinct" (List.length snames)
    (List.length (List.sort_uniq String.compare snames))

let exact_never_beaten =
  qtest ~count:100 "no approximation beats the exact solvers"
    (arb_instance_lambda ~max_posts:10 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = Mqdp.Coverage.Fixed l in
      let size algo = (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.size in
      let exact = size Mqdp.Solver.Brute_force in
      List.for_all
        (fun algo -> size algo >= exact)
        [ Mqdp.Solver.Opt; Mqdp.Solver.Greedy_sc; Mqdp.Solver.Greedy_sc_heap;
          Mqdp.Solver.Scan; Mqdp.Solver.Scan_plus ])

let streaming_never_beats_clairvoyant =
  qtest ~count:100 "no streaming algorithm beats the clairvoyant optimum"
    (QCheck.pair (arb_instance ~max_posts:10 ~max_labels:3 ())
       (QCheck.make QCheck.Gen.(float_bound_exclusive 4.)))
    (fun (inst, tau) ->
      let lambda = Mqdp.Coverage.Fixed 1.5 in
      let optimal = (Mqdp.Solver.solve Mqdp.Solver.Brute_force inst lambda).Mqdp.Solver.size in
      List.for_all
        (fun algo ->
          (Mqdp.Solver.solve_stream algo ~tau inst lambda).Mqdp.Solver.stream_size
          >= optimal)
        Mqdp.Solver.all_streaming_algorithms)

(* The parallel runtime's hard determinism requirement: any jobs count
   returns the same cover as sequential, for fixed and per-post lambdas. *)
let parallel_equals_sequential =
  qtest ~count:40 "solve ~jobs:4 is bit-identical to solve ~jobs:1"
    (arb_instance_lambda ~max_posts:25 ~max_labels:4 ~span:20. ())
    (fun (inst, l) ->
      let variable =
        Mqdp.Coverage.Per_post_label
          (fun p a -> 0.3 +. (0.4 *. float_of_int ((p.Mqdp.Post.id + a) mod 4)))
      in
      List.for_all
        (fun lambda ->
          List.for_all
            (fun algo ->
              let sequential = Mqdp.Solver.solve algo inst lambda in
              let parallel = Mqdp.Solver.solve ~jobs:4 algo inst lambda in
              if parallel.Mqdp.Solver.cover <> sequential.Mqdp.Solver.cover then
                QCheck.Test.fail_reportf "%s diverged under jobs=4 on %s"
                  (Mqdp.Solver.algorithm_name algo)
                  (describe_instance inst);
              true)
            [ Mqdp.Solver.Greedy_sc; Mqdp.Solver.Greedy_sc_heap; Mqdp.Solver.Scan;
              Mqdp.Solver.Scan_plus ])
        [ Mqdp.Coverage.Fixed l; variable ])

let test_jobs_validation () =
  let inst = instance_of [ post ~id:1 ~value:0. [ 0 ] ] in
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Solver.solve: jobs < 1")
    (fun () ->
      ignore (Mqdp.Solver.solve ~jobs:0 Mqdp.Solver.Scan inst (Mqdp.Coverage.Fixed 1.)))

let suite =
  [
    Alcotest.test_case "name roundtrips" `Quick test_name_roundtrips;
    Alcotest.test_case "result fields" `Quick test_result_fields;
    Alcotest.test_case "names distinct" `Quick test_names_are_distinct;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
    exact_never_beaten;
    streaming_never_beats_clairvoyant;
    parallel_equals_sequential;
  ]
