(* The fault-tolerant ingestion frontend: reorder buffer, fault policies,
   overload degradation, and checkpoint/restore. *)

open Helpers

let mk id value labels = post ~id ~value labels

let delayed ?(plus = false) ~tau () = Mqdp.Online.Delayed { tau; plus }

let key e =
  (e.Mqdp.Online.post.Mqdp.Post.id, Int64.bits_of_float e.Mqdp.Online.emit_time)

let keys es = List.map key es

let emission_keys = Alcotest.(list (pair int int64))

(* Run a post list through a feed; return every emission key in order. *)
let run_feed feed posts =
  let acc = ref [] in
  List.iter
    (fun p ->
      let o = Mqdp.Feed.push feed p in
      acc := List.rev_append (keys o.Mqdp.Feed.emissions) !acc)
    posts;
  acc := List.rev_append (keys (Mqdp.Feed.finish feed)) !acc;
  List.rev !acc

let run_online engine posts =
  let acc = ref [] in
  List.iter
    (fun p -> acc := List.rev_append (keys (Mqdp.Online.push engine p)) !acc)
    posts;
  acc := List.rev_append (keys (Mqdp.Online.finish engine)) !acc;
  List.rev !acc

let sample_posts =
  List.init 20 (fun i -> mk i (0.7 *. float_of_int i) [ i mod 3; (i * i) mod 5 ])

let test_transparent_on_sorted_stream () =
  (* On a clean time-ordered stream the frontend is invisible: any window
     size yields exactly the emissions of the bare engine. *)
  List.iter
    (fun mode ->
      let reference = run_online (Mqdp.Online.create ~lambda:2. mode) sample_posts in
      List.iter
        (fun window ->
          let feed =
            Mqdp.Feed.create
              ~config:{ Mqdp.Feed.default_config with reorder_window = window }
              ~lambda:2. mode
          in
          Alcotest.check emission_keys
            (Printf.sprintf "window %d is transparent" window)
            reference (run_feed feed sample_posts);
          let c = Mqdp.Feed.counters feed in
          Alcotest.(check int) "all accepted" 20 c.Mqdp.Feed.accepted;
          Alcotest.(check int) "all released" 20 c.Mqdp.Feed.released;
          Alcotest.(check int) "nothing dropped" 0
            (c.Mqdp.Feed.late_dropped + c.Mqdp.Feed.duplicate_dropped
           + c.Mqdp.Feed.non_finite_dropped))
        [ 0; 3; 64 ])
    [ delayed ~tau:1. (); delayed ~plus:true ~tau:1. (); Mqdp.Online.Instant ]

let test_reorder_window_absorbs_disorder () =
  (* Shuffle within the window depth; the engine still sees time order. *)
  let rng = Util.Rng.create 99 in
  let disordered =
    List.map (fun p -> (p.Mqdp.Post.value +. Util.Rng.float rng 4.0, p)) sample_posts
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    |> List.map snd
  in
  let reference =
    run_online
      (Mqdp.Online.create ~lambda:2. (delayed ~tau:1. ()))
      sample_posts
  in
  let feed =
    Mqdp.Feed.create
      ~config:{ Mqdp.Feed.default_config with reorder_window = 20 }
      ~lambda:2. (delayed ~tau:1. ())
  in
  Alcotest.check emission_keys "disorder absorbed" reference (run_feed feed disordered);
  let c = Mqdp.Feed.counters feed in
  Alcotest.(check bool) "reordering was observed" true (c.Mqdp.Feed.reordered > 0);
  Alcotest.(check int) "nothing dropped" 0 c.Mqdp.Feed.late_dropped

let immediate policy =
  {
    Mqdp.Feed.default_config with
    Mqdp.Feed.reorder_window = 0;
    late = policy;
    duplicate = policy;
    non_finite = policy;
  }

let test_late_policies () =
  (* Drop: the straggler vanishes, counted. *)
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Drop) ~lambda:5. (delayed ~tau:1. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 10. [ 0 ]));
  let o = Mqdp.Feed.push feed (mk 2 4. [ 0 ]) in
  Alcotest.(check bool) "dropped" true (o.Mqdp.Feed.admitted = None);
  Alcotest.(check int) "counted" 1 (Mqdp.Feed.counters feed).Mqdp.Feed.late_dropped;
  Alcotest.(check (option (float 0.))) "watermark intact" (Some 10.)
    (Mqdp.Feed.watermark feed);
  (* Clamp: the straggler is repaired onto the watermark. *)
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Clamp) ~lambda:5. (delayed ~tau:1. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 10. [ 0 ]));
  (match (Mqdp.Feed.push feed (mk 2 4. [ 0 ])).Mqdp.Feed.admitted with
  | Some p -> Alcotest.(check (float 0.)) "clamped to watermark" 10. p.Mqdp.Post.value
  | None -> Alcotest.fail "clamp dropped the post");
  Alcotest.(check int) "counted" 1 (Mqdp.Feed.counters feed).Mqdp.Feed.late_clamped;
  (* Raise: rejected before touching stream state; the feed stays usable. *)
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Raise) ~lambda:5. (delayed ~tau:1. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 10. [ 0 ]));
  (match Mqdp.Feed.push feed (mk 2 4. [ 0 ]) with
  | _ -> Alcotest.fail "accepted a late post under Raise"
  | exception Mqdp.Feed.Rejected { id; what = _ } ->
    Alcotest.(check int) "names the offender" 2 id);
  let c = Mqdp.Feed.counters feed in
  Alcotest.(check int) "rejection counted" 1 c.Mqdp.Feed.rejected;
  Alcotest.(check int) "not admitted" 1 c.Mqdp.Feed.accepted;
  ignore (Mqdp.Feed.push feed (mk 3 11. [ 0 ]));
  Alcotest.(check int) "stream continues" 2 (Mqdp.Feed.counters feed).Mqdp.Feed.accepted

let test_duplicate_policies () =
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Drop) ~lambda:5. (delayed ~tau:1. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 0. [ 0 ]));
  let o = Mqdp.Feed.push feed (mk 1 1. [ 0 ]) in
  Alcotest.(check bool) "duplicate dropped" true (o.Mqdp.Feed.admitted = None);
  Alcotest.(check int) "counted" 1
    (Mqdp.Feed.counters feed).Mqdp.Feed.duplicate_dropped;
  (* Clamp has nothing to repair on a duplicate: behaves like Drop. *)
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Clamp) ~lambda:5. (delayed ~tau:1. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 0. [ 0 ]));
  Alcotest.(check bool) "clamp drops duplicates" true
    ((Mqdp.Feed.push feed (mk 1 1. [ 0 ])).Mqdp.Feed.admitted = None);
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Raise) ~lambda:5. (delayed ~tau:1. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 0. [ 0 ]));
  match Mqdp.Feed.push feed (mk 1 1. [ 0 ]) with
  | _ -> Alcotest.fail "accepted a duplicate under Raise"
  | exception Mqdp.Feed.Rejected { id; _ } -> Alcotest.(check int) "id" 1 id

let test_non_finite_policies () =
  let nan_post id = { (mk id 0. [ 0 ]) with Mqdp.Post.value = Float.nan } in
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Drop) ~lambda:5. (delayed ~tau:1. ()) in
  Alcotest.(check bool) "NaN dropped" true
    ((Mqdp.Feed.push feed (nan_post 1)).Mqdp.Feed.admitted = None);
  Alcotest.(check bool) "+inf dropped" true
    ((Mqdp.Feed.push feed { (mk 2 0. [ 0 ]) with Mqdp.Post.value = Float.infinity })
       .Mqdp.Feed.admitted = None);
  Alcotest.(check int) "counted" 2
    (Mqdp.Feed.counters feed).Mqdp.Feed.non_finite_dropped;
  (* Clamp: before any release the repair lands at t = 0, afterwards at
     the watermark. *)
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Clamp) ~lambda:5. (delayed ~tau:1. ()) in
  (match (Mqdp.Feed.push feed (nan_post 1)).Mqdp.Feed.admitted with
  | Some p -> Alcotest.(check (float 0.)) "empty stream clamps to 0" 0. p.Mqdp.Post.value
  | None -> Alcotest.fail "clamp dropped");
  ignore (Mqdp.Feed.push feed (mk 2 7. [ 0 ]));
  (match (Mqdp.Feed.push feed (nan_post 3)).Mqdp.Feed.admitted with
  | Some p -> Alcotest.(check (float 0.)) "clamps to watermark" 7. p.Mqdp.Post.value
  | None -> Alcotest.fail "clamp dropped");
  let feed = Mqdp.Feed.create ~config:(immediate Mqdp.Feed.Raise) ~lambda:5. (delayed ~tau:1. ()) in
  match Mqdp.Feed.push feed (nan_post 9) with
  | _ -> Alcotest.fail "accepted a NaN timestamp under Raise"
  | exception Mqdp.Feed.Rejected { id; _ } -> Alcotest.(check int) "id" 9 id

let test_overload_degradation () =
  (* Ten single-label posts, distinct labels, deadlines far away: with a
     budget of 3 the frontend must demote seven labels on the spot. *)
  let config =
    { Mqdp.Feed.default_config with reorder_window = 0; overload_budget = Some 3 }
  in
  let feed = Mqdp.Feed.create ~config ~lambda:100. (delayed ~tau:50. ()) in
  let degraded_emissions = ref [] in
  for i = 0 to 9 do
    let o = Mqdp.Feed.push feed (mk i (float_of_int i) [ i ]) in
    degraded_emissions := List.rev_append (keys o.Mqdp.Feed.emissions) !degraded_emissions;
    Alcotest.(check bool)
      (Printf.sprintf "budget holds after post %d" i)
      true
      (Mqdp.Online.pending_labels (Mqdp.Feed.engine feed) <= 3)
  done;
  let c = Mqdp.Feed.counters feed in
  Alcotest.(check int) "seven labels demoted" 7 c.Mqdp.Feed.degraded_labels;
  Alcotest.(check int) "each demotion emitted its survivor" 7
    (List.length !degraded_emissions);
  Alcotest.(check int) "nothing shed: one post per label" 0 c.Mqdp.Feed.shed;
  let tail = Mqdp.Feed.finish feed in
  Alcotest.(check int) "the three in-budget labels drain" 3 (List.length tail);
  Alcotest.(check int) "no post lost" 10
    (Mqdp.Online.emitted_count (Mqdp.Feed.engine feed))

let test_overload_sheds_covered_pending () =
  (* Three pending posts on one label: demotion emits the latest and sheds
     the two it λ-covers. *)
  let config =
    { Mqdp.Feed.default_config with reorder_window = 0; overload_budget = Some 3 }
  in
  let feed = Mqdp.Feed.create ~config ~lambda:100. (delayed ~tau:50. ()) in
  ignore (Mqdp.Feed.push feed (mk 1 0. [ 0 ]));
  ignore (Mqdp.Feed.push feed (mk 2 1. [ 0 ]));
  ignore (Mqdp.Feed.push feed (mk 3 2. [ 0 ]));
  ignore (Mqdp.Feed.push feed (mk 4 3. [ 1 ]));
  ignore (Mqdp.Feed.push feed (mk 5 4. [ 2 ]));
  let o = Mqdp.Feed.push feed (mk 6 5. [ 3 ]) in
  (match keys o.Mqdp.Feed.emissions with
  | [ (3, _) ] -> ()
  | other ->
    Alcotest.failf "expected the latest pending of label 0, got %d emissions"
      (List.length other));
  let c = Mqdp.Feed.counters feed in
  Alcotest.(check int) "one label demoted" 1 c.Mqdp.Feed.degraded_labels;
  Alcotest.(check int) "two covered posts shed" 2 c.Mqdp.Feed.shed

let test_create_validation () =
  Alcotest.check_raises "negative window"
    (Invalid_argument "Feed.create: negative reorder_window") (fun () ->
      ignore
        (Mqdp.Feed.create
           ~config:{ Mqdp.Feed.default_config with reorder_window = -1 }
           ~lambda:1. Mqdp.Online.Instant));
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Feed.create: overload_budget < 1") (fun () ->
      ignore
        (Mqdp.Feed.create
           ~config:{ Mqdp.Feed.default_config with overload_budget = Some 0 }
           ~lambda:1. Mqdp.Online.Instant))

(* ---------------------------------------------------------------- *)
(* Checkpoint/restore                                               *)

let busy_feed ?(window = false) () =
  (* Mid-stream state with every component populated: staged buffer,
     pending labels, emitted history, a demoted label, and counters. *)
  let config =
    {
      Mqdp.Feed.reorder_window = 4;
      late = Mqdp.Feed.Clamp;
      duplicate = Mqdp.Feed.Drop;
      non_finite = Mqdp.Feed.Drop;
      overload_budget = Some 2;
    }
  in
  let feed = Mqdp.Feed.create ~config ~window ~lambda:6. (delayed ~plus:true ~tau:3. ()) in
  List.iter
    (fun p -> ignore (Mqdp.Feed.push feed p))
    [ mk 1 0. [ 0 ]; mk 2 1. [ 1 ]; mk 3 0.5 [ 0; 2 ]; mk 3 9. [ 2 ]; mk 4 2. [ 3 ];
      mk 5 2.5 [ 1 ]; mk 6 7. [ 2 ]; mk 7 8. [ 0; 3 ]; mk 8 8.5 [ 1 ] ];
  feed

let suffix_posts = [ mk 10 9. [ 0; 1 ]; mk 11 9.5 [ 2 ]; mk 12 20. [ 3 ]; mk 13 26. [ 1 ] ]

let test_checkpoint_roundtrip () =
  let original = busy_feed () in
  let image = Mqdp.Feed.checkpoint original in
  let restored = Mqdp.Feed.restore image in
  (* The serialization is canonical: re-checkpointing the restored state
     reproduces the image byte for byte. *)
  Alcotest.(check string) "canonical image" image (Mqdp.Feed.checkpoint restored);
  Alcotest.(check int) "buffered staged posts survive" (Mqdp.Feed.buffered original)
    (Mqdp.Feed.buffered restored);
  Alcotest.(check (option (float 0.))) "watermark survives"
    (Mqdp.Feed.watermark original) (Mqdp.Feed.watermark restored);
  Alcotest.(check bool) "counters survive" true
    (Mqdp.Feed.counters original = Mqdp.Feed.counters restored);
  Alcotest.(check int) "degraded labels survive"
    (Mqdp.Online.degraded_count (Mqdp.Feed.engine original))
    (Mqdp.Online.degraded_count (Mqdp.Feed.engine restored));
  (* And the restored frontend continues bit-identically. *)
  Alcotest.check emission_keys "identical continuation"
    (run_feed original suffix_posts) (run_feed restored suffix_posts);
  Alcotest.(check bool) "identical final counters" true
    (Mqdp.Feed.counters original = Mqdp.Feed.counters restored)

let test_checkpoint_detects_corruption () =
  let image = Mqdp.Feed.checkpoint (busy_feed ()) in
  let expect_corrupt what s =
    match Mqdp.Feed.restore s with
    | _ -> Alcotest.failf "restored a corrupt checkpoint (%s)" what
    | exception Mqdp.Feed.Corrupt _ -> ()
  in
  expect_corrupt "garbage" "not a checkpoint at all";
  expect_corrupt "empty" "";
  expect_corrupt "truncated" (String.sub image 0 (String.length image - 20));
  expect_corrupt "bad magic" ("X" ^ image);
  let flip i s =
    let b = Bytes.of_string s in
    Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
    Bytes.to_string b
  in
  (* Flip one character somewhere in the body: the checksum must notice. *)
  expect_corrupt "bit flip" (flip (String.length image / 2) image);
  (* A tampered checksum line itself must also fail. *)
  expect_corrupt "tampered checksum" (flip (String.length image - 3) image)

(* A mirrored window travels inside the checkpoint and is restored
   bit-identically: same live content, same solve cover, same ordering
   guard, and the continuation still matches. *)
let test_windowed_checkpoint_roundtrip () =
  let original = busy_feed ~window:true () in
  let image = Mqdp.Feed.checkpoint original in
  let restored = Mqdp.Feed.restore image in
  Alcotest.(check string) "canonical image" image (Mqdp.Feed.checkpoint restored);
  let wo, wr =
    match (Mqdp.Feed.window original, Mqdp.Feed.window restored) with
    | Some a, Some b -> (a, b)
    | _ -> Alcotest.fail "window lost across checkpoint"
  in
  Alcotest.(check int) "window size survives" (Mqdp.Window_index.size wo)
    (Mqdp.Window_index.size wr);
  Alcotest.(check int) "window head survives" (Mqdp.Window_index.expired wo)
    (Mqdp.Window_index.expired wr);
  Alcotest.check sorted_ints "window solves identically"
    (Mqdp.Greedy_sc.solve_window wo) (Mqdp.Greedy_sc.solve_window wr);
  Alcotest.check emission_keys "identical continuation"
    (run_feed original suffix_posts) (run_feed restored suffix_posts)

(* The mirror is an observer: emissions with and without it are the same
   stream. *)
let test_window_is_transparent () =
  let plain = busy_feed () and mirrored = busy_feed ~window:true () in
  Alcotest.check emission_keys "windowed feed emits identically"
    (run_feed plain suffix_posts) (run_feed mirrored suffix_posts)

(* Recompute the body checksum the way the codec does, so a test can
   tamper with the version line while keeping the trailer honest. *)
let fnv64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) prime)
    s;
  !h

let with_version v image =
  match String.index_opt image '\n' with
  | None -> Alcotest.fail "checkpoint has no header line"
  | Some i ->
    let rest = String.sub image (i + 1) (String.length image - i - 1) in
    let body_end = String.rindex (String.trim rest) '\n' in
    let body = Printf.sprintf "mqdp-feed-checkpoint %s\n%s" v (String.sub rest 0 (body_end + 1)) in
    Printf.sprintf "%schecksum %016Lx\n" body (fnv64 body)

let test_version_mismatch_is_typed () =
  let image = Mqdp.Feed.checkpoint (busy_feed ()) in
  (* An intact checkpoint from another format version raises the typed
     error, not Corrupt... *)
  List.iter
    (fun v ->
      match Mqdp.Feed.restore (with_version v image) with
      | _ -> Alcotest.failf "restored a %s checkpoint" v
      | exception Mqdp.Feed.Unsupported_version { found; expected } ->
        Alcotest.(check string) "found version" v found;
        Alcotest.(check int) "expected version" 2 expected
      | exception Mqdp.Feed.Corrupt m ->
        Alcotest.failf "version skew misreported as corruption: %s" m)
    [ "v1"; "v3"; "v999" ];
  (* ...but a version tampered without fixing the checksum is corruption:
     integrity is judged before the format version. *)
  let b = Bytes.of_string image in
  Bytes.set b (String.index image 'v' + 1) '1';
  (match Mqdp.Feed.restore (Bytes.to_string b) with
  | _ -> Alcotest.fail "restored a tampered checkpoint"
  | exception Mqdp.Feed.Corrupt _ -> ()
  | exception Mqdp.Feed.Unsupported_version _ ->
    Alcotest.fail "checksum mismatch misreported as version skew")

let test_checkpoint_file_roundtrip () =
  let original = busy_feed () in
  let path = Filename.temp_file "mqdp_feed" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mqdp.Feed.save_checkpoint ~path original;
      let restored = Mqdp.Feed.load_checkpoint path in
      Alcotest.check emission_keys "file roundtrip continues identically"
        (run_feed original suffix_posts) (run_feed restored suffix_posts))

let test_atomic_save_survives_torn_writes () =
  (* A crash injected mid-write (Util.Fault picks the byte boundaries) must
     never leave a checkpoint that fails checksum on restore: the previous
     checkpoint survives untouched, and the torn bytes only ever land in
     the ignored temp sibling. *)
  let original = busy_feed () in
  let image = Mqdp.Feed.checkpoint original in
  let path = Filename.temp_file "mqdp_feed_atomic" ".ckpt" in
  let torn_temps = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      List.iter Util.Fs.remove_if_exists !torn_temps)
    (fun () ->
      Mqdp.Feed.save_checkpoint ~path original;
      let fault = Util.Fault.create ~seed:11 () in
      let crash_bytes =
        Util.Fault.crash_points fault ~n:(String.length image - 1) ~max_points:8
      in
      List.iter
        (fun written ->
          let temp =
            match Util.Fs.atomic_write ~crash_after:written ~path image with
            | () -> Alcotest.fail "crash_after did not crash"
            | exception Util.Fs.Crashed { written = w; temp; _ } ->
              Alcotest.(check int) "crashed at the requested boundary" written w;
              torn_temps := temp :: !torn_temps;
              temp
          in
          (* The destination is still the previous, fully valid checkpoint. *)
          let restored = Mqdp.Feed.load_checkpoint path in
          Alcotest.check emission_keys "destination survives a torn write"
            (run_feed (Mqdp.Feed.restore image) suffix_posts)
            (run_feed restored suffix_posts);
          (* The torn temp sibling never passes validation. *)
          Alcotest.(check bool) "temp sibling is recognizably temporary" true
            (Util.Fs.is_temp temp);
          let torn = Util.Fs.read temp in
          Alcotest.(check int) "temp holds exactly the torn prefix" written
            (String.length torn);
          match Mqdp.Feed.restore torn with
          | _ -> Alcotest.fail "restored a torn checkpoint prefix"
          | exception Mqdp.Feed.Corrupt _ -> ())
        crash_bytes;
      (* An uninterrupted save over the torn debris repairs everything. *)
      Mqdp.Feed.save_checkpoint ~path original;
      ignore (Mqdp.Feed.load_checkpoint path))

(* The satellite property: crash anywhere (including before the first push
   and after the last), restore from the checkpoint, continue — the emission
   stream is bit-identical to a run that never died, in every mode. *)
let crash_restore_property =
  qtest ~count:60 "crash/restore replay is bit-identical (all modes)"
    (QCheck.pair
       (arb_instance ~max_posts:25 ~max_labels:4 ~span:20. ())
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10_000)))
    (fun (inst, seed) ->
      let rng = Util.Rng.create (seed + 1) in
      (* Disorder the arrival order so the reorder buffer, late drops and
         overload shedding all participate. *)
      let posts = Array.copy (Mqdp.Instance.posts inst) in
      for i = Array.length posts - 1 downto 1 do
        let j = Util.Rng.int rng (i + 1) in
        let tmp = posts.(i) in
        posts.(i) <- posts.(j);
        posts.(j) <- tmp
      done;
      let posts = Array.to_list posts in
      let n = List.length posts in
      let config =
        {
          Mqdp.Feed.default_config with
          Mqdp.Feed.reorder_window = Util.Rng.int rng 8;
          overload_budget =
            (if Util.Rng.float rng 1. < 0.5 then Some (1 + Util.Rng.int rng 3)
             else None);
        }
      in
      let fault = Util.Fault.create ~seed:((7 * seed) + 13) () in
      let crashes = Util.Fault.crash_points fault ~n ~max_points:3 in
      (* Half the runs mirror a window, so crash/restore also exercises
         the window section of the checkpoint. *)
      let window = Util.Rng.float rng 1. < 0.5 in
      List.for_all
        (fun mode ->
          let run crashes =
            let feed = ref (Mqdp.Feed.create ~config ~window ~lambda:2. mode) in
            let crash () = feed := Mqdp.Feed.restore (Mqdp.Feed.checkpoint !feed) in
            let acc = ref [] in
            List.iteri
              (fun i p ->
                if List.mem i crashes then crash ();
                let o = Mqdp.Feed.push !feed p in
                acc := List.rev_append (keys o.Mqdp.Feed.emissions) !acc)
              posts;
            if List.mem n crashes then crash ();
            acc := List.rev_append (keys (Mqdp.Feed.finish !feed)) !acc;
            (List.rev !acc, Mqdp.Feed.counters !feed)
          in
          run [] = run crashes)
        [ delayed ~tau:1. (); delayed ~plus:true ~tau:1. (); Mqdp.Online.Instant ])

let suite =
  [
    Alcotest.test_case "transparent on a sorted stream" `Quick
      test_transparent_on_sorted_stream;
    Alcotest.test_case "reorder window absorbs disorder" `Quick
      test_reorder_window_absorbs_disorder;
    Alcotest.test_case "late policies" `Quick test_late_policies;
    Alcotest.test_case "duplicate policies" `Quick test_duplicate_policies;
    Alcotest.test_case "non-finite policies" `Quick test_non_finite_policies;
    Alcotest.test_case "overload degradation respects budget" `Quick
      test_overload_degradation;
    Alcotest.test_case "overload sheds covered pending" `Quick
      test_overload_sheds_covered_pending;
    Alcotest.test_case "config validation" `Quick test_create_validation;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "windowed checkpoint roundtrip" `Quick
      test_windowed_checkpoint_roundtrip;
    Alcotest.test_case "window mirror is transparent" `Quick test_window_is_transparent;
    Alcotest.test_case "version mismatch raises typed error" `Quick
      test_version_mismatch_is_typed;
    Alcotest.test_case "checkpoint detects corruption" `Quick
      test_checkpoint_detects_corruption;
    Alcotest.test_case "checkpoint file roundtrip" `Quick
      test_checkpoint_file_roundtrip;
    Alcotest.test_case "atomic save survives torn writes" `Quick
      test_atomic_save_survives_torn_writes;
    crash_restore_property;
  ]
