(* The sliding-window coverage geometry. Three layers under test: the
   off-heap Flat containers it stores itself in, the window mechanics
   (push / expire / addressing / checkpoint), and the equivalence
   contract — solving the live window must be bit-identical to compiling
   a fresh Pair_index over the materialized slice, for every random
   interleaving of pushes and expiries, both λ modes, every selection
   strategy, sequential and pooled. *)

open Helpers

let fixed l = Mqdp.Coverage.Fixed l

(* Deterministic, pure per-post λ (the contract requires purity). *)
let variable =
  Mqdp.Coverage.Per_post_label
    (fun p a -> 0.5 +. (0.1 *. float_of_int ((p.Mqdp.Post.id mod 7) + a)))

(* --- Flat containers ------------------------------------------------ *)

let test_flat_ints () =
  let v = Util.Flat.Ints.create () in
  for i = 0 to 99 do
    Util.Flat.Ints.push v (i * 3)
  done;
  Alcotest.(check int) "length" 100 (Util.Flat.Ints.length v);
  Alcotest.(check int) "get" 57 (Util.Flat.Ints.get v 19);
  Util.Flat.Ints.drop_front v 40;
  Alcotest.(check int) "length after drop" 60 (Util.Flat.Ints.length v);
  Alcotest.(check int) "front shifted" 120 (Util.Flat.Ints.get v 0);
  Alcotest.(check int) "back intact" 297 (Util.Flat.Ints.get v 59);
  Util.Flat.Ints.set v 3 (-7);
  Alcotest.(check int) "set" (-7) (Util.Flat.Ints.get v 3);
  Util.Flat.Ints.clear v;
  Util.Flat.Ints.ensure v 8;
  Util.Flat.Ints.fill v 5;
  Alcotest.(check int) "ensure raises length" 8 (Util.Flat.Ints.length v);
  Alcotest.(check int) "fill" 5 (Util.Flat.Ints.get v 7)

let test_flat_floats () =
  let v = Util.Flat.Floats.create () in
  for i = 0 to 49 do
    Util.Flat.Floats.push v (float_of_int i /. 4.)
  done;
  Alcotest.(check (float 0.)) "get" 3.25 (Util.Flat.Floats.get v 13);
  Util.Flat.Floats.drop_front v 13;
  Alcotest.(check (float 0.)) "shifted" 3.25 (Util.Flat.Floats.get v 0);
  Util.Flat.Floats.set v 0 nan;
  Alcotest.(check bool) "nan round-trips" true
    (Float.is_nan (Util.Flat.Floats.get v 0))

let test_flat_flags () =
  let v = Util.Flat.Flags.create () in
  for i = 0 to 99 do
    Util.Flat.Flags.push v (i mod 3 = 0)
  done;
  Alcotest.(check bool) "get" true (Util.Flat.Flags.get v 33);
  Alcotest.(check bool) "get off" false (Util.Flat.Flags.get v 34);
  Util.Flat.Flags.drop_front v 33;
  Alcotest.(check bool) "shifted" true (Util.Flat.Flags.get v 0);
  Util.Flat.Flags.reset v;
  Alcotest.(check bool) "reset" false (Util.Flat.Flags.get v 0)

let test_flat_bits () =
  let b = Util.Flat.Bits.create () in
  (* Straddle the 62-bit word boundary on purpose. *)
  Util.Flat.Bits.reset b 200;
  List.iter (Util.Flat.Bits.set b) [ 0; 61; 62; 63; 123; 124; 199 ];
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "bit %d set" i) true (Util.Flat.Bits.get b i))
    [ 0; 61; 62; 63; 123; 124; 199 ];
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "bit %d clear" i) false (Util.Flat.Bits.get b i))
    [ 1; 60; 64; 122; 125; 198 ];
  Util.Flat.Bits.reset b 200;
  Alcotest.(check bool) "reset clears" false (Util.Flat.Bits.get b 63)

(* --- window mechanics ----------------------------------------------- *)

let w_post ~id ~value labels = post ~id ~value labels

let test_push_expire_addressing () =
  let w = Mqdp.Window_index.create (fixed 1.) in
  for i = 0 to 9 do
    Mqdp.Window_index.push w (w_post ~id:(100 + i) ~value:(float_of_int i) [ 0; i mod 2 ])
  done;
  Alcotest.(check int) "size" 10 (Mqdp.Window_index.size w);
  Alcotest.(check int) "total" 10 (Mqdp.Window_index.total w);
  Alcotest.(check int) "expired" 0 (Mqdp.Window_index.expired w);
  Mqdp.Window_index.expire_before w ~time:3.;
  Alcotest.(check int) "size after expire" 7 (Mqdp.Window_index.size w);
  Alcotest.(check int) "expired" 3 (Mqdp.Window_index.expired w);
  Alcotest.(check int) "total unchanged" 10 (Mqdp.Window_index.total w);
  Alcotest.(check (float 0.)) "window value" 3. (Mqdp.Window_index.value w 0);
  Alcotest.(check int) "window id" 103 (Mqdp.Window_index.id w 0);
  (* find_position returns the arrival number, not the window slot. *)
  Alcotest.(check int) "find_position" 5
    (Mqdp.Window_index.find_position w (w_post ~id:105 ~value:5. [ 0 ]));
  Alcotest.(check int) "find_position expired" (-1)
    (Mqdp.Window_index.find_position w (w_post ~id:101 ~value:1. [ 0 ]));
  (* Out-of-order pushes: push raises, try_push reports. *)
  Alcotest.check_raises "stale push raises"
    (Invalid_argument "Window_index.push: arrivals must be strictly increasing") (fun () ->
      Mqdp.Window_index.push w (w_post ~id:50 ~value:2. [ 0 ]));
  Alcotest.(check bool) "try_push skips stale" false
    (Mqdp.Window_index.try_push w (w_post ~id:50 ~value:2. [ 0 ]));
  Alcotest.(check bool) "try_push accepts fresh" true
    (Mqdp.Window_index.try_push w (w_post ~id:200 ~value:42. [ 1 ]));
  (* The ordering guard survives a fully-expired window. *)
  Mqdp.Window_index.expire_before w ~time:1e9;
  Alcotest.(check int) "empty" 0 (Mqdp.Window_index.size w);
  Alcotest.(check bool) "guard survives emptiness" false
    (Mqdp.Window_index.try_push w (w_post ~id:60 ~value:41. [ 0 ]))

let test_expire_matches_sub () =
  (* expire_before keeps value >= time, exactly Instance.sub ~lo. *)
  let posts = List.init 12 (fun i -> w_post ~id:i ~value:(float_of_int (i / 2)) [ 0 ]) in
  let inst = instance_of posts in
  let w = Mqdp.Window_index.create (fixed 1.) in
  Array.iter (Mqdp.Window_index.push w) (Mqdp.Instance.posts inst);
  Mqdp.Window_index.expire_before w ~time:3.;
  let slice = Mqdp.Instance.sub inst ~lo:3. ~hi:infinity in
  Alcotest.(check int) "sizes agree" (Mqdp.Instance.size slice) (Mqdp.Window_index.size w);
  for i = 0 to Mqdp.Window_index.size w - 1 do
    Alcotest.(check int) "ids agree" (Mqdp.Instance.post slice i).Mqdp.Post.id
      (Mqdp.Window_index.id w i)
  done

let test_emit_reach_disciplines () =
  let w = Mqdp.Window_index.create (fixed 2.) in
  Alcotest.(check (float 0.)) "virgin reach" neg_infinity (Mqdp.Window_index.emit_reach w 3);
  (* note_emission takes the max across the post's labels... *)
  Mqdp.Window_index.note_emission w (w_post ~id:1 ~value:10. [ 3; 4 ]);
  Alcotest.(check (float 0.)) "noted" 12. (Mqdp.Window_index.emit_reach w 3);
  Mqdp.Window_index.note_emission w (w_post ~id:2 ~value:9. [ 3 ]);
  Alcotest.(check (float 0.)) "max kept" 12. (Mqdp.Window_index.emit_reach w 3);
  (* ...while set_emit_reach assigns, so reach can move backwards. *)
  Mqdp.Window_index.set_emit_reach w 3 11.;
  Alcotest.(check (float 0.)) "assigned" 11. (Mqdp.Window_index.emit_reach w 3);
  (* An arrival within its labels' reach is born fully covered. *)
  Mqdp.Window_index.push w (w_post ~id:10 ~value:10.5 [ 3 ]);
  Alcotest.(check bool) "born covered" true (Mqdp.Window_index.fully_covered w 0);
  Mqdp.Window_index.push w (w_post ~id:11 ~value:11.5 [ 3; 4 ]);
  Alcotest.(check bool) "label 4 uncovered" false (Mqdp.Window_index.fully_covered w 1)

(* --- equivalence with a fresh Pair_index ---------------------------- *)

(* Drive a window through an interleaving of pushes and expiries over
   [inst]'s posts, ending with everything pushed and the first [head]
   arrivals expired — the live content equals positions
   [head, size inst) of [inst]. *)
let window_of_slice lambda inst ~head =
  let w = Mqdp.Window_index.create lambda in
  let n = Mqdp.Instance.size inst in
  (* Interleave: push everything, expiring the prefix in random-ish
     chunks along the way so compaction paths run. *)
  let expired = ref 0 in
  for i = 0 to n - 1 do
    Mqdp.Window_index.push w (Mqdp.Instance.post inst i);
    (* Expire a chunk whenever the pushed count crosses a multiple of 3,
       never past [head]. *)
    let want = min head ((i * head) / (max 1 (n - 1))) in
    if want > !expired then begin
      Mqdp.Window_index.expire_posts w (want - !expired);
      expired := want
    end
  done;
  if head > !expired then Mqdp.Window_index.expire_posts w (head - !expired);
  w

let slice_instance inst ~head =
  let n = Mqdp.Instance.size inst in
  Mqdp.Instance.create
    (List.init (n - head) (fun i -> Mqdp.Instance.post inst (head + i)))

let arb_slice =
  QCheck.make
    ~print:(fun (inst, l, head) ->
      Printf.sprintf "lambda=%g head=%d %s" l head (describe_instance inst))
    QCheck.Gen.(
      let* inst = gen_instance ~max_posts:16 ~max_labels:4 () in
      let* l = gen_lambda in
      let* head = int_range 0 (Mqdp.Instance.size inst - 1) in
      return (inst, l, head))

let selections = [ (`Bucket_queue, "bucket"); (`Lazy_heap, "heap"); (`Linear_scan, "linear") ]

let equivalence_law lambda_of (inst, l, head) =
  let lambda = lambda_of l in
  let w = window_of_slice lambda inst ~head in
  let slice = slice_instance inst ~head in
  let index = Mqdp.Pair_index.build slice lambda in
  let reference = Mqdp.Greedy_sc.solve_indexed index in
  let solver = Mqdp.Greedy_sc.window_solver () in
  List.iter
    (fun (selection, name) ->
      let got = Mqdp.Greedy_sc.solve_window ~selection ~solver w in
      if got <> reference then
        QCheck.Test.fail_reportf "windowed %s cover %s <> fresh-index %s on %s" name
          (String.concat "," (List.map string_of_int got))
          (String.concat "," (List.map string_of_int reference))
          (describe_instance slice))
    selections;
  (* And the Solver front-end agrees, including its to_instance fallback. *)
  let via_solver = (Mqdp.Solver.solve_window Mqdp.Solver.Greedy_sc w).Mqdp.Solver.cover in
  if via_solver <> reference then
    QCheck.Test.fail_reportf "Solver.solve_window disagrees on %s" (describe_instance slice);
  check_cover "windowed greedy" slice lambda reference

let equivalence_pooled_law (inst, l, head) =
  let lambda = fixed l in
  let w = window_of_slice lambda inst ~head in
  let slice = slice_instance inst ~head in
  let reference =
    Util.Pool.with_pool ~jobs:4 (fun pool -> Mqdp.Greedy_sc.solve ~pool slice lambda)
  in
  let got = Mqdp.Greedy_sc.solve_window w in
  if got <> reference then
    QCheck.Test.fail_reportf "windowed cover <> 4-domain cover on %s"
      (describe_instance slice);
  true

(* The marked path: persistent marks are both the starting state and the
   place picks are recorded. Pinned three ways — virgin marks agree with
   the pristine solve, a second solve finds nothing left, and emissions
   noted before a push make the arrival born covered. *)
let marked_law (inst, l, head) =
  let lambda = fixed l in
  let w = window_of_slice lambda inst ~head in
  let pristine = Mqdp.Greedy_sc.solve_window w in
  let got = Mqdp.Greedy_sc.solve_window ~marked:true w in
  if got <> pristine then
    QCheck.Test.fail_reportf "virgin marked solve differs from pristine on %s"
      (describe_instance inst);
  let again = Mqdp.Greedy_sc.solve_window ~marked:true w in
  if again <> [] then
    QCheck.Test.fail_reportf "second marked solve returned %s on %s"
      (String.concat "," (List.map string_of_int again))
      (describe_instance inst);
  let w2 = Mqdp.Window_index.create lambda in
  Array.iter
    (fun p ->
      Mqdp.Window_index.note_emission w2 p;
      Mqdp.Window_index.push w2 p)
    (Mqdp.Instance.posts inst);
  let drained = Mqdp.Greedy_sc.solve_window ~marked:true w2 in
  if drained <> [] then
    QCheck.Test.fail_reportf "emission-before-push left %s uncovered on %s"
      (String.concat "," (List.map string_of_int drained))
      (describe_instance inst);
  true

let roundtrip_law (inst, l, head) =
  let lambda = fixed l in
  let w = window_of_slice lambda inst ~head in
  let restored = Mqdp.Window_index.import lambda (Mqdp.Window_index.export w) in
  Alcotest.(check int) "expired preserved" (Mqdp.Window_index.expired w)
    (Mqdp.Window_index.expired restored);
  Alcotest.(check int) "size preserved" (Mqdp.Window_index.size w)
    (Mqdp.Window_index.size restored);
  let a = Mqdp.Greedy_sc.solve_window w in
  let b = Mqdp.Greedy_sc.solve_window restored in
  if a <> b then QCheck.Test.fail_reportf "restored cover differs on %s" (describe_instance inst);
  (* The guard survives: re-offering the first arrival is rejected by the
     restored window just as the original would. *)
  let stale = Mqdp.Instance.post inst 0 in
  Alcotest.(check bool) "guard restored" false (Mqdp.Window_index.try_push restored stale);
  true

let suite =
  [
    Alcotest.test_case "flat ints" `Quick test_flat_ints;
    Alcotest.test_case "flat floats" `Quick test_flat_floats;
    Alcotest.test_case "flat flags" `Quick test_flat_flags;
    Alcotest.test_case "flat bits" `Quick test_flat_bits;
    Alcotest.test_case "push/expire/addressing" `Quick test_push_expire_addressing;
    Alcotest.test_case "expire_before matches Instance.sub" `Quick test_expire_matches_sub;
    Alcotest.test_case "emission reach disciplines" `Quick test_emit_reach_disciplines;
    qtest ~count:300 "window solve ≡ fresh index (fixed λ)" arb_slice
      (equivalence_law (fun l -> fixed l));
    qtest ~count:300 "window solve ≡ fresh index (per-post λ)" arb_slice
      (equivalence_law (fun _ -> variable));
    qtest ~count:40 "window solve ≡ 4-domain solve" arb_slice equivalence_pooled_law;
    qtest ~count:150 "marked solve drains after full emission" arb_slice marked_law;
    qtest ~count:150 "export/import round-trip" arb_slice roundtrip_law;
  ]
