(* The incremental push-based engine. Its core behaviour is already pinned
   through the Stream_scan adapter; these tests cover the incremental API
   surface itself. *)

open Helpers

let mk id value labels = post ~id ~value labels

let delayed ?(plus = false) ~lambda ~tau () =
  Mqdp.Online.create ~lambda (Mqdp.Online.Delayed { tau; plus })

let test_emission_timing () =
  let engine = delayed ~lambda:10. ~tau:2. () in
  (* First post pending; deadline = min(0+2, 0+10) = 2. *)
  Alcotest.(check int) "no emission on arrival" 0
    (List.length (Mqdp.Online.push engine (mk 1 0. [ 0 ])));
  (* Next arrival at t=5 > 2: the deadline fired in between. *)
  let due = Mqdp.Online.push engine (mk 2 5. [ 0 ]) in
  (match due with
  | [ e ] ->
    Alcotest.(check int) "post 1 emitted" 1 e.Mqdp.Online.post.Mqdp.Post.id;
    Alcotest.(check (float 1e-9)) "at its deadline" 2. e.Mqdp.Online.emit_time
  | other -> Alcotest.failf "expected 1 emission, got %d" (List.length other));
  (* Post 2 is covered by post 1 (distance 5 <= lambda), nothing pending. *)
  Alcotest.(check (list unit)) "flush empty" []
    (List.map (fun _ -> ()) (Mqdp.Online.finish engine));
  Alcotest.(check int) "one distinct post emitted" 1 (Mqdp.Online.emitted_count engine)

let test_lambda_deadline_dominates () =
  (* tau large: the oldest-pending + lambda bound forces emission. *)
  let engine = delayed ~lambda:3. ~tau:100. () in
  ignore (Mqdp.Online.push engine (mk 1 0. [ 0 ]));
  ignore (Mqdp.Online.push engine (mk 2 2. [ 0 ]));
  let due = Mqdp.Online.push engine (mk 3 50. [ 0 ]) in
  (match due with
  | [ e ] ->
    Alcotest.(check int) "latest pending emitted" 2 e.Mqdp.Online.post.Mqdp.Post.id;
    Alcotest.(check (float 1e-9)) "at t_oldest + lambda" 3. e.Mqdp.Online.emit_time
  | other -> Alcotest.failf "expected 1 emission, got %d" (List.length other));
  ignore (Mqdp.Online.finish engine)

let test_out_of_order_rejected () =
  let engine = delayed ~lambda:1. ~tau:1. () in
  ignore (Mqdp.Online.push engine (mk 1 5. [ 0 ]));
  match Mqdp.Online.push engine (mk 2 4. [ 0 ]) with
  | _ -> Alcotest.fail "accepted out-of-order arrival"
  | exception Invalid_argument _ -> ()

let test_create_validation () =
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "Online.create: negative lambda") (fun () ->
      ignore (Mqdp.Online.create ~lambda:(-1.) Mqdp.Online.Instant));
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Online.create: negative tau") (fun () ->
      ignore
        (Mqdp.Online.create ~lambda:1.
           (Mqdp.Online.Delayed { tau = -1.; plus = false })))

let test_instant_mode () =
  let engine = Mqdp.Online.create ~lambda:10. Mqdp.Online.Instant in
  let e1 = Mqdp.Online.push engine (mk 1 0. [ 0; 1 ]) in
  Alcotest.(check int) "first post emitted immediately" 1 (List.length e1);
  Alcotest.(check int) "covered arrival silent" 0
    (List.length (Mqdp.Online.push engine (mk 2 5. [ 0 ])));
  (* Label 2 is new: must emit even though label 0 is covered. *)
  Alcotest.(check int) "new label forces emission" 1
    (List.length (Mqdp.Online.push engine (mk 3 6. [ 0; 2 ])));
  Alcotest.(check int) "instant finish is empty" 0
    (List.length (Mqdp.Online.finish engine));
  Alcotest.(check int) "distinct emissions" 2 (Mqdp.Online.emitted_count engine)

let test_last_arrival () =
  let engine = delayed ~lambda:1. ~tau:1. () in
  Alcotest.(check (option (float 0.))) "initially none" None
    (Mqdp.Online.last_arrival engine);
  ignore (Mqdp.Online.push engine (mk 1 7. [ 0 ]));
  Alcotest.(check (option (float 0.))) "tracks pushes" (Some 7.)
    (Mqdp.Online.last_arrival engine)

let test_arrival_at_deadline_boundary () =
  (* Post 2 arrives exactly at t_oldest + lambda. The deadline must NOT
     fire before the arrival is processed: post 2 covers the pending pair,
     so it — not post 1 — is the emission, at the (equal) deadline. *)
  let engine = delayed ~lambda:10. ~tau:100. () in
  Alcotest.(check int) "post 1 goes pending" 0
    (List.length (Mqdp.Online.push engine (mk 1 0. [ 0 ])));
  Alcotest.(check int) "no emission on a boundary arrival" 0
    (List.length (Mqdp.Online.push engine (mk 2 10. [ 0 ])));
  match Mqdp.Online.finish engine with
  | [ e ] ->
    Alcotest.(check int) "the arriving post is emitted" 2
      e.Mqdp.Online.post.Mqdp.Post.id;
    Alcotest.(check (float 1e-9)) "at the boundary deadline" 10.
      e.Mqdp.Online.emit_time
  | other -> Alcotest.failf "expected 1 emission, got %d" (List.length other)

let test_deadline_queue_bounded () =
  (* lambda-dominated regime: every arrival extends pending but recomputes
     the same t_oldest + lambda deadline, which must not be re-pushed.
     Before the dedup fix the queue grew to ~50 entries per window. *)
  let engine = delayed ~lambda:50. ~tau:1000. () in
  let max_len = ref 0 in
  for i = 0 to 499 do
    ignore (Mqdp.Online.push engine (mk i (float_of_int i) [ 0 ]));
    max_len := max !max_len (Mqdp.Online.deadline_queue_length engine)
  done;
  ignore (Mqdp.Online.finish engine);
  Alcotest.(check bool)
    (Printf.sprintf "queue stays O(labels), peaked at %d" !max_len)
    true (!max_len <= 4);
  Alcotest.(check int) "drained after finish" 0
    (Mqdp.Online.deadline_queue_length engine)

let test_deadline_queue_compaction () =
  (* tau-dominated multi-label stream in plus mode: deadlines churn on
     every arrival and every credit, leaving stale entries behind. The
     compaction invariant caps the queue at 2 * labels + slack. *)
  let labels = 10 in
  let engine = delayed ~plus:true ~lambda:5. ~tau:0.9 () in
  let bound = (2 * labels) + 8 in
  for i = 0 to 1999 do
    let ls = if i mod 17 = 0 then List.init labels Fun.id else [ i mod labels ] in
    ignore (Mqdp.Online.push engine (mk i (0.45 *. float_of_int i) ls));
    let len = Mqdp.Online.deadline_queue_length engine in
    if len > bound then
      Alcotest.failf "queue length %d exceeds bound %d at arrival %d" len bound i
  done;
  ignore (Mqdp.Online.finish engine)

let test_stream_continues_after_finish () =
  let engine = delayed ~lambda:2. ~tau:1. () in
  ignore (Mqdp.Online.push engine (mk 1 0. [ 0 ]));
  Alcotest.(check int) "finish drains" 1 (List.length (Mqdp.Online.finish engine));
  (* The service keeps running: a far-away post goes pending again. *)
  Alcotest.(check int) "accepts more pushes" 0
    (List.length (Mqdp.Online.push engine (mk 2 100. [ 0 ])));
  Alcotest.(check int) "and drains again" 1 (List.length (Mqdp.Online.finish engine))

(* Incremental push/finish must reproduce the batch adapter exactly. *)
let online_equals_batch =
  qtest ~count:150 "push/finish = Stream_scan.solve on the same posts"
    (QCheck.triple
       (arb_instance ~max_posts:30 ~max_labels:4 ~span:25. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, lambda, tau) ->
      List.for_all
        (fun plus ->
          let engine =
            Mqdp.Online.create ~lambda (Mqdp.Online.Delayed { tau; plus })
          in
          let incremental = ref [] in
          for i = 0 to Mqdp.Instance.size inst - 1 do
            incremental :=
              List.rev_append (Mqdp.Online.push engine (Mqdp.Instance.post inst i))
                !incremental
          done;
          incremental := List.rev_append (Mqdp.Online.finish engine) !incremental;
          let batch =
            Mqdp.Stream_scan.solve ~plus ~tau inst (Mqdp.Coverage.Fixed lambda)
          in
          let incremental_ids =
            List.rev_map (fun e -> e.Mqdp.Online.post.Mqdp.Post.id) !incremental
            |> List.sort_uniq Int.compare
          in
          let batch_ids =
            List.map
              (fun pos -> (Mqdp.Instance.post inst pos).Mqdp.Post.id)
              batch.Mqdp.Stream.cover
          in
          incremental_ids = List.sort Int.compare batch_ids
          && Mqdp.Online.emitted_count engine = List.length batch_ids)
        [ false; true ])

(* The mirrored Window_index is a pure observer: an engine with a window
   attached must emit the bit-identical stream (ids and IEEE emit times)
   of one without, in every mode. This is the transparency half of the
   Online refactor; the geometry half (the window's content matching a
   fresh index) lives in test_window_index. *)
let windowed_mirror_transparent =
  qtest ~count:150 "window mirror never changes emissions"
    (QCheck.triple
       (arb_instance ~max_posts:30 ~max_labels:4 ~span:25. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, lambda, tau) ->
      List.for_all
        (fun mode ->
          let run mirrored =
            let window =
              if mirrored then Some (Mqdp.Window_index.create (Mqdp.Coverage.Fixed lambda))
              else None
            in
            let engine = Mqdp.Online.create ?window ~lambda mode in
            let acc = ref [] in
            for i = 0 to Mqdp.Instance.size inst - 1 do
              acc :=
                List.rev_append (Mqdp.Online.push engine (Mqdp.Instance.post inst i))
                  !acc
            done;
            acc := List.rev_append (Mqdp.Online.finish engine) !acc;
            List.rev_map
              (fun e ->
                (e.Mqdp.Online.post.Mqdp.Post.id,
                 Int64.bits_of_float e.Mqdp.Online.emit_time))
              !acc
          in
          run false = run true)
        [
          Mqdp.Online.Delayed { tau; plus = false };
          Mqdp.Online.Delayed { tau; plus = true };
          Mqdp.Online.Instant;
        ])

let emit_times_monotone_per_push =
  qtest ~count:150 "each push returns emissions in emit-time order"
    (arb_instance ~max_posts:25 ~max_labels:3 ~span:20. ())
    (fun inst ->
      let engine =
        Mqdp.Online.create ~lambda:2. (Mqdp.Online.Delayed { tau = 1.; plus = true })
      in
      let sorted es =
        let times = List.map (fun e -> e.Mqdp.Online.emit_time) es in
        List.sort Float.compare times = times
      in
      let ok = ref true in
      for i = 0 to Mqdp.Instance.size inst - 1 do
        if not (sorted (Mqdp.Online.push engine (Mqdp.Instance.post inst i))) then
          ok := false
      done;
      !ok && sorted (Mqdp.Online.finish engine))

(* A post may serve several labels, but never the same label twice: its
   emission count is bounded by its label count, and by 1 in plus mode
   (the first emission credits every label it carries). *)
let at_most_once_per_label_window =
  qtest ~count:150 "never emits a post more than once per label window"
    (QCheck.triple
       (arb_instance ~max_posts:30 ~max_labels:4 ~span:25. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, lambda, tau) ->
      List.for_all
        (fun plus ->
          let engine =
            Mqdp.Online.create ~lambda (Mqdp.Online.Delayed { tau; plus })
          in
          let emissions = ref [] in
          for i = 0 to Mqdp.Instance.size inst - 1 do
            emissions :=
              List.rev_append (Mqdp.Online.push engine (Mqdp.Instance.post inst i))
                !emissions
          done;
          emissions := List.rev_append (Mqdp.Online.finish engine) !emissions;
          let count_of id =
            List.length
              (List.filter (fun e -> e.Mqdp.Online.post.Mqdp.Post.id = id) !emissions)
          in
          List.for_all
            (fun e ->
              let p = e.Mqdp.Online.post in
              let limit =
                if plus then 1 else Mqdp.Label_set.cardinal p.Mqdp.Post.labels
              in
              count_of p.Mqdp.Post.id <= limit)
            !emissions)
        [ false; true ])

let test_push_exception_safety () =
  (* A rejected out-of-order push must leave the engine exactly as it was:
     replaying the same suffix on a clean engine yields the same emissions. *)
  let feed engine posts =
    List.concat_map (fun p -> Mqdp.Online.push engine p) posts
    @ Mqdp.Online.finish engine
  in
  let prefix = [ mk 1 0. [ 0; 1 ]; mk 2 3. [ 1 ]; mk 3 5. [ 0; 2 ] ] in
  let suffix = [ mk 5 6. [ 2 ]; mk 6 9. [ 0; 1; 2 ]; mk 7 30. [ 1 ] ] in
  List.iter
    (fun mode ->
      let damaged = Mqdp.Online.create ~lambda:4. mode in
      let witness = Mqdp.Online.create ~lambda:4. mode in
      List.iter
        (fun p ->
          Alcotest.(check (list (pair int (float 1e-12))))
            "identical while healthy"
            (List.map
               (fun e -> (e.Mqdp.Online.post.Mqdp.Post.id, e.Mqdp.Online.emit_time))
               (Mqdp.Online.push witness p))
            (List.map
               (fun e -> (e.Mqdp.Online.post.Mqdp.Post.id, e.Mqdp.Online.emit_time))
               (Mqdp.Online.push damaged p)))
        prefix;
      (match Mqdp.Online.push damaged (mk 4 4.9 [ 0; 1 ]) with
      | _ -> Alcotest.fail "accepted out-of-order arrival"
      | exception Invalid_argument _ -> ());
      Alcotest.(check (option (float 0.))) "last arrival untouched" (Some 5.)
        (Mqdp.Online.last_arrival damaged);
      let a = feed damaged suffix and b = feed witness suffix in
      Alcotest.(check (list (pair int (float 1e-12))))
        "suffix behaves as if the bad push never happened"
        (List.map (fun e -> (e.Mqdp.Online.post.Mqdp.Post.id, e.Mqdp.Online.emit_time)) b)
        (List.map (fun e -> (e.Mqdp.Online.post.Mqdp.Post.id, e.Mqdp.Online.emit_time)) a);
      Alcotest.(check int) "emitted_count agrees" (Mqdp.Online.emitted_count witness)
        (Mqdp.Online.emitted_count damaged))
    [ Mqdp.Online.Delayed { tau = 2.; plus = false };
      Mqdp.Online.Delayed { tau = 2.; plus = true }; Mqdp.Online.Instant ]

let test_degrade_earliest () =
  let engine = delayed ~lambda:100. ~tau:50. () in
  (* Three posts pending on label 0, one on label 7; label 0 holds the
     earliest deadline (t_latest + tau = 2 + 50). *)
  ignore (Mqdp.Online.push engine (mk 1 0. [ 0 ]));
  ignore (Mqdp.Online.push engine (mk 2 1. [ 0 ]));
  ignore (Mqdp.Online.push engine (mk 3 2. [ 0 ]));
  ignore (Mqdp.Online.push engine (mk 4 3. [ 7 ]));
  Alcotest.(check int) "two live labels" 2 (Mqdp.Online.pending_labels engine);
  (match Mqdp.Online.degrade_earliest engine ~now:3. with
  | Some (label, shed, [ e ]) ->
    Alcotest.(check int) "earliest-deadline label demoted" 0 label;
    Alcotest.(check int) "older pending shed, covered" 2 shed;
    Alcotest.(check int) "latest pending emitted" 3 e.Mqdp.Online.post.Mqdp.Post.id;
    Alcotest.(check (float 1e-9)) "emitted now, not at the future deadline" 3.
      e.Mqdp.Online.emit_time
  | Some (_, _, es) -> Alcotest.failf "expected 1 emission, got %d" (List.length es)
  | None -> Alcotest.fail "nothing degraded");
  Alcotest.(check bool) "demotion is sticky" true (Mqdp.Online.is_degraded engine 0);
  Alcotest.(check int) "one label demoted" 1 (Mqdp.Online.degraded_count engine);
  Alcotest.(check int) "label 7 still pending" 1 (Mqdp.Online.pending_labels engine);
  (* A later uncovered arrival on the demoted label is emitted instantly. *)
  (match Mqdp.Online.push engine (mk 5 300. [ 0 ]) with
  | emissions ->
    Alcotest.(check (list int)) "label 7 drains, then instant emission" [ 4; 5 ]
      (List.map (fun e -> e.Mqdp.Online.post.Mqdp.Post.id) emissions));
  (* ... but a covered one stays silent. *)
  Alcotest.(check int) "covered arrival on demoted label is silent" 0
    (List.length (Mqdp.Online.push engine (mk 6 301. [ 0 ])));
  ignore (Mqdp.Online.finish engine);
  Alcotest.(check (option unit)) "nothing left to degrade" None
    (Option.map (fun _ -> ()) (Mqdp.Online.degrade_earliest engine ~now:301.))

let test_export_import_continuation () =
  (* Snapshot mid-stream; the restored engine must continue bit-identically. *)
  let posts =
    [ mk 1 0. [ 0; 1 ]; mk 2 0.5 [ 1 ]; mk 3 1.2 [ 2 ]; mk 4 2.0 [ 0; 2 ];
      mk 5 2.1 [ 1; 3 ]; mk 6 4.0 [ 3 ]; mk 7 9.0 [ 0; 1; 2; 3 ] ]
  in
  let keys es =
    List.map
      (fun e ->
        (e.Mqdp.Online.post.Mqdp.Post.id, Int64.bits_of_float e.Mqdp.Online.emit_time))
      es
  in
  List.iter
    (fun mode ->
      List.iter
        (fun cut ->
          let straight = Mqdp.Online.create ~lambda:1.5 mode in
          let resumed = Mqdp.Online.create ~lambda:1.5 mode in
          let take k = List.filteri (fun i _ -> i < k) posts in
          let drop k = List.filteri (fun i _ -> i >= k) posts in
          let run engine ps =
            List.concat_map (fun p -> keys (Mqdp.Online.push engine p)) ps
          in
          let head = run straight (take cut) in
          let head' = run resumed (take cut) in
          let resumed = Mqdp.Online.import (Mqdp.Online.export resumed) in
          let tail = run straight (drop cut) @ keys (Mqdp.Online.finish straight) in
          let tail' = run resumed (drop cut) @ keys (Mqdp.Online.finish resumed) in
          Alcotest.(check (list (pair int int64)))
            (Printf.sprintf "cut %d: identical emissions" cut)
            (head @ tail) (head' @ tail');
          Alcotest.(check int) "emitted count survives"
            (Mqdp.Online.emitted_count straight)
            (Mqdp.Online.emitted_count resumed))
        [ 0; 2; 4; 7 ])
    [ Mqdp.Online.Delayed { tau = 0.8; plus = false };
      Mqdp.Online.Delayed { tau = 0.8; plus = true }; Mqdp.Online.Instant ]

let test_import_rejects_invalid () =
  let engine = delayed ~lambda:2. ~tau:1. () in
  ignore (Mqdp.Online.push engine (mk 1 0. [ 0 ]));
  let snap = Mqdp.Online.export engine in
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "Online.create: negative lambda") (fun () ->
      ignore (Mqdp.Online.import { snap with Mqdp.Online.snap_lambda = -1. }));
  let backwards =
    {
      snap with
      Mqdp.Online.snap_labels =
        [
          {
            Mqdp.Online.snap_label = 0;
            snap_pending = [ mk 1 0. [ 0 ]; mk 2 1. [ 0 ] ];
            snap_last_out = None;
          };
        ];
    }
  in
  (match Mqdp.Online.import backwards with
  | _ -> Alcotest.fail "accepted oldest-first pending list"
  | exception Invalid_argument _ -> ());
  let future =
    {
      snap with
      Mqdp.Online.snap_labels =
        [
          {
            Mqdp.Online.snap_label = 0;
            snap_pending = [ mk 9 99. [ 0 ] ];
            snap_last_out = None;
          };
        ];
    }
  in
  match Mqdp.Online.import future with
  | _ -> Alcotest.fail "accepted pending newer than last arrival"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "emission timing" `Quick test_emission_timing;
    Alcotest.test_case "lambda deadline dominates" `Quick test_lambda_deadline_dominates;
    Alcotest.test_case "out-of-order rejected" `Quick test_out_of_order_rejected;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "instant mode" `Quick test_instant_mode;
    Alcotest.test_case "last arrival" `Quick test_last_arrival;
    Alcotest.test_case "arrival at deadline boundary" `Quick
      test_arrival_at_deadline_boundary;
    Alcotest.test_case "deadline queue bounded" `Quick test_deadline_queue_bounded;
    Alcotest.test_case "deadline queue compaction" `Quick
      test_deadline_queue_compaction;
    Alcotest.test_case "stream continues after finish" `Quick
      test_stream_continues_after_finish;
    Alcotest.test_case "push exception safety" `Quick test_push_exception_safety;
    Alcotest.test_case "degrade earliest" `Quick test_degrade_earliest;
    Alcotest.test_case "export/import continuation" `Quick
      test_export_import_continuation;
    Alcotest.test_case "import rejects invalid snapshots" `Quick
      test_import_rejects_invalid;
    online_equals_batch;
    windowed_mirror_transparent;
    emit_times_monotone_per_push;
    at_most_once_per_label_window;
  ]
