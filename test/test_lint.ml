(* Source lints for the hot path. Polymorphic [Stdlib.compare] on the solve
   and bench paths is both slow (megamorphic dispatch per comparison) and a
   latent correctness hazard — it ranks blocks by size before contents, which
   silently disagrees with the typed comparators (see Label_set.compare).
   The sweep that removed it is enforced here so it cannot creep back: the
   trees under lib/ and bench/ must contain no occurrence of the token. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec ml_sources dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_sources path
         else if Filename.check_suffix entry ".ml" then [ path ]
         else [])

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let check_tree_free_of ~needle dir =
  let sources = ml_sources dir in
  Alcotest.(check bool)
    (Printf.sprintf "%s has .ml sources to lint" dir)
    true
    (List.length sources > 0);
  List.iter
    (fun path ->
      if contains ~needle (read_file path) then
        Alcotest.failf "%s occurs in %s — use a typed comparator" needle path)
    sources

(* dune runs the test binary from _build/default/test; the (deps
   (source_tree ...)) clauses in test/dune stage the sources next to it. *)
let test_no_polymorphic_compare () =
  List.iter
    (check_tree_free_of ~needle:"Stdlib.compare")
    [ Filename.concat ".." "lib"; Filename.concat ".." "bench" ]

(* The off-heap window path is the steady-state hot loop of every
   streaming solver: one boxed option per push or per solve round would
   re-introduce exactly the GC pressure the Flat/Window_index layer
   exists to remove. Keep those two files option-free — sentinel values
   (-1 positions, neg_infinity reaches) carry the absent cases. *)
let window_path_sources =
  [
    Filename.concat ".." (Filename.concat "lib" (Filename.concat "util" "flat.ml"));
    Filename.concat ".." (Filename.concat "lib" (Filename.concat "mqdp" "window_index.ml"));
  ]

let test_window_path_option_free () =
  List.iter
    (fun path ->
      let src = read_file path in
      Alcotest.(check bool)
        (Printf.sprintf "%s is staged for linting" path)
        true
        (String.length src > 0);
      List.iter
        (fun needle ->
          if contains ~needle src then
            Alcotest.failf "%s occurs in %s — use a sentinel, not a boxed option" needle
              path)
        [ "Option."; "Some "; "None" ])
    window_path_sources

let suite =
  [
    Alcotest.test_case "no Stdlib.compare under lib/ and bench/" `Quick
      test_no_polymorphic_compare;
    Alcotest.test_case "window path stays option-free" `Quick
      test_window_path_option_free;
  ]
