(* Instance construction, posting lists, overlap statistics. *)

open Helpers

let test_sorting () =
  let inst = instance_of [ post ~id:1 ~value:5. [ 0 ]; post ~id:2 ~value:1. [ 0 ] ] in
  Alcotest.(check int) "size" 2 (Mqdp.Instance.size inst);
  Alcotest.(check (float 0.)) "first value" 1. (Mqdp.Instance.value inst 0);
  Alcotest.(check int) "first id" 2 (Mqdp.Instance.post inst 0).Mqdp.Post.id

let test_unlabeled_dropped () =
  let inst = instance_of [ post ~id:1 ~value:0. []; post ~id:2 ~value:1. [ 0 ] ] in
  Alcotest.(check int) "only labeled kept" 1 (Mqdp.Instance.size inst)

let test_duplicate_ids_rejected () =
  Alcotest.check_raises "dup ids"
    (Invalid_argument "Instance.create: duplicate post id 1") (fun () ->
      ignore (instance_of [ post ~id:1 ~value:0. [ 0 ]; post ~id:1 ~value:1. [ 0 ] ]))

let test_label_posts () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0; 2 ]; post ~id:2 ~value:1. [ 0 ];
        post ~id:3 ~value:2. [ 2 ] ]
  in
  Alcotest.(check (list int)) "LP(0)" [ 0; 1 ]
    (Array.to_list (Mqdp.Instance.label_posts inst 0));
  Alcotest.(check (list int)) "LP(2)" [ 0; 2 ]
    (Array.to_list (Mqdp.Instance.label_posts inst 2));
  Alcotest.(check (list int)) "LP(1) empty" []
    (Array.to_list (Mqdp.Instance.label_posts inst 1));
  Alcotest.(check (list int)) "LP(99) empty" []
    (Array.to_list (Mqdp.Instance.label_posts inst 99));
  Alcotest.(check (list int)) "universe skips unused" [ 0; 2 ]
    (Mqdp.Instance.label_universe inst);
  Alcotest.(check int) "num_labels" 2 (Mqdp.Instance.num_labels inst)

let test_overlap_stats () =
  let inst =
    instance_of [ post ~id:1 ~value:0. [ 0; 1; 2 ]; post ~id:2 ~value:1. [ 0 ] ]
  in
  Alcotest.(check (float 1e-9)) "overlap" 2. (Mqdp.Instance.overlap_rate inst);
  Alcotest.(check int) "s" 3 (Mqdp.Instance.max_labels_per_post inst);
  Alcotest.(check int) "pairs" 4 (Mqdp.Instance.total_pairs inst)

let test_posts_in_range () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:5. [ 0 ];
        post ~id:3 ~value:10. [ 0 ] ]
  in
  Alcotest.(check (option (pair int int))) "middle" (Some (1, 1))
    (Mqdp.Instance.posts_in_range inst 0 ~lo:2. ~hi:8.);
  Alcotest.(check (option (pair int int))) "all" (Some (0, 2))
    (Mqdp.Instance.posts_in_range inst 0 ~lo:(-1.) ~hi:11.);
  Alcotest.(check (option (pair int int))) "none" None
    (Mqdp.Instance.posts_in_range inst 0 ~lo:6. ~hi:8.);
  Alcotest.(check (option (pair int int))) "inclusive bounds" (Some (0, 1))
    (Mqdp.Instance.posts_in_range inst 0 ~lo:0. ~hi:5.)

let test_sub_and_span () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:5. [ 1 ];
        post ~id:3 ~value:10. [ 0 ] ]
  in
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "span" (Some (0., 10.))
    (Mqdp.Instance.span inst);
  let sub = Mqdp.Instance.sub inst ~lo:1. ~hi:9. in
  Alcotest.(check int) "sub size" 1 (Mqdp.Instance.size sub);
  Alcotest.(check int) "sub id" 2 (Mqdp.Instance.post sub 0).Mqdp.Post.id

let posts_sorted_property =
  qtest "posts always sorted by value" (arb_instance ()) (fun inst ->
      Util.Array_util.is_sorted ~cmp:Mqdp.Post.compare_by_value
        (Mqdp.Instance.posts inst))

let lp_consistency =
  qtest "LP(a) lists exactly the posts carrying a" (arb_instance ()) (fun inst ->
      List.for_all
        (fun a ->
          let lp = Array.to_list (Mqdp.Instance.label_posts inst a) in
          let expected =
            List.filter
              (fun i -> Mqdp.Label_set.mem a (Mqdp.Instance.labels inst i))
              (List.init (Mqdp.Instance.size inst) Fun.id)
          in
          lp = expected)
        (Mqdp.Instance.label_universe inst))

(* [sub] slices the already-sorted array; it must be indistinguishable from
   filtering the posts and building a fresh instance. *)
let sub_equals_rebuild =
  qtest "sub = filter posts and create" (arb_instance ~span:10. ())
    (fun inst ->
      List.for_all
        (fun (lo, hi) ->
          let sliced = Mqdp.Instance.sub inst ~lo ~hi in
          let rebuilt =
            instance_of
              (Mqdp.Instance.posts inst
              |> Array.to_list
              |> List.filter (fun p ->
                     p.Mqdp.Post.value >= lo && p.Mqdp.Post.value <= hi))
          in
          Mqdp.Instance.posts sliced = Mqdp.Instance.posts rebuilt
          && Mqdp.Instance.label_universe sliced
             = Mqdp.Instance.label_universe rebuilt
          && List.for_all
               (fun a ->
                 Mqdp.Instance.label_posts sliced a
                 = Mqdp.Instance.label_posts rebuilt a)
               (Mqdp.Instance.label_universe rebuilt)
          && Mqdp.Instance.total_pairs sliced = Mqdp.Instance.total_pairs rebuilt
          && Mqdp.Instance.max_label sliced = Mqdp.Instance.max_label rebuilt)
        [ (2., 8.); (0., 10.); (4., 4.); (8., 2.); (-5., 20.) ])

let max_label_matches_universe =
  qtest "max_label = last of label universe" (arb_instance ()) (fun inst ->
      Mqdp.Instance.max_label inst
      = List.fold_left max (-1) (Mqdp.Instance.label_universe inst))

let pairs_total =
  qtest "total_pairs = sum of |LP(a)|" (arb_instance ()) (fun inst ->
      Mqdp.Instance.total_pairs inst
      = List.fold_left
          (fun acc a -> acc + Array.length (Mqdp.Instance.label_posts inst a))
          0
          (Mqdp.Instance.label_universe inst))

let suite =
  [
    Alcotest.test_case "sorting" `Quick test_sorting;
    Alcotest.test_case "unlabeled posts dropped" `Quick test_unlabeled_dropped;
    Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_ids_rejected;
    Alcotest.test_case "label posting lists" `Quick test_label_posts;
    Alcotest.test_case "overlap statistics" `Quick test_overlap_stats;
    Alcotest.test_case "posts_in_range" `Quick test_posts_in_range;
    Alcotest.test_case "sub & span" `Quick test_sub_and_span;
    posts_sorted_property;
    lp_consistency;
    sub_equals_rebuild;
    max_label_matches_universe;
    pairs_total;
  ]
