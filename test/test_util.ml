(* Util substrate: heap, stats, binary search, RNG distribution sanity. *)

let test_heap_basic () =
  let h = Util.Heap.create Int.compare in
  Alcotest.(check bool) "empty" true (Util.Heap.is_empty h);
  List.iter (Util.Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Util.Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Util.Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 3; 4; 5 ] (Util.Heap.drain h);
  Alcotest.(check (option int)) "pop empty" None (Util.Heap.pop h)

let test_heap_of_list () =
  let h = Util.Heap.of_list Int.compare [ 9; 2; 7; 2; 0 ] in
  Alcotest.(check (list int)) "heapify + drain" [ 0; 2; 2; 7; 9 ] (Util.Heap.drain h)

let test_heap_max () =
  let h = Util.Heap.of_list (fun a b -> Int.compare b a) [ 1; 5; 3 ] in
  Alcotest.(check (option int)) "max-heap peek" (Some 5) (Util.Heap.peek h)

let heap_sort_is_sort =
  Helpers.qtest "heap drain = List.sort"
    QCheck.(list int)
    (fun xs ->
      Util.Heap.drain (Util.Heap.of_list Int.compare xs) = List.sort Int.compare xs)

let heap_push_pop =
  Helpers.qtest "pushes then drain = sort"
    QCheck.(list small_int)
    (fun xs ->
      let h = Util.Heap.create Int.compare in
      List.iter (Util.Heap.push h) xs;
      Util.Heap.drain h = List.sort Int.compare xs)

let test_running_stats () =
  let r = Util.Stats.Running.create () in
  List.iter (Util.Stats.Running.add r) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Util.Stats.Running.count r);
  Alcotest.(check (float 1e-9)) "mean" 5. (Util.Stats.Running.mean r);
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Util.Stats.Running.variance r);
  Alcotest.(check (float 1e-9)) "min" 2. (Util.Stats.Running.min r);
  Alcotest.(check (float 1e-9)) "max" 9. (Util.Stats.Running.max r);
  Alcotest.(check (float 1e-9)) "total" 40. (Util.Stats.Running.total r)

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "median" 2.5 (Util.Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1. (Util.Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p100" 4. (Util.Stats.percentile 100. xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Util.Stats.percentile 50. [||]))

let test_histogram () =
  let counts = Util.Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [| 0.5; 1.5; 1.7; 3.9; -1.; 9. |] in
  Alcotest.(check (array int)) "bins" [| 2; 2; 0; 2 |] counts

let running_matches_batch =
  Helpers.qtest "running mean/stddev match batch"
    QCheck.(list_of_size Gen.(int_range 2 40) (float_range (-100.) 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = Util.Stats.Running.create () in
      Array.iter (Util.Stats.Running.add r) arr;
      Float.abs (Util.Stats.Running.mean r -. Util.Stats.mean arr) < 1e-6
      && Float.abs (Util.Stats.Running.stddev r -. Util.Stats.stddev arr) < 1e-6)

let test_bounds () =
  let xs = [| 1.; 2.; 2.; 5. |] in
  let key = Fun.id in
  Alcotest.(check int) "lower 2" 1 (Util.Array_util.lower_bound ~key xs 2.);
  Alcotest.(check int) "upper 2" 3 (Util.Array_util.upper_bound ~key xs 2.);
  Alcotest.(check int) "lower 0" 0 (Util.Array_util.lower_bound ~key xs 0.);
  Alcotest.(check int) "upper 9" 4 (Util.Array_util.upper_bound ~key xs 9.);
  Alcotest.(check int) "count [2,5]" 3
    (Util.Array_util.count_in_range ~key xs ~lo:2. ~hi:5.)

let bounds_property =
  Helpers.qtest "bounds bracket exactly the matching range"
    QCheck.(pair (list (float_range 0. 20.)) (float_range 0. 20.))
    (fun (xs, x) ->
      let arr = Array.of_list (List.sort Float.compare xs) in
      let key = Fun.id in
      let lo = Util.Array_util.lower_bound ~key arr x in
      let hi = Util.Array_util.upper_bound ~key arr x in
      let ok = ref (lo <= hi) in
      Array.iteri
        (fun i v ->
          if v < x && i >= lo then ok := false;
          if v >= x && i < lo then ok := false;
          if v <= x && i >= hi then ok := false;
          if v > x && i < hi then ok := false)
        arr;
      !ok)

(* ---- monotone bucket queue ---- *)

let test_bucket_basic () =
  let q = Util.Bucket_queue.create ~capacity:8 ~max_prio:5 in
  Alcotest.(check bool) "empty" true (Util.Bucket_queue.is_empty q);
  Alcotest.(check int) "pop empty = -1" (-1) (Util.Bucket_queue.pop_max q);
  Alcotest.(check int) "max_priority empty = 0" 0 (Util.Bucket_queue.max_priority q);
  List.iter
    (fun (key, prio) -> Util.Bucket_queue.push q ~key ~prio)
    [ (3, 2); (0, 5); (7, 5); (1, 1); (5, 2) ];
  Alcotest.(check int) "length" 5 (Util.Bucket_queue.length q);
  Alcotest.(check int) "capacity" 8 (Util.Bucket_queue.capacity q);
  Alcotest.(check bool) "mem 7" true (Util.Bucket_queue.mem q 7);
  Alcotest.(check bool) "mem 2" false (Util.Bucket_queue.mem q 2);
  Alcotest.(check int) "priority 3" 2 (Util.Bucket_queue.priority q 3);
  Alcotest.(check int) "priority absent = 0" 0 (Util.Bucket_queue.priority q 2);
  Alcotest.(check int) "max_priority" 5 (Util.Bucket_queue.max_priority q);
  (* (max prio, smallest key) first; ties pop in ascending key order. *)
  let drained = List.init 5 (fun _ -> Util.Bucket_queue.pop_max q) in
  Alcotest.(check (list int)) "pop order" [ 0; 7; 3; 5; 1 ] drained;
  Alcotest.(check int) "drained" (-1) (Util.Bucket_queue.pop_max q)

let test_bucket_update_remove () =
  let q = Util.Bucket_queue.create ~capacity:4 ~max_prio:9 in
  Util.Bucket_queue.push q ~key:0 ~prio:4;
  Util.Bucket_queue.push q ~key:1 ~prio:4;
  (* Decrease-key moves a member down; update of an absent key inserts;
     prio <= 0 removes. *)
  Util.Bucket_queue.update q ~key:0 ~prio:2;
  Util.Bucket_queue.update q ~key:2 ~prio:9;
  Util.Bucket_queue.update q ~key:1 ~prio:0;
  Alcotest.(check int) "first" 2 (Util.Bucket_queue.pop_max q);
  Alcotest.(check int) "second" 0 (Util.Bucket_queue.pop_max q);
  Alcotest.(check bool) "drained" true (Util.Bucket_queue.is_empty q);
  Util.Bucket_queue.push q ~key:3 ~prio:1;
  Util.Bucket_queue.remove q 3;
  Alcotest.(check bool) "removed" true (Util.Bucket_queue.is_empty q);
  Util.Bucket_queue.push q ~key:3 ~prio:1;
  Alcotest.check_raises "double push rejected"
    (Invalid_argument "Bucket_queue.push: key already queued") (fun () ->
      Util.Bucket_queue.push q ~key:3 ~prio:2);
  Alcotest.check_raises "prio above max rejected"
    (Invalid_argument "Bucket_queue.update: priority out of range") (fun () ->
      Util.Bucket_queue.update q ~key:3 ~prio:10);
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Bucket_queue.mem: key out of range") (fun () ->
      ignore (Util.Bucket_queue.mem q 4))

(* Model check against a naive priority map, through arbitrary interleaved
   updates (including priority increases — the non-monotone path that
   exercises sorted insertion and cursor raising) and pops. *)
let bucket_matches_model =
  let cap = 12 and max_prio = 6 in
  Helpers.qtest "bucket queue matches naive model under update/pop churn"
    QCheck.(
      list
        (oneof
           [
             map (fun (k, p) -> `Update (k, p)) (pair (int_bound (cap - 1)) (int_bound max_prio));
             always `Pop;
           ]))
    (fun ops ->
      let q = Util.Bucket_queue.create ~capacity:cap ~max_prio in
      let model = Array.make cap 0 in
      let model_pop () =
        let best = ref (-1) in
        for k = cap - 1 downto 0 do
          if model.(k) > 0 && (!best < 0 || model.(k) >= model.(!best)) then best := k
        done;
        match !best with
        | -1 -> -1
        | k ->
          model.(k) <- 0;
          k
      in
      List.for_all
        (fun op ->
          match op with
          | `Update (key, prio) ->
            Util.Bucket_queue.update q ~key ~prio;
            model.(key) <- prio;
            Util.Bucket_queue.length q
            = Array.fold_left (fun acc p -> if p > 0 then acc + 1 else acc) 0 model
          | `Pop -> Util.Bucket_queue.pop_max q = model_pop ())
        ops
      &&
      let rec drain () =
        let k = Util.Bucket_queue.pop_max q in
        k = model_pop () && (k < 0 || drain ())
      in
      drain ())

let sort_prefix_matches_stdlib =
  Helpers.qtest "sort_ints_prefix = Array.sort on the prefix"
    QCheck.(pair (array_of_size Gen.(int_range 0 60) (int_bound 100)) small_nat)
    (fun (a, len) ->
      let len = min len (Array.length a) in
      let mine = Array.copy a in
      Util.Array_util.sort_ints_prefix mine len;
      let reference = Array.copy a in
      let prefix = Array.sub reference 0 len in
      Array.sort Int.compare prefix;
      Array.blit prefix 0 reference 0 len;
      mine = reference)

let test_rng_determinism () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.int a 1000) (Util.Rng.int b 1000)
  done;
  let c = Util.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Util.Rng.int a 1000 <> Util.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_uniform_mean () =
  let rng = Util.Rng.create 7 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Util.Rng.float rng 1.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_int_range () =
  let rng = Util.Rng.create 3 in
  let seen = Array.make 7 0 in
  for _ = 1 to 7000 do
    let x = Util.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    seen.(x) <- seen.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d populated (%d)" i c)
        true (c > 700))
    seen

let test_exponential_mean () =
  let rng = Util.Rng.create 11 in
  let n = 20000 and rate = 2.5 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Util.Rng.exponential rng ~rate
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. (1. /. rate)) < 0.02)

let test_poisson_mean_var () =
  let rng = Util.Rng.create 13 in
  let n = 20000 and mean = 6.5 in
  let r = Util.Stats.Running.create () in
  for _ = 1 to n do
    Util.Stats.Running.add r (float_of_int (Util.Rng.poisson rng ~mean))
  done;
  Alcotest.(check bool) "mean" true (Float.abs (Util.Stats.Running.mean r -. mean) < 0.15);
  Alcotest.(check bool) "variance ~ mean" true
    (Float.abs (Util.Stats.Running.variance r -. mean) < 0.5);
  Alcotest.(check int) "poisson 0" 0 (Util.Rng.poisson rng ~mean:0.)

let test_gaussian_moments () =
  let rng = Util.Rng.create 17 in
  let r = Util.Stats.Running.create () in
  for _ = 1 to 20000 do
    Util.Stats.Running.add r (Util.Rng.gaussian rng ~mu:3. ~sigma:2.)
  done;
  Alcotest.(check bool) "mu" true (Float.abs (Util.Stats.Running.mean r -. 3.) < 0.06);
  Alcotest.(check bool) "sigma" true
    (Float.abs (Util.Stats.Running.stddev r -. 2.) < 0.06)

let test_zipf_skew () =
  let rng = Util.Rng.create 19 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10000 do
    let k = Util.Rng.zipf rng ~n:10 ~s:1.2 in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= 10);
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(4))

let test_dirichlet_simplex () =
  let rng = Util.Rng.create 23 in
  for _ = 1 to 200 do
    let p = Util.Rng.dirichlet rng [| 0.5; 1.5; 3. |] in
    let total = Array.fold_left ( +. ) 0. p in
    Alcotest.(check bool) "sums to 1" true (Float.abs (total -. 1.) < 1e-9);
    Array.iter (fun x -> Alcotest.(check bool) "nonnegative" true (x >= 0.)) p
  done

let test_categorical () =
  let rng = Util.Rng.create 29 in
  let counts = Array.make 3 0 in
  for _ = 1 to 9000 do
    let i = Util.Rng.categorical rng [| 1.; 2.; 6. |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "ordering respected" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  Alcotest.(check bool) "rough proportions" true
    (Float.abs ((float_of_int counts.(2) /. 9000.) -. (6. /. 9.)) < 0.03)

let test_sample_without_replacement () =
  let rng = Util.Rng.create 31 in
  let sample = Util.Rng.sample_without_replacement rng ~k:4 [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "size" 4 (List.length sample);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq Int.compare sample))

let test_rng_split_independent () =
  let parent = Util.Rng.create 1 in
  let child = Util.Rng.split parent in
  (* The child must not replay the parent's stream. *)
  let parent_draws = List.init 50 (fun _ -> Util.Rng.int parent 1_000_000) in
  let child_draws = List.init 50 (fun _ -> Util.Rng.int child 1_000_000) in
  Alcotest.(check bool) "streams differ" true (parent_draws <> child_draws);
  (* And splitting is deterministic given the seed. *)
  let parent' = Util.Rng.create 1 in
  let child' = Util.Rng.split parent' in
  Alcotest.(check bool) "split reproducible" true
    (List.init 50 (fun _ -> Util.Rng.int child' 1_000_000) = child_draws)

let test_timer () =
  let result, elapsed = Util.Timer.time_it (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 result;
  Alcotest.(check bool) "elapsed nonnegative" true (elapsed >= 0.);
  let samples = Util.Timer.repeat ~warmup:1 ~runs:3 (fun () -> ()) in
  Alcotest.(check int) "runs" 3 (Array.length samples)

let test_timer_monotonic () =
  (* The clock source is monotonic: successive readings never go backwards,
     and a real wait measures as (clamped) nonnegative elapsed time. *)
  let previous = ref (Util.Timer.now ()) in
  for _ = 1 to 1000 do
    let t = Util.Timer.now () in
    if t < !previous then Alcotest.failf "clock went backwards: %g < %g" t !previous;
    previous := t
  done;
  let (), slept = Util.Timer.time_it (fun () -> Unix.sleepf 0.01) in
  Alcotest.(check bool) "sleep measured" true (slept >= 0.005 && slept < 5.);
  Array.iter
    (fun s -> Alcotest.(check bool) "sample nonnegative" true (s >= 0.))
    (Util.Timer.repeat ~warmup:0 ~runs:5 (fun () -> ()))

let test_pool_map_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Util.Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check int) "pool width" jobs (Util.Pool.jobs pool);
          Alcotest.(check (array int))
            (Printf.sprintf "map jobs=%d" jobs)
            (Array.map f xs)
            (Util.Pool.parallel_map pool ~f xs);
          (* odd chunk size exercises the ragged last chunk *)
          Alcotest.(check (array int))
            (Printf.sprintf "map jobs=%d chunk=7" jobs)
            (Array.map f xs)
            (Util.Pool.parallel_map pool ~chunk:7 ~f xs)))
    [ 1; 2; 4 ]

let test_pool_iter_chunks_partition () =
  Util.Pool.with_pool ~jobs:4 (fun pool ->
      let n = 103 in
      let hits = Array.make n 0 in
      (* each index owned by exactly one chunk: no locks needed *)
      Util.Pool.parallel_iter_chunks pool ~chunk:10 n ~f:(fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "index %d visited %d times" i c)
        hits;
      (* empty range is a no-op *)
      Util.Pool.parallel_iter_chunks pool 0 ~f:(fun _ _ -> Alcotest.fail "called"))

let test_pool_exception_propagates () =
  Util.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "exception resurfaces" (Failure "boom") (fun () ->
          Util.Pool.parallel_for pool ~chunk:1 64 ~f:(fun i ->
              if i = 17 then failwith "boom"));
      (* the pool survives a failed task *)
      Alcotest.(check (array int)) "usable afterwards" [| 0; 2; 4 |]
        (Util.Pool.parallel_map pool ~f:(fun x -> 2 * x) [| 0; 1; 2 |]))

let test_pool_nested_runs_inline () =
  Util.Pool.with_pool ~jobs:3 (fun pool ->
      let outer =
        Util.Pool.parallel_map pool ~chunk:1
          ~f:(fun x ->
            (* nested submission degrades to inline, never deadlocks *)
            Array.fold_left ( + ) 0
              (Util.Pool.parallel_map pool ~f:(fun y -> x * y) [| 1; 2; 3 |]))
          [| 1; 2; 3; 4 |]
      in
      Alcotest.(check (array int)) "nested results" [| 6; 12; 18; 24 |] outer)

let test_pool_validation () =
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.create: jobs < 1")
    (fun () -> ignore (Util.Pool.create ~jobs:0));
  Util.Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "chunk < 1"
        (Invalid_argument "Pool.parallel_iter_chunks: chunk < 1") (fun () ->
          Util.Pool.parallel_iter_chunks pool ~chunk:0 5 ~f:(fun _ _ -> ())))

let test_pool_shutdown_idempotent () =
  let pool = Util.Pool.create ~jobs:2 in
  Alcotest.(check (array int)) "works" [| 1; 2 |]
    (Util.Pool.parallel_map pool ~f:(fun x -> x + 1) [| 0; 1 |]);
  Util.Pool.shutdown pool;
  Util.Pool.shutdown pool;
  (* after shutdown tasks run inline *)
  Alcotest.(check (array int)) "inline after shutdown" [| 5 |]
    (Util.Pool.parallel_map pool ~f:(fun x -> x + 5) [| 0 |])

(* Cooperative cancellation: once [stop] reads true, queued-but-unstarted
   chunks are skipped and the call returns having run only a subset. A
   sticky always-true stop must run nothing at all. *)
let test_pool_stop_skips_chunks () =
  Util.Pool.with_pool ~jobs:4 (fun pool ->
      let n = 200 in
      let hits = Array.make n 0 in
      Util.Pool.parallel_iter_chunks pool ~chunk:10 ~stop:(fun () -> true) n
        ~f:(fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check int) "always-true stop runs nothing" 0
        (Array.fold_left ( + ) 0 hits);
      (* A stop that flips partway cancels the tail but never re-runs or
         double-runs a chunk. *)
      let executed = Atomic.make 0 in
      let tripped = Atomic.make false in
      Util.Pool.parallel_for pool ~chunk:1 ~stop:(fun () -> Atomic.get tripped) n
        ~f:(fun _ ->
          if Atomic.fetch_and_add executed 1 >= 20 then Atomic.set tripped true);
      let ran = Atomic.get executed in
      Alcotest.(check bool)
        (Printf.sprintf "partial run (%d of %d)" ran n)
        true
        (ran >= 20 && ran <= n);
      (* The pool stays healthy after a cancelled call. *)
      Alcotest.(check (array int)) "usable afterwards" [| 0; 2; 4 |]
        (Util.Pool.parallel_map pool ~f:(fun x -> 2 * x) [| 0; 1; 2 |]))

exception Payload of int list

(* Exceptions cross the pool boundary without being wrapped or rebuilt —
   budget exhaustion relies on this to carry salvaged state. *)
let test_pool_exception_payload_intact () =
  Util.Pool.with_pool ~jobs:3 (fun pool ->
      match
        Util.Pool.parallel_for pool ~chunk:1 32 ~f:(fun i ->
            if i = 13 then raise (Payload [ 4; 5; 6 ]))
      with
      | () -> Alcotest.fail "exception vanished"
      | exception Payload xs ->
        Alcotest.(check (list int)) "payload intact" [ 4; 5; 6 ] xs)

(* Worker exceptions under deterministic fault injection: a chunk that
   raises must propagate to the submitter without deadlocking the pool or
   leaking domains — the same pool must keep serving tasks through many
   failure rounds. *)
let test_pool_survives_injected_faults () =
  Util.Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 25 do
        let fault = Util.Fault.create ~seed:round () in
        (* Decide up front which of the 64 indices blow up this round. *)
        let bombs = Array.init 64 (fun _ -> Util.Fault.flip fault ~p:0.15) in
        let should_fail = Array.exists Fun.id bombs in
        let run () =
          Util.Pool.parallel_for pool ~chunk:1 64 ~f:(fun i ->
              if bombs.(i) then failwith (Printf.sprintf "injected %d.%d" round i))
        in
        (match run () with
        | () ->
          if should_fail then
            Alcotest.failf "round %d: injected exception vanished" round
        | exception Failure _ ->
          if not should_fail then Alcotest.failf "round %d: spurious failure" round);
        (* The pool must still work — a deadlocked or leaked domain would
           hang or crash right here. *)
        Alcotest.(check (array int))
          (Printf.sprintf "round %d: pool alive after failure" round)
          [| 0; 2; 4; 6 |]
          (Util.Pool.parallel_map pool ~f:(fun x -> 2 * x) [| 0; 1; 2; 3 |])
      done)

(* {2 Fs: atomic-write temp hygiene and append-only journals} *)

let fs_temp_dir () = Filename.temp_dir "mqdp_fs" ".d"

let test_fs_unique_temps_and_sweep () =
  let dir = fs_temp_dir () in
  Fun.protect ~finally:(fun () -> Util.Fs.remove_tree dir) @@ fun () ->
  let path = Filename.concat dir "target" in
  (* Two writers crash mid-write: their torn temps must not collide (a
     fixed suffix would make the second clobber the first). *)
  let temps =
    List.map
      (fun n ->
        match
          Util.Fs.atomic_write ~fsync:false ~crash_after:n ~path "0123456789"
        with
        | () -> Alcotest.fail "crash_after did not crash"
        | exception Util.Fs.Crashed { temp; written; _ } ->
          Alcotest.(check int) "wrote exactly the permitted prefix" n written;
          Alcotest.(check bool) "temp is recognizably temporary" true
            (Util.Fs.is_temp (Filename.basename temp));
          Alcotest.(check string) "torn prefix on disk"
            (String.sub "0123456789" 0 n)
            (Util.Fs.read temp);
          temp)
      [ 3; 5 ]
  in
  (match temps with
  | [ a; b ] -> Alcotest.(check bool) "distinct temp names" true (a <> b)
  | _ -> assert false);
  Util.Fs.atomic_write ~fsync:false ~path "final";
  Alcotest.(check int) "boot sweep removes exactly the torn temps" 2
    (Util.Fs.sweep_temps dir);
  Alcotest.(check string) "destination intact after sweep" "final"
    (Util.Fs.read path);
  Alcotest.(check int) "sweep is idempotent" 0 (Util.Fs.sweep_temps dir)

let test_fs_is_temp () =
  List.iter
    (fun (name, want) ->
      Alcotest.(check bool) name want (Util.Fs.is_temp name))
    [
      ("x.tmp.123.4", true);
      (".tmp.1.2", true);
      ("x.tmp", false);
      ("x.tmp.12", false);
      ("x.tmp.a.4", false);
      ("x.tmp.12.", false);
      ("manifest", false);
      ("shard-0.ep3.snap", false);
      ("sessions.journal", false);
    ]

let test_journal_roundtrip () =
  let dir = fs_temp_dir () in
  Fun.protect ~finally:(fun () -> Util.Fs.remove_tree dir) @@ fun () ->
  let path = Filename.concat dir "j" in
  let j, initial = Util.Fs.Journal.open_ ~fsync:false ~kind:"test" path in
  Alcotest.(check (list string)) "fresh journal is empty" [] initial;
  let payloads = [ "alpha"; "beta with spaces"; "tab\tand\\esc"; "" ] in
  List.iter (Util.Fs.Journal.append ~fsync:false j) payloads;
  Util.Fs.Journal.close j;
  let _, recovered = Util.Fs.Journal.open_ ~fsync:false ~kind:"test" path in
  Alcotest.(check (list string)) "payloads survive reopen" payloads recovered;
  let loaded, good = Util.Fs.Journal.load ~kind:"test" path in
  Alcotest.(check (list string)) "load agrees with open_" payloads loaded;
  Alcotest.(check int) "a clean tail ends at the file length"
    (Unix.stat path).Unix.st_size good

let test_journal_torn_tail_truncated () =
  let dir = fs_temp_dir () in
  Fun.protect ~finally:(fun () -> Util.Fs.remove_tree dir) @@ fun () ->
  let path = Filename.concat dir "j" in
  let j, _ = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
  Util.Fs.Journal.append ~fsync:false j "keep me";
  let good_len = (Unix.stat path).Unix.st_size in
  (* Tear the next append at every byte boundary ("R " tag, checksum,
     separator, payload, missing newline): recovery must always come back
     to exactly the good prefix. "torn" renders as 24 bytes. *)
  for k = 0 to 23 do
    (match Util.Fs.Journal.append ~fsync:false ~crash_after:k j "torn" with
    | () -> Alcotest.fail "crash_after did not crash"
    | exception Util.Fs.Crashed _ -> ());
    let _, survivors = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
    Alcotest.(check (list string))
      (Printf.sprintf "torn at byte %d truncated" k)
      [ "keep me" ] survivors;
    Alcotest.(check int)
      (Printf.sprintf "file repaired to the good prefix after tear at %d" k)
      good_len
      (Unix.stat path).Unix.st_size
  done

let test_journal_rejects_damage () =
  let dir = fs_temp_dir () in
  Fun.protect ~finally:(fun () -> Util.Fs.remove_tree dir) @@ fun () ->
  let path = Filename.concat dir "j" in
  let fresh () =
    Util.Fs.remove_if_exists path;
    let j, _ = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
    Util.Fs.Journal.append ~fsync:false j "first";
    Util.Fs.Journal.append ~fsync:false j "second";
    Util.Fs.Journal.close j;
    Util.Fs.read path
  in
  let expect_corrupt what content =
    Util.Fs.atomic_write ~fsync:false ~path content;
    match Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path with
    | _ -> Alcotest.fail (what ^ ": damaged journal accepted")
    | exception Util.Fs.Journal.Corrupt _ -> ()
  in
  let content = fresh () in
  let hlen = String.index content '\n' + 1 in
  (* A flipped checksum digit mid-file (intact records after it) is
     corruption, not a torn tail — it must refuse, not silently drop. *)
  let flipped = Bytes.of_string content in
  Bytes.set flipped (hlen + 2) 'z';
  expect_corrupt "bad checksum mid-file" (Bytes.to_string flipped);
  (* Wrong kind and wrong version both refuse up front. *)
  expect_corrupt "wrong kind"
    ("mqdp-journal v1 other\n" ^ String.sub content hlen (String.length content - hlen));
  expect_corrupt "wrong version"
    ("mqdp-journal v99 t\n" ^ String.sub content hlen (String.length content - hlen));
  (* The same flip in the LAST record is indistinguishable from a torn
     append and is truncated away. *)
  let content = fresh () in
  let last = Bytes.of_string content in
  Bytes.set last (String.length content - 3) '!';
  Util.Fs.atomic_write ~fsync:false ~path (Bytes.to_string last);
  let _, survivors = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
  Alcotest.(check (list string)) "damaged tail record dropped" [ "first" ]
    survivors

let test_journal_rewrite_compacts () =
  let dir = fs_temp_dir () in
  Fun.protect ~finally:(fun () -> Util.Fs.remove_tree dir) @@ fun () ->
  let path = Filename.concat dir "j" in
  let j, _ = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
  List.iter (Util.Fs.Journal.append ~fsync:false j) [ "a"; "b"; "c" ];
  Util.Fs.Journal.rewrite ~fsync:false j [ "summary" ];
  (* Appends after a rewrite land in the new inode, not the old one. *)
  Util.Fs.Journal.append ~fsync:false j "d";
  Util.Fs.Journal.close j;
  let _, payloads = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
  Alcotest.(check (list string)) "compacted then appended" [ "summary"; "d" ]
    payloads;
  (* A crash inside the rewrite leaves the old journal intact. *)
  let j, _ = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
  (match Util.Fs.Journal.rewrite ~fsync:false ~crash_after:5 j [ "lost" ] with
  | () -> Alcotest.fail "rewrite crash_after did not crash"
  | exception Util.Fs.Crashed _ -> ());
  Alcotest.(check int) "crashed rewrite left its torn temp" 1
    (Util.Fs.sweep_temps dir);
  let _, payloads = Util.Fs.Journal.open_ ~fsync:false ~kind:"t" path in
  Alcotest.(check (list string)) "old journal intact after rewrite crash"
    [ "summary"; "d" ] payloads

let test_fault_deterministic () =
  let corrupt seed =
    let f = Util.Fault.create ~seed () in
    Util.Fault.corrupt f ~time:Fun.id ~retime:(fun _ v -> v)
      (List.init 200 float_of_int)
  in
  Alcotest.(check (list (float 0.))) "same seed, same feed" (corrupt 11) (corrupt 11);
  Alcotest.(check bool) "different seeds differ" true (corrupt 11 <> corrupt 12)

let test_fault_clean_is_identity () =
  let f = Util.Fault.create ~config:Util.Fault.clean ~seed:3 () in
  let xs = List.init 50 float_of_int in
  Alcotest.(check (list (float 0.))) "clean config passes through" xs
    (Util.Fault.corrupt f ~time:Fun.id ~retime:(fun _ v -> v) xs)

let test_fault_crash_points () =
  let f = Util.Fault.create ~seed:5 () in
  for _ = 1 to 50 do
    let points = Util.Fault.crash_points f ~n:30 ~max_points:4 in
    Alcotest.(check bool) "nonempty" true (points <> []);
    Alcotest.(check bool) "within bounds and sorted" true
      (List.for_all (fun k -> k >= 0 && k <= 30) points
      && List.sort_uniq Int.compare points = points)
  done

let test_fault_flip_extremes () =
  let f = Util.Fault.create ~seed:1 () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never fires" false (Util.Fault.flip f ~p:0.);
    Alcotest.(check bool) "p=1 always fires" true (Util.Fault.flip f ~p:1.)
  done;
  Alcotest.check_raises "p out of range" (Invalid_argument "Fault.flip: p outside [0, 1]")
    (fun () -> ignore (Util.Fault.flip f ~p:1.5))

let test_fault_validation () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Fault.create: drop_p outside [0, 1]") (fun () ->
      ignore (Util.Fault.create ~config:{ Util.Fault.clean with drop_p = 2. } ~seed:1 ()))

let test_budget_unlimited () =
  let b = Util.Budget.unlimited in
  Alcotest.(check bool) "not limited" false (Util.Budget.limited b);
  Util.Budget.add ~cost:1000 b;
  Alcotest.(check int) "never counts" 0 (Util.Budget.spent_steps b);
  Util.Budget.cancel b;
  Alcotest.(check bool) "cancel is a no-op" false (Util.Budget.is_cancelled b);
  Alcotest.(check bool) "never stops" false (Util.Budget.should_stop b);
  Alcotest.(check bool) "child is unlimited" false
    (Util.Budget.limited (Util.Budget.child b));
  Alcotest.(check string) "describe" "unlimited" (Util.Budget.describe b)

let test_budget_counting_only () =
  (* No limits set: counts steps and time, never exhausts. *)
  let b = Util.Budget.create () in
  Util.Budget.step ~cost:7 b;
  Util.Budget.step b;
  Alcotest.(check int) "steps counted" 8 (Util.Budget.spent_steps b);
  Alcotest.(check (option int)) "no step limit" None (Util.Budget.remaining_steps b);
  Alcotest.(check bool) "never exhausts" true (Util.Budget.poll b = None);
  Alcotest.(check bool) "elapsed advances" true (Util.Budget.elapsed b >= 0.)

let test_budget_steps () =
  let b = Util.Budget.create ~max_steps:3 () in
  Util.Budget.step b;
  Util.Budget.step b;
  Alcotest.(check (option int)) "one left" (Some 1) (Util.Budget.remaining_steps b);
  Alcotest.(check bool) "not yet exhausted" true (Util.Budget.poll b = None);
  Alcotest.check_raises "third step trips" (Util.Budget.Exhausted Util.Budget.Steps)
    (fun () -> Util.Budget.step b);
  (* Exhaustion is sticky. *)
  Alcotest.(check bool) "sticky" true (Util.Budget.poll b = Some Util.Budget.Steps);
  Alcotest.(check (option int)) "remaining clamps at 0" (Some 0)
    (Util.Budget.remaining_steps b)

let test_budget_deadline_and_priority () =
  let b = Util.Budget.create ~deadline:0. () in
  Alcotest.(check bool) "expired deadline trips" true
    (Util.Budget.poll b = Some Util.Budget.Deadline);
  (* Cancellation outranks an already-passed deadline. *)
  Util.Budget.cancel b;
  Alcotest.(check bool) "cancellation wins" true
    (Util.Budget.poll b = Some Util.Budget.Cancelled);
  let far = Util.Budget.create ~deadline:3600. () in
  Alcotest.(check bool) "future deadline fine" true (Util.Budget.poll far = None);
  (match Util.Budget.remaining far with
  | Some r -> Alcotest.(check bool) "remaining sane" true (r > 0. && r <= 3600.)
  | None -> Alcotest.fail "deadline budget reports no remaining time")

let test_budget_allocation () =
  let b = Util.Budget.create ~max_alloc_bytes:0. () in
  (* Allocate enough to move the minor-words counter past the (zero) cap. *)
  Sys.opaque_identity (List.init 4096 (fun i -> (i, float_of_int i))) |> ignore;
  Alcotest.(check bool) "allocation trips" true
    (Util.Budget.poll b = Some Util.Budget.Allocation)

let test_budget_child () =
  let parent = Util.Budget.create ~max_steps:100 () in
  let c = Util.Budget.child parent in
  Alcotest.(check (option int)) "child gets half the remaining steps" (Some 50)
    (Util.Budget.remaining_steps c);
  Util.Budget.add ~cost:10 c;
  Alcotest.(check int) "child steps charged to parent too" 10
    (Util.Budget.spent_steps parent);
  (* A quarter-budget grandchild of what is left. *)
  let grandchild = Util.Budget.child ~fraction:0.25 c in
  Alcotest.(check (option int)) "fraction honoured" (Some 10)
    (Util.Budget.remaining_steps grandchild);
  (* Cancelling a child leaves the parent alive; cancelling the parent
     exhausts the child transitively. *)
  Util.Budget.cancel c;
  Alcotest.(check bool) "parent unaffected by child cancel" true
    (Util.Budget.poll parent = None);
  let c2 = Util.Budget.child parent in
  Util.Budget.cancel parent;
  Alcotest.(check bool) "parent cancel reaches the child" true
    (Util.Budget.poll c2 = Some Util.Budget.Cancelled)

let test_budget_child_exhaustion_is_local () =
  (* A child that burns its own slice does not exhaust the parent. *)
  let parent = Util.Budget.create ~max_steps:100 () in
  let c = Util.Budget.child parent in
  (match Util.Budget.remaining_steps c with
  | Some m -> Util.Budget.add ~cost:m c
  | None -> Alcotest.fail "child has no step limit");
  Alcotest.(check bool) "child exhausted" true
    (Util.Budget.poll c = Some Util.Budget.Steps);
  Alcotest.(check bool) "parent still has the other half" true
    (Util.Budget.poll parent = None);
  Alcotest.(check (option int)) "parent remaining" (Some 50)
    (Util.Budget.remaining_steps parent)

let test_budget_describe_and_reasons () =
  let b = Util.Budget.create ~max_steps:5 () in
  let d = Util.Budget.describe b in
  Alcotest.(check bool) ("describe mentions steps: " ^ d) true
    (String.length d > 0 && d <> "unlimited");
  List.iter
    (fun (r, s) -> Alcotest.(check string) "reason name" s (Util.Budget.reason_to_string r))
    [
      (Util.Budget.Cancelled, "cancelled");
      (Util.Budget.Deadline, "deadline");
      (Util.Budget.Steps, "steps");
      (Util.Budget.Allocation, "allocation");
    ]

let test_budget_cross_domain_cancel () =
  (* A budget shared with another domain: cancellation from the spawned
     domain is observed by the creator on its next poll. *)
  let b = Util.Budget.create ~max_steps:1_000_000 () in
  let d = Domain.spawn (fun () -> Util.Budget.cancel b) in
  Domain.join d;
  Alcotest.(check bool) "cancel visible across domains" true
    (Util.Budget.poll b = Some Util.Budget.Cancelled)

(* Regression: [child] of a small parent used to floor the child step
   budget to 0 via int_of_float, so the child tripped Steps at its very
   first poll and a supervisor ladder could skip every speculative rung
   with budget still left. *)
let test_budget_child_step_floor () =
  let parent = Util.Budget.create ~max_steps:1 () in
  let child = Util.Budget.child parent in
  Alcotest.(check (option int)) "child floored at one step" (Some 1)
    (Util.Budget.remaining_steps child);
  Alcotest.(check bool) "child not pre-exhausted" true
    (Util.Budget.poll child = None);
  (* The floor does not mint budget: the child's step still charges the
     parent, whose own limit trips right after. *)
  Util.Budget.add child;
  Alcotest.(check bool) "parent trips once the child spends" true
    (Util.Budget.poll parent = Some Util.Budget.Steps);
  (* Tiny fractions of a larger parent floor at 1 as well. *)
  let parent = Util.Budget.create ~max_steps:10 () in
  Util.Budget.add ~cost:9 parent;
  let c = Util.Budget.child ~fraction:0.1 parent in
  Alcotest.(check (option int)) "0.1 of 1 remaining floors at 1" (Some 1)
    (Util.Budget.remaining_steps c)

let test_budget_spend_attrs () =
  Alcotest.(check (list (pair string string)))
    "unlimited attrs"
    [ ("budget", "unlimited") ]
    (Util.Budget.spend_attrs Util.Budget.unlimited);
  let b = Util.Budget.create ~max_steps:10 () in
  Util.Budget.add ~cost:4 b;
  let attrs = Util.Budget.spend_attrs b in
  Alcotest.(check (option string)) "steps spent" (Some "4")
    (List.assoc_opt "budget.steps" attrs);
  Alcotest.(check (option string)) "steps remaining" (Some "6")
    (List.assoc_opt "budget.remaining_steps" attrs);
  Alcotest.(check bool) "elapsed present" true
    (List.mem_assoc "budget.elapsed_ms" attrs)

(* Regression: [Heap.pop] used to leave the popped element (and the moved
   root's old copy) in the vacated backing-array slot, keeping it
   reachable — a space leak when elements are large. Observed through weak
   pointers: a popped payload must become collectable while the heap is
   still alive. We push exactly to the initial capacity (8) so every slot
   holds a distinct element and the check isolates pop's vacated slot from
   [push]'s growth filler. *)
let test_heap_pop_unpins_elements () =
  let n = 8 in
  let h = Util.Heap.create (fun (a, _) (b, _) -> Int.compare a b) in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let payload = (i, Bytes.create 128) in
    Weak.set w i (Some payload);
    Util.Heap.push h payload
  done;
  ignore (Util.Heap.pop h);
  ignore (Util.Heap.pop h);
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload 0 collected" true (Weak.get w 0 = None);
  Alcotest.(check bool) "popped payload 1 collected" true (Weak.get w 1 = None);
  for i = 2 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "live payload %d retained" i)
      true
      (Weak.get w i <> None)
  done;
  ignore (Util.Heap.drain h);
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "drained payload %d collected" i)
      true
      (Weak.get w i = None)
  done

(* Push/pop churn across the slot-clearing path: the heap still pops in
   order and agrees with a sorted-list model. *)
let test_heap_churn () =
  let h = Util.Heap.create Int.compare in
  let model = ref [] in
  let rng = Util.Rng.create 11 in
  for _ = 1 to 2_000 do
    if Util.Rng.int rng 3 = 0 then begin
      match (Util.Heap.pop h, !model) with
      | None, [] -> ()
      | Some x, m :: rest ->
        Alcotest.(check int) "pop = model min" m x;
        model := rest
      | Some _, [] -> Alcotest.fail "heap popped from an empty model"
      | None, _ :: _ -> Alcotest.fail "heap empty while the model is not"
    end
    else begin
      let x = Util.Rng.int rng 1000 in
      Util.Heap.push h x;
      model := List.sort Int.compare (x :: !model)
    end
  done;
  Alcotest.(check (list int)) "final drain = model" !model (Util.Heap.drain h)

(* Regression: [Stats.percentile] sorted with polymorphic compare, which
   ranks NaN arbitrarily and silently poisons the interpolation; [histogram]
   fed NaN through int_of_float (undefined). Both now reject NaN. *)
let test_stats_nan_rejected () =
  Alcotest.check_raises "percentile rejects NaN"
    (Invalid_argument "Stats.percentile: NaN input")
    (fun () -> ignore (Util.Stats.percentile 50. [| 1.0; Float.nan; 2.0 |]));
  Alcotest.check_raises "histogram rejects NaN"
    (Invalid_argument "Stats.histogram: NaN input")
    (fun () ->
      ignore (Util.Stats.histogram ~buckets:4 ~lo:0. ~hi:1. [| Float.nan |]));
  (* Float.compare orders signed values correctly (p0 = min, p100 = max). *)
  let xs = [| 3.; -1.; 2.; -5. |] in
  Alcotest.(check (float 0.)) "p0 is the minimum" (-5.) (Util.Stats.percentile 0. xs);
  Alcotest.(check (float 0.)) "p100 is the maximum" 3. (Util.Stats.percentile 100. xs)

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "heap of_list" `Quick test_heap_of_list;
    Alcotest.test_case "max-heap via cmp" `Quick test_heap_max;
    Alcotest.test_case "heap pop unpins elements" `Quick
      test_heap_pop_unpins_elements;
    Alcotest.test_case "heap push/pop churn" `Quick test_heap_churn;
    Alcotest.test_case "stats reject NaN" `Quick test_stats_nan_rejected;
    heap_sort_is_sort;
    heap_push_pop;
    Alcotest.test_case "bucket queue basics" `Quick test_bucket_basic;
    Alcotest.test_case "bucket queue update/remove" `Quick test_bucket_update_remove;
    bucket_matches_model;
    sort_prefix_matches_stdlib;
    Alcotest.test_case "running stats" `Quick test_running_stats;
    Alcotest.test_case "percentiles" `Quick test_percentile;
    Alcotest.test_case "histogram" `Quick test_histogram;
    running_matches_batch;
    Alcotest.test_case "binary search bounds" `Quick test_bounds;
    bounds_property;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng uniform mean" `Quick test_rng_uniform_mean;
    Alcotest.test_case "rng int range & spread" `Quick test_rng_int_range;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "poisson mean/variance" `Quick test_poisson_mean_var;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "dirichlet on simplex" `Quick test_dirichlet_simplex;
    Alcotest.test_case "categorical proportions" `Quick test_categorical;
    Alcotest.test_case "sampling without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "timer monotonic" `Quick test_timer_monotonic;
    Alcotest.test_case "pool map = sequential" `Quick test_pool_map_matches_sequential;
    Alcotest.test_case "pool chunk partition" `Quick test_pool_iter_chunks_partition;
    Alcotest.test_case "pool exception propagation" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool nested submission" `Quick test_pool_nested_runs_inline;
    Alcotest.test_case "pool validation" `Quick test_pool_validation;
    Alcotest.test_case "pool shutdown idempotent" `Quick test_pool_shutdown_idempotent;
    Alcotest.test_case "pool stop skips queued chunks" `Quick test_pool_stop_skips_chunks;
    Alcotest.test_case "pool exception payload intact" `Quick
      test_pool_exception_payload_intact;
    Alcotest.test_case "pool survives injected worker faults" `Quick
      test_pool_survives_injected_faults;
    Alcotest.test_case "budget unlimited token" `Quick test_budget_unlimited;
    Alcotest.test_case "budget counting only" `Quick test_budget_counting_only;
    Alcotest.test_case "budget step limit" `Quick test_budget_steps;
    Alcotest.test_case "budget deadline & priority" `Quick
      test_budget_deadline_and_priority;
    Alcotest.test_case "budget allocation limit" `Quick test_budget_allocation;
    Alcotest.test_case "budget child slicing" `Quick test_budget_child;
    Alcotest.test_case "budget child exhaustion is local" `Quick
      test_budget_child_exhaustion_is_local;
    Alcotest.test_case "budget describe & reasons" `Quick
      test_budget_describe_and_reasons;
    Alcotest.test_case "budget cross-domain cancel" `Quick
      test_budget_cross_domain_cancel;
    Alcotest.test_case "budget child step floor" `Quick
      test_budget_child_step_floor;
    Alcotest.test_case "budget spend attrs" `Quick test_budget_spend_attrs;
    Alcotest.test_case "fs unique temps & boot sweep" `Quick
      test_fs_unique_temps_and_sweep;
    Alcotest.test_case "fs is_temp classification" `Quick test_fs_is_temp;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn tail truncated at every byte" `Quick
      test_journal_torn_tail_truncated;
    Alcotest.test_case "journal rejects mid-file damage" `Quick
      test_journal_rejects_damage;
    Alcotest.test_case "journal rewrite compacts atomically" `Quick
      test_journal_rewrite_compacts;
    Alcotest.test_case "fault injector determinism" `Quick test_fault_deterministic;
    Alcotest.test_case "fault clean config is identity" `Quick
      test_fault_clean_is_identity;
    Alcotest.test_case "fault crash points" `Quick test_fault_crash_points;
    Alcotest.test_case "fault flip extremes" `Quick test_fault_flip_extremes;
    Alcotest.test_case "fault config validation" `Quick test_fault_validation;
  ]
