let () =
  Alcotest.run "mqdp"
    [
      ("util", Test_util.suite);
      ("lint", Test_lint.suite);
      ("telemetry", Test_telemetry.suite);
      ("label-set", Test_label_set.suite);
      ("instance", Test_instance.suite);
      ("coverage", Test_coverage.suite);
      ("pair-index", Test_pair_index.suite);
      ("window-index", Test_window_index.suite);
      ("set-cover", Test_set_cover.suite);
      ("algorithms", Test_algorithms.suite);
      ("opt", Test_opt.suite);
      ("baselines", Test_baselines.suite);
      ("spatial", Test_spatial.suite);
      ("streaming", Test_streaming.suite);
      ("online", Test_online.suite);
      ("feed", Test_feed.suite);
      ("proportional", Test_proportional.suite);
      ("metrics", Test_metrics.suite);
      ("solver", Test_solver.suite);
      ("supervisor", Test_supervisor.suite);
      ("sat", Test_sat.suite);
      ("hardness", Test_hardness.suite);
      ("text", Test_text.suite);
      ("stemmer", Test_stemmer.suite);
      ("index", Test_index.suite);
      ("ranked", Test_ranked.suite);
      ("post-io", Test_post_io.suite);
      ("serve", Test_serve.suite);
      ("transport", Test_transport.suite);
      ("lda", Test_lda.suite);
      ("workload", Test_workload.suite);
      ("integration", Test_integration.suite);
    ]
