(* Serving layer: Profile durability, Shard supervision, Serve protocol.

   The differential fuzzer (mqdp_fuzz --serve) covers the bit-identical
   report guarantee under random crash/restart/retry interleavings; these
   tests pin the behaviors the crash-free oracle cannot model — admission
   control and degradation, quarantine and revival, request deadlines,
   sequence-cache eviction, and snapshot corruption handling. *)

let post = Helpers.post

exception Boom

(* --- Profile ------------------------------------------------------- *)

let profile ?(config = Mqdp.Profile.default_config) ?(labels = [ 1; 2 ]) name =
  Mqdp.Profile.create ~name ~subscription:(Mqdp.Label_set.of_list labels) config

let delayed tau = Mqdp.Online.Delayed { tau; plus = false }

let test_profile_offer_process () =
  let p =
    profile "alice"
      ~config:{ Mqdp.Profile.default_config with mode = delayed 2.; window = false }
  in
  Mqdp.Profile.offer p (post ~id:1 ~value:1.0 [ 1 ]);
  Mqdp.Profile.offer p (post ~id:2 ~value:2.0 [ 2 ]);
  Alcotest.(check int) "pending" 2 (Mqdp.Profile.pending p);
  Alcotest.(check int) "applied" 2 (Mqdp.Profile.process p);
  Alcotest.(check int) "drained" 0 (Mqdp.Profile.pending p);
  Alcotest.(check int) "acked" 2 (Mqdp.Profile.acked p);
  Mqdp.Profile.drain p;
  let report = Mqdp.Profile.take_report p in
  Alcotest.(check (list int)) "emitted ids" [ 1; 2 ]
    (List.map (fun (_, e) -> e.Mqdp.Online.post.Mqdp.Post.id) report);
  Alcotest.(check (list int)) "monotone seqs" [ 1; 2 ] (List.map fst report);
  Alcotest.(check (list pass)) "watermark advanced" []
    (Mqdp.Profile.take_report p)

let test_profile_quarantine_and_revive () =
  let config =
    { Mqdp.Profile.default_config with max_restarts = 2; window = false;
      mode = Mqdp.Online.Instant }
  in
  let p = profile "bob" ~config ~labels:[ 1; 2; 3 ] in
  List.iter (fun i -> Mqdp.Profile.offer p (post ~id:i ~value:(float_of_int i) [ i ]))
    [ 1; 2; 3 ];
  (* A chaos hook that fails every time: each application crashes once,
     recovers, and retries chaos-free — so progress continues until the
     crash count passes max_restarts and the profile quarantines. *)
  ignore (Mqdp.Profile.process ~chaos:(fun () -> raise Boom) p);
  Alcotest.(check bool) "quarantined" true (Mqdp.Profile.quarantined p);
  Alcotest.check_raises "offer refused while quarantined"
    (Invalid_argument "Profile.offer: profile is quarantined") (fun () ->
      Mqdp.Profile.offer p (post ~id:9 ~value:1.0 [ 1 ]));
  let pending_before = Mqdp.Profile.pending p in
  Mqdp.Profile.revive p;
  Alcotest.(check bool) "revived" false (Mqdp.Profile.quarantined p);
  Alcotest.(check int) "crash counter reset" 0 (Mqdp.Profile.crashes p);
  Alcotest.(check int) "pending survived quarantine" pending_before
    (Mqdp.Profile.pending p);
  ignore (Mqdp.Profile.process p);
  Mqdp.Profile.drain p;
  Alcotest.(check int) "no acknowledged post lost" 3
    (List.length (Mqdp.Profile.take_report p))

let test_profile_budget_is_not_a_crash () =
  let p = profile "carol" ~config:{ Mqdp.Profile.default_config with window = false } in
  List.iter (fun i -> Mqdp.Profile.offer p (post ~id:i ~value:1.0 [ 1 ]))
    [ 1; 2; 3; 4 ];
  (* [Budget.step] charges before each application and exhaustion is
     checked after the charge, so a 3-step budget applies 2 posts. *)
  let budget = Util.Budget.create ~max_steps:3 () in
  Alcotest.(check int) "stopped at the budget" 2 (Mqdp.Profile.process ~budget p);
  Alcotest.(check int) "remainder still pending" 2 (Mqdp.Profile.pending p);
  Alcotest.(check int) "exhaustion is backpressure, not a crash" 0
    (Mqdp.Profile.crashes p);
  Alcotest.(check bool) "not quarantined" false (Mqdp.Profile.quarantined p)

let test_profile_blob_roundtrip () =
  let config =
    { Mqdp.Profile.default_config with mode = delayed 5.; window = false;
      checkpoint_every = 2 }
  in
  let p = profile "dave" ~config ~labels:[ 3; 4 ] in
  List.iteri (fun i v -> Mqdp.Profile.offer p (post ~id:(i + 1) ~value:v [ 3 ]))
    [ 1.0; 2.5; 0.25 ];
  ignore (Mqdp.Profile.process p);
  Mqdp.Profile.offer p (post ~id:7 ~value:3.0 [ 4 ]);
  let q = Mqdp.Profile.of_blob (Mqdp.Profile.blob p) in
  Alcotest.(check string) "name" (Mqdp.Profile.name p) (Mqdp.Profile.name q);
  Alcotest.(check int) "pending" (Mqdp.Profile.pending p) (Mqdp.Profile.pending q);
  Alcotest.(check int) "acked" (Mqdp.Profile.acked p) (Mqdp.Profile.acked q);
  Alcotest.(check int) "unreported" (Mqdp.Profile.unreported p)
    (Mqdp.Profile.unreported q);
  (* Finishing both incarnations must produce identical reports: the
     restored feed replays to the same state bit for bit. *)
  ignore (Mqdp.Profile.process p);
  ignore (Mqdp.Profile.process q);
  Mqdp.Profile.drain p;
  Mqdp.Profile.drain q;
  let render r =
    List.map
      (fun (s, e) ->
        Printf.sprintf "%d:%d:%Lx" s e.Mqdp.Online.post.Mqdp.Post.id
          (Int64.bits_of_float e.Mqdp.Online.emit_time))
      r
  in
  Alcotest.(check (list string)) "identical reports"
    (render (Mqdp.Profile.take_report p))
    (render (Mqdp.Profile.take_report q))

(* --- Shard --------------------------------------------------------- *)

let test_shard_sheds_at_capacity () =
  let shard = Mqdp.Shard.create { Mqdp.Shard.queue_capacity = 2; tick_steps = None } in
  let p =
    profile "erin" ~config:{ Mqdp.Profile.default_config with window = false }
  in
  Mqdp.Shard.add shard p;
  Alcotest.(check bool) "first accepted" true
    (Mqdp.Shard.offer shard p (post ~id:1 ~value:1.0 [ 1 ]));
  Alcotest.(check bool) "second accepted" true
    (Mqdp.Shard.offer shard p (post ~id:2 ~value:1.0 [ 1 ]));
  Alcotest.(check bool) "third shed" false
    (Mqdp.Shard.offer shard p (post ~id:3 ~value:1.0 [ 1 ]));
  let c = Mqdp.Shard.counters shard in
  Alcotest.(check int) "acked" 2 c.Mqdp.Shard.acked;
  Alcotest.(check int) "shed" 1 c.Mqdp.Shard.shed;
  ignore (Mqdp.Shard.tick shard);
  Alcotest.(check int) "backlog drained" 0 (Mqdp.Shard.backlog shard);
  Alcotest.(check bool) "capacity freed" true
    (Mqdp.Shard.offer shard p (post ~id:4 ~value:1.0 [ 1 ]))

let test_shard_snapshot_roundtrip_and_corruption () =
  let shard = Mqdp.Shard.create { Mqdp.Shard.queue_capacity = 64; tick_steps = None } in
  let p =
    profile "frank" ~config:{ Mqdp.Profile.default_config with window = false }
  in
  Mqdp.Shard.add shard p;
  ignore (Mqdp.Shard.offer shard p (post ~id:1 ~value:1.0 [ 1 ]));
  ignore (Mqdp.Shard.tick shard);
  ignore (Mqdp.Shard.offer shard p (post ~id:2 ~value:2.0 [ 2 ]));
  let snap = Mqdp.Shard.snapshot shard in
  let restored = Mqdp.Shard.restore snap in
  Alcotest.(check int) "profiles" 1 (Mqdp.Shard.profile_count restored);
  Alcotest.(check int) "backlog recomputed" 1 (Mqdp.Shard.backlog restored);
  let c = Mqdp.Shard.counters restored and c0 = Mqdp.Shard.counters shard in
  Alcotest.(check int) "acked carried" c0.Mqdp.Shard.acked c.Mqdp.Shard.acked;
  (* Any flipped byte in the body must fail the checksum. *)
  let damaged = Bytes.of_string snap in
  let i = String.length snap / 2 in
  Bytes.set damaged i (Char.chr (Char.code (Bytes.get damaged i) lxor 1));
  (match Mqdp.Shard.restore (Bytes.to_string damaged) with
  | _ -> Alcotest.fail "corrupt snapshot accepted"
  | exception Mqdp.Shard.Corrupt _ -> ());
  match Mqdp.Shard.restore "mqdp-shard-snapshot v999\n" with
  | _ -> Alcotest.fail "bad header accepted"
  | exception Mqdp.Shard.Corrupt _ -> ()

(* --- Serve --------------------------------------------------------- *)

let serve_config =
  { Mqdp.Serve.default_config with Mqdp.Serve.shards = 2; seq_cache = 4 }

let with_serve ?(config = serve_config) f =
  let t = Mqdp.Serve.create config in
  Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown t) (fun () -> f t)

let last t line =
  match Mqdp.Serve.exec t line with
  | [] -> Alcotest.fail "no response"
  | lines -> List.nth lines (List.length lines - 1)

let check_resp what expected t line =
  Alcotest.(check string) what expected (last t line)

let test_serve_admission () =
  let config =
    { serve_config with Mqdp.Serve.max_profiles = 3; degrade_above = 2 }
  in
  with_serve ~config @@ fun t ->
  check_resp "first" "1 OK added" t "1 ADD a 60 delayed:30 1,2";
  check_resp "duplicate" "2 ERR duplicate-profile profile \"a\" already exists" t
    "2 ADD a 60 instant 1";
  check_resp "second" "3 OK added" t "3 ADD b 60 instant 2";
  (* Beyond the soft ceiling admission degrades; at the hard ceiling it
     refuses with a typed error the client can act on. *)
  check_resp "degraded" "4 OK added degraded" t "4 ADD c 60 delayed:30 3";
  check_resp "full" "5 ERR capacity at 3 profiles" t "5 ADD d 60 instant 4";
  Alcotest.(check int) "profile count" 3 (Mqdp.Serve.profile_count t)

let test_serve_idempotent_retry_and_stale_seq () =
  with_serve @@ fun t ->
  check_resp "add" "1 OK added" t "1 ADD a 60 delayed:2 1";
  let first = Mqdp.Serve.exec t "2 FEED 10 1.0 1" in
  Alcotest.(check (list string)) "verbatim retry replays the cache" first
    (Mqdp.Serve.exec t "2 FEED 10 1.0 1");
  check_resp "retried FEED did not deliver twice" "3 OK applied=1 backlog=0" t
    "3 TICK";
  (* Push the watermark past the cache (seq_cache = 4) and the earliest
     sequence is refused rather than silently re-executed. *)
  List.iter (fun s -> ignore (Mqdp.Serve.exec t (Printf.sprintf "%d PING" s)))
    [ 4; 5; 6; 7; 8 ];
  check_resp "evicted seq refused" "2 ERR stale-seq sequence 2 below watermark 8"
    t "2 FEED 10 1.0 1";
  check_resp "bad seq" "ERR parse bad sequence number" t "zero PING";
  check_resp "unknown verb" "9 ERR parse unknown or malformed command \"BOGUS\""
    t "9 BOGUS"

let test_serve_request_deadline () =
  let config = { serve_config with Mqdp.Serve.request_deadline = Some 0. } in
  with_serve ~config @@ fun t ->
  match String.split_on_char ' ' (last t "1 PING") with
  | "1" :: "ERR" :: "deadline" :: _ -> ()
  | _ -> Alcotest.fail "expected ERR deadline under a zero request deadline"

let test_serve_feed_fanout_and_shed () =
  let config = { serve_config with Mqdp.Serve.queue_capacity = 1 } in
  with_serve ~config @@ fun t ->
  check_resp "a" "1 OK added" t "1 ADD a 60 instant 1,2";
  check_resp "b" "2 OK added" t "2 ADD b 60 instant 2,3";
  check_resp "c" "3 OK added" t "3 ADD c 60 instant 7";
  (* Label 2 reaches a and b; label 7 reaches only c; label 9 nobody.
     With per-shard capacity 1, a second post to the same shard sheds. *)
  let r1 = last t "4 FEED 100 1.0 2" in
  (match String.split_on_char ' ' r1 with
  | [ "4"; "OK"; d; s ] ->
    Scanf.sscanf (d ^ " " ^ s) "delivered=%d shed=%d" (fun d s ->
        Alcotest.(check int) "delivered+shed covers both subscribers" 2 (d + s))
  | _ -> Alcotest.fail ("unexpected FEED response " ^ r1));
  check_resp "no subscriber" "5 OK delivered=0 shed=0" t "5 FEED 101 2.0 9";
  ignore (Mqdp.Serve.exec t "6 TICK");
  Alcotest.(check int) "backlog clears" 0 (Mqdp.Serve.backlog t)

let test_serve_restart_preserves_acked () =
  with_serve @@ fun t ->
  check_resp "add" "1 OK added" t "1 ADD a 60 delayed:2 1";
  check_resp "feed" "2 OK delivered=1 shed=0" t "2 FEED 100 1.0 1";
  (* Restart both shards with the post still acknowledged-but-unapplied:
     the journal is durable, so nothing is lost. *)
  Mqdp.Serve.restart_shard t 0;
  Mqdp.Serve.restart_shard t 1;
  Alcotest.(check int) "restarts counted" 2 (Mqdp.Serve.restarts t);
  check_resp "tick applies the journal" "3 OK applied=1 backlog=0" t "3 TICK";
  check_resp "drain" "4 OK drained=1" t "4 DRAIN a";
  match Mqdp.Serve.exec t "5 REPORT a" with
  | [ emit; ok ] ->
    Alcotest.(check string) "count" "5 OK 1" ok;
    (match String.split_on_char ' ' emit with
    | [ "5"; "EMIT"; _; "100"; _ ] -> ()
    | _ -> Alcotest.fail ("unexpected EMIT line " ^ emit))
  | lines ->
    Alcotest.fail (Printf.sprintf "expected EMIT + OK, got %d lines"
        (List.length lines))

let test_serve_quarantine_restore () =
  let config = { serve_config with Mqdp.Serve.max_restarts = 1 } in
  with_serve ~config @@ fun t ->
  check_resp "add" "1 OK added" t "1 ADD a 60 instant 1,2";
  check_resp "feed" "2 OK delivered=1 shed=0" t "2 FEED 100 1.0 1";
  check_resp "feed" "3 OK delivered=1 shed=0" t "3 FEED 101 2.0 2";
  Mqdp.Serve.set_chaos t (Some (fun () -> raise Boom));
  (* Every application crashes once (the retry is chaos-free): the first
     recovery is within max_restarts = 1, the second quarantines the
     profile with the second post still durably pending. *)
  check_resp "tick quarantines mid-stream" "4 OK applied=1 backlog=1" t "4 TICK";
  check_resp "quarantined profiles shed" "5 OK delivered=0 shed=1" t
    "5 FEED 102 3.0 1";
  (match String.split_on_char ' ' (last t "6 QUERY a") with
  | "6" :: "ERR" :: "quarantined" :: _ -> ()
  | other -> Alcotest.fail ("expected ERR quarantined, got " ^ String.concat " " other));
  Mqdp.Serve.set_chaos t None;
  check_resp "restore revives" "7 OK restored" t "7 RESTORE a";
  check_resp "restore is idempotent" "8 OK restored" t "8 RESTORE a";
  check_resp "tick applies the surviving journal" "9 OK applied=1 backlog=0" t
    "9 TICK";
  check_resp "drain" "10 OK drained=1" t "10 DRAIN a";
  check_resp "nothing acknowledged was lost" "11 OK 2"
    t "11 REPORT a"

let test_serve_stats_shape () =
  with_serve @@ fun t ->
  check_resp "add" "1 OK added" t "1 ADD a 60 instant 1";
  check_resp "feed" "2 OK delivered=1 shed=0" t "2 FEED 100 1.0 1";
  ignore (Mqdp.Serve.exec t "3 TICK");
  match Mqdp.Serve.exec t "4 STATS" with
  | [ line ] ->
    let prefix = "4 OK " in
    Alcotest.(check bool) "prefixed" true (String.starts_with ~prefix line);
    let json = String.sub line (String.length prefix)
        (String.length line - String.length prefix) in
    let contains needle =
      let n = String.length needle and m = String.length json in
      let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool) (needle ^ " present") true (contains needle))
      [ {json|"profiles":1|json}; {json|"acked":1|json}; {json|"applied":1|json};
        {json|"backlog":0|json}; {json|"telemetry":|json} ]
  | _ -> Alcotest.fail "STATS must answer in exactly one line"

(* --- Sessions: bounds and durability -------------------------------- *)

let with_state_dir f =
  let dir = Filename.temp_dir "mqdp_serve" ".state" in
  Fun.protect ~finally:(fun () -> Util.Fs.remove_tree dir) (fun () -> f dir)

let sessions_gauge () =
  List.find_map
    (function
      | Util.Telemetry.Gauge_entry ("serve.sessions", v) -> Some v
      | _ -> None)
    (Util.Telemetry.snapshot ())

let test_serve_session_bounds () =
  (* Telemetry is process-global: enable for the gauge assertions and
     restore the disabled resting state (same idiom as test_telemetry). *)
  Util.Telemetry.reset ();
  Util.Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Util.Telemetry.disable ();
      Util.Telemetry.reset ())
  @@ fun () ->
  let config =
    { serve_config with Mqdp.Serve.max_sessions = 3; session_ttl = Some 60. }
  in
  with_serve ~config @@ fun t ->
  let a = Mqdp.Serve.session t ~id:"a" in
  ignore (Mqdp.Serve.exec_on t a "5 PING");
  Unix.sleepf 0.002;
  ignore (Mqdp.Serve.exec_on t (Mqdp.Serve.session t ~id:"b") "1 PING");
  Unix.sleepf 0.002;
  ignore (Mqdp.Serve.exec_on t (Mqdp.Serve.session t ~id:"c") "1 PING");
  Unix.sleepf 0.002;
  (* The table is at the cap: a fourth id evicts the least recently
     touched ("a"), never growing past max_sessions. *)
  let d = Mqdp.Serve.session t ~id:"d" in
  Alcotest.(check int) "table stays at the cap" 3 (Mqdp.Serve.session_count t);
  Alcotest.(check int) "new session starts fresh" 0 (Mqdp.Serve.session_seq d);
  Alcotest.(check (option int)) "serve.sessions gauge tracks the table"
    (Some 3) (sessions_gauge ());
  let a' = Mqdp.Serve.session t ~id:"a" in
  Alcotest.(check bool) "the evicted LRU came back as a fresh session" false
    (a == a');
  Alcotest.(check int) "its watermark was reset" 0 (Mqdp.Serve.session_seq a');
  Alcotest.(check int) "still at the cap" 3 (Mqdp.Serve.session_count t);
  (* Idle-TTL: pinning the clock past the deadline sweeps everything
     idle; the gauge follows. *)
  let now = Util.Timer.now () in
  Alcotest.(check int) "nothing is idle yet" 0
    (Mqdp.Serve.sweep_sessions ~now t);
  Alcotest.(check int) "everything idle past the TTL is swept" 3
    (Mqdp.Serve.sweep_sessions ~now:(now +. 61.) t);
  Alcotest.(check int) "table empty after the sweep" 0
    (Mqdp.Serve.session_count t);
  Alcotest.(check (option int)) "gauge back to zero" (Some 0)
    (sessions_gauge ())

let test_serve_journal_recovery () =
  with_state_dir @@ fun dir ->
  let t = Mqdp.Serve.create serve_config in
  Mqdp.Serve.attach_journal ~fsync:false t ~dir ~covered:0;
  let s = Mqdp.Serve.session t ~id:"k" in
  ignore (Mqdp.Serve.exec_on t s "1 ADD a 60 delayed:2 1");
  let feed = Mqdp.Serve.exec_on t s "2 FEED 100 1.0 1" in
  (* kill -9: no drain, no snapshot, no compaction. *)
  Mqdp.Serve.shutdown t;
  let t2 = Mqdp.Serve.create serve_config in
  Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown t2) @@ fun () ->
  Mqdp.Serve.attach_journal ~fsync:false t2 ~dir ~covered:0;
  let s2 = Mqdp.Serve.session t2 ~id:"k" in
  Alcotest.(check int) "watermark survives the restart" 2
    (Mqdp.Serve.session_seq s2);
  Alcotest.(check (list string))
    "the unacked FEED retry replays the recorded response" feed
    (Mqdp.Serve.exec_on t2 s2 "2 FEED 100 1.0 1");
  (* applied=1, not 2: the replayed redo executed the FEED exactly once
     and the retry came from the cache. *)
  Alcotest.(check (list string)) "no double delivery"
    [ "3 OK applied=1 backlog=0" ]
    (Mqdp.Serve.exec_on t2 s2 "3 TICK")

(* Every byte boundary of the journal append, plus a crash inside
   compaction: whatever the death leaves on disk, reboot + verbatim retry
   must execute the command exactly once. *)
let test_serve_journal_crash_points () =
  let try_crash_at k =
    with_state_dir @@ fun dir ->
    let t = Mqdp.Serve.create serve_config in
    Mqdp.Serve.attach_journal ~fsync:false t ~dir ~covered:0;
    let s = Mqdp.Serve.session t ~id:"k" in
    ignore (Mqdp.Serve.exec_on t s "1 ADD a 60 delayed:2 1");
    Mqdp.Serve.set_journal_crash_after t (Some k);
    let crashed =
      match Mqdp.Serve.exec_on t s "2 FEED 100 1.0 1" with
      | _ -> false
      | exception Util.Fs.Crashed _ -> true
    in
    Mqdp.Serve.shutdown t;
    let t2 = Mqdp.Serve.create serve_config in
    Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown t2) @@ fun () ->
    Mqdp.Serve.attach_journal ~fsync:false t2 ~dir ~covered:0;
    let s2 = Mqdp.Serve.session t2 ~id:"k" in
    Alcotest.(check (list string))
      (Printf.sprintf "retry after a tear at byte %d answers once" k)
      [ "2 OK delivered=1 shed=0" ]
      (Mqdp.Serve.exec_on t2 s2 "2 FEED 100 1.0 1");
    Alcotest.(check (list string))
      (Printf.sprintf "exactly one delivery after a tear at byte %d" k)
      [ "3 OK applied=1 backlog=0" ]
      (Mqdp.Serve.exec_on t2 s2 "3 TICK");
    crashed
  in
  (* Small offsets always tear (the record is far longer); a huge one
     writes the record whole and must not crash. *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "crash_after %d tears the append" k)
        true (try_crash_at k))
    [ 0; 1; 2; 17; 18; 19; 30 ];
  Alcotest.(check bool) "a crash point past the record is a clean append"
    false
    (try_crash_at 1_000_000)

let test_serve_compaction_crash () =
  with_state_dir @@ fun dir ->
  let t = Mqdp.Serve.create serve_config in
  Mqdp.Serve.attach_journal ~fsync:false t ~dir ~covered:0;
  let s = Mqdp.Serve.session t ~id:"k" in
  ignore (Mqdp.Serve.exec_on t s "1 ADD a 60 delayed:2 1");
  ignore (Mqdp.Serve.exec_on t s "2 FEED 100 1.0 1");
  let covered = Mqdp.Serve.journal_gsn t in
  (* The compaction rewrite dies mid-write: the old journal must be
     intact, and a reboot from it loses nothing. *)
  (match Mqdp.Serve.compact_journal ~crash_after:9 t with
  | () -> Alcotest.fail "compaction crash_after did not crash"
  | exception Util.Fs.Crashed _ -> ());
  Mqdp.Serve.shutdown t;
  let t2 = Mqdp.Serve.create serve_config in
  Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown t2) @@ fun () ->
  ignore (Util.Fs.sweep_temps dir);
  Mqdp.Serve.attach_journal ~fsync:false t2 ~dir ~covered:0;
  let s2 = Mqdp.Serve.session t2 ~id:"k" in
  Alcotest.(check int) "watermark intact after the compaction crash" 2
    (Mqdp.Serve.session_seq s2);
  Alcotest.(check int) "gsn intact after the compaction crash" covered
    (Mqdp.Serve.journal_gsn t2);
  Alcotest.(check (list string)) "no delivery was lost or doubled"
    [ "3 OK applied=1 backlog=0" ]
    (Mqdp.Serve.exec_on t2 s2 "3 TICK")

(* Property: a session that lived through a daemon death and journal
   replay is bit-identical — every response, including the retried one —
   to the same script against an engine that never crashed (and never
   journaled). The seed drives both the script shape and where the death
   lands; half the deaths also tear the journal append itself. *)
let serve_replay_equiv =
  Helpers.qtest ~count:60 "journal replay is bit-identical to no crash"
    QCheck.(int_range 0 1_000_000)
  @@ fun seed ->
  let script_of rng =
    let n = 6 + Util.Rng.int rng 10 in
    List.init n (fun i ->
        let body =
          match Util.Rng.int rng 5 with
          | 0 when i = 0 -> "ADD a 60 delayed:2 1"
          | 0 -> Printf.sprintf "ADD p%d 60 instant 1,2" i
          | 1 | 2 ->
            Printf.sprintf "FEED %d %d.5 %d" (100 + i) i (1 + Util.Rng.int rng 2)
          | 3 -> "TICK"
          | _ -> if Util.Rng.bool rng then "REPORT a" else "PING"
        in
        Printf.sprintf "%d %s" (i + 1) body)
  in
  let rng = Util.Rng.create (0x5EED + seed) in
  let script = "1 ADD a 60 delayed:2 1" :: List.tl (script_of rng) in
  let die_at = Util.Rng.int rng (List.length script) in
  let tear = Util.Rng.bool rng in
  let baseline =
    let t = Mqdp.Serve.create serve_config in
    Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown t) @@ fun () ->
    let s = Mqdp.Serve.session t ~id:"q" in
    List.map (Mqdp.Serve.exec_on t s) script
  in
  let crashed =
    with_state_dir @@ fun dir ->
    let engine = ref (Mqdp.Serve.create serve_config) in
    Fun.protect ~finally:(fun () -> Mqdp.Serve.shutdown !engine) @@ fun () ->
    Mqdp.Serve.attach_journal ~fsync:false !engine ~dir ~covered:0;
    let session = ref (Mqdp.Serve.session !engine ~id:"q") in
    let reboot () =
      Mqdp.Serve.shutdown !engine;
      engine := Mqdp.Serve.create serve_config;
      ignore (Util.Fs.sweep_temps dir);
      Mqdp.Serve.attach_journal ~fsync:false !engine ~dir ~covered:0;
      session := Mqdp.Serve.session !engine ~id:"q"
    in
    List.mapi
      (fun i line ->
        if i = die_at && tear then
          Mqdp.Serve.set_journal_crash_after !engine (Some (Util.Rng.int rng 8));
        match Mqdp.Serve.exec_on !engine !session line with
        | response ->
          if i = die_at then begin
            (* Death between execution and acknowledgment: the retry must
               replay the recorded response. *)
            reboot ();
            Mqdp.Serve.exec_on !engine !session line
          end
          else response
        | exception Util.Fs.Crashed _ ->
          (* The append tore: reboot truncates it and the retry
             re-executes against replayed pre-command state. *)
          reboot ();
          Mqdp.Serve.exec_on !engine !session line)
      script
  in
  List.for_all2 (List.equal String.equal) baseline crashed

let suite =
  [
    Alcotest.test_case "profile offers, processes, reports" `Quick
      test_profile_offer_process;
    Alcotest.test_case "profile quarantines and revives without loss" `Quick
      test_profile_quarantine_and_revive;
    Alcotest.test_case "budget exhaustion is backpressure, not a crash" `Quick
      test_profile_budget_is_not_a_crash;
    Alcotest.test_case "profile blob round-trips bit-identically" `Quick
      test_profile_blob_roundtrip;
    Alcotest.test_case "shard sheds at capacity and frees after tick" `Quick
      test_shard_sheds_at_capacity;
    Alcotest.test_case "shard snapshot round-trips; corruption is refused" `Quick
      test_shard_snapshot_roundtrip_and_corruption;
    Alcotest.test_case "admission: duplicate, degrade, capacity" `Quick
      test_serve_admission;
    Alcotest.test_case "idempotent retry and stale-seq eviction" `Quick
      test_serve_idempotent_retry_and_stale_seq;
    Alcotest.test_case "request deadline produces ERR deadline" `Quick
      test_serve_request_deadline;
    Alcotest.test_case "feed fanout, shedding, and empty matches" `Quick
      test_serve_feed_fanout_and_shed;
    Alcotest.test_case "shard restarts preserve acknowledged posts" `Quick
      test_serve_restart_preserves_acked;
    Alcotest.test_case "quarantine sheds; RESTORE revives without loss" `Quick
      test_serve_quarantine_restore;
    Alcotest.test_case "STATS answers one JSON line" `Quick test_serve_stats_shape;
    Alcotest.test_case "session table: LRU cap, idle TTL, gauge" `Quick
      test_serve_session_bounds;
    Alcotest.test_case "journal recovery: watermark + cached responses" `Quick
      test_serve_journal_recovery;
    Alcotest.test_case "journal crash points: exactly-once at every byte"
      `Quick test_serve_journal_crash_points;
    Alcotest.test_case "compaction crash leaves the journal usable" `Quick
      test_serve_compaction_crash;
    serve_replay_equiv;
  ]
