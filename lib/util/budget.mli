(** Cooperative cancellation and resource-budget tokens.

    A budget bounds a computation along four axes at once: a wall-clock
    deadline (measured on the monotonic {!Timer} clock, so operator clock
    steps cannot extend or shrink it), a step budget in solver-defined work
    units, an allocation budget sampled from the GC's minor-allocation
    counter, and an explicit cancellation flag another domain may set at
    any time. Budgets are polled, never enforced preemptively: code under a
    budget calls {!step}/{!check} at loop granularity and stops itself.

    Tokens are safe to share across domains — the step counter and the
    cancellation flag are atomics — so a {!Pool} worker can poll the same
    budget as its submitter, and a cancellation from any domain is seen by
    all of them on their next poll.

    {!child} carves a sub-budget out of a parent: the child receives a
    fraction of the parent's remaining deadline and steps (never more than
    what remains), its steps are charged to the parent as well, and it
    inherits the parent's cancellation transitively. This is how a
    degradation ladder gives a speculative exact solver a bounded slice of
    the request budget without letting it starve the fallbacks. *)

type t

(** Why a budget stopped. Ordering is the priority of checks: an explicit
    cancellation wins over a passed deadline, which wins over an exceeded
    step budget, which wins over an exceeded allocation budget. *)
type stop_reason =
  | Cancelled
  | Deadline
  | Steps
  | Allocation

exception Exhausted of stop_reason

(** The shared no-op token: never exhausts, never counts (so threading it
    through hot loops costs a branch, not an atomic). The default for
    every [?budget] parameter. *)
val unlimited : t

(** [create ()] with no limits still counts steps and elapsed time —
    useful for measuring how much a computation would need.

    @param deadline wall-clock seconds from now
    @param max_steps solver-defined work units
    @param max_alloc_bytes bytes of (minor) allocation from now, sampled
      from [Gc.minor_words] — a cheap monotone proxy for allocation
      pressure, not an RSS bound *)
val create :
  ?deadline:float -> ?max_steps:int -> ?max_alloc_bytes:float -> unit -> t

(** [child ?fraction t] is a sub-budget holding [fraction] (default 0.5,
    clamped to (0, 1]) of [t]'s remaining deadline and steps, the whole of
    [t]'s remaining allocation, and [t]'s cancellation (cancelling the
    parent exhausts the child; cancelling the child leaves the parent
    alive). Steps spent by the child are also charged to [t]. A child of
    {!unlimited} is {!unlimited}. *)
val child : ?fraction:float -> t -> t

(** [cancel t] flags [t] (and therefore every child) as cancelled.
    Idempotent; cancelling {!unlimited} is a no-op. *)
val cancel : t -> unit

val is_cancelled : t -> bool

(** [poll t] is [Some reason] once any limit of [t] or of an ancestor has
    been reached. Exhaustion is sticky: once [poll] returns [Some], it
    never returns [None] again. *)
val poll : t -> stop_reason option

val should_stop : t -> bool

(** [check t] raises {!Exhausted} when [poll t] is [Some]. *)
val check : t -> unit

(** [add ?cost t] charges [cost] (default 1) steps to [t] and its
    ancestors without checking limits. *)
val add : ?cost:int -> t -> unit

(** [step ?cost t] is [add ?cost t; check t]. *)
val step : ?cost:int -> t -> unit

(** Steps charged to [t] so far (including by children). 0 for
    {!unlimited}. *)
val spent_steps : t -> int

(** Seconds since [t] was created. 0 for {!unlimited}. *)
val elapsed : t -> float

(** Seconds until the deadline (clamped at 0), when one is set. *)
val remaining : t -> float option

(** Steps left before the step limit (clamped at 0), when one is set. *)
val remaining_steps : t -> int option

(** Bytes of allocation left before the allocation limit (clamped at 0),
    when one is set. Takes the minimum over the ancestor chain. *)
val remaining_alloc : t -> float option

(** Whether any limit is set (a counting-only budget is not limited). *)
val limited : t -> bool

val reason_to_string : stop_reason -> string

(** One-line human description of the limits, for logs and reports. *)
val describe : t -> string

(** Spend snapshot as telemetry span attributes: steps spent, elapsed
    milliseconds, and whichever remaining limits are set. [[("budget",
    "unlimited")]] for {!unlimited}. Intended as the [?args] thunk of
    {!Telemetry.span} so a rung's span records what it cost. *)
val spend_attrs : t -> (string * string) list
