let lower_bound ~key xs x =
  let rec loop lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if key xs.(mid) >= x then loop lo mid else loop (mid + 1) hi
    end
  in
  loop 0 (Array.length xs)

let upper_bound ~key xs x =
  let rec loop lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if key xs.(mid) > x then loop lo mid else loop (mid + 1) hi
    end
  in
  loop 0 (Array.length xs)

let count_in_range ~key xs ~lo ~hi = upper_bound ~key xs hi - lower_bound ~key xs lo

let is_sorted ~cmp xs =
  let n = Array.length xs in
  let rec loop i = i >= n - 1 || (cmp xs.(i) xs.(i + 1) <= 0 && loop (i + 1)) in
  loop 0

(* Sift [a.(root)] down within [a.(0 .. hi-1)] under the max-heap order.
   Tail recursion, no closure, no allocation. *)
let rec heap_sift a hi root =
  let child = (2 * root) + 1 in
  if child < hi then begin
    let child =
      if child + 1 < hi && Array.unsafe_get a child < Array.unsafe_get a (child + 1)
      then child + 1
      else child
    in
    let r = Array.unsafe_get a root and c = Array.unsafe_get a child in
    if r < c then begin
      Array.unsafe_set a root c;
      Array.unsafe_set a child r;
      heap_sift a hi child
    end
  end

let sort_ints_prefix a len =
  if len < 0 || len > Array.length a then
    invalid_arg "Array_util.sort_ints_prefix: bad prefix length";
  for i = (len / 2) - 1 downto 0 do
    heap_sift a len i
  done;
  for i = len - 1 downto 1 do
    let t = a.(0) in
    a.(0) <- a.(i);
    a.(i) <- t;
    heap_sift a i 0
  done

let sorted_ints_of_prefix a len =
  if len < 0 || len > Array.length a then
    invalid_arg "Array_util.sorted_ints_of_prefix: bad prefix length";
  if len = 0 then []
  else begin
    let copy = Array.sub a 0 len in
    (* In-place heapsort: the whole call allocates the copy and the result
       cells, nothing else. (Stdlib [Array.sort] would cost ~4 extra words
       per element — its trickle-down signals termination by raising a
       [Bottom of int] exception.) *)
    sort_ints_prefix copy len;
    let acc = ref [] in
    for i = len - 1 downto 0 do
      let x = copy.(i) in
      match !acc with
      | y :: _ when y = x -> ()
      | _ -> acc := x :: !acc
    done;
    !acc
  end
