(** A bucket priority queue over integer keys with integer priorities —
    the greedy set-cover selection structure.

    Keys are [0 .. capacity - 1]; priorities are [1 .. max_prio]. The
    queue keeps one intrusive doubly-linked list per priority level over
    preallocated [int] arrays, so [push], [update], [remove] and
    [pop_max] allocate nothing.

    [pop_max] is deterministic: it returns the member with the highest
    priority, breaking ties toward the {e smallest key} — the canonical
    greedy tie rule, matching a full linear re-scan that keeps the first
    strict maximum.

    The structure is tuned for {e monotone} workloads, where priorities
    only decrease after insertion (gains in greedy set cover). The scan
    cursor then only descends, each level is put in key order at most
    once per visit, and the total pop cost over a drain is
    O(members + max_prio + sort of each visited level). Priority
    increases are still correct — they move the cursor back up — they are
    just not the fast path.

    Membership is bounded by construction: a key occupies at most one
    slot, so [length] never exceeds the number of live keys — there are
    no lazily-deleted stale entries to compact, unlike a heap of
    (priority, key) snapshots. *)

type t

(** [create ~capacity ~max_prio] is an empty queue admitting keys
    [0 .. capacity - 1] with priorities [1 .. max_prio]. Raises
    [Invalid_argument] when either is negative. Costs
    O(capacity + max_prio) words, allocated once here. *)
val create : capacity:int -> max_prio:int -> t

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool

(** [mem t key] — is [key] currently queued? *)
val mem : t -> int -> bool

(** [priority t key] is [key]'s current priority, or 0 when absent. *)
val priority : t -> int -> int

(** [push t ~key ~prio] inserts an absent key. Raises [Invalid_argument]
    when [key] is out of range or already queued, or when [prio] is
    outside [1 .. max_prio]. *)
val push : t -> key:int -> prio:int -> unit

(** [update t ~key ~prio] sets [key]'s priority: moves it when queued,
    pushes it when absent and [prio >= 1], removes it when queued and
    [prio <= 0]. The one call a greedy gain-sync loop needs. Raises
    [Invalid_argument] on an out-of-range key, or on [prio > max_prio]. *)
val update : t -> key:int -> prio:int -> unit

(** [remove t key] deletes [key] if queued; no-op otherwise. *)
val remove : t -> int -> unit

(** [pop_max t] removes and returns the member with the highest priority
    (smallest key on ties), or -1 when empty. Returns a bare [int] — no
    [option] box — so a solve loop popping per pick allocates nothing. *)
val pop_max : t -> int

(** [max_priority t] is the priority [pop_max] would return next, or 0
    when empty. Does not advance past empty levels permanently — the
    cursor position it settles is the same one [pop_max] would use. *)
val max_priority : t -> int

(** [clear t] empties the queue in O(high-water level + members) without
    releasing any storage, so a queue can be reused across solves with no
    per-solve allocation (the sliding-window greedy's steady state). *)
val clear : t -> unit
