(* Fixed-size Domain pool with chunked work distribution.

   One task runs at a time. A task is a range [0, total) cut into
   fixed-size chunks; workers (and the submitter) claim chunk indices from
   a shared atomic cursor and run them outside any lock. Completion is
   tracked under the pool mutex so the submitter can sleep on a condition
   variable instead of spinning. *)

type task = {
  run : int -> int -> unit;  (* half-open range [lo, hi) *)
  stop : unit -> bool;  (* cooperative cancellation; polled before each chunk *)
  chunk : int;
  total : int;
  num_chunks : int;
  next : int Atomic.t;  (* next chunk index to claim *)
  failed : bool Atomic.t;  (* set on first exception; later chunks skip *)
  cancelled : bool Atomic.t;  (* set once [stop] fires; later chunks skip *)
  mutable completed : int;  (* chunks executed; guarded by the pool mutex *)
  mutable error : (exn * Printexc.raw_backtrace) option;  (* guarded *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* workers: a task arrived or shutdown started *)
  finished : Condition.t;  (* submitter: the current task completed *)
  mutable current : task option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

(* Claim and execute chunks until the cursor is exhausted; returns how many
   chunks this domain executed. After a failure or a cancellation the
   remaining chunks are still claimed (so accounting reaches [num_chunks])
   but their bodies are skipped — a cancelled caller pays for at most the
   chunks already in flight, never for the queued remainder. The
   exception stored in [task.error] is re-raised as-is on the submitter
   (never wrapped), so a payload-carrying exception such as
   [Budget_exceeded] reaches the caller with its partial state intact. *)
let m_chunks = Telemetry.counter "pool.chunks"
let m_tasks = Telemetry.counter "pool.tasks"
let m_busy_ns = Telemetry.counter "pool.busy_ns"
let m_queue_depth = Telemetry.gauge "pool.queue_depth"

(* Instrumented chunk execution: a "pool.chunk" span per chunk (visible in
   the trace, one row per worker domain), total busy nanoseconds across
   workers, and the queue depth at claim time. All behind one enabled
   check so the disabled path is [task.run] and a branch. *)
let run_chunk task lo hi =
  if Telemetry.enabled () then begin
    Telemetry.incr m_chunks;
    Telemetry.set m_queue_depth (max 0 (task.num_chunks - Atomic.get task.next));
    let t0 = Timer.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Telemetry.add m_busy_ns (Int64.to_int (Int64.sub (Timer.now_ns ()) t0)))
      (fun () -> Telemetry.span ~name:"pool.chunk" (fun () -> task.run lo hi))
  end
  else task.run lo hi

let execute pool task =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add task.next 1 in
    if c >= task.num_chunks then continue := false
    else begin
      incr executed;
      if not (Atomic.get task.failed || Atomic.get task.cancelled) then begin
        try
          if task.stop () then Atomic.set task.cancelled true
          else run_chunk task (c * task.chunk) (min task.total ((c + 1) * task.chunk))
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set task.failed true;
          Mutex.lock pool.mutex;
          if task.error = None then task.error <- Some (e, bt);
          Mutex.unlock pool.mutex
      end
    end
  done;
  !executed

let finish_chunks pool task executed =
  Mutex.lock pool.mutex;
  task.completed <- task.completed + executed;
  if task.completed >= task.num_chunks then Condition.broadcast pool.finished;
  Mutex.unlock pool.mutex

let worker_loop pool =
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while
      (not pool.stop)
      && (match pool.current with
         | Some task -> Atomic.get task.next >= task.num_chunks
         | None -> true)
    do
      Condition.wait pool.wake pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let task = Option.get pool.current in
      Mutex.unlock pool.mutex;
      let executed = execute pool task in
      finish_chunks pool task executed
    end
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      finished = Condition.create ();
      current = None;
      stop = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let default_chunk t n = max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs))

let never_stop () = false

let parallel_iter_chunks t ?chunk ?(stop = never_stop) n ~f =
  if n < 0 then invalid_arg "Pool.parallel_iter_chunks: negative n";
  if n > 0 && not (stop ()) then begin
    let chunk =
      match chunk with
      | None -> default_chunk t n
      | Some c when c < 1 -> invalid_arg "Pool.parallel_iter_chunks: chunk < 1"
      | Some c -> c
    in
    let num_chunks = (n + chunk - 1) / chunk in
    (* Degrade to inline execution when parallelism cannot help (or would
       deadlock: nested submission while a task is in flight). *)
    let inline =
      num_chunks = 1 || Array.length t.workers = 0
      ||
      (Mutex.lock t.mutex;
       let busy = t.stop || t.current <> None in
       Mutex.unlock t.mutex;
       busy)
    in
    if inline then f 0 n
    else begin
      let task =
        {
          run = f;
          stop;
          chunk;
          total = n;
          num_chunks;
          next = Atomic.make 0;
          failed = Atomic.make false;
          cancelled = Atomic.make false;
          completed = 0;
          error = None;
        }
      in
      Mutex.lock t.mutex;
      if t.stop || t.current <> None then begin
        (* Lost the race to another submitter: run inline instead. *)
        Mutex.unlock t.mutex;
        f 0 n
      end
      else begin
        t.current <- Some task;
        Telemetry.incr m_tasks;
        Condition.broadcast t.wake;
        Mutex.unlock t.mutex;
        let executed = execute t task in
        Mutex.lock t.mutex;
        task.completed <- task.completed + executed;
        while task.completed < task.num_chunks do
          Condition.wait t.finished t.mutex
        done;
        t.current <- None;
        Mutex.unlock t.mutex;
        match task.error with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

let parallel_for t ?chunk ?stop n ~f =
  parallel_iter_chunks t ?chunk ?stop n ~f:(fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_map t ?chunk ~f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ?chunk n ~f:(fun i -> out.(i) <- Some (f xs.(i)));
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      out
  end
