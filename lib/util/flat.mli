(** Off-heap growable flat arrays on [Bigarray], the storage layer of the
    sliding-window coverage geometry ({!Mqdp.Window_index}).

    Three container shapes — boxed-free ints, float64s, and byte flags —
    plus a bit-packed set over int words. All data lives outside the OCaml
    heap: the GC never scans it, steady-state mutation allocates nothing,
    and a buffer can be read concurrently from several {!Pool} domains
    while a single writer owns the mutations (the usual publish-then-read
    discipline).

    Each container is an amortized-growable vector ([push] doubles on
    overflow) with a front-compaction primitive ([drop_front]) so a
    sliding window can shed its expired prefix by blitting the live
    region to index 0 — the owner keeps an absolute base sequence number
    and addresses entries as [seq - base], which makes stored
    cross-references stable across compactions.

    Reads and writes are bounds-checked by Bigarray itself; the [_u]
    variants are unchecked and reserved for kernel inner loops whose
    bounds were validated on entry. *)

module Ints : sig
  type t

  (** [create ()] — an empty vector with a small initial capacity. *)
  val create : unit -> t

  val length : t -> int
  val capacity : t -> int

  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val get_u : t -> int -> int
  val set_u : t -> int -> int -> unit

  (** [push t v] appends, doubling the backing buffer when full. *)
  val push : t -> int -> unit

  (** [ensure t n] grows the backing buffer so [capacity t >= n] and
      raises the length to [n] (new cells uninitialized). Never shrinks. *)
  val ensure : t -> int -> unit

  (** [drop_front t k] discards the first [k] entries by blitting the
      live suffix to index 0. O(length - k). *)
  val drop_front : t -> int -> unit

  val clear : t -> unit

  (** [fill t v] overwrites every live entry with [v]. *)
  val fill : t -> int -> unit
end

module Floats : sig
  type t

  type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  val create : unit -> t
  val length : t -> int
  val capacity : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val get_u : t -> int -> float
  val set_u : t -> int -> float -> unit
  val push : t -> float -> unit
  val ensure : t -> int -> unit
  val drop_front : t -> int -> unit
  val clear : t -> unit

  (** [unsafe_buf t] is the current backing store, an escape hatch for
      hot loops that must not allocate even without cross-module inlining
      (the non-flambda dev profile compiles with [-opaque], so [get_u]
      boxes its float return and [set_u] its float argument at the call
      boundary; [Bigarray.Array1.unsafe_get]/[unsafe_set] are compiler
      primitives and never box). The handle is invalidated by any growth
      ([push]/[ensure] past {!capacity}) — re-fetch after growing, never
      cache across pushes — and ignores {!length}: the caller owns bounds
      checking. [drop_front] and [clear] keep the same store. *)
  val unsafe_buf : t -> buf
end

(** One byte per entry — the compaction-friendly shape for per-slot marks
    (front-dropping a bit-packed set would need sub-word shifts). *)
module Flags : sig
  type t

  val create : unit -> t
  val length : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val get_u : t -> int -> bool
  val set_u : t -> int -> bool -> unit

  (** [push t v] appends one flag. *)
  val push : t -> bool -> unit

  val ensure : t -> int -> unit
  val drop_front : t -> int -> unit
  val clear : t -> unit

  (** [reset t] clears every live flag to [false]. *)
  val reset : t -> unit
end

(** A fixed-origin bit set packed 62 bits per off-heap word — the
    per-solve covered scratch. Not front-compactable; [reset] + reuse. *)
module Bits : sig
  type t

  val create : unit -> t

  (** [reset t n] sizes the set for indices [0 .. n-1] and clears it.
      O(words); allocation-free once the capacity has been reached. *)
  val reset : t -> int -> unit

  val get : t -> int -> bool

  (** [set t i] sets bit [i] (must be below the [reset] size). *)
  val set : t -> int -> unit
end
