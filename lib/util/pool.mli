(** A reusable fixed-size worker pool over OCaml 5 [Domain]s.

    The pool owns [jobs - 1] worker domains; the submitting domain is the
    remaining worker, so a pool of size [jobs] applies [jobs]-way
    parallelism with no oversubscription. Work is distributed as contiguous
    index chunks claimed from a shared atomic cursor — no work stealing, no
    per-item locking — which keeps the write path of callers lock-free as
    long as distinct indices touch distinct memory.

    Determinism contract: the primitives below never reorder results. Each
    input index writes only its own output slot, so for any pure (or
    slot-disjoint) [f] the result is identical to a sequential run
    regardless of [jobs], chunk size, or scheduling.

    Exceptions raised inside a task are caught on the worker, the first one
    wins, remaining chunks are skipped, and the exception is re-raised (with
    its backtrace) on the submitting domain once the task has quiesced. The
    exception object is never wrapped or rebuilt, so payload-carrying
    exceptions (e.g. a [Budget_exceeded] with salvaged partial state)
    arrive intact.

    Cooperative cancellation: iteration primitives accept [?stop], polled
    once before each chunk runs. Once it returns [true], every
    queued-but-unstarted chunk is skipped (on all workers) and the call
    returns normally having executed only a subset of the range — the
    caller is responsible for polling the same condition (typically a
    {!Budget}) after the call and discarding the partial results. [stop]
    must be cheap, thread-safe, and must not raise; a sticky condition
    (one that never goes back to [false]) is required for the caller-side
    re-check to be sound.

    A pool with [jobs = 1] spawns no domains and runs everything inline —
    it is behaviourally and performance-wise the sequential code path.
    Submitting from inside a running task (nested parallelism) degrades to
    inline sequential execution rather than deadlocking. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains.
    Raises [Invalid_argument] when [jobs < 1]. *)
val create : jobs:int -> t

(** Parallelism width the pool was created with. *)
val jobs : t -> int

(** [shutdown t] joins the worker domains. Idempotent; using the pool after
    shutdown runs tasks inline. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, including on exceptions. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [parallel_iter_chunks t ?chunk ?stop n ~f] calls [f lo hi] over disjoint
    ranges [\[lo, hi)] partitioning [\[0, n)]. [chunk] is the maximum range
    length (default: [n] split into ~4 chunks per worker). [f] must write
    only state owned by its range. [stop] (default: never) cancels
    queued-but-unstarted chunks; see the cancellation note above. *)
val parallel_iter_chunks :
  t -> ?chunk:int -> ?stop:(unit -> bool) -> int -> f:(int -> int -> unit) -> unit

(** [parallel_for t ?chunk ?stop n ~f] is {!parallel_iter_chunks} with [f]
    called once per index. *)
val parallel_for : t -> ?chunk:int -> ?stop:(unit -> bool) -> int -> f:(int -> unit) -> unit

(** [parallel_map t ?chunk ~f xs] maps [f] over [xs]; [f xs.(i)] runs in
    parallel but lands in slot [i], so the result equals
    [Array.map f xs]. *)
val parallel_map : t -> ?chunk:int -> f:('a -> 'b) -> 'a array -> 'b array
