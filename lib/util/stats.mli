(** Streaming and batch descriptive statistics. *)

(** Running mean/variance accumulator (Welford's algorithm). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Sample variance (divides by n-1); 0 for fewer than two samples. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end

(** [mean xs] of a float array; 0 when empty. *)
val mean : float array -> float

(** [stddev xs] sample standard deviation; 0 when fewer than two samples. *)
val stddev : float array -> float

(** [percentile p xs] for [p] in [0, 100] by linear interpolation on the
    sorted copy of [xs] (sorted with [Float.compare]). Raises
    [Invalid_argument] on an empty array, an out-of-range [p], or any NaN
    in [xs] — NaN has no rank. *)
val percentile : float -> float array -> float

(** [median xs] is [percentile 50. xs]. *)
val median : float array -> float

(** [histogram ~buckets ~lo ~hi xs] counts values into [buckets] equal-width
    bins over [lo, hi); values outside the range are clamped into the first
    or last bin. Raises [Invalid_argument] if [buckets <= 0], [hi <= lo],
    or any value is NaN. *)
val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
