type stop_reason =
  | Cancelled
  | Deadline
  | Steps
  | Allocation

exception Exhausted of stop_reason

(* [counting = false] marks the shared [unlimited] token: every operation
   on it short-circuits, so threading a budget through a hot loop costs
   one branch when nobody asked for governance. *)
type t = {
  counting : bool;
  start_ns : int64;
  deadline_ns : int64 option;  (* absolute, monotonic *)
  max_steps : int option;
  steps : int Atomic.t;  (* shared across domains; includes children *)
  max_alloc_bytes : float option;
  alloc_base : float;  (* allocated_bytes at creation *)
  cancelled : bool Atomic.t;
  parent : t option;
}

let bytes_per_word = float_of_int (Sys.word_size / 8)

(* Minor-heap allocation since program start. [Gc.minor_words] is an
   unboxed noalloc external, so polling it does not itself allocate. *)
let allocated_bytes () = Gc.minor_words () *. bytes_per_word

let make ?deadline_ns ?max_steps ?max_alloc_bytes ?parent ~counting () =
  {
    counting;
    start_ns = Timer.now_ns ();
    deadline_ns;
    max_steps;
    steps = Atomic.make 0;
    max_alloc_bytes;
    alloc_base = allocated_bytes ();
    cancelled = Atomic.make false;
    parent;
  }

let unlimited = make ~counting:false ()

let ns_of_seconds s = Int64.of_float (Float.max 0. s *. 1e9)

let create ?deadline ?max_steps ?max_alloc_bytes () =
  let deadline_ns =
    Option.map (fun s -> Int64.add (Timer.now_ns ()) (ns_of_seconds s)) deadline
  in
  (match max_steps with
  | Some s when s < 0 -> invalid_arg "Budget.create: max_steps < 0"
  | _ -> ());
  make ?deadline_ns ?max_steps ?max_alloc_bytes ~counting:true ()

let limited t =
  t.counting
  && (t.deadline_ns <> None || t.max_steps <> None || t.max_alloc_bytes <> None
     || t.parent <> None)

let cancel t = if t.counting then Atomic.set t.cancelled true

let rec is_cancelled t =
  t.counting
  && (Atomic.get t.cancelled
     || match t.parent with Some p -> is_cancelled p | None -> false)

let spent_steps t = if t.counting then Atomic.get t.steps else 0

let elapsed t =
  if t.counting then Timer.elapsed_since t.start_ns else 0.

let remaining t =
  match t.deadline_ns with
  | None -> None
  | Some d ->
    Some (Float.max 0. (Int64.to_float (Int64.sub d (Timer.now_ns ())) /. 1e9))

let remaining_steps t =
  match t.max_steps with
  | None -> None
  | Some m -> Some (max 0 (m - Atomic.get t.steps))

let own_remaining_alloc t =
  match t.max_alloc_bytes with
  | None -> None
  | Some m -> Some (Float.max 0. (m -. (allocated_bytes () -. t.alloc_base)))

let rec remaining_alloc t =
  let up = match t.parent with Some p -> remaining_alloc p | None -> None in
  match (own_remaining_alloc t, up) with
  | None, r | r, None -> r
  | Some a, Some b -> Some (Float.min a b)

(* Checks in priority order; sticky because every underlying condition is
   monotone (the clock, the step counter, and minor_words only advance,
   and cancellation is never cleared). *)
let rec poll t =
  if not t.counting then None
  else if Atomic.get t.cancelled then Some Cancelled
  else begin
    let deadline_hit =
      match t.deadline_ns with
      | Some d -> Timer.now_ns () >= d
      | None -> false
    in
    if deadline_hit then Some Deadline
    else begin
      let steps_hit =
        match t.max_steps with Some m -> Atomic.get t.steps >= m | None -> false
      in
      if steps_hit then Some Steps
      else begin
        let alloc_hit =
          match t.max_alloc_bytes with
          | Some m -> allocated_bytes () -. t.alloc_base > m
          | None -> false
        in
        if alloc_hit then Some Allocation
        else match t.parent with Some p -> poll p | None -> None
      end
    end
  end

let should_stop t = poll t <> None

let check t = match poll t with None -> () | Some reason -> raise (Exhausted reason)

let rec add ?(cost = 1) t =
  if t.counting then begin
    ignore (Atomic.fetch_and_add t.steps cost);
    match t.parent with Some p -> add ~cost p | None -> ()
  end

let step ?cost t =
  add ?cost t;
  check t

let child ?(fraction = 0.5) t =
  if not t.counting then unlimited
  else begin
    let fraction = Float.min 1. (Float.max Float.min_float fraction) in
    let deadline_ns =
      Option.map
        (fun r -> Int64.add (Timer.now_ns ()) (ns_of_seconds (r *. fraction)))
        (remaining t)
    in
    let max_steps =
      (* Floor at one step: [int_of_float] truncates small remainders to 0,
         which made the child trip [Steps] at its very first poll (0 >= 0)
         — the Supervisor ladder could then skip every speculative rung
         with budget still left. A 1-step child is safe even when the
         parent is at 0: child steps are charged upward, so the parent's
         own limit still trips on the next poll. *)
      Option.map
        (fun r -> max 1 (int_of_float (float_of_int r *. fraction)))
        (remaining_steps t)
    in
    let max_alloc_bytes = own_remaining_alloc t in
    make ?deadline_ns ?max_steps ?max_alloc_bytes ~parent:t ~counting:true ()
  end

let reason_to_string = function
  | Cancelled -> "cancelled"
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Allocation -> "allocation"

let spend_attrs t =
  if not t.counting then [ ("budget", "unlimited") ]
  else begin
    let base =
      [
        ("budget.steps", string_of_int (spent_steps t));
        ("budget.elapsed_ms", Printf.sprintf "%.3f" (elapsed t *. 1e3));
      ]
    in
    let opt name fmt r = Option.map (fun v -> (name, fmt v)) r in
    base
    @ List.filter_map Fun.id
        [
          opt "budget.remaining_ms" (fun r -> Printf.sprintf "%.3f" (r *. 1e3)) (remaining t);
          opt "budget.remaining_steps" string_of_int (remaining_steps t);
          opt "budget.remaining_alloc" (Printf.sprintf "%.0f") (remaining_alloc t);
          (if is_cancelled t then Some ("budget.cancelled", "true") else None);
        ]
  end

let describe t =
  if not (limited t) then "unlimited"
  else begin
    let parts =
      List.filter_map Fun.id
        [
          Option.map (fun r -> Printf.sprintf "deadline %.1fms left" (r *. 1e3)) (remaining t);
          Option.map (fun r -> Printf.sprintf "%d steps left" r) (remaining_steps t);
          Option.map (fun r -> Printf.sprintf "%.0f alloc bytes left" r) (remaining_alloc t);
          (if is_cancelled t then Some "cancelled" else None);
        ]
    in
    if parts = [] then "unlimited" else String.concat ", " parts
  end
