(* One intrusive doubly-linked list per priority level, all over
   preallocated int arrays — no per-operation allocation anywhere.

   [cursor] is a high-water mark: no member sits above it. Pops descend
   it to the first non-empty level; insertions raise it when needed. On a
   monotone workload (priorities only decrease) the cursor only descends,
   so each level is visited once per drain.

   Determinism: [pop_max] must break priority ties toward the smallest
   key. Lists are push-front (O(1)) until the cursor actually lands on a
   level; at that moment the level is put in ascending key order once
   ([sorted] remembers which level that was) and kept sorted by
   positional insertion while it remains the cursor level. On a monotone
   workload nothing is ever inserted at the cursor level after the sort —
   a key can only arrive there by *decreasing* from a higher level, and
   every higher level is already empty — so the sort is once per level
   and the sorted insertion path is only exercised by non-monotone use. *)

type t = {
  capacity : int;
  max_prio : int;
  head : int array;  (* level -> first key, -1 when empty *)
  nxt : int array;  (* key -> next key in its level, -1 at the tail *)
  prv : int array;  (* key -> previous key, -1 at the head *)
  prio : int array;  (* key -> its level, -1 when absent *)
  mutable size : int;
  mutable cursor : int;  (* every member's priority is <= cursor *)
  mutable sorted : int;  (* the level currently in ascending key order *)
  scratch : int array;  (* merge-sort ping/pong buffers *)
  scratch2 : int array;
}

let create ~capacity ~max_prio =
  if capacity < 0 then invalid_arg "Bucket_queue.create: negative capacity";
  if max_prio < 0 then invalid_arg "Bucket_queue.create: negative max_prio";
  {
    capacity;
    max_prio;
    head = Array.make (max_prio + 1) (-1);
    nxt = Array.make capacity (-1);
    prv = Array.make capacity (-1);
    prio = Array.make capacity (-1);
    size = 0;
    cursor = 0;
    sorted = -1;
    scratch = Array.make capacity 0;
    scratch2 = Array.make capacity 0;
  }

let capacity t = t.capacity
let length t = t.size
let is_empty t = t.size = 0

let check_key t key name =
  if key < 0 || key >= t.capacity then
    invalid_arg ("Bucket_queue." ^ name ^ ": key out of range")

let mem t key =
  check_key t key "mem";
  t.prio.(key) >= 0

let priority t key =
  check_key t key "priority";
  let p = t.prio.(key) in
  if p < 0 then 0 else p

let unlink t key =
  let p = t.prv.(key) and n = t.nxt.(key) in
  if p >= 0 then t.nxt.(p) <- n else t.head.(t.prio.(key)) <- n;
  if n >= 0 then t.prv.(n) <- p;
  t.prio.(key) <- -1;
  t.size <- t.size - 1

let link_front t key level =
  let h = t.head.(level) in
  t.nxt.(key) <- h;
  t.prv.(key) <- -1;
  if h >= 0 then t.prv.(h) <- key;
  t.head.(level) <- key;
  t.prio.(key) <- level;
  t.size <- t.size + 1

(* Positional insert keeping the level in ascending key order — only used
   while [level = t.sorted]. *)
let link_sorted t key level =
  let h = t.head.(level) in
  if h < 0 || key < h then link_front t key level
  else begin
    let cur = ref h in
    while t.nxt.(!cur) >= 0 && t.nxt.(!cur) < key do
      cur := t.nxt.(!cur)
    done;
    let n = t.nxt.(!cur) in
    t.nxt.(!cur) <- key;
    t.prv.(key) <- !cur;
    t.nxt.(key) <- n;
    if n >= 0 then t.prv.(n) <- key;
    t.prio.(key) <- level;
    t.size <- t.size + 1
  end

let link t key level =
  if level > t.cursor then t.cursor <- level;
  if level = t.sorted then link_sorted t key level else link_front t key level

let push t ~key ~prio =
  check_key t key "push";
  if t.prio.(key) >= 0 then invalid_arg "Bucket_queue.push: key already queued";
  if prio < 1 || prio > t.max_prio then
    invalid_arg "Bucket_queue.push: priority out of range";
  link t key prio

let update t ~key ~prio =
  check_key t key "update";
  if prio > t.max_prio then invalid_arg "Bucket_queue.update: priority out of range";
  let current = t.prio.(key) in
  if current >= 0 then begin
    if prio <> current then begin
      unlink t key;
      if prio >= 1 then link t key prio
    end
  end
  else if prio >= 1 then link t key prio

let remove t key =
  check_key t key "remove";
  if t.prio.(key) >= 0 then unlink t key

(* Put level [b]'s list into ascending key order: unload it into
   [scratch], bottom-up merge sort across the two preallocated buffers,
   relink. Allocation-free. *)
let sort_level t b =
  let a = t.scratch in
  let m = ref 0 in
  let k = ref t.head.(b) in
  while !k >= 0 do
    a.(!m) <- !k;
    incr m;
    k := t.nxt.(!k)
  done;
  let m = !m in
  let src = ref t.scratch and dst = ref t.scratch2 in
  let width = ref 1 in
  while !width < m do
    let s = !src and d = !dst in
    let i = ref 0 in
    while !i < m do
      let lo = !i in
      let mid = min m (lo + !width) in
      let hi = min m (lo + (2 * !width)) in
      let l = ref lo and r = ref mid and o = ref lo in
      while !l < mid && !r < hi do
        if s.(!l) <= s.(!r) then begin
          d.(!o) <- s.(!l);
          incr l
        end
        else begin
          d.(!o) <- s.(!r);
          incr r
        end;
        incr o
      done;
      while !l < mid do
        d.(!o) <- s.(!l);
        incr l;
        incr o
      done;
      while !r < hi do
        d.(!o) <- s.(!r);
        incr r;
        incr o
      done;
      i := hi
    done;
    let tmp = !src in
    src := !dst;
    dst := tmp;
    width := 2 * !width
  done;
  let a = !src in
  if m > 0 then begin
    t.head.(b) <- a.(0);
    t.prv.(a.(0)) <- -1;
    for i = 0 to m - 2 do
      t.nxt.(a.(i)) <- a.(i + 1);
      t.prv.(a.(i + 1)) <- a.(i)
    done;
    t.nxt.(a.(m - 1)) <- -1
  end;
  t.sorted <- b

(* Descend the cursor to the first non-empty level. Caller guarantees the
   queue is non-empty, so the loop terminates at a level >= 1. *)
let settle t =
  while t.head.(t.cursor) < 0 do
    t.cursor <- t.cursor - 1
  done

let pop_max t =
  if t.size = 0 then -1
  else begin
    settle t;
    if t.sorted <> t.cursor then sort_level t t.cursor;
    let k = t.head.(t.cursor) in
    unlink t k;
    k
  end

let max_priority t =
  if t.size = 0 then 0
  else begin
    settle t;
    t.cursor
  end

(* Every member's priority is <= cursor (the high-water invariant), so
   walking levels 0..cursor visits every queued key; levels above the
   cursor are already empty. *)
let clear t =
  for level = 0 to t.cursor do
    let k = ref t.head.(level) in
    while !k >= 0 do
      t.prio.(!k) <- -1;
      k := t.nxt.(!k)
    done;
    t.head.(level) <- -1
  done;
  t.size <- 0;
  t.cursor <- 0;
  t.sorted <- -1
