(** Byte-level plumbing for the network transport.

    {!Buf} is a contiguous byte queue — append at the back, consume at the
    front — used for both sides of a connection: accumulated input waiting
    for a newline, and rendered responses waiting for the socket to accept
    them. It is deliberately dumb: no framing, no caps. The framing policy
    (line extraction, the max-line cap, backpressure bounds) lives in
    {!Mqdp.Transport}, which is sans-IO and therefore testable without a
    socket in sight.

    [read_into] and [write_from] wrap the non-blocking [Unix] calls into
    total functions: every outcome a hostile peer can cause — would-block,
    clean close, reset mid-transfer, interrupted syscall — comes back as a
    constructor, never an exception, so the event loop's per-connection
    handling cannot forget a case. *)

module Buf : sig
  type t

  (** [create ?initial ()] — an empty queue. [initial] is the starting
      backing-store size (default 256); it grows by doubling. *)
  val create : ?initial:int -> unit -> t

  (** Bytes currently queued. *)
  val length : t -> int

  val is_empty : t -> bool
  val add_string : t -> string -> unit
  val add_subbytes : t -> Bytes.t -> pos:int -> len:int -> unit

  (** [peek t] — the queued bytes as a contiguous [(bytes, pos, len)]
      view, or [None] when empty. Valid until the next mutation. *)
  val peek : t -> (Bytes.t * int * int) option

  (** [drop t n] — consume the first [n] queued bytes. Raises
      [Invalid_argument] when [n] exceeds {!length}. *)
  val drop : t -> int -> unit

  (** [index_from t ~from c] — offset of the first occurrence of [c] at
      queue offset [>= from], or [-1]. [from] past the end is allowed (so
      an incremental scanner can remember where it stopped). *)
  val index_from : t -> from:int -> char -> int

  (** [sub_string t ~pos ~len] — copy of a queued range. Raises
      [Invalid_argument] out of range. *)
  val sub_string : t -> pos:int -> len:int -> string

  val clear : t -> unit
end

(** Outcome of one non-blocking read: [`Data n] filled the first [n] bytes
    of the scratch buffer, [`Eof] is an orderly shutdown, [`Again] means
    try later ([EAGAIN]/[EWOULDBLOCK]/[EINTR]), [`Closed] is a hard
    failure (reset, broken pipe, bad descriptor) — drop the connection. *)
val read_into :
  Unix.file_descr -> Bytes.t -> [ `Data of int | `Eof | `Again | `Closed ]

(** Outcome of one non-blocking write of [buf.[pos..pos+len)]. *)
val write_from :
  Unix.file_descr -> Bytes.t -> pos:int -> len:int ->
  [ `Wrote of int | `Again | `Closed ]

(** [flush_buf fd buf] — write as much of [buf] as the socket accepts,
    dropping written bytes from the queue. [`Again] when the socket
    stopped accepting with bytes still queued; [`Done] when the queue
    emptied; [`Closed] on a hard failure. *)
val flush_buf : Unix.file_descr -> Buf.t -> [ `Done | `Again | `Closed ]
