module Running = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

let percentile p xs =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0, 100]";
  (* NaN has no rank: polymorphic compare used to sort it arbitrarily and
     silently poison the interpolation. Reject it instead. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN input")
    xs;
  let sorted = Array.copy xs in
  (* [Float.compare], not polymorphic [compare]: unboxed comparisons in
     the bench hot path, and a total order we actually specified. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile 50. xs

let histogram ~buckets ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  let bucket_of x =
    (* [int_of_float nan] is undefined (it happened to land in bucket 0,
       silently skewing the histogram); reject NaN like [percentile]. *)
    if Float.is_nan x then invalid_arg "Stats.histogram: NaN input";
    let b = int_of_float ((x -. lo) /. width) in
    if b < 0 then 0 else if b >= buckets then buckets - 1 else b
  in
  Array.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) xs;
  counts
