(** Process-wide observability: counters, gauges, log-bucketed latency
    histograms, and span tracing.

    The registry is a single process-global namespace. Handles ({!counter},
    {!gauge}, {!histogram}) are interned by name: the first call registers,
    later calls return the same handle, so modules can declare their
    metrics at top level and share them across domains. All mutation is
    atomic — counters and histogram buckets are exact under {!Pool}
    parallelism, and {!snapshot} is deterministic (name-sorted) for any
    interleaving that produced the same totals.

    Telemetry is disabled by default. When disabled, every recording
    operation is one atomic load and a branch — no allocation, no clock
    read, no sink call — so instrumentation can live in solver hot loops
    permanently. {!enable} flips the whole subsystem on; the recorded
    covers of every solver are bit-identical either way (enforced by the
    fuzzer), because telemetry never feeds back into algorithm state.

    Spans measure a region on the monotonic {!Timer} clock. [span ~name f]
    runs [f], records its duration into the histogram ["span." ^ name],
    and reports a completed-span event to the current {!sink}. Spans nest:
    the per-domain depth is tracked through [Domain.DLS], so concurrent
    {!Pool} workers each get their own stack. A span closes (and reports)
    even when [f] raises — budget-exhaustion exceptions still produce
    trace events. *)

type counter
type gauge
type histogram

(** {1 Global switch} *)

val enabled : unit -> bool

(** [enable ()] turns recording on process-wide (all domains). *)
val enable : unit -> unit

val disable : unit -> unit

(** {1 Counters} — monotone event counts. *)

(** [counter name] interns the counter [name]. *)
val counter : string -> counter

(** [incr c] adds 1 when enabled; a no-op (one branch) when disabled. *)
val incr : counter -> unit

(** [add c n] adds [n] when enabled. *)
val add : counter -> int -> unit

val counter_value : counter -> int

(** {1 Gauges} — instantaneous integer levels (queue depths, breaker
    state). *)

val gauge : string -> gauge

(** [set g v] stores [v] when enabled. *)
val set : gauge -> int -> unit

val gauge_value : gauge -> int

(** {1 Histograms} — log-bucketed latency distributions.

    Buckets are geometric with ratio 2{^1/8} (≈ 9% wide) spanning 1 ns to
    ≈ 18 minutes; quantiles read from the buckets are exact in count and
    within one bucket (± ≈ 5%) in value. *)

val histogram : string -> histogram

(** [observe h seconds] records one sample when enabled. Non-finite and
    negative samples clamp into the extreme buckets. *)
val observe : histogram -> float -> unit

(** [observe_ns h ns] records a sample given in integer nanoseconds. *)
val observe_ns : histogram -> int64 -> unit

val count : histogram -> int

(** Total of all recorded samples, in seconds (ns resolution). *)
val sum : histogram -> float

(** [quantile h p] for [p] in [0, 100]: the representative value (geometric
    bucket midpoint) of the bucket holding the [p]-th percentile sample.
    0 when the histogram is empty. Raises [Invalid_argument] on an
    out-of-range [p]. *)
val quantile : histogram -> float -> float

(** [reset_histogram h] zeroes [h]'s buckets and totals (registration
    kept) — for per-row reuse in the bench harness. *)
val reset_histogram : histogram -> unit

(** {1 Spans} *)

(** A sink consumes completed-span events. One function record, so the
    enabled hot path pays at most one indirect call per span close.
    [depth] is the nesting depth on the reporting domain (0 = root);
    [args] are the key/value attributes captured at close. *)
type sink = {
  on_span :
    name:string ->
    depth:int ->
    start_ns:int64 ->
    dur_ns:int64 ->
    args:(string * string) list ->
    unit;
}

(** Discards every event. The default sink. *)
val null_sink : sink

val set_sink : sink -> unit

(** [span ?args ~name f] times [f] on the monotonic clock, records the
    duration into histogram ["span." ^ name], and reports one event to the
    sink. [args] is evaluated at span close (so it can snapshot state the
    region produced, e.g. budget spend). When telemetry is disabled this
    is [f ()] after one branch. Exceptions propagate after the span is
    recorded. *)
val span : ?args:(unit -> (string * string) list) -> name:string -> (unit -> 'a) -> 'a

(** {1 Snapshot} *)

type histogram_stats = {
  h_count : int;
  h_sum : float;  (** seconds *)
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type entry =
  | Counter_entry of string * int
  | Gauge_entry of string * int
  | Histogram_entry of string * histogram_stats

(** [snapshot ()] is every registered metric, sorted by name (counters,
    then gauges, then histograms). Zero-valued metrics are included, so
    the shape depends only on what was registered. *)
val snapshot : unit -> entry list

(** [print_snapshot oc] writes one line per metric, for [--metrics]. *)
val print_snapshot : out_channel -> unit

(** [reset ()] zeroes every registered metric (registrations kept) and
    leaves the enabled flag and sink untouched. For tests and benches. *)
val reset : unit -> unit

(** {1 Trace export} *)

module Trace : sig
  (** [to_channel oc] is a sink writing one Chrome-trace complete event
      ([ph = "X"]) as a JSON object per line (JSONL). Timestamps are the
      monotonic clock in microseconds; [tid] is the reporting domain id,
      so pool workers get their own lanes. Writes are mutex-serialized.
      Wrap the lines in [\[...\]] (comma-separated) to load the file in
      Chrome's [about://tracing] / Perfetto. *)
  val to_channel : out_channel -> sink
end
