type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create cmp = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.size >= Array.length h.data then begin
    let capacity = max 8 (2 * Array.length h.data) in
    let data = Array.make capacity x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Overwrite the vacated slot with a live element so the popped one
         becomes unreachable — otherwise large picks/closures stay pinned
         by the backing array (a space leak under push/pop churn). *)
      h.data.(h.size) <- h.data.(0);
      sift_down h 0
    end
    else
      (* Popping the last element: drop the backing array entirely; there
         is no live element to overwrite the slot with. *)
      h.data <- [||];
    Some root
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let of_list cmp xs =
  let data = Array.of_list xs in
  let h = { cmp; data; size = Array.length data } in
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done;
  h

let drain h =
  let rec loop acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> loop (x :: acc)
  in
  loop []

let to_list h = Array.to_list (Array.sub h.data 0 h.size)
