(** Wall-clock measurement helpers for the benchmark harness.

    All measurements use a monotonic clock (CLOCK_MONOTONIC), so NTP steps
    or operator clock changes cannot produce negative or wildly wrong
    elapsed times; elapsed values are additionally clamped at 0. *)

(** Monotonic time in seconds since an arbitrary fixed origin. Only
    differences between two [now] calls are meaningful. *)
val now : unit -> float

(** Monotonic time in integer nanoseconds — the raw clock reading behind
    {!now}. The form deadline arithmetic ({!Budget}) wants: comparing two
    [now_ns] readings costs no float rounding. *)
val now_ns : unit -> int64

(** [elapsed_since start_ns] is the (clamped nonnegative) seconds since the
    [now_ns] reading [start_ns]. *)
val elapsed_since : int64 -> float

(** [time_it f] runs [f ()] and returns its result paired with the elapsed
    monotonic wall-clock seconds (never negative). *)
val time_it : (unit -> 'a) -> 'a * float

(** [repeat ~warmup ~runs f] runs [f] [warmup] times unmeasured, then [runs]
    times measured, and returns the per-run elapsed seconds. Raises
    [Invalid_argument] if [runs <= 0]. *)
val repeat : warmup:int -> runs:int -> (unit -> 'a) -> float array

(** [best_of ~runs f] is the minimum elapsed seconds over [runs] runs. *)
val best_of : runs:int -> (unit -> 'a) -> float
