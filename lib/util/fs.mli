(** Crash-safe file persistence primitives.

    [atomic_write] is the write-side half of every durable artifact in the
    system (feed checkpoints, shard snapshots, serve manifests): the
    content goes to a uniquely named temporary file in the destination
    directory, is flushed and fsynced, renamed over the destination, and
    the parent directory is fsynced so the rename itself is power-loss
    durable. POSIX rename is atomic, so a reader never observes a
    half-written destination — a crash at any byte boundary leaves either
    the previous file intact or a stale temp sibling that readers ignore
    and {!sweep_temps} removes at the next boot.

    Temp names are [<path>.tmp.<pid>.<counter>]: unique per writer, so two
    concurrent writers to the same destination never stage into the same
    file (last rename wins, each rename is whole).

    {!Journal} layers an append-only, per-record-checksummed record log on
    top: the durable-session-journal substrate of [Mqdp.Serve]
    (DESIGN.md §21), versioned and torn-tail tolerant like [Feed]
    checkpoints.

    The [?crash_after] hooks exist for the fault-injection tests: they
    make the writer die (raising {!Crashed}) after exactly that many bytes
    have reached the disk, simulating a process killed mid-write. *)

(** Raised by the [?crash_after] test hooks once the requested number of
    bytes has been written. [temp] is the file holding the torn bytes:
    the staging sibling for {!atomic_write} (destination untouched), the
    journal file itself for {!Journal.append} (torn tail truncated on the
    next open). *)
exception Crashed of { path : string; temp : string; written : int }

(** [atomic_write ?fsync ?crash_after ~path content] — write [content] to
    a fresh temp sibling, optionally fsync (default [true]), rename onto
    [path], then fsync the parent directory. With [crash_after:n], raises
    {!Crashed} after [n] bytes, leaving the torn temp file and never
    renaming. *)
val atomic_write : ?fsync:bool -> ?crash_after:int -> path:string -> string -> unit

(** [temp_path path] — a fresh, never-before-returned temp sibling name
    for [path]. Each call returns a distinct name. *)
val temp_path : string -> string

(** [is_temp name] — does [name] (a basename or path) look like a temp
    sibling produced by {!temp_path}? *)
val is_temp : string -> bool

(** [sweep_temps dir] — unlink every stale temp sibling directly under
    [dir]; returns how many were removed. Call once at boot, before any
    writer is live: a temp file that survived to the next process start
    is by definition the debris of a crashed writer. Returns [0] when
    [dir] is unreadable. *)
val sweep_temps : string -> int

(** [read path] — the whole file as a string. Raises [Sys_error]. *)
val read : string -> string

(** [remove_tree path] — recursively delete a file or directory tree.
    Missing paths and undeletable entries are skipped silently. *)
val remove_tree : string -> unit

(** [remove_if_exists path] — unlink [path] when present; never raises on
    a missing file. *)
val remove_if_exists : string -> unit

(** Append-only record journals: a versioned header line followed by one
    line per record, each carrying an FNV-1a-64 checksum of its payload.

    Durability contract: {!append} is write + flush + fsync, so an
    acknowledged record survives process death. A crash mid-append leaves
    a torn tail; {!open_} and {!load} truncate it (a torn record was never
    acknowledged, so dropping it is correct). Any damage {e before} the
    tail — a checksum mismatch with intact records after it — is real
    corruption and raises {!Corrupt} rather than silently dropping
    acknowledged history.

    Payloads are single lines (no ['\n']); encode multi-line data with
    [String.escaped] or similar before appending. *)
module Journal : sig
  (** Raised on a bad header, a mid-file checksum mismatch, or a version
      this build does not understand. *)
  exception Corrupt of string

  type t

  (** [open_ ?fsync ~kind path] — open [path] for appending, creating it
      (header only) when missing or empty, validating the header and
      repairing a torn tail otherwise. Returns the handle and the
      surviving payloads in append order, so the caller rebuilds its
      state in the same pass. [kind] names the journal's schema and is
      embedded in the header; opening with the wrong kind raises
      {!Corrupt}. *)
  val open_ : ?fsync:bool -> kind:string -> string -> t * string list

  (** [load ~kind path] — read-only scan: the good payloads in append
      order, plus the byte offset of the first torn byte (equal to the
      file size when the tail is clean). Raises {!Corrupt} on mid-file
      damage, [Sys_error] on a missing file. *)
  val load : kind:string -> string -> string list * int

  (** [append ?fsync ?crash_after t payload] — durably append one record
      (write, flush, fsync unless [fsync:false]). With [crash_after:n],
      raises {!Crashed} after [n] bytes of the record reached the file,
      leaving the torn tail a real crash would leave. Raises
      [Invalid_argument] if [payload] contains a newline. *)
  val append : ?fsync:bool -> ?crash_after:int -> t -> string -> unit

  (** [rewrite ?fsync ?crash_after t payloads] — atomically replace the
      whole journal with [payloads] (compaction). A crash leaves either
      the old journal or the new one, never a mixture. *)
  val rewrite : ?fsync:bool -> ?crash_after:int -> t -> string list -> unit

  (** [close t] — close the append channel. The handle may be reused;
      appending re-opens it. *)
  val close : t -> unit

  (** The journal's on-disk path. *)
  val path : t -> string
end
