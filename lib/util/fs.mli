(** Crash-safe file persistence primitives.

    [atomic_write] is the write-side half of every durable artifact in the
    system (feed checkpoints, shard snapshots): the content goes to a
    temporary file in the destination directory, is flushed and fsynced,
    and only then renamed over the destination. POSIX rename is atomic, so
    a reader never observes a half-written destination — a crash at any
    byte boundary leaves either the previous file intact or a stale
    [.tmp] sibling that readers ignore.

    The [?crash_after] hook exists for the fault-injection tests: it makes
    the writer die (raising {!Crashed}) after exactly that many content
    bytes have reached the temporary file, simulating a process killed
    mid-write. The destination is untouched; the torn temp file is left
    behind exactly as a real crash would leave it. *)

(** Raised by the [?crash_after] test hook once the requested number of
    bytes has been written to the temporary file. *)
exception Crashed of { path : string; written : int }

(** [atomic_write ?fsync ?crash_after ~path content] — write [content] to
    [path ^ ".tmp"], optionally fsync (default [true]), then rename onto
    [path]. With [crash_after:n], raises {!Crashed} after [n] bytes,
    leaving the torn temp file and never renaming. *)
val atomic_write : ?fsync:bool -> ?crash_after:int -> path:string -> string -> unit

(** The temp sibling [atomic_write] stages into, for cleanup and tests. *)
val temp_path : string -> string

(** [read path] — the whole file as a string. Raises [Sys_error]. *)
val read : string -> string

(** [remove_if_exists path] — unlink [path] when present; never raises on
    a missing file. *)
val remove_if_exists : string -> unit
