(* Byte queue + total non-blocking IO wrappers. The queue keeps its
   content contiguous (front compaction on demand) so the transport can
   hand the kernel one iovec-like view and the line scanner can run over
   plain bytes. *)

module Buf = struct
  type t = {
    mutable store : Bytes.t;
    mutable start : int;  (* first live byte *)
    mutable len : int;  (* live byte count *)
  }

  let create ?(initial = 256) () =
    { store = Bytes.create (max 1 initial); start = 0; len = 0 }

  let length t = t.len
  let is_empty t = t.len = 0

  (* Make room for [extra] more bytes at the back: slide live bytes to the
     front when the dead prefix suffices, double otherwise. *)
  let reserve t extra =
    let cap = Bytes.length t.store in
    if t.start + t.len + extra > cap then begin
      if t.len + extra <= cap then begin
        Bytes.blit t.store t.start t.store 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = ref (max 1 cap) in
        while t.len + extra > !cap' do
          cap' := !cap' * 2
        done;
        let store = Bytes.create !cap' in
        Bytes.blit t.store t.start store 0 t.len;
        t.store <- store;
        t.start <- 0
      end
    end

  let add_subbytes t src ~pos ~len =
    if len < 0 || pos < 0 || pos + len > Bytes.length src then
      invalid_arg "Netio.Buf.add_subbytes";
    reserve t len;
    Bytes.blit src pos t.store (t.start + t.len) len;
    t.len <- t.len + len

  let add_string t s =
    let len = String.length s in
    reserve t len;
    Bytes.blit_string s 0 t.store (t.start + t.len) len;
    t.len <- t.len + len

  let peek t = if t.len = 0 then None else Some (t.store, t.start, t.len)

  let drop t n =
    if n < 0 || n > t.len then invalid_arg "Netio.Buf.drop";
    t.start <- t.start + n;
    t.len <- t.len - n;
    if t.len = 0 then t.start <- 0

  let index_from t ~from c =
    if from < 0 then invalid_arg "Netio.Buf.index_from";
    if from >= t.len then -1
    else
      match Bytes.index_from_opt t.store (t.start + from) c with
      | Some i when i < t.start + t.len -> i - t.start
      | Some _ | None -> -1

  let sub_string t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > t.len then
      invalid_arg "Netio.Buf.sub_string";
    Bytes.sub_string t.store (t.start + pos) len

  let clear t =
    t.start <- 0;
    t.len <- 0
end

(* EINTR is retried inline (the call cannot block, so the retry is
   bounded); EAGAIN surfaces as [`Again]; everything else a peer can
   inflict — reset, aborted connect, broken pipe — is a dead connection,
   not an exceptional program state. *)
let rec read_into fd scratch =
  match Unix.read fd scratch 0 (Bytes.length scratch) with
  | 0 -> `Eof
  | n -> `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Again
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_into fd scratch
  | exception Unix.Unix_error _ -> `Closed

let rec write_from fd buf ~pos ~len =
  match Unix.single_write fd buf pos len with
  | n -> `Wrote n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Again
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_from fd buf ~pos ~len
  | exception Unix.Unix_error _ -> `Closed

let rec flush_buf fd buf =
  match Buf.peek buf with
  | None -> `Done
  | Some (store, pos, len) -> (
    match write_from fd store ~pos ~len with
    | `Wrote n ->
      Buf.drop buf n;
      if n = len then flush_buf fd buf else `Again
    | `Again -> `Again
    | `Closed -> `Closed)
