exception Crashed of { path : string; temp : string; written : int }

(* Unique temp siblings: a fixed ".tmp" suffix lets two concurrent
   writers to the same destination stage into the same file and corrupt
   each other. The pid distinguishes processes, the counter distinguishes
   writers inside one process. The ".tmp." infix is what [is_temp] and
   [sweep_temps] key on. *)
let temp_infix = ".tmp."
let temp_counter = Atomic.make 0

let temp_path path =
  Printf.sprintf "%s%s%d.%d" path temp_infix (Unix.getpid ())
    (Atomic.fetch_and_add temp_counter 1)

(* Matches "<base>.tmp.<digits>.<digits>", scanning from the right. *)
let is_temp name =
  let i = ref (String.length name) in
  let digits () =
    let stop = !i in
    while !i > 0 && name.[!i - 1] >= '0' && name.[!i - 1] <= '9' do
      decr i
    done;
    stop > !i
  in
  let dot () =
    if !i > 0 && name.[!i - 1] = '.' then (
      decr i;
      true)
    else false
  in
  digits () && dot () && digits ()
  && !i >= 5
  && String.sub name (!i - 5) 5 = ".tmp."

(* fsync the directory holding [path] so the rename itself survives power
   loss. Best-effort: some filesystems refuse fsync on a directory fd, and
   a missing dir fsync only weakens durability, never correctness. *)
let fsync_parent path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* The crash hook writes the permitted prefix and raises without closing
   cleanly — the temp file is left torn on disk, which is exactly the
   state a process killed mid-write leaves behind. Readers never look at
   temp siblings, so the destination stays whatever it was. *)
let atomic_write ?(fsync = true) ?crash_after ~path content =
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  (match crash_after with
  | Some n when n < String.length content ->
    let n = max 0 n in
    output_substring oc content 0 n;
    flush oc;
    close_out_noerr oc;
    raise (Crashed { path; temp = tmp; written = n })
  | Some _ | None ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc content;
        flush oc;
        if fsync then Unix.fsync (Unix.descr_of_out_channel oc)));
  Sys.rename tmp path;
  if fsync then fsync_parent path

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> remove_tree (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> remove_if_exists path
  | exception Sys_error _ -> ()

let sweep_temps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
    Array.fold_left
      (fun n name ->
        if is_temp name then (
          remove_if_exists (Filename.concat dir name);
          n + 1)
        else n)
      0 names

(* ------------------------------------------------------------------ *)
(* Append-only journals.                                              *)
(* ------------------------------------------------------------------ *)

module Journal = struct
  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
  let version = 1
  let header kind = Printf.sprintf "mqdp-journal v%d %s\n" version kind

  let fnv64 s =
    let p = 0x100000001b3L and h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) p)
      s;
    !h

  let render payload =
    if String.contains payload '\n' then
      invalid_arg "Fs.Journal: payload contains newline";
    Printf.sprintf "R %016Lx %s\n" (fnv64 payload) payload

  (* A record line parses iff it is exactly [render payload] for some
     payload: the "R " tag, 16 hex digits, one space, checksummed body,
     trailing newline supplied by the line split. *)
  let parse_record line =
    let n = String.length line in
    if
      n < 20
      || line.[n - 1] <> '\n'
      || String.sub line 0 2 <> "R "
      || line.[18] <> ' '
    then None
    else
      let hex = String.sub line 2 16 in
      let payload = String.sub line 19 (n - 20) in
      if Printf.sprintf "%016Lx" (fnv64 payload) = hex then Some payload
      else None

  type t = { path : string; kind : string; mutable oc : out_channel option }

  let out t =
    match t.oc with
    | Some oc -> oc
    | None ->
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path
      in
      t.oc <- Some oc;
      oc

  let close t =
    match t.oc with
    | None -> ()
    | Some oc ->
      close_out_noerr oc;
      t.oc <- None

  (* [load] tolerates exactly one kind of damage: a torn tail, the state
     a crash mid-append leaves behind. Anything wrong before the final
     record — bad header, checksum mismatch, mangled framing with intact
     data after it — is corruption and raises. Returns the good payloads
     plus the byte offset the file should be truncated to (equal to the
     file length when the tail is clean). *)
  let load ~kind path =
    let content = read path in
    let hdr = header kind in
    let hlen = String.length hdr in
    if String.length content < hlen || String.sub content 0 hlen <> hdr then
      corrupt "%s: bad journal header (want %S)" path (String.trim hdr);
    let len = String.length content in
    let records = ref [] in
    let pos = ref hlen in
    let good = ref hlen in
    (try
       while !pos < len do
         match String.index_from_opt content !pos '\n' with
         | None -> raise Exit (* torn tail: no newline *)
         | Some nl -> (
           let line = String.sub content !pos (nl - !pos + 1) in
           match parse_record line with
           | Some payload ->
             records := payload :: !records;
             pos := nl + 1;
             good := !pos
           | None ->
             (* Bad record: torn tail iff nothing follows it. *)
             if nl + 1 < len then
               corrupt "%s: corrupt record at byte %d" path !pos
             else raise Exit)
       done
     with Exit -> ());
    (List.rev !records, !good)

  let write_all ?fsync ?crash_after ~kind path payloads =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (header kind);
    List.iter (fun p -> Buffer.add_string buf (render p)) payloads;
    atomic_write ?fsync ?crash_after ~path (Buffer.contents buf)

  (* Open for appending. A missing or empty journal is created whole; an
     existing one is validated and, when its tail is torn, repaired in
     place by an atomic rewrite of the good prefix. Returns the surviving
     payloads so the caller can rebuild its state in the same pass. *)
  let open_ ?(fsync = true) ~kind path =
    let exists = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 in
    let payloads =
      if not exists then (
        atomic_write ~fsync ~path (header kind);
        [])
      else
        let payloads, good = load ~kind path in
        if good < (Unix.stat path).Unix.st_size then
          write_all ~fsync ~kind path payloads;
        payloads
    in
    ({ path; kind; oc = None }, payloads)

  (* Append one record durably: write, flush, fsync. [crash_after:n]
     simulates the process dying after [n] bytes of the record reached the
     file — the torn tail is left behind for [load] to truncate. *)
  let append ?(fsync = true) ?crash_after t payload =
    let line = render payload in
    let oc = out t in
    (match crash_after with
    | Some n when n < String.length line ->
      let n = max 0 n in
      output_substring oc line 0 n;
      flush oc;
      close_out_noerr oc;
      t.oc <- None;
      raise (Crashed { path = t.path; temp = t.path; written = n })
    | Some _ | None ->
      output_string oc line;
      flush oc;
      if fsync then Unix.fsync (Unix.descr_of_out_channel oc))

  (* Replace the whole journal with [payloads] (compaction). Goes through
     [atomic_write], so a crash leaves either the old journal or the new
     one, never a mixture. The append channel is re-opened lazily against
     the new inode. *)
  let rewrite ?(fsync = true) ?crash_after t payloads =
    close t;
    write_all ~fsync ?crash_after ~kind:t.kind t.path payloads

  let path t = t.path
end
