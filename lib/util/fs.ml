exception Crashed of { path : string; written : int }

let temp_path path = path ^ ".tmp"

(* The crash hook writes the permitted prefix and raises without closing
   cleanly — the temp file is left torn on disk, which is exactly the
   state a process killed mid-write leaves behind. Readers never look at
   the temp sibling, so the destination stays whatever it was. *)
let atomic_write ?(fsync = true) ?crash_after ~path content =
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  (match crash_after with
  | Some n when n < String.length content ->
    let n = max 0 n in
    output_substring oc content 0 n;
    flush oc;
    close_out_noerr oc;
    raise (Crashed { path; written = n })
  | Some _ | None ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc content;
        flush oc;
        if fsync then Unix.fsync (Unix.descr_of_out_channel oc)));
  Sys.rename tmp path

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()
