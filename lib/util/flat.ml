(* Off-heap growable vectors on Bigarray. See flat.mli for the contract.

   House rules for this file (enforced by test/test_lint.ml): no
   polymorphic comparison and no boxed-option values — absent entries are
   the caller's business (sentinels), and every accessor traffics in
   immediates only, so nothing here can allocate per call. *)

module A1 = Bigarray.Array1

module Ints = struct
  type buf = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

  type t = {
    mutable buf : buf;
    mutable len : int;
  }

  let make_buf n : buf = A1.create Bigarray.int Bigarray.c_layout (max n 1)
  let create () = { buf = make_buf 16; len = 0 }
  let[@inline] length t = t.len
  let capacity t = A1.dim t.buf

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Flat.Ints.get: index out of range";
    A1.unsafe_get t.buf i

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Flat.Ints.set: index out of range";
    A1.unsafe_set t.buf i v

  let[@inline] get_u t i = A1.unsafe_get t.buf i
  let[@inline] set_u t i v = A1.unsafe_set t.buf i v

  let grow_to t n =
    if n > capacity t then begin
      let c = ref (capacity t) in
      while !c < n do
        c := !c * 2
      done;
      let b = make_buf !c in
      if t.len > 0 then A1.blit (A1.sub t.buf 0 t.len) (A1.sub b 0 t.len);
      t.buf <- b
    end

  let[@inline] push t v =
    grow_to t (t.len + 1);
    A1.unsafe_set t.buf t.len v;
    t.len <- t.len + 1

  let ensure t n =
    if n < 0 then invalid_arg "Flat.Ints.ensure: negative length";
    grow_to t n;
    if n > t.len then t.len <- n

  let drop_front t k =
    if k < 0 || k > t.len then invalid_arg "Flat.Ints.drop_front: bad count";
    let live = t.len - k in
    (* forward manual copy: src and dst overlap but src > dst, and unlike
       A1.blit-of-A1.sub it allocates no bigarray headers — compaction is
       on the steady-state maintenance path *)
    if k > 0 then
      for i = 0 to live - 1 do
        A1.unsafe_set t.buf i (A1.unsafe_get t.buf (k + i))
      done;
    t.len <- live

  let clear t = t.len <- 0

  let fill t v = if t.len > 0 then A1.fill (A1.sub t.buf 0 t.len) v
end

module Floats = struct
  type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

  type t = {
    mutable buf : buf;
    mutable len : int;
  }

  let make_buf n : buf = A1.create Bigarray.float64 Bigarray.c_layout (max n 1)
  let create () = { buf = make_buf 16; len = 0 }
  let[@inline] length t = t.len
  let capacity t = A1.dim t.buf
  let[@inline] unsafe_buf t = t.buf

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Flat.Floats.get: index out of range";
    A1.unsafe_get t.buf i

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Flat.Floats.set: index out of range";
    A1.unsafe_set t.buf i v

  let[@inline] get_u t i = A1.unsafe_get t.buf i
  let[@inline] set_u t i v = A1.unsafe_set t.buf i v

  let grow_to t n =
    if n > capacity t then begin
      let c = ref (capacity t) in
      while !c < n do
        c := !c * 2
      done;
      let b = make_buf !c in
      if t.len > 0 then A1.blit (A1.sub t.buf 0 t.len) (A1.sub b 0 t.len);
      t.buf <- b
    end

  let[@inline] push t v =
    grow_to t (t.len + 1);
    A1.unsafe_set t.buf t.len v;
    t.len <- t.len + 1

  let ensure t n =
    if n < 0 then invalid_arg "Flat.Floats.ensure: negative length";
    grow_to t n;
    if n > t.len then t.len <- n

  let drop_front t k =
    if k < 0 || k > t.len then invalid_arg "Flat.Floats.drop_front: bad count";
    let live = t.len - k in
    (* manual forward copy; see Ints.drop_front *)
    if k > 0 then
      for i = 0 to live - 1 do
        A1.unsafe_set t.buf i (A1.unsafe_get t.buf (k + i))
      done;
    t.len <- live

  let clear t = t.len <- 0
end

module Flags = struct
  type buf = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t

  type t = {
    mutable buf : buf;
    mutable len : int;
  }

  let make_buf n : buf = A1.create Bigarray.int8_unsigned Bigarray.c_layout (max n 1)
  let create () = { buf = make_buf 16; len = 0 }
  let[@inline] length t = t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Flat.Flags.get: index out of range";
    A1.unsafe_get t.buf i <> 0

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Flat.Flags.set: index out of range";
    A1.unsafe_set t.buf i (if v then 1 else 0)

  let[@inline] get_u t i = A1.unsafe_get t.buf i <> 0
  let[@inline] set_u t i v = A1.unsafe_set t.buf i (if v then 1 else 0)

  let grow_to t n =
    if n > A1.dim t.buf then begin
      let c = ref (A1.dim t.buf) in
      while !c < n do
        c := !c * 2
      done;
      let b = make_buf !c in
      if t.len > 0 then A1.blit (A1.sub t.buf 0 t.len) (A1.sub b 0 t.len);
      t.buf <- b
    end

  let[@inline] push t v =
    grow_to t (t.len + 1);
    A1.unsafe_set t.buf t.len (if v then 1 else 0);
    t.len <- t.len + 1

  let ensure t n =
    if n < 0 then invalid_arg "Flat.Flags.ensure: negative length";
    grow_to t n;
    if n > t.len then t.len <- n

  let drop_front t k =
    if k < 0 || k > t.len then invalid_arg "Flat.Flags.drop_front: bad count";
    let live = t.len - k in
    (* manual forward copy; see Ints.drop_front *)
    if k > 0 then
      for i = 0 to live - 1 do
        A1.unsafe_set t.buf i (A1.unsafe_get t.buf (k + i))
      done;
    t.len <- live

  let clear t = t.len <- 0
  let reset t = if t.len > 0 then A1.fill (A1.sub t.buf 0 t.len) 0
end

module Bits = struct
  (* 62 usable bits per word keeps every shift comfortably inside the
     63-bit OCaml int range; the word array itself lives off-heap. *)
  let bits_per_word = 62

  type t = {
    words : Ints.t;
    mutable size : int;  (* number of addressable bits after [reset] *)
  }

  let create () = { words = Ints.create (); size = 0 }

  let reset t n =
    if n < 0 then invalid_arg "Flat.Bits.reset: negative size";
    let w = (n + bits_per_word - 1) / bits_per_word in
    Ints.ensure t.words w;
    Ints.fill t.words 0;
    t.size <- n

  let get t i =
    if i < 0 || i >= t.size then invalid_arg "Flat.Bits.get: index out of range";
    let w = i / bits_per_word and b = i mod bits_per_word in
    (Ints.get_u t.words w lsr b) land 1 <> 0

  let set t i =
    if i < 0 || i >= t.size then invalid_arg "Flat.Bits.set: index out of range";
    let w = i / bits_per_word and b = i mod bits_per_word in
    Ints.set_u t.words w (Ints.get_u t.words w lor (1 lsl b))
end
