(* Deterministic fault injection. One Rng stream, draws consumed in a
   fixed per-item order (drop, skew, burst, duplicate), so the corrupted
   feed is a pure function of (seed, config, input). *)

type config = {
  drop_p : float;
  duplicate_p : float;
  dup_delay : int;
  skew_p : float;
  skew_sigma : float;
  burst_p : float;
  burst_len : int;
}

let default =
  {
    drop_p = 0.05;
    duplicate_p = 0.05;
    dup_delay = 6;
    skew_p = 0.10;
    skew_sigma = 2.0;
    burst_p = 0.02;
    burst_len = 4;
  }

let clean =
  {
    drop_p = 0.;
    duplicate_p = 0.;
    dup_delay = 0;
    skew_p = 0.;
    skew_sigma = 0.;
    burst_p = 0.;
    burst_len = 0;
  }

type t = { rng : Rng.t; cfg : config }

let validate cfg =
  let prob name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Fault.create: %s outside [0, 1]" name)
  in
  prob "drop_p" cfg.drop_p;
  prob "duplicate_p" cfg.duplicate_p;
  prob "skew_p" cfg.skew_p;
  prob "burst_p" cfg.burst_p;
  if cfg.dup_delay < 0 then invalid_arg "Fault.create: negative dup_delay";
  if cfg.burst_len < 0 then invalid_arg "Fault.create: negative burst_len";
  if cfg.skew_sigma < 0. then invalid_arg "Fault.create: negative skew_sigma"

let create ?(config = default) ~seed () =
  validate config;
  { rng = Rng.create seed; cfg = config }

let config t = t.cfg

let flip t ~p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Fault.flip: p outside [0, 1]";
  (* Consume a draw even for degenerate probabilities so injection
     schedules stay aligned when a rate is tuned to 0 or 1. *)
  let u = Rng.float t.rng 1. in
  u < p

let corrupt t ~time ~retime items =
  let out = ref [] in
  (* Duplicates scheduled for later delivery: (due position, item),
     kept sorted by due position (insertion keeps order; lists are tiny). *)
  let pending = ref [] in
  let release upto =
    let due, rest = List.partition (fun (d, _) -> d <= upto) !pending in
    pending := rest;
    List.iter (fun (_, x) -> out := x :: !out) due
  in
  let burst_left = ref 0 in
  let burst_time = ref 0. in
  List.iteri
    (fun i item ->
      release i;
      if flip t ~p:t.cfg.drop_p then ()
      else begin
        let item =
          if flip t ~p:t.cfg.skew_p then
            retime item (time item +. Rng.gaussian t.rng ~mu:0. ~sigma:t.cfg.skew_sigma)
          else item
        in
        let item =
          if !burst_left > 0 then begin
            decr burst_left;
            retime item !burst_time
          end
          else begin
            if flip t ~p:t.cfg.burst_p && t.cfg.burst_len > 1 then begin
              burst_left := t.cfg.burst_len - 1;
              burst_time := time item
            end;
            item
          end
        in
        out := item :: !out;
        if flip t ~p:t.cfg.duplicate_p then begin
          let lag = 1 + (if t.cfg.dup_delay > 0 then Rng.int t.rng (t.cfg.dup_delay + 1) else 0) in
          pending := !pending @ [ (i + lag, item) ]
        end
      end)
    items;
  release max_int;
  List.rev !out

module Net = struct
  type config = {
    max_chunk : int;
    delay_p : float;
    reset_p : float;
  }

  let default = { max_chunk = 16; delay_p = 0.20; reset_p = 0.15 }

  type action = Chunk of string | Delay

  let validate cfg =
    if cfg.max_chunk < 1 then invalid_arg "Fault.Net.plan: max_chunk < 1";
    let prob name p =
      if not (p >= 0. && p <= 1.) then
        invalid_arg (Printf.sprintf "Fault.Net.plan: %s outside [0, 1]" name)
    in
    prob "delay_p" cfg.delay_p;
    prob "reset_p" cfg.reset_p

  (* Draw the reset boundary first so the chunking draws that follow stay
     aligned whether or not the stream survives: [cut] is the number of
     bytes actually delivered. *)
  let plan t ~config:cfg data =
    validate cfg;
    let len = String.length data in
    let reset = flip t ~p:cfg.reset_p in
    let cut = if reset then Rng.int t.rng (len + 1) else len in
    let actions = ref [] in
    let pos = ref 0 in
    while !pos < cut do
      if flip t ~p:cfg.delay_p then actions := Delay :: !actions;
      let n = min (cut - !pos) (1 + Rng.int t.rng cfg.max_chunk) in
      actions := Chunk (String.sub data !pos n) :: !actions;
      pos := !pos + n
    done;
    (List.rev !actions, reset)
end

let crash_points t ~n ~max_points =
  if n < 0 then invalid_arg "Fault.crash_points: n < 0";
  if max_points < 1 then invalid_arg "Fault.crash_points: max_points < 1";
  let k = 1 + Rng.int t.rng max_points in
  List.init k (fun _ -> Rng.int t.rng (n + 1)) |> List.sort_uniq Int.compare
