(* Process-wide metrics registry + span tracing. See telemetry.mli for
   the contract. Everything mutable is either an Atomic (hot-path values)
   or guarded by [registry_mutex] (registration, sink swap) — the enabled
   hot path never takes a lock. *)

type counter = { c_name : string; value : int Atomic.t }
type gauge = { g_name : string; level : int Atomic.t }

(* Geometric buckets, ratio 2^(1/8): bucket 0 catches everything <= lo;
   bucket b >= 1 covers (lo * ratio^(b-1), lo * ratio^b]. 320 buckets span
   1 ns .. lo * 2^40 ~ 1100 s. *)
let num_buckets = 320
let bucket_lo = 1e-9
let log_ratio = log 2. /. 8.

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;
  total : int Atomic.t;
  sum_ns : int Atomic.t;
}

(* Disabled is the resting state: every record operation is one atomic
   load and a branch. *)
let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

type sink = {
  on_span :
    name:string ->
    depth:int ->
    start_ns:int64 ->
    dur_ns:int64 ->
    args:(string * string) list ->
    unit;
}

let null_sink = { on_span = (fun ~name:_ ~depth:_ ~start_ns:_ ~dur_ns:_ ~args:_ -> ()) }

let sink = Atomic.make null_sink

let set_sink s = Atomic.set sink s

(* ------------------------------------------------------------------ *)
(* Registry: one table per kind, interning by name.                   *)

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern table name make =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add table name v;
      v
  in
  Mutex.unlock registry_mutex;
  v

let counter name =
  intern counters name (fun () -> { c_name = name; value = Atomic.make 0 })

let gauge name =
  intern gauges name (fun () -> { g_name = name; level = Atomic.make 0 })

let histogram name =
  intern histograms name (fun () ->
      {
        h_name = name;
        buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
        total = Atomic.make 0;
        sum_ns = Atomic.make 0;
      })

(* ------------------------------------------------------------------ *)
(* Recording.                                                         *)

let incr c = if Atomic.get on then Atomic.incr c.value
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.value n)
let counter_value c = Atomic.get c.value

let set g v = if Atomic.get on then Atomic.set g.level v
let gauge_value g = Atomic.get g.level

let bucket_of seconds =
  if not (seconds > bucket_lo) then 0
  else begin
    (* NaN fails the guard above and lands in bucket 0; +inf clamps. *)
    let b = 1 + int_of_float (log (seconds /. bucket_lo) /. log_ratio) in
    if b >= num_buckets then num_buckets - 1 else b
  end

let observe_unchecked h seconds =
  Atomic.incr h.buckets.(bucket_of seconds);
  Atomic.incr h.total;
  let ns =
    if Float.is_nan seconds then 0
    else int_of_float (Float.min 4e18 (Float.max 0. (seconds *. 1e9)))
  in
  ignore (Atomic.fetch_and_add h.sum_ns ns)

let observe h seconds = if Atomic.get on then observe_unchecked h seconds

let observe_ns h ns =
  if Atomic.get on then observe_unchecked h (Int64.to_float ns /. 1e9)

let count h = Atomic.get h.total
let sum h = float_of_int (Atomic.get h.sum_ns) /. 1e9

(* Lower edge of bucket [b]; the representative value is the geometric
   midpoint of the bucket, which bounds the quantile error by half a
   bucket width (~4.5%). *)
let bucket_value b =
  if b = 0 then bucket_lo
  else bucket_lo *. exp ((float_of_int b -. 0.5) *. log_ratio)

let quantile h p =
  if p < 0. || p > 100. then invalid_arg "Telemetry.quantile: p out of [0, 100]";
  let n = Atomic.get h.total in
  if n = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
    let b = ref 0 and seen = ref 0 in
    while !seen < rank && !b < num_buckets do
      seen := !seen + Atomic.get h.buckets.(!b);
      if !seen < rank then b := !b + 1
    done;
    bucket_value (min !b (num_buckets - 1))
  end

let reset_histogram h =
  Array.iter (fun b -> Atomic.set b 0) h.buckets;
  Atomic.set h.total 0;
  Atomic.set h.sum_ns 0

(* ------------------------------------------------------------------ *)
(* Spans.                                                             *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let span ?args ~name f =
  if not (Atomic.get on) then f ()
  else begin
    let h = histogram ("span." ^ name) in
    let depth = Domain.DLS.get depth_key in
    let my_depth = !depth in
    depth := my_depth + 1;
    let start_ns = Timer.now_ns () in
    let close () =
      let dur_ns = Int64.sub (Timer.now_ns ()) start_ns in
      let dur_ns = if Int64.compare dur_ns 0L < 0 then 0L else dur_ns in
      depth := my_depth;
      observe_unchecked h (Int64.to_float dur_ns /. 1e9);
      let args = match args with None -> [] | Some f -> f () in
      (Atomic.get sink).on_span ~name ~depth:my_depth ~start_ns ~dur_ns ~args
    in
    match f () with
    | result ->
      close ();
      result
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close ();
      Printexc.raise_with_backtrace e bt
  end

(* ------------------------------------------------------------------ *)
(* Snapshot.                                                          *)

type histogram_stats = {
  h_count : int;
  h_sum : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type entry =
  | Counter_entry of string * int
  | Gauge_entry of string * int
  | Histogram_entry of string * histogram_stats

let entry_name = function
  | Counter_entry (n, _) | Gauge_entry (n, _) | Histogram_entry (n, _) -> n

let histogram_stats h =
  {
    h_count = count h;
    h_sum = sum h;
    h_p50 = quantile h 50.;
    h_p90 = quantile h 90.;
    h_p99 = quantile h 99.;
  }

let snapshot () =
  Mutex.lock registry_mutex;
  let cs = Hashtbl.fold (fun _ c acc -> Counter_entry (c.c_name, counter_value c) :: acc) counters [] in
  let gs = Hashtbl.fold (fun _ g acc -> Gauge_entry (g.g_name, gauge_value g) :: acc) gauges [] in
  let hs =
    Hashtbl.fold
      (fun _ h acc -> Histogram_entry (h.h_name, histogram_stats h) :: acc)
      histograms []
  in
  Mutex.unlock registry_mutex;
  let sorted xs = List.sort (fun a b -> String.compare (entry_name a) (entry_name b)) xs in
  sorted cs @ sorted gs @ sorted hs

let print_snapshot oc =
  List.iter
    (function
      | Counter_entry (n, v) -> Printf.fprintf oc "counter    %-32s %d\n" n v
      | Gauge_entry (n, v) -> Printf.fprintf oc "gauge      %-32s %d\n" n v
      | Histogram_entry (n, s) ->
        Printf.fprintf oc
          "histogram  %-32s count=%d sum=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms\n" n
          s.h_count (s.h_sum *. 1e3) (s.h_p50 *. 1e3) (s.h_p90 *. 1e3) (s.h_p99 *. 1e3))
    (snapshot ())

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.level 0) gauges;
  Hashtbl.iter (fun _ h -> reset_histogram h) histograms;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Chrome-trace JSONL exporter.                                       *)

module Trace = struct
  (* OCaml's %S escaping is JSON-compatible for the ASCII metric/attr
     names this codebase emits (no control characters, no unicode). *)
  let to_channel oc =
    let m = Mutex.create () in
    let on_span ~name ~depth:_ ~start_ns ~dur_ns ~args =
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        (Printf.sprintf {|{"name":%S,"cat":"mqdp","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d|}
           name
           (Int64.to_float start_ns /. 1e3)
           (Int64.to_float dur_ns /. 1e3)
           ((Domain.self () :> int)));
      if args <> [] then begin
        Buffer.add_string buf {|,"args":{|};
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "%S:%S" k v))
          args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_string buf "}\n";
      Mutex.lock m;
      Buffer.output_buffer oc buf;
      Mutex.unlock m
    in
    { on_span }
end
