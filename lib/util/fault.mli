(** Deterministic fault injection for stream-processing tests.

    Everything is driven by a {!Rng} stream, so a seed reproduces the
    exact same hostile feed, crash schedule, and worker-failure pattern —
    a fuzz failure log prints one integer and the run replays locally.

    The injector is generic: it never looks inside the items it corrupts,
    only at a caller-supplied timestamp accessor, so the same machinery
    serves posts, tweets, or raw log lines. *)

type config = {
  drop_p : float;  (** P(an item is lost in transit) *)
  duplicate_p : float;  (** P(a delivered item is re-delivered later) *)
  dup_delay : int;  (** max positions a re-delivery lags behind, >= 0 *)
  skew_p : float;  (** P(an item's timestamp is perturbed) *)
  skew_sigma : float;  (** stddev of the Gaussian clock skew, seconds *)
  burst_p : float;  (** P(an item anchors a same-instant burst) *)
  burst_len : int;  (** items collapsed onto the anchor's timestamp *)
}

(** Moderate rates of every fault class: 5% drops and duplicates, 10%
    skew with σ = 2 s, occasional 4-item bursts. *)
val default : config

(** No faults at all — [corrupt] becomes the identity. Handy as a base
    for records overriding a single class. *)
val clean : config

type t

(** [create ?config ~seed ()] — a fresh injector. Raises
    [Invalid_argument] when a probability is outside [0, 1] or a length
    is negative. *)
val create : ?config:config -> seed:int -> unit -> t

val config : t -> config

(** [corrupt t ~time ~retime items] — run the feed through the fault
    model: items are dropped, re-delivered out of order (duplicates lag
    by up to [dup_delay] positions), clock-skewed via [retime], and
    collapsed into same-timestamp bursts. The output order is delivery
    order — downstream must cope with the disorder. Deterministic in the
    injector's state. *)
val corrupt : t -> time:('a -> float) -> retime:('a -> float -> 'a) -> 'a list -> 'a list

(** [crash_points t ~n ~max_points] — a sorted, duplicate-free schedule
    of 1 to [max_points] simulated crash boundaries, each in [0, n]: a
    crash at boundary [k] means the process died after the k-th push.
    Raises [Invalid_argument] when [n < 0] or [max_points < 1]. *)
val crash_points : t -> n:int -> max_points:int -> int list

(** [flip t ~p] — a biased coin for ad-hoc injection decisions (e.g.
    "should this pool chunk raise?"). Raises [Invalid_argument] when [p]
    is outside [0, 1]. *)
val flip : t -> p:float -> bool

(** Deterministic chaos network: turns one side of a byte stream into the
    hostile delivery schedule a flaky network would impose — partial
    writes (arbitrary re-chunking down to single bytes), scheduling
    delays between chunks, and connection resets that truncate the stream
    at an arbitrary byte boundary (torn mid-line, exactly like a real
    RST). The plan is a pure function of the injector's state, so a fuzz
    seed replays the identical chunk/delay/reset schedule. *)
module Net : sig
  type config = {
    max_chunk : int;  (** delivered chunks are 1..max_chunk bytes *)
    delay_p : float;  (** P(a chunk is preceded by a scheduling delay) *)
    reset_p : float;  (** P(the stream resets before completing) *)
  }

  (** 16-byte chunks, 20% delays, 15% resets. *)
  val default : config

  type action =
    | Chunk of string  (** deliver these bytes *)
    | Delay  (** yield the scheduling slot (other connections progress) *)

  (** [plan t ~config data] — the delivery schedule for [data]:
      [(actions, reset)]. The concatenation of the [Chunk] payloads is
      [data] itself when [reset] is [false], and a strict prefix (possibly
      empty, possibly cut mid-byte-sequence) when [reset] is [true] — the
      connection then dies and the client must reconnect and retry.
      Raises [Invalid_argument] when [max_chunk < 1] or a probability is
      outside [0, 1]. *)
  val plan : t -> config:config -> string -> action list * bool
end
