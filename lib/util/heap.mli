(** Imperative binary heap.

    The heap is a min-heap with respect to the comparison function supplied
    at creation time; pass a reversed comparison to obtain a max-heap. All
    operations are the textbook complexities: [push] and [pop] are
    O(log n), [peek] is O(1). *)

type 'a t

(** [create cmp] is an empty heap ordered by [cmp]. *)
val create : ('a -> 'a -> int) -> 'a t

(** [of_list cmp xs] heapifies [xs] in O(n). *)
val of_list : ('a -> 'a -> int) -> 'a list -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** [peek h] is the minimum element, or [None] when empty. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum element, or [None] when empty.
    The vacated backing-array slot is cleared (overwritten with a live
    element, or the array dropped when the heap empties), so a popped
    element does not stay reachable through the heap. *)
val pop : 'a t -> 'a option

(** [pop_exn h] is [pop] but raises [Invalid_argument] when empty. *)
val pop_exn : 'a t -> 'a

(** [drain h] pops every element, returning them in ascending order. *)
val drain : 'a t -> 'a list

(** [to_list h] is the heap contents in unspecified order (heap unchanged). *)
val to_list : 'a t -> 'a list
