(* Monotonic wall-clock measurement. [Monotonic_clock] (bechamel's
   CLOCK_MONOTONIC stub) is immune to NTP steps; elapsed times are clamped
   at 0 as a belt-and-braces guard so a result can never be negative. *)

let now_ns () = Monotonic_clock.now ()

let now () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_since start_ns = Float.max 0. (Int64.to_float (Int64.sub (now_ns ()) start_ns) /. 1e9)

let time_it f =
  let start = now_ns () in
  let result = f () in
  (result, elapsed_since start)

let repeat ~warmup ~runs f =
  if runs <= 0 then invalid_arg "Timer.repeat: runs <= 0";
  for _ = 1 to warmup do
    ignore (f ())
  done;
  Array.init runs (fun _ -> snd (time_it f))

let best_of ~runs f =
  let samples = repeat ~warmup:0 ~runs f in
  Array.fold_left min samples.(0) samples
