(** Binary-search utilities over sorted arrays.

    All functions expect [xs] sorted ascending by the projection [key]. *)

(** [lower_bound ~key xs x] is the smallest index [i] with
    [key xs.(i) >= x], or [Array.length xs] when none. *)
val lower_bound : key:('a -> float) -> 'a array -> float -> int

(** [upper_bound ~key xs x] is the smallest index [i] with
    [key xs.(i) > x], or [Array.length xs] when none. *)
val upper_bound : key:('a -> float) -> 'a array -> float -> int

(** [count_in_range ~key xs ~lo ~hi] is the number of elements with
    [lo <= key e <= hi]. *)
val count_in_range : key:('a -> float) -> 'a array -> lo:float -> hi:float -> int

(** [is_sorted ~cmp xs] checks [cmp xs.(i) xs.(i+1) <= 0] for all i. *)
val is_sorted : cmp:('a -> 'a -> int) -> 'a array -> bool

(** [sort_ints_prefix a len] sorts [a.(0) .. a.(len - 1)] ascending, in
    place, allocating nothing. (Stdlib [Array.sort] allocates ~4 words per
    element: its heapsort raises [Bottom of int] to end each trickle-down,
    which is measurable garbage on the zero-alloc solve path.) *)
val sort_ints_prefix : int array -> int -> unit

(** [sorted_ints_of_prefix a len] is the distinct elements of
    [a.(0) .. a.(len - 1)], ascending. [a] is not mutated. The
    list-materialization step shared by the solve kernels: a pick buffer
    in, a canonical cover out — allocation is exactly one [len] copy plus
    the result cells, with no [List.sort_uniq] intermediates. *)
val sorted_ints_of_prefix : int array -> int -> int list
