(* The window-greedy works directly on the compiled Pair_index: covered
   flags are one flat byte per pair id, a post's coverage is its pair-id
   ranges, and "post fully covered" walks its own pairs. *)
type state = {
  index : Pair_index.t;
  covered : Bytes.t;  (* one byte per pair id *)
}

let make_state instance lambda =
  { index = Pair_index.build ~coverers:false instance (Coverage.Fixed lambda);
    covered = Bytes.make (Instance.total_pairs instance) '\000' }

exception Uncovered_pair

let fully_covered st pos =
  try
    Pair_index.iter_own_pairs st.index pos (fun id ->
        if Bytes.get st.covered id = '\000' then raise Uncovered_pair);
    true
  with Uncovered_pair -> false

let mark_covered_by st k =
  Pair_index.iter_covered_ranges st.index k (fun first last ->
      Bytes.fill st.covered first (last - first + 1) '\001')

(* Uncovered window pairs the candidate k would cover. *)
let window_gain st ~z_lo ~z_hi k =
  let gain = ref 0 in
  Pair_index.iter_covered_ranges st.index k (fun first last ->
      for id = first to last do
        let pos = Pair_index.pair_pos st.index id in
        if pos >= z_lo && pos <= z_hi && Bytes.get st.covered id = '\000' then
          incr gain
      done);
  !gain

let window_all_covered st ~z_lo ~z_hi =
  let rec loop pos = pos > z_hi || (fully_covered st pos && loop (pos + 1)) in
  loop z_lo

let solve ?(plus = false) ~tau instance lambda =
  if tau < 0. then invalid_arg "Stream_greedy.solve: negative tau";
  let l = Stream.fixed_lambda_exn ~who:"Stream_greedy.solve" lambda in
  let st = make_state instance l in
  let n = Instance.size instance in
  let posts = Instance.posts instance in
  let post_value (p : Post.t) = p.Post.value in
  let emissions = ref [] in
  let rec advance cursor =
    if cursor < n && fully_covered st cursor then advance (cursor + 1) else cursor
  in
  let rec process cursor =
    let cursor = advance cursor in
    if cursor < n then begin
      let t' = Instance.value instance cursor in
      let deadline = t' +. tau in
      let z_lo = cursor in
      let z_hi = Util.Array_util.upper_bound ~key:post_value posts deadline - 1 in
      let stop () =
        if plus then fully_covered st cursor else window_all_covered st ~z_lo ~z_hi
      in
      let rec greedy_rounds () =
        if not (stop ()) then begin
          let best = ref (-1) and best_gain = ref 0 in
          for k = z_lo to z_hi do
            let g = window_gain st ~z_lo ~z_hi k in
            if g > !best_gain then begin
              best := k;
              best_gain := g
            end
          done;
          (* An uncovered window pair is always coverable by its own post. *)
          assert (!best >= 0);
          emissions := { Stream.position = !best; emit_time = deadline } :: !emissions;
          mark_covered_by st !best;
          greedy_rounds ()
        end
      in
      greedy_rounds ();
      process cursor
    end
  in
  process 0;
  Stream.make_result (List.rev !emissions)
