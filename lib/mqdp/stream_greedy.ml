(* StreamGreedySC over the incremental {!Window_index}: the live window
   [P', P' + τ] is held as a sliding window (push on the right, expire on
   the left), and each window's greedy runs on the windowed bucket-queue
   kernel with the window's persistent coverage marks as starting state.

   This replaces the original batch formulation — a whole-instance
   Pair_index with byte marks, re-scanning every candidate's window gain
   from scratch each round (O(window² · rounds) per window) — with one
   amortized begin_solve per window plus the zero-alloc pick loop. The
   emitted covers are bit-identical (enforced by test_streaming's
   reference port and the fuzzer):

   - marks: the old code marked, at emission time, every instance pair the
     emitted post covers. Here an emission marks the live (in-window)
     pairs via the pick kernel, and extends the per-label emission reach
     ([note_emission]); a later arrival is then born covered exactly when
     its value is within the recorded reach — equivalent, because arrivals
     are value-ascending, so for a future post only the right extent of an
     emitted interval can matter.
   - picks: per round the old code took the first strict maximum of the
     window gains, i.e. (max gain, smallest position) — precisely the
     bucket queue's pop_max tie rule.
   - stops: with [plus] the loop stops when the window's opening post is
     covered (checked before each pick, as before); without, it stops
     when no candidate has positive gain, which holds iff every live pair
     is marked — the old whole-window-covered test. *)

let solve ?(plus = false) ~tau instance lambda =
  if tau < 0. then invalid_arg "Stream_greedy.solve: negative tau";
  let l = Stream.fixed_lambda_exn ~who:"Stream_greedy.solve" lambda in
  let n = Instance.size instance in
  let w = Window_index.create (Coverage.Fixed l) in
  let solver = Greedy_sc.window_solver () in
  let emissions = ref [] in
  (* Arrival numbers in [w] coincide with instance positions: posts are
     pushed in instance (value) order, one for one. *)
  let ensure_pushed g =
    while Window_index.total w <= g do
      Window_index.push w (Instance.post instance (Window_index.total w))
    done
  in
  let rec advance cursor =
    if cursor >= n then cursor
    else begin
      ensure_pushed cursor;
      if Window_index.fully_covered w (cursor - Window_index.expired w) then
        advance (cursor + 1)
      else cursor
    end
  in
  let rec process cursor =
    let cursor = advance cursor in
    if cursor < n then begin
      (* Slide the window to exactly [cursor, cursor's deadline]. *)
      Window_index.expire_posts w (cursor - Window_index.expired w);
      let deadline = Instance.value instance cursor +. tau in
      let keep_pushing = ref true in
      while !keep_pushing && Window_index.total w < n do
        if Instance.value instance (Window_index.total w) <= deadline then
          Window_index.push w (Instance.post instance (Window_index.total w))
        else keep_pushing := false
      done;
      let st = Greedy_sc.state_of_window ~marked:true ~solver w in
      let stop () = plus && Window_index.fully_covered w 0 in
      let rec rounds () =
        if not (stop ()) then begin
          let k = Greedy_sc.pop_best st in
          if k >= 0 then begin
            emissions :=
              { Stream.position = Window_index.expired w + k; emit_time = deadline }
              :: !emissions;
            Greedy_sc.commit st k;
            Window_index.note_emission w (Window_index.post w k);
            rounds ()
          end
        end
      in
      rounds ();
      process cursor
    end
  in
  process 0;
  Stream.make_result (List.rev !emissions)
