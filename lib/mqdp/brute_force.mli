(** Exact minimum λ-cover by branch-and-bound over the set-cover
    formulation.

    Only usable on small instances; it is the ground truth against which
    {!Opt} and the approximation algorithms are validated in tests, and it
    powers the NP-hardness reduction checks. The search branches on the
    uncovered (post, label) pair with the fewest candidate coverers and
    prunes with the bound |chosen| + ⌈uncovered / max-set-size⌉. *)

exception Too_large of string

(** [solve instance lambda] is an optimal cover (positions, ascending).

    @param max_pairs refuse instances with more (post, label) pairs
      (default 4096).
    @param max_nodes abort after this many search nodes (default 20M).
    @param budget cooperative budget (default unlimited), threaded through
      index construction, the greedy bound, and the search; set indices in
      a salvaged [Partial_cover] are instance positions here. Mid-search
      the salvage is the best complete cover known (see {!Set_cover}).
    @raise Too_large when a limit is hit.
    @raise Interrupt.Budget_exceeded on budget exhaustion. *)
val solve :
  ?max_pairs:int -> ?max_nodes:int -> ?budget:Util.Budget.t -> Instance.t ->
  Coverage.lambda -> int list

(** [solve_bounded ~bound instance lambda] is [Some cover] with
    [List.length cover <= bound] when such a cover exists, else [None].
    Faster than [solve] when only a budget question is asked. *)
val solve_bounded :
  ?max_pairs:int -> ?max_nodes:int -> ?budget:Util.Budget.t -> bound:int ->
  Instance.t -> Coverage.lambda -> int list option

(** [min_size instance lambda] is [List.length (solve instance lambda)]. *)
val min_size :
  ?max_pairs:int -> ?max_nodes:int -> ?budget:Util.Budget.t -> Instance.t ->
  Coverage.lambda -> int
