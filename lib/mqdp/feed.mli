(** Fault-tolerant ingestion frontend for the {!Online} engine.

    {!Online} demands a clean feed: strictly time-ordered, duplicate-free,
    finite timestamps, and a process that never dies. Real microblog
    traffic offers none of that. [Feed] sits in front and provides:

    - a bounded {e reorder buffer}: arrivals are staged in a min-heap of
      at most [reorder_window] posts and released to the engine in time
      order, so disorder up to the window depth is absorbed silently;
    - per-class {e fault policies}: arrivals that are late (older than the
      release watermark even after buffering), duplicates (an id already
      admitted), or carry a non-finite timestamp are dropped, clamped to
      the watermark, or raised as {!Rejected} — each outcome counted;
    - {e overload degradation}: when the number of labels with live
      deadlines exceeds [overload_budget], the most urgent labels are
      demoted to instant handling ({!Online.degrade_earliest}) — the
      emission guarantees survive, queues stop growing, and the shed work
      is counted instead of silently lost;
    - {e checkpoint/restore}: a versioned, checksummed, text serialization
      of the complete frontend + engine state. Restoring a checkpoint and
      replaying the remaining stream yields emissions bit-identical to a
      run that never died.

    Every policy decision is deterministic, so a faulty feed replays
    exactly from a seed — which is what `bin/mqdp_fuzz --fault` leans on. *)

(** What to do with a faulty arrival. [Clamp] repairs the post by moving
    its timestamp to the release watermark (for a duplicate, which has no
    repairable timestamp, it behaves like [Drop]). [Raise] throws
    {!Rejected}, leaving the stream state untouched so the caller can skip
    the post and continue. *)
type policy =
  | Drop
  | Clamp
  | Raise

type config = {
  reorder_window : int;  (** max staged posts; 0 = release immediately *)
  late : policy;
  duplicate : policy;
  non_finite : policy;
  overload_budget : int option;
      (** max labels with live deadlines before degradation; [None] never
          degrades *)
}

(** Window 64, every policy [Drop], no degradation. *)
val default_config : config

(** Monotone totals of every decision the frontend has made. *)
type counters = {
  accepted : int;  (** admitted into the reorder buffer *)
  released : int;  (** forwarded to the engine in time order *)
  reordered : int;  (** accepted although older than an earlier arrival *)
  late_dropped : int;
  late_clamped : int;
  duplicate_dropped : int;
  non_finite_dropped : int;
  non_finite_clamped : int;
  rejected : int;  (** faults that raised under a [Raise] policy *)
  degraded_labels : int;  (** labels demoted to instant handling *)
  shed : int;  (** pending posts cleared (λ-covered) by degradation *)
}

type t

exception Rejected of { id : int; what : string }

(** Raised by {!restore} / {!load_checkpoint} on a checkpoint that fails
    validation: bad magic, checksum mismatch, or a structurally invalid
    body. *)
exception Corrupt of string

(** Raised by {!restore} / {!load_checkpoint} on an intact checkpoint
    (magic and checksum valid) whose format version is not the one this
    build writes. Distinct from {!Corrupt} so callers can handle a
    version skew — migrate, warn, refuse — without conflating it with
    data damage. *)
exception Unsupported_version of { found : string; expected : int }

(** [create ?config ?window ~lambda mode] — a fresh frontend over a fresh
    engine. With [window:true] (default [false]) the engine mirrors the
    admitted stream into a {!Window_index} (see {!Online.create}); the
    live window travels inside checkpoints and is restored bit-identically.
    Raises [Invalid_argument] on a negative [reorder_window], a
    non-positive [overload_budget], or invalid engine parameters. *)
val create : ?config:config -> ?window:bool -> lambda:float -> Online.mode -> t

(** The engine's mirrored window, when [create] was given [window:true]
    (or the restored checkpoint carried one). *)
val window : t -> Window_index.t option

type outcome = {
  admitted : Post.t option;
      (** the post as admitted (clamping may have moved its timestamp);
          [None] when the post was dropped *)
  emissions : Online.emission list;  (** due emissions, in emit-time order *)
}

(** [push t post] — run the fault policies, stage the post, release
    everything the window no longer holds, and apply overload
    degradation. Raises {!Rejected} (before touching any stream state)
    when a fault class is configured to [Raise]. *)
val push : t -> Post.t -> outcome

(** [finish t] — release the whole reorder buffer and drain the engine.
    Like {!Online.finish}, the frontend stays usable afterwards. *)
val finish : t -> Online.emission list

val counters : t -> counters
val config : t -> config

(** The wrapped engine, for observability ({!Online.emitted_count},
    {!Online.pending_labels}, ...). Mutating it directly voids the
    checkpoint guarantees. *)
val engine : t -> Online.t

(** Number of posts currently staged in the reorder buffer. *)
val buffered : t -> int

(** Timestamp of the newest post released to the engine, or [None] before
    the first release. Arrivals below it are late. *)
val watermark : t -> float option

(** {2 Checkpointing}

    The serialization is line-oriented text: a magic+version header, the
    full frontend and engine state (floats as IEEE-754 bit patterns, so
    round-trips are exact), the mirrored window when one is attached,
    and a trailing FNV-1a-64 checksum over the body. [restore
    (checkpoint t)] is observationally identical to [t]: pushing the
    same remaining stream produces bit-identical emissions. Checkpoints
    from other format versions raise {!Unsupported_version}. *)

val checkpoint : t -> string

val restore : string -> t

(** [save_checkpoint ~path t] writes {!checkpoint} crash-safely: the bytes
    go to a temp sibling, are fsynced, and only then renamed over [path]
    ({!Util.Fs.atomic_write}) — a crash mid-write leaves the previous
    checkpoint intact, never a torn one. *)
val save_checkpoint : path:string -> t -> unit

val load_checkpoint : string -> t
