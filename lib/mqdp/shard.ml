type config = {
  queue_capacity : int;
  tick_steps : int option;
}

type counters = {
  acked : int;
  shed : int;
  applied : int;
}

type t = {
  config : config;
  table : (string, Profile.t) Hashtbl.t;
  mutable order : string list;  (* sorted names; rebuilt when dirty *)
  mutable order_dirty : bool;
  mutable backlog : int;
  mutable acked : int;
  mutable shed : int;
  mutable applied : int;
}

let create config =
  if config.queue_capacity < 1 then invalid_arg "Shard.create: queue_capacity < 1";
  (match config.tick_steps with
  | Some n when n < 1 -> invalid_arg "Shard.create: tick_steps < 1"
  | _ -> ());
  {
    config;
    table = Hashtbl.create 64;
    order = [];
    order_dirty = false;
    backlog = 0;
    acked = 0;
    shed = 0;
    applied = 0;
  }

let config t = t.config

let add t profile =
  let name = Profile.name profile in
  if Hashtbl.mem t.table name then
    invalid_arg (Printf.sprintf "Shard.add: duplicate profile %S" name);
  Hashtbl.add t.table name profile;
  t.order <- name :: t.order;
  t.order_dirty <- true;
  t.backlog <- t.backlog + Profile.pending profile

let remove t name =
  match Hashtbl.find_opt t.table name with
  | None -> false
  | Some profile ->
    Hashtbl.remove t.table name;
    t.order <- List.filter (fun n -> n <> name) t.order;
    t.backlog <- t.backlog - Profile.pending profile;
    true

let find t name = Hashtbl.find_opt t.table name
let profile_count t = Hashtbl.length t.table

let sorted_order t =
  if t.order_dirty then begin
    t.order <- List.sort String.compare t.order;
    t.order_dirty <- false
  end;
  t.order

let profiles t =
  List.map (fun name -> Hashtbl.find t.table name) (sorted_order t)

let backlog t = t.backlog
let counters t = { acked = t.acked; shed = t.shed; applied = t.applied }

let crash_count t =
  Hashtbl.fold (fun _ p acc -> acc + Profile.crashes p) t.table 0

let quarantined_count t =
  Hashtbl.fold (fun _ p acc -> acc + if Profile.quarantined p then 1 else 0)
    t.table 0

let offer t profile post =
  if t.backlog >= t.config.queue_capacity || Profile.quarantined profile then begin
    t.shed <- t.shed + 1;
    false
  end
  else begin
    Profile.offer profile post;
    t.backlog <- t.backlog + 1;
    t.acked <- t.acked + 1;
    true
  end

let tick ?chaos ?deadline t =
  let budget =
    match (t.config.tick_steps, deadline) with
    | None, None -> Util.Budget.unlimited
    | max_steps, deadline -> Util.Budget.create ?deadline ?max_steps ()
  in
  let applied = ref 0 in
  let rec walk = function
    | [] -> ()
    | name :: rest ->
      (match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some profile ->
        if not (Profile.quarantined profile) then begin
          let n = Profile.process ?chaos ~budget profile in
          applied := !applied + n;
          t.backlog <- t.backlog - n
        end);
      if not (Util.Budget.should_stop budget) then walk rest
  in
  walk (sorted_order t);
  t.applied <- t.applied + !applied;
  !applied

exception Corrupt of string

let fnv64 s =
  let p = 0x100000001b3L and h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) p)
    s;
  !h

let magic = "mqdp-shard-snapshot"
let version = 1

let snapshot t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s v%d" magic version;
  line "config %d %s" t.config.queue_capacity
    (match t.config.tick_steps with None -> "none" | Some n -> string_of_int n);
  line "counters %d %d %d" t.acked t.shed t.applied;
  line "profiles %d" (Hashtbl.length t.table);
  List.iter
    (fun p -> line "P %s" (String.escaped (Profile.blob p)))
    (profiles t);
  let body = Buffer.contents b in
  Printf.sprintf "%schecksum %016Lx\n" body (fnv64 body)

let restore s =
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  (* Split off and verify the trailing checksum line first. *)
  let body, checksum_line =
    match String.rindex_opt (String.trim s) '\n' with
    | None -> corrupt "no checksum line"
    | Some i ->
      let trimmed = String.trim s in
      (String.sub trimmed 0 (i + 1), String.sub trimmed (i + 1) (String.length trimmed - i - 1))
  in
  (match String.split_on_char ' ' checksum_line with
  | [ "checksum"; hex ] ->
    if Printf.sprintf "%016Lx" (fnv64 body) <> hex then corrupt "checksum mismatch"
  | _ -> corrupt "bad checksum line");
  let lines = ref (List.filter (fun l -> l <> "") (String.split_on_char '\n' body)) in
  let next () =
    match !lines with
    | l :: rest ->
      lines := rest;
      l
    | [] -> corrupt "truncated snapshot"
  in
  (match String.split_on_char ' ' (next ()) with
  | [ m; v ] when m = magic ->
    if v <> Printf.sprintf "v%d" version then corrupt "unsupported version %s" v
  | _ -> corrupt "bad magic line");
  let config =
    match String.split_on_char ' ' (next ()) with
    | [ "config"; cap; steps ] -> (
      match (int_of_string_opt cap, steps) with
      | Some queue_capacity, "none" -> { queue_capacity; tick_steps = None }
      | Some queue_capacity, steps -> (
        match int_of_string_opt steps with
        | Some n -> { queue_capacity; tick_steps = Some n }
        | None -> corrupt "bad tick_steps")
      | None, _ -> corrupt "bad queue_capacity")
    | _ -> corrupt "bad config line"
  in
  let acked, shed, applied =
    match String.split_on_char ' ' (next ()) with
    | [ "counters"; a; s; ap ] -> (
      match (int_of_string_opt a, int_of_string_opt s, int_of_string_opt ap) with
      | Some a, Some s, Some ap -> (a, s, ap)
      | _ -> corrupt "bad counters line")
    | _ -> corrupt "bad counters line"
  in
  let count =
    match String.split_on_char ' ' (next ()) with
    | [ "profiles"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | _ -> corrupt "bad profile count")
    | _ -> corrupt "bad profiles line"
  in
  let t = create config in
  for _ = 1 to count do
    let l = next () in
    if String.length l < 2 || String.sub l 0 2 <> "P " then
      corrupt "bad profile line";
    let blob =
      try Scanf.unescaped (String.sub l 2 (String.length l - 2))
      with Scanf.Scan_failure _ -> corrupt "bad profile escaping"
    in
    match Profile.of_blob blob with
    | p -> add t p
    | exception Feed.Corrupt m -> corrupt "profile blob: %s" m
  done;
  (* [add] already recomputed the backlog from the restored journals;
     the monotone totals come from the snapshot. *)
  t.acked <- acked;
  t.shed <- shed;
  t.applied <- applied;
  t
