(** Immutable sets of labels, stored as compact bitsets.

    Label sets are small (the paper's experiments use |L| up to 20) but are
    manipulated in inner loops of every algorithm, so they are backed by an
    immutable array of 63-bit words. Structural equality coincides with set
    equality because trailing zero words are always trimmed. *)

type t

val empty : t
val singleton : Label.t -> t
val of_list : Label.t list -> t
val to_list : t -> Label.t list

val add : Label.t -> t -> t
val remove : Label.t -> t -> t
val mem : Label.t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val cardinal : t -> int
val subset : t -> t -> bool

(** [disjoint a b] is [is_empty (inter a b)] without allocating. *)
val disjoint : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** Word-level access, the closure-free alternative to {!iter} for hot
    loops: label [wi * bits_per_word + b] is a member iff bit [b] of
    [word s wi] is set. [word] is unchecked — keep [0 <= wi < word_count s]. *)
val bits_per_word : int

val word_count : t -> int
val word : t -> int -> int

val iter : (Label.t -> unit) -> t -> unit
val fold : (Label.t -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (Label.t -> bool) -> t -> bool
val exists : (Label.t -> bool) -> t -> bool

(** [choose s] is the smallest label in [s]. Raises [Not_found] when empty. *)
val choose : t -> Label.t

(** [max_label s] is the largest label in [s]. Raises [Not_found] when
    empty. *)
val max_label : t -> Label.t

val pp : Format.formatter -> t -> unit
