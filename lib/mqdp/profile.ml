type config = {
  lambda : float;
  mode : Online.mode;
  feed : Feed.config;
  window : bool;
  checkpoint_every : int;
  max_restarts : int;
}

let default_config =
  {
    lambda = 60.;
    mode = Online.Delayed { tau = 30.; plus = false };
    feed = Feed.default_config;
    window = true;
    checkpoint_every = 64;
    max_restarts = 3;
  }

type t = {
  name : string;
  subscription : Label_set.t;
  config : config;
  mutable degraded : bool;
  mutable quarantined : bool;
  mutable crashes : int;
  mutable feed : Feed.t;  (* live incarnation; rebuilt wholesale on crash *)
  (* Durable state: everything below survives a crash because recovery
     only ever reads it — the live feed is the one thing rebuilt. *)
  mutable ckpt : string;
  mutable ckpt_emit_seq : int;
  mutable ckpt_buffer : (int * Online.emission) list;  (* ascending *)
  mutable journal_rev : Post.t list;  (* applied since ckpt, newest first *)
  mutable journal_n : int;
  pending_q : Post.t Queue.t;
  mutable pending_n : int;
  mutable emit_seq : int;
  mutable reported_upto : int;
  mutable buffer_rev : (int * Online.emission) list;  (* newest first *)
  mutable acked : int;
  mutable applied : int;
  mutable rejected : int;
  breaker : Supervisor.Breaker.t;
}

let make_feed (config : config) =
  Feed.create ~config:config.feed ~window:config.window ~lambda:config.lambda
    config.mode

let create ~name ~subscription config =
  if name = "" then invalid_arg "Profile.create: empty name";
  if Label_set.is_empty subscription then
    invalid_arg "Profile.create: empty subscription";
  if config.checkpoint_every < 0 then
    invalid_arg "Profile.create: checkpoint_every < 0";
  if config.max_restarts < 0 then invalid_arg "Profile.create: max_restarts < 0";
  let feed = make_feed config in
  {
    name;
    subscription;
    config;
    degraded = false;
    quarantined = false;
    crashes = 0;
    feed;
    ckpt = Feed.checkpoint feed;
    ckpt_emit_seq = 0;
    ckpt_buffer = [];
    journal_rev = [];
    journal_n = 0;
    pending_q = Queue.create ();
    pending_n = 0;
    emit_seq = 0;
    reported_upto = 0;
    buffer_rev = [];
    acked = 0;
    applied = 0;
    rejected = 0;
    breaker = Supervisor.Breaker.create ();
  }

let name t = t.name
let subscription t = t.subscription
let config t = t.config
let degraded t = t.degraded
let mark_degraded t = t.degraded <- true
let quarantined t = t.quarantined
let crashes t = t.crashes
let pending t = t.pending_n
let unreported t = List.length t.buffer_rev
let acked t = t.acked
let applied t = t.applied
let rejected t = t.rejected
let window t = Feed.window t.feed
let breaker t = t.breaker

let offer t post =
  if t.quarantined then invalid_arg "Profile.offer: profile is quarantined";
  Queue.push post t.pending_q;
  t.pending_n <- t.pending_n + 1;
  t.acked <- t.acked + 1

let note_emissions t emissions =
  List.iter
    (fun e ->
      t.emit_seq <- t.emit_seq + 1;
      t.buffer_rev <- (t.emit_seq, e) :: t.buffer_rev)
    emissions

(* A [Raise]-policy rejection is a policy outcome, not a failure: the feed
   state is untouched, the post is consumed and counted. Replay reproduces
   the same rejection deterministically (without recounting). *)
let apply_post t post =
  match Feed.push t.feed post with
  | outcome -> note_emissions t outcome.Feed.emissions
  | exception Feed.Rejected _ -> t.rejected <- t.rejected + 1

(* Rebuild the live feed from the checkpoint and replay the journal
   chaos-free. Feed's bit-identical replay guarantee regenerates exactly
   the emissions the dead incarnation produced — same order, and (counting
   from the checkpoint's sequence number) the same sequence numbers — so
   the unreported buffer can be reconstructed precisely: pre-checkpoint
   emissions come from [ckpt_buffer], post-checkpoint ones from the
   replay, both filtered by the reported watermark. *)
let recover t =
  let feed = Feed.restore t.ckpt in
  t.feed <- feed;
  let seq = ref t.ckpt_emit_seq in
  let replayed_rev = ref [] in
  let replay post =
    match Feed.push feed post with
    | outcome ->
      List.iter
        (fun e ->
          incr seq;
          if !seq > t.reported_upto then replayed_rev := (!seq, e) :: !replayed_rev)
        outcome.Feed.emissions
    | exception Feed.Rejected _ -> ()
  in
  List.iter replay (List.rev t.journal_rev);
  t.emit_seq <- !seq;
  let kept_ckpt =
    List.filter (fun (s, _) -> s > t.reported_upto) t.ckpt_buffer
  in
  t.buffer_rev <- !replayed_rev @ List.rev kept_ckpt

let checkpoint_now t =
  t.ckpt <- Feed.checkpoint t.feed;
  t.ckpt_emit_seq <- t.emit_seq;
  t.ckpt_buffer <- List.rev t.buffer_rev;
  t.journal_rev <- [];
  t.journal_n <- 0

let maybe_auto_checkpoint t =
  if t.config.checkpoint_every > 0 && t.journal_n >= t.config.checkpoint_every
  then checkpoint_now t

(* Apply one post, recovering from any crash. The first attempt runs the
   chaos hook before touching the feed (so an injected crash can never
   tear it); retries after a recovery run chaos-free, so each crash makes
   progress — unless the restart limit trips, which quarantines. Returns
   [false] on quarantine. *)
let rec apply_with_recovery t ~chaos ~use_chaos post =
  match
    if use_chaos then chaos ();
    apply_post t post
  with
  | () ->
    t.journal_rev <- post :: t.journal_rev;
    t.journal_n <- t.journal_n + 1;
    true
  | exception _ ->
    t.crashes <- t.crashes + 1;
    recover t;
    if t.crashes > t.config.max_restarts then begin
      t.quarantined <- true;
      false
    end
    else apply_with_recovery t ~chaos ~use_chaos:false post

let process ?(chaos = fun () -> ()) ?(budget = Util.Budget.unlimited) t =
  let applied0 = t.applied in
  (try
     while (not t.quarantined) && t.pending_n > 0 do
       Util.Budget.step budget;
       let post = Queue.peek t.pending_q in
       if apply_with_recovery t ~chaos ~use_chaos:true post then begin
         ignore (Queue.pop t.pending_q);
         t.pending_n <- t.pending_n - 1;
         t.applied <- t.applied + 1;
         maybe_auto_checkpoint t
       end
     done
   with Util.Budget.Exhausted _ -> ());
  t.applied - applied0

let take_report t =
  let report = List.rev t.buffer_rev in
  t.buffer_rev <- [];
  t.reported_upto <- t.emit_seq;
  report

let drain t =
  if not t.quarantined then begin
    note_emissions t (Feed.finish t.feed);
    (* Mandatory: finish emissions cannot be regenerated by journal
       replay, so they must be baked into the checkpoint to be durable. *)
    checkpoint_now t
  end

let revive t =
  if t.quarantined then begin
    recover t;
    t.crashes <- 0;
    t.quarantined <- false
  end

(* {2 Durable serialization}

   Line-oriented text mirroring Feed's checkpoint idioms: floats as hex
   IEEE-754 bit patterns (exact round-trips), the embedded feed checkpoint
   escaped onto one line. Integrity (checksums) is the enclosing shard
   snapshot's job. *)

let hex_of_float f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_of_hex s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some bits -> Int64.float_of_bits bits
  | None -> raise (Feed.Corrupt (Printf.sprintf "bad float field %S" s))

let labels_field ls =
  match Label_set.to_list ls with
  | [] -> "-"
  | labels -> String.concat "," (List.map string_of_int labels)

let labels_of_field s =
  if s = "-" then Label_set.empty
  else
    Label_set.of_list
      (List.map
         (fun tok ->
           match int_of_string_opt tok with
           | Some l when l >= 0 -> l
           | _ -> raise (Feed.Corrupt (Printf.sprintf "bad label field %S" s)))
         (String.split_on_char ',' s))

let post_field p =
  Printf.sprintf "%d %s %s" p.Post.id (hex_of_float p.Post.value)
    (labels_field p.Post.labels)

let post_of_tokens = function
  | [ id; value; labels ] -> (
    match int_of_string_opt id with
    | Some id ->
      Post.make ~id ~value:(float_of_hex value) ~labels:(labels_of_field labels)
    | None -> raise (Feed.Corrupt "bad post id"))
  | _ -> raise (Feed.Corrupt "bad post field count")

let policy_char = function Feed.Drop -> 'd' | Feed.Clamp -> 'c' | Feed.Raise -> 'r'

let policy_of_char = function
  | 'd' -> Feed.Drop
  | 'c' -> Feed.Clamp
  | 'r' -> Feed.Raise
  | c -> raise (Feed.Corrupt (Printf.sprintf "bad policy char %c" c))

let mode_field = function
  | Online.Instant -> "instant"
  | Online.Delayed { tau; plus } ->
    Printf.sprintf "delayed %s %d" (hex_of_float tau) (if plus then 1 else 0)

let blob t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "name %s" (String.escaped t.name);
  line "flags %d %d %d" (if t.degraded then 1 else 0)
    (if t.quarantined then 1 else 0)
    t.crashes;
  line "counters %d %d %d" t.acked t.applied t.rejected;
  line "seqs %d %d" t.reported_upto t.ckpt_emit_seq;
  line "config %s %s %d %d %d"
    (hex_of_float t.config.lambda)
    (mode_field t.config.mode)
    (if t.config.window then 1 else 0)
    t.config.checkpoint_every t.config.max_restarts;
  let fc = t.config.feed in
  line "feedcfg %d %c %c %c %s" fc.Feed.reorder_window (policy_char fc.Feed.late)
    (policy_char fc.Feed.duplicate)
    (policy_char fc.Feed.non_finite)
    (match fc.Feed.overload_budget with
    | None -> "none"
    | Some n -> string_of_int n);
  line "sub %s" (labels_field t.subscription);
  line "ckpt %s" (String.escaped t.ckpt);
  line "cb %d" (List.length t.ckpt_buffer);
  List.iter
    (fun (seq, e) ->
      line "e %d %s %s" seq (hex_of_float e.Online.emit_time)
        (post_field e.Online.post))
    t.ckpt_buffer;
  line "j %d" t.journal_n;
  List.iter (fun p -> line "p %s" (post_field p)) (List.rev t.journal_rev);
  line "pq %d" t.pending_n;
  Queue.iter (fun p -> line "p %s" (post_field p)) t.pending_q;
  Buffer.contents b

let of_blob s =
  let lines = String.split_on_char '\n' s in
  let lines = ref (List.filter (fun l -> l <> "") lines) in
  let next tag =
    match !lines with
    | l :: rest -> (
      lines := rest;
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = tag ->
        String.sub l (i + 1) (String.length l - i - 1)
      | _ -> raise (Feed.Corrupt (Printf.sprintf "expected %S line, got %S" tag l)))
    | [] -> raise (Feed.Corrupt (Printf.sprintf "missing %S line" tag))
  in
  let tokens s = String.split_on_char ' ' s in
  let int_tok s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> raise (Feed.Corrupt (Printf.sprintf "bad int field %S" s))
  in
  let unescape s =
    try Scanf.unescaped s
    with Scanf.Scan_failure _ -> raise (Feed.Corrupt "bad escaped field")
  in
  let name = unescape (next "name") in
  let degraded, quarantined, crashes =
    match tokens (next "flags") with
    | [ d; q; c ] -> (int_tok d = 1, int_tok q = 1, int_tok c)
    | _ -> raise (Feed.Corrupt "bad flags line")
  in
  let acked, applied, rejected =
    match tokens (next "counters") with
    | [ a; p; r ] -> (int_tok a, int_tok p, int_tok r)
    | _ -> raise (Feed.Corrupt "bad counters line")
  in
  let reported_upto, ckpt_emit_seq =
    match tokens (next "seqs") with
    | [ r; c ] -> (int_tok r, int_tok c)
    | _ -> raise (Feed.Corrupt "bad seqs line")
  in
  let lambda, mode, window, checkpoint_every, max_restarts =
    match tokens (next "config") with
    | [ lambda; "instant"; w; ce; mr ] ->
      (float_of_hex lambda, Online.Instant, int_tok w = 1, int_tok ce, int_tok mr)
    | [ lambda; "delayed"; tau; plus; w; ce; mr ] ->
      ( float_of_hex lambda,
        Online.Delayed { tau = float_of_hex tau; plus = int_tok plus = 1 },
        int_tok w = 1,
        int_tok ce,
        int_tok mr )
    | _ -> raise (Feed.Corrupt "bad config line")
  in
  let feed_config =
    match tokens (next "feedcfg") with
    | [ rw; late; dup; nf; ob ] when
        String.length late = 1 && String.length dup = 1 && String.length nf = 1
      ->
      {
        Feed.reorder_window = int_tok rw;
        late = policy_of_char late.[0];
        duplicate = policy_of_char dup.[0];
        non_finite = policy_of_char nf.[0];
        overload_budget = (if ob = "none" then None else Some (int_tok ob));
      }
    | _ -> raise (Feed.Corrupt "bad feedcfg line")
  in
  let subscription = labels_of_field (next "sub") in
  let ckpt = unescape (next "ckpt") in
  let count tag = int_tok (next tag) in
  let ckpt_buffer =
    List.init (count "cb") (fun _ ->
        match tokens (next "e") with
        | seq :: emit :: post_toks ->
          ( int_tok seq,
            {
              Online.emit_time = float_of_hex emit;
              post = post_of_tokens post_toks;
            } )
        | _ -> raise (Feed.Corrupt "bad ckpt-buffer entry"))
  in
  let journal =
    List.init (count "j") (fun _ -> post_of_tokens (tokens (next "p")))
  in
  let pending = List.init (count "pq") (fun _ -> post_of_tokens (tokens (next "p"))) in
  let config =
    { lambda; mode; feed = feed_config; window; checkpoint_every; max_restarts }
  in
  let pending_q = Queue.create () in
  List.iter (fun p -> Queue.push p pending_q) pending;
  let t =
    {
      name;
      subscription;
      config;
      degraded;
      quarantined;
      crashes;
      feed = Feed.restore ckpt;
      ckpt;
      ckpt_emit_seq;
      ckpt_buffer;
      journal_rev = List.rev journal;
      journal_n = List.length journal;
      pending_q;
      pending_n = List.length pending;
      emit_seq = 0;
      reported_upto;
      buffer_rev = [];
      acked;
      applied;
      rejected;
      breaker = Supervisor.Breaker.create ();
    }
  in
  (* Rebuilding from durable state IS the crash-recovery path: replay the
     journal to regenerate the live feed, sequence counter, and buffer. *)
  recover t;
  t
