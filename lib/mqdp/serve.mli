(** The multi-tenant serving core: a sans-IO line-protocol engine hosting
    thousands of {!Profile}s hashed onto fixed {!Shard}s, driven by a
    {!Util.Pool} for parallel ticks. [bin/mqdp_serve] wraps it in
    stdin/TCP transport; the fuzzer and tests drive {!exec} directly.

    {2 Wire protocol}

    One request per line: [<seq> VERB args...]; one or more response
    lines, each echoing [<seq>], the last being [<seq> OK ...] or
    [<seq> ERR <code> <message>]. Sequence numbers must be strictly
    increasing per {e session}; the last [seq_cache] responses are kept
    per session, so a client that times out retries the {e same} line
    verbatim and receives the cached response — commands are idempotent
    under retry (a retried FEED does not deliver twice). A sequence
    number below the watermark and out of cache is refused with
    [ERR stale-seq].

    A session is one client's retry window. {!exec} runs on the engine's
    default session (the stdin transport, the replay loader, and all
    pre-existing callers). The concurrent transport gives every
    connection its own anonymous session ({!new_session}), or — when the
    client opens with [HELLO <id>] — a named session ({!session}) that
    survives reconnects, so a client whose connection was reset can
    reconnect, re-send [HELLO], and retry its last line verbatim with the
    idempotency guarantee intact.

    Named sessions and the default session are additionally {e durable}
    when a journal is attached ({!attach_journal}): every fresh execution
    appends a checksummed [(gsn, id, seq, line, response)] record before
    the response reaches the transport, and a rebooted daemon replays the
    journal so watermarks and response caches — and, via redo of the
    commands newer than the shard snapshots, the engine state they
    acknowledged — survive process death (DESIGN.md §21). Anonymous
    sessions stay memory-only by design: with no identity there is
    nothing for a reconnecting client to rebind to.

    The named-session table is bounded: sessions idle past [session_ttl]
    are swept, and past [max_sessions] the least-recently-used is evicted
    (gauge [serve.sessions]). An evicted or expired session that returns
    starts a fresh sequence space.

    Verbs:
    - [ADD <name> <lambda> <mode> <labels> [nowindow]] — admit a profile.
      [mode] is [instant], [delayed:<tau>] or [delayed+:<tau>]; [labels]
      is comma-separated ints. Over [degrade_above] profiles, admission
      degrades (forced instant, no window — [OK added degraded]); at
      [max_profiles], [ERR capacity].
    - [DEL <name>]
    - [FEED <id> <value> <labels>] — fan a post out to every subscribed
      profile (label-inverted index, deduplicated, delivered in name
      order). Replies [OK delivered=<n> shed=<m>]; shed posts (full shard
      queue, quarantined profile) are {e not} acknowledged.
    - [TICK] — drain pending posts on every shard, in parallel on the
      pool, each shard under its step budget. [OK applied=<n> backlog=<n>].
    - [REPORT <name>] — unreported emissions as [<seq> EMIT <eseq> <id>
      <time-hex>] lines, then [<seq> OK <count>].
    - [QUERY <name>] — solve the profile's live window via {!Supervisor}
      (GreedySC-rooted ladder, per-profile breaker, request budget).
      [OK rung=<rung> size=<n> cover=<ids>]; [ERR no-window] for
      windowless profiles.
    - [STATS] — one JSON line: serving counters plus the {!Util.Telemetry}
      snapshot.
    - [CHECKPOINT [name]], [DRAIN [name]] — refresh checkpoints / finish
      feeds (one profile or all).
    - [RESTORE <name>] — revive a quarantined profile via its recovery
      path.
    - [PING]

    Error codes: [parse], [unknown-profile], [duplicate-profile],
    [capacity], [quarantined], [deadline], [stale-seq], [no-window]. *)

type config = {
  shards : int;
  jobs : int;  (** pool width for parallel ticks *)
  max_profiles : int;  (** hard admission ceiling: [ERR capacity] *)
  degrade_above : int;  (** soft ceiling: admit degraded beyond this *)
  queue_capacity : int;  (** per-shard acknowledged-post bound *)
  tick_steps : int option;  (** per-shard step budget per TICK *)
  request_deadline : float option;  (** seconds; [ERR deadline] past it *)
  checkpoint_every : int;  (** per-profile auto-checkpoint period *)
  max_restarts : int;  (** per-profile crashes before quarantine *)
  overload_budget : int option;  (** {!Feed} degradation threshold *)
  seq_cache : int;  (** retried-response window *)
  max_sessions : int;  (** named-session ceiling: LRU eviction past it *)
  session_ttl : float option;  (** idle seconds before a named session is swept *)
}

(** 4 shards, 1 job, 16384/12288 profile ceilings, 4096-post queues,
    unlimited ticks, no deadline, checkpoint every 64, 3 restarts, no
    overload budget, 64 cached responses, 4096 named sessions, no idle
    TTL. *)
val default_config : config

type t

(** Raises [Invalid_argument] on a non-positive [shards], [jobs],
    [max_profiles], [queue_capacity], [seq_cache], [max_sessions] or
    [session_ttl], or [degrade_above > max_profiles]. *)
val create : config -> t

val config : t -> config

(** [exec t line] — execute one request on the default session, returning
    the response lines in order. Never raises on bad input: malformed
    lines produce [ERR parse] responses. *)
val exec : t -> string -> string list

(** A per-client sequence space: watermark + retried-response cache. *)
type session

(** A fresh anonymous session (one per plain connection). *)
val new_session : t -> session

(** [session t ~id] — the named session for client [id], created on first
    use (sweeping expired sessions and evicting LRU past [max_sessions]
    first). Reconnecting clients that [HELLO id] land back on it. The
    empty id is reserved for the default session's durable identity; the
    transport rejects [HELLO] with an empty id. *)
val session : t -> id:string -> session

(** Named sessions currently registered. *)
val session_count : t -> int

(** [sweep_sessions ?now t] — drop every named session idle longer than
    [session_ttl] (no-op without a TTL); returns how many were dropped.
    [?now] overrides the monotonic clock reading, for tests. *)
val sweep_sessions : ?now:float -> t -> int

(** A session's sequence watermark — the highest seq it has executed.
    The transport reports it in the [HELLO] greeting so a reconnecting
    client can resume numbering above it. *)
val session_seq : session -> int

(** The engine's default session (stdin transport, {!exec}). *)
val default_session : t -> session

(** [exec_on t s line] — {!exec} against session [s]'s sequence space.
    All sessions share the engine state (profiles, shards, backlog);
    only the retry discipline is per-session. *)
val exec_on : t -> session -> string -> string list

(** [is_checkpoint_line line] — does [line] request a durable checkpoint
    ([<seq> CHECKPOINT ...])? Tokenization matches {!exec}'s (runs of
    whitespace collapse), so ["5  CHECKPOINT"] counts — the transport
    uses this to decide when to flush shard snapshots to disk. *)
val is_checkpoint_line : string -> bool

(** [is_durability_point_line line] — [CHECKPOINT] or [DRAIN]: the lines
    after which the daemon persists snapshots + manifest and compacts the
    session journal. *)
val is_durability_point_line : string -> bool

(** {2 Durable session journal}

    The journal lives at [<state-dir>/sessions.journal]: a versioned,
    per-record-checksummed {!Util.Fs.Journal} of executed commands
    ([C gsn id seq line response]) and compacted session snapshots
    ([W]/[R] records). [gsn] — the global sequence number — counts
    journaled commands monotonically across compactions and restarts;
    the daemon's manifest records the gsn its shard snapshots cover, and
    boot-time replay re-executes only the commands above it (installing
    every recorded response in the caches either way). See DESIGN.md §21
    for the crash-window analysis. *)

(** [attach_journal ?fsync t ~dir ~covered] — open (or create) the
    session journal under [dir], truncate a torn tail, replay the
    surviving records against [t] (redoing commands with gsn above
    [covered], the manifest's covered watermark), and start journaling
    subsequent fresh executions. Call exactly once, right after shard
    snapshots are restored and before serving. [fsync:false] trades
    power-loss durability for speed (benchmarks). Raises
    [Invalid_argument] when already attached, {!Util.Fs.Journal.Corrupt}
    on mid-file damage. *)
val attach_journal : ?fsync:bool -> t -> dir:string -> covered:int -> unit

(** Close the journal and stop journaling. Idempotent. *)
val detach_journal : t -> unit

val journal_attached : t -> bool

(** The gsn of the last journaled command — what the daemon writes into
    the manifest as [journal=] when its snapshots are durable. *)
val journal_gsn : t -> int

(** [compact_journal ?crash_after t] — atomically rewrite the journal as
    per-session [W]/[R] snapshots, dropping every [C] record. Only safe
    immediately after shard snapshots and a manifest covering
    {!journal_gsn} became durable — the daemon compacts exactly at
    durability points and clean shutdown. No-op when detached.
    [crash_after] injects a crash into the rewrite. *)
val compact_journal : ?crash_after:int -> t -> unit

(** [set_journal_crash_after t (Some n)] — arm a one-shot fault: the next
    journal append dies ({!Util.Fs.Crashed}) after [n] bytes, propagating
    out of {!exec}/{!exec_on} as a simulated process death mid-append. *)
val set_journal_crash_after : t -> int option -> unit

(** {2 State-dir manifest}

    A durable state directory records the shard count it was written
    under; loading it with a different [--shards] would silently orphan
    (or misplace) every profile whose name hashes elsewhere. The daemon
    writes {!manifest} next to the snapshots and refuses to boot when
    {!parse_manifest} disagrees with its configuration. *)

(** The manifest content for this engine ([shards=N] under a versioned
    header). [extra] appends further [key=value] integer lines — the
    daemon records [epoch] (which snapshot generation is current) and
    [journal] (the gsn those snapshots cover), making the
    multi-file snapshot set + journal watermark switch atomic: one
    {!Util.Fs.atomic_write} of the manifest commits all of it. *)
val manifest : ?extra:(string * int) list -> t -> string

(** [parse_manifest s] — the shard count a manifest records, or a
    human-readable reason it cannot be trusted. Unknown extra lines are
    ignored. *)
val parse_manifest : string -> (int, string) result

(** [manifest_field s key] — the integer [key=] line of a manifest, if
    present ([epoch], [journal]); [None] on older manifests. *)
val manifest_field : string -> string -> int option

(** The shard a profile name hashes to (FNV-1a-64 mod [shards]) — exposed
    so the fuzzer's single-threaded oracle can replicate placement and
    queue accounting. *)
val shard_of_name : shards:int -> string -> int

val shard_count : t -> int
val profile_count : t -> int

(** Total acknowledged-but-unapplied posts. *)
val backlog : t -> int

(** Shard restarts performed so far ({!restart_shard}). *)
val restarts : t -> int

(** [set_chaos t hook] installs (or clears) a crash-injection hook run
    before every post application during ticks. The hook runs on pool
    workers — it must be thread-safe. *)
val set_chaos : t -> (unit -> unit) option -> unit

(** [restart_shard t i] — snapshot shard [i] and rebuild it from the
    snapshot: a simulated process death and recovery. Acknowledged posts
    and unreported emissions survive by the {!Profile} durability
    contract. *)
val restart_shard : t -> int -> unit

(** Durable snapshot of shard [i] (for the daemon's [--state-dir]). *)
val shard_snapshot : t -> int -> string

(** Replace shard [i] with a restored snapshot (daemon startup). Raises
    {!Shard.Corrupt} on damage. *)
val load_shard : t -> int -> string -> unit

(** Shut the pool down. The engine keeps working (ticks run inline). *)
val shutdown : t -> unit
