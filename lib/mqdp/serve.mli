(** The multi-tenant serving core: a sans-IO line-protocol engine hosting
    thousands of {!Profile}s hashed onto fixed {!Shard}s, driven by a
    {!Util.Pool} for parallel ticks. [bin/mqdp_serve] wraps it in
    stdin/TCP transport; the fuzzer and tests drive {!exec} directly.

    {2 Wire protocol}

    One request per line: [<seq> VERB args...]; one or more response
    lines, each echoing [<seq>], the last being [<seq> OK ...] or
    [<seq> ERR <code> <message>]. Sequence numbers must be strictly
    increasing per {e session}; the last [seq_cache] responses are kept
    per session, so a client that times out retries the {e same} line
    verbatim and receives the cached response — commands are idempotent
    under retry (a retried FEED does not deliver twice). A sequence
    number below the watermark and out of cache is refused with
    [ERR stale-seq].

    A session is one client's retry window. {!exec} runs on the engine's
    default session (the stdin transport, the replay loader, and all
    pre-existing callers). The concurrent transport gives every
    connection its own anonymous session ({!new_session}), or — when the
    client opens with [HELLO <id>] — a named session ({!session}) that
    survives reconnects, so a client whose connection was reset can
    reconnect, re-send [HELLO], and retry its last line verbatim with the
    idempotency guarantee intact. Sessions are serving-side state only:
    they are not part of shard snapshots.

    Verbs:
    - [ADD <name> <lambda> <mode> <labels> [nowindow]] — admit a profile.
      [mode] is [instant], [delayed:<tau>] or [delayed+:<tau>]; [labels]
      is comma-separated ints. Over [degrade_above] profiles, admission
      degrades (forced instant, no window — [OK added degraded]); at
      [max_profiles], [ERR capacity].
    - [DEL <name>]
    - [FEED <id> <value> <labels>] — fan a post out to every subscribed
      profile (label-inverted index, deduplicated, delivered in name
      order). Replies [OK delivered=<n> shed=<m>]; shed posts (full shard
      queue, quarantined profile) are {e not} acknowledged.
    - [TICK] — drain pending posts on every shard, in parallel on the
      pool, each shard under its step budget. [OK applied=<n> backlog=<n>].
    - [REPORT <name>] — unreported emissions as [<seq> EMIT <eseq> <id>
      <time-hex>] lines, then [<seq> OK <count>].
    - [QUERY <name>] — solve the profile's live window via {!Supervisor}
      (GreedySC-rooted ladder, per-profile breaker, request budget).
      [OK rung=<rung> size=<n> cover=<ids>]; [ERR no-window] for
      windowless profiles.
    - [STATS] — one JSON line: serving counters plus the {!Util.Telemetry}
      snapshot.
    - [CHECKPOINT [name]], [DRAIN [name]] — refresh checkpoints / finish
      feeds (one profile or all).
    - [RESTORE <name>] — revive a quarantined profile via its recovery
      path.
    - [PING]

    Error codes: [parse], [unknown-profile], [duplicate-profile],
    [capacity], [quarantined], [deadline], [stale-seq], [no-window]. *)

type config = {
  shards : int;
  jobs : int;  (** pool width for parallel ticks *)
  max_profiles : int;  (** hard admission ceiling: [ERR capacity] *)
  degrade_above : int;  (** soft ceiling: admit degraded beyond this *)
  queue_capacity : int;  (** per-shard acknowledged-post bound *)
  tick_steps : int option;  (** per-shard step budget per TICK *)
  request_deadline : float option;  (** seconds; [ERR deadline] past it *)
  checkpoint_every : int;  (** per-profile auto-checkpoint period *)
  max_restarts : int;  (** per-profile crashes before quarantine *)
  overload_budget : int option;  (** {!Feed} degradation threshold *)
  seq_cache : int;  (** retried-response window *)
}

(** 4 shards, 1 job, 16384/12288 profile ceilings, 4096-post queues,
    unlimited ticks, no deadline, checkpoint every 64, 3 restarts, no
    overload budget, 64 cached responses. *)
val default_config : config

type t

(** Raises [Invalid_argument] on a non-positive [shards], [jobs],
    [max_profiles], [queue_capacity] or [seq_cache], or
    [degrade_above > max_profiles]. *)
val create : config -> t

val config : t -> config

(** [exec t line] — execute one request on the default session, returning
    the response lines in order. Never raises on bad input: malformed
    lines produce [ERR parse] responses. *)
val exec : t -> string -> string list

(** A per-client sequence space: watermark + retried-response cache. *)
type session

(** A fresh anonymous session (one per plain connection). *)
val new_session : t -> session

(** [session t ~id] — the named session for client [id], created on first
    use. Reconnecting clients that [HELLO id] land back on it. *)
val session : t -> id:string -> session

(** Named sessions currently registered. *)
val session_count : t -> int

(** [exec_on t s line] — {!exec} against session [s]'s sequence space.
    All sessions share the engine state (profiles, shards, backlog);
    only the retry discipline is per-session. *)
val exec_on : t -> session -> string -> string list

(** [is_checkpoint_line line] — does [line] request a durable checkpoint
    ([<seq> CHECKPOINT ...])? Tokenization matches {!exec}'s (runs of
    whitespace collapse), so ["5  CHECKPOINT"] counts — the transport
    uses this to decide when to flush shard snapshots to disk. *)
val is_checkpoint_line : string -> bool

(** {2 State-dir manifest}

    A durable state directory records the shard count it was written
    under; loading it with a different [--shards] would silently orphan
    (or misplace) every profile whose name hashes elsewhere. The daemon
    writes {!manifest} next to the snapshots and refuses to boot when
    {!parse_manifest} disagrees with its configuration. *)

(** The manifest content for this engine ([shards=N] under a versioned
    header). *)
val manifest : t -> string

(** [parse_manifest s] — the shard count a manifest records, or a
    human-readable reason it cannot be trusted. *)
val parse_manifest : string -> (int, string) result

(** The shard a profile name hashes to (FNV-1a-64 mod [shards]) — exposed
    so the fuzzer's single-threaded oracle can replicate placement and
    queue accounting. *)
val shard_of_name : shards:int -> string -> int

val shard_count : t -> int
val profile_count : t -> int

(** Total acknowledged-but-unapplied posts. *)
val backlog : t -> int

(** Shard restarts performed so far ({!restart_shard}). *)
val restarts : t -> int

(** [set_chaos t hook] installs (or clears) a crash-injection hook run
    before every post application during ticks. The hook runs on pool
    workers — it must be thread-safe. *)
val set_chaos : t -> (unit -> unit) option -> unit

(** [restart_shard t i] — snapshot shard [i] and rebuild it from the
    snapshot: a simulated process death and recovery. Acknowledged posts
    and unreported emissions survive by the {!Profile} durability
    contract. *)
val restart_shard : t -> int -> unit

(** Durable snapshot of shard [i] (for the daemon's [--state-dir]). *)
val shard_snapshot : t -> int -> string

(** Replace shard [i] with a restored snapshot (daemon startup). Raises
    {!Shard.Corrupt} on damage. *)
val load_shard : t -> int -> string -> unit

(** Shut the pool down. The engine keeps working (ticks run inline). *)
val shutdown : t -> unit
