(** Resource-governed solving: walk a ladder of progressively cheaper
    algorithms under one {!Util.Budget}, salvaging partial work between
    rungs, and always return a valid cover.

    The default ladder is OPT → GreedySC → Scan+ → instant pick. Each rung
    except the ladder's last runs on a {!Util.Budget.child} holding half
    the remaining budget (so an expensive rung can fail without starving
    its fallbacks); the last ladder rung gets everything left; the instant
    floor — {!Stream_scan.solve_instant} under a fixed λ, the identity
    cover otherwise — runs unguarded and cannot fail.

    When a rung's budget runs out, the {!Interrupt.Budget_exceeded} payload
    is inspected: if the salvaged positions already form a valid cover
    (e.g. {!Brute_force}'s branch-and-bound incumbent) the supervisor
    answers with them immediately ([Salvaged]); otherwise they seed the
    next rung ([Exhausted]), which pre-marks their coverage instead of
    rediscovering it. Typed refusals — {!Opt.Infeasible},
    [Opt.Too_large], [Opt.Unsupported], [Brute_force.Too_large] — skip to
    the next rung without consuming it ([Refused]).

    A {!Breaker.t}, when supplied, remembers per-rung failures across
    [solve] calls: after [threshold] consecutive failures a rung is skipped
    outright ([Skipped_breaker]) until [cooldown] seconds pass, at which
    point one half-open trial is allowed. *)

(** Per-rung circuit breaker, keyed by algorithm name. Safe to share
    across domains: every query and transition is mutex-serialized, so a
    breaker can follow a profile that migrates between {!Util.Pool}
    workers (the serving layer does exactly that). The classic half-open
    race remains semantically possible — several domains may each observe
    [available] during one cooldown window and run a trial concurrently —
    but the recorded outcomes are applied atomically, so the breaker
    always lands in a consistent state: any trial failure at/past the
    threshold re-arms the cooldown, any success closes the circuit. *)
module Breaker : sig
  type t

  (** [create ?threshold ?cooldown ()] — open a rung's circuit after
      [threshold] consecutive failures (default 3); allow a half-open
      retrial after [cooldown] seconds (default 30.). *)
  val create : ?threshold:int -> ?cooldown:float -> unit -> t

  (** Is the rung currently allowed to run? True when closed, or when open
      but the cooldown has elapsed (half-open). *)
  val available : t -> string -> bool

  (** Consecutive-failure count for a rung (0 when unknown or closed). *)
  val failures : t -> string -> int

  val record_success : t -> string -> unit

  (** Increment the failure count; (re)arm the cooldown when it reaches the
      threshold — including on a failed half-open trial. *)
  val record_failure : t -> string -> unit
end

type outcome =
  | Answered  (** the rung completed within its budget *)
  | Salvaged of Util.Budget.stop_reason
      (** the rung ran out, but its salvage was already a valid cover *)
  | Exhausted of Util.Budget.stop_reason
      (** ran out; salvage (possibly empty) was passed down as a seed *)
  | Refused of string  (** typed pre-flight refusal, budget not consumed *)
  | Skipped_breaker  (** circuit open: rung not attempted *)

type attempt = {
  rung : string;
  outcome : outcome;
  seeded_with : int;  (** positions carried into this rung *)
  rung_elapsed : float;  (** seconds spent inside this rung *)
}

type report = {
  answered_by : string;  (** rung name, ["instant"] for the floor *)
  cover : int list;  (** positions, ascending; always a valid cover *)
  size : int;
  attempts : attempt list;  (** in attempt order, the answering rung last *)
  total_elapsed : float;
}

val outcome_to_string : outcome -> string

(** One line per attempt: rung, outcome, seed size, elapsed. *)
val describe : report -> string

(** The built-in ladder: [[Opt; Greedy_sc; Scan_plus]]. *)
val default_ladder : Solver.algorithm list

(** [ladder_from algorithm] — the suffix of {!default_ladder} starting at
    [algorithm], or [[algorithm]] when it is not a ladder member (e.g.
    [Brute_force]); the instant floor always remains underneath. *)
val ladder_from : Solver.algorithm -> Solver.algorithm list

(** The unguarded floor: a valid cover computed without any budget —
    {!Stream_scan.solve_instant} under a fixed λ, every position
    otherwise. *)
val instant_cover : Instance.t -> Coverage.lambda -> int list

(** [solve ?pool ?budget ?breaker ?ladder instance lambda] walks the
    ladder as described above. The returned cover is always
    {!Coverage.is_cover}-valid; [report.attempts] records what each rung
    did and how long it ran. With the default unlimited budget the first
    available rung answers and the result is identical to calling that
    algorithm directly. *)
val solve :
  ?pool:Util.Pool.t ->
  ?budget:Util.Budget.t ->
  ?breaker:Breaker.t ->
  ?ladder:Solver.algorithm list ->
  Instance.t ->
  Coverage.lambda ->
  report
