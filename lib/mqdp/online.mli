(** An incremental, push-based streaming diversifier — the paper's
    StreamScan family (§5.1) as a long-lived service rather than a batch
    simulation.

    Feed posts one at a time in non-decreasing value (time) order; each
    [push] returns the emissions that became due strictly before the new
    arrival (their deadlines passed), plus — in [Instant] mode — possibly
    the arriving post itself. Call [finish] at end-of-stream to drain the
    pending deadlines. {!Stream_scan} is an adapter over this engine, so
    the batch and incremental APIs cannot drift apart.

    Delayed mode keeps, per label, the pending uncovered posts and emits
    the latest of them at min(t_latest + τ, t_oldest + λ); emissions are
    credited to every label of the emitted post when [plus] is set.
    Instant mode emits an arriving post immediately unless the per-label
    cache of recent selections already covers it (2s bound). *)

type mode =
  | Delayed of { tau : float; plus : bool }
  | Instant

type emission = {
  post : Post.t;
  emit_time : float;
}

type t

(** [create ~lambda mode] — a fresh diversifier.
    Raises [Invalid_argument] when [lambda < 0] or the mode's [tau < 0]. *)
val create : lambda:float -> mode -> t

(** [push t post] — register an arrival; returns due emissions in emit-time
    order. Only deadlines *strictly* before [post.value] fire: an arrival
    at exactly a pending deadline is processed first, since the arriving
    post may itself cover the pending pairs (it is then emitted at the
    deadline, which equals its own timestamp). Raises [Invalid_argument]
    when [post.value] precedes the previous arrival. *)
val push : t -> Post.t -> emission list

(** [finish t] — drain every pending deadline; the diversifier can keep
    receiving posts afterwards (the stream simply continues). *)
val finish : t -> emission list

(** Number of distinct posts emitted so far. *)
val emitted_count : t -> int

(** Current length of the internal deadline queue, stale entries included.
    Exposed for observability: the engine keeps this O(pending labels)
    (deduplicated pushes plus periodic compaction), not O(arrivals). *)
val deadline_queue_length : t -> int

(** Value of the latest arrival, or [None] before the first push. *)
val last_arrival : t -> float option
