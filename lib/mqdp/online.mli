(** An incremental, push-based streaming diversifier — the paper's
    StreamScan family (§5.1) as a long-lived service rather than a batch
    simulation.

    Feed posts one at a time in non-decreasing value (time) order; each
    [push] returns the emissions that became due strictly before the new
    arrival (their deadlines passed), plus — in [Instant] mode — possibly
    the arriving post itself. Call [finish] at end-of-stream to drain the
    pending deadlines. {!Stream_scan} is an adapter over this engine, so
    the batch and incremental APIs cannot drift apart.

    Delayed mode keeps, per label, the pending uncovered posts and emits
    the latest of them at min(t_latest + τ, t_oldest + λ); emissions are
    credited to every label of the emitted post when [plus] is set.
    Instant mode emits an arriving post immediately unless the per-label
    cache of recent selections already covers it (2s bound). *)

type mode =
  | Delayed of { tau : float; plus : bool }
  | Instant

type emission = {
  post : Post.t;
  emit_time : float;
}

type t

(** [create ?window ~lambda mode] — a fresh diversifier.

    When [window] is given (an empty or restored {!Window_index} over
    [Fixed lambda]), the engine mirrors the admitted stream into it: each
    push expires posts older than [previous arrival − τ − λ] (nothing
    older can be emitted or cover pending/future work) and appends the
    arrival, and per-label coverage state ("is this arrival within the
    latest output's reach?") is kept in the window's off-heap reach table
    instead of per-label heap boxes. Emissions are bit-identical with and
    without a window (enforced by qcheck and the fuzzer); the window adds
    a queryable geometry over the live posts ({!Window_index.find_position},
    {!Greedy_sc.solve_window}) for frontends like {!Stream_scan} and
    {!Feed} checkpoints.

    Raises [Invalid_argument] when [lambda < 0], the mode's [tau < 0], or
    [window]'s coverage mode is not [Fixed lambda]. *)
val create : ?window:Window_index.t -> lambda:float -> mode -> t

(** The mirrored window, if one was attached at creation. *)
val window : t -> Window_index.t option

(** [push t post] — register an arrival; returns due emissions in emit-time
    order. Only deadlines *strictly* before [post.value] fire: an arrival
    at exactly a pending deadline is processed first, since the arriving
    post may itself cover the pending pairs (it is then emitted at the
    deadline, which equals its own timestamp). Raises [Invalid_argument]
    when [post.value] precedes the previous arrival. *)
val push : t -> Post.t -> emission list

(** [finish t] — drain every pending deadline; the diversifier can keep
    receiving posts afterwards (the stream simply continues). *)
val finish : t -> emission list

(** Number of distinct posts emitted so far. *)
val emitted_count : t -> int

(** Current length of the internal deadline queue, stale entries included.
    Exposed for observability: the engine keeps this O(pending labels)
    (deduplicated pushes plus periodic compaction), not O(arrivals). *)
val deadline_queue_length : t -> int

(** Number of labels with a non-empty pending list — the live size of the
    deadline queue. Unlike {!deadline_queue_length} this is independent of
    stale-entry history, so overload decisions based on it survive
    checkpoint/restore bit-identically. *)
val pending_labels : t -> int

(** Value of the latest arrival, or [None] before the first push. *)
val last_arrival : t -> float option

(** {2 Overload degradation}

    Under sustained overload a [Delayed] engine can demote individual
    labels to [Instant] handling: the demoted label's latest pending post
    is emitted immediately (it λ-covers the label's whole pending window,
    and the emission precedes the pending deadline, so neither coverage
    nor the delay guarantee is lost), the rest of its queue is shed, and
    every later uncovered arrival on the label is emitted on the spot —
    the paper's 2s-approximation regime. Demotion is sticky. *)

(** [degrade_earliest t ~now] demotes the label holding the earliest live
    deadline. Returns [Some (label, shed, emissions)] — [shed] counts the
    pending posts cleared without their own emission (all λ-covered by the
    emitted one) — or [None] when nothing is pending. [now] is the current
    stream time; the emission is stamped within [max(value, min(now,
    deadline))]. *)
val degrade_earliest : t -> now:float -> (Label.t * int * emission list) option

val is_degraded : t -> Label.t -> bool
val degraded_count : t -> int

(** {2 Checkpointing}

    A snapshot captures the engine's complete observable state; feeding
    the same suffix of a stream to [import (export t)] yields emissions
    bit-identical to continuing with [t] itself. Snapshots are plain data
    so a frontend (see {!Feed}) can serialize them however it likes. *)

type label_snapshot = {
  snap_label : Label.t;
  snap_pending : Post.t list;  (** pending uncovered arrivals, newest first *)
  snap_last_out : Post.t option;  (** latest emission serving this label *)
}

type snapshot = {
  snap_lambda : float;
  snap_mode : mode;
  snap_last_time : float option;
  snap_emitted : int list;  (** distinct emitted post ids, ascending *)
  snap_degraded : Label.t list;  (** demoted labels, ascending *)
  snap_labels : label_snapshot list;  (** ascending by label *)
}

val export : t -> snapshot

(** [import ?window s] rebuilds an engine from a snapshot, recomputing
    deadlines and the (compacted) deadline queue. [window] attaches a
    mirror as in {!create} — pass the {!Window_index.import} of the
    window state saved alongside the snapshot; its reach table is
    re-derived here from the snapshot's last-output posts. Raises
    [Invalid_argument] on a structurally invalid snapshot (negative
    lambda/tau, a pending list that is not newest-first, or pending posts
    newer than the recorded last arrival). *)
val import : ?window:Window_index.t -> snapshot -> t
