(* Invariant: the last word of [t] is non-zero (trailing zero words are
   trimmed), so structural equality is set equality. All words are
   non-negative: only 62 of the 63 native int bits are used. *)

type t = int array

let bits_per_word = 62

let empty = [||]

let trim words =
  let n = ref (Array.length words) in
  while !n > 0 && words.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length words then words else Array.sub words 0 !n

let singleton label =
  if label < 0 then invalid_arg "Label_set.singleton: negative label";
  let word = label / bits_per_word and bit = label mod bits_per_word in
  let words = Array.make (word + 1) 0 in
  words.(word) <- 1 lsl bit;
  words

let mem label s =
  let word = label / bits_per_word and bit = label mod bits_per_word in
  word < Array.length s && s.(word) land (1 lsl bit) <> 0

let add label s =
  if label < 0 then invalid_arg "Label_set.add: negative label";
  if mem label s then s
  else begin
    let word = label / bits_per_word and bit = label mod bits_per_word in
    let len = max (Array.length s) (word + 1) in
    let words = Array.make len 0 in
    Array.blit s 0 words 0 (Array.length s);
    words.(word) <- words.(word) lor (1 lsl bit);
    words
  end

let remove label s =
  if not (mem label s) then s
  else begin
    let word = label / bits_per_word and bit = label mod bits_per_word in
    let words = Array.copy s in
    words.(word) <- words.(word) land lnot (1 lsl bit);
    trim words
  end

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let len = max la lb in
    let words =
      Array.init len (fun i ->
          let wa = if i < la then a.(i) else 0
          and wb = if i < lb then b.(i) else 0 in
          wa lor wb)
    in
    words
  end

let inter a b =
  let len = min (Array.length a) (Array.length b) in
  trim (Array.init len (fun i -> a.(i) land b.(i)))

let diff a b =
  let la = Array.length a and lb = Array.length b in
  trim
    (Array.init la (fun i ->
         let wb = if i < lb then b.(i) else 0 in
         a.(i) land lnot wb))

let is_empty s = Array.length s = 0

let popcount word =
  let rec loop w acc = if w = 0 then acc else loop (w lsr 1) (acc + (w land 1)) in
  loop word 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let subset a b =
  let lb = Array.length b in
  let ok = ref true in
  Array.iteri
    (fun i wa ->
      let wb = if i < lb then b.(i) else 0 in
      if wa land lnot wb <> 0 then ok := false)
    a;
  !ok

let disjoint a b =
  let len = min (Array.length a) (Array.length b) in
  let rec loop i = i >= len || (a.(i) land b.(i) = 0 && loop (i + 1)) in
  loop 0

(* Trailing zero words are trimmed, so word arrays of equal sets have
   equal lengths and word-wise equality is set equality. The comparator
   orders by length first and then word-wise — the same order the
   polymorphic compare produced on these blocks, but monomorphic on int,
   so no runtime tag dispatch in callers that sort sets. *)
let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= la then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

(* Word-level access for closure-free iteration: Window_index.push walks
   the bitset inline because an [iter] closure per arrival is heap traffic
   on the steady-state hot path. *)
let word_count (s : t) = Array.length s
let[@inline] word (s : t) i = Array.unsafe_get s i

let iter f s =
  Array.iteri
    (fun wi word ->
      let base = wi * bits_per_word in
      for bit = 0 to bits_per_word - 1 do
        if word land (1 lsl bit) <> 0 then f (base + bit)
      done)
    s

let fold f s init =
  let acc = ref init in
  iter (fun label -> acc := f label !acc) s;
  !acc

let to_list s = List.rev (fold (fun label acc -> label :: acc) s [])

let of_list labels = List.fold_left (fun s label -> add label s) empty labels

let for_all p s = fold (fun label acc -> acc && p label) s true
let exists p s = fold (fun label acc -> acc || p label) s false

let choose s =
  if is_empty s then raise Not_found;
  let result = ref (-1) in
  (try
     iter
       (fun label ->
         result := label;
         raise Exit)
       s
   with Exit -> ());
  !result

let max_label s =
  if is_empty s then raise Not_found;
  fold (fun label acc -> max label acc) s (-1)

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Label.pp)
    (to_list s)
