(* Sliding-window coverage geometry. See window_index.mli for the contract
   and DESIGN.md §18 for the invariants.

   House rules (enforced by test/test_lint.ml): no polymorphic compare and
   no boxed-option traffic anywhere in this file — absent values are -1 /
   neg_infinity sentinels, and every hot accessor works on immediates, so
   steady-state maintenance and solving allocate nothing on the OCaml heap.

   Addressing: three absolute, monotone sequence-number spaces.
     - post seq [g]: the g-th successful push, forever. Live range
       [phead, ptotal); storage index g - pbase.
     - slot seq [u]: one (post, label) incidence. A post's slots are
       contiguous, [poff(g), poff(g+1)); storage index u - sbase.
     - per-label member seq [m]: position of a slot in its label's
       arrival list LP(a). Live range [lhead.(a), ltotal.(a)); storage
       index m - lbase.(a).
   Stored cross-references are sequence numbers, never storage indices, so
   compaction (blit live region to the front, advance the base) invalidates
   nothing. Compaction fires when dead > live + 64, which bounds the blit
   by the work already paid for and makes expiry amortized O(1) per slot.

   Ordering invariants that make the window a Pair_index in motion:
     - arrivals are strictly increasing by Post.compare_by_value, so
       window order = value order = Instance order of the same posts;
     - each label list is in arrival = value order, so member seqs are
       the label's LP positions shifted by lhead;
     - posts expire in arrival order, so the oldest live post's slots are
       the fronts of their label lists.

   Coverage cursors: slot u over label [a] covers the members of LP(a)
   whose value falls in [slo(u), shi(u)] — a contiguous member range
   because the list is value-sorted.
     - scf(u): the first member with value >= slo(u), computed by binary
       search at push time. Later arrivals only append values >= every
       present value, so scf is final; reads clamp it to lhead.(a).
     - scl(u): the last member known to have value <= shi(u). Initialized
       to u's own member and advanced lazily (advance at every solve);
       each advance step is paid once per (slot, later-arrival) incidence,
       so maintenance is amortized O(1).
   Both endpoints are inclusive, matching Instance.posts_in_range
   (lower_bound lo .. upper_bound hi - 1) and hence Pair_index. *)

module Flat = Util.Flat
module A1 = Bigarray.Array1

let c_pushes = Util.Telemetry.counter "window.pushes"
let c_expirations = Util.Telemetry.counter "window.expirations"
let c_solves = Util.Telemetry.counter "window.solves"
let c_compactions = Util.Telemetry.counter "window.compactions"
let g_posts = Util.Telemetry.gauge "window.posts"
let g_pairs = Util.Telemetry.gauge "window.pairs"

type t = {
  lam : Coverage.lambda;
  (* posts, indexed g - pbase *)
  mutable phead : int;  (* expired count = seq of the window head *)
  mutable ptotal : int;  (* seq of the next push *)
  mutable pbase : int;  (* seq of storage index 0 *)
  pval : Flat.Floats.t;
  pids : Flat.Ints.t;
  poff : Flat.Ints.t;  (* slot-seq boundaries; entry g holds poff(g),
                          length live + 1 *)
  (* ordering guard: last admitted (value, id); survives full expiry *)
  mutable lastv : float;
  mutable lastid : int;
  mutable guarded : bool;
  (* slot arena, indexed u - sbase *)
  mutable sbase : int;
  mutable stotal : int;
  slab : Flat.Ints.t;  (* label of the slot *)
  spost : Flat.Ints.t;  (* post seq of the slot *)
  smem : Flat.Ints.t;  (* member seq in LP(label) *)
  slo : Flat.Floats.t;  (* coverage interval, inclusive *)
  shi : Flat.Floats.t;
  scf : Flat.Ints.t;  (* first covered member seq (final; clamp on read) *)
  scl : Flat.Ints.t;  (* last covered member seq found so far (lazy) *)
  smk : Flat.Flags.t;  (* persistent mark: pair served by an emission *)
  (* per-label arrival lists, dense over label ids *)
  mutable nlabels : int;
  mutable lhead : int array;
  mutable ltotal : int array;
  mutable lbase : int array;
  mutable lbuf : Flat.Ints.t array;  (* member seq -> slot seq *)
  mutable lvalv : Flat.Floats.t array;  (* member seq -> value *)
  mutable lreach : float array;  (* emission reach per label *)
}

let create lam =
  {
    lam;
    phead = 0;
    ptotal = 0;
    pbase = 0;
    pval = Flat.Floats.create ();
    pids = Flat.Ints.create ();
    poff = (let f = Flat.Ints.create () in Flat.Ints.push f 0; f);
    lastv = neg_infinity;
    lastid = min_int;
    guarded = false;
    sbase = 0;
    stotal = 0;
    slab = Flat.Ints.create ();
    spost = Flat.Ints.create ();
    smem = Flat.Ints.create ();
    slo = Flat.Floats.create ();
    shi = Flat.Floats.create ();
    scf = Flat.Ints.create ();
    scl = Flat.Ints.create ();
    smk = Flat.Flags.create ();
    nlabels = 0;
    lhead = [||];
    ltotal = [||];
    lbase = [||];
    lbuf = [||];
    lvalv = [||];
    lreach = [||];
  }

let lambda t = t.lam
let size t = t.ptotal - t.phead
let expired t = t.phead
let total t = t.ptotal

(* first live slot seq = the window head's first slot *)
let shead t = Flat.Ints.get t.poff (t.phead - t.pbase)
let live_pairs t = t.stotal - shead t

let ensure_label t a =
  if a < 0 then invalid_arg "Window_index: negative label";
  if a >= t.nlabels then begin
    let cap = Array.length t.lhead in
    if a >= cap then begin
      let cap' = ref (max 4 cap) in
      while a >= !cap' do
        cap' := !cap' * 2
      done;
      let cap' = !cap' in
      let grow_int src = Array.append src (Array.make (cap' - cap) 0) in
      t.lhead <- grow_int t.lhead;
      t.ltotal <- grow_int t.ltotal;
      t.lbase <- grow_int t.lbase;
      t.lreach <- Array.append t.lreach (Array.make (cap' - cap) neg_infinity);
      t.lbuf <-
        Array.append t.lbuf (Array.init (cap' - cap) (fun _ -> Flat.Ints.create ()));
      t.lvalv <-
        Array.append t.lvalv
          (Array.init (cap' - cap) (fun _ -> Flat.Floats.create ()))
    end;
    (* ids between the old count and [a] become valid empty labels *)
    t.nlabels <- a + 1
  end

(* true when (v, id) is strictly newer than the last admitted arrival,
   i.e. Post.compare_by_value would order it after *)
let newer t v id =
  (not t.guarded) || v > t.lastv || (v = t.lastv && id > t.lastid)

let push_exn t (p : Post.t) =
  let v = p.Post.value and id = p.Post.id in
  let g = t.ptotal in
  Flat.Floats.push t.pval v;
  Flat.Ints.push t.pids id;
  (* Walk the label bitset word by word rather than through
     Label_set.iter: a closure per arrival is heap traffic, and this loop
     is the steady-state hot path (the maintenance gate in bench/exp_window
     holds it to zero bytes per post). *)
  let labels = p.Post.labels in
  for wi = 0 to Label_set.word_count labels - 1 do
    let word = Label_set.word labels wi in
    let first = wi * Label_set.bits_per_word in
    for bit = 0 to Label_set.bits_per_word - 1 do
      if word land (1 lsl bit) <> 0 then begin
        let a = first + bit in
        ensure_label t a;
        let r = Coverage.radius t.lam p a in
        (* endpoint sanity without materializing the interval: a negative
           radius puts v outside [v - r, v + r]; NaN passes, as before *)
        if v -. r > v || v +. r < v then
          invalid_arg "Window_index.push: negative coverage radius";
        let lo = v -. r in
        let u = t.stotal in
        let m = t.ltotal.(a) in
        let lb = t.lbase.(a) in
        let vals = t.lvalv.(a) in
        (* first member with value >= lo; the list is value-sorted and only
           ever appends values >= the current maximum, so this is final.
           Reads go through the raw backing store: A1.unsafe_get is a
           compiler primitive, so the probed floats are never boxed even
           when -opaque blocks cross-module inlining (dev profile). *)
        let cf =
          let vbuf = Flat.Floats.unsafe_buf vals in
          let l = ref t.lhead.(a) and h = ref m in
          while !l < !h do
            let mid = (!l + !h) / 2 in
            if A1.unsafe_get vbuf (mid - lb) >= lo then h := mid
            else l := mid + 1
          done;
          !l
        in
        Flat.Ints.push t.lbuf.(a) u;
        (* float appends as ensure + raw store, for the same reason: the
           outlined Floats.push would box its float argument. The backing
           store is re-fetched after ensure — growth swaps it. *)
        let nv = Flat.Floats.length vals in
        Flat.Floats.ensure vals (nv + 1);
        A1.unsafe_set (Flat.Floats.unsafe_buf vals) nv v;
        t.ltotal.(a) <- m + 1;
        Flat.Ints.push t.slab a;
        Flat.Ints.push t.spost g;
        Flat.Ints.push t.smem m;
        let ns = Flat.Floats.length t.slo in
        Flat.Floats.ensure t.slo (ns + 1);
        A1.unsafe_set (Flat.Floats.unsafe_buf t.slo) ns lo;
        Flat.Floats.ensure t.shi (ns + 1);
        A1.unsafe_set (Flat.Floats.unsafe_buf t.shi) ns (v +. r);
        Flat.Ints.push t.scf cf;
        Flat.Ints.push t.scl m;
        (* born covered when a prior emission's reach extends past v *)
        Flat.Flags.push t.smk (v <= t.lreach.(a));
        t.stotal <- u + 1
      end
    done
  done;
  Flat.Ints.push t.poff t.stotal;
  t.ptotal <- g + 1;
  t.lastv <- v;
  t.lastid <- id;
  t.guarded <- true;
  Util.Telemetry.incr c_pushes;
  Util.Telemetry.set g_posts (size t);
  Util.Telemetry.set g_pairs (live_pairs t)

let try_push t (p : Post.t) =
  let v = p.Post.value in
  if not (Float.is_finite v) then
    invalid_arg "Window_index.push: non-finite value";
  if newer t v p.Post.id then begin
    push_exn t p;
    true
  end
  else false

let push t p =
  if not (try_push t p) then
    invalid_arg "Window_index.push: arrivals must be strictly increasing"

let maybe_compact_label t a =
  let dead = t.lhead.(a) - t.lbase.(a) in
  let live = t.ltotal.(a) - t.lhead.(a) in
  if dead > live + 64 then begin
    Flat.Ints.drop_front t.lbuf.(a) dead;
    Flat.Floats.drop_front t.lvalv.(a) dead;
    t.lbase.(a) <- t.lhead.(a);
    Util.Telemetry.incr c_compactions
  end

let maybe_compact_posts t =
  let dead = t.phead - t.pbase in
  let live = t.ptotal - t.phead in
  if dead > live + 64 then begin
    (* arena first: its dead prefix ends at the head post's first slot *)
    let sh = shead t in
    let sdead = sh - t.sbase in
    if sdead > 0 then begin
      Flat.Ints.drop_front t.slab sdead;
      Flat.Ints.drop_front t.spost sdead;
      Flat.Ints.drop_front t.smem sdead;
      Flat.Floats.drop_front t.slo sdead;
      Flat.Floats.drop_front t.shi sdead;
      Flat.Ints.drop_front t.scf sdead;
      Flat.Ints.drop_front t.scl sdead;
      Flat.Flags.drop_front t.smk sdead;
      t.sbase <- sh
    end;
    Flat.Floats.drop_front t.pval dead;
    Flat.Ints.drop_front t.pids dead;
    Flat.Ints.drop_front t.poff dead;
    t.pbase <- t.phead;
    Util.Telemetry.incr c_compactions
  end

let expire_one t =
  let g = t.phead in
  let s0 = Flat.Ints.get t.poff (g - t.pbase) in
  let s1 = Flat.Ints.get t.poff (g + 1 - t.pbase) in
  for u = s0 to s1 - 1 do
    let a = Flat.Ints.get_u t.slab (u - t.sbase) in
    (* posts expire in arrival order, so this slot is the front member *)
    assert (Flat.Ints.get t.lbuf.(a) (t.lhead.(a) - t.lbase.(a)) = u);
    t.lhead.(a) <- t.lhead.(a) + 1;
    maybe_compact_label t a
  done;
  t.phead <- g + 1;
  Util.Telemetry.incr c_expirations;
  maybe_compact_posts t

let expire_posts t k =
  if k < 0 || k > size t then invalid_arg "Window_index.expire_posts: bad count";
  for _ = 1 to k do
    expire_one t
  done;
  Util.Telemetry.set g_posts (size t);
  Util.Telemetry.set g_pairs (live_pairs t)

let expire_before t ~time =
  (* raw reads and a plain int watermark: the outlined Floats.get would
     box its float return, and a [ref] cell is a heap word — this is the
     per-tick maintenance path the zero-alloc gate measures. The index is
     in range whenever phead < ptotal, so the unchecked read is safe. *)
  let before = t.phead in
  while
    t.phead < t.ptotal
    && A1.unsafe_get (Flat.Floats.unsafe_buf t.pval) (t.phead - t.pbase) < time
  do
    expire_one t
  done;
  if t.phead > before then begin
    Util.Telemetry.set g_posts (size t);
    Util.Telemetry.set g_pairs (live_pairs t)
  end

let check_wpos t name w =
  if w < 0 || w >= size t then
    invalid_arg (Printf.sprintf "Window_index.%s: position out of window" name)

let value t w =
  check_wpos t "value" w;
  Flat.Floats.get_u t.pval (t.phead + w - t.pbase)

let id t w =
  check_wpos t "id" w;
  Flat.Ints.get_u t.pids (t.phead + w - t.pbase)

let post t w =
  check_wpos t "post" w;
  let g = t.phead + w in
  let s0 = Flat.Ints.get t.poff (g - t.pbase) in
  let s1 = Flat.Ints.get t.poff (g + 1 - t.pbase) in
  let labels = ref Label_set.empty in
  for u = s0 to s1 - 1 do
    labels := Label_set.add (Flat.Ints.get_u t.slab (u - t.sbase)) !labels
  done;
  Post.make
    ~id:(Flat.Ints.get_u t.pids (g - t.pbase))
    ~value:(Flat.Floats.get_u t.pval (g - t.pbase))
    ~labels:!labels

let find_position t (p : Post.t) =
  let v = p.Post.value and pid = p.Post.id in
  let lo = ref t.phead and hi = ref t.ptotal in
  let found = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let mv = Flat.Floats.get_u t.pval (mid - t.pbase) in
    let mi = Flat.Ints.get_u t.pids (mid - t.pbase) in
    let c = if mv < v then -1 else if mv > v then 1 else Int.compare mi pid in
    if c = 0 then begin
      found := mid;
      lo := !hi
    end
    else if c < 0 then lo := mid + 1
    else hi := mid
  done;
  !found

let to_instance t =
  let n = size t in
  let rec collect w acc = if w < 0 then acc else collect (w - 1) (post t w :: acc) in
  Instance.create (collect (n - 1) [])

let fully_covered t w =
  check_wpos t "fully_covered" w;
  let g = t.phead + w in
  let s0 = Flat.Ints.get t.poff (g - t.pbase) in
  let s1 = Flat.Ints.get t.poff (g + 1 - t.pbase) in
  let ok = ref true in
  for u = s0 to s1 - 1 do
    if not (Flat.Flags.get_u t.smk (u - t.sbase)) then ok := false
  done;
  !ok

let emit_reach t a =
  if a < 0 then invalid_arg "Window_index.emit_reach: negative label";
  if a < t.nlabels then t.lreach.(a) else neg_infinity

let set_emit_reach t a r =
  ensure_label t a;
  t.lreach.(a) <- r

let note_emission t (p : Post.t) =
  Label_set.iter
    (fun a ->
      ensure_label t a;
      let r = Coverage.reach t.lam p a in
      if r > t.lreach.(a) then t.lreach.(a) <- r)
    p.Post.labels

(* -------------------------------------------------------------------- *)
(* Solving                                                              *)

(* Advance scl(u) while the next member's value stays inside shi(u).
   Each successful step is paid once per (slot, later member) incidence
   over the slot's whole lifetime, so the amortized cost is O(1). *)
let advance_scl t ui =
  let a = Flat.Ints.get_u t.slab ui in
  let hi = Flat.Floats.get_u t.shi ui in
  let tot = t.ltotal.(a) in
  let lb = t.lbase.(a) in
  let vals = t.lvalv.(a) in
  let m = ref (Flat.Ints.get_u t.scl ui) in
  while !m + 1 < tot && Flat.Floats.get_u vals (!m + 1 - lb) <= hi do
    incr m
  done;
  Flat.Ints.set_u t.scl ui !m

type solver = {
  mutable base : int array;  (* per-label live pair-id bases, len nlabels+1 *)
  mpos : Flat.Ints.t;  (* pair id -> window position of its post *)
  pslot : Flat.Ints.t;  (* pair id -> slot seq *)
  covlo : Flat.Ints.t;  (* fixed λ: coverers of the pair as a pair-id range *)
  covhi : Flat.Ints.t;
  roff : Flat.Ints.t;  (* per-post λ: CSR offsets, len npairs+1 *)
  rows : Flat.Ints.t;  (* CSR coverer window positions *)
  fillc : Flat.Ints.t;  (* CSR fill cursors *)
  bits : Flat.Bits.t;  (* pristine-mode covered scratch *)
  mutable n : int;
  mutable npairs : int;
  mutable fixed : bool;
  mutable marked : bool;
}

let solver () =
  {
    base = [||];
    mpos = Flat.Ints.create ();
    pslot = Flat.Ints.create ();
    covlo = Flat.Ints.create ();
    covhi = Flat.Ints.create ();
    roff = Flat.Ints.create ();
    rows = Flat.Ints.create ();
    fillc = Flat.Ints.create ();
    bits = Flat.Bits.create ();
    n = 0;
    npairs = 0;
    fixed = true;
    marked = false;
  }

let begin_solve t sv ~marked ~gain =
  let n = size t in
  if Array.length gain < n then
    invalid_arg "Window_index.begin_solve: gain too small";
  Util.Telemetry.incr c_solves;
  sv.marked <- marked;
  sv.fixed <-
    (match t.lam with
    | Coverage.Fixed _ -> true
    | Coverage.Per_post_label _ -> false);
  (* label-major pair numbering: base.(a) is label a's first live pair id,
     mirroring Pair_index.label_base over the same live posts *)
  if Array.length sv.base < t.nlabels + 1 then
    sv.base <- Array.make (max 4 (2 * (t.nlabels + 1))) 0;
  let np = ref 0 in
  for a = 0 to t.nlabels - 1 do
    sv.base.(a) <- !np;
    np := !np + (t.ltotal.(a) - t.lhead.(a))
  done;
  sv.base.(t.nlabels) <- !np;
  let np = !np in
  sv.n <- n;
  sv.npairs <- np;
  Flat.Ints.ensure sv.mpos np;
  Flat.Ints.ensure sv.pslot np;
  if sv.fixed then begin
    Flat.Ints.ensure sv.covlo np;
    Flat.Ints.ensure sv.covhi np
  end
  else begin
    Flat.Ints.clear sv.roff;
    Flat.Ints.ensure sv.roff (np + 1);
    Flat.Ints.fill sv.roff 0
  end;
  for w = 0 to n - 1 do
    gain.(w) <- 0
  done;
  (* one pass over live slots in pair-id order: advance cursors, fill the
     pair tables, accumulate gains, and (per-post λ) count coverers via a
     difference trick over member offsets *)
  for a = 0 to t.nlabels - 1 do
    let b = sv.base.(a) in
    let h = t.lhead.(a) in
    let tot = t.ltotal.(a) in
    let lb = t.lbase.(a) in
    let live = tot - h in
    let buf = t.lbuf.(a) in
    for m = h to tot - 1 do
      let u = Flat.Ints.get_u buf (m - lb) in
      let ui = u - t.sbase in
      advance_scl t ui;
      let wpos = Flat.Ints.get_u t.spost ui - t.phead in
      let pid = b + (m - h) in
      Flat.Ints.set_u sv.mpos pid wpos;
      Flat.Ints.set_u sv.pslot pid u;
      let f = Flat.Ints.get_u t.scf ui in
      let rlo = if f < h then 0 else f - h in
      let rhi = Flat.Ints.get_u t.scl ui - h in
      if sv.fixed then begin
        Flat.Ints.set_u sv.covlo pid (b + rlo);
        Flat.Ints.set_u sv.covhi pid (b + rhi)
      end
      else begin
        Flat.Ints.set_u sv.roff (b + 1 + rlo)
          (Flat.Ints.get_u sv.roff (b + 1 + rlo) + 1);
        if rhi + 1 < live then
          Flat.Ints.set_u sv.roff (b + 1 + rhi + 1)
            (Flat.Ints.get_u sv.roff (b + 1 + rhi + 1) - 1)
      end;
      if marked then begin
        let acc = ref 0 in
        for r = rlo to rhi do
          let u' = Flat.Ints.get_u buf (h + r - lb) in
          if not (Flat.Flags.get_u t.smk (u' - t.sbase)) then incr acc
        done;
        gain.(wpos) <- gain.(wpos) + !acc
      end
      else gain.(wpos) <- gain.(wpos) + (rhi - rlo + 1)
    done
  done;
  if not sv.fixed then begin
    (* difference cells -> per-pair coverer counts -> global CSR prefix *)
    let totalrows = ref 0 in
    for a = 0 to t.nlabels - 1 do
      let b = sv.base.(a) in
      let live = sv.base.(a + 1) - b in
      let run = ref 0 in
      for r = 0 to live - 1 do
        run := !run + Flat.Ints.get_u sv.roff (b + 1 + r);
        totalrows := !totalrows + !run;
        Flat.Ints.set_u sv.roff (b + 1 + r) !totalrows
      done
    done;
    Flat.Ints.clear sv.rows;
    Flat.Ints.ensure sv.rows !totalrows;
    Flat.Ints.clear sv.fillc;
    Flat.Ints.ensure sv.fillc np;
    for pid = 0 to np - 1 do
      Flat.Ints.set_u sv.fillc pid (Flat.Ints.get_u sv.roff pid)
    done;
    (* fill pass: each covering slot drops its window position into every
       covered pair's row *)
    for a = 0 to t.nlabels - 1 do
      let b = sv.base.(a) in
      let h = t.lhead.(a) in
      let tot = t.ltotal.(a) in
      let lb = t.lbase.(a) in
      let buf = t.lbuf.(a) in
      for m = h to tot - 1 do
        let u = Flat.Ints.get_u buf (m - lb) in
        let ui = u - t.sbase in
        let wpos = Flat.Ints.get_u t.spost ui - t.phead in
        let f = Flat.Ints.get_u t.scf ui in
        let rlo = if f < h then 0 else f - h in
        let rhi = Flat.Ints.get_u t.scl ui - h in
        for r = rlo to rhi do
          let pid = b + r in
          let c = Flat.Ints.get_u sv.fillc pid in
          Flat.Ints.set_u sv.rows c wpos;
          Flat.Ints.set_u sv.fillc pid (c + 1)
        done
      done
    done
  end;
  if not marked then Flat.Bits.reset sv.bits np

let apply_pick t sv ~gain ~dirty ~touched w =
  let n = sv.n in
  if w < 0 || w >= n then invalid_arg "Window_index.apply_pick: bad position";
  if Array.length gain < n || Bytes.length dirty < n || Array.length touched < n
  then invalid_arg "Window_index.apply_pick: scratch too small";
  let g = t.phead + w in
  let s0 = Flat.Ints.get t.poff (g - t.pbase) in
  let s1 = Flat.Ints.get t.poff (g + 1 - t.pbase) in
  let cnt = ref 0 in
  for u = s0 to s1 - 1 do
    let ui = u - t.sbase in
    let a = Flat.Ints.get_u t.slab ui in
    let b = sv.base.(a) in
    let h = t.lhead.(a) in
    let f = Flat.Ints.get_u t.scf ui in
    let plo = b + if f < h then 0 else f - h in
    let phi = b + (Flat.Ints.get_u t.scl ui - h) in
    for pid = plo to phi do
      let fresh =
        if sv.marked then begin
          let si = Flat.Ints.get_u sv.pslot pid - t.sbase in
          if Flat.Flags.get_u t.smk si then false
          else begin
            Flat.Flags.set_u t.smk si true;
            true
          end
        end
        else if Flat.Bits.get sv.bits pid then false
        else begin
          Flat.Bits.set sv.bits pid;
          true
        end
      in
      if fresh then
        if sv.fixed then begin
          let ql = Flat.Ints.get_u sv.covhi pid in
          for q = Flat.Ints.get_u sv.covlo pid to ql do
            let w' = Flat.Ints.get_u sv.mpos q in
            Array.unsafe_set gain w' (Array.unsafe_get gain w' - 1);
            if Bytes.unsafe_get dirty w' = '\000' then begin
              Bytes.unsafe_set dirty w' '\001';
              Array.unsafe_set touched !cnt w';
              incr cnt
            end
          done
        end
        else begin
          let ql = Flat.Ints.get_u sv.roff (pid + 1) - 1 in
          for q = Flat.Ints.get_u sv.roff pid to ql do
            let w' = Flat.Ints.get_u sv.rows q in
            Array.unsafe_set gain w' (Array.unsafe_get gain w' - 1);
            if Bytes.unsafe_get dirty w' = '\000' then begin
              Bytes.unsafe_set dirty w' '\001';
              Array.unsafe_set touched !cnt w';
              incr cnt
            end
          done
        end
    done
  done;
  (* hand dirty back all-zero, as Pair_index.apply_pick does *)
  let cnt = !cnt in
  for i = 0 to cnt - 1 do
    Bytes.unsafe_set dirty (Array.unsafe_get touched i) '\000'
  done;
  cnt

(* -------------------------------------------------------------------- *)
(* Checkpointing                                                        *)

type snapshot = {
  snap_expired : int;
  snap_posts : Post.t list;
  snap_guard_value : float;
  snap_guard_id : int;
  snap_guarded : bool;
}

let export t =
  let n = size t in
  let rec collect w acc = if w < 0 then acc else collect (w - 1) (post t w :: acc) in
  {
    snap_expired = t.phead;
    snap_posts = collect (n - 1) [];
    snap_guard_value = t.lastv;
    snap_guard_id = t.lastid;
    snap_guarded = t.guarded;
  }

let import lam s =
  if s.snap_expired < 0 then
    invalid_arg "Window_index.import: negative expired count";
  let t = create lam in
  (* resume arrival numbering where the exporter stood: the storage is
     empty, so all three post counters sit at the expired count and the
     initial poff boundary (slot seq 0) belongs to the head post *)
  t.phead <- s.snap_expired;
  t.ptotal <- s.snap_expired;
  t.pbase <- s.snap_expired;
  List.iter (fun p -> push t p) s.snap_posts;
  t.lastv <- s.snap_guard_value;
  t.lastid <- s.snap_guard_id;
  t.guarded <- s.snap_guarded;
  t
