(** An MQDP problem instance: a collection of posts sorted by their value on
    the diversity dimension, with per-label posting lists.

    All algorithms address posts by their *position* in the sorted order
    (0-based); use {!post} to recover the post and its external id. Posts
    whose label set is empty are dropped at construction: they match no
    query, so they neither need covering nor can cover anything. *)

type t

(** [create posts] sorts [posts] by value (ties broken by id) and builds the
    per-label posting lists. Raises [Invalid_argument] if two posts share an
    id. *)
val create : Post.t list -> t

(** Number of posts. *)
val size : t -> int

(** [post t i] is the i-th post in value order, [0 <= i < size t]. *)
val post : t -> int -> Post.t

(** [value t i] is [(post t i).value]. *)
val value : t -> int -> float

(** [labels t i] is [(post t i).labels]. *)
val labels : t -> int -> Label_set.t

(** All posts in value order. The returned array is owned by the instance
    and must not be mutated. *)
val posts : t -> Post.t array

(** Labels that occur in at least one post, ascending. *)
val label_universe : t -> Label.t list

(** Number of distinct labels occurring in the instance. *)
val num_labels : t -> int

(** Largest label id occurring in the instance, -1 when empty. Dense
    per-label tables are sized [max_label t + 1]. *)
val max_label : t -> int

(** [label_posts t a] is LP(a): positions of the posts matching label [a],
    ascending (hence sorted by value). Empty for labels that never occur.
    The returned array must not be mutated. *)
val label_posts : t -> Label.t -> int array

(** [posts_in_range t a ~lo ~hi] is the sub-range of LP(a) whose values lie
    in [lo, hi], as a pair [(first, last)] of inclusive indices *into
    [label_posts t a]*, or [None] when the range is empty. *)
val posts_in_range : t -> Label.t -> lo:float -> hi:float -> (int * int) option

(** Average number of labels per post — the paper's "post overlap rate". 0
    for an empty instance. *)
val overlap_rate : t -> float

(** Maximum number of labels on any single post (the paper's [s]).
    0 for an empty instance. *)
val max_labels_per_post : t -> int

(** Total number of (post, label) pairs, i.e. the set-cover universe size. *)
val total_pairs : t -> int

(** [sub t ~lo ~hi] is a new instance restricted to posts with value in
    [lo, hi]. The already-sorted post array is sliced by binary search, so
    no re-sorting or re-validation happens. *)
val sub : t -> lo:float -> hi:float -> t

(** Minimum and maximum post value, or [None] when empty. *)
val span : t -> (float * float) option
