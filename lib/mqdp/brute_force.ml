exception Too_large of string

(* Map MQDP onto the generic engine: the compiled Pair_index already
   assigns dense label-major pair ids, and set k — everything post k
   λ-covers — is the concatenation of k's covered ranges. *)
let build_sets ?(max_pairs = 4096) ?budget instance lambda =
  let pair_count = Instance.total_pairs instance in
  if pair_count > max_pairs then
    raise
      (Too_large
         (Printf.sprintf "Brute_force: %d (post,label) pairs exceeds limit %d"
            pair_count max_pairs));
  let index = Pair_index.build ?budget ~coverers:false instance lambda in
  let sets =
    Array.init (Instance.size instance) (fun k ->
        let set = Array.make (Pair_index.covered_count index k) 0 in
        let cursor = ref 0 in
        Pair_index.iter_covered_ranges index k (fun first last ->
            for id = first to last do
              set.(!cursor) <- id;
              incr cursor
            done);
        set)
  in
  (pair_count, sets)

(* Only [Set_cover.Too_large] is rebranded; [Interrupt.Budget_exceeded]
   must pass through untouched — its payload (set indices = instance
   positions here) is the supervisor's salvage. *)
let wrap_engine f =
  match f () with
  | result -> result
  | exception Set_cover.Too_large msg ->
    raise (Too_large ("Brute_force: " ^ msg))

let solve ?max_pairs ?max_nodes ?budget instance lambda =
  if Instance.size instance = 0 then []
  else begin
    let num_elements, sets = build_sets ?max_pairs ?budget instance lambda in
    wrap_engine (fun () -> Set_cover.minimum ?max_nodes ?budget ~num_elements sets)
  end

let solve_bounded ?max_pairs ?max_nodes ?budget ~bound instance lambda =
  if bound < 0 then None
  else if Instance.size instance = 0 then Some []
  else begin
    let num_elements, sets = build_sets ?max_pairs ?budget instance lambda in
    wrap_engine (fun () ->
        Set_cover.bounded ?max_nodes ?budget ~bound ~num_elements sets)
  end

let min_size ?max_pairs ?max_nodes ?budget instance lambda =
  List.length (solve ?max_pairs ?max_nodes ?budget instance lambda)
