(** Algorithm OPT (paper §4.1): exact dynamic programming over
    end-patterns.

    Posts are processed in value order. The DP state after post [j] is an
    *end-pattern* ξ mapping each label [a] to the index of the latest
    selected post containing [a] (0 denotes the virtual sentinel post
    placed λ+ε before the first post, which carries every label). The
    table keeps, for each reachable pattern, the minimum cardinality of a
    (λ, j)-cover realizing it; transitions extend a (j−1)-pattern with the
    new posts a j-pattern commits. Time O(|P|^(2|L|+1)) in the worst case,
    so this is only feasible for small instances — exactly the paper's
    claim — and the implementation guards itself with a state limit.

    Only [Coverage.Fixed] is supported. The paper claims (§6) the per-post
    λ adaptation is possible "with care"; in fact directional radii break
    the end-pattern invariant this DP rests on — the latest selected post
    of a label no longer dominates its coverage reach, so a single index
    per label is not a sufficient DP state. For exact solutions under
    [Per_post_label], use {!Brute_force}, which is coverage-relation
    agnostic. *)

exception Too_large of string

(** Raised (with an explanatory message) when given a
    [Coverage.Per_post_label] lambda. *)
exception Unsupported of string

(** Raised by the pre-flight feasibility check when the budget carries an
    allocation limit and the worst-case DP table — at least [2^labels]
    end-patterns, [bytes] bytes — cannot fit in what remains of it. Raised
    before any DP work, so the caller loses nothing by having tried. *)
exception Infeasible of { labels : int; bytes : float }

(** [solve instance lambda] is an optimal cover, positions ascending.

    @param max_states abort when a DP layer holds more end-patterns
      (default 500_000).
    @param budget cooperative budget (default unlimited), charged one step
      per candidate visit and per DP transition.
    @raise Too_large when the state limit is hit.
    @raise Infeasible when the allocation budget cannot fit the worst-case
      DP table (checked before any work).
    @raise Interrupt.Budget_exceeded on exhaustion mid-run; OPT's DP layers
      salvage nothing ([No_partial]). *)
val solve :
  ?max_states:int -> ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> int list

(** [min_size instance lambda] is the optimal cover cardinality, computed
    with O(|P|^|L|) memory (only two DP layers retained). *)
val min_size :
  ?max_states:int -> ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> int
