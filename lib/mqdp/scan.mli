(** Algorithm Scan (paper §4.3) and its Scan+ optimization.

    Scan solves each label independently: one left-to-right pass over LP(a)
    picks, for the first uncovered post, the relevant post whose coverage
    interval reaches furthest right — the classic optimal greedy for
    covering points with intervals. The per-label solution is optimal, so
    the union is an s-approximation where s is the maximum number of labels
    per post. Running time O(s·|P|) for a fixed λ.

    Both λ modes run off a compiled {!Pair_index}: under a fixed λ the best
    pick is a binary search over the label's value block, and under a
    per-post λ it is a precompiled per-pair lookup — the index's
    left-endpoint sweep replaces the old O(|LP(a)|) linear scan, restoring
    the per-label O(log) pick cost under proportional λ.

    Scan+ additionally marks, whenever a post [z] is selected, every
    (post, label) pair that [z] covers — for all labels of [z] — so later
    labels skip already-covered pairs. The processing order of labels then
    matters; it is exposed for the ablation study. *)

type order =
  | Given  (** ascending label id *)
  | Most_frequent_first
  | Least_frequent_first

(** [solve ?pool instance lambda] — plain Scan. Returns positions,
    ascending. With [pool], the index build and the independent per-label
    covers are computed in parallel and merged in label order, so the
    result is bit-identical to the sequential run. *)
val solve : ?pool:Util.Pool.t -> Instance.t -> Coverage.lambda -> int list

(** [solve_indexed ?pool index] is {!solve} on a pre-compiled index
    (coverer sets not required). *)
val solve_indexed : ?pool:Util.Pool.t -> Pair_index.t -> int list

(** [solve_plus ?order ?pool instance lambda] — Scan+ (default order
    [Given]). With [pool], the per-label pick chains are speculatively
    computed in parallel and used as a pick cache by the sequential
    cross-label merge; the cover is bit-identical to the sequential run. *)
val solve_plus :
  ?order:order -> ?pool:Util.Pool.t -> Instance.t -> Coverage.lambda -> int list

(** [solve_plus_indexed ?order ?pool index] is {!solve_plus} on a
    pre-compiled index. *)
val solve_plus_indexed :
  ?order:order -> ?pool:Util.Pool.t -> Pair_index.t -> int list

(** [solve_label instance lambda a] — the optimal cover of LP(a) with
    respect to label [a] alone (positions, ascending). Exposed for tests
    and for the streaming variants. *)
val solve_label : Instance.t -> Coverage.lambda -> Label.t -> int list
