(** Algorithm Scan (paper §4.3) and its Scan+ optimization.

    Scan solves each label independently: one left-to-right pass over LP(a)
    picks, for the first uncovered post, the relevant post whose coverage
    interval reaches furthest right — the classic optimal greedy for
    covering points with intervals. The per-label solution is optimal, so
    the union is an s-approximation where s is the maximum number of labels
    per post. Running time O(s·|P|) for a fixed λ.

    Both λ modes run off a compiled {!Pair_index}: under a fixed λ the best
    pick is a binary search over the label's value block, and under a
    per-post λ it is a precompiled per-pair lookup — the index's
    left-endpoint sweep replaces the old O(|LP(a)|) linear scan, restoring
    the per-label O(log) pick cost under proportional λ.

    Scan+ additionally marks, whenever a post [z] is selected, every
    (post, label) pair that [z] covers — for all labels of [z] — so later
    labels skip already-covered pairs. The processing order of labels then
    matters; it is exposed for the ablation study. *)

type order =
  | Given  (** ascending label id *)
  | Most_frequent_first
  | Least_frequent_first

(** Budgets: every entry point takes an optional {!Util.Budget} (default
    unlimited), charged one step per chain link (Scan) or per pair visit
    (Scan+). On exhaustion {!Interrupt.Budget_exceeded} carries the picks
    committed so far (completed per-label covers for Scan, the running
    cross-label pick list plus any seed for Scan+) as a [Partial_cover]. *)

(** [solve ?pool instance lambda] — plain Scan. Returns positions,
    ascending. With [pool], the index build and the independent per-label
    covers are computed in parallel and merged in label order, so the
    result is bit-identical to the sequential run. *)
val solve :
  ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda ->
  int list

(** [solve_indexed ?pool index] is {!solve} on a pre-compiled index
    (coverer sets not required). *)
val solve_indexed :
  ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> Pair_index.t -> int list

(** [solve_plus ?order ?pool ?budget ?seed instance lambda] — Scan+
    (default order [Given]). With [pool], the per-label pick chains are
    speculatively computed in parallel and used as a pick cache by the
    sequential cross-label merge; the cover is bit-identical to the
    sequential run.

    [seed] positions are committed before the merge: every pair they cover
    is pre-marked and they are included in the result — the supervisor's
    mechanism for handing Scan+ the salvage of an interrupted richer
    algorithm. *)
val solve_plus :
  ?order:order -> ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> ?seed:int list ->
  Instance.t -> Coverage.lambda -> int list

(** [solve_plus_indexed ?order ?pool ?budget ?seed index] is {!solve_plus}
    on a pre-compiled index. *)
val solve_plus_indexed :
  ?order:order -> ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> ?seed:int list ->
  Pair_index.t -> int list

(** [solve_label instance lambda a] — the optimal cover of LP(a) with
    respect to label [a] alone (positions, ascending). Exposed for tests
    and for the streaming variants. *)
val solve_label :
  ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> Label.t -> int list
