(* Client half of the idempotent-retry contract: one rendered line per
   sequence number, retried verbatim under exponential backoff with
   deterministic (seeded) jitter. *)

type config = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
}

let default_config =
  { max_attempts = 5; base_delay = 0.01; max_delay = 1.0; jitter = 0.5 }

type io = {
  send : string -> string list option;
  sleep : float -> unit;
}

type error = Gave_up of { attempts : int; line : string }

type t = {
  config : config;
  io : io;
  rng : Util.Rng.t;
  mutable seq : int;
  mutable retries : int;
}

let validate config =
  if config.max_attempts < 1 then invalid_arg "Client.create: max_attempts < 1";
  if config.base_delay < 0. then invalid_arg "Client.create: negative base_delay";
  if config.max_delay < config.base_delay then
    invalid_arg "Client.create: max_delay < base_delay";
  if not (config.jitter >= 0. && config.jitter <= 1.) then
    invalid_arg "Client.create: jitter outside [0, 1]"

let create ?(config = default_config) ?(seed = 0) io =
  validate config;
  { config; io; rng = Util.Rng.create seed; seq = 0; retries = 0 }

let next_seq t = t.seq + 1
let retries t = t.retries

(* Adopt a server-reported session watermark (the HELLO greeting's
   [seq=N]). Only ever moves the counter forward: a stale or replayed
   greeting can never make the client reuse a sequence number. *)
let sync_seq t watermark = if watermark > t.seq then t.seq <- watermark

(* Attempt k (0-based) sleeps base * 2^k, capped, then jittered by a
   uniform factor in [1 - j/2, 1 + j/2]. *)
let delay_for config rng attempt =
  let raw = config.base_delay *. (2. ** float_of_int attempt) in
  let capped = Float.min raw config.max_delay in
  let j = config.jitter in
  capped *. (1. -. (j /. 2.) +. Util.Rng.float rng j)

let backoff_schedule config ~seed ~attempts =
  validate config;
  let rng = Util.Rng.create seed in
  List.init attempts (fun k -> delay_for config rng k)

(* A response is transport-level (the daemon spoke before a request
   framed: capacity shed, line-too-long, idle close) when its first line
   echoes sequence 0 — those never correspond to an executed command, so
   they are retryable exactly like a dead socket. *)
let transport_rejection = function
  | first :: _ -> String.starts_with ~prefix:"0 ERR " first
  | [] -> true

let request t cmd =
  t.seq <- t.seq + 1;
  let line = Printf.sprintf "%d %s" t.seq cmd in
  let rec attempt k =
    match t.io.send line with
    | Some response when not (transport_rejection response) -> Ok response
    | Some _ | None ->
      if k + 1 >= t.config.max_attempts then
        Error (Gave_up { attempts = k + 1; line })
      else begin
        t.retries <- t.retries + 1;
        t.io.sleep (delay_for t.config t.rng k);
        attempt (k + 1)
      end
  in
  attempt 0
