(** A generic set-cover engine.

    Elements are the integers [0 .. num_elements-1]; [sets.(k)] lists the
    elements set [k] covers (duplicates allowed, ignored). Shared by
    {!Brute_force} (exact MQDP over (post, label) pairs) and {!Spatial}
    (whose coverage relation has no 1-D structure to exploit). *)

exception Too_large of string

(** Budgets: every entry point takes an optional {!Util.Budget} (default
    unlimited), charged one step per greedy round and per branch-and-bound
    search node. On exhaustion it raises {!Interrupt.Budget_exceeded}
    carrying chosen *set indices* as the partial: mid-greedy that is the
    (incomplete but sound) prefix of picks; mid-search it is the best
    complete cover known — the search incumbent, else the greedy cover used
    as the initial bound — which the caller can answer with directly. *)

(** [greedy ~num_elements sets] — the classic ln(n)-approximate greedy:
    repeatedly take the set covering the most uncovered elements. Returns
    chosen set indices, ascending. Raises [Invalid_argument] when some
    element is covered by no set. *)
val greedy :
  ?budget:Util.Budget.t -> num_elements:int -> int array array -> int list

(** [minimum ?max_nodes ~num_elements sets] — an exact minimum cover by
    branch-and-bound (branch on the uncovered element with fewest
    covering sets; prune with |chosen| + ⌈uncovered / max-set⌉ against
    the greedy incumbent).
    @raise Too_large after [max_nodes] search nodes (default 20M).
    @raise Invalid_argument when some element is uncoverable. *)
val minimum :
  ?max_nodes:int -> ?budget:Util.Budget.t -> num_elements:int ->
  int array array -> int list

(** [bounded ?max_nodes ~bound ~num_elements sets] — [Some cover] of size
    at most [bound] when one exists, else [None]. *)
val bounded :
  ?max_nodes:int -> ?budget:Util.Budget.t -> bound:int -> num_elements:int ->
  int array array -> int list option
