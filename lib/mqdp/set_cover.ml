exception Too_large of string

(* Label_set is a general int bitset; here its elements are set-cover
   element ids. *)
module Bitset = Label_set

type universe = {
  num_elements : int;
  covers : Bitset.t array;  (* per set *)
  coverers : int array array;  (* per element: sets containing it *)
  all : Bitset.t;
}

let build ~num_elements sets =
  let covers = Array.map (fun s -> Bitset.of_list (Array.to_list s)) sets in
  let buckets = Array.make num_elements [] in
  Array.iteri
    (fun k s ->
      Bitset.iter
        (fun e ->
          if e >= num_elements then
            invalid_arg (Printf.sprintf "Set_cover: element %d out of range" e);
          buckets.(e) <- k :: buckets.(e))
        s;
      ignore s)
    covers;
  Array.iteri
    (fun e bucket ->
      if bucket = [] then
        invalid_arg (Printf.sprintf "Set_cover: element %d covered by no set" e))
    buckets;
  let all = ref Bitset.empty in
  for e = num_elements - 1 downto 0 do
    all := Bitset.add e !all
  done;
  {
    num_elements;
    covers;
    coverers = Array.map (fun b -> Array.of_list (List.rev b)) buckets;
    all = !all;
  }

let greedy_universe ?(budget = Util.Budget.unlimited) universe =
  let covered = Bytes.make universe.num_elements '\000' in
  let gain = Array.map Bitset.cardinal universe.covers in
  let remaining = ref universe.num_elements in
  let chosen = ref [] in
  (* One step per greedy round; the salvage is the (incomplete) prefix of
     picks, sound to seed a cheaper algorithm with. *)
  let partial () = Interrupt.Partial_cover !chosen in
  while !remaining > 0 do
    Interrupt.step ~partial budget;
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun k g ->
        if g > !best_gain then begin
          best := k;
          best_gain := g
        end)
      gain;
    (* An uncovered element always gives its coverers positive gain. *)
    assert (!best >= 0);
    chosen := !best :: !chosen;
    Bitset.iter
      (fun e ->
        if Bytes.get covered e = '\000' then begin
          Bytes.set covered e '\001';
          decr remaining;
          Array.iter (fun k -> gain.(k) <- gain.(k) - 1) universe.coverers.(e)
        end)
      universe.covers.(!best)
  done;
  List.sort_uniq Int.compare !chosen

let greedy ?budget ~num_elements sets =
  if num_elements = 0 then []
  else greedy_universe ?budget (build ~num_elements sets)

let search ?(max_nodes = 20_000_000) ?(budget = Util.Budget.unlimited)
    ?(fallback = []) universe ~initial_bound =
  let best_size = ref initial_bound and best_cover = ref None in
  let nodes = ref 0 in
  (* The salvage is the best *complete* cover known: the incumbent found by
     the search so far, else [fallback] (the greedy cover the caller seeded
     the bound with). A supervisor can answer with it directly. *)
  let partial () =
    Interrupt.Partial_cover
      (match !best_cover with Some c -> c | None -> fallback)
  in
  let max_set_size =
    Array.fold_left (fun acc s -> max acc (Bitset.cardinal s)) 1 universe.covers
  in
  let rec go depth chosen uncovered =
    incr nodes;
    Interrupt.step ~partial budget;
    if !nodes > max_nodes then
      raise (Too_large (Printf.sprintf "Set_cover: exceeded %d search nodes" max_nodes));
    if Bitset.is_empty uncovered then begin
      if depth < !best_size then begin
        best_size := depth;
        best_cover := Some chosen
      end
    end
    else begin
      let remaining = Bitset.cardinal uncovered in
      let lower = depth + ((remaining + max_set_size - 1) / max_set_size) in
      if lower < !best_size then begin
        let pick = ref (-1) and pick_arity = ref max_int in
        Bitset.iter
          (fun e ->
            let arity = Array.length universe.coverers.(e) in
            if arity < !pick_arity then begin
              pick := e;
              pick_arity := arity
            end)
          uncovered;
        let scored =
          Array.to_list universe.coverers.(!pick)
          |> List.map (fun k ->
                 (Bitset.cardinal (Bitset.inter universe.covers.(k) uncovered), k))
          |> List.sort (fun (ga, _) (gb, _) -> Int.compare gb ga)
        in
        List.iter
          (fun (_, k) ->
            go (depth + 1) (k :: chosen) (Bitset.diff uncovered universe.covers.(k)))
          scored
      end
    end
  in
  go 0 [] universe.all;
  !best_cover

let minimum ?max_nodes ?budget ~num_elements sets =
  if num_elements = 0 then []
  else begin
    let universe = build ~num_elements sets in
    let incumbent = greedy_universe ?budget universe in
    match
      search ?max_nodes ?budget ~fallback:incumbent universe
        ~initial_bound:(List.length incumbent)
    with
    | Some cover -> List.sort_uniq Int.compare cover
    | None -> incumbent
  end

let bounded ?max_nodes ?budget ~bound ~num_elements sets =
  if bound < 0 then None
  else if num_elements = 0 then Some []
  else begin
    let universe = build ~num_elements sets in
    let incumbent = greedy_universe ?budget universe in
    if List.length incumbent <= bound then Some incumbent
    else begin
      match
        search ?max_nodes ?budget ~fallback:incumbent universe
          ~initial_bound:(bound + 1)
      with
      | Some cover -> Some (List.sort_uniq Int.compare cover)
      | None -> None
    end
  end
