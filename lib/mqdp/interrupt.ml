type partial =
  | No_partial
  | Partial_cover of int list

exception Budget_exceeded of {
  reason : Util.Budget.stop_reason;
  partial : partial;
}

let none () = No_partial

let check ?(partial = none) budget =
  match Util.Budget.poll budget with
  | None -> ()
  | Some reason -> raise (Budget_exceeded { reason; partial = partial () })

let step ?cost ?partial budget =
  Util.Budget.add ?cost budget;
  check ?partial budget

let stop budget () = Util.Budget.should_stop budget

let positions_of = function
  | No_partial -> []
  | Partial_cover ps -> List.sort_uniq Int.compare ps
