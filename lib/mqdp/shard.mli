(** A failure domain holding many {!Profile}s: one bounded ingest queue,
    one supervised processing loop, one durable snapshot.

    The shard's "queue" is the union of its profiles' pending journals —
    {!offer} acknowledges a post into a profile's journal and {!tick}
    drains them — bounded by [queue_capacity] across the whole shard.
    A full queue {e sheds}: {!offer} returns [false], the post is not
    acknowledged, and the shed is counted. Quarantined profiles shed
    their traffic too (their journals are frozen until revived).

    {!tick} is the supervised loop: profiles are processed in name order
    (deterministic), each under the shard's step budget; budget
    exhaustion stops the tick cleanly with the remainder still queued
    (backpressure), while profile crashes are handled inside
    {!Profile.process} (checkpoint recovery, quarantine after repeated
    failures) and never escape the tick.

    {!snapshot}/{!restore} serialize the durable state of every profile
    plus the shard counters, with an FNV-1a-64 checksum. [restore]
    rebuilds each profile through its crash-recovery path, so a
    snapshot/restore cycle is exactly a simulated process death — the
    fuzzer restarts shards mid-stream this way. *)

type config = {
  queue_capacity : int;  (** max acknowledged-but-unapplied posts *)
  tick_steps : int option;  (** per-{!tick} step budget; [None] unlimited *)
}

type counters = {
  acked : int;  (** posts acknowledged into profile journals *)
  shed : int;  (** offers refused: queue full or profile quarantined *)
  applied : int;  (** posts applied to live feeds *)
}

type t

(** Raises [Invalid_argument] when [queue_capacity < 1] or
    [tick_steps < 1]. *)
val create : config -> t

val config : t -> config

(** [add t profile] registers a profile. Raises [Invalid_argument] on a
    duplicate name. *)
val add : t -> Profile.t -> unit

(** [remove t name] — [true] when the profile existed (its pending posts
    leave the backlog with it). *)
val remove : t -> string -> bool

val find : t -> string -> Profile.t option
val profile_count : t -> int

(** Profiles in name order (the tick order). *)
val profiles : t -> Profile.t list

(** Acknowledged-but-unapplied posts across all profiles. *)
val backlog : t -> int

val counters : t -> counters

(** Sum of {!Profile.crashes} over the shard's profiles. *)
val crash_count : t -> int

val quarantined_count : t -> int

(** [offer t profile post] — acknowledge [post] into [profile]'s journal,
    unless the shard queue is full or the profile is quarantined (then
    the post is shed and [false] returned). [profile] must belong to this
    shard. *)
val offer : t -> Profile.t -> Post.t -> bool

(** [tick ?chaos ?deadline t] processes pending posts across profiles in
    name order under the configured step budget (plus [deadline] seconds
    of wall clock, when given). Returns posts applied. *)
val tick : ?chaos:(unit -> unit) -> ?deadline:float -> t -> int

(** {2 Durable snapshots} *)

exception Corrupt of string

val snapshot : t -> string

(** Rebuild from {!snapshot}; every profile comes back through its
    recovery path. Raises {!Corrupt} on checksum or structure damage. *)
val restore : string -> t
