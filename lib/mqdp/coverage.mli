(** λ-coverage: the paper's Definitions 1 and 2, plus the directional
    variant of Section 6 where λ is specific to the covering post and
    label.

    With [Fixed lambda], post [Pi] λ-covers label [a] of post [Pj] iff
    [a ∈ label(Pi) ∩ label(Pj)] and [|F(Pi) − F(Pj)| ≤ lambda]. With
    [Per_post_label radius], the threshold is [radius pi a] — the radius of
    the *covering* post — which makes coverage directional. *)

type lambda =
  | Fixed of float
  | Per_post_label of (Post.t -> Label.t -> float)

(** [radius lambda p a] is the covering radius of post [p] for label [a]. *)
val radius : lambda -> Post.t -> Label.t -> float

(** [reach lambda p a] is the right extent [F(p) + radius lambda p a] of
    [p]'s coverage interval for label [a] — the quantity every scan-family
    algorithm maximizes and the streaming engine compares deadlines
    against. *)
val reach : lambda -> Post.t -> Label.t -> float

(** [interval lambda p a] is [p]'s full coverage interval
    [(F(p) − r, F(p) + r)] for label [a]. {!Pair_index} compiles these
    intervals; use this helper rather than re-deriving endpoints. *)
val interval : lambda -> Post.t -> Label.t -> float * float

(** [covers_label lambda ~by a p] — does [by] λ-cover label [a] of [p]?
    False when [a] is missing from either label set. *)
val covers_label : lambda -> by:Post.t -> Label.t -> Post.t -> bool

(** [post_covered lambda ~by p] — Definition 1: is every label of [p]
    λ-covered by some post in [by]? *)
val post_covered : lambda -> by:Post.t list -> Post.t -> bool

(** [is_cover instance lambda cover] — Definition 2: do the posts at
    positions [cover] λ-cover the whole instance? Positions outside
    [0, size) raise [Invalid_argument]. *)
val is_cover : Instance.t -> lambda -> int list -> bool

(** [uncovered instance lambda cover] lists every (position, label) pair not
    λ-covered — empty exactly when [is_cover] holds. Useful in tests for
    diagnosing a bad cover. *)
val uncovered : Instance.t -> lambda -> int list -> (int * Label.t) list
