type algorithm =
  | Opt
  | Brute_force
  | Greedy_sc
  | Greedy_sc_heap
  | Scan
  | Scan_plus

type streaming_algorithm =
  | Stream_scan
  | Stream_scan_plus
  | Stream_greedy
  | Stream_greedy_plus
  | Instant

type result = {
  cover : int list;
  size : int;
  elapsed : float;
}

type streaming_result = {
  stream : Stream.result;
  stream_size : int;
  stream_elapsed : float;
}

let algorithm_name = function
  | Opt -> "opt"
  | Brute_force -> "brute-force"
  | Greedy_sc -> "greedy-sc"
  | Greedy_sc_heap -> "greedy-sc-heap"
  | Scan -> "scan"
  | Scan_plus -> "scan+"

let streaming_algorithm_name = function
  | Stream_scan -> "stream-scan"
  | Stream_scan_plus -> "stream-scan+"
  | Stream_greedy -> "stream-greedy-sc"
  | Stream_greedy_plus -> "stream-greedy-sc+"
  | Instant -> "instant"

let all_algorithms = [ Opt; Brute_force; Greedy_sc; Greedy_sc_heap; Scan; Scan_plus ]

let all_streaming_algorithms =
  [ Stream_scan; Stream_scan_plus; Stream_greedy; Stream_greedy_plus; Instant ]

let algorithm_of_string s =
  List.find_opt (fun a -> algorithm_name a = s) all_algorithms

let streaming_algorithm_of_string s =
  List.find_opt (fun a -> streaming_algorithm_name a = s) all_streaming_algorithms

let solve_with_pool ?pool algorithm instance lambda =
  match algorithm with
  | Opt -> Opt.solve instance lambda
  | Brute_force -> Brute_force.solve instance lambda
  | Greedy_sc -> Greedy_sc.solve ~selection:`Linear_scan ?pool instance lambda
  | Greedy_sc_heap -> Greedy_sc.solve ~selection:`Lazy_heap ?pool instance lambda
  | Scan -> Scan.solve ?pool instance lambda
  | Scan_plus -> Scan.solve_plus ?pool instance lambda

let solve ?(jobs = 1) algorithm instance lambda =
  if jobs < 1 then invalid_arg "Solver.solve: jobs < 1";
  (* The pool is created (and its domains spawned) outside the timed
     region so [elapsed] measures the algorithm, not domain startup. *)
  let timed pool =
    let cover, elapsed =
      Util.Timer.time_it (fun () -> solve_with_pool ?pool algorithm instance lambda)
    in
    { cover; size = List.length cover; elapsed }
  in
  if jobs = 1 then timed None
  else Util.Pool.with_pool ~jobs (fun pool -> timed (Some pool))

let compile ?(jobs = 1) instance lambda =
  if jobs < 1 then invalid_arg "Solver.compile: jobs < 1";
  if jobs = 1 then Pair_index.build instance lambda
  else Util.Pool.with_pool ~jobs (fun pool -> Pair_index.build ~pool instance lambda)

let solve_compiled algorithm index =
  let run () =
    match algorithm with
    | Opt -> Opt.solve (Pair_index.instance index) (Pair_index.lambda index)
    | Brute_force ->
      Brute_force.solve (Pair_index.instance index) (Pair_index.lambda index)
    | Greedy_sc -> Greedy_sc.solve_indexed ~selection:`Linear_scan index
    | Greedy_sc_heap -> Greedy_sc.solve_indexed ~selection:`Lazy_heap index
    | Scan -> Scan.solve_indexed index
    | Scan_plus -> Scan.solve_plus_indexed index
  in
  let cover, elapsed = Util.Timer.time_it run in
  { cover; size = List.length cover; elapsed }

let solve_stream algorithm ~tau instance lambda =
  let run () =
    match algorithm with
    | Stream_scan -> Stream_scan.solve ~plus:false ~tau instance lambda
    | Stream_scan_plus -> Stream_scan.solve ~plus:true ~tau instance lambda
    | Stream_greedy -> Stream_greedy.solve ~plus:false ~tau instance lambda
    | Stream_greedy_plus -> Stream_greedy.solve ~plus:true ~tau instance lambda
    | Instant -> Stream_scan.solve_instant instance lambda
  in
  let stream, stream_elapsed = Util.Timer.time_it run in
  { stream; stream_size = List.length stream.Stream.cover; stream_elapsed }
