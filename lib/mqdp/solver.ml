type algorithm =
  | Opt
  | Brute_force
  | Greedy_sc
  | Greedy_sc_heap
  | Greedy_sc_linear
  | Scan
  | Scan_plus

type streaming_algorithm =
  | Stream_scan
  | Stream_scan_plus
  | Stream_greedy
  | Stream_greedy_plus
  | Instant

type result = {
  cover : int list;
  size : int;
  elapsed : float;
}

type streaming_result = {
  stream : Stream.result;
  stream_size : int;
  stream_elapsed : float;
}

let algorithm_name = function
  | Opt -> "opt"
  | Brute_force -> "brute-force"
  | Greedy_sc -> "greedy-sc"
  | Greedy_sc_heap -> "greedy-sc-heap"
  | Greedy_sc_linear -> "greedy-sc-linear"
  | Scan -> "scan"
  | Scan_plus -> "scan+"

let streaming_algorithm_name = function
  | Stream_scan -> "stream-scan"
  | Stream_scan_plus -> "stream-scan+"
  | Stream_greedy -> "stream-greedy-sc"
  | Stream_greedy_plus -> "stream-greedy-sc+"
  | Instant -> "instant"

let all_algorithms =
  [ Opt; Brute_force; Greedy_sc; Greedy_sc_heap; Greedy_sc_linear; Scan; Scan_plus ]

let all_streaming_algorithms =
  [ Stream_scan; Stream_scan_plus; Stream_greedy; Stream_greedy_plus; Instant ]

let algorithm_of_string s =
  List.find_opt (fun a -> algorithm_name a = s) all_algorithms

let streaming_algorithm_of_string s =
  List.find_opt (fun a -> streaming_algorithm_name a = s) all_streaming_algorithms

(* [seed] is honored natively by the algorithms that can exploit it
   (GreedySC pre-marks and skips, Scan+ pre-marks); for the rest the seed
   is unioned into the answer, so "seed ⊆ result" and "result is a cover"
   hold for every algorithm (coverage is monotone in the cover set). *)
let run ?pool ?budget ?(seed = []) algorithm instance lambda =
  let union cover =
    if seed = [] then cover else List.sort_uniq Int.compare (List.rev_append seed cover)
  in
  Util.Telemetry.span ~name:("solve." ^ algorithm_name algorithm) @@ fun () ->
  match algorithm with
  | Opt -> union (Opt.solve ?budget instance lambda)
  | Brute_force -> union (Brute_force.solve ?budget instance lambda)
  | Greedy_sc -> Greedy_sc.solve ~selection:`Bucket_queue ?pool ?budget ~seed instance lambda
  | Greedy_sc_heap -> Greedy_sc.solve ~selection:`Lazy_heap ?pool ?budget ~seed instance lambda
  | Greedy_sc_linear ->
    Greedy_sc.solve ~selection:`Linear_scan ?pool ?budget ~seed instance lambda
  | Scan -> union (Scan.solve ?pool ?budget instance lambda)
  | Scan_plus -> Scan.solve_plus ?pool ?budget ~seed instance lambda

let solve ?(jobs = 1) ?budget algorithm instance lambda =
  if jobs < 1 then invalid_arg "Solver.solve: jobs < 1";
  (* The pool is created (and its domains spawned) outside the timed
     region so [elapsed] measures the algorithm, not domain startup. *)
  let timed pool =
    let cover, elapsed =
      Util.Timer.time_it (fun () -> run ?pool ?budget algorithm instance lambda)
    in
    { cover; size = List.length cover; elapsed }
  in
  if jobs = 1 then timed None
  else Util.Pool.with_pool ~jobs (fun pool -> timed (Some pool))

let compile ?(jobs = 1) ?budget instance lambda =
  if jobs < 1 then invalid_arg "Solver.compile: jobs < 1";
  Util.Telemetry.span ~name:"solver.compile" @@ fun () ->
  if jobs = 1 then Pair_index.build ?budget instance lambda
  else Util.Pool.with_pool ~jobs (fun pool -> Pair_index.build ~pool ?budget instance lambda)

let compile_window ?budget instance lambda =
  Util.Telemetry.span ~name:"solver.compile_window" @@ fun () ->
  let w = Window_index.create lambda in
  let b =
    match budget with
    | Some b -> b
    | None -> Util.Budget.unlimited
  in
  Array.iter
    (fun p ->
      Interrupt.step b;
      Window_index.push w p)
    (Instance.posts instance);
  w

let solve_window ?budget ?solver algorithm window =
  let go () =
    Util.Telemetry.span ~name:("solve_window." ^ algorithm_name algorithm)
    @@ fun () ->
    match algorithm with
    | Greedy_sc -> Greedy_sc.solve_window ~selection:`Bucket_queue ?solver ?budget window
    | Greedy_sc_heap -> Greedy_sc.solve_window ~selection:`Lazy_heap ?solver ?budget window
    | Greedy_sc_linear ->
      Greedy_sc.solve_window ~selection:`Linear_scan ?solver ?budget window
    | Opt | Brute_force | Scan | Scan_plus ->
      (* Documented slow path: these have no incremental formulation yet,
         so the live window is materialized as a fresh instance. Window
         positions and slice positions coincide, so the cover needs no
         translation. *)
      run ?budget algorithm (Window_index.to_instance window)
        (Window_index.lambda window)
  in
  let cover, elapsed = Util.Timer.time_it go in
  { cover; size = List.length cover; elapsed }

let solve_compiled ?budget algorithm index =
  let run () =
    Util.Telemetry.span ~name:("solve." ^ algorithm_name algorithm) @@ fun () ->
    match algorithm with
    | Opt -> Opt.solve ?budget (Pair_index.instance index) (Pair_index.lambda index)
    | Brute_force ->
      Brute_force.solve ?budget (Pair_index.instance index) (Pair_index.lambda index)
    | Greedy_sc -> Greedy_sc.solve_indexed ~selection:`Bucket_queue ?budget index
    | Greedy_sc_heap -> Greedy_sc.solve_indexed ~selection:`Lazy_heap ?budget index
    | Greedy_sc_linear -> Greedy_sc.solve_indexed ~selection:`Linear_scan ?budget index
    | Scan -> Scan.solve_indexed ?budget index
    | Scan_plus -> Scan.solve_plus_indexed ?budget index
  in
  let cover, elapsed = Util.Timer.time_it run in
  { cover; size = List.length cover; elapsed }

let solve_stream algorithm ~tau instance lambda =
  let run () =
    match algorithm with
    | Stream_scan -> Stream_scan.solve ~plus:false ~tau instance lambda
    | Stream_scan_plus -> Stream_scan.solve ~plus:true ~tau instance lambda
    | Stream_greedy -> Stream_greedy.solve ~plus:false ~tau instance lambda
    | Stream_greedy_plus -> Stream_greedy.solve ~plus:true ~tau instance lambda
    | Instant -> Stream_scan.solve_instant instance lambda
  in
  let stream, stream_elapsed = Util.Timer.time_it run in
  { stream; stream_size = List.length stream.Stream.cover; stream_elapsed }
