(* Sans-IO connection state machine: framing, deadlines, backpressure.
   All byte storage is Util.Netio.Buf; no Unix anywhere — the event loop,
   the chaos simulator, and the unit tests drive identical code. *)

module Buf = Util.Netio.Buf

type config = {
  max_line : int;
  max_pending_out : int;
  idle_timeout : float option;
}

let default_config =
  { max_line = 8192; max_pending_out = 1 lsl 20; idle_timeout = Some 30. }

type close_reason = Eof | Line_too_long | Idle_timeout | Output_overflow | Drained

let close_reason_string = function
  | Eof -> "eof"
  | Line_too_long -> "line-too-long"
  | Idle_timeout -> "idle-timeout"
  | Output_overflow -> "output-overflow"
  | Drained -> "drained"

type step = Request of string | Wait | Close of close_reason

type t = {
  config : config;
  inbuf : Buf.t;
  outbuf : Buf.t;
  mutable tail_len : int;  (* bytes fed since the last newline seen *)
  mutable eof : bool;
  mutable drain : bool;
  mutable condemned : close_reason option;  (* fault decided; close after flush *)
  mutable idle_at : float;  (* absolute deadline; re-armed per request *)
}

let validate config =
  if config.max_line < 1 then invalid_arg "Transport.create: max_line < 1";
  if config.max_pending_out < 1 then
    invalid_arg "Transport.create: max_pending_out < 1";
  match config.idle_timeout with
  | Some s when not (s > 0.) -> invalid_arg "Transport.create: idle_timeout <= 0"
  | _ -> ()

let arm t now =
  t.idle_at <-
    (match t.config.idle_timeout with
    | None -> infinity
    | Some s -> now +. s)

let create ?(config = default_config) ~now () =
  validate config;
  let t =
    {
      config;
      inbuf = Buf.create ();
      outbuf = Buf.create ();
      tail_len = 0;
      eof = false;
      drain = false;
      condemned = None;
      idle_at = infinity;
    }
  in
  arm t now;
  t

let config t = t.config

let respond t lines =
  List.iter
    (fun line ->
      Buf.add_string t.outbuf line;
      Buf.add_string t.outbuf "\n")
    lines;
  if Buf.length t.outbuf > t.config.max_pending_out && t.condemned = None then
    t.condemned <- Some Output_overflow

let condemn t reason message =
  if t.condemned = None then begin
    (* The transport-level response carries sequence number 0: the
       offending input never framed a request, so there is no client
       sequence to echo. Queue it before condemning or [respond] would
       refuse the write. *)
    respond t [ Printf.sprintf "0 ERR %s %s" (close_reason_string reason) message ];
    t.condemned <- Some reason
  end

let feed t bytes ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Transport.feed";
  if (not t.eof) && t.condemned = None && len > 0 then begin
    Buf.add_subbytes t.inbuf bytes ~pos ~len;
    (* Track the unterminated tail as bytes arrive: a client pouring an
       endless line hits the cap immediately, long before extraction. *)
    (match Bytes.rindex_from_opt bytes (pos + len - 1) '\n' with
    | Some i when i >= pos -> t.tail_len <- pos + len - 1 - i
    | Some _ | None -> t.tail_len <- t.tail_len + len);
    if t.tail_len > t.config.max_line then
      condemn t Line_too_long
        (Printf.sprintf "request exceeds %d bytes" t.config.max_line)
  end

let feed_string t s =
  feed t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let feed_eof t = t.eof <- true
let begin_drain t = t.drain <- true
let draining t = t.drain

let pop_line t =
  match Buf.index_from t.inbuf ~from:0 '\n' with
  | -1 -> None
  | i ->
    let len =
      if i > 0 && Buf.sub_string t.inbuf ~pos:(i - 1) ~len:1 = "\r" then i - 1
      else i
    in
    let line = Buf.sub_string t.inbuf ~pos:0 ~len in
    Buf.drop t.inbuf (i + 1);
    Some line

let next t ~now =
  match t.condemned with
  | Some reason -> Close reason
  | None -> (
    match pop_line t with
    | Some line ->
      (* A terminated line can still breach the cap when it arrived in one
         chunk whose newline reset the tail counter. *)
      if String.length line > t.config.max_line then begin
        condemn t Line_too_long
          (Printf.sprintf "request exceeds %d bytes" t.config.max_line);
        Close Line_too_long
      end
      else begin
        arm t now;
        Request line
      end
    | None ->
      if t.eof then Close Eof
      else if t.drain then Close Drained
      else if now >= t.idle_at then begin
        condemn t Idle_timeout "no complete request within the idle deadline";
        Close Idle_timeout
      end
      else Wait)

let output t = Buf.peek t.outbuf
let wrote t n = Buf.drop t.outbuf n
let output_length t = Buf.length t.outbuf
let has_output t = not (Buf.is_empty t.outbuf)
let input_length t = Buf.length t.inbuf

let idle_deadline t =
  match t.config.idle_timeout with
  | None -> None
  | Some _ -> if t.condemned = None then Some t.idle_at else None

(* HELLO parsing shared by every driver (the event loop, the fuzzer's
   simulated server): one place decides what counts as a session-binding
   request, so the drivers cannot drift apart. *)
type hello = Not_hello | Hello_empty | Hello of string

let parse_hello line =
  if String.starts_with ~prefix:"HELLO " line then begin
    let id = String.trim (String.sub line 6 (String.length line - 6)) in
    if id = "" then Hello_empty else Hello id
  end
  else Not_hello

let hello_greeting ~id ~seq =
  Printf.sprintf "0 OK hello %s seq=%d" id seq
