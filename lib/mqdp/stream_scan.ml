(* Both entry points are thin adapters over the incremental {!Online}
   engine: feed the instance's posts in order, map emitted posts back to
   instance positions. The engine is created with a mirrored
   {!Window_index}, so position mapping consults the live window first —
   an emitted post's arrival number IS its instance position, because the
   stream here is exactly the instance's posts in order. *)

(* Instance positions are sorted by [Post.compare_by_value] (a total
   order: value, then the unique id), so an emitted post's position is a
   binary search — the fallback when the post has already slid out of the
   mirror window. *)
let position_of instance p =
  let rec go lo hi =
    if lo >= hi then invalid_arg "Stream_scan: emitted post not in instance"
    else begin
      let mid = (lo + hi) / 2 in
      let c = Post.compare_by_value p (Instance.post instance mid) in
      if c = 0 then mid else if c < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (Instance.size instance)

let run engine instance =
  let n = Instance.size instance in
  let emissions = ref [] in
  let position p =
    let from_window =
      match Online.window engine with
      | Some w -> Window_index.find_position w p
      | None -> -1
    in
    if from_window >= 0 then from_window else position_of instance p
  in
  let record es =
    List.iter
      (fun e ->
        emissions :=
          { Stream.position = position e.Online.post; emit_time = e.Online.emit_time }
          :: !emissions)
      es
  in
  for i = 0 to n - 1 do
    record (Online.push engine (Instance.post instance i))
  done;
  record (Online.finish engine);
  Stream.make_result (List.rev !emissions)

let engine_with_window ~lambda mode =
  Online.create ~window:(Window_index.create (Coverage.Fixed lambda)) ~lambda mode

let solve ?(plus = false) ~tau instance lambda =
  if tau < 0. then invalid_arg "Stream_scan.solve: negative tau";
  let l = Stream.fixed_lambda_exn ~who:"Stream_scan.solve" lambda in
  run (engine_with_window ~lambda:l (Online.Delayed { tau; plus })) instance

let solve_instant instance lambda =
  let l = Stream.fixed_lambda_exn ~who:"Stream_scan.solve_instant" lambda in
  run (engine_with_window ~lambda:l Online.Instant) instance
