(* Both entry points are thin adapters over the incremental {!Online}
   engine: feed the instance's posts in order, map emitted posts back to
   instance positions. *)

(* Instance positions are sorted by [Post.compare_by_value] (a total
   order: value, then the unique id), so an emitted post's position is a
   binary search — no id hash table per solve. *)
let position_of instance p =
  let rec go lo hi =
    if lo >= hi then invalid_arg "Stream_scan: emitted post not in instance"
    else begin
      let mid = (lo + hi) / 2 in
      let c = Post.compare_by_value p (Instance.post instance mid) in
      if c = 0 then mid else if c < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (Instance.size instance)

let run mode instance =
  let n = Instance.size instance in
  let engine = mode in
  let emissions = ref [] in
  let record es =
    List.iter
      (fun e ->
        emissions :=
          {
            Stream.position = position_of instance e.Online.post;
            emit_time = e.Online.emit_time;
          }
          :: !emissions)
      es
  in
  for i = 0 to n - 1 do
    record (Online.push engine (Instance.post instance i))
  done;
  record (Online.finish engine);
  Stream.make_result (List.rev !emissions)

let solve ?(plus = false) ~tau instance lambda =
  if tau < 0. then invalid_arg "Stream_scan.solve: negative tau";
  let l = Stream.fixed_lambda_exn ~who:"Stream_scan.solve" lambda in
  run (Online.create ~lambda:l (Online.Delayed { tau; plus })) instance

let solve_instant instance lambda =
  let l = Stream.fixed_lambda_exn ~who:"Stream_scan.solve_instant" lambda in
  run (Online.create ~lambda:l Online.Instant) instance
