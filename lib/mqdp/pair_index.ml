(* Layout: pair ids are label-major — label [a]'s pairs occupy
   [base.(a) .. base.(a+1) - 1] in LP(a) order — so every per-pair
   attribute is one flat array indexed by id, and a post's coverage within
   one label is a contiguous id range.

   Parallel-build determinism: the per-label phase writes only label [a]'s
   id block (and its own CSR row block), the per-post phase writes only
   post [k]'s (post, label) slots; merges are plain array writes at fixed
   indices, so the compiled index is bit-identical for any pool size. *)

type coverers =
  | Ranges of { first : int array; last : int array }
      (* fixed λ: coverers of pair [id] are the pairs (equivalently, their
         positions) in [first.(id) .. last.(id)], same label block *)
  | Rows of { offsets : int array; posts : int array }
      (* per-post λ: CSR rows of covering positions, ascending *)
  | Absent

type t = {
  instance : Instance.t;
  lambda : Coverage.lambda;
  base : int array;  (* max_label + 2 label offsets; base.(a+1) - base.(a) = |LP(a)| *)
  pair_pos : int array;
  pair_value : float array;
  pair_reach : float array option;  (* per-post λ; fixed λ derives value + λ *)
  best : int array option;  (* per-post λ: precomputed best pick per pair *)
  cov : coverers;
  own_off : int array;  (* size + 1: one slot per (post, label), labels ascending *)
  own_pair : int array;  (* slot -> the pair the post itself constitutes *)
  range_first : int array;  (* slot -> first pair id the post covers there *)
  range_last : int array;  (* slot -> last pair id (first > last = empty) *)
}

let fixed_of = function Coverage.Fixed l -> Some l | Coverage.Per_post_label _ -> None

(* Smallest LP(a) index with value > x within the label block at [la]. *)
let first_above_in pair_value la m x =
  let lo = ref 0 and hi = ref m in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pair_value.(la + mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of position [pos] in the ascending positions array [lp]. *)
let rank_of lp pos =
  let lo = ref 0 and hi = ref (Array.length lp) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if lp.(mid) < pos then lo := mid + 1 else hi := mid
  done;
  !lo

let build_unspanned ?pool ?(budget = Util.Budget.unlimited) ?(coverers = true)
    instance lambda =
  let n = Instance.size instance in
  let total = Instance.total_pairs instance in
  let max_label = Instance.max_label instance in
  let base = Array.make (max_label + 2) 0 in
  for a = 0 to max_label do
    base.(a + 1) <- base.(a) + Array.length (Instance.label_posts instance a)
  done;
  let pair_pos = Array.make total 0 in
  let pair_value = Array.make total 0. in
  let fixed = fixed_of lambda in
  let pair_reach =
    match fixed with Some _ -> None | None -> Some (Array.make total 0.)
  in
  let best = match fixed with Some _ -> None | None -> Some (Array.make total 0) in
  let cov_ranges =
    match (fixed, coverers) with
    | Some _, true -> Some (Array.make total 0, Array.make total 0)
    | _ -> None
  in
  let row_counts =
    match (fixed, coverers) with
    | None, true -> Some (Array.make total 0)
    | _ -> None
  in
  let universe = Array.of_list (Instance.label_universe instance) in
  (* Phase 1, per label: pair attributes, coverer ranges / best picks /
     CSR row counts. *)
  let process_label a =
    let lp = Instance.label_posts instance a in
    let la = base.(a) in
    let m = Array.length lp in
    Interrupt.step ~cost:m budget;
    for ia = 0 to m - 1 do
      pair_pos.(la + ia) <- lp.(ia);
      pair_value.(la + ia) <- Instance.value instance lp.(ia)
    done;
    (match cov_ranges with
    | Some (cf, cl) ->
      let l = Option.get fixed in
      for ia = 0 to m - 1 do
        let x = pair_value.(la + ia) in
        match Instance.posts_in_range instance a ~lo:(x -. l) ~hi:(x +. l) with
        | Some (f, lst) ->
          cf.(la + ia) <- la + f;
          cl.(la + ia) <- la + lst
        | None ->
          cf.(la + ia) <- 0;
          cl.(la + ia) <- -1
      done
    | None -> ());
    match fixed with
    | Some _ -> ()
    | None ->
      let reach = Option.get pair_reach and best = Option.get best in
      let left = Array.make m 0. in
      for ia = 0 to m - 1 do
        let lo, hi = Coverage.interval lambda (Instance.post instance lp.(ia)) a in
        left.(ia) <- lo;
        reach.(la + ia) <- hi
      done;
      (* Best pick per pair: sweep values left to right, admitting
         intervals by left endpoint into a heap keyed (reach desc, LP
         index asc). The top is exactly the linear scan's answer: the
         candidate reaching furthest right, smallest index on ties. *)
      let order = Array.init m Fun.id in
      Array.sort
        (fun i j ->
          let c = Float.compare left.(i) left.(j) in
          if c <> 0 then c else Int.compare i j)
        order;
      let cmp (ra, ja) (rb, jb) =
        let c = Float.compare rb ra in
        if c <> 0 then c else Int.compare ja jb
      in
      let heap = Util.Heap.create cmp in
      let admitted = ref 0 in
      for ia = 0 to m - 1 do
        let x = pair_value.(la + ia) in
        while !admitted < m && left.(order.(!admitted)) <= x do
          let j = order.(!admitted) in
          Util.Heap.push heap (reach.(la + j), j);
          incr admitted
        done;
        let rec top () =
          match Util.Heap.peek heap with
          | Some (r, _) when r < x ->
            ignore (Util.Heap.pop heap);
            top ()
          | Some (_, j) -> j
          | None -> invalid_arg "Pair_index.build: no coverer contains a pair"
        in
        best.(la + ia) <- la + top ()
      done;
      (match row_counts with
      | Some counts ->
        (* Per-label diff array keeps the +1 slot off the next label's
           block. *)
        let diff = Array.make (m + 1) 0 in
        for ia = 0 to m - 1 do
          match
            Instance.posts_in_range instance a ~lo:left.(ia) ~hi:reach.(la + ia)
          with
          | None -> ()
          | Some (f, lst) ->
            diff.(f) <- diff.(f) + 1;
            diff.(lst + 1) <- diff.(lst + 1) - 1
        done;
        let acc = ref 0 in
        for ia = 0 to m - 1 do
          acc := !acc + diff.(ia);
          counts.(la + ia) <- !acc
        done
      | None -> ())
  in
  (* Workers raise [Budget_exceeded] from inside [f] (Pool re-raises it
     unwrapped); [stop] additionally skips queued-but-unstarted labels, and
     the post-call [check] converts a silent cancellation into the raise. *)
  let parallel_labels f =
    (match pool with
    | None -> Array.iter f universe
    | Some pool ->
      Util.Pool.parallel_for pool ~chunk:1 ~stop:(Interrupt.stop budget)
        (Array.length universe) ~f:(fun i -> f universe.(i)));
    Interrupt.check budget
  in
  parallel_labels process_label;
  (* Phase 2 (per-post λ with coverers): global CSR offsets, then fill
     rows per label — each label's rows are one contiguous block. *)
  let cov =
    match (cov_ranges, row_counts) with
    | Some (first, last), _ -> Ranges { first; last }
    | None, Some counts ->
      let offsets = Array.make (total + 1) 0 in
      for id = 0 to total - 1 do
        offsets.(id + 1) <- offsets.(id) + counts.(id)
      done;
      let posts = Array.make offsets.(total) 0 in
      let fill_label a =
        let lp = Instance.label_posts instance a in
        let la = base.(a) in
        let m = Array.length lp in
        Interrupt.step ~cost:m budget;
        let cursor = Array.init m (fun ia -> offsets.(la + ia)) in
        let reach = Option.get pair_reach in
        for j = 0 to m - 1 do
          let p = Instance.post instance lp.(j) in
          let lo = p.Post.value -. Coverage.radius lambda p a in
          match Instance.posts_in_range instance a ~lo ~hi:reach.(la + j) with
          | None -> ()
          | Some (f, lst) ->
            for ia = f to lst do
              posts.(cursor.(ia)) <- lp.(j);
              cursor.(ia) <- cursor.(ia) + 1
            done
        done
      in
      parallel_labels fill_label;
      Rows { offsets; posts }
    | None, None -> Absent
  in
  (* Phase 3, per post: the reverse maps — covered ranges and own pairs,
     one slot per (post, label). *)
  let own_off = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    own_off.(k + 1) <- own_off.(k) + Label_set.cardinal (Instance.labels instance k)
  done;
  let own_pair = Array.make total 0 in
  let range_first = Array.make total 0 in
  let range_last = Array.make total (-1) in
  let process_post k =
    Interrupt.step budget;
    let p = Instance.post instance k in
    let slot = ref own_off.(k) in
    Label_set.iter
      (fun a ->
        let la = base.(a) in
        own_pair.(!slot) <- la + rank_of (Instance.label_posts instance a) k;
        let lo, hi = Coverage.interval lambda p a in
        (match Instance.posts_in_range instance a ~lo ~hi with
        | Some (f, lst) ->
          range_first.(!slot) <- la + f;
          range_last.(!slot) <- la + lst
        | None ->
          range_first.(!slot) <- 0;
          range_last.(!slot) <- -1);
        incr slot)
      p.Post.labels
  in
  (match pool with
  | None ->
    for k = 0 to n - 1 do
      process_post k
    done
  | Some pool ->
    Util.Pool.parallel_iter_chunks pool ~stop:(Interrupt.stop budget) n
      ~f:(fun lo hi ->
        for k = lo to hi - 1 do
          process_post k
        done));
  Interrupt.check budget;
  { instance; lambda; base; pair_pos; pair_value; pair_reach; best; cov;
    own_off; own_pair; range_first; range_last }

let build ?pool ?budget ?coverers instance lambda =
  Util.Telemetry.span ~name:"pair_index.build" (fun () ->
      build_unspanned ?pool ?budget ?coverers instance lambda)

let instance t = t.instance
let lambda t = t.lambda
let total_pairs t = Array.length t.pair_pos

let label_base t a =
  if a < 0 then invalid_arg "Pair_index.label_base: negative label";
  if a + 1 >= Array.length t.base then total_pairs t else t.base.(a)

let label_size t a =
  if a < 0 then invalid_arg "Pair_index.label_size: negative label";
  if a + 1 >= Array.length t.base then 0 else t.base.(a + 1) - t.base.(a)

let pair_pos t id = t.pair_pos.(id)
let pair_value t id = t.pair_value.(id)

let reach t id =
  match t.pair_reach with
  | Some r -> r.(id)
  | None -> (
    match t.lambda with
    | Coverage.Fixed l -> t.pair_value.(id) +. l
    | Coverage.Per_post_label _ -> assert false)

let first_above t a x =
  let la = label_base t a and m = label_size t a in
  first_above_in t.pair_value la m x

let best_coverer t a id =
  match t.best with
  | Some b -> b.(id)
  | None -> (
    match t.cov with
    | Ranges { last; _ } -> last.(id)
    | Rows _ | Absent ->
      let l =
        match t.lambda with
        | Coverage.Fixed l -> l
        | Coverage.Per_post_label _ -> assert false
      in
      let la = label_base t a and m = label_size t a in
      let x = t.pair_value.(id) in
      let j = first_above_in t.pair_value la m (x +. l) - 1 in
      if j < 0 || t.pair_value.(la + j) < x -. l then
        invalid_arg "Pair_index.best_coverer: no coverer contains the pair";
      la + j)

let iter_coverers t id f =
  match t.cov with
  | Ranges { first; last } ->
    for q = first.(id) to last.(id) do
      f t.pair_pos.(q)
    done
  | Rows { offsets; posts } ->
    for q = offsets.(id) to offsets.(id + 1) - 1 do
      f posts.(q)
    done
  | Absent -> invalid_arg "Pair_index.iter_coverers: built with ~coverers:false"

let iter_covered_ranges t k f =
  for slot = t.own_off.(k) to t.own_off.(k + 1) - 1 do
    f t.range_first.(slot) t.range_last.(slot)
  done

let covered_count t k =
  let count = ref 0 in
  iter_covered_ranges t k (fun first last -> count := !count + last - first + 1);
  !count

let iter_own_pairs t k f =
  for slot = t.own_off.(k) to t.own_off.(k + 1) - 1 do
    f t.own_pair.(slot)
  done

(* Fused greedy-pick kernel. Compared with the closure-based
   [iter_covered_ranges] + [iter_coverers] walk this is one flat loop nest
   with the coverer representation matched once, visiting pair ids in
   ascending order (slots are label-ascending and each label's block is
   contiguous) — and it allocates nothing.

   unsafe_get/set bounds argument: [slot] ranges over own_off.(k) ..
   own_off.(k+1) - 1 (own_off is monotone, capped at total); [id] ranges
   over a [range_first, range_last] pair which construction confines to
   the label's id block, itself within [0, total); coverer entries [q]
   come from the Ranges/Rows tables built over the same blocks; and the
   positions stored in [pair_pos]/[posts] are instance positions in
   [0, n). The caller contract below requires [covered]/[dirty]/[gain]/
   [touched] to be sized total/n/n/n. *)
let apply_pick t ~covered ~gain ~dirty ~touched k =
  if Bytes.length covered < Array.length t.pair_pos then
    invalid_arg "Pair_index.apply_pick: covered too small";
  let n = Instance.size t.instance in
  if Array.length gain < n || Bytes.length dirty < n || Array.length touched < n
  then invalid_arg "Pair_index.apply_pick: scratch too small";
  let cnt = ref 0 in
  (match t.cov with
  | Ranges { first = cf; last = cl } ->
    for slot = t.own_off.(k) to t.own_off.(k + 1) - 1 do
      let rl = Array.unsafe_get t.range_last slot in
      for id = Array.unsafe_get t.range_first slot to rl do
        if Bytes.unsafe_get covered id = '\000' then begin
          Bytes.unsafe_set covered id '\001';
          let ql = Array.unsafe_get cl id in
          for q = Array.unsafe_get cf id to ql do
            let k' = Array.unsafe_get t.pair_pos q in
            Array.unsafe_set gain k' (Array.unsafe_get gain k' - 1);
            if Bytes.unsafe_get dirty k' = '\000' then begin
              Bytes.unsafe_set dirty k' '\001';
              Array.unsafe_set touched !cnt k';
              incr cnt
            end
          done
        end
      done
    done
  | Rows { offsets; posts } ->
    for slot = t.own_off.(k) to t.own_off.(k + 1) - 1 do
      let rl = Array.unsafe_get t.range_last slot in
      for id = Array.unsafe_get t.range_first slot to rl do
        if Bytes.unsafe_get covered id = '\000' then begin
          Bytes.unsafe_set covered id '\001';
          let ql = Array.unsafe_get offsets (id + 1) - 1 in
          for q = Array.unsafe_get offsets id to ql do
            let k' = Array.unsafe_get posts q in
            Array.unsafe_set gain k' (Array.unsafe_get gain k' - 1);
            if Bytes.unsafe_get dirty k' = '\000' then begin
              Bytes.unsafe_set dirty k' '\001';
              Array.unsafe_set touched !cnt k';
              incr cnt
            end
          done
        end
      done
    done
  | Absent -> invalid_arg "Pair_index.apply_pick: built with ~coverers:false");
  (* [dirty] is internal dedup scratch only: hand it back all-zero so the
     caller never has to sweep it. *)
  let cnt = !cnt in
  for i = 0 to cnt - 1 do
    Bytes.unsafe_set dirty (Array.unsafe_get touched i) '\000'
  done;
  cnt

let fill_covered t ~covered k =
  if Bytes.length covered < Array.length t.pair_pos then
    invalid_arg "Pair_index.fill_covered: covered too small";
  let marked = ref 0 in
  for slot = t.own_off.(k) to t.own_off.(k + 1) - 1 do
    let first = t.range_first.(slot) and last = t.range_last.(slot) in
    let len = last - first + 1 in
    if len > 0 then begin
      marked := !marked + len;
      Bytes.fill covered first len '\001'
    end
  done;
  !marked
