type lambda =
  | Fixed of float
  | Per_post_label of (Post.t -> Label.t -> float)

let radius lambda p a =
  match lambda with
  | Fixed l -> l
  | Per_post_label f -> f p a

let reach lambda p a = p.Post.value +. radius lambda p a

let interval lambda p a =
  let r = radius lambda p a in
  (p.Post.value -. r, p.Post.value +. r)

let covers_label lambda ~by a p =
  Label_set.mem a by.Post.labels
  && Label_set.mem a p.Post.labels
  && Post.distance by p <= radius lambda by a

let post_covered lambda ~by p =
  Label_set.for_all
    (fun a -> List.exists (fun z -> covers_label lambda ~by:z a p) by)
    p.Post.labels

(* For each label, collect the chosen posts containing it once, then check
   every (post, label) pair against that short list. *)
let uncovered instance lambda cover =
  let n = Instance.size instance in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Coverage: cover position out of range")
    cover;
  let num_buckets = 1 + Instance.max_label instance in
  let chosen_by_label = Array.make num_buckets [] in
  List.iter
    (fun i ->
      let p = Instance.post instance i in
      Label_set.iter (fun a -> chosen_by_label.(a) <- p :: chosen_by_label.(a)) p.Post.labels)
    cover;
  let bad = ref [] in
  for i = n - 1 downto 0 do
    let p = Instance.post instance i in
    Label_set.iter
      (fun a ->
        let ok =
          List.exists (fun z -> Post.distance z p <= radius lambda z a) chosen_by_label.(a)
        in
        if not ok then bad := (i, a) :: !bad)
      p.Post.labels
  done;
  !bad

let is_cover instance lambda cover = uncovered instance lambda cover = []
