type t = {
  posts : Post.t array;  (* sorted by (value, id) *)
  label_posts : int array array;  (* LP(a), indexed by label id *)
  universe : Label.t list;
  total_pairs : int;
  max_labels : int;
  max_label : int;  (* largest label id occurring, -1 when empty *)
}

(* Build the posting lists and statistics for an already-sorted,
   already-validated post array (every post labeled, ids distinct). Shared
   by [create] and [sub]. *)
let of_sorted posts =
  let max_label =
    Array.fold_left
      (fun acc p -> max acc (try Label_set.max_label p.Post.labels with Not_found -> -1))
      (-1) posts
  in
  let buckets = Array.make (max_label + 1) [] in
  let total_pairs = ref 0 and max_labels = ref 0 in
  (* Iterate positions in reverse so each bucket ends up ascending. *)
  for i = Array.length posts - 1 downto 0 do
    let labels = posts.(i).Post.labels in
    let card = Label_set.cardinal labels in
    total_pairs := !total_pairs + card;
    if card > !max_labels then max_labels := card;
    Label_set.iter (fun a -> buckets.(a) <- i :: buckets.(a)) labels
  done;
  let label_posts = Array.map Array.of_list buckets in
  let universe =
    List.filter
      (fun a -> Array.length label_posts.(a) > 0)
      (List.init (max_label + 1) Fun.id)
  in
  { posts; label_posts; universe; total_pairs = !total_pairs;
    max_labels = !max_labels; max_label }

let create post_list =
  let relevant = List.filter (fun p -> not (Label_set.is_empty p.Post.labels)) post_list in
  let posts = Array.of_list relevant in
  Array.sort Post.compare_by_value posts;
  let seen = Hashtbl.create (Array.length posts) in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p.Post.id then
        invalid_arg (Printf.sprintf "Instance.create: duplicate post id %d" p.Post.id);
      Hashtbl.add seen p.Post.id ())
    posts;
  of_sorted posts

let size t = Array.length t.posts

let post t i = t.posts.(i)
let value t i = t.posts.(i).Post.value
let labels t i = t.posts.(i).Post.labels
let posts t = t.posts
let label_universe t = t.universe
let num_labels t = List.length t.universe
let max_label t = t.max_label

let label_posts t a =
  if a < 0 then invalid_arg "Instance.label_posts: negative label";
  if a >= Array.length t.label_posts then [||] else t.label_posts.(a)

let posts_in_range t a ~lo ~hi =
  let lp = label_posts t a in
  let key i = t.posts.(i).Post.value in
  let first = Util.Array_util.lower_bound ~key lp lo in
  let last = Util.Array_util.upper_bound ~key lp hi - 1 in
  if first > last then None else Some (first, last)

let overlap_rate t =
  let n = size t in
  if n = 0 then 0. else float_of_int t.total_pairs /. float_of_int n

let max_labels_per_post t = t.max_labels
let total_pairs t = t.total_pairs

(* The posts array is already sorted by value, so the restriction is a
   contiguous slice found by binary search — no re-sort, no re-validation. *)
let sub t ~lo ~hi =
  let key (p : Post.t) = p.Post.value in
  let first = Util.Array_util.lower_bound ~key t.posts lo in
  let last = Util.Array_util.upper_bound ~key t.posts hi in
  of_sorted (Array.sub t.posts first (max 0 (last - first)))

let span t =
  let n = size t in
  if n = 0 then None else Some (t.posts.(0).Post.value, t.posts.(n - 1).Post.value)
