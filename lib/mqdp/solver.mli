(** Uniform front-end over all MQDP algorithms.

    Dispatches by name, times the run, and verifies nothing — verification
    stays an explicit {!Coverage.is_cover} call so benchmarks measure only
    the algorithm. *)

type algorithm =
  | Opt  (** exact DP; fixed λ, small instances only *)
  | Brute_force  (** exact branch-and-bound; small instances only *)
  | Greedy_sc  (** GreedySC with the default bucket-queue selection *)
  | Greedy_sc_heap  (** GreedySC with lazy-heap selection *)
  | Greedy_sc_linear
      (** GreedySC with the paper's linear re-scan selection; all three
          variants produce bit-identical covers *)
  | Scan
  | Scan_plus

type streaming_algorithm =
  | Stream_scan
  | Stream_scan_plus
  | Stream_greedy
  | Stream_greedy_plus
  | Instant  (** τ = 0 cache-based output; the [tau] argument is ignored *)

type result = {
  cover : int list;  (** positions, ascending *)
  size : int;
  elapsed : float;  (** wall-clock seconds *)
}

type streaming_result = {
  stream : Stream.result;
  stream_size : int;
  stream_elapsed : float;
}

val algorithm_name : algorithm -> string
val streaming_algorithm_name : streaming_algorithm -> string

(** [algorithm_of_string s] inverts {!algorithm_name}. *)
val algorithm_of_string : string -> algorithm option

val streaming_algorithm_of_string : string -> streaming_algorithm option

val all_algorithms : algorithm list
val all_streaming_algorithms : streaming_algorithm list

(** [run ?pool ?budget ?seed algorithm instance lambda] — the raw,
    untimed dispatch the other entry points (and {!Supervisor}) build on.
    [budget] (default unlimited) is threaded into the algorithm's inner
    loops; on exhaustion {!Interrupt.Budget_exceeded} escapes with
    whatever partial state the algorithm salvaged. [seed] positions are
    guaranteed to appear in the result: GreedySC and Scan+ exploit them
    natively (pre-marking their coverage), the others union them in. *)
val run :
  ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> ?seed:int list -> algorithm ->
  Instance.t -> Coverage.lambda -> int list

(** [solve ?jobs ?budget algorithm instance lambda] — run [algorithm] with
    [jobs]-way parallelism (default 1 = sequential; raises
    [Invalid_argument] on [jobs < 1]). Parallel runs are guaranteed to
    return the same cover as sequential ones: only embarrassingly parallel
    phases (GreedySC state construction, Scan/Scan+ per-label fan-out) are
    distributed, with deterministic ordered merges. [Opt] and [Brute_force]
    ignore [jobs]. Pool startup happens outside the timed region. *)
val solve :
  ?jobs:int -> ?budget:Util.Budget.t -> algorithm -> Instance.t ->
  Coverage.lambda -> result

(** [compile ?jobs ?budget instance lambda] builds the shared {!Pair_index}
    once (with coverer sets, so every solver can run off it); with
    [jobs > 1] construction fans out over a temporary pool. Use with
    {!solve_compiled} to amortize the geometry across several algorithms
    on the same (instance, λ). On budget exhaustion the build raises
    {!Interrupt.Budget_exceeded} and no index escapes — there is no
    observable half-compiled state. *)
val compile :
  ?jobs:int -> ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> Pair_index.t

(** [solve_compiled algorithm index] runs [algorithm] off the pre-compiled
    index; [elapsed] excludes index construction. [Opt] and [Brute_force]
    fall back to the instance behind the index. The cover is identical to
    {!solve} on the same inputs. *)
val solve_compiled : ?budget:Util.Budget.t -> algorithm -> Pair_index.t -> result

(** [compile_window ?budget instance lambda] is the incremental mirror of
    {!compile}: a {!Window_index} fed the instance's posts in order, ready
    for {!solve_window} — and for further [push]/[expire_before] calls as
    the stream moves on, which is the point. [budget] is charged one step
    per post. *)
val compile_window :
  ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> Window_index.t

(** [solve_window ?budget ?solver algorithm window] solves the live window;
    the cover holds window positions (ascending), which equal slice
    positions of the same posts. For the GreedySC family this runs the
    windowed kernel directly (reusing [solver]'s scratch when given, the
    steady-state zero-allocation path); the remaining algorithms
    materialize the window via {!Window_index.to_instance} first — correct
    but O(size) per call. Covers are bit-identical to {!solve} on the
    materialized window. *)
val solve_window :
  ?budget:Util.Budget.t -> ?solver:Greedy_sc.window_solver -> algorithm ->
  Window_index.t -> result

val solve_stream :
  streaming_algorithm -> tau:float -> Instance.t -> Coverage.lambda -> streaming_result
