exception Too_large of string
exception Unsupported of string
exception Infeasible of { labels : int; bytes : float }

(* Internally posts are 1-based: j in 1..n is instance position j-1, and 0
   is the virtual sentinel carrying every label, placed lambda+1 before the
   first post so that it belongs to every cover and covers nothing else.
   An end-pattern is an int array over dense label indices whose entries
   are 1-based post indices (0 = sentinel). *)

type ctx = {
  instance : Instance.t;
  lambda : float;
  n : int;
  dlabels : Label.t array;  (* dense index -> label id *)
  dl : int;
  lp : int array array;  (* per dense label: 1-based posts, ascending *)
  time : int -> float;  (* 1-based; time 0 = sentinel *)
  f : int array;  (* f.(j) = max j' with time j' <= time j + lambda; f.(0)=0 *)
  has_label : int -> int -> bool;  (* 1-based post, dense label *)
  last_at_or_before : int -> int -> int;
      (* [last_at_or_before d j] = largest element of lp.(d) that is <= j,
         or 0 when none *)
}

let make_ctx instance lambda =
  let n = Instance.size instance in
  let dlabels = Array.of_list (Instance.label_universe instance) in
  let dl = Array.length dlabels in
  let lp =
    Array.map
      (fun a -> Array.map (fun pos -> pos + 1) (Instance.label_posts instance a))
      dlabels
  in
  let sentinel_time = if n = 0 then 0. else Instance.value instance 0 -. lambda -. 1. in
  let time j = if j = 0 then sentinel_time else Instance.value instance (j - 1) in
  let f = Array.make (n + 1) 0 in
  let posts = Instance.posts instance in
  let post_value (p : Post.t) = p.Post.value in
  for j = 1 to n do
    (* f.(j) = number of posts with value <= time j + lambda; posts are
       sorted, so that count is also the largest 1-based index among them. *)
    f.(j) <- Util.Array_util.upper_bound ~key:post_value posts (time j +. lambda)
  done;
  let has_label j d =
    if j = 0 then true else Label_set.mem dlabels.(d) (Instance.labels instance (j - 1))
  in
  let last_at_or_before d j =
    let arr = lp.(d) in
    let rec loop lo hi =
      (* last index with arr.(i) <= j *)
      if lo >= hi then lo - 1
      else begin
        let mid = (lo + hi) / 2 in
        if arr.(mid) <= j then loop (mid + 1) hi else loop lo mid
      end
    in
    let i = loop 0 (Array.length arr) in
    if i < 0 then 0 else arr.(i)
  in
  { instance; lambda; n; dlabels; dl; lp; time; f; has_label; last_at_or_before }

(* Candidate entries for label d at step j: relevant posts within lambda of
   time j, plus 0 (to be resolved from the previous pattern) when post j
   does not carry d. *)
let candidates ctx j d =
  let arr = ctx.lp.(d) in
  let tj = ctx.time j in
  let key i = ctx.time i in
  let first = Util.Array_util.lower_bound ~key arr (tj -. ctx.lambda) in
  let last = Util.Array_util.upper_bound ~key arr (tj +. ctx.lambda) - 1 in
  let nearby = ref [] in
  for i = last downto first do
    nearby := arr.(i) :: !nearby
  done;
  if ctx.has_label j d then !nearby else 0 :: !nearby

(* Validity conditions of a fully resolved j-end-pattern (paper §4.1):
   (i) no chosen post later than xi(d) carries label d;
   (ii) every relevant post of d at or before j lies within lambda of the
        latest chosen d-post. *)
let valid_pattern ctx j xi =
  let ok = ref true in
  for d = 0 to ctx.dl - 1 do
    if !ok then begin
      for e = 0 to ctx.dl - 1 do
        if !ok && xi.(e) > xi.(d) && ctx.has_label xi.(e) d then ok := false
      done;
      if !ok then begin
        let last = ctx.last_at_or_before d j in
        if last > 0 && ctx.time last > ctx.time xi.(d) +. ctx.lambda then ok := false
      end
    end
  done;
  !ok

(* Partial validity for a prefix of raw entries (0 = unresolved): prunes the
   cross-product enumeration early. *)
let valid_prefix ctx j xi upto =
  let ok = ref true in
  for d = 0 to upto do
    if !ok && xi.(d) > 0 then begin
      for e = 0 to upto do
        if !ok && xi.(e) > 0 then begin
          if xi.(e) > xi.(d) && ctx.has_label xi.(e) d then ok := false
        end
      done;
      if !ok then begin
        let last = ctx.last_at_or_before d j in
        if last > 0 && ctx.time last > ctx.time xi.(d) +. ctx.lambda then ok := false
      end
    end
  done;
  !ok

let raw_patterns ctx budget j max_states =
  let per_label = Array.init ctx.dl (fun d -> candidates ctx j d) in
  let acc = ref [] and count = ref 0 in
  let xi = Array.make ctx.dl 0 in
  let rec fill d =
    if d = ctx.dl then begin
      incr count;
      if !count > max_states then
        raise
          (Too_large
             (Printf.sprintf "Opt: more than %d candidate end-patterns at step %d"
                max_states j));
      acc := Array.copy xi :: !acc
    end
    else
      List.iter
        (fun i ->
          Interrupt.step budget;
          xi.(d) <- i;
          if valid_prefix ctx j xi d then fill (d + 1))
        per_label.(d)
  in
  if ctx.dl = 0 then []
  else begin
    fill 0;
    !acc
  end

(* Distinct new posts a resolved pattern commits beyond f(j-1). *)
let delta_posts ~f_prev xi =
  let news = ref [] in
  Array.iter
    (fun i -> if i > f_prev && not (List.mem i !news) then news := i :: !news)
    xi;
  !news

let consistent ~f_prev raw eta =
  let ok = ref true in
  Array.iteri
    (fun d i -> if i > 0 && i <= f_prev && eta.(d) <> i then ok := false)
    raw;
  !ok

let resolve raw eta =
  Array.mapi (fun d i -> if i = 0 then eta.(d) else i) raw

type layer = (int array, int) Hashtbl.t

(* Worst-case DP footprint: the pattern key space is bounded by
   ∏ (|LP(a)| + 1) ≥ 2^|L| (each label contributes its posts plus the
   sentinel), and each retained pattern costs one boxed key array of [dl]
   entries plus a hash-table entry. The product saturates well past any
   plausible budget, so overflow never under-reports. *)
let table_bytes_bound ctx =
  let space = ref 1. in
  Array.iter
    (fun lp ->
      if !space < 1e30 then
        space := !space *. float_of_int (Array.length lp + 1))
    ctx.lp;
  let bytes_per_pattern = float_of_int (((ctx.dl + 2) * 8) + 48) in
  !space *. bytes_per_pattern

let check_feasible ctx budget =
  match Util.Budget.remaining_alloc budget with
  | None -> ()
  | Some remaining ->
    let bytes = table_bytes_bound ctx in
    if bytes > remaining then raise (Infeasible { labels = ctx.dl; bytes })

let run ?(max_states = 500_000) ?(budget = Util.Budget.unlimited)
    ~keep_parents instance lambda =
  let lambda =
    match lambda with
    | Coverage.Fixed l -> l
    | Coverage.Per_post_label _ ->
      raise (Unsupported "Opt.solve requires a fixed lambda")
  in
  let ctx = make_ctx instance lambda in
  check_feasible ctx budget;
  if ctx.n = 0 then (0, [||], [||])
  else begin
    let initial : layer = Hashtbl.create 16 in
    Hashtbl.replace initial (Array.make ctx.dl 0) 1;
    let parents =
      if keep_parents then
        Array.init (ctx.n + 1) (fun _ -> Hashtbl.create 16)
      else [||]
    in
    let prev = ref initial in
    for j = 1 to ctx.n do
      let f_prev = ctx.f.(j - 1) in
      let current : layer = Hashtbl.create 64 in
      let raws = raw_patterns ctx budget j max_states in
      List.iter
        (fun raw ->
          Hashtbl.iter
            (fun eta card_eta ->
              Interrupt.step budget;
              if consistent ~f_prev raw eta then begin
                let xi = resolve raw eta in
                if valid_pattern ctx j xi then begin
                  let added = delta_posts ~f_prev xi in
                  let card = card_eta + List.length added in
                  let better =
                    match Hashtbl.find_opt current xi with
                    | Some existing -> card < existing
                    | None -> true
                  in
                  if better then begin
                    Hashtbl.replace current xi card;
                    if keep_parents then Hashtbl.replace parents.(j) xi (eta, added)
                  end
                end
              end)
            !prev)
        raws;
      if Hashtbl.length current > max_states then
        raise
          (Too_large
             (Printf.sprintf "Opt: more than %d end-patterns retained at step %d"
                max_states j));
      if Hashtbl.length current = 0 then
        invalid_arg "Opt: no feasible end-pattern (internal error)";
      prev := current
    done;
    let best_card = ref max_int and best_pattern = ref [||] in
    Hashtbl.iter
      (fun xi card ->
        if card < !best_card then begin
          best_card := card;
          best_pattern := xi
        end)
      !prev;
    ((!best_card - 1), !best_pattern, parents)
  end

let min_size ?max_states ?budget instance lambda =
  let size, _, _ = run ?max_states ?budget ~keep_parents:false instance lambda in
  size

let solve ?max_states ?budget instance lambda =
  let _, best_pattern, parents =
    run ?max_states ?budget ~keep_parents:true instance lambda
  in
  let n = Instance.size instance in
  if n = 0 then []
  else begin
    let chosen = ref [] in
    let xi = ref best_pattern in
    for j = n downto 1 do
      match Hashtbl.find_opt parents.(j) !xi with
      | None -> invalid_arg "Opt: broken parent chain (internal error)"
      | Some (eta, added) ->
        List.iter (fun i -> if i > 0 then chosen := (i - 1) :: !chosen) added;
        xi := eta
    done;
    List.sort_uniq Int.compare !chosen
  end
