type order =
  | Given
  | Most_frequent_first
  | Least_frequent_first

(* All interval geometry comes from a compiled Pair_index: the best pick
   for the pair at LP(a) index [i] is precompiled (per-post λ) or a binary
   search over the label's value block (fixed λ), and the post-pick skip is
   a binary search over the precompiled reaches — no linear scans in
   either λ mode. *)

(* The greedy chain of label [a] alone: pairs [(i, j)] meaning "at LP(a)
   index [i] the best pick is LP(a) index [j]", in ascending [i]. Each
   entry depends only on [(a, i)], never on what other labels covered, so
   chains can be computed per label in parallel and reused as a pick cache
   by Scan+'s sequential merge. *)
let chain ?(budget = Util.Budget.unlimited) index a =
  let base = Pair_index.label_base index a in
  let n = Pair_index.label_size index a in
  let rec loop i acc =
    if i >= n then List.rev acc
    else begin
      Interrupt.step budget;
      let j = Pair_index.best_coverer index a (base + i) - base in
      (* Skip every post covered by the pick. *)
      let next = Pair_index.first_above index a (Pair_index.reach index (base + j)) in
      loop (max next (i + 1)) ((i, j) :: acc)
    end
  in
  loop 0 []

(* Counters record materialized picks, not speculative chain entries: a
   chain computed as a Scan+ pick cache only counts when consulted. *)
let m_picks = Util.Telemetry.counter "scan.picks"
let m_marks = Util.Telemetry.counter "scan.marks"
let m_cache_hits = Util.Telemetry.counter "scan.cache_hits"
let m_cache_misses = Util.Telemetry.counter "scan.cache_misses"

let solve_label_indexed ?budget index a =
  let base = Pair_index.label_base index a in
  List.map
    (fun (_, j) ->
      Util.Telemetry.incr m_picks;
      Pair_index.pair_pos index (base + j))
    (chain ?budget index a)

let solve_label ?budget instance lambda a =
  solve_label_indexed ?budget (Pair_index.build ?budget ~coverers:false instance lambda) a

let sorted_unique positions =
  List.sort_uniq Int.compare positions

let label_chains pool budget index labels =
  Util.Pool.parallel_map pool ~chunk:1
    ~f:(fun a -> chain ?budget index a)
    (Array.of_list labels)

(* Re-raise a bare (No_partial) exhaustion with the picks accumulated so
   far — completed per-label covers are a sound prefix of the union. *)
let enrich_exhaustion picks = function
  | Interrupt.Budget_exceeded { reason; partial = Interrupt.No_partial } ->
    Interrupt.Budget_exceeded { reason; partial = Interrupt.Partial_cover (picks ()) }
  | e -> e

let solve_indexed ?pool ?budget index =
  let universe = Instance.label_universe (Pair_index.instance index) in
  let done_labels = ref [] in
  match
    match pool with
    | None ->
      List.iter
        (fun a -> done_labels := solve_label_indexed ?budget index a :: !done_labels)
        universe;
      List.concat !done_labels
    | Some pool ->
      (* Per-label fan-out; concatenating in universe order makes the merge
         independent of scheduling, hence bit-identical to sequential. *)
      let chains = label_chains pool budget index universe in
      List.concat
        (List.mapi
           (fun idx a ->
             let base = Pair_index.label_base index a in
             List.map
               (fun (_, j) ->
                 Util.Telemetry.incr m_picks;
                 Pair_index.pair_pos index (base + j))
               chains.(idx))
           universe)
  with
  | positions -> sorted_unique positions
  | exception e -> raise (enrich_exhaustion (fun () -> List.concat !done_labels) e)

let solve ?pool ?budget instance lambda =
  solve_indexed ?pool ?budget (Pair_index.build ?pool ?budget ~coverers:false instance lambda)

let label_order index order =
  let universe = Instance.label_universe (Pair_index.instance index) in
  let frequency a = Pair_index.label_size index a in
  match order with
  | Given -> universe
  | Most_frequent_first ->
    List.sort (fun a b -> Int.compare (frequency b) (frequency a)) universe
  | Least_frequent_first ->
    List.sort (fun a b -> Int.compare (frequency a) (frequency b)) universe

let solve_plus_indexed ?(order = Given) ?pool ?(budget = Util.Budget.unlimited)
    ?(seed = []) index =
  let covered = Bytes.make (Pair_index.total_pairs index) '\000' in
  let mark_covered_by picked =
    (* Marks are accumulated locally and added once per pick — one atomic
       op instead of one per range. *)
    let marked = ref 0 in
    Pair_index.iter_covered_ranges index picked (fun first last ->
        marked := !marked + (last - first + 1);
        Bytes.fill covered first (last - first + 1) '\001');
    Util.Telemetry.add m_marks !marked
  in
  (* Seed positions are committed up front: their coverage is pre-marked
     and they ride along in the result, so the answer covers the full pair
     universe whatever the seed. *)
  let seed = List.sort_uniq Int.compare seed in
  List.iter mark_covered_by seed;
  let labels = label_order index order in
  (* Cross-label coverage makes the label loop inherently sequential, but
     the best pick depends only on the pair — never on the covered flags —
     so the per-label pick chains are speculatively computed in parallel
     and consulted as a cache during the ordered merge. A cache hit
     returns exactly what [Pair_index.best_coverer] would, so the cover is
     bit-identical to the sequential run; misses (positions only reachable
     because another label covered part of the chain) fall back to the
     index lookup. *)
  let speculative =
    match pool with
    | None -> None
    | Some pool -> Some (label_chains pool (Some budget) index labels)
  in
  let picks = ref seed in
  let partial () = Interrupt.Partial_cover !picks in
  let process_label idx a =
    let base = Pair_index.label_base index a in
    let n = Pair_index.label_size index a in
    let cache =
      ref
        (match speculative with
        | None -> []
        | Some chains -> chains.(idx))
    in
    let pick_at i =
      let rec lookup () =
        match !cache with
        | (pos, _) :: rest when pos < i ->
          cache := rest;
          lookup ()
        | (pos, j) :: _ when pos = i -> Some j
        | _ -> None
      in
      match lookup () with
      | Some j ->
        Util.Telemetry.incr m_cache_hits;
        j
      | None ->
        Util.Telemetry.incr m_cache_misses;
        Pair_index.best_coverer index a (base + i) - base
    in
    let rec loop i =
      if i < n then begin
        Interrupt.step ~partial budget;
        if Bytes.get covered (base + i) <> '\000' then loop (i + 1)
        else begin
          let j = pick_at i in
          let picked = Pair_index.pair_pos index (base + j) in
          Util.Telemetry.incr m_picks;
          picks := picked :: !picks;
          mark_covered_by picked;
          (* [picked] covers pair (i, a), so the flag at i is now set. *)
          loop (i + 1)
        end
      end
    in
    loop 0
  in
  (match List.iteri process_label labels with
  | () -> ()
  | exception e -> raise (enrich_exhaustion (fun () -> !picks) e));
  sorted_unique !picks

let solve_plus ?order ?pool ?budget ?seed instance lambda =
  solve_plus_indexed ?order ?pool ?budget ?seed
    (Pair_index.build ?pool ?budget ~coverers:false instance lambda)
