type order =
  | Given
  | Most_frequent_first
  | Least_frequent_first

(* The coverage interval of post [p] for label [a] is
   [p.value - r, p.value + r] with r = Coverage.radius lambda p a. *)
let reach instance lambda a pos =
  let p = Instance.post instance pos in
  p.Post.value +. Coverage.radius lambda (Instance.post instance pos) a

(* Index into LP(a) of the best post to cover the point [x]: among posts
   whose interval contains [x], the one reaching furthest right. With a
   fixed lambda this is the last post with value <= x + lambda (the paper's
   choice); with a per-post lambda we scan the whole list, which is only
   used at small scale. Raises if no candidate exists — impossible when [x]
   is the value of a post in LP(a), which covers itself. *)
let best_pick instance lambda a lp x =
  match lambda with
  | Coverage.Fixed l ->
    let key pos = Instance.value instance pos in
    let j = Util.Array_util.upper_bound ~key lp (x +. l) - 1 in
    if j < 0 || Instance.value instance lp.(j) < x -. l then
      invalid_arg "Scan.best_pick: no candidate interval contains x";
    j
  | Coverage.Per_post_label _ ->
    let best = ref (-1) and best_reach = ref neg_infinity in
    Array.iteri
      (fun j pos ->
        let p = Instance.post instance pos in
        let r = Coverage.radius lambda p a in
        if Float.abs (p.Post.value -. x) <= r then begin
          let right = p.Post.value +. r in
          if right > !best_reach then begin
            best := j;
            best_reach := right
          end
        end)
      lp;
    if !best < 0 then invalid_arg "Scan.best_pick: no candidate interval contains x";
    !best

(* The greedy chain of label [a] alone: pairs [(i, j)] meaning "at LP(a)
   index [i] the best pick is LP(a) index [j]", in ascending [i]. Each
   entry depends only on [(a, i)], never on what other labels covered, so
   chains can be computed per label in parallel and reused as a pick cache
   by Scan+'s sequential merge. *)
let chain instance lambda a =
  let lp = Instance.label_posts instance a in
  let n = Array.length lp in
  let rec loop i acc =
    if i >= n then List.rev acc
    else begin
      let x = Instance.value instance lp.(i) in
      let j = best_pick instance lambda a lp x in
      let right = reach instance lambda a lp.(j) in
      (* Skip every post covered by the pick. *)
      let key pos = Instance.value instance pos in
      let next = Util.Array_util.upper_bound ~key lp right in
      loop (max next (i + 1)) ((i, j) :: acc)
    end
  in
  loop 0 []

let solve_label instance lambda a =
  let lp = Instance.label_posts instance a in
  List.map (fun (_, j) -> lp.(j)) (chain instance lambda a)

let sorted_unique positions =
  List.sort_uniq Int.compare positions

let label_chains pool instance lambda labels =
  Util.Pool.parallel_map pool ~chunk:1
    ~f:(fun a -> chain instance lambda a)
    (Array.of_list labels)

let solve ?pool instance lambda =
  let universe = Instance.label_universe instance in
  (match pool with
  | None -> List.concat_map (fun a -> solve_label instance lambda a) universe
  | Some pool ->
    (* Per-label fan-out; concatenating in universe order makes the merge
       independent of scheduling, hence bit-identical to sequential. *)
    let chains = label_chains pool instance lambda universe in
    List.concat
      (List.mapi
         (fun idx a ->
           let lp = Instance.label_posts instance a in
           List.map (fun (_, j) -> lp.(j)) chains.(idx))
         universe))
  |> sorted_unique

let label_order instance order =
  let universe = Instance.label_universe instance in
  let frequency a = Array.length (Instance.label_posts instance a) in
  match order with
  | Given -> universe
  | Most_frequent_first ->
    List.sort (fun a b -> Int.compare (frequency b) (frequency a)) universe
  | Least_frequent_first ->
    List.sort (fun a b -> Int.compare (frequency a) (frequency b)) universe

let solve_plus ?(order = Given) ?pool instance lambda =
  let max_label =
    List.fold_left (fun acc a -> max acc a) (-1) (Instance.label_universe instance)
  in
  let covered =
    Array.init (max_label + 1) (fun a ->
        Bytes.make (Array.length (Instance.label_posts instance a)) '\000')
  in
  let mark_covered_by picked =
    let p = Instance.post instance picked in
    Label_set.iter
      (fun b ->
        let r = Coverage.radius lambda p b in
        match
          Instance.posts_in_range instance b ~lo:(p.Post.value -. r) ~hi:(p.Post.value +. r)
        with
        | None -> ()
        | Some (first, last) ->
          Bytes.fill covered.(b) first (last - first + 1) '\001')
      p.Post.labels
  in
  let labels = label_order instance order in
  (* Cross-label coverage makes the label loop inherently sequential, but
     [best_pick] depends only on the pair (label, index) — never on the
     covered flags — so the per-label pick chains are speculatively computed
     in parallel and consulted as a cache during the ordered merge. A cache
     hit returns exactly what [best_pick] would, so the cover is
     bit-identical to the sequential run; misses (positions only reachable
     because another label covered part of the chain) fall back to
     [best_pick]. *)
  let speculative =
    match pool with
    | None -> None
    | Some pool -> Some (label_chains pool instance lambda labels)
  in
  let picks = ref [] in
  let process_label idx a =
    let lp = Instance.label_posts instance a in
    let n = Array.length lp in
    let cache =
      ref
        (match speculative with
        | None -> []
        | Some chains -> chains.(idx))
    in
    let pick_at i x =
      let rec lookup () =
        match !cache with
        | (pos, _) :: rest when pos < i ->
          cache := rest;
          lookup ()
        | (pos, j) :: _ when pos = i -> Some j
        | _ -> None
      in
      match lookup () with
      | Some j -> j
      | None -> best_pick instance lambda a lp x
    in
    let rec loop i =
      if i < n then begin
        if Bytes.get covered.(a) i <> '\000' then loop (i + 1)
        else begin
          let x = Instance.value instance lp.(i) in
          let j = pick_at i x in
          picks := lp.(j) :: !picks;
          mark_covered_by lp.(j);
          (* lp.(j) covers pair (i, a), so the flag at i is now set. *)
          loop (i + 1)
        end
      end
    in
    loop 0
  in
  List.iteri process_label labels;
  sorted_unique !picks
