type order =
  | Given
  | Most_frequent_first
  | Least_frequent_first

(* All interval geometry comes from a compiled Pair_index: the best pick
   for the pair at LP(a) index [i] is precompiled (per-post λ) or a binary
   search over the label's value block (fixed λ), and the post-pick skip is
   a binary search over the precompiled reaches — no linear scans in
   either λ mode. *)

(* The greedy chain of label [a] alone: pairs [(i, j)] meaning "at LP(a)
   index [i] the best pick is LP(a) index [j]", in ascending [i]. Each
   entry depends only on [(a, i)], never on what other labels covered, so
   chains can be computed per label in parallel and reused as a pick cache
   by Scan+'s sequential merge. *)
let chain ?(budget = Util.Budget.unlimited) index a =
  let base = Pair_index.label_base index a in
  let n = Pair_index.label_size index a in
  let rec loop i acc =
    if i >= n then List.rev acc
    else begin
      Interrupt.step budget;
      let j = Pair_index.best_coverer index a (base + i) - base in
      (* Skip every post covered by the pick. *)
      let next = Pair_index.first_above index a (Pair_index.reach index (base + j)) in
      loop (max next (i + 1)) ((i, j) :: acc)
    end
  in
  loop 0 []

(* Counters record materialized picks, not speculative chain entries: a
   chain computed as a Scan+ pick cache only counts when consulted. *)
let m_picks = Util.Telemetry.counter "scan.picks"
let m_marks = Util.Telemetry.counter "scan.marks"
let m_cache_hits = Util.Telemetry.counter "scan.cache_hits"
let m_cache_misses = Util.Telemetry.counter "scan.cache_misses"

let solve_label_indexed ?budget index a =
  let base = Pair_index.label_base index a in
  List.map
    (fun (_, j) ->
      Util.Telemetry.incr m_picks;
      Pair_index.pair_pos index (base + j))
    (chain ?budget index a)

let solve_label ?budget instance lambda a =
  solve_label_indexed ?budget (Pair_index.build ?budget ~coverers:false instance lambda) a

(* Reusable pick buffer: picks accumulate into a growable int array and
   are canonicalized once at the end (one copy + in-place sort) — no
   per-pick list consing and no [List.sort_uniq] merge intermediates. *)
type buf = { mutable data : int array; mutable len : int }

let buf_create () = { data = Array.make 64 0; len = 0 }

let buf_push b x =
  let cap = Array.length b.data in
  if b.len = cap then begin
    let data = Array.make (2 * cap) 0 in
    Array.blit b.data 0 data 0 cap;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_result b = Util.Array_util.sorted_ints_of_prefix b.data b.len

(* The sequential per-label pass, writing picks straight into [buf] —
   same walk as [chain] (and the same one-step-per-link budget charge)
   without materializing the (i, j) list. Pick telemetry is accumulated
   locally and added once per label. *)
let solve_label_into ?(budget = Util.Budget.unlimited) index a buf =
  let base = Pair_index.label_base index a in
  let n = Pair_index.label_size index a in
  let picked = ref 0 in
  let rec loop i =
    if i < n then begin
      Interrupt.step budget;
      let j = Pair_index.best_coverer index a (base + i) - base in
      buf_push buf (Pair_index.pair_pos index (base + j));
      incr picked;
      let next = Pair_index.first_above index a (Pair_index.reach index (base + j)) in
      loop (max next (i + 1))
    end
  in
  loop 0;
  Util.Telemetry.add m_picks !picked

let label_chains pool budget index labels =
  Util.Pool.parallel_map pool ~chunk:1
    ~f:(fun a -> chain ?budget index a)
    (Array.of_list labels)

(* Re-raise a bare (No_partial) exhaustion with the picks accumulated so
   far — completed per-label covers are a sound prefix of the union. *)
let enrich_exhaustion picks = function
  | Interrupt.Budget_exceeded { reason; partial = Interrupt.No_partial } ->
    Interrupt.Budget_exceeded { reason; partial = Interrupt.Partial_cover (picks ()) }
  | e -> e

let solve_indexed ?pool ?budget index =
  let universe = Instance.label_universe (Pair_index.instance index) in
  let buf = buf_create () in
  (* Picks of fully completed labels — the sound salvage prefix on
     exhaustion (an in-progress label's partial picks are dropped, as the
     pre-buffer list implementation did). *)
  let committed = ref 0 in
  match
    match pool with
    | None ->
      List.iter
        (fun a ->
          solve_label_into ?budget index a buf;
          committed := buf.len)
        universe
    | Some pool ->
      (* Per-label fan-out; merging in universe order makes the result
         independent of scheduling, hence bit-identical to sequential. *)
      let chains = label_chains pool budget index universe in
      List.iteri
        (fun idx a ->
          let base = Pair_index.label_base index a in
          let picked = ref 0 in
          List.iter
            (fun (_, j) ->
              buf_push buf (Pair_index.pair_pos index (base + j));
              incr picked)
            chains.(idx);
          Util.Telemetry.add m_picks !picked;
          committed := buf.len)
        universe
  with
  | () -> buf_result buf
  | exception e ->
    raise
      (enrich_exhaustion
         (fun () -> Util.Array_util.sorted_ints_of_prefix buf.data !committed)
         e)

let solve ?pool ?budget instance lambda =
  solve_indexed ?pool ?budget (Pair_index.build ?pool ?budget ~coverers:false instance lambda)

let label_order index order =
  let universe = Instance.label_universe (Pair_index.instance index) in
  let frequency a = Pair_index.label_size index a in
  match order with
  | Given -> universe
  | Most_frequent_first ->
    List.sort (fun a b -> Int.compare (frequency b) (frequency a)) universe
  | Least_frequent_first ->
    List.sort (fun a b -> Int.compare (frequency a) (frequency b)) universe

let solve_plus_indexed ?(order = Given) ?pool ?(budget = Util.Budget.unlimited)
    ?(seed = []) index =
  let covered = Bytes.make (Pair_index.total_pairs index) '\000' in
  let mark_covered_by picked =
    (* The fused range-fill kernel; marks come back as one count, added
       once per pick — one atomic op instead of one per range. *)
    Util.Telemetry.add m_marks (Pair_index.fill_covered index ~covered picked)
  in
  (* Seed positions are committed up front: their coverage is pre-marked
     and they ride along in the result, so the answer covers the full pair
     universe whatever the seed. *)
  let seed = List.sort_uniq Int.compare seed in
  List.iter mark_covered_by seed;
  let labels = label_order index order in
  (* Cross-label coverage makes the label loop inherently sequential, but
     the best pick depends only on the pair — never on the covered flags —
     so the per-label pick chains are speculatively computed in parallel
     and consulted as a cache during the ordered merge. A cache hit
     returns exactly what [Pair_index.best_coverer] would, so the cover is
     bit-identical to the sequential run; misses (positions only reachable
     because another label covered part of the chain) fall back to the
     index lookup. *)
  let speculative =
    match pool with
    | None -> None
    | Some pool -> Some (label_chains pool (Some budget) index labels)
  in
  let picks = buf_create () in
  List.iter (fun k -> buf_push picks k) seed;
  let partial () = Interrupt.Partial_cover (buf_result picks) in
  let process_label idx a =
    let base = Pair_index.label_base index a in
    let n = Pair_index.label_size index a in
    let cache =
      ref
        (match speculative with
        | None -> []
        | Some chains -> chains.(idx))
    in
    let pick_at i =
      let rec lookup () =
        match !cache with
        | (pos, _) :: rest when pos < i ->
          cache := rest;
          lookup ()
        | (pos, j) :: _ when pos = i -> Some j
        | _ -> None
      in
      match lookup () with
      | Some j ->
        Util.Telemetry.incr m_cache_hits;
        j
      | None ->
        Util.Telemetry.incr m_cache_misses;
        Pair_index.best_coverer index a (base + i) - base
    in
    let rec loop i =
      if i < n then begin
        Interrupt.step ~partial budget;
        if Bytes.get covered (base + i) <> '\000' then loop (i + 1)
        else begin
          let j = pick_at i in
          let picked = Pair_index.pair_pos index (base + j) in
          Util.Telemetry.incr m_picks;
          buf_push picks picked;
          mark_covered_by picked;
          (* [picked] covers pair (i, a), so the flag at i is now set. *)
          loop (i + 1)
        end
      end
    in
    loop 0
  in
  (match List.iteri process_label labels with
  | () -> ()
  | exception e -> raise (enrich_exhaustion (fun () -> buf_result picks) e));
  buf_result picks

let solve_plus ?order ?pool ?budget ?seed instance lambda =
  solve_plus_indexed ?order ?pool ?budget ?seed
    (Pair_index.build ?pool ?budget ~coverers:false instance lambda)
