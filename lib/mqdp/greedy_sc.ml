type selection = [ `Linear_scan | `Lazy_heap ]

(* Pairs are addressed as (label a, index ia into LP(a)). For a fixed
   lambda the coverers of a pair form a contiguous range of LP(a) found by
   binary search; for a per-post lambda the radius depends on the covering
   post, so coverer lists are materialized up front. *)
type state = {
  instance : Instance.t;
  lambda : Coverage.lambda;
  covered : Bytes.t array;  (* per label, per LP index *)
  gain : int array;  (* per position: # uncovered pairs this post covers *)
  coverer_lists : int list array array option;  (* per label, per LP index *)
}

let iter_pairs_covered_by state k f =
  let p = Instance.post state.instance k in
  Label_set.iter
    (fun a ->
      let r = Coverage.radius state.lambda p a in
      match
        Instance.posts_in_range state.instance a ~lo:(p.Post.value -. r)
          ~hi:(p.Post.value +. r)
      with
      | None -> ()
      | Some (first, last) ->
        for ia = first to last do
          f a ia
        done)
    p.Post.labels

let iter_coverers state a ia f =
  match state.coverer_lists with
  | Some lists -> List.iter f lists.(a).(ia)
  | None ->
    let l =
      match state.lambda with
      | Coverage.Fixed l -> l
      | Coverage.Per_post_label _ -> assert false
    in
    let lp = Instance.label_posts state.instance a in
    let x = Instance.value state.instance lp.(ia) in
    (match Instance.posts_in_range state.instance a ~lo:(x -. l) ~hi:(x +. l) with
    | None -> ()
    | Some (first, last) ->
      for j = first to last do
        f lp.(j)
      done)

(* Parallelization note: each label's output row [lists.(a)] is written
   only while processing label [a], and each gain cell [gain.(k)] is
   written only while processing post [k]. Fanning the outer loops out over
   a pool therefore needs no locks, and the per-row (resp. per-cell)
   iteration order is unchanged, so the result is bit-identical to the
   sequential run for any pool size. *)
let build_coverer_lists ?pool instance lambda =
  let max_label =
    List.fold_left (fun acc a -> max acc a) (-1) (Instance.label_universe instance)
  in
  let lists =
    Array.init (max_label + 1) (fun a ->
        Array.make (Array.length (Instance.label_posts instance a)) [])
  in
  let process_label a =
    let lp = Instance.label_posts instance a in
    Array.iter
      (fun k ->
        let p = Instance.post instance k in
        let r = Coverage.radius lambda p a in
        match
          Instance.posts_in_range instance a ~lo:(p.Post.value -. r)
            ~hi:(p.Post.value +. r)
        with
        | None -> ()
        | Some (first, last) ->
          for ia = first to last do
            lists.(a).(ia) <- k :: lists.(a).(ia)
          done)
      lp
  in
  (match pool with
  | None -> List.iter process_label (Instance.label_universe instance)
  | Some pool ->
    let universe = Array.of_list (Instance.label_universe instance) in
    Util.Pool.parallel_for pool ~chunk:1 (Array.length universe) ~f:(fun i ->
        process_label universe.(i)));
  lists

let create_state ?pool instance lambda =
  let max_label =
    List.fold_left (fun acc a -> max acc a) (-1) (Instance.label_universe instance)
  in
  let covered =
    Array.init (max_label + 1) (fun a ->
        Bytes.make (Array.length (Instance.label_posts instance a)) '\000')
  in
  let coverer_lists =
    match lambda with
    | Coverage.Fixed _ -> None
    | Coverage.Per_post_label _ -> Some (build_coverer_lists ?pool instance lambda)
  in
  let state =
    { instance; lambda; covered; gain = Array.make (Instance.size instance) 0;
      coverer_lists }
  in
  let init_gain k =
    iter_pairs_covered_by state k (fun _ _ -> state.gain.(k) <- state.gain.(k) + 1)
  in
  (match pool with
  | None ->
    for k = 0 to Instance.size instance - 1 do
      init_gain k
    done
  | Some pool ->
    Util.Pool.parallel_iter_chunks pool (Instance.size instance) ~f:(fun lo hi ->
        for k = lo to hi - 1 do
          init_gain k
        done));
  state

let select state k =
  iter_pairs_covered_by state k (fun a ia ->
      if Bytes.get state.covered.(a) ia = '\000' then begin
        Bytes.set state.covered.(a) ia '\001';
        iter_coverers state a ia (fun k' -> state.gain.(k') <- state.gain.(k') - 1)
      end)

let argmax_gain state =
  let best = ref (-1) and best_gain = ref 0 in
  Array.iteri
    (fun k g ->
      if g > !best_gain then begin
        best := k;
        best_gain := g
      end)
    state.gain;
  if !best_gain = 0 then None else Some !best

let solve_linear state =
  let rec loop acc =
    match argmax_gain state with
    | None -> acc
    | Some k ->
      select state k;
      loop (k :: acc)
  in
  loop []

let solve_heap state =
  (* Max-heap of (gain snapshot, position); stale entries are refreshed. *)
  let cmp (ga, _) (gb, _) = Int.compare gb ga in
  let heap = Util.Heap.create cmp in
  Array.iteri (fun k g -> if g > 0 then Util.Heap.push heap (g, k)) state.gain;
  let rec loop acc =
    match Util.Heap.pop heap with
    | None -> acc
    | Some (g, k) ->
      if g <> state.gain.(k) then begin
        if state.gain.(k) > 0 then Util.Heap.push heap (state.gain.(k), k);
        loop acc
      end
      else if g = 0 then acc
      else begin
        select state k;
        loop (k :: acc)
      end
  in
  loop []

let solve ?(selection = `Linear_scan) ?pool instance lambda =
  let state = create_state ?pool instance lambda in
  let cover =
    match selection with
    | `Linear_scan -> solve_linear state
    | `Lazy_heap -> solve_heap state
  in
  List.sort_uniq Int.compare cover
