type selection = [ `Linear_scan | `Lazy_heap | `Bucket_queue ]

(* All pair geometry lives behind one of two backends: a compiled
   (immutable) Pair_index, or a live Window_index over the current sliding
   window. Either way a post's gain is the number of still-uncovered pairs
   in its covered ranges, and selecting a post runs the backend's fused
   apply_pick kernel — flip flat covered state in ascending id order,
   decrement each newly-covered pair's coverers' gains, record the touched
   positions once each. The selection loops are backend-agnostic.

   The selection loop is allocation-free for every variant's own state:
   picks land in a preallocated buffer, the salvage closure is bound once
   per solve, and the bucket queue (the default selector) pops bare ints.
   All three selectors produce bit-identical covers: each one resolves a
   gain tie toward the smallest position, which is what the linear
   re-scan's first-strict-maximum does. *)
type geometry =
  | Compiled of {
      index : Pair_index.t;
      covered : Bytes.t;  (* one byte per pair id *)
    }
  | Windowed of {
      window : Window_index.t;
      wsolver : Window_index.solver;  (* began before the state was built *)
    }

type state = {
  geometry : geometry;
  n : int;  (* candidate count: instance size or window size *)
  gain : int array;  (* per position: # uncovered pairs this post covers *)
  dirty : Bytes.t;  (* apply_pick dedup scratch; all-zero between picks *)
  touched : int array;  (* positions whose gain the current pick changed *)
  picks : int array;  (* committed picks in pick order; entries distinct *)
  mutable n_picks : int;
  queue : Util.Bucket_queue.t;  (* mirrors { k | gain k > 0 }, prio = gain *)
}

let state_of_index ?pool ?(budget = Util.Budget.unlimited) index =
  let n = Instance.size (Pair_index.instance index) in
  let gain = Array.make n 0 in
  let init k =
    Interrupt.step budget;
    gain.(k) <- Pair_index.covered_count index k
  in
  (match pool with
  | None ->
    for k = 0 to n - 1 do
      init k
    done
  | Some pool ->
    Util.Pool.parallel_iter_chunks pool ~stop:(Interrupt.stop budget) n
      ~f:(fun lo hi ->
        for k = lo to hi - 1 do
          init k
        done));
  Interrupt.check budget;
  (* Gains only decrease from here on, so the queue built over the initial
     gains is the monotone workload Bucket_queue is tuned for; its size
     never exceeds the initial candidate count by construction. *)
  let max_gain = Array.fold_left max 0 gain in
  let queue = Util.Bucket_queue.create ~capacity:n ~max_prio:max_gain in
  for k = 0 to n - 1 do
    if gain.(k) > 0 then Util.Bucket_queue.push queue ~key:k ~prio:gain.(k)
  done;
  {
    geometry =
      Compiled { index; covered = Bytes.make (Pair_index.total_pairs index) '\000' };
    n;
    gain;
    dirty = Bytes.make n '\000';
    touched = Array.make n 0;
    picks = Array.make n 0;
    n_picks = 0;
    queue;
  }

let create_state ?pool ?budget instance lambda =
  state_of_index ?pool ?budget
    (Pair_index.build ?pool ?budget ~coverers:true instance lambda)

(* Reusable scratch for solving sliding windows: the off-heap geometry
   snapshot plus the OCaml-side selection buffers, all grown by doubling
   and kept across solves, so the steady state (window size and max gain
   stable) allocates only the per-solve state record. *)
type window_solver = {
  wsolver : Window_index.solver;
  mutable wgain : int array;
  mutable wdirty : Bytes.t;
  mutable wtouched : int array;
  mutable wpicks : int array;
  mutable wqueue : Util.Bucket_queue.t;
  mutable wmax_prio : int;  (* the queue's construction bound *)
}

let window_solver () =
  {
    wsolver = Window_index.solver ();
    wgain = [||];
    wdirty = Bytes.empty;
    wtouched = [||];
    wpicks = [||];
    wqueue = Util.Bucket_queue.create ~capacity:0 ~max_prio:0;
    wmax_prio = 0;
  }

let state_of_window ?(marked = false) ?solver ?(budget = Util.Budget.unlimited)
    window =
  let sv =
    match solver with
    | Some sv -> sv
    | None -> window_solver ()
  in
  let n = Window_index.size window in
  (* One begin_solve touches every live incidence once — charge like a
     linear-scan round rather than per post. *)
  Interrupt.step ~cost:(max 1 n) budget;
  if Array.length sv.wgain < n then begin
    let c = ref (max 16 (Array.length sv.wgain)) in
    while !c < n do
      c := !c * 2
    done;
    sv.wgain <- Array.make !c 0;
    sv.wdirty <- Bytes.make !c '\000';
    sv.wtouched <- Array.make !c 0;
    sv.wpicks <- Array.make !c 0
  end;
  Window_index.begin_solve window sv.wsolver ~marked ~gain:sv.wgain;
  let max_gain = ref 0 in
  for k = 0 to n - 1 do
    if sv.wgain.(k) > !max_gain then max_gain := sv.wgain.(k)
  done;
  if Util.Bucket_queue.capacity sv.wqueue < n || sv.wmax_prio < !max_gain then begin
    let mp = ref (max 16 sv.wmax_prio) in
    while !mp < !max_gain do
      mp := !mp * 2
    done;
    sv.wmax_prio <- !mp;
    sv.wqueue <-
      Util.Bucket_queue.create ~capacity:(Array.length sv.wgain) ~max_prio:!mp
  end
  else Util.Bucket_queue.clear sv.wqueue;
  for k = 0 to n - 1 do
    if sv.wgain.(k) > 0 then Util.Bucket_queue.push sv.wqueue ~key:k ~prio:sv.wgain.(k)
  done;
  Interrupt.check budget;
  {
    geometry = Windowed { window; wsolver = sv.wsolver };
    n;
    gain = sv.wgain;
    dirty = sv.wdirty;
    touched = sv.wtouched;
    picks = sv.wpicks;
    n_picks = 0;
    queue = sv.wqueue;
  }

(* Registry handles are module-level: interning is a hash lookup under a
   mutex, far too costly for once-per-pick bumping. *)
let m_picks = Util.Telemetry.counter "greedy.picks"
let m_marks = Util.Telemetry.counter "greedy.marks"
let m_heap_ops = Util.Telemetry.counter "greedy.heap_ops"
let m_queue_ops = Util.Telemetry.counter "greedy.queue_ops"
let m_heap_peak = Util.Telemetry.gauge "greedy.heap_peak"
let m_queue_peak = Util.Telemetry.gauge "greedy.queue_peak"

(* Select post [k]: mark its pairs, decrement coverer gains, and keep the
   bucket queue mirroring the positive gains. Returns nothing the solvers
   need beyond the side effects — the per-pick telemetry is accumulated
   locally here and added once. *)
let select state k =
  let touched =
    match state.geometry with
    | Compiled { index; covered } ->
      Pair_index.apply_pick index ~covered ~gain:state.gain ~dirty:state.dirty
        ~touched:state.touched k
    | Windowed { window; wsolver } ->
      Window_index.apply_pick window wsolver ~gain:state.gain ~dirty:state.dirty
        ~touched:state.touched k
  in
  for i = 0 to touched - 1 do
    let k' = state.touched.(i) in
    (* A position absent from the queue already had gain 0; gains never
       increase, so [update] can only move down or remove — never insert. *)
    Util.Bucket_queue.update state.queue ~key:k' ~prio:state.gain.(k')
  done;
  Util.Telemetry.add m_queue_ops touched

(* A pick's gain is by construction the number of pairs [select] is about
   to newly cover, so the marks counter costs one add per pick instead of
   one increment per pair in the hot loop. *)
let commit_pick state k =
  Util.Telemetry.incr m_picks;
  Util.Telemetry.add m_marks state.gain.(k);
  state.picks.(state.n_picks) <- k;
  state.n_picks <- state.n_picks + 1

(* Picks are distinct by construction (a committed pick's gain drops to 0
   and gains never rise), so this is one copy + in-place sort. *)
let picks_so_far state = Util.Array_util.sorted_ints_of_prefix state.picks state.n_picks

(* Stepping interface for the streaming greedy: pop the canonical best
   candidate (max gain, smallest position; -1 when no positive gain is
   left) without committing, then [commit] it once the caller has recorded
   the emission. *)
let pop_best state =
  Util.Telemetry.incr m_queue_ops;
  Util.Bucket_queue.pop_max state.queue

let commit state k =
  commit_pick state k;
  select state k

(* First strict maximum = smallest position among the tied maxima: the
   canonical tie rule the other two selectors reproduce. *)
let argmax_gain state =
  let gain = state.gain in
  let best = ref (-1) and best_gain = ref 0 in
  for k = 0 to state.n - 1 do
    let g = Array.unsafe_get gain k in
    if g > !best_gain then begin
      best := k;
      best_gain := g
    end
  done;
  !best

let solve_linear budget state some_partial =
  let n = state.n in
  let rec loop () =
    (* Each round re-scans every gain, so it costs n steps. The salvage is
       the picks so far — a sound prefix of a cover. *)
    Interrupt.step ~cost:(max 1 n) ?partial:some_partial budget;
    let k = argmax_gain state in
    if k >= 0 then begin
      commit_pick state k;
      select state k;
      loop ()
    end
  in
  loop ()

let solve_heap budget state some_partial =
  (* Max-heap of (gain snapshot, position); stale entries are refreshed.
     The key tie-break makes the pick sequence identical to the linear
     re-scan: every live position always has an entry at >= its true
     gain, stale over-statements pop first and refresh, so the first
     fresh top is the global (max gain, min position). *)
  let cmp (ga, ka) (gb, kb) =
    let c = Int.compare gb ga in
    if c <> 0 then c else Int.compare ka kb
  in
  let heap = Util.Heap.create cmp in
  let peak = ref 0 in
  let push g k =
    Util.Telemetry.incr m_heap_ops;
    Util.Heap.push heap (g, k);
    if Util.Heap.length heap > !peak then peak := Util.Heap.length heap
  in
  for k = 0 to state.n - 1 do
    if state.gain.(k) > 0 then push state.gain.(k) k
  done;
  let rec loop () =
    Interrupt.step ?partial:some_partial budget;
    Util.Telemetry.incr m_heap_ops;
    match Util.Heap.pop heap with
    | None -> ()
    | Some (g, k) ->
      if g <> state.gain.(k) then begin
        (* Stale entry: refresh lazily. Pop-then-repush is net non-growing,
           so the heap peaks at its initial candidate count. *)
        if state.gain.(k) > 0 then push state.gain.(k) k;
        loop ()
      end
      else if g = 0 then ()
      else begin
        commit_pick state k;
        select state k;
        loop ()
      end
  in
  loop ();
  Util.Telemetry.set m_heap_peak !peak

let solve_bucket budget state some_partial =
  let q = state.queue in
  (* The queue never grows after construction (gains only decrease), so
     its peak over the whole solve is its size right here. *)
  Util.Telemetry.set m_queue_peak (Util.Bucket_queue.length q);
  let rec loop () =
    Interrupt.step ?partial:some_partial budget;
    Util.Telemetry.incr m_queue_ops;
    let k = Util.Bucket_queue.pop_max q in
    if k >= 0 then begin
      commit_pick state k;
      select state k;
      loop ()
    end
  in
  loop ()

let run ?(budget = Util.Budget.unlimited) ?(seed = []) selection state =
  (* Seeding: mark everything the seed posts cover before the greedy loop
     and carry them in the result — the final set is then a cover of the
     full pair universe whatever the seed was. A seed post's own gain drops
     to 0, so the loop never re-picks it. Seeds bypass [commit_pick]: they
     are not greedy picks, so they don't count in the pick telemetry. *)
  let seed = List.sort_uniq Int.compare seed in
  List.iter
    (fun k ->
      state.picks.(state.n_picks) <- k;
      state.n_picks <- state.n_picks + 1;
      select state k)
    seed;
  let some_partial = Some (fun () -> Interrupt.Partial_cover (picks_so_far state)) in
  (match selection with
  | `Linear_scan -> solve_linear budget state some_partial
  | `Lazy_heap -> solve_heap budget state some_partial
  | `Bucket_queue -> solve_bucket budget state some_partial);
  picks_so_far state

let solve_indexed ?(selection = `Bucket_queue) ?pool ?budget ?seed index =
  run ?budget ?seed selection (state_of_index ?pool ?budget index)

let solve ?(selection = `Bucket_queue) ?pool ?budget ?seed instance lambda =
  run ?budget ?seed selection (create_state ?pool ?budget instance lambda)

let solve_window ?(selection = `Bucket_queue) ?marked ?solver ?budget ?seed window =
  run ?budget ?seed selection (state_of_window ?marked ?solver ?budget window)
