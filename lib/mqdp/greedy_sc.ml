type selection = [ `Linear_scan | `Lazy_heap ]

(* All pair geometry lives in the compiled Pair_index: a post's gain is the
   number of still-uncovered pairs in its covered ranges, and selecting a
   post walks those ranges, flipping flat covered bytes and decrementing
   the gains of each newly-covered pair's coverers. The selection loop
   allocates nothing per round beyond two closures. *)
type state = {
  index : Pair_index.t;
  covered : Bytes.t;  (* one byte per pair id *)
  gain : int array;  (* per position: # uncovered pairs this post covers *)
}

let state_of_index ?pool index =
  let n = Instance.size (Pair_index.instance index) in
  let gain = Array.make n 0 in
  let init k = gain.(k) <- Pair_index.covered_count index k in
  (match pool with
  | None ->
    for k = 0 to n - 1 do
      init k
    done
  | Some pool ->
    Util.Pool.parallel_iter_chunks pool n ~f:(fun lo hi ->
        for k = lo to hi - 1 do
          init k
        done));
  { index; covered = Bytes.make (Pair_index.total_pairs index) '\000'; gain }

let create_state ?pool instance lambda =
  state_of_index ?pool (Pair_index.build ?pool ~coverers:true instance lambda)

let select state k =
  let decrement k' = state.gain.(k') <- state.gain.(k') - 1 in
  Pair_index.iter_covered_ranges state.index k (fun first last ->
      for id = first to last do
        if Bytes.get state.covered id = '\000' then begin
          Bytes.set state.covered id '\001';
          Pair_index.iter_coverers state.index id decrement
        end
      done)

let argmax_gain state =
  let best = ref (-1) and best_gain = ref 0 in
  Array.iteri
    (fun k g ->
      if g > !best_gain then begin
        best := k;
        best_gain := g
      end)
    state.gain;
  if !best_gain = 0 then None else Some !best

let solve_linear state =
  let rec loop acc =
    match argmax_gain state with
    | None -> acc
    | Some k ->
      select state k;
      loop (k :: acc)
  in
  loop []

let solve_heap state =
  (* Max-heap of (gain snapshot, position); stale entries are refreshed. *)
  let cmp (ga, _) (gb, _) = Int.compare gb ga in
  let heap = Util.Heap.create cmp in
  Array.iteri (fun k g -> if g > 0 then Util.Heap.push heap (g, k)) state.gain;
  let rec loop acc =
    match Util.Heap.pop heap with
    | None -> acc
    | Some (g, k) ->
      if g <> state.gain.(k) then begin
        if state.gain.(k) > 0 then Util.Heap.push heap (state.gain.(k), k);
        loop acc
      end
      else if g = 0 then acc
      else begin
        select state k;
        loop (k :: acc)
      end
  in
  loop []

let run selection state =
  let cover =
    match selection with
    | `Linear_scan -> solve_linear state
    | `Lazy_heap -> solve_heap state
  in
  List.sort_uniq Int.compare cover

let solve_indexed ?(selection = `Linear_scan) ?pool index =
  run selection (state_of_index ?pool index)

let solve ?(selection = `Linear_scan) ?pool instance lambda =
  run selection (create_state ?pool instance lambda)
