type selection = [ `Linear_scan | `Lazy_heap ]

(* All pair geometry lives in the compiled Pair_index: a post's gain is the
   number of still-uncovered pairs in its covered ranges, and selecting a
   post walks those ranges, flipping flat covered bytes and decrementing
   the gains of each newly-covered pair's coverers. The selection loop
   allocates nothing per round beyond two closures. *)
type state = {
  index : Pair_index.t;
  covered : Bytes.t;  (* one byte per pair id *)
  gain : int array;  (* per position: # uncovered pairs this post covers *)
}

let state_of_index ?pool ?(budget = Util.Budget.unlimited) index =
  let n = Instance.size (Pair_index.instance index) in
  let gain = Array.make n 0 in
  let init k =
    Interrupt.step budget;
    gain.(k) <- Pair_index.covered_count index k
  in
  (match pool with
  | None ->
    for k = 0 to n - 1 do
      init k
    done
  | Some pool ->
    Util.Pool.parallel_iter_chunks pool ~stop:(Interrupt.stop budget) n
      ~f:(fun lo hi ->
        for k = lo to hi - 1 do
          init k
        done));
  Interrupt.check budget;
  { index; covered = Bytes.make (Pair_index.total_pairs index) '\000'; gain }

let create_state ?pool ?budget instance lambda =
  state_of_index ?pool ?budget
    (Pair_index.build ?pool ?budget ~coverers:true instance lambda)

(* Registry handles are module-level: interning is a hash lookup under a
   mutex, far too costly for once-per-pick bumping. *)
let m_picks = Util.Telemetry.counter "greedy.picks"
let m_marks = Util.Telemetry.counter "greedy.marks"
let m_heap_ops = Util.Telemetry.counter "greedy.heap_ops"

(* A pick's gain is by construction the number of pairs [select] is about
   to newly cover, so the marks counter costs one add per pick instead of
   one increment per pair in the hot loop. *)
let count_pick state k =
  Util.Telemetry.incr m_picks;
  Util.Telemetry.add m_marks state.gain.(k)

let select state k =
  let decrement k' = state.gain.(k') <- state.gain.(k') - 1 in
  Pair_index.iter_covered_ranges state.index k (fun first last ->
      for id = first to last do
        if Bytes.get state.covered id = '\000' then begin
          Bytes.set state.covered id '\001';
          Pair_index.iter_coverers state.index id decrement
        end
      done)

let argmax_gain state =
  let best = ref (-1) and best_gain = ref 0 in
  Array.iteri
    (fun k g ->
      if g > !best_gain then begin
        best := k;
        best_gain := g
      end)
    state.gain;
  if !best_gain = 0 then None else Some !best

let solve_linear budget state initial =
  let n = Array.length state.gain in
  let partial acc () = Interrupt.Partial_cover acc in
  let rec loop acc =
    (* Each round re-scans every gain, so it costs n steps. The salvage is
       the picks so far — a sound prefix of a cover. *)
    Interrupt.step ~cost:(max 1 n) ~partial:(partial acc) budget;
    match argmax_gain state with
    | None -> acc
    | Some k ->
      count_pick state k;
      select state k;
      loop (k :: acc)
  in
  loop initial

let solve_heap budget state initial =
  (* Max-heap of (gain snapshot, position); stale entries are refreshed. *)
  let cmp (ga, _) (gb, _) = Int.compare gb ga in
  let heap = Util.Heap.create cmp in
  let push g k =
    Util.Telemetry.incr m_heap_ops;
    Util.Heap.push heap (g, k)
  in
  Array.iteri (fun k g -> if g > 0 then push g k) state.gain;
  let partial acc () = Interrupt.Partial_cover acc in
  let rec loop acc =
    Interrupt.step ~partial:(partial acc) budget;
    Util.Telemetry.incr m_heap_ops;
    match Util.Heap.pop heap with
    | None -> acc
    | Some (g, k) ->
      if g <> state.gain.(k) then begin
        (* Stale entry: refresh lazily. *)
        if state.gain.(k) > 0 then push state.gain.(k) k;
        loop acc
      end
      else if g = 0 then acc
      else begin
        count_pick state k;
        select state k;
        loop (k :: acc)
      end
  in
  loop initial

let run ?(budget = Util.Budget.unlimited) ?(seed = []) selection state =
  (* Seeding: mark everything the seed posts cover before the greedy loop
     and carry them in the result — the final set is then a cover of the
     full pair universe whatever the seed was. A seed post's own gain drops
     to 0, so the loop never re-picks it. *)
  let seed = List.sort_uniq Int.compare seed in
  List.iter (select state) seed;
  let cover =
    match selection with
    | `Linear_scan -> solve_linear budget state seed
    | `Lazy_heap -> solve_heap budget state seed
  in
  List.sort_uniq Int.compare cover

let solve_indexed ?(selection = `Linear_scan) ?pool ?budget ?seed index =
  run ?budget ?seed selection (state_of_index ?pool ?budget index)

let solve ?(selection = `Linear_scan) ?pool ?budget ?seed instance lambda =
  run ?budget ?seed selection (create_state ?pool ?budget instance lambda)
