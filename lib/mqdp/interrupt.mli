(** The typed budget-exhaustion exception every solver raises, carrying
    whatever partial state the interrupted algorithm could salvage.

    Solvers poll a {!Util.Budget} at loop granularity through the helpers
    here; when the budget is exhausted they raise {!Budget_exceeded} with a
    [partial] describing work worth carrying into a cheaper algorithm.
    {!Supervisor} is the intended catcher: it validates the partial and
    either answers with it (when it is already a complete cover) or seeds
    the next rung of the degradation ladder with it.

    A [Partial_cover] is a set of instance positions the interrupted
    solver had committed to its answer. It is {e not} necessarily a
    λ-cover — only a sound prefix of one: adding more posts can complete
    it, never invalidate it (coverage is monotone in the cover set). *)

type partial =
  | No_partial  (** nothing salvageable (e.g. OPT's DP layers) *)
  | Partial_cover of int list  (** positions committed so far, any order *)

exception Budget_exceeded of {
  reason : Util.Budget.stop_reason;
  partial : partial;
}

(** [check ?partial budget] raises {!Budget_exceeded} when [budget] is
    exhausted; [partial] (a thunk, so the common non-exhausted path builds
    nothing) supplies the salvage. *)
val check : ?partial:(unit -> partial) -> Util.Budget.t -> unit

(** [step ?cost ?partial budget] charges [cost] (default 1) steps, then
    {!check}s. *)
val step : ?cost:int -> ?partial:(unit -> partial) -> Util.Budget.t -> unit

(** [stop budget] is the [?stop] predicate for {!Util.Pool} iteration:
    true once [budget] is exhausted. *)
val stop : Util.Budget.t -> unit -> bool

(** [positions_of partial] is the carried positions ([[]] for
    {!No_partial}), sorted and deduplicated. *)
val positions_of : partial -> int list
