type mode =
  | Delayed of { tau : float; plus : bool }
  | Instant

type emission = {
  post : Post.t;
  emit_time : float;
}

type label_state = {
  mutable pending : Post.t list;  (* uncovered arrivals, newest first *)
  mutable oldest : Post.t option;
  mutable last_out : Post.t option;  (* latest post output for this label *)
  mutable deadline : float;  (* infinity when nothing pending *)
}

type t = {
  lambda : float;
  lam : Coverage.lambda;  (* [Fixed lambda], for the shared geometry helpers *)
  mode : mode;
  states : (Label.t, label_state) Hashtbl.t;
  mutable heap : (float * Label.t) Util.Heap.t;
  emitted : (int, unit) Hashtbl.t;  (* distinct emitted post ids *)
  mutable last_time : float option;
  degraded : (Label.t, unit) Hashtbl.t;  (* labels demoted to instant handling *)
  mutable live_pending : int;  (* labels with a non-empty pending list *)
  window : Window_index.t option;  (* mirrored sliding window, when attached *)
}

type label_snapshot = {
  snap_label : Label.t;
  snap_pending : Post.t list;  (* stored order: newest first *)
  snap_last_out : Post.t option;
}

type snapshot = {
  snap_lambda : float;
  snap_mode : mode;
  snap_last_time : float option;
  snap_emitted : int list;  (* ascending *)
  snap_degraded : Label.t list;  (* ascending *)
  snap_labels : label_snapshot list;  (* ascending by label *)
}

(* Deterministic heap order: ties on the deadline break by label id, so
   firing order does not depend on heap history (pushes vs compaction). *)
let heap_cmp (da, a) (db, b) =
  let c = Float.compare da db in
  if c <> 0 then c else Int.compare a b

let create ?window ~lambda mode =
  if lambda < 0. then invalid_arg "Online.create: negative lambda";
  (match mode with
  | Delayed { tau; _ } when tau < 0. -> invalid_arg "Online.create: negative tau"
  | Delayed _ | Instant -> ());
  (match window with
  | Some w -> (
    match Window_index.lambda w with
    | Coverage.Fixed l when l = lambda -> ()
    | Coverage.Fixed _ | Coverage.Per_post_label _ ->
      invalid_arg "Online.create: window lambda mismatch")
  | None -> ());
  {
    lambda;
    lam = Coverage.Fixed lambda;
    mode;
    states = Hashtbl.create 16;
    heap = Util.Heap.create heap_cmp;
    emitted = Hashtbl.create 64;
    last_time = None;
    degraded = Hashtbl.create 4;
    live_pending = 0;
    window;
  }

let window t = t.window

let m_heap_pushes = Util.Telemetry.counter "online.heap_pushes"
let m_heap_pops = Util.Telemetry.counter "online.heap_pops"
let m_compactions = Util.Telemetry.counter "online.compactions"
let m_deadline_queue = Util.Telemetry.gauge "online.deadline_queue"
let m_pending_labels = Util.Telemetry.gauge "online.pending_labels"

(* Every pending-list mutation funnels through here so the live-label
   counter (the overload signal — deterministic across checkpoint/restore,
   unlike the heap length, which depends on stale-entry history) cannot
   drift. *)
let set_pending t st p =
  (match (st.pending, p) with
  | [], _ :: _ -> t.live_pending <- t.live_pending + 1
  | _ :: _, [] -> t.live_pending <- t.live_pending - 1
  | [], [] | _ :: _, _ :: _ -> ());
  Util.Telemetry.set m_pending_labels t.live_pending;
  st.pending <- p

let state t a =
  match Hashtbl.find_opt t.states a with
  | Some st -> st
  | None ->
    let st = { pending = []; oldest = None; last_out = None; deadline = infinity } in
    Hashtbl.add t.states a st;
    st

let tau_of t =
  match t.mode with
  | Delayed { tau; _ } -> tau
  | Instant -> 0.

let plus_of t =
  match t.mode with
  | Delayed { plus; _ } -> plus
  | Instant -> false

(* The heap may hold stale entries (superseded deadlines are only discarded
   at fire time). Two measures keep it from growing O(total arrivals): a
   recomputed deadline equal to the current one is not re-pushed (the
   Î»-dominated regime recomputes the same [t_oldest + Î»] on every arrival),
   and when stale entries still outnumber live labels 2:1 the heap is
   rebuilt with exactly one entry per pending label. *)
let compact_slack = 8

let compact t =
  Util.Telemetry.incr m_compactions;
  let live =
    Hashtbl.fold
      (fun a st acc -> if st.deadline < infinity then (st.deadline, a) :: acc else acc)
      t.states []
  in
  t.heap <- Util.Heap.of_list heap_cmp live;
  Util.Telemetry.set m_deadline_queue (Util.Heap.length t.heap)

let push_deadline t a d =
  Util.Telemetry.incr m_heap_pushes;
  Util.Heap.push t.heap (d, a);
  Util.Telemetry.set m_deadline_queue (Util.Heap.length t.heap);
  if Util.Heap.length t.heap > (2 * Hashtbl.length t.states) + compact_slack then
    compact t

let refresh_deadline t a =
  let st = state t a in
  let d =
    match (st.pending, st.oldest) with
    | [], _ | _, None -> infinity
    | latest :: _, Some oldest ->
      Float.min (latest.Post.value +. tau_of t) (Coverage.reach t.lam oldest a)
  in
  if d <> st.deadline then begin
    st.deadline <- d;
    if d < infinity then push_deadline t a d
  end

let record_emission t out post emit_time =
  Hashtbl.replace t.emitted post.Post.id ();
  out := { post; emit_time } :: !out

(* The two coverage primitives the engine shares with the window mirror.

   [label_reach t a] is the right extent of the latest output serving
   label [a] (neg_infinity before any): the old-arrival coverage test
   [value <= reach last_out] in one float read. When a window is attached
   the float lives in its per-label reach table — assigned, never maxed,
   because a deadline firing can legitimately replace a further-reaching
   last_out with a nearer one (plus-mode credit first, fire later), and
   the engine's semantics track the {e latest} output, not the furthest.

   [set_last_out t a st p] is the single place a label's last output is
   assigned, keeping the mirror exact at every site (fire, plus-credit,
   instant arrival, degradation, import). *)
let label_reach t a =
  match t.window with
  | Some w -> Window_index.emit_reach w a
  | None -> (
    match (state t a).last_out with
    | Some z -> Coverage.reach t.lam z a
    | None -> neg_infinity)

let set_last_out t a st p =
  st.last_out <- Some p;
  match t.window with
  | Some w -> Window_index.set_emit_reach w a (Coverage.reach t.lam p a)
  | None -> ()

(* StreamScan+: an emitted post covers the pending pairs of all its labels
   and becomes their latest output. *)
let credit_emission t post =
  Label_set.iter
    (fun b ->
      let st = state t b in
      (match st.last_out with
      | Some current when current.Post.value >= post.Post.value -> ()
      | Some _ | None -> set_last_out t b st post);
      let remaining =
        List.filter
          (fun p -> not (Coverage.covers_label t.lam ~by:post b p))
          st.pending
      in
      if List.compare_lengths remaining st.pending <> 0 then begin
        set_pending t st remaining;
        (match List.rev remaining with
        | [] -> st.oldest <- None
        | oldest :: _ -> st.oldest <- Some oldest);
        refresh_deadline t b
      end)
    post.Post.labels

let fire t out (d, a) =
  let st = state t a in
  if st.pending <> [] && st.deadline = d then begin
    match st.pending with
    | [] -> assert false
    | latest :: _ ->
      record_emission t out latest d;
      set_last_out t a st latest;
      set_pending t st [];
      st.oldest <- None;
      st.deadline <- infinity;
      if plus_of t then credit_emission t latest
  end

(* [inclusive] controls the boundary: [push] fires strictly-due deadlines
   (d < until) so an arrival at exactly its label's deadline is processed
   before the deadline fires — the arriving post may itself cover the
   pending pairs; [finish] drains inclusively. *)
let fire_due t out ~until ~inclusive =
  let due d = if inclusive then d <= until else d < until in
  let rec loop () =
    match Util.Heap.peek t.heap with
    | Some (d, _) when due d -> begin
      match Util.Heap.pop t.heap with
      | Some entry ->
        Util.Telemetry.incr m_heap_pops;
        Util.Telemetry.set m_deadline_queue (Util.Heap.length t.heap);
        fire t out entry;
        loop ()
      | None -> ()
    end
    | Some _ | None -> ()
  in
  loop ()

let sort_emissions emissions =
  List.sort
    (fun a b ->
      let c = Float.compare a.emit_time b.emit_time in
      if c <> 0 then c else Int.compare a.post.Post.id b.post.Post.id)
    emissions

(* A degraded label behaves like [Instant]: an uncovered arrival on it is
   emitted on the spot (so its queue can never rebuild) and the emission is
   credited to every label the post carries, pruning pending work. *)
let arrival_delayed t out post =
  let degraded_uncovered =
    Hashtbl.length t.degraded > 0
    && Label_set.exists
         (fun a -> Hashtbl.mem t.degraded a && post.Post.value > label_reach t a)
         post.Post.labels
  in
  if degraded_uncovered then begin
    record_emission t out post post.Post.value;
    credit_emission t post
  end
  else
    Label_set.iter
      (fun a ->
        let st = state t a in
        let covered = post.Post.value <= label_reach t a in
        if not covered then begin
          if st.pending = [] then st.oldest <- Some post;
          set_pending t st (post :: st.pending);
          refresh_deadline t a
        end)
      post.Post.labels

let arrival_instant t out post =
  let covered =
    Label_set.for_all
      (fun a -> post.Post.value <= label_reach t a)
      post.Post.labels
  in
  if not covered then begin
    record_emission t out post post.Post.value;
    Label_set.iter (fun a -> set_last_out t a (state t a) post) post.Post.labels
  end

let push t post =
  (match t.last_time with
  | Some previous when post.Post.value < previous ->
    invalid_arg
      (Printf.sprintf "Online.push: post %d at %g arrives before %g" post.Post.id
         post.Post.value previous)
  | Some _ | None -> ());
  (match t.window with
  | Some w ->
    (* Mirror the stream into the window. Expiry horizon: anything older
       than prev − τ − λ can no longer be emitted (deadlines due before
       this arrival fired during the previous push, and a deadline is at
       least its post's value) nor λ-cover a pending or future post, so
       expiring against the PREVIOUS arrival keeps every post this push's
       own firings may emit. Out-of-order mirror pushes (a clamping
       frontend can release equal-value posts with non-ascending ids) are
       skipped: coverage reads go through the reach table, which is
       maintained independently of post storage. *)
    (match t.last_time with
    | Some prev -> Window_index.expire_before w ~time:(prev -. tau_of t -. t.lambda)
    | None -> ());
    if Float.is_finite post.Post.value then ignore (Window_index.try_push w post)
  | None -> ());
  t.last_time <- Some post.Post.value;
  let out = ref [] in
  (match t.mode with
  | Delayed _ ->
    fire_due t out ~until:post.Post.value ~inclusive:false;
    arrival_delayed t out post
  | Instant -> arrival_instant t out post);
  sort_emissions (List.rev !out)

let finish t =
  let out = ref [] in
  fire_due t out ~until:infinity ~inclusive:true;
  sort_emissions (List.rev !out)

let emitted_count t = Hashtbl.length t.emitted

let deadline_queue_length t = Util.Heap.length t.heap

let pending_labels t = t.live_pending

let last_arrival t = t.last_time

let is_degraded t a = Hashtbl.mem t.degraded a

let degraded_count t = Hashtbl.length t.degraded

(* Demote the label with the earliest live deadline to instant handling.
   Its latest pending post is emitted right away — legal, because [now] can
   only precede the deadline (all strictly-due deadlines fired during the
   last push) and the latest pending post λ-covers every pending post of
   its label (latest − oldest ≤ λ whenever the window is still open). The
   rest of the pending list is shed: covered by the early emission, never
   emitted itself. *)
let degrade_earliest t ~now =
  let rec pick () =
    match Util.Heap.pop t.heap with
    | None -> None
    | Some (d, a) ->
      Util.Telemetry.incr m_heap_pops;
      Util.Telemetry.set m_deadline_queue (Util.Heap.length t.heap);
      let st = state t a in
      if st.pending <> [] && st.deadline = d then Some (a, st) else pick ()
  in
  match pick () with
  | None -> None
  | Some (a, st) ->
    Hashtbl.replace t.degraded a ();
    (match st.pending with
    | [] -> assert false
    | latest :: rest ->
      let when_ = Float.max latest.Post.value (Float.min now st.deadline) in
      let out = ref [] in
      record_emission t out latest when_;
      set_last_out t a st latest;
      set_pending t st [];
      st.oldest <- None;
      st.deadline <- infinity;
      credit_emission t latest;
      Some (a, List.length rest, sort_emissions (List.rev !out)))

let export t =
  let snap_labels =
    Hashtbl.fold
      (fun a st acc ->
        if st.pending = [] && st.last_out = None then acc
        else
          { snap_label = a; snap_pending = st.pending; snap_last_out = st.last_out }
          :: acc)
      t.states []
    |> List.sort (fun x y -> Int.compare x.snap_label y.snap_label)
  in
  {
    snap_lambda = t.lambda;
    snap_mode = t.mode;
    snap_last_time = t.last_time;
    snap_emitted =
      Hashtbl.fold (fun id () acc -> id :: acc) t.emitted [] |> List.sort Int.compare;
    snap_degraded =
      Hashtbl.fold (fun a () acc -> a :: acc) t.degraded [] |> List.sort Int.compare;
    snap_labels;
  }

let import ?window s =
  List.iter
    (fun ls ->
      let rec descending = function
        | p :: (q :: _ as rest) ->
          if p.Post.value < q.Post.value then
            invalid_arg "Online.import: pending list not newest-first";
          descending rest
        | [ _ ] | [] -> ()
      in
      descending ls.snap_pending;
      (match (ls.snap_pending, s.snap_last_time) with
      | p :: _, Some last when p.Post.value > last ->
        invalid_arg "Online.import: pending post newer than last arrival"
      | (p :: _), None -> ignore p; invalid_arg "Online.import: pending posts without arrivals"
      | _ -> ()))
    s.snap_labels;
  let t = create ?window ~lambda:s.snap_lambda s.snap_mode in
  List.iter (fun id -> Hashtbl.replace t.emitted id ()) s.snap_emitted;
  List.iter (fun a -> Hashtbl.replace t.degraded a ()) s.snap_degraded;
  List.iter
    (fun ls ->
      let st = state t ls.snap_label in
      (* Re-derive the window's reach table from the snapshot: the window
         section of a checkpoint stores posts only. *)
      (match ls.snap_last_out with
      | Some p -> set_last_out t ls.snap_label st p
      | None -> st.last_out <- None);
      set_pending t st ls.snap_pending;
      (match List.rev ls.snap_pending with
      | [] -> st.oldest <- None
      | oldest :: _ -> st.oldest <- Some oldest);
      refresh_deadline t ls.snap_label)
    s.snap_labels;
  t.last_time <- s.snap_last_time;
  t
