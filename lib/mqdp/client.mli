(** Retry-safe client for the serving wire protocol.

    The engine's idempotency contract ({!Serve}) is: retry the {e same}
    [<seq> VERB args] line verbatim and the cached response replays
    without re-executing the command. This module is the client half of
    that contract — it owns the sequence counter, renders each command
    into its wire line once, and on a transport failure retries that
    exact line with exponential backoff and deterministic jitter.

    It is IO-agnostic: the caller supplies {!io}, a [send] that performs
    one request/response exchange (reconnecting underneath as it
    pleases) and a [sleep]. The TCP adapter lives in [lib/net]; the
    chaos fuzzer supplies a simulated [send] and a virtual [sleep], which
    is why the retry schedule must be a pure function of the seed. *)

type config = {
  max_attempts : int;  (** total tries per request, >= 1 *)
  base_delay : float;  (** first backoff, seconds *)
  max_delay : float;  (** backoff ceiling *)
  jitter : float;  (** uniform jitter fraction in [0, 1]: delay *= 1 ± jitter/2 *)
}

(** 5 attempts, 10 ms base, 1 s ceiling, 0.5 jitter. *)
val default_config : config

type io = {
  send : string -> string list option;
      (** one exchange: the request line (no newline) in, the response
          lines out; [None] when the transport failed (reset, refused,
          shed) and the request may or may not have executed *)
  sleep : float -> unit;
}

type error =
  | Gave_up of { attempts : int; line : string }
      (** every attempt failed at the transport level *)

type t

(** [create ?config ?seed io] — a fresh client with its own sequence
    counter starting at 1. [seed] drives the jitter (default 0).
    Raises [Invalid_argument] on [max_attempts < 1], negative delays, or
    jitter outside [0, 1]. *)
val create : ?config:config -> ?seed:int -> io -> t

(** Next sequence number to be assigned (diagnostics, tests). *)
val next_seq : t -> int

(** Transport-failure retries performed so far. *)
val retries : t -> int

(** [sync_seq t watermark] — adopt a server-reported session watermark
    (from the [HELLO] greeting's [seq=N]): subsequent requests number
    above it. Monotone — never lowers the counter — so a fresh client
    process resuming a journal-recovered session cannot collide with
    sequence numbers the session already executed. *)
val sync_seq : t -> int -> unit

(** [request t cmd] — allocate a sequence number, send [<seq> cmd], and
    return the response lines. Server-level errors ([<seq> ERR ...]) are
    {e responses}, returned as [Ok]; only transport failures retry. A
    transport-level rejection (a response whose first line carries
    sequence [0], e.g. [0 ERR capacity ...]) also counts as retryable:
    the daemon shed the connection before the request framed. *)
val request : t -> string -> (string list, error) result

(** The backoff schedule [request] sleeps through for a given config and
    seed — exposed so tests can pin determinism and the cap without
    wall-clock time. [attempts] is the number of {e sleeps}. *)
val backoff_schedule : config -> seed:int -> attempts:int -> float list
