(** Algorithm GreedySC (paper §4.2): reduce MQDP to set cover and run the
    greedy set-cover algorithm.

    The universe is the set of (post, label) pairs; the set contributed by
    post [Pk] is every pair [Pk] λ-covers. Approximation ratio
    ln(|P|·|L|). At every round the set with the most still-uncovered
    elements is selected.

    Two selection strategies are provided. [`Linear_scan] re-scans all
    gains each round — what the paper's implementation does, after finding
    heap maintenance too expensive on their data. [`Lazy_heap] keeps a
    max-heap of possibly-stale gains and re-pushes on mismatch. Both
    produce the same cover when gains never tie; with ties the covers can
    differ in composition but obey the same greedy invariant. *)

type selection = [ `Linear_scan | `Lazy_heap ]

(** The mutable set-cover state (gain array, covered flags, and — for a
    per-post lambda — materialized coverer lists). *)
type state

(** [create_state ?pool instance lambda] builds the state [solve] starts
    from; construction is the dominant cost on large instances and fans
    out over [pool] when given. Exposed for the scaling benchmark. *)
val create_state : ?pool:Util.Pool.t -> Instance.t -> Coverage.lambda -> state

(** [solve ?selection ?pool instance lambda] returns cover positions,
    ascending. Default selection is [`Linear_scan]. When [pool] is given,
    state construction (gain initialization and, for a per-post lambda, the
    coverer lists) fans out across the pool's domains; the selection loop
    itself stays sequential. The cover is bit-identical to a run without
    [pool]. *)
val solve :
  ?selection:selection -> ?pool:Util.Pool.t -> Instance.t -> Coverage.lambda -> int list
