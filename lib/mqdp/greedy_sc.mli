(** Algorithm GreedySC (paper §4.2): reduce MQDP to set cover and run the
    greedy set-cover algorithm.

    The universe is the set of (post, label) pairs; the set contributed by
    post [Pk] is every pair [Pk] λ-covers. Approximation ratio
    ln(|P|·|L|). At every round the set with the most still-uncovered
    elements is selected.

    All coverage geometry comes from a compiled {!Pair_index}: covered
    flags are one flat byte per pair and committing a pick runs the fused
    {!Pair_index.apply_pick} kernel. The selection loop performs no
    per-round allocation for any strategy; the default bucket-queue loop
    allocates nothing at all per select (asserted by [bench --exp micro]).

    Three selection strategies, all producing {e bit-identical covers}
    (each resolves gain ties toward the smallest position; enforced by
    qcheck and the fuzzer's kernel cross-check):

    - [`Bucket_queue] (default): a monotone bucket queue keyed on integer
      gains. Gains only decrease, so decrease-key and pop are O(1)
      amortized and the queue holds at most one slot per live candidate —
      no lazily-deleted stale entries.
    - [`Lazy_heap]: a max-heap of possibly-stale (gain, position)
      snapshots, re-pushed on mismatch; kept as the reference adversary
      for the cross-checks.
    - [`Linear_scan]: re-scan all gains each round — what the paper's
      implementation does, after finding heap maintenance too expensive
      on their data. *)

type selection = [ `Linear_scan | `Lazy_heap | `Bucket_queue ]

(** The mutable set-cover state (gain array, flat covered state, pick and
    touched-position buffers, and the gain bucket queue) over either a
    compiled {!Pair_index} or a live {!Window_index} — the selection loops
    are geometry-agnostic, so all guarantees below hold for both. *)
type state

(** [create_state ?pool ?budget instance lambda] compiles a {!Pair_index}
    (with coverer sets) and builds the state [solve] starts from;
    construction is the dominant cost on large instances and fans out over
    [pool] when given. Exposed for the scaling benchmark. *)
val create_state :
  ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> state

(** [state_of_index ?pool ?budget index] builds the state from an
    already-compiled index — [index] must have been built with coverer sets
    (the default). Exposed (also) so the allocation benchmark can separate
    state construction from the solve loop proper. *)
val state_of_index : ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> Pair_index.t -> state

(** [solve ?selection ?pool ?budget ?seed instance lambda] returns cover
    positions, ascending. Default selection is [`Bucket_queue]. When
    [pool] is given, index compilation and gain initialization fan out
    across the pool's domains; the selection loop itself stays sequential.
    The cover is bit-identical to a run without [pool] — and to every
    other selection strategy.

    [budget] (default unlimited) is charged one step per post during
    initialization, [n] per linear-scan round, and one per heap or queue
    pop; on exhaustion mid-selection the {!Interrupt.Budget_exceeded}
    carries the picks so far as a [Partial_cover].

    [seed] positions are committed before the greedy loop: everything they
    cover is pre-marked and they are included in the result, so the answer
    is a full cover whatever the seed — the mechanism by which a supervisor
    hands a cheaper algorithm the salvage of an interrupted one. *)
val solve :
  ?selection:selection -> ?pool:Util.Pool.t -> ?budget:Util.Budget.t ->
  ?seed:int list -> Instance.t -> Coverage.lambda -> int list

(** [solve_indexed ?selection ?pool ?budget ?seed index] is {!solve} on a
    pre-compiled index (built with coverer sets). *)
val solve_indexed :
  ?selection:selection -> ?pool:Util.Pool.t -> ?budget:Util.Budget.t ->
  ?seed:int list -> Pair_index.t -> int list

(** {2 Windowed solving}

    The same greedy over a live {!Window_index}: candidate positions are
    window positions [0 .. Window_index.size w - 1], and the cover is
    bit-identical to {!solve} on [Window_index.to_instance w] (the
    equivalence contract of {!Window_index}, enforced by qcheck and the
    fuzzer). *)

(** Reusable off-heap scratch for windowed solves: geometry snapshot,
    selection buffers, and the bucket queue, grown by doubling and kept
    across solves so a steady-state stream of solves allocates only the
    per-solve state record. A [window_solver] serves one solve at a time
    but may hop freely between windows. *)
type window_solver

val window_solver : unit -> window_solver

(** [state_of_window ?marked ?solver ?budget w] snapshots the live window
    (via {!Window_index.begin_solve}) and builds the selection state.
    [marked] (default false) starts from — and records picks into — the
    window's persistent coverage marks (the streaming greedy); the default
    is a pristine solve of the whole live window. [budget] is charged one
    linear-scan round ([size w] steps) for the snapshot. *)
val state_of_window :
  ?marked:bool -> ?solver:window_solver -> ?budget:Util.Budget.t ->
  Window_index.t -> state

(** [solve_window ?selection ?marked ?solver ?budget ?seed w] — windowed
    {!solve}; returns window positions, ascending. *)
val solve_window :
  ?selection:selection -> ?marked:bool -> ?solver:window_solver ->
  ?budget:Util.Budget.t -> ?seed:int list -> Window_index.t -> int list

(** {2 Stepping}

    Single-pick interface for callers that interleave greedy picks with
    other bookkeeping ({!Stream_greedy}'s emission loop). *)

(** [pop_best st] removes and returns the canonical next pick — maximum
    gain, smallest position on ties, exactly the choice every selection
    strategy makes — or -1 when no candidate has positive gain. The pick
    is not committed. *)
val pop_best : state -> int

(** [commit st k] records [k] as a pick and applies its coverage (marks,
    gain decrements, queue updates). [k] must come from {!pop_best}. *)
val commit : state -> int -> unit

(** [picks_so_far st] — committed picks, ascending. *)
val picks_so_far : state -> int list
