(** Algorithm GreedySC (paper §4.2): reduce MQDP to set cover and run the
    greedy set-cover algorithm.

    The universe is the set of (post, label) pairs; the set contributed by
    post [Pk] is every pair [Pk] λ-covers. Approximation ratio
    ln(|P|·|L|). At every round the set with the most still-uncovered
    elements is selected.

    All coverage geometry comes from a compiled {!Pair_index}: covered
    flags are one flat byte per pair and committing a pick runs the fused
    {!Pair_index.apply_pick} kernel. The selection loop performs no
    per-round allocation for any strategy; the default bucket-queue loop
    allocates nothing at all per select (asserted by [bench --exp micro]).

    Three selection strategies, all producing {e bit-identical covers}
    (each resolves gain ties toward the smallest position; enforced by
    qcheck and the fuzzer's kernel cross-check):

    - [`Bucket_queue] (default): a monotone bucket queue keyed on integer
      gains. Gains only decrease, so decrease-key and pop are O(1)
      amortized and the queue holds at most one slot per live candidate —
      no lazily-deleted stale entries.
    - [`Lazy_heap]: a max-heap of possibly-stale (gain, position)
      snapshots, re-pushed on mismatch; kept as the reference adversary
      for the cross-checks.
    - [`Linear_scan]: re-scan all gains each round — what the paper's
      implementation does, after finding heap maintenance too expensive
      on their data. *)

type selection = [ `Linear_scan | `Lazy_heap | `Bucket_queue ]

(** The mutable set-cover state (gain array, flat covered bytes, pick and
    touched-position buffers, and the gain bucket queue over a compiled
    {!Pair_index}). *)
type state

(** [create_state ?pool ?budget instance lambda] compiles a {!Pair_index}
    (with coverer sets) and builds the state [solve] starts from;
    construction is the dominant cost on large instances and fans out over
    [pool] when given. Exposed for the scaling benchmark. *)
val create_state :
  ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> Instance.t -> Coverage.lambda -> state

(** [state_of_index ?pool ?budget index] builds the state from an
    already-compiled index — [index] must have been built with coverer sets
    (the default). Exposed (also) so the allocation benchmark can separate
    state construction from the solve loop proper. *)
val state_of_index : ?pool:Util.Pool.t -> ?budget:Util.Budget.t -> Pair_index.t -> state

(** [solve ?selection ?pool ?budget ?seed instance lambda] returns cover
    positions, ascending. Default selection is [`Bucket_queue]. When
    [pool] is given, index compilation and gain initialization fan out
    across the pool's domains; the selection loop itself stays sequential.
    The cover is bit-identical to a run without [pool] — and to every
    other selection strategy.

    [budget] (default unlimited) is charged one step per post during
    initialization, [n] per linear-scan round, and one per heap or queue
    pop; on exhaustion mid-selection the {!Interrupt.Budget_exceeded}
    carries the picks so far as a [Partial_cover].

    [seed] positions are committed before the greedy loop: everything they
    cover is pre-marked and they are included in the result, so the answer
    is a full cover whatever the seed — the mechanism by which a supervisor
    hands a cheaper algorithm the salvage of an interrupted one. *)
val solve :
  ?selection:selection -> ?pool:Util.Pool.t -> ?budget:Util.Budget.t ->
  ?seed:int list -> Instance.t -> Coverage.lambda -> int list

(** [solve_indexed ?selection ?pool ?budget ?seed index] is {!solve} on a
    pre-compiled index (built with coverer sets). *)
val solve_indexed :
  ?selection:selection -> ?pool:Util.Pool.t -> ?budget:Util.Budget.t ->
  ?seed:int list -> Pair_index.t -> int list
