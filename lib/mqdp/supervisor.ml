module Breaker = struct
  type entry = { mutable failures : int; mutable opened_at : float }

  (* All state sits behind [lock]: one breaker is shared by every domain
     that supervises the same resource (a serve shard migrates across
     pool workers between ticks), so lookups and transitions must be
     atomic with respect to each other. The critical sections are a few
     loads and stores — contention is irrelevant next to the solves the
     breaker is guarding. *)
  type t = {
    threshold : int;
    cooldown : float;
    entries : (string, entry) Hashtbl.t;
    lock : Mutex.t;
  }

  let create ?(threshold = 3) ?(cooldown = 30.) () =
    if threshold < 1 then invalid_arg "Supervisor.Breaker.create: threshold < 1";
    if cooldown < 0. then invalid_arg "Supervisor.Breaker.create: cooldown < 0";
    { threshold; cooldown; entries = Hashtbl.create 8; lock = Mutex.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let entry t rung =
    match Hashtbl.find_opt t.entries rung with
    | Some e -> e
    | None ->
      let e = { failures = 0; opened_at = 0. } in
      Hashtbl.add t.entries rung e;
      e

  let failures t rung =
    locked t (fun () ->
        match Hashtbl.find_opt t.entries rung with
        | Some e -> e.failures
        | None -> 0)

  let available t rung =
    locked t (fun () ->
        match Hashtbl.find_opt t.entries rung with
        | None -> true
        | Some e ->
          e.failures < t.threshold
          || Util.Timer.now () -. e.opened_at >= t.cooldown)

  (* Rungs currently tripped (at/above the failure threshold), exposed as
     a gauge. Cooldown expiry is not reflected until the next record — the
     gauge tracks state transitions, not the clock. *)
  let m_open = Util.Telemetry.gauge "supervisor.breaker_open"

  let update_open_gauge t =
    if Util.Telemetry.enabled () then
      Util.Telemetry.set m_open
        (Hashtbl.fold
           (fun _ e acc -> if e.failures >= t.threshold then acc + 1 else acc)
           t.entries 0)

  let record_success t rung =
    locked t (fun () ->
        (entry t rung).failures <- 0;
        update_open_gauge t)

  (* (Re)arming the cooldown on every failure at or past the threshold
     means a failed half-open trial closes the window again. *)
  let record_failure t rung =
    locked t (fun () ->
        let e = entry t rung in
        e.failures <- e.failures + 1;
        if e.failures >= t.threshold then e.opened_at <- Util.Timer.now ();
        update_open_gauge t)
end

type outcome =
  | Answered
  | Salvaged of Util.Budget.stop_reason
  | Exhausted of Util.Budget.stop_reason
  | Refused of string
  | Skipped_breaker

type attempt = {
  rung : string;
  outcome : outcome;
  seeded_with : int;
  rung_elapsed : float;
}

type report = {
  answered_by : string;
  cover : int list;
  size : int;
  attempts : attempt list;
  total_elapsed : float;
}

let outcome_to_string = function
  | Answered -> "answered"
  | Salvaged r -> Printf.sprintf "salvaged (%s)" (Util.Budget.reason_to_string r)
  | Exhausted r -> Printf.sprintf "exhausted (%s)" (Util.Budget.reason_to_string r)
  | Refused msg -> "refused: " ^ msg
  | Skipped_breaker -> "skipped (circuit open)"

let describe report =
  let line a =
    Printf.sprintf "%-12s %-24s seed=%-4d %8.3fms" a.rung
      (outcome_to_string a.outcome)
      a.seeded_with
      (a.rung_elapsed *. 1e3)
  in
  String.concat "\n" (List.map line report.attempts)

let default_ladder = [ Solver.Opt; Solver.Greedy_sc; Solver.Scan_plus ]

let ladder_from algorithm =
  let rec suffix = function
    | [] -> [ algorithm ]
    | a :: _ as l when a = algorithm -> l
    | _ :: rest -> suffix rest
  in
  suffix default_ladder

(* The floor never fails: under a fixed λ the instant streaming pick is a
   valid cover computed in one pass; under a per-post λ the identity cover
   is valid because every pair is covered by its own post. *)
let instant_cover instance lambda =
  match lambda with
  | Coverage.Fixed _ -> (Stream_scan.solve_instant instance lambda).Stream.cover
  | Coverage.Per_post_label _ -> List.init (Instance.size instance) Fun.id

let union a b = List.sort_uniq Int.compare (List.rev_append a b)

let outcome_counter =
  let answered = Util.Telemetry.counter "supervisor.answered"
  and salvaged = Util.Telemetry.counter "supervisor.salvaged"
  and exhausted = Util.Telemetry.counter "supervisor.exhausted"
  and refused = Util.Telemetry.counter "supervisor.refused"
  and skipped = Util.Telemetry.counter "supervisor.skipped_breaker" in
  function
  | Answered -> answered
  | Salvaged _ -> salvaged
  | Exhausted _ -> exhausted
  | Refused _ -> refused
  | Skipped_breaker -> skipped

let solve ?pool ?(budget = Util.Budget.unlimited) ?breaker
    ?(ladder = default_ladder) instance lambda =
  let start = Util.Timer.now_ns () in
  let attempts = ref [] in
  let record rung outcome seeded_with rung_elapsed =
    Util.Telemetry.incr (outcome_counter outcome);
    attempts := { rung; outcome; seeded_with; rung_elapsed } :: !attempts
  in
  let allowed rung =
    match breaker with None -> true | Some b -> Breaker.available b rung
  in
  let note_success rung =
    Option.iter (fun b -> Breaker.record_success b rung) breaker
  in
  let note_failure rung =
    Option.iter (fun b -> Breaker.record_failure b rung) breaker
  in
  let valid cover = Coverage.is_cover instance lambda cover in
  let finish answered_by cover =
    {
      answered_by;
      cover;
      size = List.length cover;
      attempts = List.rev !attempts;
      total_elapsed = Util.Timer.elapsed_since start;
    }
  in
  let rec walk seed = function
    | [] ->
      let t0 = Util.Timer.now_ns () in
      let cover = union seed (instant_cover instance lambda) in
      record "instant" Answered (List.length seed) (Util.Timer.elapsed_since t0);
      finish "instant" cover
    | algorithm :: rest ->
      let rung = Solver.algorithm_name algorithm in
      let seeded = List.length seed in
      if not (allowed rung) then begin
        record rung Skipped_breaker seeded 0.;
        walk seed rest
      end
      else begin
        (* Non-final rungs run on half the remaining budget so an expensive
           rung that burns out cannot starve its fallbacks; the ladder's
           last rung gets everything left (the instant floor underneath is
           unguarded anyway). *)
        let rung_budget =
          if rest = [] then budget else Util.Budget.child ~fraction:0.5 budget
        in
        let t0 = Util.Timer.now_ns () in
        (* The span re-raises after closing, so the exception patterns
           below still see Budget_exceeded & friends; the budget spend is
           attached at span close, after the rung has run. *)
        let run_rung () =
          Util.Telemetry.span
            ~name:("supervisor.rung." ^ rung)
            ~args:(fun () -> Util.Budget.spend_attrs rung_budget)
            (fun () -> Solver.run ?pool ~budget:rung_budget ~seed algorithm instance lambda)
        in
        match run_rung () with
        | cover when valid cover ->
          record rung Answered seeded (Util.Timer.elapsed_since t0);
          note_success rung;
          finish rung cover
        | _invalid ->
          (* Unreachable for a correct solver; degrade rather than crash. *)
          record rung (Refused "returned an invalid cover") seeded
            (Util.Timer.elapsed_since t0);
          note_failure rung;
          walk seed rest
        | exception Interrupt.Budget_exceeded { reason; partial } ->
          let dt = Util.Timer.elapsed_since t0 in
          let salvage = union seed (Interrupt.positions_of partial) in
          if valid salvage then begin
            (* The salvage is already a complete cover (e.g. a
               branch-and-bound incumbent): answer with it. Still a breaker
               failure — the rung did not finish inside its budget. *)
            record rung (Salvaged reason) seeded dt;
            note_failure rung;
            finish rung salvage
          end
          else begin
            record rung (Exhausted reason) seeded dt;
            note_failure rung;
            walk salvage rest
          end
        | exception Opt.Infeasible { labels; bytes } ->
          record rung
            (Refused
               (Printf.sprintf "infeasible: %d labels imply a %.3g-byte DP table"
                  labels bytes))
            seeded
            (Util.Timer.elapsed_since t0);
          note_failure rung;
          walk seed rest
        | exception
            ( Opt.Unsupported msg | Opt.Too_large msg
            | Brute_force.Too_large msg | Set_cover.Too_large msg ) ->
          record rung (Refused msg) seeded (Util.Timer.elapsed_since t0);
          note_failure rung;
          walk seed rest
      end
  in
  walk [] ladder
