(* Hardened ingestion frontend: reorder buffer + fault policies + overload
   degradation + checkpoint/restore. See feed.mli for the contract.

   Determinism is the load-bearing property: every decision depends only
   on (config, admitted stream so far), and the checkpoint captures that
   state completely, so crash → restore → replay is bit-identical to an
   uninterrupted run. Nothing here may consult wall-clock time or global
   randomness. *)

type policy =
  | Drop
  | Clamp
  | Raise

type config = {
  reorder_window : int;
  late : policy;
  duplicate : policy;
  non_finite : policy;
  overload_budget : int option;
}

let default_config =
  {
    reorder_window = 64;
    late = Drop;
    duplicate = Drop;
    non_finite = Drop;
    overload_budget = None;
  }

type counters = {
  accepted : int;
  released : int;
  reordered : int;
  late_dropped : int;
  late_clamped : int;
  duplicate_dropped : int;
  non_finite_dropped : int;
  non_finite_clamped : int;
  rejected : int;
  degraded_labels : int;
  shed : int;
}

type t = {
  cfg : config;
  engine : Online.t;
  buffer : Post.t Util.Heap.t;  (* staged posts, min by (value, id) *)
  seen : (int, unit) Hashtbl.t;  (* ids ever admitted *)
  mutable watermark : float;  (* newest value released to the engine *)
  mutable high : float;  (* newest value ever admitted (reorder signal) *)
  mutable c_accepted : int;
  mutable c_released : int;
  mutable c_reordered : int;
  mutable c_late_dropped : int;
  mutable c_late_clamped : int;
  mutable c_duplicate_dropped : int;
  mutable c_non_finite_dropped : int;
  mutable c_non_finite_clamped : int;
  mutable c_rejected : int;
  mutable c_shed : int;
}

exception Rejected of { id : int; what : string }
exception Corrupt of string
exception Unsupported_version of { found : string; expected : int }

(* Registry mirrors of the per-feed counters. These count events observed
   by this process: restoring a checkpoint does NOT replay its counter
   block into the registry (that would double-count across a crash), so
   the registry view is "work done here", the checkpoint view is "work
   done ever". *)
let m_accepted = Util.Telemetry.counter "feed.accepted"
let m_released = Util.Telemetry.counter "feed.released"
let m_reordered = Util.Telemetry.counter "feed.reordered"
let m_late_dropped = Util.Telemetry.counter "feed.late_dropped"
let m_late_clamped = Util.Telemetry.counter "feed.late_clamped"
let m_duplicate_dropped = Util.Telemetry.counter "feed.duplicate_dropped"
let m_non_finite_dropped = Util.Telemetry.counter "feed.non_finite_dropped"
let m_non_finite_clamped = Util.Telemetry.counter "feed.non_finite_clamped"
let m_rejected = Util.Telemetry.counter "feed.rejected"
let m_shed = Util.Telemetry.counter "feed.shed"
let m_buffer_depth = Util.Telemetry.gauge "feed.buffer_depth"

let validate_config cfg =
  if cfg.reorder_window < 0 then invalid_arg "Feed.create: negative reorder_window";
  match cfg.overload_budget with
  | Some b when b < 1 -> invalid_arg "Feed.create: overload_budget < 1"
  | Some _ | None -> ()

let make cfg engine =
  {
    cfg;
    engine;
    buffer = Util.Heap.create Post.compare_by_value;
    seen = Hashtbl.create 256;
    watermark = neg_infinity;
    high = neg_infinity;
    c_accepted = 0;
    c_released = 0;
    c_reordered = 0;
    c_late_dropped = 0;
    c_late_clamped = 0;
    c_duplicate_dropped = 0;
    c_non_finite_dropped = 0;
    c_non_finite_clamped = 0;
    c_rejected = 0;
    c_shed = 0;
  }

let create ?(config = default_config) ?(window = false) ~lambda mode =
  validate_config config;
  let w = if window then Some (Window_index.create (Coverage.Fixed lambda)) else None in
  make config (Online.create ?window:w ~lambda mode)

let window t = Online.window t.engine

let counters t =
  {
    accepted = t.c_accepted;
    released = t.c_released;
    reordered = t.c_reordered;
    late_dropped = t.c_late_dropped;
    late_clamped = t.c_late_clamped;
    duplicate_dropped = t.c_duplicate_dropped;
    non_finite_dropped = t.c_non_finite_dropped;
    non_finite_clamped = t.c_non_finite_clamped;
    rejected = t.c_rejected;
    degraded_labels = Online.degraded_count t.engine;
    shed = t.c_shed;
  }

let config t = t.cfg
let engine t = t.engine
let buffered t = Util.Heap.length t.buffer
let watermark t = if t.watermark = neg_infinity then None else Some t.watermark

let reject t ~id what =
  t.c_rejected <- t.c_rejected + 1;
  Util.Telemetry.incr m_rejected;
  raise (Rejected { id; what })

(* Demote labels until the live deadline count fits the budget. The count,
   not the raw heap length, is the signal: it is identical before and
   after a restore, which the bit-identical replay guarantee needs. *)
let rec shed_overload t acc =
  match t.cfg.overload_budget with
  | None -> acc
  | Some budget ->
    if Online.pending_labels t.engine <= budget then acc
    else begin
      let now =
        match Online.last_arrival t.engine with
        | Some v -> v
        | None -> neg_infinity
      in
      match Online.degrade_earliest t.engine ~now with
      | None -> acc
      | Some (_, shed, es) ->
        t.c_shed <- t.c_shed + shed;
        Util.Telemetry.add m_shed shed;
        shed_overload t (acc @ es)
    end

let release t post =
  let es = Online.push t.engine post in
  t.watermark <- post.Post.value;
  t.c_released <- t.c_released + 1;
  Util.Telemetry.incr m_released;
  es

let drain_over t limit =
  let rec loop acc =
    if Util.Heap.length t.buffer <= limit then acc
    else
      match Util.Heap.pop t.buffer with
      | None -> acc
      | Some p -> loop (acc @ release t p)
  in
  let acc = loop [] in
  Util.Telemetry.set m_buffer_depth (Util.Heap.length t.buffer);
  shed_overload t acc

let push t post =
  let id = post.Post.id in
  let value = post.Post.value in
  (* 1. Non-finite timestamps (includes NaN smuggled past Post.make via a
     record update). *)
  let post, value =
    if Float.is_finite value then (post, value)
    else begin
      match t.cfg.non_finite with
      | Raise -> reject t ~id (Printf.sprintf "non-finite timestamp %h" value)
      | Drop ->
        t.c_non_finite_dropped <- t.c_non_finite_dropped + 1;
        Util.Telemetry.incr m_non_finite_dropped;
        raise_notrace Exit
      | Clamp ->
        let v = if t.watermark = neg_infinity then 0. else t.watermark in
        t.c_non_finite_clamped <- t.c_non_finite_clamped + 1;
        Util.Telemetry.incr m_non_finite_clamped;
        ({ post with Post.value = v }, v)
    end
  in
  (* 2. Duplicates: an id the frontend already admitted. *)
  if Hashtbl.mem t.seen id then begin
    match t.cfg.duplicate with
    | Raise -> reject t ~id "duplicate id"
    | Drop | Clamp ->
      t.c_duplicate_dropped <- t.c_duplicate_dropped + 1;
      Util.Telemetry.incr m_duplicate_dropped;
      raise_notrace Exit
  end;
  (* 3. Late: older than the release watermark — beyond what the reorder
     buffer can absorb. *)
  let post, value =
    if value >= t.watermark then (post, value)
    else begin
      match t.cfg.late with
      | Raise ->
        reject t ~id
          (Printf.sprintf "late arrival: %g behind watermark %g" value t.watermark)
      | Drop ->
        t.c_late_dropped <- t.c_late_dropped + 1;
        Util.Telemetry.incr m_late_dropped;
        raise_notrace Exit
      | Clamp ->
        t.c_late_clamped <- t.c_late_clamped + 1;
        Util.Telemetry.incr m_late_clamped;
        ({ post with Post.value = t.watermark }, t.watermark)
    end
  in
  Hashtbl.replace t.seen id ();
  t.c_accepted <- t.c_accepted + 1;
  Util.Telemetry.incr m_accepted;
  if value < t.high then begin
    t.c_reordered <- t.c_reordered + 1;
    Util.Telemetry.incr m_reordered
  end
  else t.high <- value;
  Util.Heap.push t.buffer post;
  Util.Telemetry.set m_buffer_depth (Util.Heap.length t.buffer);
  (post, drain_over t t.cfg.reorder_window)

type outcome = { admitted : Post.t option; emissions : Online.emission list }

let push t post =
  match push t post with
  | admitted, emissions -> { admitted = Some admitted; emissions }
  | exception Exit -> { admitted = None; emissions = [] }

let finish t =
  let es = drain_over t 0 in
  es @ Online.finish t.engine

(* ------------------------------------------------------------------ *)
(* Checkpoint codec: line-oriented text, magic + version header, IEEE
   bit-pattern floats, FNV-1a-64 checksum trailer.                     *)

let magic = "mqdp-feed-checkpoint"
let version = 2

let fnv64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) prime) s;
  !h

let hex_of_float f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let policy_name = function Drop -> "drop" | Clamp -> "clamp" | Raise -> "raise"

let post_fields p =
  let labels = Label_set.to_list p.Post.labels in
  Printf.sprintf "%d %s %s" p.Post.id (hex_of_float p.Post.value)
    (if labels = [] then "-" else String.concat "," (List.map string_of_int labels))

let checkpoint t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s v%d" magic version;
  line "config %d %s %s %s %s" t.cfg.reorder_window (policy_name t.cfg.late)
    (policy_name t.cfg.duplicate) (policy_name t.cfg.non_finite)
    (match t.cfg.overload_budget with None -> "none" | Some n -> string_of_int n);
  line "counters %d %d %d %d %d %d %d %d %d %d" t.c_accepted t.c_released t.c_reordered
    t.c_late_dropped t.c_late_clamped t.c_duplicate_dropped t.c_non_finite_dropped
    t.c_non_finite_clamped t.c_rejected t.c_shed;
  line "watermark %s %s" (hex_of_float t.watermark) (hex_of_float t.high);
  let seen = Hashtbl.fold (fun id () acc -> id :: acc) t.seen [] |> List.sort Int.compare in
  line "seen %d %s" (List.length seen) (String.concat " " (List.map string_of_int seen));
  let staged = Util.Heap.to_list t.buffer |> List.sort Post.compare_by_value in
  line "buffer %d" (List.length staged);
  List.iter (fun p -> line "p %s" (post_fields p)) staged;
  let s = Online.export t.engine in
  line "engine %s %s" (hex_of_float s.Online.snap_lambda)
    (match s.Online.snap_mode with
    | Online.Instant -> "instant"
    | Online.Delayed { tau; plus } ->
      Printf.sprintf "delayed %s %d" (hex_of_float tau) (if plus then 1 else 0));
  line "last %s"
    (match s.Online.snap_last_time with None -> "none" | Some v -> hex_of_float v);
  line "emitted %d %s"
    (List.length s.Online.snap_emitted)
    (String.concat " " (List.map string_of_int s.Online.snap_emitted));
  line "degraded %d %s"
    (List.length s.Online.snap_degraded)
    (String.concat " " (List.map string_of_int s.Online.snap_degraded));
  line "labels %d" (List.length s.Online.snap_labels);
  List.iter
    (fun ls ->
      line "label %d %d" ls.Online.snap_label (List.length ls.Online.snap_pending);
      (match ls.Online.snap_last_out with
      | None -> line "last none"
      | Some p -> line "last %s" (post_fields p));
      List.iter (fun p -> line "p %s" (post_fields p)) ls.Online.snap_pending)
    s.Online.snap_labels;
  (match Online.window t.engine with
  | None -> line "window none"
  | Some w ->
    let ws = Window_index.export w in
    line "window %d %d %d %s %d" ws.Window_index.snap_expired
      (List.length ws.Window_index.snap_posts)
      (if ws.Window_index.snap_guarded then 1 else 0)
      (hex_of_float ws.Window_index.snap_guard_value)
      ws.Window_index.snap_guard_id;
    List.iter (fun p -> line "p %s" (post_fields p)) ws.Window_index.snap_posts);
  let body = Buffer.contents b in
  Printf.sprintf "%schecksum %016Lx\n" body (fnv64 body)

(* --- parsing --- *)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let float_of_hex s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some bits when String.length s = 16 -> Int64.float_of_bits bits
  | Some _ | None -> corrupt "bad float bit pattern %S" s

let int_field what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> corrupt "bad integer %S in %s" s what

let policy_of_name = function
  | "drop" -> Drop
  | "clamp" -> Clamp
  | "raise" -> Raise
  | s -> corrupt "unknown policy %S" s

let post_of_fields = function
  | [ id; value; labels ] ->
    let labels =
      if labels = "-" then []
      else List.map (int_field "labels") (String.split_on_char ',' labels)
    in
    if List.exists (fun a -> a < 0) labels then corrupt "negative label in post";
    let value = float_of_hex value in
    (* Admitted posts always carry finite timestamps (the non-finite
       policy ran before admission), so anything else is corruption. *)
    if not (Float.is_finite value) then corrupt "non-finite post timestamp";
    Post.make ~id:(int_field "post id" id) ~value ~labels:(Label_set.of_list labels)
  | fields -> corrupt "bad post line with %d fields" (List.length fields)

type cursor = { lines : string array; mutable at : int }

let next cur =
  if cur.at >= Array.length cur.lines then corrupt "truncated checkpoint";
  let l = cur.lines.(cur.at) in
  cur.at <- cur.at + 1;
  l

let expect cur key =
  match String.split_on_char ' ' (next cur) with
  | k :: rest when k = key -> rest
  | k :: _ -> corrupt "expected %S line, found %S" key k
  | [] -> corrupt "expected %S line, found an empty line" key

let int_list what n fields =
  if List.length fields < n then corrupt "truncated %s list" what
  else List.filteri (fun i _ -> i < n) fields |> List.map (int_field what)

let restore text =
  (* Split off and verify the checksum trailer first: everything else is
     only trusted once the body hashes correctly. *)
  let body, sum =
    match String.rindex_opt (String.trim text) '\n' with
    | None -> corrupt "not a checkpoint (single line)"
    | Some i ->
      let trimmed = String.trim text in
      (String.sub trimmed 0 (i + 1), String.sub trimmed (i + 1) (String.length trimmed - i - 1))
  in
  (match String.split_on_char ' ' sum with
  | [ "checksum"; hex ] ->
    if Printf.sprintf "%016Lx" (fnv64 body) <> hex then corrupt "checksum mismatch"
  | _ -> corrupt "missing checksum trailer");
  let cur = { lines = Array.of_list (String.split_on_char '\n' (String.trim body)); at = 0 } in
  (match String.split_on_char ' ' (next cur) with
  | [ m; v ] when m = magic ->
    (* A wrong version on an otherwise intact checkpoint (checksum and
       magic already validated) is not corruption — it is a format
       mismatch the caller may want to handle (migrate, warn, refuse)
       distinctly, hence the typed exception. *)
    if v <> Printf.sprintf "v%d" version then
      raise (Unsupported_version { found = v; expected = version })
  | _ -> corrupt "bad magic");
  let cfg =
    match expect cur "config" with
    | [ window; late; dup; nonfinite; budget ] ->
      {
        reorder_window = int_field "reorder_window" window;
        late = policy_of_name late;
        duplicate = policy_of_name dup;
        non_finite = policy_of_name nonfinite;
        overload_budget =
          (if budget = "none" then None else Some (int_field "overload_budget" budget));
      }
    | _ -> corrupt "bad config line"
  in
  (try validate_config cfg with Invalid_argument m -> corrupt "%s" m);
  let cnt =
    match List.map (int_field "counters") (expect cur "counters") with
    | [ _; _; _; _; _; _; _; _; _; _ ] as l -> Array.of_list l
    | _ -> corrupt "bad counters line"
  in
  let watermark, high =
    match expect cur "watermark" with
    | [ w; h ] -> (float_of_hex w, float_of_hex h)
    | _ -> corrupt "bad watermark line"
  in
  let seen =
    match expect cur "seen" with
    | n :: rest -> int_list "seen" (int_field "seen count" n) rest
    | [] -> corrupt "bad seen line"
  in
  let staged =
    match expect cur "buffer" with
    | [ n ] -> List.init (int_field "buffer count" n) (fun _ -> post_of_fields (expect cur "p"))
    | _ -> corrupt "bad buffer line"
  in
  let lambda, mode =
    match expect cur "engine" with
    | [ lambda; "instant" ] -> (float_of_hex lambda, Online.Instant)
    | [ lambda; "delayed"; tau; plus ] ->
      ( float_of_hex lambda,
        Online.Delayed
          {
            tau = float_of_hex tau;
            plus =
              (match plus with
              | "0" -> false
              | "1" -> true
              | s -> corrupt "bad plus flag %S" s);
          } )
    | _ -> corrupt "bad engine line"
  in
  let last_time =
    match expect cur "last" with
    | [ "none" ] -> None
    | [ v ] -> Some (float_of_hex v)
    | _ -> corrupt "bad last line"
  in
  let emitted =
    match expect cur "emitted" with
    | n :: rest -> int_list "emitted" (int_field "emitted count" n) rest
    | [] -> corrupt "bad emitted line"
  in
  let degraded =
    match expect cur "degraded" with
    | n :: rest -> int_list "degraded" (int_field "degraded count" n) rest
    | [] -> corrupt "bad degraded line"
  in
  let num_labels =
    match expect cur "labels" with
    | [ n ] -> int_field "labels count" n
    | _ -> corrupt "bad labels line"
  in
  let snap_labels =
    List.init num_labels (fun _ ->
        let label, pending_count =
          match expect cur "label" with
          | [ a; k ] -> (int_field "label" a, int_field "pending count" k)
          | _ -> corrupt "bad label line"
        in
        let last_out =
          match expect cur "last" with
          | [ "none" ] -> None
          | fields -> Some (post_of_fields fields)
        in
        let pending = List.init pending_count (fun _ -> post_of_fields (expect cur "p")) in
        { Online.snap_label = label; snap_pending = pending; snap_last_out = last_out })
  in
  let window =
    match expect cur "window" with
    | [ "none" ] -> None
    | [ expired; count; guarded; guardv; guardid ] ->
      let posts =
        List.init (int_field "window post count" count) (fun _ ->
            post_of_fields (expect cur "p"))
      in
      let snap =
        {
          Window_index.snap_expired = int_field "window expired" expired;
          snap_posts = posts;
          snap_guard_value = float_of_hex guardv;
          snap_guard_id = int_field "window guard id" guardid;
          snap_guarded =
            (match guarded with
            | "0" -> false
            | "1" -> true
            | s -> corrupt "bad window guard flag %S" s);
        }
      in
      (try Some (Window_index.import (Coverage.Fixed lambda) snap)
       with Invalid_argument m -> corrupt "%s" m)
    | _ -> corrupt "bad window line"
  in
  if cur.at <> Array.length cur.lines then corrupt "trailing garbage after window table";
  let snapshot =
    {
      Online.snap_lambda = lambda;
      snap_mode = mode;
      snap_last_time = last_time;
      snap_emitted = emitted;
      snap_degraded = degraded;
      snap_labels;
    }
  in
  let engine =
    try Online.import ?window snapshot with Invalid_argument m -> corrupt "%s" m
  in
  let t = make cfg engine in
  t.watermark <- watermark;
  t.high <- high;
  List.iter (fun id -> Hashtbl.replace t.seen id ()) seen;
  List.iter (fun p -> Util.Heap.push t.buffer p) staged;
  t.c_accepted <- cnt.(0);
  t.c_released <- cnt.(1);
  t.c_reordered <- cnt.(2);
  t.c_late_dropped <- cnt.(3);
  t.c_late_clamped <- cnt.(4);
  t.c_duplicate_dropped <- cnt.(5);
  t.c_non_finite_dropped <- cnt.(6);
  t.c_non_finite_clamped <- cnt.(7);
  t.c_rejected <- cnt.(8);
  t.c_shed <- cnt.(9);
  t

(* Crash-safe: temp + fsync + rename, so a process killed mid-write can
   tear only the ignored temp sibling, never the checkpoint itself. *)
let save_checkpoint ~path t = Util.Fs.atomic_write ~path (checkpoint t)

let load_checkpoint path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> restore (really_input_string ic (in_channel_length ic)))
