(** A sliding-window coverage geometry: the incremental, mutable
    counterpart of {!Pair_index}, built for the streaming layer.

    Where {!Pair_index} compiles a whole instance once and is immutable,
    a [Window_index] ingests a stream one post at a time ([push]) and
    sheds its expired prefix ([expire_before] / [expire_posts]) with
    amortized-O(1) updates per slot. All per-post and per-(post, label)
    state lives in flat off-heap arrays ({!Util.Flat} on [Bigarray]):
    the GC never scans the window, steady-state maintenance allocates no
    OCaml-heap bytes, and the buffers can be read from {!Util.Pool}
    domains under the publish-then-read discipline.

    {2 Addressing}

    Every post has a global {e arrival sequence number}: the [i]-th
    successful [push] is post [i], forever — expiry never renumbers.
    The live window is the contiguous range [[expired t, total t)];
    window position [w] is arrival [expired t + w]. When the stream is
    (a prefix of) an {!Instance}'s posts in order, arrival numbers and
    instance positions coincide, which is what makes windowed covers
    directly comparable to offline ones.

    {2 Equivalence contract}

    For any interleaving of pushes and expiries, solving the live window
    (see {!Greedy_sc.solve_window}) is bit-identical to compiling a fresh
    {!Pair_index} over [Instance.create (live posts)] and solving that —
    same pair numbering (label-major, value-ordered), same coverer sets,
    same tie rules. Enforced by qcheck ([test/test_window_index.ml]) and
    the fuzzer ([mqdp_fuzz --window]). The contract assumes every pushed
    post carries at least one label (as {!Instance.create} drops
    unlabeled posts, which would shift positions) and, under a
    [Per_post_label] λ, that the radius function is pure.

    {2 Emission reach}

    The window carries one float per label — the right extent of the
    last/furthest emission serving that label — so streaming consumers
    ({!Online}, {!Stream_greedy}) answer "is this arrival already
    covered?" with one array read instead of a hash lookup. Two update
    disciplines coexist: {!set_emit_reach} assigns (mirroring
    {!Online}'s last-output semantics, where a later emission can have a
    {e smaller} reach), {!note_emission} takes the max (the marked-pair
    semantics of {!Stream_greedy}, where coverage is permanent). A
    window serves one discipline at a time. *)

type t

(** [create lambda] — an empty window over coverage mode [lambda]. *)
val create : Coverage.lambda -> t

val lambda : t -> Coverage.lambda

(** {1 The sliding window} *)

(** [push t post] ingests an arrival. Arrivals must be strictly
    increasing by {!Post.compare_by_value} (equal values are fine when
    ids ascend). Raises [Invalid_argument] on an out-of-order or
    non-finite arrival, a negative label, or a negative coverage
    radius. Amortized cost: O(log |LP(a)|) per label of the post. *)
val push : t -> Post.t -> unit

(** [try_push t post] is [push] except that an out-of-order arrival is
    skipped and reported as [false] instead of raising — the tolerant
    entry point for {!Online} mirrors fed by clamping frontends. The
    other validation failures still raise. *)
val try_push : t -> Post.t -> bool

(** [expire_before t ~time] drops every post with value < [time] (the
    window keeps [value >= time], matching [Instance.sub ~lo:time]).
    Amortized O(1) per dropped slot, including storage compaction. *)
val expire_before : t -> time:float -> unit

(** [expire_posts t k] drops the [k] oldest posts — the exact-boundary
    variant {!Stream_greedy} needs when equal values straddle a window
    edge. Raises [Invalid_argument] when [k] exceeds the live size. *)
val expire_posts : t -> int -> unit

(** Number of live posts. *)
val size : t -> int

(** Number of posts expired so far = the arrival number of the window
    head. *)
val expired : t -> int

(** Total posts ever pushed; [size t = total t - expired t]. *)
val total : t -> int

(** Live (post, label) pairs — the solve universe of the current
    window. *)
val live_pairs : t -> int

(** [value t w] / [id t w] — value and external id of the post at
    window position [w]. Raise [Invalid_argument] out of range. *)
val value : t -> int -> float

val id : t -> int -> int

(** [post t w] reconstructs the post at window position [w]
    (allocates; for export paths, not solve loops). *)
val post : t -> int -> Post.t

(** [find_position t post] — the {e arrival number} of a live post equal
    to [post] under {!Post.compare_by_value}, or -1 when absent.
    O(log size). *)
val find_position : t -> Post.t -> int

(** [to_instance t] materializes the live window as a fresh instance —
    the bridge to offline solvers (allocates O(size)). *)
val to_instance : t -> Instance.t

(** {1 Marks and emission reach} *)

(** [fully_covered t w] — are all of post [w]'s own pairs marked?
    Marks are set by the streaming greedy's pick kernel and, at push
    time, by comparing the arrival against {!emit_reach} (an arrival
    within the recorded reach of its label's last emission is born
    covered). *)
val fully_covered : t -> int -> bool

(** [emit_reach t a] — the recorded emission reach for label [a];
    [neg_infinity] when the label has never been served. *)
val emit_reach : t -> Label.t -> float

(** [set_emit_reach t a r] assigns label [a]'s reach (the {!Online}
    discipline: tracks the latest output, not the furthest). *)
val set_emit_reach : t -> Label.t -> float -> unit

(** [note_emission t post] raises the reach of each of [post]'s labels
    to [Coverage.reach lambda post a] (the {!Stream_greedy} discipline:
    coverage is permanent, so the max is the truth). *)
val note_emission : t -> Post.t -> unit

(** {1 Solving}

    The windowed greedy lives in {!Greedy_sc.solve_window}; this module
    only exposes the geometry kernels it drives. A [solver] is the
    reusable off-heap scratch (pair tables, coverer ranges or CSR rows,
    covered bits): create one, reuse it across every solve of every
    window, and the steady state allocates nothing. *)

type solver

val solver : unit -> solver

(** [begin_solve t sv ~marked ~gain] snapshots the live window's pair
    geometry into [sv] and writes each window position's initial gain
    into [gain.(0 .. size t - 1)]: the number of live pairs the post
    covers, excluding already-marked pairs when [marked] is set. With
    [marked = false] the solve is pristine — covered state lives in
    per-solve scratch bits and the result is the equivalence-contract
    cover; with [marked = true] the persistent marks are both the
    starting state and the place picks are recorded (the streaming
    greedy). The snapshot is valid until the next [push] or expiry.
    Raises [Invalid_argument] when [gain] is shorter than [size t]. *)
val begin_solve : t -> solver -> marked:bool -> gain:int array -> unit

(** [apply_pick t sv ~gain ~dirty ~touched w] commits window position
    [w] as a greedy pick — the windowed twin of
    {!Pair_index.apply_pick}, same caller contract: marks every pair
    [w] covers, decrements the coverers' gains for each pair newly
    marked, records touched positions deduplicated via [dirty] (given
    and returned all-zero), and returns how many were touched. Buffers
    must hold at least [size t] entries. Allocates nothing. *)
val apply_pick :
  t -> solver -> gain:int array -> dirty:Bytes.t -> touched:int array -> int -> int

(** {1 Checkpointing} *)

type snapshot = {
  snap_expired : int;  (** arrival number of the window head *)
  snap_posts : Post.t list;  (** live posts, ascending *)
  snap_guard_value : float;  (** last admitted (value, id), for the *)
  snap_guard_id : int;  (** ordering guard across empty windows *)
  snap_guarded : bool;  (** whether any post was ever admitted *)
}

(** [export t] captures the window's post content. Marks and emission
    reaches are {e not} captured: {!Online} re-derives reaches from its
    own snapshot on import, and the marked-pair consumer
    ({!Stream_greedy}) is a batch simulation that never checkpoints. *)
val export : t -> snapshot

(** [import lambda s] rebuilds a window: re-pushes the live posts (so
    arrival numbers resume at [snap_expired]) and restores the ordering
    guard. Raises [Invalid_argument] on posts out of order. *)
val import : Coverage.lambda -> snapshot -> t
