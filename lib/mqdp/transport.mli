(** Sans-IO per-connection state machine for the serving transport.

    One {!t} per client connection. The driver (the [select] event loop in
    [lib/net], the chaos simulator in [mqdp_fuzz --transport], or a unit
    test) owns the socket; this module owns every policy decision a
    hostile client can probe:

    - {b bounded line framing} — requests are newline-terminated lines
      (CRLF tolerated). A line that exceeds [max_line] bytes without a
      newline is rejected: the connection gets one transport-level
      [0 ERR line-too-long] response (sequence number [0] — the garbage
      line never yielded one) and closes. Partial reads are the normal
      case: bytes accumulate via {!feed} until a newline completes a
      request.
    - {b slowloris defense} — the idle deadline arms at creation and
      re-arms only when a {e complete} request is consumed. Trickling one
      byte per second never resets it; {!next} reports
      [Close Idle_timeout] once [now] passes the deadline.
    - {b bounded output with backpressure} — responses queue in an output
      buffer the driver flushes as the socket allows. {!output_length}
      lets the loop stop reading from a client that stops reading from
      us; if the queue nevertheless exceeds [max_pending_out] the
      connection is condemned ([Close Output_overflow]).
    - {b graceful drain} — {!begin_drain} stops request intake after the
      already-buffered complete lines: they still execute and their
      responses still flush, then the connection reports
      [Close Drained]. Partial trailing bytes are abandoned (they never
      formed a request, so nothing acknowledged is lost).

    The driver contract: push socket bytes in with {!feed} / {!feed_eof},
    then call {!next} until it returns [Wait] or [Close] — executing each
    [Request] against the engine and queueing the reply via {!respond} —
    and flush {!output} as writability allows, acknowledging with
    {!wrote}. On [Close r], flush what {!output} still holds
    (best-effort), then close the socket. *)

type config = {
  max_line : int;  (** request-framing cap, bytes, newline excluded *)
  max_pending_out : int;  (** output-queue bound before the connection is condemned *)
  idle_timeout : float option;  (** seconds between completed requests *)
}

(** 8 KiB lines, 1 MiB output bound, 30 s idle timeout. *)
val default_config : config

type close_reason =
  | Eof  (** peer closed cleanly; buffered requests were still served *)
  | Line_too_long  (** framing cap exceeded — hostile or broken client *)
  | Idle_timeout  (** no completed request within [idle_timeout] *)
  | Output_overflow  (** peer stopped reading; output bound exceeded *)
  | Drained  (** graceful shutdown completed for this connection *)

val close_reason_string : close_reason -> string

type step =
  | Request of string  (** a complete line, CR/LF stripped — execute it *)
  | Wait  (** nothing runnable; wait for IO or the idle deadline *)
  | Close of close_reason  (** flush remaining output, then close *)

type t

(** [create ~now ()] — a fresh connection observed at monotonic time
    [now] (seconds; any monotone clock, the fuzzer uses a virtual one).
    Raises [Invalid_argument] on a non-positive [max_line] or
    [max_pending_out], or a non-positive [idle_timeout]. *)
val create : ?config:config -> now:float -> unit -> t

val config : t -> config

(** Push bytes read from the socket. Bytes arriving after a condemning
    fault or {!feed_eof} are ignored. *)
val feed : t -> Bytes.t -> pos:int -> len:int -> unit

(** Convenience for tests and the simulator. *)
val feed_string : t -> string -> unit

(** The peer will send no more bytes (orderly EOF). *)
val feed_eof : t -> unit

(** Drive the state machine. [Request] pops exactly one framed line;
    callers loop until [Wait] or [Close]. *)
val next : t -> now:float -> step

(** Queue response lines (newline appended to each). *)
val respond : t -> string list -> unit

(** Stop accepting new requests; serve what is already framed, flush, and
    report [Close Drained]. Idempotent. *)
val begin_drain : t -> unit

val draining : t -> bool

(** Pending output as a contiguous view, or [None] when flushed. *)
val output : t -> (Bytes.t * int * int) option

(** Acknowledge [n] bytes written to the socket. *)
val wrote : t -> int -> unit

val output_length : t -> int
val has_output : t -> bool

(** The absolute time at which {!next} will report [Close Idle_timeout],
    when an idle timeout is configured — the event loop's select
    deadline. *)
val idle_deadline : t -> float option

(** Bytes of input currently buffered (diagnostics). *)
val input_length : t -> int

(** {2 Session binding}

    [HELLO <id>] is handled at the transport level (no sequence number):
    it rebinds a connection to the named {!Serve.session} [id]. The
    greeting answers with the session's sequence watermark so a client
    that reconnects — possibly to a freshly restarted daemon that
    recovered the session from its journal — can resume numbering above
    every sequence the session has already executed. *)

type hello =
  | Not_hello  (** an ordinary [<seq> VERB] request *)
  | Hello_empty  (** [HELLO] with a blank id — answer [0 ERR parse] *)
  | Hello of string

(** Classify one framed request line. *)
val parse_hello : string -> hello

(** [hello_greeting ~id ~seq] — the [0 OK hello <id> seq=<seq>] greeting
    for a session whose watermark is [seq]. *)
val hello_greeting : id:string -> seq:int -> string
