(** One serving tenant: a named subscription (label set) owning a
    {!Feed}-fronted {!Online} engine, with write-ahead acknowledgment,
    periodic checkpoints, and crash recovery that never loses an
    acknowledged post.

    The durability contract is the heart of the serving layer:

    - {!offer} {e acknowledges} a post by appending it to the profile's
      pending journal — a plain queue that no crash path ever touches;
    - {!process} applies pending posts to the live feed one at a time.
      A caller-supplied [chaos] hook runs {e before} each application, so
      an injected crash can only fire between posts — the feed is never
      torn mid-push;
    - any exception out of the application step counts as a {e crash}:
      the live feed is discarded, the last checkpoint is restored, and
      the journal of posts applied since that checkpoint is replayed
      (chaos-free). {!Feed}'s bit-identical replay guarantee makes the
      regenerated emissions — sequence numbers included — exactly the
      ones the dead incarnation produced, so nothing already reported is
      re-reported and nothing unreported is lost;
    - after [max_restarts] recoveries the profile is {e quarantined}:
      it stops processing (pending posts keep accumulating and remain
      durable) until {!revive}.

    Emissions carry monotone per-profile sequence numbers. {!take_report}
    hands over everything unreported (ascending) and advances the
    reported watermark; recovery uses the watermark to drop emissions the
    client already saw.

    {!blob}/{!of_blob} serialize the durable state only — checkpoint,
    journal, pending queue, watermarks, counters. [of_blob] rebuilds the
    live feed through the same recovery path a crash uses, which is what
    lets a shard restart simulate (and survive) process death. *)

type config = {
  lambda : float;
  mode : Online.mode;
  feed : Feed.config;
  window : bool;  (** mirror the stream into a {!Window_index} (QUERY) *)
  checkpoint_every : int;
      (** refresh the checkpoint after this many applied posts;
          0 = only on {!checkpoint_now}/{!drain} *)
  max_restarts : int;  (** recoveries before quarantine *)
}

(** λ 60, [Delayed {tau = 30; plus = false}], default feed config, window
    on, checkpoint every 64 posts, 3 restarts. *)
val default_config : config

type t

(** [create ~name ~subscription config] — a fresh, empty profile.
    Raises [Invalid_argument] on an empty name, an empty subscription,
    a negative [checkpoint_every]/[max_restarts], or invalid engine
    parameters. *)
val create : name:string -> subscription:Label_set.t -> config -> t

val name : t -> string
val subscription : t -> Label_set.t
val config : t -> config

(** Admission-degraded profiles (forced [Instant], no window) are marked
    so reports and stats can tell them apart. *)
val degraded : t -> bool

val mark_degraded : t -> unit
val quarantined : t -> bool

(** Recoveries performed so far (0 after {!revive}). *)
val crashes : t -> int

(** Posts acknowledged but not yet applied. *)
val pending : t -> int

(** Emissions generated but not yet handed to {!take_report}. *)
val unreported : t -> int

(** Total posts acknowledged ({!offer}) over the profile's lifetime. *)
val acked : t -> int

(** Total posts applied to the feed (≤ {!acked}). *)
val applied : t -> int

(** Posts consumed by a [Raise]-policy rejection (counted, not retried). *)
val rejected : t -> int

(** [offer t post] acknowledges [post]: once this returns, no crash or
    restart may lose the post's emissions. Raises [Invalid_argument] when
    the profile is quarantined — callers gate on {!quarantined}. *)
val offer : t -> Post.t -> unit

(** [process ?chaos ?budget t] applies pending posts in order. [chaos]
    runs before each application; any exception it (or the feed) raises
    triggers checkpoint recovery, after which the same post is re-applied
    chaos-free — guaranteed progress. {!Util.Budget.step} is charged per
    post; {!Util.Budget.Exhausted} stops cleanly with the remainder still
    pending (backpressure, not failure) and does not count as a crash.
    Returns the number of posts applied. A profile that hits its restart
    limit mid-call quarantines and returns early. *)
val process : ?chaos:(unit -> unit) -> ?budget:Util.Budget.t -> t -> int

(** [take_report t] — every unreported emission as [(seq, emission)]
    pairs, ascending by [seq]; advances the reported watermark and clears
    the buffer. *)
val take_report : t -> (int * Online.emission) list

(** [drain t] — {!Feed.finish} the live feed (draining pending deadlines
    into the report buffer) and refresh the checkpoint. The refresh is
    mandatory: finish emissions are not regenerable by journal replay, so
    they must be baked into the checkpoint to stay durable. *)
val drain : t -> unit

(** Refresh the checkpoint to the current live state (journal resets). *)
val checkpoint_now : t -> unit

(** [revive t] — un-quarantine: rebuild the live feed from the
    checkpoint + journal (the recovery path), zero the crash counter.
    No-op when not quarantined. *)
val revive : t -> unit

(** The live window, when the profile was created with [window = true]
    (and not degraded). *)
val window : t -> Window_index.t option

(** The per-profile circuit breaker, shared across every {!Supervisor}
    solve issued on this profile's behalf. *)
val breaker : t -> Supervisor.Breaker.t

(** {2 Durable serialization} *)

(** The profile's durable state as a single string (line-oriented,
    checksummed by the shard snapshot around it). *)
val blob : t -> string

(** Rebuild from {!blob} via the recovery path. Raises {!Feed.Corrupt}
    on a damaged blob. *)
val of_blob : string -> t
