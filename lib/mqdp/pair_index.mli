(** A compiled, immutable index of the (post, label) pair geometry that
    every MQDP solver reasons over.

    Built once per (instance, λ), the index assigns each (post, label) pair
    a dense global id and stores, in flat [int]/[float] arrays:

    - per-label pair offsets: the pairs of label [a] occupy the contiguous
      id block [\[label_base a, label_base a + label_size a)], in LP(a)
      order (hence sorted by value) — pair [(a, ia)] has id
      [label_base a + ia];
    - each pair's position, value, and [reach] (the right extent of its own
      post's coverage interval for that label);
    - each pair's coverer set — the posts that λ-cover it. Under a fixed λ
      this is a [(first, last)] range of pair ids within the same label
      block; under a per-post λ it is a CSR-flattened array of positions;
    - the reverse map post → pairs-it-covers, as one contiguous pair-id
      range per (post, label) slot, plus post → its own pairs;
    - for a per-post λ, the precomputed best pick per pair: the coverer
      whose interval reaches furthest right (smallest LP index on ties),
      computed by a left-endpoint sweep with a max-reach heap in
      O(|LP(a)| log |LP(a)|) — no linear scans.

    All ids are dense and label-major, matching the set-cover universe
    numbering used by {!Brute_force}. Construction fans out per label (and
    per post for the reverse map) over {!Util.Pool}; every worker writes
    only its own slots, so the index is bit-identical for any pool size. *)

type t

(** [build ?pool ?budget ?coverers instance lambda] compiles the index.
    [coverers] (default [true]) controls whether per-pair coverer sets are
    materialized: the scan family only needs best picks and reaches, so it
    builds with [~coverers:false]; the greedy/set-cover family needs the
    full sets. Under a fixed λ coverer ranges cost two ints per pair; under
    a per-post λ the CSR rows cost one int per (pair, coverer) incidence.

    [budget] (default unlimited) is polled once per label (cost |LP(a)|
    steps) and once per post; on exhaustion the build raises
    {!Interrupt.Budget_exceeded} with no salvage — half-built indexes are
    never returned. Inside a pool, cancellation also skips
    queued-but-unstarted chunks. *)
val build :
  ?pool:Util.Pool.t ->
  ?budget:Util.Budget.t ->
  ?coverers:bool ->
  Instance.t ->
  Coverage.lambda ->
  t

val instance : t -> Instance.t
val lambda : t -> Coverage.lambda

(** Number of (post, label) pairs — the set-cover universe size. *)
val total_pairs : t -> int

(** [label_base t a] is the id of the first pair of label [a]
    ([total_pairs t] when [a] has no pairs). *)
val label_base : t -> Label.t -> int

(** [label_size t a] is |LP(a)|. *)
val label_size : t -> Label.t -> int

(** [pair_pos t id] is the instance position of the pair's post. *)
val pair_pos : t -> int -> int

(** [pair_value t id] is the value of the pair's post. *)
val pair_value : t -> int -> float

(** [reach t id] is the right extent of the pair's own post's coverage
    interval for the pair's label. *)
val reach : t -> int -> float

(** [first_above t a x] is the smallest LP(a) index whose value exceeds
    [x], or [label_size t a] when none — the scan family's skip search. *)
val first_above : t -> Label.t -> float -> int

(** [best_coverer t a id] is the pair id (within label [a]'s block) of the
    coverer of pair [id] whose interval reaches furthest right — exactly
    the scan algorithms' pick.

    The tie rule differs by λ mode, and both directions are load-bearing
    (pinned by property tests and by the fuzzer's
    "StreamScan(τ > λ) ≡ offline Scan" invariant):

    - fixed λ: all intervals have the same radius, so "furthest reach"
      means largest value; among coverers tied on value the {e largest}
      LP index wins (the pick is [upper_bound (x + λ) - 1]). This is
      what makes the offline pick agree with the {!Online} engine, which
      emits the {e newest} pending arrival at a deadline.
    - per-post λ: among coverers tied on reach the {e smallest} LP index
      wins (the left-endpoint sweep heap is keyed (reach desc, LP index
      asc)).

    Raises [Invalid_argument] when no coverer contains the pair's value
    (impossible for a nonnegative λ: a pair covers itself). *)
val best_coverer : t -> Label.t -> int -> int

(** [iter_coverers t id f] applies [f] to the position of every post that
    λ-covers pair [id], in ascending position order. Raises
    [Invalid_argument] when the index was built with [~coverers:false]
    under a per-post λ. *)
val iter_coverers : t -> int -> (int -> unit) -> unit

(** [iter_covered_ranges t k f] applies [f first last] for each label of
    post [k], where [\[first, last\]] is the inclusive pair-id range that
    [k] λ-covers in that label's block ([first > last] for an empty
    range). Labels are visited in ascending order. *)
val iter_covered_ranges : t -> int -> (int -> int -> unit) -> unit

(** [covered_count t k] is the number of pairs post [k] λ-covers — the
    greedy algorithm's initial gain. *)
val covered_count : t -> int -> int

(** [iter_own_pairs t k f] applies [f] to the ids of the pairs post [k]
    itself belongs to — one per label of [k], ascending. *)
val iter_own_pairs : t -> int -> (int -> unit) -> unit

(** {1 Solve-loop kernels}

    Fused, allocation-free forms of the walks the solvers do per pick.
    Both visit pair ids in ascending order (the post's per-label ranges
    are label-ascending over contiguous id blocks), which keeps the flag
    writes cache-local. *)

(** [apply_pick t ~covered ~gain ~dirty ~touched k] commits post [k] as a
    greedy pick: marks every pair [k] covers in [covered] (one byte per
    pair id, ['\000'] = uncovered) and, for each pair {e newly} marked,
    decrements [gain] at each of its coverers' positions. Positions whose
    gain changed are recorded once each (deduplicated via [dirty]) in
    [touched.(0 .. result - 1)]; the return value is their count.

    Caller contract: [covered] has at least [total_pairs t] bytes; [gain],
    [touched] at least [Instance.size] entries; [dirty] at least
    [Instance.size] bytes and all-zero — it is returned all-zero, being
    purely internal dedup scratch. Allocates nothing. Raises
    [Invalid_argument] when a buffer is too small or the index was built
    with [~coverers:false]. *)
val apply_pick :
  t ->
  covered:Bytes.t ->
  gain:int array ->
  dirty:Bytes.t ->
  touched:int array ->
  int ->
  int

(** [fill_covered t ~covered k] sets the covered byte of every pair post
    [k] covers — branchless [Bytes.fill] per (post, label) range — and
    returns the total range length (counting already-set bytes, matching
    the Scan+ marks accounting). Allocates nothing. *)
val fill_covered : t -> covered:Bytes.t -> int -> int
