(** A compiled, immutable index of the (post, label) pair geometry that
    every MQDP solver reasons over.

    Built once per (instance, λ), the index assigns each (post, label) pair
    a dense global id and stores, in flat [int]/[float] arrays:

    - per-label pair offsets: the pairs of label [a] occupy the contiguous
      id block [\[label_base a, label_base a + label_size a)], in LP(a)
      order (hence sorted by value) — pair [(a, ia)] has id
      [label_base a + ia];
    - each pair's position, value, and [reach] (the right extent of its own
      post's coverage interval for that label);
    - each pair's coverer set — the posts that λ-cover it. Under a fixed λ
      this is a [(first, last)] range of pair ids within the same label
      block; under a per-post λ it is a CSR-flattened array of positions;
    - the reverse map post → pairs-it-covers, as one contiguous pair-id
      range per (post, label) slot, plus post → its own pairs;
    - for a per-post λ, the precomputed best pick per pair: the coverer
      whose interval reaches furthest right (smallest LP index on ties),
      computed by a left-endpoint sweep with a max-reach heap in
      O(|LP(a)| log |LP(a)|) — no linear scans.

    All ids are dense and label-major, matching the set-cover universe
    numbering used by {!Brute_force}. Construction fans out per label (and
    per post for the reverse map) over {!Util.Pool}; every worker writes
    only its own slots, so the index is bit-identical for any pool size. *)

type t

(** [build ?pool ?budget ?coverers instance lambda] compiles the index.
    [coverers] (default [true]) controls whether per-pair coverer sets are
    materialized: the scan family only needs best picks and reaches, so it
    builds with [~coverers:false]; the greedy/set-cover family needs the
    full sets. Under a fixed λ coverer ranges cost two ints per pair; under
    a per-post λ the CSR rows cost one int per (pair, coverer) incidence.

    [budget] (default unlimited) is polled once per label (cost |LP(a)|
    steps) and once per post; on exhaustion the build raises
    {!Interrupt.Budget_exceeded} with no salvage — half-built indexes are
    never returned. Inside a pool, cancellation also skips
    queued-but-unstarted chunks. *)
val build :
  ?pool:Util.Pool.t ->
  ?budget:Util.Budget.t ->
  ?coverers:bool ->
  Instance.t ->
  Coverage.lambda ->
  t

val instance : t -> Instance.t
val lambda : t -> Coverage.lambda

(** Number of (post, label) pairs — the set-cover universe size. *)
val total_pairs : t -> int

(** [label_base t a] is the id of the first pair of label [a]
    ([total_pairs t] when [a] has no pairs). *)
val label_base : t -> Label.t -> int

(** [label_size t a] is |LP(a)|. *)
val label_size : t -> Label.t -> int

(** [pair_pos t id] is the instance position of the pair's post. *)
val pair_pos : t -> int -> int

(** [pair_value t id] is the value of the pair's post. *)
val pair_value : t -> int -> float

(** [reach t id] is the right extent of the pair's own post's coverage
    interval for the pair's label. *)
val reach : t -> int -> float

(** [first_above t a x] is the smallest LP(a) index whose value exceeds
    [x], or [label_size t a] when none — the scan family's skip search. *)
val first_above : t -> Label.t -> float -> int

(** [best_coverer t a id] is the pair id (within label [a]'s block) of the
    coverer of pair [id] whose interval reaches furthest right, breaking
    ties toward the smallest LP index — exactly the scan algorithms' pick.
    Raises [Invalid_argument] when no coverer contains the pair's value
    (impossible for a nonnegative λ: a pair covers itself). *)
val best_coverer : t -> Label.t -> int -> int

(** [iter_coverers t id f] applies [f] to the position of every post that
    λ-covers pair [id], in ascending position order. Raises
    [Invalid_argument] when the index was built with [~coverers:false]
    under a per-post λ. *)
val iter_coverers : t -> int -> (int -> unit) -> unit

(** [iter_covered_ranges t k f] applies [f first last] for each label of
    post [k], where [\[first, last\]] is the inclusive pair-id range that
    [k] λ-covers in that label's block ([first > last] for an empty
    range). Labels are visited in ascending order. *)
val iter_covered_ranges : t -> int -> (int -> int -> unit) -> unit

(** [covered_count t k] is the number of pairs post [k] λ-covers — the
    greedy algorithm's initial gain. *)
val covered_count : t -> int -> int

(** [iter_own_pairs t k f] applies [f] to the ids of the pairs post [k]
    itself belongs to — one per label of [k], ascending. *)
val iter_own_pairs : t -> int -> (int -> unit) -> unit
