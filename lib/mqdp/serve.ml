type config = {
  shards : int;
  jobs : int;
  max_profiles : int;
  degrade_above : int;
  queue_capacity : int;
  tick_steps : int option;
  request_deadline : float option;
  checkpoint_every : int;
  max_restarts : int;
  overload_budget : int option;
  seq_cache : int;
  max_sessions : int;
  session_ttl : float option;
}

let default_config =
  {
    shards = 4;
    jobs = 1;
    max_profiles = 16384;
    degrade_above = 12288;
    queue_capacity = 4096;
    tick_steps = None;
    request_deadline = None;
    checkpoint_every = 64;
    max_restarts = 3;
    overload_budget = None;
    seq_cache = 64;
    max_sessions = 4096;
    session_ttl = None;
  }

(* One record per live profile, shared between the name table and the
   label-inverted index so fan-out deduplication is one stamp compare.
   Aliveness is physical equality with the name table's entry — a DEL or
   re-ADD replaces the entry, and stale index references filter out
   lazily. *)
type entry = {
  e_name : string;
  e_shard : int;
  mutable e_stamp : int;
}

(* One sequence space: the watermark and the retried-response cache. The
   engine owns a default session (stdin, replay, legacy callers); the
   concurrent transport creates one per connection or per HELLO id.
   [s_id] is the durable identity: [Some ""] is the default session,
   [Some id] a named (HELLO) session — both are journaled when a journal
   is attached — and [None] an anonymous per-connection session that dies
   with the process by design. [s_touched] drives idle-TTL/LRU
   eviction. *)
type session = {
  mutable last_seq : int;
  s_cache : (int * string list) option array;
  s_id : string option;
  mutable s_touched : float;
}

type t = {
  config : config;
  pool : Util.Pool.t;
  shards : Shard.t array;
  names : (string, entry) Hashtbl.t;
  by_label : (Label.t, entry list ref) Hashtbl.t;
  mutable stamp : int;
  default_session : session;
  sessions : (string, session) Hashtbl.t;
  mutable chaos : (unit -> unit) option;
  mutable restarts : int;
  (* Durable session journal (DESIGN.md §21). [gsn] is the global
     sequence number of the last journaled command — monotone across
     compactions and restarts, never reset, so a manifest's covered
     watermark stays comparable forever. [journal_crash] is the one-shot
     crash-injection byte count consumed by the next append. *)
  mutable journal : Util.Fs.Journal.t option;
  mutable journal_fsync : bool;
  mutable gsn : int;
  mutable journal_crash : int option;
}

let m_acked = Util.Telemetry.counter "serve.acked"
let m_shed = Util.Telemetry.counter "serve.shed"
let m_applied = Util.Telemetry.counter "serve.applied"
let m_restarts = Util.Telemetry.counter "serve.restarts"
let m_profiles = Util.Telemetry.gauge "serve.profiles"
let m_sessions = Util.Telemetry.gauge "serve.sessions"
let m_backlog = Util.Telemetry.gauge "serve.backlog"
let m_request = Util.Telemetry.histogram "serve.request"
let m_report = Util.Telemetry.histogram "serve.report"

let fnv64 s =
  let p = 0x100000001b3L and h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) p)
    s;
  !h

let shard_of_name ~shards name =
  Int64.to_int (Int64.rem (Int64.logand (fnv64 name) Int64.max_int)
                  (Int64.of_int shards))

let create (config : config) =
  if config.shards < 1 then invalid_arg "Serve.create: shards < 1";
  if config.jobs < 1 then invalid_arg "Serve.create: jobs < 1";
  if config.max_profiles < 1 then invalid_arg "Serve.create: max_profiles < 1";
  if config.degrade_above > config.max_profiles then
    invalid_arg "Serve.create: degrade_above > max_profiles";
  if config.queue_capacity < 1 then invalid_arg "Serve.create: queue_capacity < 1";
  if config.seq_cache < 1 then invalid_arg "Serve.create: seq_cache < 1";
  if config.max_sessions < 1 then invalid_arg "Serve.create: max_sessions < 1";
  (match config.session_ttl with
  | Some ttl when not (ttl > 0.) -> invalid_arg "Serve.create: session_ttl <= 0"
  | Some _ | None -> ());
  let shard_config =
    { Shard.queue_capacity = config.queue_capacity; tick_steps = config.tick_steps }
  in
  {
    config;
    pool = Util.Pool.create ~jobs:config.jobs;
    shards = Array.init config.shards (fun _ -> Shard.create shard_config);
    names = Hashtbl.create 1024;
    by_label = Hashtbl.create 256;
    stamp = 0;
    default_session =
      {
        last_seq = 0;
        s_cache = Array.make config.seq_cache None;
        s_id = Some "";
        s_touched = Util.Timer.now ();
      };
    sessions = Hashtbl.create 64;
    chaos = None;
    restarts = 0;
    journal = None;
    journal_fsync = true;
    gsn = 0;
    journal_crash = None;
  }

let config t = t.config
let shard_count t = Array.length t.shards
let profile_count t = Hashtbl.length t.names
let backlog t = Array.fold_left (fun acc s -> acc + Shard.backlog s) 0 t.shards
let restarts t = t.restarts
let set_chaos t hook = t.chaos <- hook

let shutdown t =
  (match t.journal with
  | Some j ->
    Util.Fs.Journal.close j;
    t.journal <- None
  | None -> ());
  Util.Pool.shutdown t.pool

let alive t entry =
  match Hashtbl.find_opt t.names entry.e_name with
  | Some e -> e == entry
  | None -> false

let find_profile t name =
  match Hashtbl.find_opt t.names name with
  | None -> None
  | Some entry -> Shard.find t.shards.(entry.e_shard) name

let index_entry t entry subscription =
  Label_set.iter
    (fun label ->
      match Hashtbl.find_opt t.by_label label with
      | Some r -> r := entry :: !r
      | None -> Hashtbl.add t.by_label label (ref [ entry ]))
    subscription

let restart_shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Serve.restart_shard: shard out of range";
  let snap = Shard.snapshot t.shards.(i) in
  t.shards.(i) <- Shard.restore snap;
  t.restarts <- t.restarts + 1;
  Util.Telemetry.incr m_restarts

let shard_snapshot t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Serve.shard_snapshot: shard out of range";
  Shard.snapshot t.shards.(i)

let load_shard t i snap =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Serve.load_shard: shard out of range";
  let shard = Shard.restore snap in
  (* Drop the name-table entries of the shard being replaced, then index
     the restored profile set; stale label-index references filter out
     lazily through the aliveness check. *)
  let stale =
    Hashtbl.fold (fun name e acc -> if e.e_shard = i then name :: acc else acc)
      t.names []
  in
  List.iter (Hashtbl.remove t.names) stale;
  t.shards.(i) <- shard;
  List.iter
    (fun profile ->
      let entry = { e_name = Profile.name profile; e_shard = i; e_stamp = 0 } in
      Hashtbl.replace t.names entry.e_name entry;
      index_entry t entry (Profile.subscription profile))
    (Shard.profiles shard)

(* {2 Wire protocol} *)

let ok seq fmt = Printf.ksprintf (fun s -> Printf.sprintf "%d OK %s" seq s) fmt

let err seq code fmt =
  Printf.ksprintf (fun s -> Printf.sprintf "%d ERR %s %s" seq code s) fmt

let hex_of_float f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let parse_labels s =
  if s = "-" then Label_set.empty
  else
    Label_set.of_list
      (List.map
         (fun tok ->
           match int_of_string_opt tok with
           | Some l when l >= 0 -> l
           | _ -> bad "bad label list %S" s)
         (String.split_on_char ',' s))

let parse_float what s =
  match float_of_string_opt s with Some f -> f | None -> bad "bad %s %S" what s

let parse_int what s =
  match int_of_string_opt s with Some i -> i | None -> bad "bad %s %S" what s

let parse_mode s =
  match s with
  | "instant" -> Online.Instant
  | _ -> (
    let delayed prefix plus =
      let n = String.length prefix in
      if String.length s > n && String.sub s 0 n = prefix then
        Some (Online.Delayed { tau = parse_float "tau" (String.sub s n (String.length s - n)); plus })
      else None
    in
    (* delayed+: must match before delayed: — it is not a prefix of it. *)
    match delayed "delayed+:" true with
    | Some m -> m
    | None -> (
      match delayed "delayed:" false with
      | Some m -> m
      | None -> bad "bad mode %S" s))

let require_profile t name =
  match find_profile t name with
  | Some p -> p
  | None -> bad "@unknown-profile no such profile %S" name

(* Errors raised through [Bad_request] default to code [parse]; a leading
   ["@code "] overrides — saves threading the code through every helper. *)
let split_code msg =
  if String.length msg > 1 && msg.[0] = '@' then
    match String.index_opt msg ' ' with
    | Some i ->
      (String.sub msg 1 (i - 1), String.sub msg (i + 1) (String.length msg - i - 1))
    | None -> ("parse", msg)
  else ("parse", msg)

let handle_add t seq name lambda mode labels flags =
  if Hashtbl.mem t.names name then
    [ err seq "duplicate-profile" "profile %S already exists" name ]
  else begin
    let lambda = parse_float "lambda" lambda in
    if not (Float.is_finite lambda) || lambda < 0. then bad "bad lambda";
    let mode = parse_mode mode in
    let subscription = parse_labels labels in
    if Label_set.is_empty subscription then bad "empty subscription";
    let nowindow =
      match flags with
      | [] -> false
      | [ "nowindow" ] -> true
      | f :: _ -> bad "bad flag %S" f
    in
    if profile_count t >= t.config.max_profiles then
      [ err seq "capacity" "at %d profiles" t.config.max_profiles ]
    else begin
      let degrade = profile_count t >= t.config.degrade_above in
      let config =
        {
          Profile.lambda;
          mode = (if degrade then Online.Instant else mode);
          feed =
            { Feed.default_config with overload_budget = t.config.overload_budget };
          window = (not degrade) && not nowindow;
          checkpoint_every = t.config.checkpoint_every;
          max_restarts = t.config.max_restarts;
        }
      in
      let profile = Profile.create ~name ~subscription config in
      if degrade then Profile.mark_degraded profile;
      let shard = shard_of_name ~shards:t.config.shards name in
      Shard.add t.shards.(shard) profile;
      let entry = { e_name = name; e_shard = shard; e_stamp = 0 } in
      Hashtbl.replace t.names name entry;
      index_entry t entry subscription;
      [ (if degrade then ok seq "added degraded" else ok seq "added") ]
    end
  end

let handle_feed t seq id value labels =
  let post =
    try
      Post.make ~id:(parse_int "post id" id) ~value:(parse_float "value" value)
        ~labels:(parse_labels labels)
    with Invalid_argument m -> bad "%s" m
  in
  (* Fan out through the inverted index; the stamp deduplicates a post
     matching a profile on several labels. Matches deliver in name order
     so queue-full shedding is deterministic. *)
  t.stamp <- t.stamp + 1;
  let matches = ref [] in
  Label_set.iter
    (fun label ->
      match Hashtbl.find_opt t.by_label label with
      | None -> ()
      | Some r ->
        r := List.filter (alive t) !r;
        List.iter
          (fun e ->
            if e.e_stamp <> t.stamp then begin
              e.e_stamp <- t.stamp;
              matches := e :: !matches
            end)
          !r)
    post.Post.labels;
  let matches =
    List.sort (fun a b -> String.compare a.e_name b.e_name) !matches
  in
  let delivered = ref 0 and shed = ref 0 in
  List.iter
    (fun e ->
      match Shard.find t.shards.(e.e_shard) e.e_name with
      | None -> ()
      | Some profile ->
        let projected =
          Label_set.inter post.Post.labels (Profile.subscription profile)
        in
        if not (Label_set.is_empty projected) then begin
          let p =
            Post.make ~id:post.Post.id ~value:post.Post.value ~labels:projected
          in
          if Shard.offer t.shards.(e.e_shard) profile p then incr delivered
          else incr shed
        end)
    matches;
  Util.Telemetry.add m_acked !delivered;
  Util.Telemetry.add m_shed !shed;
  [ ok seq "delivered=%d shed=%d" !delivered !shed ]

let handle_tick t seq budget =
  let applied = Array.make (Array.length t.shards) 0 in
  let chaos = t.chaos in
  let deadline = Util.Budget.remaining budget in
  Util.Pool.parallel_for t.pool (Array.length t.shards) ~f:(fun i ->
      applied.(i) <- Shard.tick ?chaos ?deadline t.shards.(i));
  let total = Array.fold_left ( + ) 0 applied in
  Util.Telemetry.add m_applied total;
  [ ok seq "applied=%d backlog=%d" total (backlog t) ]

let handle_report t seq name =
  let profile = require_profile t name in
  let t0 = Util.Timer.now_ns () in
  let emissions = Profile.take_report profile in
  let lines =
    List.map
      (fun (eseq, e) ->
        Printf.sprintf "%d EMIT %d %d %s" seq eseq e.Online.post.Post.id
          (hex_of_float e.Online.emit_time))
      emissions
  in
  Util.Telemetry.observe m_report (Util.Timer.elapsed_since t0);
  lines @ [ ok seq "%d" (List.length emissions) ]

let handle_query t seq name budget =
  let profile = require_profile t name in
  if Profile.quarantined profile then
    [ err seq "quarantined" "profile %S is quarantined" name ]
  else
    match Profile.window profile with
    | None -> [ err seq "no-window" "profile %S keeps no window" name ]
    | Some w ->
      let instance = Window_index.to_instance w in
      let lambda = Coverage.Fixed (Profile.config profile).Profile.lambda in
      let report =
        Supervisor.solve ~pool:t.pool ~budget ~breaker:(Profile.breaker profile)
          ~ladder:(Supervisor.ladder_from Solver.Greedy_sc) instance lambda
      in
      let ids =
        List.map
          (fun pos -> string_of_int (Instance.post instance pos).Post.id)
          report.Supervisor.cover
      in
      [
        ok seq "rung=%s size=%d cover=%s" report.Supervisor.answered_by
          report.Supervisor.size
          (match ids with [] -> "-" | _ -> String.concat "," ids);
      ]

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let handle_stats t seq =
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 t.shards in
  let counters = Array.map Shard.counters t.shards in
  let total f = Array.fold_left (fun acc c -> acc + f c) 0 counters in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"profiles\":%d,\"backlog\":%d,\"acked\":%d,\"applied\":%d,\"shed\":%d,\
        \"crashes\":%d,\"quarantined\":%d,\"restarts\":%d,\"telemetry\":{"
       (profile_count t) (backlog t)
       (total (fun c -> c.Shard.acked))
       (total (fun c -> c.Shard.applied))
       (total (fun c -> c.Shard.shed))
       (sum Shard.crash_count) (sum Shard.quarantined_count) t.restarts);
  let first = ref true in
  let field name value =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape name) value)
  in
  List.iter
    (function
      | Util.Telemetry.Counter_entry (name, v) -> field name (string_of_int v)
      | Util.Telemetry.Gauge_entry (name, v) -> field name (string_of_int v)
      | Util.Telemetry.Histogram_entry (name, h) ->
        field name
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%.6g,\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g}"
             h.Util.Telemetry.h_count h.Util.Telemetry.h_sum
             h.Util.Telemetry.h_p50 h.Util.Telemetry.h_p90 h.Util.Telemetry.h_p99))
    (Util.Telemetry.snapshot ());
  Buffer.add_string b "}}";
  [ ok seq "%s" (Buffer.contents b) ]

let non_quarantined_profiles t =
  Array.to_list t.shards
  |> List.concat_map Shard.profiles
  |> List.filter (fun p -> not (Profile.quarantined p))

let handle_checkpoint t seq = function
  | Some name ->
    let profile = require_profile t name in
    if Profile.quarantined profile then
      [ err seq "quarantined" "profile %S is quarantined" name ]
    else begin
      Profile.checkpoint_now profile;
      [ ok seq "checkpointed=1" ]
    end
  | None ->
    let ps = non_quarantined_profiles t in
    List.iter Profile.checkpoint_now ps;
    [ ok seq "checkpointed=%d" (List.length ps) ]

let handle_drain t seq = function
  | Some name ->
    let profile = require_profile t name in
    if Profile.quarantined profile then
      [ err seq "quarantined" "profile %S is quarantined" name ]
    else begin
      Profile.drain profile;
      [ ok seq "drained=1" ]
    end
  | None ->
    let ps = non_quarantined_profiles t in
    List.iter Profile.drain ps;
    [ ok seq "drained=%d" (List.length ps) ]

let handle t seq tokens =
  let budget =
    match t.config.request_deadline with
    | None -> Util.Budget.unlimited
    | Some deadline -> Util.Budget.create ~deadline ()
  in
  match
    Util.Budget.check budget;
    (match tokens with
    | [ "PING" ] -> [ ok seq "pong" ]
    | "ADD" :: name :: lambda :: mode :: labels :: flags ->
      handle_add t seq name lambda mode labels flags
    | [ "DEL"; name ] ->
      let entry = Hashtbl.find_opt t.names name in
      (match entry with
      | None -> [ err seq "unknown-profile" "no such profile %S" name ]
      | Some e ->
        Hashtbl.remove t.names name;
        ignore (Shard.remove t.shards.(e.e_shard) name);
        [ ok seq "deleted" ])
    | [ "FEED"; id; value; labels ] -> handle_feed t seq id value labels
    | [ "TICK" ] -> handle_tick t seq budget
    | [ "REPORT"; name ] -> handle_report t seq name
    | [ "QUERY"; name ] -> handle_query t seq name budget
    | [ "STATS" ] -> handle_stats t seq
    | [ "CHECKPOINT" ] -> handle_checkpoint t seq None
    | [ "CHECKPOINT"; name ] -> handle_checkpoint t seq (Some name)
    | [ "DRAIN" ] -> handle_drain t seq None
    | [ "DRAIN"; name ] -> handle_drain t seq (Some name)
    | [ "RESTORE"; name ] ->
      let profile = require_profile t name in
      Profile.revive profile;
      [ ok seq "restored" ]
    | verb :: _ -> [ err seq "parse" "unknown or malformed command %S" verb ]
    | [] -> [ err seq "parse" "empty command" ])
  with
  | response -> response
  | exception Bad_request msg ->
    let code, msg = split_code msg in
    [ err seq code "%s" msg ]
  | exception Util.Budget.Exhausted _ ->
    [ err seq "deadline" "request deadline exceeded" ]

let make_session t s_id =
  {
    last_seq = 0;
    s_cache = Array.make t.config.seq_cache None;
    s_id;
    s_touched = Util.Timer.now ();
  }

let new_session t = make_session t None
let set_sessions_gauge t = Util.Telemetry.set m_sessions (Hashtbl.length t.sessions)

(* Idle-TTL eviction: drop every named session untouched for longer than
   [session_ttl]. Runs on every named-session creation and is exposed for
   operators/tests; [?now] pins the clock so tests need not sleep. *)
let sweep_sessions ?now t =
  match t.config.session_ttl with
  | None -> 0
  | Some ttl ->
    let now = match now with Some n -> n | None -> Util.Timer.now () in
    let stale =
      Hashtbl.fold
        (fun id s acc -> if now -. s.s_touched > ttl then id :: acc else acc)
        t.sessions []
    in
    List.iter (Hashtbl.remove t.sessions) stale;
    set_sessions_gauge t;
    List.length stale

(* LRU eviction: the named-session table never exceeds [max_sessions], so
   a daemon facing an unbounded stream of fresh HELLO ids stays bounded
   instead of leaking a session + seq cache per id forever. An evicted
   session that returns starts a fresh sequence space — its retries
   beyond the cache answer [stale-seq], the documented contract. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun id s acc ->
        match acc with
        | Some (_, best) when best.s_touched <= s.s_touched -> acc
        | _ -> Some (id, s))
      t.sessions None
  in
  match victim with
  | Some (id, _) -> Hashtbl.remove t.sessions id
  | None -> ()

let session t ~id =
  match Hashtbl.find_opt t.sessions id with
  | Some s ->
    s.s_touched <- Util.Timer.now ();
    s
  | None ->
    ignore (sweep_sessions t);
    while Hashtbl.length t.sessions >= t.config.max_sessions do
      evict_lru t
    done;
    let s = make_session t (Some id) in
    Hashtbl.add t.sessions id s;
    set_sessions_gauge t;
    s

let session_count t = Hashtbl.length t.sessions
let session_seq s = s.last_seq
let default_session t = t.default_session

let cache_find session seq =
  let slot = seq mod Array.length session.s_cache in
  match session.s_cache.(slot) with
  | Some (s, response) when s = seq -> Some response
  | _ -> None

let cache_store session seq response =
  session.s_cache.(seq mod Array.length session.s_cache) <- Some (seq, response)

(* Tokenization shared by [exec_on] and [is_checkpoint_line]: runs of
   spaces collapse, so "5  CHECKPOINT" parses the same everywhere. *)
let tokenize line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

let is_checkpoint_line line =
  match tokenize line with
  | _seq :: "CHECKPOINT" :: _ -> true
  | _ -> false

(* The durability points: lines after which the daemon persists shard
   snapshots + manifest and compacts the session journal. DRAIN counts
   because compaction on DRAIN is part of the journal's bounded-size
   contract, and compacting is only safe at a fresh durable state. *)
let is_durability_point_line line =
  match tokenize line with
  | _seq :: ("CHECKPOINT" | "DRAIN") :: _ -> true
  | _ -> false

(* {2 Session journal records}

   Payloads are tab-separated [String.escaped] fields (escaping removes
   raw tabs and newlines), checksummed and framed by [Util.Fs.Journal]:

   - [C gsn id seq line resp...] — one executed command: the request line
     for redo and the response it produced for verbatim retry replay.
   - [W id last_seq] — a session watermark (written by compaction).
   - [R id seq resp...] — one cached response (written by compaction). *)

let enc_fields fields = String.concat "\t" (List.map String.escaped fields)

let journal_corrupt fmt =
  Printf.ksprintf (fun s -> raise (Util.Fs.Journal.Corrupt s)) fmt

let dec_fields payload =
  List.map
    (fun f ->
      try Scanf.unescaped f
      with Scanf.Scan_failure _ | Failure _ ->
        journal_corrupt "undecodable session journal field %S" f)
    (String.split_on_char '\t' payload)

let int_field what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> journal_corrupt "bad %s %S in session journal" what s

(* Append the C record for a freshly executed command. Only sessions with
   a durable identity journal; anonymous per-connection sessions die with
   the process by design. A [Util.Fs.Crashed] raised here propagates to
   the driver: the command executed but was never durably acknowledged,
   which is exactly the window crash injection wants to probe. *)
let journal_command t session seq line response =
  match (t.journal, session.s_id) with
  | None, _ | _, None -> ()
  | Some j, Some id ->
    t.gsn <- t.gsn + 1;
    let payload =
      enc_fields
        ("C" :: string_of_int t.gsn :: id :: string_of_int seq :: line
       :: response)
    in
    let crash = t.journal_crash in
    t.journal_crash <- None;
    Util.Fs.Journal.append ~fsync:t.journal_fsync ?crash_after:crash j payload

let exec_on t session line =
  let t0 = Util.Timer.now_ns () in
  session.s_touched <- Util.Timer.now ();
  let response =
    match tokenize line with
    | [] -> [ "ERR parse empty line" ]
    | seq_tok :: rest -> (
      match int_of_string_opt seq_tok with
      | None -> [ "ERR parse bad sequence number" ]
      | Some seq when seq <= 0 -> [ "ERR parse bad sequence number" ]
      | Some seq ->
        if seq <= session.last_seq then
          (* A retry replays its cached response verbatim — the command
             does not run again, so retried FEEDs cannot double-deliver.
             Nothing is journaled either: the journal only carries fresh
             executions, so its C records stay strictly increasing. *)
          match cache_find session seq with
          | Some response -> response
          | None ->
            [ err seq "stale-seq" "sequence %d below watermark %d" seq
                session.last_seq ]
        else begin
          let response = handle t seq rest in
          session.last_seq <- seq;
          cache_store session seq response;
          (* After execution, before the transport sees the response: a
             crash in this window leaves the command either journaled
             (retry replays the cache) or torn/absent (retry re-executes
             against pre-command shard state) — exactly once both ways. *)
          journal_command t session seq line response;
          response
        end)
  in
  if Util.Telemetry.enabled () then begin
    Util.Telemetry.observe_ns m_request
      (Int64.sub (Util.Timer.now_ns ()) t0);
    Util.Telemetry.set m_profiles (profile_count t);
    Util.Telemetry.set m_backlog (backlog t)
  end;
  response

let exec t line = exec_on t t.default_session line

(* {2 Durable session journal} *)

let journal_file = "sessions.journal"
let journal_kind = "serve-sessions"
let journal_attached t = t.journal <> None
let journal_gsn t = t.gsn
let set_journal_crash_after t n = t.journal_crash <- n

(* The default session's durable identity is the empty id — the transport
   rejects [HELLO] with an empty id, so it can never collide with a named
   session. *)
let session_of_id t id = if id = "" then t.default_session else session t ~id

let apply_record t ~covered payload =
  match dec_fields payload with
  | [ "W"; id; last ] ->
    let s = session_of_id t id in
    s.last_seq <- max s.last_seq (int_field "watermark" last)
  | "R" :: id :: seq :: resp ->
    let s = session_of_id t id in
    let seq = int_field "seq" seq in
    cache_store s seq resp;
    s.last_seq <- max s.last_seq seq
  | "C" :: gsn :: id :: seq :: line :: resp ->
    let gsn = int_field "gsn" gsn and seq = int_field "seq" seq in
    let s = session_of_id t id in
    (* Redo: re-execute only the commands whose effects postdate the shard
       snapshots this boot restored from ([gsn > covered]); commands at or
       below the covered watermark are already inside the snapshots, and
       re-running them would be exactly the double execution this journal
       exists to prevent. Either way the *recorded* response wins the
       cache slot: a replayed STATS/QUERY may legitimately diverge, and
       retries must see the bytes the original execution produced. *)
    if gsn > covered then ignore (exec_on t s line);
    s.last_seq <- max s.last_seq seq;
    cache_store s seq resp;
    t.gsn <- max t.gsn gsn
  | _ -> journal_corrupt "unrecognized session journal record %S" payload

let attach_journal ?(fsync = true) t ~dir ~covered =
  if journal_attached t then invalid_arg "Serve.attach_journal: already attached";
  let path = Filename.concat dir journal_file in
  (* [open_] validates the header, truncates a torn tail (a crash
     mid-append — that record was never acknowledged) and returns the
     surviving payloads; replay happens with [t.journal] still unset so
     redone commands are not re-journaled. *)
  let j, payloads = Util.Fs.Journal.open_ ~fsync ~kind:journal_kind path in
  t.journal_fsync <- fsync;
  List.iter (apply_record t ~covered) payloads;
  t.journal <- Some j;
  t.gsn <- max t.gsn covered;
  set_sessions_gauge t

let detach_journal t =
  match t.journal with
  | None -> ()
  | Some j ->
    Util.Fs.Journal.close j;
    t.journal <- None

(* Rewrite the journal as pure session snapshots: one W watermark and the
   live R cache entries per durable session, no C records. Only safe
   immediately after the shard snapshots + manifest covering every
   journaled command became durable — dropping a C record whose effects
   are not in a snapshot would lose it. The daemon therefore compacts
   exactly at durability points ({!is_durability_point_line}) and at
   clean shutdown. Keeps the journal bounded by the per-session response
   cache, per the §21 contract. *)
let compact_journal ?crash_after t =
  match t.journal with
  | None -> ()
  | Some j ->
    let session_records id s acc =
      let acc = enc_fields [ "W"; id; string_of_int s.last_seq ] :: acc in
      Array.fold_left
        (fun acc slot ->
          match slot with
          | Some (seq, resp) ->
            enc_fields ("R" :: id :: string_of_int seq :: resp) :: acc
          | None -> acc)
        acc s.s_cache
    in
    let ids =
      Hashtbl.fold (fun id _ acc -> id :: acc) t.sessions []
      |> List.sort String.compare
    in
    let payloads =
      List.fold_left
        (fun acc id -> session_records id (Hashtbl.find t.sessions id) acc)
        (session_records "" t.default_session [])
        ids
    in
    let crash =
      match crash_after with Some _ -> crash_after | None -> t.journal_crash
    in
    t.journal_crash <- None;
    Util.Fs.Journal.rewrite ~fsync:t.journal_fsync ?crash_after:crash j
      (List.rev payloads)

(* {2 State-dir manifest} *)

let manifest ?(extra = []) t =
  Printf.sprintf "mqdp-serve state v1\nshards=%d\n%s" (Array.length t.shards)
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d\n" k v) extra))

(* Extra key lookup for the daemon's epoch/journal watermarks; unknown
   manifests (no such key) read as [None] so older state dirs load. *)
let manifest_field s key =
  let prefix = key ^ "=" in
  String.split_on_char '\n' s
  |> List.find_map (fun l ->
         if String.starts_with ~prefix l then
           int_of_string_opt
             (String.sub l (String.length prefix)
                (String.length l - String.length prefix))
         else None)

let parse_manifest s =
  match String.split_on_char '\n' s with
  | "mqdp-serve state v1" :: rest -> (
    let shard_line =
      List.find_opt (fun l -> String.starts_with ~prefix:"shards=" l) rest
    in
    match shard_line with
    | None -> Error "manifest lists no shard count"
    | Some l -> (
      match int_of_string_opt (String.sub l 7 (String.length l - 7)) with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (Printf.sprintf "manifest shard count %d out of range" n)
      | None -> Error (Printf.sprintf "unreadable shard count %S" l)))
  | header :: _ ->
    Error (Printf.sprintf "unrecognized manifest header %S" header)
  | [] -> Error "empty manifest"
