(* The select event loop. One thread, one engine, many connections; all
   per-connection policy (framing, deadlines, backpressure) delegated to
   the sans-IO Mqdp.Transport so it stays testable off the socket. *)

module Transport = Mqdp.Transport
module Netio = Util.Netio

type config = {
  max_connections : int;
  accept_backlog : int;
  transport : Transport.config;
  drain_poll : float;
  linger : float;
}

let default_config =
  {
    max_connections = 512;
    accept_backlog = 64;
    transport = Transport.default_config;
    drain_poll = 0.25;
    linger = 5.0;
  }

type stats = {
  mutable accepted : int;
  mutable shed : int;
  mutable requests : int;
  mutable closed_eof : int;
  mutable closed_idle : int;
  mutable closed_too_long : int;
  mutable closed_overflow : int;
  mutable closed_drained : int;
  mutable closed_reset : int;
}

let m_accepted = Util.Telemetry.counter "transport.accepted"
let m_shed = Util.Telemetry.counter "transport.shed"
let m_requests = Util.Telemetry.counter "transport.requests"
let m_connections = Util.Telemetry.gauge "transport.connections"
let m_closed = Util.Telemetry.counter "transport.closed"

type conn = {
  fd : Unix.file_descr;
  tr : Transport.t;
  mutable session : Mqdp.Serve.session;
  mutable closing : Transport.close_reason option;
  mutable close_by : float;  (* linger deadline once closing *)
}

type t = {
  config : config;
  serve : Mqdp.Serve.t;
  listen_fd : Unix.file_descr;
  mutable listening : bool;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  drain_flag : bool Atomic.t;
  mutable drain_started : bool;
  stats : stats;
}

let now_s () = Util.Timer.now ()

let create ?(config = default_config) ?(addr = Unix.inet_addr_any) ~port serve =
  (* A peer that resets mid-response must cost a write error on that one
     connection, never the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd config.accept_backlog;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    config;
    serve;
    listen_fd = fd;
    listening = true;
    conns = Hashtbl.create 64;
    drain_flag = Atomic.make false;
    drain_started = false;
    stats =
      {
        accepted = 0;
        shed = 0;
        requests = 0;
        closed_eof = 0;
        closed_idle = 0;
        closed_too_long = 0;
        closed_overflow = 0;
        closed_drained = 0;
        closed_reset = 0;
      };
  }

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: not an inet socket"

let stats t = t.stats
let drain t = Atomic.set t.drain_flag true
let draining t = Atomic.get t.drain_flag

let count_close t = function
  | None -> t.stats.closed_reset <- t.stats.closed_reset + 1
  | Some reason -> (
    match (reason : Transport.close_reason) with
    | Transport.Eof -> t.stats.closed_eof <- t.stats.closed_eof + 1
    | Transport.Idle_timeout -> t.stats.closed_idle <- t.stats.closed_idle + 1
    | Transport.Line_too_long ->
      t.stats.closed_too_long <- t.stats.closed_too_long + 1
    | Transport.Output_overflow ->
      t.stats.closed_overflow <- t.stats.closed_overflow + 1
    | Transport.Drained -> t.stats.closed_drained <- t.stats.closed_drained + 1)

let finalize t conn reason =
  Hashtbl.remove t.conns conn.fd;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  count_close t reason;
  Util.Telemetry.incr m_closed;
  Util.Telemetry.set m_connections (Hashtbl.length t.conns)

(* Write as much pending output as the socket accepts. Returns [false]
   when the connection died under the write. *)
let flush_conn t conn =
  let rec go () =
    match Transport.output conn.tr with
    | None -> true
    | Some (store, pos, len) -> (
      match Netio.write_from conn.fd store ~pos ~len with
      | `Wrote n ->
        Transport.wrote conn.tr n;
        if n = len then go () else true
      | `Again -> true
      | `Closed ->
        finalize t conn None;
        false)
  in
  go ()

let shed_notice = "0 ERR capacity serving limit reached, retry later\n"

let accept_burst t now =
  let rec go budget =
    if budget > 0 && t.listening then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Hashtbl.length t.conns >= t.config.max_connections then begin
          (* Counted shedding with a best-effort transport-level notice:
             the socket buffer of a fresh connection always has room for
             one short line. *)
          (try
             ignore
               (Unix.single_write_substring fd shed_notice 0
                  (String.length shed_notice))
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.stats.shed <- t.stats.shed + 1;
          Util.Telemetry.incr m_shed
        end
        else begin
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let conn =
            {
              fd;
              tr = Transport.create ~config:t.config.transport ~now ();
              session = Mqdp.Serve.new_session t.serve;
              closing = None;
              close_by = infinity;
            }
          in
          Hashtbl.replace t.conns fd conn;
          t.stats.accepted <- t.stats.accepted + 1;
          Util.Telemetry.incr m_accepted;
          Util.Telemetry.set m_connections (Hashtbl.length t.conns)
        end;
        go (budget - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go (budget - 1)
  in
  go 64

(* Serve every framed request the connection holds. HELLO is handled at
   the transport level (no sequence number): it rebinds the connection to
   a named session that survives reconnects. *)
let pump t ~on_checkpoint conn now =
  let rec go () =
    match Transport.next conn.tr ~now with
    | Transport.Request line ->
      (match Transport.parse_hello line with
      | Transport.Hello_empty ->
        Transport.respond conn.tr [ "0 ERR parse empty client id" ]
      | Transport.Hello id ->
        let session = Mqdp.Serve.session t.serve ~id in
        conn.session <- session;
        (* The greeting carries the session watermark: a reconnecting
           client resumes numbering above everything this session — which
           may have just been recovered from the journal — already ran. *)
        Transport.respond conn.tr
          [ Transport.hello_greeting ~id ~seq:(Mqdp.Serve.session_seq session) ]
      | Transport.Not_hello ->
        Transport.respond conn.tr (Mqdp.Serve.exec_on t.serve conn.session line);
        t.stats.requests <- t.stats.requests + 1;
        Util.Telemetry.incr m_requests;
        if Mqdp.Serve.is_durability_point_line line then on_checkpoint ());
      go ()
    | Transport.Wait -> ()
    | Transport.Close reason ->
      conn.closing <- Some reason;
      conn.close_by <- now +. t.config.linger
  in
  if conn.closing = None then go ()

let stop_listening t =
  if t.listening then begin
    t.listening <- false;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let run ?(on_checkpoint = fun () -> ()) t =
  let scratch = Bytes.create 65536 in
  let read_throttle = t.config.transport.Transport.max_pending_out / 2 in
  let finished = ref false in
  let prof = Sys.getenv_opt "MQDP_SERVER_PROF" <> None in
  let rounds = ref 0 and t_select = ref 0. and t_read = ref 0. and t_pump = ref 0.
  and n_reads = ref 0 and bytes_read = ref 0 in
  while not !finished do
    (* Drain trigger: stop accepting immediately, let every connection
       serve what it already received, then fall out when the last one
       closes. *)
    if Atomic.get t.drain_flag && not t.drain_started then begin
      t.drain_started <- true;
      stop_listening t;
      List.iter (fun c -> Transport.begin_drain c.tr) (conn_list t)
    end;
    if t.drain_started && Hashtbl.length t.conns = 0 then finished := true
    else begin
      let now = now_s () in
      (* One snapshot per round: connections accepted mid-round are picked
         up next round, ones finalized mid-round are membership-checked. *)
      let conns = conn_list t in
      let reads =
        (if
           t.listening
           && Hashtbl.length t.conns < t.config.max_connections + 64
         then [ t.listen_fd ]
         else [])
        @ List.filter_map
            (fun c ->
              if
                c.closing = None
                && (not (Transport.draining c.tr))
                && Transport.output_length c.tr <= read_throttle
              then Some c.fd
              else None)
            conns
      in
      let writes =
        List.filter_map
          (fun c -> if Transport.has_output c.tr then Some c.fd else None)
          conns
      in
      let timeout =
        List.fold_left
          (fun acc c ->
            let acc =
              match Transport.idle_deadline c.tr with
              | Some d when c.closing = None -> Float.min acc (d -. now)
              | Some _ | None -> acc
            in
            if c.closing <> None then Float.min acc (c.close_by -. now) else acc)
          t.config.drain_poll conns
        |> Float.max 0.
      in
      incr rounds;
      let t0 = if prof then now_s () else 0. in
      let readable, writable, _ =
        try Unix.select reads writes [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if prof then t_select := !t_select +. (now_s () -. t0);
      let now = now_s () in
      if t.listening && List.memq t.listen_fd readable then accept_burst t now;
      (* Reads first, then a pump over every connection: idle deadlines
         and drains must fire even on silent sockets. *)
      let t1 = if prof then now_s () else 0. in
      List.iter
        (fun fd ->
          if fd != t.listen_fd then
            match Hashtbl.find_opt t.conns fd with
            | None -> ()
            | Some conn -> (
              match Netio.read_into conn.fd scratch with
              | `Data n ->
                incr n_reads;
                bytes_read := !bytes_read + n;
                Transport.feed conn.tr scratch ~pos:0 ~len:n
              | `Eof -> Transport.feed_eof conn.tr
              | `Again -> ()
              | `Closed -> finalize t conn None))
        readable;
      let t2 = if prof then now_s () else 0. in
      if prof then t_read := !t_read +. (t2 -. t1);
      List.iter
        (fun conn ->
          if Hashtbl.mem t.conns conn.fd then begin
            pump t ~on_checkpoint conn now;
            (* Flush opportunistically: responses usually fit the socket
               buffer, saving a select round trip. *)
            if Transport.has_output conn.tr then ignore (flush_conn t conn)
          end)
        conns;
      if prof then t_pump := !t_pump +. (now_s () -. t2);
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.conns fd with
          | Some conn -> ignore (flush_conn t conn)
          | None -> ())
        writable;
      (* Condemned connections close once flushed (or once the linger
         grace expires on a peer that stopped reading). *)
      List.iter
        (fun conn ->
          match conn.closing with
          | Some reason
            when Hashtbl.mem t.conns conn.fd
                 && ((not (Transport.has_output conn.tr)) || now >= conn.close_by)
            ->
            finalize t conn (Some reason)
          | Some _ | None -> ())
        conns
    end
  done;
  if prof then
    Printf.eprintf
      "[server prof] rounds=%d reads=%d bytes=%d select=%.3fs read=%.3fs pump+flush=%.3fs served=%d\n%!"
      !rounds !n_reads !bytes_read !t_select !t_read !t_pump t.stats.requests;
  stop_listening t
