module Netio = Util.Netio

type t = {
  addr : Unix.inet_addr;
  port : int;
  timeout : float;
  hello : string option;
  mutable sock : Unix.file_descr option;
  mutable connected_once : bool;
  mutable reconnects : int;
  mutable hello_seq : int option;
  inbuf : Netio.Buf.t;
  scratch : Bytes.t;
}

let create ?(timeout = 10.) ?hello ?(addr = Unix.inet_addr_loopback) ~port () =
  {
    addr;
    port;
    timeout;
    hello;
    sock = None;
    connected_once = false;
    reconnects = 0;
    hello_seq = None;
    inbuf = Netio.Buf.create ();
    scratch = Bytes.create 8192;
  }

let reconnects t = t.reconnects
let hello_watermark t = t.hello_seq

(* The greeting is [0 OK hello <id> seq=<watermark>]; older daemons omit
   the watermark, which reads as "nothing known". *)
let parse_hello_seq line =
  String.split_on_char ' ' line
  |> List.find_map (fun tok ->
         if String.starts_with ~prefix:"seq=" tok then
           int_of_string_opt (String.sub tok 4 (String.length tok - 4))
         else None)

let drop t =
  (match t.sock with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.sock <- None;
  Netio.Buf.clear t.inbuf

let close = drop

let send_all fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go pos =
    if pos >= len then true
    else
      match Unix.write_substring fd data pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* Read one newline-terminated line, blocking up to the socket timeout
   per read. [None] on timeout, EOF, or error. *)
let read_line t fd =
  let rec go () =
    match Netio.Buf.index_from t.inbuf ~from:0 '\n' with
    | i when i >= 0 ->
      let line = Netio.Buf.sub_string t.inbuf ~pos:0 ~len:i in
      Netio.Buf.drop t.inbuf (i + 1);
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | _ -> (
      match Netio.read_into fd t.scratch with
      | `Data n ->
        Netio.Buf.add_subbytes t.inbuf t.scratch ~pos:0 ~len:n;
        go ()
      (* Blocking socket + SO_RCVTIMEO: [`Again] means the deadline
         elapsed with no data — a transport failure, not a retry-read. *)
      | `Again | `Eof | `Closed -> None)
  in
  go ()

let is_final line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | _seq :: ("OK" | "ERR") :: _ -> true
  | _ -> false

let read_response t fd =
  let rec go acc =
    match read_line t fd with
    | None -> None
    | Some line -> if is_final line then Some (List.rev (line :: acc)) else go (line :: acc)
  in
  go []

let connect t =
  match t.sock with
  | Some fd -> Some fd
  | None -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout;
      (* Request/response ping-pong: never wait out Nagle + delayed ACK. *)
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Unix.connect fd (Unix.ADDR_INET (t.addr, t.port))
    with
    | () ->
      t.sock <- Some fd;
      if t.connected_once then t.reconnects <- t.reconnects + 1;
      t.connected_once <- true;
      let greeted =
        match t.hello with
        | None -> true
        | Some id -> (
          if not (send_all fd ("HELLO " ^ id)) then false
          else
            match read_response t fd with
            | Some (first :: _) when String.starts_with ~prefix:"0 OK hello" first
              ->
              (match parse_hello_seq first with
              | Some seq -> t.hello_seq <- Some seq
              | None -> ());
              true
            | Some _ | None -> false)
      in
      if greeted then Some fd
      else begin
        drop t;
        None
      end
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None)

let ensure_connected t = connect t <> None

let exchange t line =
  match connect t with
  | None -> None
  | Some fd -> (
    if not (send_all fd line) then begin
      drop t;
      None
    end
    else
      match read_response t fd with
      | None ->
        drop t;
        None
      | Some response -> (
        (* A transport-level rejection (seq 0: shed, condemned) doubles as
           a connection death sentence server-side — reconnect next call. *)
        match response with
        | first :: _ when String.starts_with ~prefix:"0 ERR" first ->
          drop t;
          Some response
        | _ -> Some response))

let io t =
  { Mqdp.Client.send = (fun line -> exchange t line); sleep = Unix.sleepf }
