(** Blocking TCP line client for the serving wire protocol — the IO half
    that {!Mqdp.Client} abstracts over.

    One {!t} is a lazily-(re)connecting connection: {!exchange} dials on
    first use, and after any transport failure (refused, reset, timeout,
    [0 ERR] shed) it drops the socket so the next call reconnects — and
    re-greets with [HELLO <id>] when a [hello] identity was given, landing
    the client back on its named server-side session so a verbatim retry
    keeps the idempotency contract.

    Every socket operation runs under [timeout] (SO_RCVTIMEO/SO_SNDTIMEO),
    so a stalled daemon surfaces as a retryable failure instead of a hung
    client. *)

type t

(** [create ?timeout ?hello ?addr ~port ()] — no IO happens yet.
    [timeout] defaults to 10 s, [addr] to loopback. [hello], when given,
    is the durable session id greeted on every (re)connect. *)
val create :
  ?timeout:float -> ?hello:string -> ?addr:Unix.inet_addr -> port:int -> unit -> t

(** [exchange t line] — one request/response: send [line] (newline
    appended), read response lines until the final [<seq> OK|ERR ...]
    line. [None] on any transport failure — the request may or may not
    have executed; the socket is dropped and the next call reconnects. *)
val exchange : t -> string -> string list option

(** Reconnections performed after the first successful dial. *)
val reconnects : t -> int

(** [ensure_connected t] — dial and greet now instead of lazily at the
    first {!exchange}; [false] on transport failure (the next call
    retries). Lets a client learn {!hello_watermark} before numbering
    its first request. *)
val ensure_connected : t -> bool

(** The session watermark the most recent [HELLO] greeting reported
    ([seq=N]), if any — feed it to {!Mqdp.Client.sync_seq} so a fresh
    client process resumes numbering above everything its
    journal-recovered session already executed. *)
val hello_watermark : t -> int option

val close : t -> unit

(** The {!Mqdp.Client.io} view: [send = exchange t],
    [sleep = Unix.sleepf]. *)
val io : t -> Mqdp.Client.io
