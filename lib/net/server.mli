(** The concurrent hardened TCP transport for {!Mqdp.Serve}: a
    single-threaded [select] event loop multiplexing many clients onto
    one engine through per-connection {!Mqdp.Transport} state machines.

    Hardening, in one place:
    - {b hostile-client defense} — every connection runs the sans-IO
      framer's caps: max line length, idle (slowloris) deadline, bounded
      output with read throttling once a client stops consuming
      responses. One misbehaving connection is condemned and closed; the
      loop and every other client keep going. [SIGPIPE] is ignored at
      {!create}, so a peer resetting mid-response costs a [`Closed] write
      result, never the process.
    - {b connection ceiling} — beyond [max_connections] concurrent
      clients, new arrivals are shed with a counted transport-level
      [0 ERR capacity] line and an immediate close (mirroring the
      engine's admission control).
    - {b client multiplexing} — each connection gets its own anonymous
      {!Mqdp.Serve.session} (its own sequence space), or a durable named
      one by opening with [HELLO <id>] (answered
      [0 OK hello <id> seq=<watermark>]): a client that reconnects after
      a reset — or after a daemon restart that recovered the session from
      its journal — re-sends [HELLO], learns the watermark, and retries
      its last line with the idempotency guarantee intact.
    - {b graceful drain} — {!drain} (async-signal-safe; the daemon calls
      it from SIGTERM/SIGINT handlers) stops accepting, serves every
      fully-received request, flushes responses, closes connections, and
      makes {!run} return so the daemon can write its final durable
      snapshot and exit 0.

    The loop is deliberately single-threaded: {!Mqdp.Serve.exec_on} is
    not thread-safe, and the engine parallelizes where it matters (TICK
    fans out over the domain pool). The transport's job is to keep the
    socket work — framing, timeouts, backpressure — off the engine's
    critical path and survive everything a client can do. *)

type config = {
  max_connections : int;  (** concurrent-client ceiling; beyond it, shed *)
  accept_backlog : int;  (** listen(2) backlog *)
  transport : Mqdp.Transport.config;  (** per-connection framing/deadline caps *)
  drain_poll : float;  (** max select wait, so {!drain} is noticed promptly *)
  linger : float;  (** grace period to flush output to a closing connection *)
}

(** 512 connections, backlog 64, {!Mqdp.Transport.default_config},
    0.25 s drain poll, 5 s linger. *)
val default_config : config

type stats = {
  mutable accepted : int;
  mutable shed : int;  (** connections refused at the ceiling *)
  mutable requests : int;  (** requests executed (HELLO excluded) *)
  mutable closed_eof : int;
  mutable closed_idle : int;
  mutable closed_too_long : int;
  mutable closed_overflow : int;
  mutable closed_drained : int;
  mutable closed_reset : int;  (** hard IO failures (peer reset, EPIPE) *)
}

type t

(** [create ?config ?addr ~port serve] — bind and listen ([port = 0]
    picks an ephemeral port, see {!port}). [addr] defaults to all
    interfaces. Ignores [SIGPIPE] process-wide. Raises [Unix.Unix_error]
    when the bind fails. *)
val create :
  ?config:config -> ?addr:Unix.inet_addr -> port:int -> Mqdp.Serve.t -> t

(** The bound TCP port (the actual one when created with [port = 0]). *)
val port : t -> int

val stats : t -> stats

(** Request a graceful drain. Safe from a signal handler or another
    domain; {!run} notices within [drain_poll] seconds. *)
val drain : t -> unit

val draining : t -> bool

(** [run ?on_checkpoint t] — the event loop. Returns after a {!drain}
    completes (every surviving connection served its buffered requests
    and flushed). [on_checkpoint] runs after each executed durability
    point ([CHECKPOINT]/[DRAIN], {!Mqdp.Serve.is_durability_point_line})
    — the daemon hooks its durable snapshot + journal-compaction writes
    here. The listening socket is closed on return. *)
val run : ?on_checkpoint:(unit -> unit) -> t -> unit
