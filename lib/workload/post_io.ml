exception Parse_error of { line : int; what : string }

let parse_error ~line fmt =
  Printf.ksprintf (fun what -> raise (Parse_error { line; what })) fmt

let post_to_line p =
  Printf.sprintf "%d\t%.17g\t%s" p.Mqdp.Post.id p.Mqdp.Post.value
    (String.concat ","
       (List.map string_of_int (Mqdp.Label_set.to_list p.Mqdp.Post.labels)))

let post_of_line ?(line = 0) text =
  match String.split_on_char '\t' text with
  | [ id_s; value_s; labels_s ] -> begin
    let fail what = parse_error ~line "bad %s in %S" what text in
    let id = match int_of_string_opt (String.trim id_s) with
      | Some id -> id
      | None -> fail "id"
    in
    let value = match float_of_string_opt (String.trim value_s) with
      | Some v -> v
      | None -> fail "value"
    in
    let labels =
      if String.trim labels_s = "" then []
      else
        List.map
          (fun s ->
            match int_of_string_opt (String.trim s) with
            | Some a when a >= 0 -> a
            | Some _ | None -> fail "label")
          (String.split_on_char ',' labels_s)
    in
    match Mqdp.Post.make ~id ~value ~labels:(Mqdp.Label_set.of_list labels) with
    | post -> post
    | exception Invalid_argument _ -> fail "value"
  end
  | fields ->
    parse_error ~line "expected 3 tab-separated fields, found %d in %S"
      (List.length fields) text

let save path posts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# mqdp posts: id <TAB> value <TAB> comma-separated labels\n";
      List.iter
        (fun p ->
          output_string oc (post_to_line p);
          output_char oc '\n')
        posts)

(* Streaming reader over an already-open channel: one line is held in
   memory at a time, so a multi-gigabyte replay file — or a socket feed
   that never ends — costs O(longest line), not O(file). [on_error]
   decides whether a bad line aborts (strict load) or is skipped and
   counted (lenient mode). *)
let fold_channel_err ic ~on_error ~init ~f =
  let rec read lineno acc skipped =
    match input_line ic with
    | exception End_of_file -> (acc, skipped)
    | line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then read (lineno + 1) acc skipped
      else begin
        match post_of_line ~line:lineno trimmed with
        | post -> read (lineno + 1) (f acc post) skipped
        | exception Parse_error { line; what } ->
          on_error ~line ~what;
          read (lineno + 1) acc (skipped + 1)
      end
  in
  read 1 init 0

let fold_channel ?(lenient = false) ic ~init ~f =
  let on_error =
    if lenient then fun ~line:_ ~what:_ -> ()
    else fun ~line ~what -> parse_error ~line "%s" what
  in
  fold_channel_err ic ~on_error ~init ~f

let iter_channel ?lenient ic ~f =
  snd (fold_channel ?lenient ic ~init:() ~f:(fun () p -> f p))

let with_file path k =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic)

let load path =
  with_file path (fun ic ->
      let rev, _ = fold_channel ic ~init:[] ~f:(fun acc p -> p :: acc) in
      List.rev rev)

let load_lenient path =
  with_file path (fun ic ->
      let rev, skipped =
        fold_channel ~lenient:true ic ~init:[] ~f:(fun acc p -> p :: acc)
      in
      (List.rev rev, skipped))

let save_cover path instance cover =
  save path (List.map (Mqdp.Instance.post instance) cover)
