(** TSV persistence for MQDP workloads, so generated streams can be
    inspected, shared, and replayed through the CLI.

    Format: one post per line, [id <TAB> value <TAB> a,b,c] where the last
    column lists label ids (empty for no labels). Lines starting with '#'
    are comments. *)

(** Raised on malformed input: [line] is the 1-based line number ([0] when
    parsing a bare line outside a file) and [what] describes the defect
    and quotes the offending text. *)
exception Parse_error of { line : int; what : string }

(** [post_to_line p] / [post_of_line line] — the codec.
    [post_of_line] raises {!Parse_error} on malformed input (wrong field
    count, non-numeric fields, negative labels, NaN values); [?line]
    seeds the error's line number. *)
val post_to_line : Mqdp.Post.t -> string

val post_of_line : ?line:int -> string -> Mqdp.Post.t

(** [save path posts] writes a header comment plus one line per post. *)
val save : string -> Mqdp.Post.t list -> unit

(** [load path] — parses every non-comment, non-empty line.
    Raises {!Parse_error} (with the line number) on malformed input,
    [Sys_error] on IO problems. *)
val load : string -> Mqdp.Post.t list

(** [fold_channel ?lenient ic ~init ~f] — streaming fold over an open
    channel (a file, a pipe, a socket): posts are parsed and folded one
    line at a time, so memory stays O(longest line) no matter how large —
    or unbounded — the feed is. Comment ([#]) and blank lines are skipped.
    Returns the accumulator and the number of malformed lines skipped.
    With [lenient:false] (the default) the first malformed line raises
    {!Parse_error} (1-based line numbers, counted from where the channel
    currently is); with [lenient:true] malformed lines are counted and
    skipped — the hardened answer to garbage interleaved in a live feed. *)
val fold_channel :
  ?lenient:bool -> in_channel -> init:'a -> f:('a -> Mqdp.Post.t -> 'a) -> 'a * int

(** [iter_channel ?lenient ic ~f] — {!fold_channel} for effects; returns
    the skipped-line count. *)
val iter_channel : ?lenient:bool -> in_channel -> f:(Mqdp.Post.t -> unit) -> int

(** [load_lenient path] — like {!load} but skips malformed lines instead
    of raising, returning the parsed posts and how many lines were
    skipped. The hardened frontend's answer to garbage in a feed file. *)
val load_lenient : string -> Mqdp.Post.t list * int

(** [save_cover path instance cover] writes the selected posts (by
    position) in the same format — a cover file is itself a loadable post
    file. *)
val save_cover : string -> Mqdp.Instance.t -> int list -> unit
