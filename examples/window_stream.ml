(* Windowed stream: the sliding-window coverage engine.

   live_feed.ml pushes arrivals through Online and forwards deliveries as
   they fall due; this example drives the layer underneath. One long-lived
   Mqdp.Window_index ingests each arrival, expires the tail as the window
   slides, and is solved in place at every tick with a reused scratch
   solver — the rebuild-free digest loop a "what matters right now"
   dashboard would run. The covers are the same ones a fresh Pair_index
   over the live slice would produce; the index is just never rebuilt.

   Run with:  dune exec examples/window_stream.exe
   Tracing:   dune exec examples/window_stream.exe -- --trace out.jsonl
   emits one JSON trace event per line (solver spans with durations) plus
   the counter/gauge registry snapshot after the run. *)

let usage () =
  prerr_endline "usage: window_stream [--trace FILE]";
  exit 2

let () =
  let trace =
    match Array.to_list Sys.argv with
    | [ _ ] -> None
    | [ _; "--trace"; file ] -> Some file
    | _ -> usage ()
  in
  let trace_oc = Option.map open_out trace in
  Option.iter
    (fun oc ->
      Util.Telemetry.set_sink (Util.Telemetry.Trace.to_channel oc);
      Util.Telemetry.enable ())
    trace_oc;

  (* A synthetic hour of tweets, matched against a five-topic profile —
     the same front half as the live_feed example. *)
  let topics = Workload.Catalog.subtopics ~per_broad:6 ~seed:77 in
  let rng = Util.Rng.create 11 in
  let profile = Workload.Catalog.pick_label_set rng topics ~size:5 in
  let queries =
    Array.of_list (List.map (fun i -> topics.(i).Workload.Catalog.keywords) profile)
  in
  let tweets =
    Workload.Stream_gen.generate
      { (Workload.Stream_gen.default_config ~topics ~seed:9) with
        Workload.Stream_gen.duration = 3600.;
        topic_rate = 0.03 }
  in
  let matched = Workload.Matching.match_tweets ~queries tweets in
  Printf.printf "profile: %d topics; %d of %d tweets match\n\n"
    (Array.length queries) (List.length matched) (List.length tweets);

  let lambda = 120. in
  let window = 600. and step = 60. in
  let w = Mqdp.Window_index.create (Mqdp.Coverage.Fixed lambda) in
  let solver = Mqdp.Greedy_sc.window_solver () in

  let pending = ref matched in
  let skipped = ref 0 in
  let push_due now =
    let rec go () =
      match !pending with
      | m :: rest when m.Workload.Matching.tweet.Workload.Tweet.time <= now ->
        let tweet = m.Workload.Matching.tweet in
        let post =
          Mqdp.Post.make ~id:tweet.Workload.Tweet.id ~value:tweet.Workload.Tweet.time
            ~labels:(Mqdp.Label_set.of_list m.Workload.Matching.labels)
        in
        (* the ordering guard in action: an arrival that does not sort
           strictly after the last admitted one is rejected, not raised *)
        if not (Mqdp.Window_index.try_push w post) then incr skipped;
        pending := rest;
        go ()
      | _ -> ()
    in
    go ()
  in

  let ticks = ref 0 and digest_total = ref 0 and peak = ref 0 in
  let t = ref window in
  while !pending <> [] || !t <= 3600. +. step do
    push_due !t;
    Mqdp.Window_index.expire_before w ~time:(!t -. window);
    let r = Mqdp.Solver.solve_window ~solver Mqdp.Solver.Greedy_sc w in
    incr ticks;
    digest_total := !digest_total + r.Mqdp.Solver.size;
    peak := max !peak (Mqdp.Window_index.size w);
    (* sample the loop: one line every ten minutes of stream time *)
    if !ticks mod 10 = 0 then
      Printf.printf
        "  t=%5.0fs  live window %3d posts / %4d pairs  ->  digest %2d posts\n"
        !t (Mqdp.Window_index.size w)
        (Mqdp.Window_index.live_pairs w)
        r.Mqdp.Solver.size;
    t := !t +. step
  done;

  Printf.printf
    "\n%d ticks: %d posts admitted (%d rejected by the ordering guard), \
     %d expired, peak window %d; mean digest %.1f posts, λ=%gs\n"
    !ticks (Mqdp.Window_index.total w) !skipped
    (Mqdp.Window_index.expired w) !peak
    (float_of_int !digest_total /. float_of_int (max 1 !ticks))
    lambda;

  Option.iter
    (fun oc ->
      Util.Telemetry.disable ();
      Util.Telemetry.set_sink Util.Telemetry.null_sink;
      close_out oc;
      Printf.printf "\nregistry snapshot:\n";
      Util.Telemetry.print_snapshot stdout;
      Option.iter (Printf.printf "wrote trace events to %s\n") trace)
    trace_oc
