(* Proportional diversity through variable lambda (paper §6, Eq. 2). *)

open Helpers

let dense_sparse_instance =
  (* 20 posts crammed into [0, 2] and 3 posts spread over [50, 70]. *)
  instance_of
    (List.init 20 (fun i -> post ~id:i ~value:(float_of_int i *. 0.1) [ 0 ])
    @ [ post ~id:100 ~value:50. [ 0 ]; post ~id:101 ~value:60. [ 0 ];
        post ~id:102 ~value:70. [ 0 ] ])

let test_dense_gets_smaller_lambda () =
  let lambda0 = 5. in
  let rows = Mqdp.Proportional.densities ~lambda0 dense_sparse_instance in
  let lambda_at id =
    let pos, _, _, l =
      List.find
        (fun (pos, _, _, _) ->
          (Mqdp.Instance.post dense_sparse_instance pos).Mqdp.Post.id = id)
        rows
    in
    ignore pos;
    l
  in
  Alcotest.(check bool) "dense < sparse" true (lambda_at 5 < lambda_at 101);
  Alcotest.(check bool) "sparse above lambda0" true (lambda_at 101 > lambda0);
  Alcotest.(check bool) "dense below lambda0" true (lambda_at 5 < lambda0)

let test_uniform_density_gives_lambda0_scale () =
  (* Evenly spaced posts of one label: density_a = density0 everywhere away
     from the boundary, so lambda = lambda0 * e^0 = lambda0. *)
  let inst =
    instance_of (List.init 101 (fun i -> post ~id:i ~value:(float_of_int i) [ 0 ]))
  in
  let lambda0 = 10. in
  let rows = Mqdp.Proportional.densities ~lambda0 inst in
  let _, _, _, middle =
    List.find (fun (pos, _, _, _) -> pos = 50) rows
  in
  (* Window [40, 60] holds 21 posts vs the 20.x expected: within 10%. *)
  Alcotest.(check bool) "interior lambda near lambda0" true
    (Float.abs (middle -. lambda0) /. lambda0 < 0.15)

let test_base_density () =
  let inst =
    instance_of
      [ post ~id:0 ~value:0. [ 0 ]; post ~id:1 ~value:30. [ 0 ];
        post ~id:2 ~value:60. [ 0 ] ]
  in
  (* 3 pairs over span 60, one label: 0.05 posts per unit. *)
  Alcotest.(check (float 1e-9)) "density0" 0.05
    (Mqdp.Proportional.base_density ~lambda0:5. inst)

let test_invalid_args () =
  let inst = instance_of [ post ~id:0 ~value:0. [ 0 ] ] in
  Alcotest.check_raises "lambda0 <= 0" (Invalid_argument "Proportional: lambda0 <= 0")
    (fun () -> ignore (Mqdp.Proportional.base_density ~lambda0:0. inst));
  Alcotest.check_raises "empty instance"
    (Invalid_argument "Proportional: empty instance") (fun () ->
      ignore (Mqdp.Proportional.base_density ~lambda0:1. (instance_of [])))

let test_fallback_radius () =
  let inst = instance_of [ post ~id:0 ~value:0. [ 0 ] ] in
  let lambda = Mqdp.Proportional.make ~lambda0:2. inst in
  let stranger = post ~id:999 ~value:5. [ 0 ] in
  Alcotest.(check (float 1e-9)) "unknown post falls back to lambda0" 2.
    (Mqdp.Coverage.radius lambda stranger 0)

let test_proportional_shifts_representation () =
  (* With proportional lambda, the dense region must keep at least as many
     representatives as under the fixed lambda0 of the same scale. *)
  let lambda0 = 5. in
  let fixed = Mqdp.Greedy_sc.solve dense_sparse_instance (Mqdp.Coverage.Fixed lambda0) in
  let prop_lambda = Mqdp.Proportional.make ~lambda0 dense_sparse_instance in
  let proportional = Mqdp.Greedy_sc.solve dense_sparse_instance prop_lambda in
  let dense_count cover =
    List.length
      (List.filter
         (fun pos -> Mqdp.Instance.value dense_sparse_instance pos <= 2.)
         cover)
  in
  Alcotest.(check bool) "covers valid" true
    (Mqdp.Coverage.is_cover dense_sparse_instance prop_lambda proportional
    && Mqdp.Coverage.is_cover dense_sparse_instance (Mqdp.Coverage.Fixed lambda0) fixed);
  Alcotest.(check bool) "denser region better represented" true
    (dense_count proportional >= dense_count fixed)

let all_rows_positive =
  qtest "Eq. 2 lambdas are positive and bounded by lambda0 * e"
    (arb_instance ~max_posts:25 ~max_labels:3 ~span:20. ())
    (fun inst ->
      let lambda0 = 2. in
      List.for_all
        (fun (_, _, density, lambda) ->
          density >= 0. && lambda > 0. && lambda <= lambda0 *. Float.exp 1. +. 1e-9)
        (Mqdp.Proportional.densities ~lambda0 inst))

let covers_under_proportional =
  qtest "all offline approximations cover under Eq. 2"
    (arb_instance ~max_posts:25 ~max_labels:3 ~span:20. ())
    (fun inst ->
      let lambda = Mqdp.Proportional.make ~lambda0:1.5 inst in
      List.for_all
        (fun (name, cover) -> check_cover name inst lambda cover)
        [ ("greedy", Mqdp.Greedy_sc.solve inst lambda);
          ("scan", Mqdp.Scan.solve inst lambda);
          ("scan+", Mqdp.Scan.solve_plus inst lambda) ])

let monotone_in_density =
  qtest "within one instance, higher density => no larger lambda"
    (arb_instance ~max_posts:25 ~max_labels:2 ~span:15. ())
    (fun inst ->
      let rows = Mqdp.Proportional.densities ~lambda0:2. inst in
      List.for_all
        (fun (_, _, d1, l1) ->
          List.for_all (fun (_, _, d2, l2) -> not (d1 > d2) || l1 <= l2 +. 1e-9) rows)
        rows)

let suite =
  [
    Alcotest.test_case "dense gets smaller lambda" `Quick test_dense_gets_smaller_lambda;
    Alcotest.test_case "uniform density ~ lambda0" `Quick
      test_uniform_density_gives_lambda0_scale;
    Alcotest.test_case "base density" `Quick test_base_density;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    Alcotest.test_case "fallback radius" `Quick test_fallback_radius;
    Alcotest.test_case "representation shifts toward dense regions" `Quick
      test_proportional_shifts_representation;
    all_rows_positive;
    covers_under_proportional;
    monotone_in_density;
  ]
