(* Algorithm OPT specifics: the end-pattern DP beyond the generic
   exact-agreement property in test_algorithms. *)

open Helpers

let fixed l = Mqdp.Coverage.Fixed l

let test_isolated_segments () =
  (* Gaps far beyond lambda: every segment needs its own representative. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:100. [ 0 ];
        post ~id:3 ~value:200. [ 0 ] ]
  in
  Alcotest.(check int) "three segments" 3 (List.length (Mqdp.Opt.solve inst (fixed 1.)))

let test_intersecting_label_sets () =
  (* The abstract's motivating case: nearby posts with intersecting but
     non-nested label sets — neither covers the other, both are needed. *)
  let inst =
    instance_of [ post ~id:1 ~value:0. [ 0; 1 ]; post ~id:2 ~value:0.5 [ 1; 2 ] ]
  in
  let cover = Mqdp.Opt.solve inst (fixed 1.) in
  Alcotest.(check (list int)) "both posts" [ 0; 1 ] cover

let test_single_cover_point () =
  (* One post carries all labels and reaches everything: cover of 1. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 0; 1; 2 ];
        post ~id:3 ~value:2. [ 1 ]; post ~id:4 ~value:1.5 [ 2 ] ]
  in
  Alcotest.(check (list int)) "the hub post" [ 1 ] (Mqdp.Opt.solve inst (fixed 1.))

let test_all_same_timestamp_is_set_cover () =
  (* Degenerate MQDP = set cover; OPT must match the exact engine. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:5. [ 0; 1 ]; post ~id:2 ~value:5. [ 1; 2 ];
        post ~id:3 ~value:5. [ 0 ]; post ~id:4 ~value:5. [ 2 ] ]
  in
  Alcotest.(check int) "set-cover optimum" 2
    (List.length (Mqdp.Opt.solve inst (fixed 1.)))

let test_cover_achieves_min_size () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 1 ];
        post ~id:3 ~value:2. [ 0; 1 ]; post ~id:4 ~value:5. [ 0 ] ]
  in
  let lambda = fixed 2. in
  Alcotest.(check int) "solve length = min_size"
    (Mqdp.Opt.min_size inst lambda)
    (List.length (Mqdp.Opt.solve inst lambda))

let test_state_limit_recovery () =
  (* A tight limit raises; a generous one succeeds on the same input. *)
  let inst =
    instance_of (List.init 8 (fun id -> post ~id ~value:(float_of_int id) [ id mod 2 ]))
  in
  (match Mqdp.Opt.solve ~max_states:1 inst (fixed 3.) with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Mqdp.Opt.Too_large _ -> ());
  Alcotest.(check bool) "generous limit fine" true
    (Mqdp.Coverage.is_cover inst (fixed 3.) (Mqdp.Opt.solve ~max_states:100_000 inst (fixed 3.)))

let solve_matches_min_size =
  qtest ~count:150 "Opt.solve cardinality always equals Opt.min_size"
    (arb_instance_lambda ~max_posts:12 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      List.length (Mqdp.Opt.solve inst lambda) = Mqdp.Opt.min_size inst lambda)

let opt_cover_is_valid =
  qtest ~count:150 "Opt.solve output is a valid cover"
    (arb_instance_lambda ~max_posts:12 ~max_labels:3 ())
    (fun (inst, l) ->
      let lambda = fixed l in
      check_cover "opt" inst lambda (Mqdp.Opt.solve inst lambda))

let opt_on_dense_ties =
  qtest ~count:100 "OPT = brute force under heavy timestamp ties"
    (QCheck.make
       ~print:string_of_int
       QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let n = 4 + Util.Rng.int rng 8 in
      let posts =
        List.init n (fun id ->
            post ~id
              ~value:(float_of_int (Util.Rng.int rng 3))  (* only 3 distinct times *)
              (List.init (1 + Util.Rng.int rng 2) (fun _ -> Util.Rng.int rng 3)))
      in
      let inst = instance_of posts in
      let lambda = fixed 1. in
      List.length (Mqdp.Opt.solve inst lambda)
      = List.length (Mqdp.Brute_force.solve inst lambda))

let suite =
  [
    Alcotest.test_case "isolated segments" `Quick test_isolated_segments;
    Alcotest.test_case "intersecting label sets" `Quick test_intersecting_label_sets;
    Alcotest.test_case "single cover point" `Quick test_single_cover_point;
    Alcotest.test_case "same-timestamp degenerate" `Quick
      test_all_same_timestamp_is_set_cover;
    Alcotest.test_case "solve achieves min_size" `Quick test_cover_achieves_min_size;
    Alcotest.test_case "state limit & recovery" `Quick test_state_limit_recovery;
    solve_matches_min_size;
    opt_cover_is_valid;
    opt_on_dense_ties;
  ]
