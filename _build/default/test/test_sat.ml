(* The SAT substrate: CNF representation and the DPLL solver, checked
   against exhaustive model counting. *)

let test_make_validates () =
  Alcotest.check_raises "zero literal" (Invalid_argument "Cnf.make: bad literal 0")
    (fun () -> ignore (Sat.Cnf.make ~num_vars:2 [ [ 0 ] ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Cnf.make: bad literal 5")
    (fun () -> ignore (Sat.Cnf.make ~num_vars:2 [ [ 5 ] ]))

let test_eval () =
  let cnf = Sat.Cnf.make ~num_vars:2 [ [ 1; -2 ]; [ 2 ] ] in
  let check expected a b =
    let assignment = [| false; a; b |] in
    Alcotest.(check bool) (Printf.sprintf "%b,%b" a b) expected
      (Sat.Cnf.eval cnf assignment)
  in
  check true true true;
  check false false true;
  check false true false;
  (* (x1 | ~x2) & x2 with x1=f x2=f: first clause true, second false *)
  check false false false

let test_dpll_basics () =
  let sat_cases =
    [ Sat.Cnf.make ~num_vars:1 [ [ 1 ] ];
      Sat.Cnf.make ~num_vars:1 [ [ -1 ] ];
      Sat.Cnf.make ~num_vars:2 [ [ 1; 2 ]; [ -1; 2 ] ];
      Sat.Cnf.make ~num_vars:3 [ [ 1; 2; 3 ]; [ -1; -2 ]; [ -2; -3 ]; [ -1; -3 ] ];
      Sat.Cnf.make ~num_vars:1 [] ]
  in
  List.iter
    (fun cnf ->
      match Sat.Dpll.solve cnf with
      | None -> Alcotest.fail "expected satisfiable"
      | Some assignment ->
        Alcotest.(check bool) "model satisfies" true (Sat.Cnf.eval cnf assignment))
    sat_cases;
  let unsat_cases =
    [ Sat.Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ];
      Sat.Cnf.make ~num_vars:2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ];
      Sat.Cnf.make ~num_vars:1 [ [] ] ]
  in
  List.iter
    (fun cnf -> Alcotest.(check bool) "unsat" false (Sat.Dpll.satisfiable cnf))
    unsat_cases

let test_count_models () =
  let cnf = Sat.Cnf.make ~num_vars:2 [ [ 1; 2 ] ] in
  Alcotest.(check int) "x|y has 3 models" 3 (Sat.Dpll.count_models cnf);
  let tautology = Sat.Cnf.make ~num_vars:2 [] in
  Alcotest.(check int) "empty formula: all 4" 4 (Sat.Dpll.count_models tautology)

let arb_cnf =
  let gen =
    QCheck.Gen.(
      let* num_vars = int_range 1 6 in
      let* num_clauses = int_range 1 10 in
      let* clause_size = int_range 1 (min 3 num_vars) in
      let* seed = int_range 0 1_000_000 in
      return (Sat.Cnf.random ~seed ~num_vars ~num_clauses ~clause_size))
  in
  QCheck.make ~print:(Format.asprintf "%a" Sat.Cnf.pp) gen

let dpll_agrees_with_enumeration =
  Helpers.qtest ~count:300 "DPLL = exhaustive enumeration" arb_cnf (fun cnf ->
      Sat.Dpll.satisfiable cnf = (Sat.Dpll.count_models cnf > 0))

let dpll_models_satisfy =
  Helpers.qtest ~count:300 "DPLL models actually satisfy" arb_cnf (fun cnf ->
      match Sat.Dpll.solve cnf with
      | None -> true
      | Some assignment -> Sat.Cnf.eval cnf assignment)

let random_deterministic =
  Helpers.qtest "Cnf.random deterministic in seed"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      Sat.Cnf.random ~seed ~num_vars:4 ~num_clauses:6 ~clause_size:2
      = Sat.Cnf.random ~seed ~num_vars:4 ~num_clauses:6 ~clause_size:2)

let suite =
  [
    Alcotest.test_case "make validates literals" `Quick test_make_validates;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "dpll sat/unsat basics" `Quick test_dpll_basics;
    Alcotest.test_case "count_models" `Quick test_count_models;
    dpll_agrees_with_enumeration;
    dpll_models_satisfy;
    random_deterministic;
  ]
