(* TF-IDF ranked retrieval. *)

let doc id text = Index.Document.make ~id ~timestamp:0. ~text

let sample () =
  let index = Index.Inverted_index.create () in
  List.iter (Index.Inverted_index.add index)
    [
      doc 1 "senate senate senate vote";
      doc 2 "senate vote budget";
      doc 3 "weather rain forecast";
      doc 4 "budget budget deal";
    ];
  index

let test_idf_ordering () =
  let index = sample () in
  (* "senate" appears in 2 docs, "weather" in 1, "zebra" in 0. *)
  Alcotest.(check bool) "rarer term has higher idf" true
    (Index.Ranked.idf index "weather" > Index.Ranked.idf index "senate");
  Alcotest.(check bool) "absent term highest" true
    (Index.Ranked.idf index "zebra" > Index.Ranked.idf index "weather");
  Alcotest.(check bool) "idf >= 1" true (Index.Ranked.idf index "senate" >= 1.)

let test_tf_component () =
  let index = sample () in
  let d1 = Index.Inverted_index.document index 1 in
  let d2 = Index.Inverted_index.document index 2 in
  (* doc 1 repeats "senate" 3/4; doc 2 has it 1/3. *)
  Alcotest.(check bool) "repetition raises tf-idf" true
    (Index.Ranked.tf_idf index ~term:"senate" ~doc:d1
    > Index.Ranked.tf_idf index ~term:"senate" ~doc:d2);
  Alcotest.(check (float 1e-9)) "absent term scores 0" 0.
    (Index.Ranked.tf_idf index ~term:"zebra" ~doc:d1)

let test_top_k () =
  let index = sample () in
  let results = Index.Ranked.top_k index ~keywords:[ "senate" ] ~k:5 in
  Alcotest.(check (list int)) "only matching docs, best first" [ 1; 2 ]
    (List.map (fun (d, _) -> d.Index.Document.id) results);
  let top1 = Index.Ranked.top_k index ~keywords:[ "budget" ] ~k:1 in
  Alcotest.(check (list int)) "k truncates" [ 4 ]
    (List.map (fun (d, _) -> d.Index.Document.id) top1);
  Alcotest.(check (list int)) "k=0 empty" []
    (List.map (fun (d, _) -> d.Index.Document.id)
       (Index.Ranked.top_k index ~keywords:[ "budget" ] ~k:0));
  Alcotest.check_raises "negative k" (Invalid_argument "Ranked.top_k: negative k")
    (fun () -> ignore (Index.Ranked.top_k index ~keywords:[ "budget" ] ~k:(-1)))

let test_multi_keyword () =
  let index = sample () in
  let results = Index.Ranked.top_k index ~keywords:[ "senate"; "budget" ] ~k:5 in
  let ids = List.map (fun (d, _) -> d.Index.Document.id) results in
  Alcotest.(check (list int)) "union of matches" [ 1; 2; 4 ]
    (List.sort Int.compare ids);
  (* Scores are the additive combination. *)
  List.iter
    (fun (d, s) ->
      let expected =
        Index.Ranked.tf_idf index ~term:"senate" ~doc:d
        +. Index.Ranked.tf_idf index ~term:"budget" ~doc:d
      in
      Alcotest.(check (float 1e-9)) "additive" expected s)
    results

let scores_sorted =
  Helpers.qtest ~count:100 "top_k scores descending"
    QCheck.(list_of_size Gen.(int_range 1 20)
              (list_of_size Gen.(int_range 1 5) (oneofl [ "aa"; "bb"; "cc"; "dd" ])))
    (fun docs ->
      let index = Index.Inverted_index.create () in
      List.iteri
        (fun id tokens ->
          Index.Inverted_index.add index
            (Index.Document.make_raw ~id ~timestamp:0.
               ~text:(String.concat " " tokens) ~tokens))
        docs;
      let results = Index.Ranked.top_k index ~keywords:[ "aa"; "bb" ] ~k:10 in
      let scores = List.map snd results in
      List.sort (fun a b -> Float.compare b a) scores = scores)

let suite =
  [
    Alcotest.test_case "idf ordering" `Quick test_idf_ordering;
    Alcotest.test_case "tf component" `Quick test_tf_component;
    Alcotest.test_case "top_k" `Quick test_top_k;
    Alcotest.test_case "multi-keyword scores" `Quick test_multi_keyword;
    scores_sorted;
  ]
