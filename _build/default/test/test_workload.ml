(* Workload generators: determinism, rate/overlap control, catalog
   structure, matching pipeline behaviour. *)

let topics = Workload.Catalog.subtopics ~per_broad:4 ~seed:1

let test_catalog_shape () =
  Alcotest.(check int) "10 broads x 4" 40 (Array.length topics);
  Array.iter
    (fun t ->
      Alcotest.(check bool) "has keywords" true
        (Array.length t.Workload.Catalog.keywords >= 3);
      Alcotest.(check bool) "mood bounded" true
        (t.Workload.Catalog.mood >= -1. && t.Workload.Catalog.mood <= 1.))
    topics

let test_catalog_entities_unique () =
  let entities = Array.map (fun t -> t.Workload.Catalog.keywords.(0)) topics in
  let distinct =
    List.length (List.sort_uniq String.compare (Array.to_list entities))
  in
  Alcotest.(check int) "entity keywords unique" (Array.length topics) distinct

let test_catalog_deterministic () =
  let again = Workload.Catalog.subtopics ~per_broad:4 ~seed:1 in
  Alcotest.(check bool) "same seed same catalog" true (topics = again);
  let other = Workload.Catalog.subtopics ~per_broad:4 ~seed:2 in
  Alcotest.(check bool) "different seed differs" true (topics <> other)

let test_label_set_within_broad () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 20 do
    let labels = Workload.Catalog.pick_label_set rng topics ~size:3 in
    Alcotest.(check int) "size" 3 (List.length labels);
    let broads =
      List.sort_uniq String.compare
        (List.map (fun i -> topics.(i).Workload.Catalog.broad) labels)
    in
    Alcotest.(check int) "single broad theme" 1 (List.length broads)
  done

let test_stream_gen_basics () =
  let config =
    { (Workload.Stream_gen.default_config ~topics ~seed:5) with
      Workload.Stream_gen.duration = 300.;
      topic_rate = 0.02 }
  in
  let tweets = Workload.Stream_gen.generate config in
  Alcotest.(check bool) "nonempty" true (List.length tweets > 0);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Workload.Tweet.time <= b.Workload.Tweet.time && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by time" true (sorted tweets);
  List.iteri
    (fun i t ->
      Alcotest.(check int) "dense ids" i t.Workload.Tweet.id;
      Alcotest.(check bool) "time in range" true
        (t.Workload.Tweet.time >= 0. && t.Workload.Tweet.time < 300.);
      Alcotest.(check bool) "has topics" true (t.Workload.Tweet.topics <> []);
      Alcotest.(check bool) "sentiment bounded" true
        (t.Workload.Tweet.sentiment >= -1. && t.Workload.Tweet.sentiment <= 1.))
    tweets

let test_stream_gen_deterministic () =
  let config = Workload.Stream_gen.default_config ~topics ~seed:5 in
  Alcotest.(check bool) "reproducible" true
    (Workload.Stream_gen.generate config = Workload.Stream_gen.generate config)

let test_stream_rate_scales () =
  let make rate =
    List.length
      (Workload.Stream_gen.generate
         { (Workload.Stream_gen.default_config ~topics ~seed:5) with
           Workload.Stream_gen.duration = 600.;
           topic_rate = rate;
           bursts_per_hour = 0. })
  in
  let slow = make 0.005 and fast = make 0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "4x rate gives ~4x posts (%d vs %d)" slow fast)
    true
    (float_of_int fast /. float_of_int slow > 2.5
    && float_of_int fast /. float_of_int slow < 5.5)

let test_direct_gen_rate () =
  let config =
    { (Workload.Direct_gen.default_config ~num_labels:5 ~seed:1) with
      Workload.Direct_gen.duration = 6000.;
      rate_per_min = 30. }
  in
  let posts = Workload.Direct_gen.generate config in
  (* 100 minutes at 30/min: Poisson(3000), so within +-10%. *)
  let n = List.length posts in
  Alcotest.(check bool) (Printf.sprintf "rate respected (%d)" n) true
    (n > 2700 && n < 3300)

let test_direct_gen_overlap_control () =
  let base = Workload.Direct_gen.default_config ~num_labels:6 ~seed:2 in
  List.iter
    (fun target ->
      let config =
        Workload.Direct_gen.overlap_config
          ~base:{ base with Workload.Direct_gen.duration = 3000. }
          ~overlap:target
      in
      Alcotest.(check (float 1e-9)) "configured mean" target
        (Workload.Direct_gen.expected_overlap config);
      let inst = Workload.Direct_gen.instance config in
      let realized = Mqdp.Instance.overlap_rate inst in
      Alcotest.(check bool)
        (Printf.sprintf "realized %.2f near target %.2f" realized target)
        true
        (Float.abs (realized -. target) < 0.12))
    [ 1.0; 1.4; 2.0; 2.6; 3.0 ]

let test_direct_gen_label_skew () =
  let config =
    { (Workload.Direct_gen.default_config ~num_labels:6 ~seed:3) with
      Workload.Direct_gen.duration = 3000.;
      label_skew = 1.2 }
  in
  let inst = Workload.Direct_gen.instance config in
  let count a = Array.length (Mqdp.Instance.label_posts inst a) in
  Alcotest.(check bool) "label 0 most popular" true (count 0 > count 5)

let test_direct_gen_validation () =
  let base = Workload.Direct_gen.default_config ~num_labels:2 ~seed:1 in
  Alcotest.check_raises "overlap slots > labels"
    (Invalid_argument "Direct_gen: more label slots than labels") (fun () ->
      ignore
        (Workload.Direct_gen.generate
           { base with Workload.Direct_gen.overlap_probs = [| 0.5; 0.3; 0.2 |] }))

let test_matching_recovers_topics () =
  let config =
    { (Workload.Stream_gen.default_config ~topics ~seed:7) with
      Workload.Stream_gen.duration = 300.;
      topic_rate = 0.02 }
  in
  let tweets = Workload.Stream_gen.generate config in
  let chosen = [ 0; 1; 2 ] in
  let queries =
    Array.of_list (List.map (fun i -> topics.(i).Workload.Catalog.keywords) chosen)
  in
  let matched = Workload.Matching.match_tweets ~queries tweets in
  Alcotest.(check bool) "matches exist" true (matched <> []);
  (* Every tweet planted on a chosen topic must be matched to it: its text
     contains a keyword of that topic by construction... except when all
     keyword draws collapsed to shared broad words also in other topics —
     the entity itself is always a candidate, so require >= 90%. *)
  let planted =
    List.filter
      (fun t -> List.exists (fun i -> List.mem i chosen) t.Workload.Tweet.topics)
      tweets
  in
  let recovered =
    List.filter
      (fun m ->
        List.exists
          (fun label -> List.mem (List.nth chosen label) m.Workload.Matching.tweet.Workload.Tweet.topics)
          m.Workload.Matching.labels)
      matched
  in
  Alcotest.(check bool)
    (Printf.sprintf "recall %d/%d" (List.length recovered) (List.length planted))
    true
    (float_of_int (List.length recovered) /. float_of_int (max 1 (List.length planted))
    > 0.7)

let test_matching_hashtags () =
  let tweet =
    { Workload.Tweet.id = 0; time = 0.; text = "#senate vote"; tokens = [ "#senate"; "vote" ];
      topics = []; sentiment = 0. }
  in
  let matched = Workload.Matching.match_tweets ~queries:[| [| "senate" |] |] [ tweet ] in
  Alcotest.(check int) "hashtag matches its keyword" 1 (List.length matched)

let test_build_instance_dimension () =
  let mk id time text sentiment =
    { Workload.Tweet.id; time; text; tokens = Text.Tokenizer.tokenize text;
      topics = []; sentiment }
  in
  let tweets =
    [ mk 0 0. "market great rally" 0.; mk 1 10. "market terrible crash" 0. ]
  in
  let queries = [| [| "market" |] |] in
  let time_inst, _ =
    Workload.Matching.build_instance ~dimension:Workload.Matching.Time ~queries tweets
  in
  Alcotest.(check (float 0.)) "time dimension" 0. (Mqdp.Instance.value time_inst 0);
  let senti_inst, _ =
    Workload.Matching.build_instance ~dimension:Workload.Matching.Sentiment_score
      ~queries tweets
  in
  (* Sorted by value: the negative tweet comes first. *)
  Alcotest.(check int) "negative first" 1 (Mqdp.Instance.post senti_inst 0).Mqdp.Post.id;
  Alcotest.(check bool) "values are polarities" true
    (Mqdp.Instance.value senti_inst 0 < 0. && Mqdp.Instance.value senti_inst 1 > 0.)

let test_news_gen () =
  let articles = Workload.News_gen.articles ~seed:1 ~topics ~count:20 in
  Alcotest.(check int) "count" 20 (List.length articles);
  List.iter
    (fun a ->
      let n = List.length a.Workload.News_gen.tokens in
      Alcotest.(check bool) "length in [80, 200]" true (n >= 80 && n <= 200);
      Alcotest.(check bool) "planted topics recorded" true
        (a.Workload.News_gen.subtopics <> []))
    articles;
  let again = Workload.News_gen.articles ~seed:1 ~topics ~count:20 in
  Alcotest.(check bool) "deterministic" true (articles = again)

let suite =
  [
    Alcotest.test_case "catalog shape" `Quick test_catalog_shape;
    Alcotest.test_case "catalog entities unique" `Quick test_catalog_entities_unique;
    Alcotest.test_case "catalog deterministic" `Quick test_catalog_deterministic;
    Alcotest.test_case "label sets stay in one broad" `Quick test_label_set_within_broad;
    Alcotest.test_case "stream gen basics" `Quick test_stream_gen_basics;
    Alcotest.test_case "stream gen deterministic" `Quick test_stream_gen_deterministic;
    Alcotest.test_case "stream rate scales" `Quick test_stream_rate_scales;
    Alcotest.test_case "direct gen rate" `Quick test_direct_gen_rate;
    Alcotest.test_case "direct gen overlap control" `Quick test_direct_gen_overlap_control;
    Alcotest.test_case "direct gen label skew" `Quick test_direct_gen_label_skew;
    Alcotest.test_case "direct gen validation" `Quick test_direct_gen_validation;
    Alcotest.test_case "matching recovers planted topics" `Quick
      test_matching_recovers_topics;
    Alcotest.test_case "matching strips hashtags" `Quick test_matching_hashtags;
    Alcotest.test_case "build_instance dimensions" `Quick test_build_instance_dimension;
    Alcotest.test_case "news generator" `Quick test_news_gen;
  ]
