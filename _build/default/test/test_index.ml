(* Inverted index: unit behaviour plus a model check against a naive
   full-scan evaluator over random corpora. *)

let doc id timestamp text = Index.Document.make ~id ~timestamp ~text

let sample_index () =
  let index = Index.Inverted_index.create () in
  List.iter (Index.Inverted_index.add index)
    [
      doc 10 0. "senate votes on the budget bill";
      doc 11 60. "lakers win the championship";
      doc 12 120. "senate blocks the championship parade bill";
      doc 13 180. "weather forecast rain";
    ];
  index

let test_term_search () =
  let index = sample_index () in
  Alcotest.(check (list int)) "senate" [ 10; 12 ]
    (Index.Inverted_index.search index (Index.Query.Term "senate"));
  Alcotest.(check (list int)) "case-insensitive" [ 10; 12 ]
    (Index.Inverted_index.search index (Index.Query.Term "SENATE"));
  Alcotest.(check (list int)) "absent term" []
    (Index.Inverted_index.search index (Index.Query.Term "zebra"))

let test_boolean_ops () =
  let index = sample_index () in
  let open Index.Query in
  Alcotest.(check (list int)) "or" [ 10; 11; 12 ]
    (Index.Inverted_index.search index (Or [ Term "senate"; Term "championship" ]));
  Alcotest.(check (list int)) "and" [ 12 ]
    (Index.Inverted_index.search index (And [ Term "senate"; Term "championship" ]));
  Alcotest.(check (list int)) "and-not" [ 10 ]
    (Index.Inverted_index.search index (And [ Term "senate"; Not (Term "championship") ]));
  Alcotest.(check (list int)) "not" [ 13 ]
    (Index.Inverted_index.search index
       (Not (Or [ Term "senate"; Term "championship" ])));
  Alcotest.(check (list int)) "empty and = all" [ 10; 11; 12; 13 ]
    (Index.Inverted_index.search index (And []))

let test_range_search () =
  let index = sample_index () in
  Alcotest.(check (list int)) "range" [ 12 ]
    (Index.Inverted_index.search_range index (Index.Query.Term "senate") ~lo:30. ~hi:150.);
  Alcotest.(check (list int)) "inclusive bounds" [ 10; 12 ]
    (Index.Inverted_index.search_range index (Index.Query.Term "senate") ~lo:0. ~hi:120.)

let test_stats_and_lookup () =
  let index = sample_index () in
  Alcotest.(check int) "doc_count" 4 (Index.Inverted_index.doc_count index);
  Alcotest.(check int) "df senate" 2 (Index.Inverted_index.postings_size index "senate");
  Alcotest.(check int) "df zebra" 0 (Index.Inverted_index.postings_size index "zebra");
  let d = Index.Inverted_index.document index 11 in
  Alcotest.(check string) "document text" "lakers win the championship"
    d.Index.Document.text;
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Index.Inverted_index.document index 999))

let test_duplicate_id_rejected () =
  let index = sample_index () in
  Alcotest.check_raises "dup" (Invalid_argument "Inverted_index.add: duplicate id 10")
    (fun () -> Index.Inverted_index.add index (doc 10 999. "anything"))

let test_repeated_term_in_doc () =
  let index = Index.Inverted_index.create () in
  Index.Inverted_index.add index (doc 1 0. "spam spam spam spam");
  Alcotest.(check (list int)) "posting not duplicated" [ 1 ]
    (Index.Inverted_index.search index (Index.Query.Term "spam"))

(* Model check: random docs over a tiny vocabulary, random queries,
   compared against naive evaluation. *)

let vocab = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |]

let gen_corpus =
  QCheck.Gen.(
    let gen_doc id =
      let* words = list_size (int_range 1 6) (oneofl (Array.to_list vocab)) in
      return (id, String.concat " " words)
    in
    let* n = int_range 1 25 in
    flatten_l (List.init n gen_doc))

let rec gen_query depth =
  QCheck.Gen.(
    if depth = 0 then map (fun w -> Index.Query.Term w) (oneofl (Array.to_list vocab))
    else
      frequency
        [
          (3, map (fun w -> Index.Query.Term w) (oneofl (Array.to_list vocab)));
          (2, map (fun qs -> Index.Query.Or qs) (list_size (int_range 1 3) (gen_query (depth - 1))));
          (2, map (fun qs -> Index.Query.And qs) (list_size (int_range 1 3) (gen_query (depth - 1))));
          (1, map (fun q -> Index.Query.Not q) (gen_query (depth - 1)));
        ])

let rec naive_matches query tokens =
  match query with
  | Index.Query.Term w -> List.mem w tokens
  | Index.Query.Or qs -> List.exists (fun q -> naive_matches q tokens) qs
  | Index.Query.And qs -> List.for_all (fun q -> naive_matches q tokens) qs
  | Index.Query.Not q -> not (naive_matches q tokens)

let arb_corpus_query =
  QCheck.make
    ~print:(fun (docs, q) ->
      Format.asprintf "%d docs; query %a" (List.length docs) Index.Query.pp q)
    QCheck.Gen.(pair gen_corpus (gen_query 2))

let index_matches_naive =
  Helpers.qtest ~count:300 "boolean search = naive scan" arb_corpus_query
    (fun (docs, query) ->
      let index = Index.Inverted_index.create () in
      List.iter (fun (id, text) -> Index.Inverted_index.add index (doc id 0. text)) docs;
      let expected =
        List.filter_map
          (fun (id, text) ->
            if naive_matches query (Text.Tokenizer.tokenize_clean text) then Some id
            else None)
          docs
      in
      Index.Inverted_index.search index query = expected)

let range_is_filter =
  Helpers.qtest ~count:150 "search_range = search + timestamp filter"
    arb_corpus_query
    (fun (docs, query) ->
      let index = Index.Inverted_index.create () in
      List.iteri
        (fun i (id, text) ->
          Index.Inverted_index.add index (doc id (float_of_int i) text))
        docs;
      let lo = 1. and hi = float_of_int (List.length docs) /. 2. in
      let all = Index.Inverted_index.search index query in
      let expected =
        List.filter
          (fun id ->
            let d = Index.Inverted_index.document index id in
            d.Index.Document.timestamp >= lo && d.Index.Document.timestamp <= hi)
          all
      in
      Index.Inverted_index.search_range index query ~lo ~hi = expected)

let gen_corpus_arb =
  QCheck.make ~print:(fun docs -> Printf.sprintf "%d docs" (List.length docs)) gen_corpus

let query_of_keywords_matches_any =
  Helpers.qtest ~count:150 "of_keywords = OR semantics" gen_corpus_arb
    (fun docs ->
      let index = Index.Inverted_index.create () in
      List.iter (fun (id, text) -> Index.Inverted_index.add index (doc id 0. text)) docs;
      let q = Index.Query.of_keywords [ "alpha"; "delta" ] in
      let expected =
        List.filter_map
          (fun (id, text) ->
            let tokens = Text.Tokenizer.tokenize_clean text in
            if List.mem "alpha" tokens || List.mem "delta" tokens then Some id else None)
          docs
      in
      Index.Inverted_index.search index q = expected)

let suite =
  [
    Alcotest.test_case "term search" `Quick test_term_search;
    Alcotest.test_case "boolean operators" `Quick test_boolean_ops;
    Alcotest.test_case "range search" `Quick test_range_search;
    Alcotest.test_case "stats & lookup" `Quick test_stats_and_lookup;
    Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_id_rejected;
    Alcotest.test_case "repeated terms deduped" `Quick test_repeated_term_in_doc;
    index_matches_naive;
    range_is_filter;
    query_of_keywords_matches_any;
  ]

(* Query helpers. *)

let test_query_helpers () =
  let q = Index.Query.of_keywords [ "Senate"; "VOTE" ] in
  Alcotest.(check (list string)) "of_keywords lowercases"
    [ "senate"; "vote" ] (Index.Query.terms q);
  let nested =
    Index.Query.(And [ Term "a"; Not (Or [ Term "b"; Term "a" ]) ])
  in
  Alcotest.(check (list string)) "terms deduped across operators"
    [ "a"; "b" ] (Index.Query.terms nested);
  Alcotest.(check string) "pp renders structure" "(a AND NOT (b OR a))"
    (Format.asprintf "%a" Index.Query.pp nested)

let suite =
  suite @ [ Alcotest.test_case "query helpers" `Quick test_query_helpers ]
