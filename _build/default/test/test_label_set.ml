(* Label_set: unit cases plus a model-based property check against the
   stdlib Set over the same elements. *)

module Ls = Mqdp.Label_set
module IntSet = Set.Make (Int)

let to_model s = IntSet.of_list (Ls.to_list s)
let of_model m = Ls.of_list (IntSet.elements m)

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (Ls.is_empty Ls.empty);
  Alcotest.(check int) "cardinal 0" 0 (Ls.cardinal Ls.empty);
  Alcotest.(check (list int)) "no elements" [] (Ls.to_list Ls.empty)

let test_singleton () =
  let s = Ls.singleton 7 in
  Alcotest.(check bool) "mem 7" true (Ls.mem 7 s);
  Alcotest.(check bool) "not mem 6" false (Ls.mem 6 s);
  Alcotest.(check int) "cardinal" 1 (Ls.cardinal s);
  Alcotest.(check (list int)) "elements" [ 7 ] (Ls.to_list s)

let test_large_labels () =
  (* Crosses the 62-bit word boundary. *)
  let s = Ls.of_list [ 0; 61; 62; 63; 124; 200 ] in
  Alcotest.(check int) "cardinal" 6 (Ls.cardinal s);
  List.iter
    (fun x -> Alcotest.(check bool) (string_of_int x) true (Ls.mem x s))
    [ 0; 61; 62; 63; 124; 200 ];
  Alcotest.(check bool) "not mem 199" false (Ls.mem 199 s)

let test_add_remove () =
  let s = Ls.add 3 (Ls.add 1 Ls.empty) in
  Alcotest.(check (list int)) "add" [ 1; 3 ] (Ls.to_list s);
  let s = Ls.remove 1 s in
  Alcotest.(check (list int)) "remove" [ 3 ] (Ls.to_list s);
  Alcotest.(check bool) "remove absent is identity" true
    (Ls.equal s (Ls.remove 99 s))

let test_trim_invariant () =
  (* Removing the top element must trim so equality stays structural. *)
  let s = Ls.remove 200 (Ls.of_list [ 1; 200 ]) in
  Alcotest.(check bool) "equal singleton" true (Ls.equal s (Ls.singleton 1));
  Alcotest.(check bool) "diff to empty" true
    (Ls.equal Ls.empty (Ls.diff (Ls.of_list [ 70 ]) (Ls.of_list [ 70; 1 ])))

let test_set_ops () =
  let a = Ls.of_list [ 1; 2; 3 ] and b = Ls.of_list [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Ls.to_list (Ls.union a b));
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Ls.to_list (Ls.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Ls.to_list (Ls.diff a b));
  Alcotest.(check bool) "subset no" false (Ls.subset a b);
  Alcotest.(check bool) "subset yes" true (Ls.subset (Ls.of_list [ 2; 3 ]) a);
  Alcotest.(check bool) "disjoint no" false (Ls.disjoint a b);
  Alcotest.(check bool) "disjoint yes" true
    (Ls.disjoint a (Ls.of_list [ 5; 70 ]))

let test_choose_max () =
  let s = Ls.of_list [ 5; 99; 12 ] in
  Alcotest.(check int) "choose = min" 5 (Ls.choose s);
  Alcotest.(check int) "max_label" 99 (Ls.max_label s);
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Ls.choose Ls.empty))

let test_negative_rejected () =
  Alcotest.check_raises "add -1"
    (Invalid_argument "Label_set.add: negative label") (fun () ->
      ignore (Ls.add (-1) Ls.empty))

let arb_labels =
  QCheck.(list_of_size Gen.(int_range 0 12) (int_range 0 130))

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "large labels" `Quick test_large_labels;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "trim invariant" `Quick test_trim_invariant;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "choose/max" `Quick test_choose_max;
    Alcotest.test_case "negative labels rejected" `Quick test_negative_rejected;
    Helpers.qtest "to_list sorted & unique" arb_labels (fun xs ->
        let l = Ls.to_list (Ls.of_list xs) in
        l = List.sort_uniq Int.compare xs);
    Helpers.qtest "union agrees with model" (QCheck.pair arb_labels arb_labels)
      (fun (xs, ys) ->
        let a = Ls.of_list xs and b = Ls.of_list ys in
        IntSet.equal (to_model (Ls.union a b))
          (IntSet.union (to_model a) (to_model b)));
    Helpers.qtest "inter agrees with model" (QCheck.pair arb_labels arb_labels)
      (fun (xs, ys) ->
        let a = Ls.of_list xs and b = Ls.of_list ys in
        IntSet.equal (to_model (Ls.inter a b))
          (IntSet.inter (to_model a) (to_model b)));
    Helpers.qtest "diff agrees with model" (QCheck.pair arb_labels arb_labels)
      (fun (xs, ys) ->
        let a = Ls.of_list xs and b = Ls.of_list ys in
        IntSet.equal (to_model (Ls.diff a b))
          (IntSet.diff (to_model a) (to_model b)));
    Helpers.qtest "structural equality is set equality"
      (QCheck.pair arb_labels arb_labels)
      (fun (xs, ys) ->
        let a = Ls.of_list xs and b = Ls.of_list ys in
        Ls.equal a b = IntSet.equal (to_model a) (to_model b));
    Helpers.qtest "subset agrees with model" (QCheck.pair arb_labels arb_labels)
      (fun (xs, ys) ->
        let a = Ls.of_list xs and b = Ls.of_list ys in
        Ls.subset a b = IntSet.subset (to_model a) (to_model b));
    Helpers.qtest "disjoint iff empty inter" (QCheck.pair arb_labels arb_labels)
      (fun (xs, ys) ->
        let a = Ls.of_list xs and b = Ls.of_list ys in
        Ls.disjoint a b = Ls.is_empty (Ls.inter a b));
    Helpers.qtest "fold visits cardinal elements" arb_labels (fun xs ->
        let s = Ls.of_list xs in
        Ls.fold (fun _ acc -> acc + 1) s 0 = Ls.cardinal s);
    Helpers.qtest "roundtrip through model" arb_labels (fun xs ->
        let s = Ls.of_list xs in
        Ls.equal s (of_model (to_model s)));
  ]

(* Label.Table — the interning registry. *)

let test_label_table () =
  let table = Mqdp.Label.Table.create () in
  let a = Mqdp.Label.Table.intern table "politics" in
  let b = Mqdp.Label.Table.intern table "sports" in
  let a' = Mqdp.Label.Table.intern table "politics" in
  Alcotest.(check int) "dense ids from 0" 0 a;
  Alcotest.(check int) "second id" 1 b;
  Alcotest.(check int) "interning is idempotent" a a';
  Alcotest.(check int) "count" 2 (Mqdp.Label.Table.count table);
  Alcotest.(check string) "name" "politics" (Mqdp.Label.Table.name table a);
  Alcotest.(check (option int)) "find known" (Some 1)
    (Mqdp.Label.Table.find table "sports");
  Alcotest.(check (option int)) "find unknown" None
    (Mqdp.Label.Table.find table "weather");
  Alcotest.(check (array string)) "names in id order" [| "politics"; "sports" |]
    (Mqdp.Label.Table.names table);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Label.Table.name: unknown id") (fun () ->
      ignore (Mqdp.Label.Table.name table 99))

let table_roundtrip =
  Helpers.qtest "Label.Table intern/name roundtrip"
    QCheck.(list_of_size Gen.(int_range 1 30) printable_string)
    (fun names ->
      let table = Mqdp.Label.Table.create () in
      let ids = List.map (Mqdp.Label.Table.intern table) names in
      List.for_all2 (fun name id -> Mqdp.Label.Table.name table id = name) names ids
      && Mqdp.Label.Table.count table
         = List.length (List.sort_uniq String.compare names))

let suite =
  suite
  @ [
      Alcotest.test_case "Label.Table basics" `Quick test_label_table;
      table_roundtrip;
    ]
