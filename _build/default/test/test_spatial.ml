(* The spatiotemporal extension (paper §9 future work). *)

let ls = Mqdp.Label_set.of_list

let gp id time lat lon labels =
  Mqdp.Spatial.make_post ~id ~time ~lat ~lon ~labels:(ls labels)

let th lambda_time radius_km = { Mqdp.Spatial.lambda_time; radius_km }

let test_haversine_known_distances () =
  (* London (51.5074, -0.1278) to Paris (48.8566, 2.3522) ~ 344 km. *)
  let d = Mqdp.Spatial.haversine_km (51.5074, -0.1278) (48.8566, 2.3522) in
  Alcotest.(check bool) (Printf.sprintf "London-Paris %.0f km" d) true
    (d > 330. && d < 355.);
  Alcotest.(check (float 1e-9)) "zero distance" 0.
    (Mqdp.Spatial.haversine_km (40., 20.) (40., 20.));
  (* One degree of latitude ~ 111 km anywhere. *)
  let d1 = Mqdp.Spatial.haversine_km (10., 50.) (11., 50.) in
  Alcotest.(check bool) "1 deg latitude ~111km" true (d1 > 110. && d1 < 112.);
  (* Symmetry. *)
  Alcotest.(check (float 1e-9)) "symmetric"
    (Mqdp.Spatial.haversine_km (10., 20.) (30., 40.))
    (Mqdp.Spatial.haversine_km (30., 40.) (10., 20.))

let test_covers_needs_both_dimensions () =
  let a = gp 1 0. 40. 20. [ 0 ] in
  let near_both = gp 2 30. 40.05 20. [ 0 ] in
  let near_time_far_space = gp 3 30. 45. 20. [ 0 ] in
  let near_space_far_time = gp 4 500. 40.05 20. [ 0 ] in
  let other_label = gp 5 30. 40.05 20. [ 1 ] in
  let t = th 60. 10. in
  Alcotest.(check bool) "both close" true
    (Mqdp.Spatial.covers_label t ~by:a 0 near_both);
  Alcotest.(check bool) "space too far" false
    (Mqdp.Spatial.covers_label t ~by:a 0 near_time_far_space);
  Alcotest.(check bool) "time too far" false
    (Mqdp.Spatial.covers_label t ~by:a 0 near_space_far_time);
  Alcotest.(check bool) "label mismatch" false
    (Mqdp.Spatial.covers_label t ~by:a 0 other_label)

let test_make_post_validation () =
  Alcotest.check_raises "bad latitude"
    (Invalid_argument "Spatial.make_post: latitude out of range") (fun () ->
      ignore (gp 1 0. 91. 0. [ 0 ]));
  Alcotest.check_raises "bad longitude"
    (Invalid_argument "Spatial.make_post: longitude out of range") (fun () ->
      ignore (gp 1 0. 0. 181. [ 0 ]))

let two_cities =
  (* Same label, same time, two distant cities: a time-only cover of one
     post is NOT a spatiotemporal cover. *)
  Mqdp.Spatial.create
    [ gp 1 0. 40. (-74.) [ 0 ]; gp 2 10. 40.01 (-74.01) [ 0 ];
      gp 3 5. 51.5 (-0.13) [ 0 ]; gp 4 12. 51.51 (-0.12) [ 0 ] ]

let test_greedy_two_cities () =
  let t = th 60. 50. in
  let cover = Mqdp.Spatial.greedy two_cities t in
  Alcotest.(check bool) "is cover" true (Mqdp.Spatial.is_cover two_cities t cover);
  Alcotest.(check int) "needs one post per city" 2 (List.length cover);
  (* A single post can never cover both cities. *)
  Alcotest.(check bool) "singletons fail" true
    (List.for_all
       (fun i -> not (Mqdp.Spatial.is_cover two_cities t [ i ]))
       [ 0; 1; 2; 3 ])

let test_brute_matches_greedy_when_tight () =
  let t = th 60. 50. in
  Alcotest.(check int) "brute = 2" 2
    (List.length (Mqdp.Spatial.brute_force two_cities t))

let test_uncovered_diagnostics () =
  let t = th 60. 50. in
  (* Covering only the New York pair leaves both London pairs uncovered. *)
  let bad = Mqdp.Spatial.uncovered two_cities t [ 0 ] in
  Alcotest.(check int) "two uncovered pairs" 2 (List.length bad);
  Alcotest.(check bool) "all label 0" true (List.for_all (fun (_, a) -> a = 0) bad)

let test_degenerate_thresholds () =
  let t0 = th 0. 0. in
  let inst =
    Mqdp.Spatial.create [ gp 1 0. 40. 20. [ 0 ]; gp 2 0. 40. 20. [ 0 ] ]
  in
  (* Identical time and place: either covers both. *)
  Alcotest.(check int) "coincident posts collapse" 1
    (List.length (Mqdp.Spatial.greedy inst t0))

let arb_geo_instance =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 25 in
      let* num_labels = int_range 1 3 in
      let gen_post id =
        let* time = float_bound_exclusive 100. in
        let* lat = map (fun x -> 30. +. x) (float_bound_exclusive 10.) in
        let* lon = map (fun x -> -10. +. x) (float_bound_exclusive 20.) in
        let* k = int_range 1 (min 2 num_labels) in
        let* labels = list_repeat k (int_range 0 (num_labels - 1)) in
        return (gp id time lat lon labels)
      in
      let* posts = flatten_l (List.init n gen_post) in
      return (Mqdp.Spatial.create posts))
  in
  QCheck.make ~print:(fun t -> Printf.sprintf "%d geo posts" (Mqdp.Spatial.size t)) gen

let greedy_always_covers =
  Helpers.qtest ~count:150 "spatial greedy always covers" arb_geo_instance
    (fun inst ->
      let t = th 20. 300. in
      Mqdp.Spatial.is_cover inst t (Mqdp.Spatial.greedy inst t))

let brute_no_larger_than_greedy =
  Helpers.qtest ~count:80 "spatial brute force <= greedy" arb_geo_instance
    (fun inst ->
      let t = th 20. 300. in
      let exact = Mqdp.Spatial.brute_force inst t in
      Mqdp.Spatial.is_cover inst t exact
      && List.length exact <= List.length (Mqdp.Spatial.greedy inst t))

let spatial_reduces_to_temporal =
  Helpers.qtest ~count:80 "huge radius reduces to the 1-D problem" arb_geo_instance
    (fun inst ->
      (* With an earth-sized radius only time matters: sizes must match
         the 1-D exact solver on the same timestamps. *)
      let t = th 20. 50_000. in
      let posts_1d =
        List.init (Mqdp.Spatial.size inst) (fun i ->
            let p = Mqdp.Spatial.post inst i in
            Mqdp.Post.make ~id:p.Mqdp.Spatial.id ~value:p.Mqdp.Spatial.time
              ~labels:p.Mqdp.Spatial.labels)
      in
      let inst_1d = Mqdp.Instance.create posts_1d in
      List.length (Mqdp.Spatial.brute_force inst t)
      = List.length (Mqdp.Brute_force.solve inst_1d (Mqdp.Coverage.Fixed 20.)))

let geo_gen_wellformed =
  Helpers.qtest ~count:30 "geo generator output is well-formed"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let config =
        { (Workload.Geo_gen.default_config ~num_labels:3 ~seed) with
          Workload.Geo_gen.duration = 600.;
          rate_per_min = 20. }
      in
      let posts = Workload.Geo_gen.generate config in
      List.for_all
        (fun p ->
          p.Mqdp.Spatial.time >= 0.
          && p.Mqdp.Spatial.time < 600.
          && Float.abs p.Mqdp.Spatial.lat <= 90.
          && Float.abs p.Mqdp.Spatial.lon <= 180.
          && not (Mqdp.Label_set.is_empty p.Mqdp.Spatial.labels))
        posts)

let suite =
  [
    Alcotest.test_case "haversine known distances" `Quick test_haversine_known_distances;
    Alcotest.test_case "coverage needs both dimensions" `Quick
      test_covers_needs_both_dimensions;
    Alcotest.test_case "post validation" `Quick test_make_post_validation;
    Alcotest.test_case "greedy on two cities" `Quick test_greedy_two_cities;
    Alcotest.test_case "brute force on two cities" `Quick
      test_brute_matches_greedy_when_tight;
    Alcotest.test_case "uncovered diagnostics" `Quick test_uncovered_diagnostics;
    Alcotest.test_case "degenerate thresholds" `Quick test_degenerate_thresholds;
    greedy_always_covers;
    brute_no_larger_than_greedy;
    spatial_reduces_to_temporal;
    geo_gen_wellformed;
  ]
