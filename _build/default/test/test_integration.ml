(* End-to-end integration: the paper's Figure 1 pipeline wired together,
   plus cross-module consistency checks at realistic (small) scale. *)

let topics = Workload.Catalog.subtopics ~per_broad:3 ~seed:9

let test_search_pipeline () =
  (* stream -> index -> multi-query search -> diversify -> verify *)
  let config =
    { (Workload.Stream_gen.default_config ~topics ~seed:31) with
      Workload.Stream_gen.duration = 900.;
      topic_rate = 0.015 }
  in
  let tweets = Workload.Stream_gen.generate config in
  let index = Index.Inverted_index.create () in
  List.iter
    (fun t ->
      Index.Inverted_index.add index
        (Index.Document.make_raw ~id:t.Workload.Tweet.id
           ~timestamp:t.Workload.Tweet.time ~text:t.Workload.Tweet.text
           ~tokens:t.Workload.Tweet.tokens))
    tweets;
  let queries =
    Array.of_list
      (List.map (fun i -> topics.(i).Workload.Catalog.keywords) [ 0; 3; 6 ])
  in
  let instance, docs =
    Workload.Matching.via_index index ~queries ~lo:0. ~hi:900.
      ~dimension:Workload.Matching.Time
  in
  Alcotest.(check bool) "search found posts" true (Mqdp.Instance.size instance > 10);
  let lambda = Mqdp.Coverage.Fixed 60. in
  let cover = Mqdp.Greedy_sc.solve instance lambda in
  Alcotest.(check bool) "diversified cover valid" true
    (Mqdp.Coverage.is_cover instance lambda cover);
  Alcotest.(check bool) "cover compresses" true
    (List.length cover < Mqdp.Instance.size instance);
  (* Every selected post maps back to a document. *)
  List.iter
    (fun pos ->
      let id = (Mqdp.Instance.post instance pos).Mqdp.Post.id in
      Alcotest.(check bool) "doc exists" true (Hashtbl.mem docs id))
    cover

let test_index_matching_agrees_with_direct () =
  let config =
    { (Workload.Stream_gen.default_config ~topics ~seed:33) with
      Workload.Stream_gen.duration = 600.;
      topic_rate = 0.02 }
  in
  let tweets = Workload.Stream_gen.generate config in
  let queries =
    Array.of_list
      (List.map (fun i -> topics.(i).Workload.Catalog.keywords) [ 1; 4 ])
  in
  (* direct keyword matching *)
  let direct, _ =
    Workload.Matching.build_instance ~dimension:Workload.Matching.Time ~queries tweets
  in
  (* via the inverted index *)
  let index = Index.Inverted_index.create () in
  List.iter
    (fun t ->
      Index.Inverted_index.add index
        (Index.Document.make_raw ~id:t.Workload.Tweet.id
           ~timestamp:t.Workload.Tweet.time ~text:t.Workload.Tweet.text
           ~tokens:t.Workload.Tweet.tokens))
    tweets;
  let indexed, _ =
    Workload.Matching.via_index index ~queries ~lo:0. ~hi:600.
      ~dimension:Workload.Matching.Time
  in
  (* Hashtag handling differs: direct matching strips '#'; the index
     stores the raw token, so tweets matched ONLY via a hashtag may be
     missed by the index path. The index result must be a subset. *)
  let ids inst =
    Array.to_list (Mqdp.Instance.posts inst)
    |> List.map (fun p -> p.Mqdp.Post.id)
    |> List.sort_uniq Int.compare
  in
  let direct_ids = ids direct and indexed_ids = ids indexed in
  Alcotest.(check bool) "index path is a subset of direct matching" true
    (List.for_all (fun id -> List.mem id direct_ids) indexed_ids);
  Alcotest.(check bool) "and misses only hashtag-only matches" true
    (List.for_all
       (fun id ->
         List.mem id indexed_ids
         ||
         let tweet = List.find (fun t -> t.Workload.Tweet.id = id) tweets in
         List.exists (fun tok -> String.length tok > 0 && tok.[0] = '#')
           tweet.Workload.Tweet.tokens)
       direct_ids)

let test_full_lda_to_diversification () =
  (* corpus -> LDA -> keyword queries -> matching -> streaming diversify *)
  let planted = Workload.Catalog.subtopics ~per_broad:1 ~seed:12 in
  let articles = Workload.News_gen.articles ~seed:13 ~topics:planted ~count:150 in
  let vocabulary = Topics.Vocabulary.create () in
  let docs = Workload.News_gen.encode vocabulary articles in
  let model =
    Topics.Lda.train ~num_topics:10 ~iterations:80 ~seed:14
      ~vocab_size:(Topics.Vocabulary.size vocabulary) docs
  in
  let queries =
    Array.init 4 (fun k ->
        Topics.Lda.top_words model ~topic:k ~k:6
        |> List.map (fun (w, _) -> Topics.Vocabulary.word vocabulary w)
        |> Array.of_list)
  in
  let stream_config =
    { (Workload.Stream_gen.default_config ~topics:planted ~seed:15) with
      Workload.Stream_gen.duration = 600.;
      topic_rate = 0.03 }
  in
  let tweets = Workload.Stream_gen.generate stream_config in
  let instance, _ =
    Workload.Matching.build_instance ~dedup:true ~dimension:Workload.Matching.Time
      ~queries tweets
  in
  Alcotest.(check bool) "LDA queries match tweets" true
    (Mqdp.Instance.size instance > 0);
  let lambda = Mqdp.Coverage.Fixed 45. in
  let result = Mqdp.Stream_scan.solve ~plus:true ~tau:10. instance lambda in
  Alcotest.(check bool) "streaming cover valid" true
    (Mqdp.Coverage.is_cover instance lambda result.Mqdp.Stream.cover);
  Alcotest.(check bool) "deadline met" true
    (Mqdp.Stream.check_deadline ~tau:10. instance result)

let test_sentiment_dimension_pipeline () =
  let config =
    { (Workload.Stream_gen.default_config ~topics ~seed:41) with
      Workload.Stream_gen.duration = 600.;
      topic_rate = 0.03 }
  in
  let tweets = Workload.Stream_gen.generate config in
  let queries =
    Array.of_list (List.map (fun i -> topics.(i).Workload.Catalog.keywords) [ 0; 1 ])
  in
  let instance, _ =
    Workload.Matching.build_instance ~dimension:Workload.Matching.Sentiment_score
      ~queries tweets
  in
  Alcotest.(check bool) "sentiment values bounded" true
    (Array.for_all
       (fun p -> p.Mqdp.Post.value >= -1. && p.Mqdp.Post.value <= 1.)
       (Mqdp.Instance.posts instance));
  let lambda = Mqdp.Proportional.make ~lambda0:0.2 instance in
  let cover = Mqdp.Scan.solve_plus instance lambda in
  Alcotest.(check bool) "proportional sentiment cover valid" true
    (Mqdp.Coverage.is_cover instance lambda cover)

let test_streaming_vs_offline_sizes () =
  (* Offline algorithms should never do worse than streaming ones given
     the same lambda — streaming pays for the tau constraint. Streaming
     scan with huge tau equals offline scan, hence the comparison uses
     the instant variant, whose bound is 2s vs s. *)
  let inst =
    Workload.Direct_gen.instance
      { (Workload.Direct_gen.default_config ~num_labels:4 ~seed:55) with
        Workload.Direct_gen.duration = 1200.;
        rate_per_min = 20. }
  in
  let lambda = Mqdp.Coverage.Fixed 30. in
  let offline = List.length (Mqdp.Scan.solve inst lambda) in
  let instant =
    List.length (Mqdp.Stream_scan.solve_instant inst lambda).Mqdp.Stream.cover
  in
  let s = Mqdp.Instance.max_labels_per_post inst in
  Alcotest.(check bool)
    (Printf.sprintf "instant (%d) within 2s of offline scan (%d, s=%d)" instant
       offline s)
    true
    (instant <= 2 * s * offline)

let suite =
  [
    Alcotest.test_case "index search pipeline" `Quick test_search_pipeline;
    Alcotest.test_case "index vs direct matching" `Quick
      test_index_matching_agrees_with_direct;
    Alcotest.test_case "LDA to diversification" `Slow test_full_lda_to_diversification;
    Alcotest.test_case "sentiment dimension pipeline" `Quick
      test_sentiment_dimension_pipeline;
    Alcotest.test_case "streaming vs offline sizes" `Quick test_streaming_vs_offline_sizes;
  ]
