(* Metrics helpers. *)

open Helpers

let test_relative_error () =
  Alcotest.(check (float 1e-9)) "exact" 0. (Mqdp.Metrics.relative_error ~approx:5 ~optimal:5);
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Mqdp.Metrics.relative_error ~approx:6 ~optimal:4);
  Alcotest.check_raises "optimal 0"
    (Invalid_argument "Metrics.relative_error: optimal <= 0") (fun () ->
      ignore (Mqdp.Metrics.relative_error ~approx:1 ~optimal:0))

let test_compression () =
  Alcotest.(check (float 1e-9)) "3 of 12" 0.75
    (Mqdp.Metrics.compression ~cover_size:3 ~total:12);
  Alcotest.(check (float 1e-9)) "empty" 0. (Mqdp.Metrics.compression ~cover_size:0 ~total:0)

let test_per_label_counts () =
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0; 1 ]; post ~id:2 ~value:1. [ 0 ];
        post ~id:3 ~value:2. [ 1 ] ]
  in
  Alcotest.(check (list (pair int int))) "counts" [ (0, 2); (1, 1) ]
    (Mqdp.Metrics.per_label_counts inst [ 0; 1 ]);
  Alcotest.(check (list (pair int int))) "empty cover" [ (0, 0); (1, 0) ]
    (Mqdp.Metrics.per_label_counts inst [])

let test_label_representation () =
  (* Label 0 has 3 input pairs, label 1 has 1; a cover with one post of
     each gives label 1 a 3x representation boost. *)
  let inst =
    instance_of
      [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:5. [ 0 ];
        post ~id:3 ~value:9. [ 0 ]; post ~id:4 ~value:4. [ 1 ] ]
  in
  let rep = Mqdp.Metrics.label_representation inst [ 0; 1 ] in
  (* cover = positions 0 and 1 = posts with values 0 and 4: labels 0, 1 *)
  let ratio a = List.assoc a rep in
  Alcotest.(check (float 1e-9)) "label 0 under-represented" (2. /. 3.) (ratio 0);
  Alcotest.(check (float 1e-9)) "label 1 over-represented" 2. (ratio 1)

let test_time_per_post () =
  let inst = instance_of [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:1. [ 0 ] ] in
  Alcotest.(check (float 1e-12)) "per post" 0.005
    (Mqdp.Metrics.time_per_post ~elapsed:0.01 inst);
  Alcotest.(check (float 0.)) "empty" 0.
    (Mqdp.Metrics.time_per_post ~elapsed:1. (instance_of []))

let representation_balanced_for_full_cover =
  qtest "full cover has representation 1 for every label" (arb_instance ())
    (fun inst ->
      let full = List.init (Mqdp.Instance.size inst) Fun.id in
      List.for_all
        (fun (_, r) -> Float.abs (r -. 1.) < 1e-9)
        (Mqdp.Metrics.label_representation inst full))

let suite =
  [
    Alcotest.test_case "relative error" `Quick test_relative_error;
    Alcotest.test_case "compression" `Quick test_compression;
    Alcotest.test_case "per-label counts" `Quick test_per_label_counts;
    Alcotest.test_case "label representation" `Quick test_label_representation;
    Alcotest.test_case "time per post" `Quick test_time_per_post;
    representation_balanced_for_full_cover;
  ]
