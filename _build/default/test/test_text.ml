(* Text substrate: tokenizer, stopwords, SimHash, sentiment. *)

let test_tokenize_basic () =
  Alcotest.(check (list string)) "simple"
    [ "hello"; "world" ]
    (Text.Tokenizer.tokenize "Hello, World!");
  Alcotest.(check (list string)) "hashtags and mentions kept"
    [ "#nasdaq"; "@trader"; "up"; "5" ]
    (Text.Tokenizer.tokenize "#NASDAQ @trader up 5%");
  Alcotest.(check (list string)) "urls dropped"
    [ "read"; "this" ]
    (Text.Tokenizer.tokenize "read this http://t.co/abc123");
  Alcotest.(check (list string)) "possessive stripped"
    [ "obama"; "speech" ]
    (Text.Tokenizer.tokenize "Obama's speech");
  Alcotest.(check (list string)) "empty" [] (Text.Tokenizer.tokenize "  ... !!! ")

let test_tokenize_clean () =
  Alcotest.(check (list string)) "stopwords and short tokens dropped"
    [ "senate"; "passed"; "budget" ]
    (Text.Tokenizer.tokenize_clean "The Senate has passed a budget")

let test_stopwords () =
  Alcotest.(check bool) "the" true (Text.Stopwords.is_stopword "the");
  Alcotest.(check bool) "rt (microblog)" true (Text.Stopwords.is_stopword "rt");
  Alcotest.(check bool) "senate" false (Text.Stopwords.is_stopword "senate");
  Alcotest.(check (list string)) "filter keeps order"
    [ "senate"; "votes" ]
    (Text.Stopwords.filter [ "the"; "senate"; "votes" ])

let test_simhash_identical () =
  let a = Text.Simhash.fingerprint [ "breaking"; "news"; "senate"; "vote" ] in
  let b = Text.Simhash.fingerprint [ "breaking"; "news"; "senate"; "vote" ] in
  Alcotest.(check int) "identical lists collide" 0 (Text.Simhash.hamming a b);
  Alcotest.(check bool) "near duplicate" true (Text.Simhash.near_duplicate a b)

let test_simhash_near_and_far () =
  let base = [ "breaking"; "news"; "senate"; "votes"; "on"; "the"; "budget"; "bill"; "today" ] in
  let near = [ "breaking"; "news"; "senate"; "votes"; "on"; "the"; "budget"; "bill"; "tonight" ] in
  let far = [ "lakers"; "win"; "the"; "championship"; "parade"; "downtown" ] in
  let fb = Text.Simhash.fingerprint base in
  let fn = Text.Simhash.fingerprint near in
  let ff = Text.Simhash.fingerprint far in
  Alcotest.(check bool) "one-word change stays close" true
    (Text.Simhash.hamming fb fn < Text.Simhash.hamming fb ff);
  Alcotest.(check bool) "unrelated text is far" true (Text.Simhash.hamming fb ff > 10)

let test_simhash_empty () =
  Alcotest.(check int64) "empty is zero" 0L (Text.Simhash.fingerprint [])

let test_dedup () =
  let dedup = Text.Simhash.Dedup.create () in
  let fp1 = Text.Simhash.fingerprint [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check bool) "fresh" false (Text.Simhash.Dedup.check_and_add dedup fp1);
  Alcotest.(check bool) "repeat detected" true (Text.Simhash.Dedup.check_and_add dedup fp1);
  Alcotest.(check int) "count" 2 (Text.Simhash.Dedup.count dedup);
  Alcotest.check_raises "threshold > 3"
    (Invalid_argument "Simhash.Dedup.create: threshold must be in [0, 3]") (fun () ->
      ignore (Text.Simhash.Dedup.create ~threshold:5 ()))

let dedup_finds_all_within_threshold =
  Helpers.qtest ~count:100 "banded dedup agrees with exhaustive comparison"
    QCheck.(list_of_size Gen.(int_range 1 30) (list_of_size Gen.(int_range 1 6) printable_string))
    (fun token_lists ->
      let fps = List.map Text.Simhash.fingerprint token_lists in
      let dedup = Text.Simhash.Dedup.create () in
      List.for_all
        (fun fp ->
          let expected =
            (* exhaustive scan over everything added so far *)
            List.exists
              (fun prev -> Text.Simhash.near_duplicate prev fp)
              (List.filteri
                 (fun i _ -> i < Text.Simhash.Dedup.count dedup)
                 fps)
          in
          let got = Text.Simhash.Dedup.check_and_add dedup fp in
          got = expected)
        fps)

let test_sentiment_polarity () =
  let score = Text.Sentiment.score_text in
  Alcotest.(check bool) "positive" true (score "what a great wonderful day" > 0.1);
  Alcotest.(check bool) "negative" true (score "terrible awful crash" < -0.1);
  Alcotest.(check (float 0.)) "neutral" 0. (score "the cat sat on the mat");
  Alcotest.(check (float 0.)) "empty" 0. (score "")

let test_sentiment_negation () =
  let score = Text.Sentiment.score_text in
  Alcotest.(check bool) "negated positive flips" true (score "not good at all" < 0.);
  Alcotest.(check bool) "negated negative flips" true (score "not bad actually" > 0.);
  Alcotest.(check bool) "negation window expires" true
    (score "no x y z w good" > 0.)

let test_sentiment_intensifier () =
  let score = Text.Sentiment.score_text in
  Alcotest.(check bool) "very amplifies" true
    (score "very good" > score "good");
  Alcotest.(check bool) "extremely bad below bad" true
    (score "extremely bad" < score "bad")

let test_sentiment_bounds_and_classify () =
  let score = Text.Sentiment.score_text in
  let s = score "amazing awesome fantastic wonderful brilliant perfect excellent" in
  Alcotest.(check bool) "bounded" true (s <= 1. && s >= -1.);
  Alcotest.(check string) "positive class" "positive"
    (Text.Sentiment.polarity_name (Text.Sentiment.classify 0.5));
  Alcotest.(check string) "negative class" "negative"
    (Text.Sentiment.polarity_name (Text.Sentiment.classify (-0.5)));
  Alcotest.(check string) "neutral class" "neutral"
    (Text.Sentiment.polarity_name (Text.Sentiment.classify 0.05))

let sentiment_always_bounded =
  Helpers.qtest "score bounded in [-1, 1]"
    QCheck.(list printable_string)
    (fun tokens ->
      let s = Text.Sentiment.score tokens in
      s >= -1. && s <= 1.)

let tokenizer_idempotent =
  Helpers.qtest "tokenize of rejoined tokens is stable"
    QCheck.(printable_string)
    (fun text ->
      let once = Text.Tokenizer.tokenize text in
      let twice = Text.Tokenizer.tokenize (String.concat " " once) in
      once = twice)

let suite =
  [
    Alcotest.test_case "tokenize basics" `Quick test_tokenize_basic;
    Alcotest.test_case "tokenize_clean" `Quick test_tokenize_clean;
    Alcotest.test_case "stopwords" `Quick test_stopwords;
    Alcotest.test_case "simhash identical" `Quick test_simhash_identical;
    Alcotest.test_case "simhash near vs far" `Quick test_simhash_near_and_far;
    Alcotest.test_case "simhash empty" `Quick test_simhash_empty;
    Alcotest.test_case "dedup" `Quick test_dedup;
    dedup_finds_all_within_threshold;
    Alcotest.test_case "sentiment polarity" `Quick test_sentiment_polarity;
    Alcotest.test_case "sentiment negation" `Quick test_sentiment_negation;
    Alcotest.test_case "sentiment intensifiers" `Quick test_sentiment_intensifier;
    Alcotest.test_case "sentiment bounds & classes" `Quick test_sentiment_bounds_and_classify;
    sentiment_always_bounded;
    tokenizer_idempotent;
  ]
