(* The generic set-cover engine. *)

let test_simple () =
  (* Elements 0..3; set 0 = {0,1}, set 1 = {1,2}, set 2 = {2,3}, set 3 = {0,1,2,3} *)
  let sets = [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 0; 1; 2; 3 |] |] in
  Alcotest.(check (list int)) "greedy takes the big set" [ 3 ]
    (Mqdp.Set_cover.greedy ~num_elements:4 sets);
  Alcotest.(check (list int)) "minimum too" [ 3 ]
    (Mqdp.Set_cover.minimum ~num_elements:4 sets)

let test_minimum_beats_greedy () =
  (* Classic greedy trap: the "middle" set looks best but forces 3 sets.
     Elements 0..5; optimal = {0,1,2} + {3,4,5} (2 sets); greedy takes
     {1,2,3,4} first and needs 3. *)
  let sets = [| [| 0; 1; 2 |]; [| 3; 4; 5 |]; [| 1; 2; 3; 4 |]; [| 0 |]; [| 5 |] |] in
  Alcotest.(check int) "greedy = 3" 3
    (List.length (Mqdp.Set_cover.greedy ~num_elements:6 sets));
  Alcotest.(check (list int)) "minimum = 2" [ 0; 1 ]
    (Mqdp.Set_cover.minimum ~num_elements:6 sets)

let test_bounded () =
  let sets = [| [| 0; 1; 2 |]; [| 3; 4; 5 |]; [| 1; 2; 3; 4 |]; [| 0 |]; [| 5 |] |] in
  Alcotest.(check (option (list int))) "bound 2 found" (Some [ 0; 1 ])
    (Mqdp.Set_cover.bounded ~bound:2 ~num_elements:6 sets);
  Alcotest.(check (option (list int))) "bound 1 impossible" None
    (Mqdp.Set_cover.bounded ~bound:1 ~num_elements:6 sets);
  Alcotest.(check (option (list int))) "bound 0 impossible" None
    (Mqdp.Set_cover.bounded ~bound:0 ~num_elements:6 sets)

let test_empty_universe () =
  Alcotest.(check (list int)) "greedy" [] (Mqdp.Set_cover.greedy ~num_elements:0 [||]);
  Alcotest.(check (list int)) "minimum" [] (Mqdp.Set_cover.minimum ~num_elements:0 [||])

let test_uncoverable_rejected () =
  Alcotest.check_raises "element 1 uncovered"
    (Invalid_argument "Set_cover: element 1 covered by no set") (fun () ->
      ignore (Mqdp.Set_cover.greedy ~num_elements:2 [| [| 0 |] |]))

let test_out_of_range_rejected () =
  Alcotest.check_raises "element 5 out of range"
    (Invalid_argument "Set_cover: element 5 out of range") (fun () ->
      ignore (Mqdp.Set_cover.greedy ~num_elements:2 [| [| 0; 1; 5 |] |]))

let test_node_limit () =
  (* The greedy-trap universe forces real branching (greedy incumbent 3,
     root lower bound 2), so a tiny node budget must trip. *)
  let sets = [| [| 0; 1; 2 |]; [| 3; 4; 5 |]; [| 1; 2; 3; 4 |]; [| 0 |]; [| 5 |] |] in
  Alcotest.check_raises "limit"
    (Mqdp.Set_cover.Too_large "Set_cover: exceeded 3 search nodes") (fun () ->
      ignore (Mqdp.Set_cover.minimum ~max_nodes:3 ~num_elements:6 sets))

(* Random universes: both algorithms cover; minimum <= greedy; minimum
   matches exhaustive enumeration on tiny inputs. *)
let arb_universe =
  let gen =
    QCheck.Gen.(
      let* num_elements = int_range 1 8 in
      let* num_sets = int_range 1 8 in
      let* sets =
        array_repeat num_sets
          (map Array.of_list (list_size (int_range 0 4) (int_range 0 (num_elements - 1))))
      in
      (* Guarantee coverability: one set holding everything. *)
      return (num_elements, Array.append sets [| Array.init num_elements Fun.id |]))
  in
  QCheck.make
    ~print:(fun (n, sets) ->
      Printf.sprintf "n=%d sets=[%s]" n
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun s ->
                   "{" ^ String.concat "," (Array.to_list (Array.map string_of_int s)) ^ "}")
                 sets))))
    gen

let is_cover (n, sets) chosen =
  let covered = Array.make n false in
  List.iter (fun k -> Array.iter (fun e -> covered.(e) <- true) sets.(k)) chosen;
  Array.for_all Fun.id covered

let exhaustive_minimum (n, sets) =
  let m = Array.length sets in
  let best = ref m in
  for mask = 0 to (1 lsl m) - 1 do
    let chosen = List.filter (fun k -> mask land (1 lsl k) <> 0) (List.init m Fun.id) in
    if List.length chosen < !best && is_cover (n, sets) chosen then
      best := List.length chosen
  done;
  !best

let both_cover =
  Helpers.qtest ~count:200 "greedy and minimum both cover" arb_universe
    (fun (n, sets) ->
      is_cover (n, sets) (Mqdp.Set_cover.greedy ~num_elements:n sets)
      && is_cover (n, sets) (Mqdp.Set_cover.minimum ~num_elements:n sets))

let minimum_is_minimum =
  Helpers.qtest ~count:200 "minimum matches exhaustive enumeration" arb_universe
    (fun (n, sets) ->
      List.length (Mqdp.Set_cover.minimum ~num_elements:n sets)
      = exhaustive_minimum (n, sets))

let greedy_at_least_minimum =
  Helpers.qtest ~count:200 "greedy never beats minimum" arb_universe
    (fun (n, sets) ->
      List.length (Mqdp.Set_cover.greedy ~num_elements:n sets)
      >= List.length (Mqdp.Set_cover.minimum ~num_elements:n sets))

let suite =
  [
    Alcotest.test_case "simple universe" `Quick test_simple;
    Alcotest.test_case "minimum beats greedy trap" `Quick test_minimum_beats_greedy;
    Alcotest.test_case "bounded search" `Quick test_bounded;
    Alcotest.test_case "empty universe" `Quick test_empty_universe;
    Alcotest.test_case "uncoverable rejected" `Quick test_uncoverable_rejected;
    Alcotest.test_case "out-of-range rejected" `Quick test_out_of_range_rejected;
    Alcotest.test_case "node limit" `Quick test_node_limit;
    both_cover;
    minimum_is_minimum;
    greedy_at_least_minimum;
  ]
