(* The Porter stemmer, against the vectors from Porter's 1980 paper. *)

let check_pairs pairs () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Text.Stemmer.stem input))
    pairs

let step1_pairs =
  [
    ("caresses", "caress"); ("ponies", "poni"); ("ties", "ti");
    ("caress", "caress"); ("cats", "cat"); ("feed", "feed");
    ("agreed", "agre"); ("plastered", "plaster"); ("bled", "bled");
    ("motoring", "motor"); ("sing", "sing"); ("conflated", "conflat");
    ("troubled", "troubl"); ("sized", "size"); ("hopping", "hop");
    ("tanned", "tan"); ("falling", "fall"); ("hissing", "hiss");
    ("fizzed", "fizz"); ("failing", "fail"); ("filing", "file");
    ("happy", "happi"); ("sky", "sky");
  ]

let step2_pairs =
  [
    ("relational", "relat"); ("conditional", "condit"); ("rational", "ration");
    ("valenci", "valenc"); ("hesitanci", "hesit"); ("digitizer", "digit");
    ("radicalli", "radic"); ("differentli", "differ"); ("vileli", "vile");
    ("analogousli", "analog"); ("vietnamization", "vietnam");
    ("predication", "predic"); ("operator", "oper"); ("feudalism", "feudal");
    ("decisiveness", "decis"); ("hopefulness", "hope");
    ("callousness", "callous"); ("formaliti", "formal");
    ("sensitiviti", "sensit"); ("sensibiliti", "sensibl");
  ]

let step3_pairs =
  [
    ("triplicate", "triplic"); ("formative", "form"); ("formalize", "formal");
    ("electriciti", "electr"); ("electrical", "electr"); ("hopeful", "hope");
    ("goodness", "good");
  ]

let step4_pairs =
  [
    ("revival", "reviv"); ("allowance", "allow"); ("inference", "infer");
    ("airliner", "airlin"); ("gyroscopic", "gyroscop");
    ("adjustable", "adjust"); ("defensible", "defens"); ("irritant", "irrit");
    ("replacement", "replac"); ("adjustment", "adjust");
    ("dependent", "depend"); ("adoption", "adopt"); ("homologou", "homolog");
    ("communism", "commun"); ("activate", "activ"); ("angulariti", "angular");
    ("homologous", "homolog"); ("effective", "effect");
    ("bowdlerize", "bowdler");
  ]

let step5_pairs =
  [
    ("probate", "probat"); ("rate", "rate"); ("cease", "ceas");
    ("controll", "control"); ("roll", "roll");
  ]

let everyday_pairs =
  [
    ("votes", "vote"); ("voting", "vote"); ("voted", "vote");
    ("elections", "elect"); ("running", "run"); ("flying", "fly");
    ("stocks", "stock"); ("markets", "market");
  ]

let test_short_words_untouched () =
  List.iter
    (fun w -> Alcotest.(check string) w w (Text.Stemmer.stem w))
    [ "a"; "at"; "ox"; "is" ]

let test_non_alpha_untouched () =
  List.iter
    (fun w -> Alcotest.(check string) w w (Text.Stemmer.stem w))
    [ "#nasdaq"; "b2b"; "don't"; "" ]

let test_tokenize_stemmed () =
  Alcotest.(check (list string)) "pipeline"
    [ "senat"; "vote"; "elect" ]
    (Text.Tokenizer.tokenize_stemmed "The Senate is voting on elections!")

(* Porter is famously NOT idempotent, so the meaningful invariants are:
   inflection families collapse to one stem, and output is never empty. *)
let test_family_collapses () =
  let family = [ "connect"; "connected"; "connecting"; "connection"; "connections" ] in
  List.iter
    (fun w -> Alcotest.(check string) w "connect" (Text.Stemmer.stem w))
    family

let stem_never_empty =
  Helpers.qtest "stem of alphabetic input is never empty"
    (QCheck.make
       ~print:Fun.id
       QCheck.Gen.(
         map
           (fun letters ->
             String.concat "" (List.map (String.make 1) letters))
           (list_size (int_range 1 12) (char_range 'a' 'z'))))
    (fun word -> String.length (Text.Stemmer.stem word) > 0)

let stem_never_longer =
  Helpers.qtest "stem never longer than +1 of the input"
    (QCheck.make
       QCheck.Gen.(
         map
           (fun letters ->
             String.concat "" (List.map (String.make 1) letters))
           (list_size (int_range 1 15) (char_range 'a' 'z'))))
    (fun word -> String.length (Text.Stemmer.stem word) <= String.length word + 1)

let suite =
  [
    Alcotest.test_case "step 1 vectors" `Quick (check_pairs step1_pairs);
    Alcotest.test_case "step 2 vectors" `Quick (check_pairs step2_pairs);
    Alcotest.test_case "step 3 vectors" `Quick (check_pairs step3_pairs);
    Alcotest.test_case "step 4 vectors" `Quick (check_pairs step4_pairs);
    Alcotest.test_case "step 5 vectors" `Quick (check_pairs step5_pairs);
    Alcotest.test_case "everyday inflections" `Quick (check_pairs everyday_pairs);
    Alcotest.test_case "short words untouched" `Quick test_short_words_untouched;
    Alcotest.test_case "non-alpha untouched" `Quick test_non_alpha_untouched;
    Alcotest.test_case "tokenize_stemmed" `Quick test_tokenize_stemmed;
    Alcotest.test_case "inflection family collapses" `Quick test_family_collapses;
    stem_never_empty;
    stem_never_longer;
  ]
