(* The incremental push-based engine. Its core behaviour is already pinned
   through the Stream_scan adapter; these tests cover the incremental API
   surface itself. *)

open Helpers

let mk id value labels = post ~id ~value labels

let delayed ?(plus = false) ~lambda ~tau () =
  Mqdp.Online.create ~lambda (Mqdp.Online.Delayed { tau; plus })

let test_emission_timing () =
  let engine = delayed ~lambda:10. ~tau:2. () in
  (* First post pending; deadline = min(0+2, 0+10) = 2. *)
  Alcotest.(check int) "no emission on arrival" 0
    (List.length (Mqdp.Online.push engine (mk 1 0. [ 0 ])));
  (* Next arrival at t=5 > 2: the deadline fired in between. *)
  let due = Mqdp.Online.push engine (mk 2 5. [ 0 ]) in
  (match due with
  | [ e ] ->
    Alcotest.(check int) "post 1 emitted" 1 e.Mqdp.Online.post.Mqdp.Post.id;
    Alcotest.(check (float 1e-9)) "at its deadline" 2. e.Mqdp.Online.emit_time
  | other -> Alcotest.failf "expected 1 emission, got %d" (List.length other));
  (* Post 2 is covered by post 1 (distance 5 <= lambda), nothing pending. *)
  Alcotest.(check (list unit)) "flush empty" []
    (List.map (fun _ -> ()) (Mqdp.Online.finish engine));
  Alcotest.(check int) "one distinct post emitted" 1 (Mqdp.Online.emitted_count engine)

let test_lambda_deadline_dominates () =
  (* tau large: the oldest-pending + lambda bound forces emission. *)
  let engine = delayed ~lambda:3. ~tau:100. () in
  ignore (Mqdp.Online.push engine (mk 1 0. [ 0 ]));
  ignore (Mqdp.Online.push engine (mk 2 2. [ 0 ]));
  let due = Mqdp.Online.push engine (mk 3 50. [ 0 ]) in
  (match due with
  | [ e ] ->
    Alcotest.(check int) "latest pending emitted" 2 e.Mqdp.Online.post.Mqdp.Post.id;
    Alcotest.(check (float 1e-9)) "at t_oldest + lambda" 3. e.Mqdp.Online.emit_time
  | other -> Alcotest.failf "expected 1 emission, got %d" (List.length other));
  ignore (Mqdp.Online.finish engine)

let test_out_of_order_rejected () =
  let engine = delayed ~lambda:1. ~tau:1. () in
  ignore (Mqdp.Online.push engine (mk 1 5. [ 0 ]));
  match Mqdp.Online.push engine (mk 2 4. [ 0 ]) with
  | _ -> Alcotest.fail "accepted out-of-order arrival"
  | exception Invalid_argument _ -> ()

let test_create_validation () =
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "Online.create: negative lambda") (fun () ->
      ignore (Mqdp.Online.create ~lambda:(-1.) Mqdp.Online.Instant));
  Alcotest.check_raises "negative tau"
    (Invalid_argument "Online.create: negative tau") (fun () ->
      ignore
        (Mqdp.Online.create ~lambda:1.
           (Mqdp.Online.Delayed { tau = -1.; plus = false })))

let test_instant_mode () =
  let engine = Mqdp.Online.create ~lambda:10. Mqdp.Online.Instant in
  let e1 = Mqdp.Online.push engine (mk 1 0. [ 0; 1 ]) in
  Alcotest.(check int) "first post emitted immediately" 1 (List.length e1);
  Alcotest.(check int) "covered arrival silent" 0
    (List.length (Mqdp.Online.push engine (mk 2 5. [ 0 ])));
  (* Label 2 is new: must emit even though label 0 is covered. *)
  Alcotest.(check int) "new label forces emission" 1
    (List.length (Mqdp.Online.push engine (mk 3 6. [ 0; 2 ])));
  Alcotest.(check int) "instant finish is empty" 0
    (List.length (Mqdp.Online.finish engine));
  Alcotest.(check int) "distinct emissions" 2 (Mqdp.Online.emitted_count engine)

let test_last_arrival () =
  let engine = delayed ~lambda:1. ~tau:1. () in
  Alcotest.(check (option (float 0.))) "initially none" None
    (Mqdp.Online.last_arrival engine);
  ignore (Mqdp.Online.push engine (mk 1 7. [ 0 ]));
  Alcotest.(check (option (float 0.))) "tracks pushes" (Some 7.)
    (Mqdp.Online.last_arrival engine)

let test_stream_continues_after_finish () =
  let engine = delayed ~lambda:2. ~tau:1. () in
  ignore (Mqdp.Online.push engine (mk 1 0. [ 0 ]));
  Alcotest.(check int) "finish drains" 1 (List.length (Mqdp.Online.finish engine));
  (* The service keeps running: a far-away post goes pending again. *)
  Alcotest.(check int) "accepts more pushes" 0
    (List.length (Mqdp.Online.push engine (mk 2 100. [ 0 ])));
  Alcotest.(check int) "and drains again" 1 (List.length (Mqdp.Online.finish engine))

(* Incremental push/finish must reproduce the batch adapter exactly. *)
let online_equals_batch =
  qtest ~count:150 "push/finish = Stream_scan.solve on the same posts"
    (QCheck.triple
       (arb_instance ~max_posts:30 ~max_labels:4 ~span:25. ())
       (QCheck.make QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.)))
       (QCheck.make QCheck.Gen.(float_bound_exclusive 6.)))
    (fun (inst, lambda, tau) ->
      List.for_all
        (fun plus ->
          let engine =
            Mqdp.Online.create ~lambda (Mqdp.Online.Delayed { tau; plus })
          in
          let incremental = ref [] in
          for i = 0 to Mqdp.Instance.size inst - 1 do
            incremental :=
              List.rev_append (Mqdp.Online.push engine (Mqdp.Instance.post inst i))
                !incremental
          done;
          incremental := List.rev_append (Mqdp.Online.finish engine) !incremental;
          let batch =
            Mqdp.Stream_scan.solve ~plus ~tau inst (Mqdp.Coverage.Fixed lambda)
          in
          let incremental_ids =
            List.rev_map (fun e -> e.Mqdp.Online.post.Mqdp.Post.id) !incremental
            |> List.sort_uniq Int.compare
          in
          let batch_ids =
            List.map
              (fun pos -> (Mqdp.Instance.post inst pos).Mqdp.Post.id)
              batch.Mqdp.Stream.cover
          in
          incremental_ids = List.sort Int.compare batch_ids
          && Mqdp.Online.emitted_count engine = List.length batch_ids)
        [ false; true ])

let emit_times_monotone_per_push =
  qtest ~count:150 "each push returns emissions in emit-time order"
    (arb_instance ~max_posts:25 ~max_labels:3 ~span:20. ())
    (fun inst ->
      let engine =
        Mqdp.Online.create ~lambda:2. (Mqdp.Online.Delayed { tau = 1.; plus = true })
      in
      let sorted es =
        let times = List.map (fun e -> e.Mqdp.Online.emit_time) es in
        List.sort Float.compare times = times
      in
      let ok = ref true in
      for i = 0 to Mqdp.Instance.size inst - 1 do
        if not (sorted (Mqdp.Online.push engine (Mqdp.Instance.post inst i))) then
          ok := false
      done;
      !ok && sorted (Mqdp.Online.finish engine))

let suite =
  [
    Alcotest.test_case "emission timing" `Quick test_emission_timing;
    Alcotest.test_case "lambda deadline dominates" `Quick test_lambda_deadline_dominates;
    Alcotest.test_case "out-of-order rejected" `Quick test_out_of_order_rejected;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "instant mode" `Quick test_instant_mode;
    Alcotest.test_case "last arrival" `Quick test_last_arrival;
    Alcotest.test_case "stream continues after finish" `Quick
      test_stream_continues_after_finish;
    online_equals_batch;
    emit_times_monotone_per_push;
  ]
