(* The LDA substrate: determinism, count invariants, convergence, and
   recovery of planted topics. *)

(* A tiny planted corpus: two sharply separated topics. *)
let planted_docs ~docs_per_topic ~words_per_doc ~seed =
  let rng = Util.Rng.create seed in
  (* topic 0 -> words 0..4, topic 1 -> words 5..9 *)
  let doc topic =
    Array.init words_per_doc (fun _ -> (topic * 5) + Util.Rng.int rng 5)
  in
  Array.init (2 * docs_per_topic) (fun i -> doc (i mod 2))

let test_validation () =
  Alcotest.check_raises "bad topics" (Invalid_argument "Lda.train: num_topics <= 0")
    (fun () ->
      ignore (Topics.Lda.train ~num_topics:0 ~iterations:1 ~seed:1 ~vocab_size:5 [||]));
  Alcotest.check_raises "bad word id"
    (Invalid_argument "Lda.train: word id 9 out of range") (fun () ->
      ignore
        (Topics.Lda.train ~num_topics:2 ~iterations:1 ~seed:1 ~vocab_size:5 [| [| 9 |] |]))

let test_determinism () =
  let docs = planted_docs ~docs_per_topic:10 ~words_per_doc:20 ~seed:1 in
  let train () =
    Topics.Lda.train ~num_topics:2 ~iterations:30 ~seed:7 ~vocab_size:10 docs
  in
  let a = train () and b = train () in
  Alcotest.(check (float 1e-9)) "same likelihood"
    (Topics.Lda.log_likelihood a) (Topics.Lda.log_likelihood b);
  for k = 0 to 1 do
    Alcotest.(check (list (pair int (float 1e-9))))
      (Printf.sprintf "same top words %d" k)
      (Topics.Lda.top_words a ~topic:k ~k:5)
      (Topics.Lda.top_words b ~topic:k ~k:5)
  done

let test_phi_theta_normalized () =
  let docs = planted_docs ~docs_per_topic:8 ~words_per_doc:15 ~seed:2 in
  let model = Topics.Lda.train ~num_topics:3 ~iterations:20 ~seed:3 ~vocab_size:10 docs in
  for k = 0 to 2 do
    let total = ref 0. in
    for w = 0 to 9 do
      let p = Topics.Lda.topic_word model ~topic:k ~word:w in
      Alcotest.(check bool) "phi positive" true (p > 0.);
      total := !total +. p
    done;
    Alcotest.(check bool) "phi sums to 1" true (Float.abs (!total -. 1.) < 1e-9)
  done;
  for d = 0 to Topics.Lda.num_docs model - 1 do
    let theta = Topics.Lda.doc_topics model ~doc:d in
    let total = Array.fold_left ( +. ) 0. theta in
    Alcotest.(check bool) "theta sums to 1" true (Float.abs (total -. 1.) < 1e-9)
  done

let test_gibbs_improves_likelihood () =
  let docs = planted_docs ~docs_per_topic:20 ~words_per_doc:25 ~seed:4 in
  let ll iterations =
    Topics.Lda.log_likelihood
      (Topics.Lda.train ~num_topics:2 ~iterations ~seed:5 ~vocab_size:10 docs)
  in
  Alcotest.(check bool) "50 sweeps beat 0" true (ll 50 > ll 0)

let test_planted_topic_recovery () =
  let docs = planted_docs ~docs_per_topic:30 ~words_per_doc:30 ~seed:6 in
  let model = Topics.Lda.train ~num_topics:2 ~iterations:100 ~seed:7 ~vocab_size:10 docs in
  (* The two topics' top-5 word sets must be exactly the planted pools. *)
  let tops k =
    Topics.Lda.top_words model ~topic:k ~k:5
    |> List.map fst |> List.sort Int.compare
  in
  let pool0 = [ 0; 1; 2; 3; 4 ] and pool1 = [ 5; 6; 7; 8; 9 ] in
  let t0 = tops 0 and t1 = tops 1 in
  Alcotest.(check bool) "pools recovered" true
    ((t0 = pool0 && t1 = pool1) || (t0 = pool1 && t1 = pool0));
  (* Every doc's dominant topic must match its planted topic, up to the
     label permutation. *)
  let perm = if List.hd (tops 0) = 0 then Fun.id else fun k -> 1 - k in
  let correct = ref 0 in
  for d = 0 to Topics.Lda.num_docs model - 1 do
    if perm (Topics.Lda.dominant_topic model ~doc:d) = d mod 2 then incr correct
  done;
  Alcotest.(check int) "all docs classified" (Topics.Lda.num_docs model) !correct

let test_inference_on_unseen_doc () =
  let docs = planted_docs ~docs_per_topic:30 ~words_per_doc:30 ~seed:8 in
  (* A small alpha: Mallet's default 50/K would smooth a 7-token document
     toward uniform theta regardless of the evidence. *)
  let model =
    Topics.Lda.train ~alpha:0.5 ~num_topics:2 ~iterations:100 ~seed:9 ~vocab_size:10
      docs
  in
  let unseen = [| 0; 1; 2; 0; 3; 4; 1 |] in
  let theta = Topics.Lda.infer model ~seed:10 ~iterations:50 unseen in
  let dominant = if theta.(0) > theta.(1) then 0 else 1 in
  (* Which model topic owns word 0? *)
  let owner =
    if Topics.Lda.topic_word model ~topic:0 ~word:0
       > Topics.Lda.topic_word model ~topic:1 ~word:0
    then 0
    else 1
  in
  Alcotest.(check int) "unseen doc assigned to the planted topic" owner dominant;
  Alcotest.(check bool) "confident" true (theta.(dominant) > 0.7)

let test_empty_docs_ok () =
  let model =
    Topics.Lda.train ~num_topics:2 ~iterations:5 ~seed:1 ~vocab_size:3
      [| [||]; [| 0; 1 |] |]
  in
  Alcotest.(check int) "docs" 2 (Topics.Lda.num_docs model);
  let theta = Topics.Lda.doc_topics model ~doc:0 in
  Alcotest.(check bool) "uniform theta on empty doc" true
    (Float.abs (theta.(0) -. 0.5) < 1e-9)

let vocabulary_roundtrip =
  Helpers.qtest "vocabulary intern/word roundtrip"
    QCheck.(list_of_size Gen.(int_range 1 30) printable_string)
    (fun words ->
      let v = Topics.Vocabulary.create () in
      let ids = List.map (Topics.Vocabulary.intern v) words in
      List.for_all2 (fun w id -> Topics.Vocabulary.word v id = w) words ids
      && Topics.Vocabulary.size v = List.length (List.sort_uniq String.compare words))

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "phi/theta normalized" `Quick test_phi_theta_normalized;
    Alcotest.test_case "gibbs improves likelihood" `Slow test_gibbs_improves_likelihood;
    Alcotest.test_case "planted topic recovery" `Slow test_planted_topic_recovery;
    Alcotest.test_case "inference on unseen doc" `Slow test_inference_on_unseen_doc;
    Alcotest.test_case "empty docs" `Quick test_empty_docs_ok;
    vocabulary_roundtrip;
  ]
