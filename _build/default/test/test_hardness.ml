(* The NP-hardness reductions (paper §3).

   The sound set-cover reduction must agree with DPLL in both directions.
   The published Lemma 1 construction is checked in its working direction
   (satisfiable ⇒ canonical cover of exactly the budget), and its broken
   direction is PINNED: the unsatisfiable formula (x1)∧(¬x1) admits a
   cover strictly below the budget, which contradicts the published
   proof's counting argument (see DESIGN.md §"Lemma 1 gap"). *)

let arb_small_cnf =
  let gen =
    QCheck.Gen.(
      let* num_vars = int_range 1 3 in
      let* num_clauses = int_range 1 4 in
      let* clause_size = int_range 1 (min 2 num_vars) in
      let* seed = int_range 0 1_000_000 in
      return (Sat.Cnf.random ~seed ~num_vars ~num_clauses ~clause_size))
  in
  QCheck.make ~print:(Format.asprintf "%a" Sat.Cnf.pp) gen

let test_lemma1_construction_shape () =
  (* n = 1, m = 2 ⇒ 14 posts, 5 labels (w1, u1, nu1, c1, c2), budget 7. *)
  let cnf = Sat.Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ] in
  let red = Mqdp.Hardness.of_cnf cnf in
  Alcotest.(check int) "posts" 14 (Mqdp.Instance.size red.Mqdp.Hardness.instance);
  Alcotest.(check int) "labels" 5 (Mqdp.Instance.num_labels red.Mqdp.Hardness.instance);
  Alcotest.(check int) "budget" 7 red.Mqdp.Hardness.budget;
  Alcotest.(check int) "at most 2 labels per post" 2
    (Mqdp.Instance.max_labels_per_post red.Mqdp.Hardness.instance);
  (* Times are the integers 1..2m+3. *)
  match Mqdp.Instance.span red.Mqdp.Hardness.instance with
  | Some (lo, hi) ->
    Alcotest.(check (float 0.)) "first time" 1. lo;
    Alcotest.(check (float 0.)) "last time" 7. hi
  | None -> Alcotest.fail "empty instance"

let test_lemma1_gap_pinned () =
  (* The counterexample to the published (⇐) direction. *)
  let cnf = Sat.Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "formula unsat" false (Sat.Dpll.satisfiable cnf);
  let red = Mqdp.Hardness.of_cnf cnf in
  let cover = Mqdp.Brute_force.solve red.Mqdp.Hardness.instance red.Mqdp.Hardness.lambda in
  Alcotest.(check bool) "exact cover is valid" true
    (Mqdp.Coverage.is_cover red.Mqdp.Hardness.instance red.Mqdp.Hardness.lambda cover);
  Alcotest.(check int) "minimum cover is 6 < budget 7" 6 (List.length cover);
  Alcotest.(check bool) "so the published biconditional fails" true
    (Mqdp.Hardness.satisfiable_via_cover red)

let test_empty_clause_rejected () =
  let cnf = Sat.Cnf.make ~num_vars:1 [ [] ] in
  Alcotest.check_raises "lemma1" (Invalid_argument "Hardness.of_cnf: empty clause")
    (fun () -> ignore (Mqdp.Hardness.of_cnf cnf));
  Alcotest.check_raises "set-cover"
    (Invalid_argument "Hardness.of_cnf_set_cover: empty clause") (fun () ->
      ignore (Mqdp.Hardness.of_cnf_set_cover cnf))

let test_set_cover_construction_shape () =
  let cnf = Sat.Cnf.make ~num_vars:3 [ [ 1; -2 ]; [ 2; 3 ] ] in
  let red = Mqdp.Hardness.of_cnf_set_cover cnf in
  Alcotest.(check int) "two posts per variable" 6
    (Mqdp.Instance.size red.Mqdp.Hardness.instance);
  Alcotest.(check int) "budget = n" 3 red.Mqdp.Hardness.budget;
  (* All posts share one timestamp. *)
  match Mqdp.Instance.span red.Mqdp.Hardness.instance with
  | Some (lo, hi) -> Alcotest.(check (float 0.)) "degenerate span" lo hi
  | None -> Alcotest.fail "empty instance"

let lemma1_forward =
  Helpers.qtest ~count:80 "Lemma 1 (⇒): satisfying assignment gives a budget cover"
    arb_small_cnf
    (fun cnf ->
      match Sat.Dpll.solve cnf with
      | None -> true
      | Some assignment ->
        let red = Mqdp.Hardness.of_cnf cnf in
        let witness = Mqdp.Hardness.cover_of_assignment red assignment in
        List.length witness = red.Mqdp.Hardness.budget
        && Mqdp.Coverage.is_cover red.Mqdp.Hardness.instance red.Mqdp.Hardness.lambda
             witness)

let set_cover_sound =
  Helpers.qtest ~count:80 "set-cover reduction: SAT iff cover <= n" arb_small_cnf
    (fun cnf ->
      let red = Mqdp.Hardness.of_cnf_set_cover cnf in
      Sat.Dpll.satisfiable cnf = Mqdp.Hardness.satisfiable_via_cover red)

let set_cover_decodes =
  Helpers.qtest ~count:80 "set-cover reduction: budget covers decode to models"
    arb_small_cnf
    (fun cnf ->
      let red = Mqdp.Hardness.of_cnf_set_cover cnf in
      match Mqdp.Hardness.budget_cover red with
      | None -> not (Sat.Dpll.satisfiable cnf)
      | Some cover ->
        Sat.Cnf.eval cnf (Mqdp.Hardness.assignment_of_cover red cover))

let set_cover_witness =
  Helpers.qtest ~count:80 "set-cover reduction: models encode to budget covers"
    arb_small_cnf
    (fun cnf ->
      match Sat.Dpll.solve cnf with
      | None -> true
      | Some assignment ->
        let red = Mqdp.Hardness.of_cnf_set_cover cnf in
        let witness = Mqdp.Hardness.cover_of_assignment red assignment in
        List.length witness = red.Mqdp.Hardness.budget
        && Mqdp.Coverage.is_cover red.Mqdp.Hardness.instance red.Mqdp.Hardness.lambda
             witness)

let suite =
  [
    Alcotest.test_case "Lemma 1 construction shape" `Quick test_lemma1_construction_shape;
    Alcotest.test_case "Lemma 1 gap: pinned counterexample" `Quick test_lemma1_gap_pinned;
    Alcotest.test_case "empty clauses rejected" `Quick test_empty_clause_rejected;
    Alcotest.test_case "set-cover construction shape" `Quick
      test_set_cover_construction_shape;
    lemma1_forward;
    set_cover_sound;
    set_cover_decodes;
    set_cover_witness;
  ]
