(* Baseline selectors and the coverage-fraction comparison metric. *)

open Helpers

let line_instance n =
  instance_of (List.init n (fun i -> post ~id:i ~value:(float_of_int i) [ 0 ]))

let test_uniform () =
  let inst = line_instance 11 in
  Alcotest.(check (list int)) "quantiles" [ 0; 5; 10 ]
    (Mqdp.Baselines.uniform inst ~k:3);
  Alcotest.(check (list int)) "k=1" [ 0 ] (Mqdp.Baselines.uniform inst ~k:1);
  Alcotest.(check (list int)) "k=0" [] (Mqdp.Baselines.uniform inst ~k:0);
  Alcotest.(check int) "k > n clamps" 11
    (List.length (Mqdp.Baselines.uniform inst ~k:99))

let test_random_sample () =
  let inst = line_instance 20 in
  let sample = Mqdp.Baselines.random_sample ~seed:1 inst ~k:5 in
  Alcotest.(check int) "size" 5 (List.length sample);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq Int.compare sample));
  Alcotest.(check (list int)) "deterministic" sample
    (Mqdp.Baselines.random_sample ~seed:1 inst ~k:5);
  List.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 20))
    sample

let test_dispersion () =
  let inst = line_instance 11 in
  (* Extremes first, then the midpoint. *)
  Alcotest.(check (list int)) "extremes + middle" [ 0; 5; 10 ]
    (Mqdp.Baselines.max_min_dispersion inst ~k:3);
  Alcotest.(check (list int)) "k=2 extremes" [ 0; 10 ]
    (Mqdp.Baselines.max_min_dispersion inst ~k:2)

let test_coverage_fraction () =
  let inst = line_instance 5 in
  let lambda = Mqdp.Coverage.Fixed 1. in
  Alcotest.(check (float 1e-9)) "full cover" 1.
    (Mqdp.Baselines.coverage_fraction inst lambda [ 0; 1; 2; 3; 4 ]);
  (* Post 2 covers values 1..3 of 5 pairs. *)
  Alcotest.(check (float 1e-9)) "middle post covers 3/5" 0.6
    (Mqdp.Baselines.coverage_fraction inst lambda [ 2 ]);
  Alcotest.(check (float 1e-9)) "empty cover" 0.
    (Mqdp.Baselines.coverage_fraction inst lambda [])

let test_negative_k_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Baselines: negative k")
    (fun () -> ignore (Mqdp.Baselines.uniform (line_instance 3) ~k:(-1)))

let mqdp_beats_baselines_at_equal_budget =
  qtest ~count:100 "at the MQDP cover's budget, baselines never cover more"
    (arb_instance ~max_posts:40 ~max_labels:4 ~span:40. ())
    (fun inst ->
      let lambda = Mqdp.Coverage.Fixed 2. in
      let cover = Mqdp.Greedy_sc.solve inst lambda in
      let k = List.length cover in
      let frac sel = Mqdp.Baselines.coverage_fraction inst lambda sel in
      frac cover = 1.
      && frac (Mqdp.Baselines.uniform inst ~k) <= 1.
      && frac (Mqdp.Baselines.random_sample ~seed:7 inst ~k) <= 1.
      && frac (Mqdp.Baselines.max_min_dispersion inst ~k) <= 1.)

let dispersion_structure =
  qtest ~count:100 "dispersion keeps the extremes and the requested size"
    (arb_instance ~max_posts:30 ~max_labels:2 ~span:30. ())
    (fun inst ->
      let n = Mqdp.Instance.size inst in
      let k = min 4 n in
      let sel = Mqdp.Baselines.max_min_dispersion inst ~k in
      List.length sel = min k n
      && (k < 2 || n < 2 || (List.mem 0 sel && List.mem (n - 1) sel)))

let suite =
  [
    Alcotest.test_case "uniform quantiles" `Quick test_uniform;
    Alcotest.test_case "random sample" `Quick test_random_sample;
    Alcotest.test_case "max-min dispersion" `Quick test_dispersion;
    Alcotest.test_case "coverage fraction" `Quick test_coverage_fraction;
    Alcotest.test_case "negative k rejected" `Quick test_negative_k_rejected;
    mqdp_beats_baselines_at_equal_budget;
    dispersion_structure;
  ]
