(* Coverage semantics: the paper's Example 1 and 2 (its Figure 2), plus
   directional per-post lambda and the uncovered diagnostics. *)

open Helpers

(* Figure 2: P1{a}, P2{a}, P3{a,c}, P4{c}, consecutive gaps all Δt. *)
let figure2 dt =
  instance_of
    [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:dt [ 0 ];
      post ~id:3 ~value:(2. *. dt) [ 0; 1 ]; post ~id:4 ~value:(3. *. dt) [ 1 ] ]

let test_example1 () =
  let dt = 1. in
  let inst = figure2 dt in
  let lambda = Mqdp.Coverage.Fixed dt in
  let p i = Mqdp.Instance.post inst (i - 1) in
  (* P2 λ-covers a∈P1 and a∈P3; P1 λ-covers a∈P2; P3 λ-covers c∈P4 ... *)
  Alcotest.(check bool) "P2 covers a in P1" true
    (Mqdp.Coverage.covers_label lambda ~by:(p 2) 0 (p 1));
  Alcotest.(check bool) "P2 covers a in P3" true
    (Mqdp.Coverage.covers_label lambda ~by:(p 2) 0 (p 3));
  Alcotest.(check bool) "P1 covers a in P2" true
    (Mqdp.Coverage.covers_label lambda ~by:(p 1) 0 (p 2));
  Alcotest.(check bool) "P3 covers c in P4" true
    (Mqdp.Coverage.covers_label lambda ~by:(p 3) 1 (p 4));
  Alcotest.(check bool) "P4 covers c in P3" true
    (Mqdp.Coverage.covers_label lambda ~by:(p 4) 1 (p 3));
  (* Cross-label coverage never holds. *)
  Alcotest.(check bool) "P4 cannot cover a in P3" false
    (Mqdp.Coverage.covers_label lambda ~by:(p 4) 0 (p 3));
  (* Distance beyond λ never covers. *)
  Alcotest.(check bool) "P1 cannot cover a in P3" false
    (Mqdp.Coverage.covers_label lambda ~by:(p 1) 0 (p 3))

let test_example2 () =
  let inst = figure2 1. in
  let lambda = Mqdp.Coverage.Fixed 1. in
  (* {P2, P4} λ-covers P (positions 1 and 3). *)
  Alcotest.(check bool) "P2,P4 is a cover" true
    (Mqdp.Coverage.is_cover inst lambda [ 1; 3 ]);
  (* {P2} alone leaves the c pairs uncovered. *)
  Alcotest.(check bool) "P2 alone is not" false
    (Mqdp.Coverage.is_cover inst lambda [ 1 ]);
  Alcotest.(check (list (pair int int))) "uncovered pairs are the c ones"
    [ (2, 1); (3, 1) ]
    (Mqdp.Coverage.uncovered inst lambda [ 1 ])

let test_post_covered () =
  let inst = figure2 1. in
  let lambda = Mqdp.Coverage.Fixed 1. in
  let p i = Mqdp.Instance.post inst (i - 1) in
  (* P3 carries both labels: needs an a-cover and a c-cover. *)
  Alcotest.(check bool) "P3 covered by {P2, P4}" true
    (Mqdp.Coverage.post_covered lambda ~by:[ p 2; p 4 ] (p 3));
  Alcotest.(check bool) "P3 not covered by {P2}" false
    (Mqdp.Coverage.post_covered lambda ~by:[ p 2 ] (p 3));
  Alcotest.(check bool) "self-coverage" true
    (Mqdp.Coverage.post_covered lambda ~by:[ p 3 ] (p 3))

let test_same_timestamp_different_labels () =
  (* The paper's key point: same value, disjoint labels — no coverage. *)
  let inst = instance_of [ post ~id:1 ~value:5. [ 0 ]; post ~id:2 ~value:5. [ 1 ] ] in
  let lambda = Mqdp.Coverage.Fixed 10. in
  Alcotest.(check bool) "neither covers the other" false
    (Mqdp.Coverage.is_cover inst lambda [ 0 ]);
  Alcotest.(check bool) "both needed" true (Mqdp.Coverage.is_cover inst lambda [ 0; 1 ])

let test_directional_lambda () =
  (* Pi covers Pj but not vice versa when radius(Pi) > gap > radius(Pj). *)
  let inst = instance_of [ post ~id:1 ~value:0. [ 0 ]; post ~id:2 ~value:2. [ 0 ] ] in
  let radius p _ = if p.Mqdp.Post.id = 1 then 3. else 1. in
  let lambda = Mqdp.Coverage.Per_post_label radius in
  let p1 = Mqdp.Instance.post inst 0 and p2 = Mqdp.Instance.post inst 1 in
  Alcotest.(check bool) "P1 covers P2" true
    (Mqdp.Coverage.covers_label lambda ~by:p1 0 p2);
  Alcotest.(check bool) "P2 does not cover P1" false
    (Mqdp.Coverage.covers_label lambda ~by:p2 0 p1);
  Alcotest.(check bool) "{P1} is a cover" true (Mqdp.Coverage.is_cover inst lambda [ 0 ]);
  Alcotest.(check bool) "{P2} is not" false (Mqdp.Coverage.is_cover inst lambda [ 1 ])

let test_bad_positions_rejected () =
  let inst = figure2 1. in
  Alcotest.check_raises "position out of range"
    (Invalid_argument "Coverage: cover position out of range") (fun () ->
      ignore (Mqdp.Coverage.is_cover inst (Mqdp.Coverage.Fixed 1.) [ 9 ]))

let full_set_is_cover =
  qtest "the full post set always covers" (arb_instance ()) (fun inst ->
      Mqdp.Coverage.is_cover inst (Mqdp.Coverage.Fixed 0.)
        (List.init (Mqdp.Instance.size inst) Fun.id))

let uncovered_iff_not_cover =
  qtest "uncovered = [] iff is_cover"
    (QCheck.pair (arb_instance ()) QCheck.(small_nat))
    (fun (inst, k) ->
      let lambda = Mqdp.Coverage.Fixed 1.5 in
      let n = Mqdp.Instance.size inst in
      let cover = List.init (min k n) Fun.id in
      Mqdp.Coverage.is_cover inst lambda cover
      = (Mqdp.Coverage.uncovered inst lambda cover = []))

let uncovered_agrees_with_post_covered =
  qtest "uncovered pairs agree with post_covered" (arb_instance_lambda ())
    (fun (inst, l) ->
      let lambda = Mqdp.Coverage.Fixed l in
      let n = Mqdp.Instance.size inst in
      let cover = List.filter (fun i -> i mod 2 = 0) (List.init n Fun.id) in
      let by = List.map (Mqdp.Instance.post inst) cover in
      let bad = Mqdp.Coverage.uncovered inst lambda cover in
      List.for_all
        (fun i ->
          let fully = Mqdp.Coverage.post_covered lambda ~by (Mqdp.Instance.post inst i) in
          fully = not (List.exists (fun (j, _) -> j = i) bad))
        (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "paper Example 1" `Quick test_example1;
    Alcotest.test_case "paper Example 2" `Quick test_example2;
    Alcotest.test_case "post_covered (Definition 1)" `Quick test_post_covered;
    Alcotest.test_case "same value, different labels" `Quick
      test_same_timestamp_different_labels;
    Alcotest.test_case "directional per-post lambda" `Quick test_directional_lambda;
    Alcotest.test_case "bad positions rejected" `Quick test_bad_positions_rejected;
    full_set_is_cover;
    uncovered_iff_not_cover;
    uncovered_agrees_with_post_covered;
  ]
