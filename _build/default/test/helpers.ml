(* Shared generators and assertions for the test suite. *)

let post ~id ~value labels =
  Mqdp.Post.make ~id ~value ~labels:(Mqdp.Label_set.of_list labels)

let instance_of posts = Mqdp.Instance.create posts

(* A compact printable description of an instance, for QCheck failures. *)
let describe_instance inst =
  Mqdp.Instance.posts inst
  |> Array.to_list
  |> List.map (fun p ->
         Printf.sprintf "(%g,{%s})" p.Mqdp.Post.value
           (String.concat ","
              (List.map string_of_int (Mqdp.Label_set.to_list p.Mqdp.Post.labels))))
  |> String.concat " "

(* Random small instances: n posts over [0, span) with 1..max_per labels
   drawn from [0, num_labels). Integral values with probability 1/2 to
   exercise ties. *)
let gen_instance ?(max_posts = 14) ?(max_labels = 3) ?(max_per = 3) ?(span = 12.) () =
  let open QCheck.Gen in
  let* n = int_range 1 max_posts in
  let* num_labels = int_range 1 max_labels in
  let* integral = bool in
  let gen_value =
    if integral then map float_of_int (int_range 0 (int_of_float span))
    else float_bound_exclusive span
  in
  let gen_labels =
    let* k = int_range 1 (min max_per num_labels) in
    list_repeat k (int_range 0 (num_labels - 1))
  in
  let gen_post id =
    let* value = gen_value in
    let* labels = gen_labels in
    return (post ~id ~value labels)
  in
  let* posts = flatten_l (List.init n gen_post) in
  return (instance_of posts)

let arb_instance ?max_posts ?max_labels ?max_per ?span () =
  QCheck.make ~print:describe_instance (gen_instance ?max_posts ?max_labels ?max_per ?span ())

let gen_lambda = QCheck.Gen.(map (fun l -> 0.5 +. l) (float_bound_exclusive 4.))

let arb_instance_lambda ?max_posts ?max_labels ?max_per ?span () =
  QCheck.make
    ~print:(fun (inst, l) -> Printf.sprintf "lambda=%g %s" l (describe_instance inst))
    QCheck.Gen.(
      pair (gen_instance ?max_posts ?max_labels ?max_per ?span ()) gen_lambda)

let check_cover name inst lambda cover =
  if not (Mqdp.Coverage.is_cover inst lambda cover) then
    QCheck.Test.fail_reportf "%s produced a non-cover on %s" name
      (describe_instance inst);
  true

(* Wrap a QCheck property as an alcotest case. *)
let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let sorted_ints = Alcotest.(list int)
