test/test_index.ml: Alcotest Array Format Helpers Index List Printf QCheck String Text
