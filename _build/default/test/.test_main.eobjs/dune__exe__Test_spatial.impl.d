test/test_spatial.ml: Alcotest Float Helpers List Mqdp Printf QCheck Workload
