test/test_hardness.ml: Alcotest Format Helpers List Mqdp QCheck Sat
