test/test_baselines.ml: Alcotest Helpers Int List Mqdp
