test/test_coverage.ml: Alcotest Fun Helpers List Mqdp QCheck
