test/test_label_set.ml: Alcotest Gen Helpers Int List Mqdp QCheck Set String
