test/test_ranked.ml: Alcotest Float Gen Helpers Index Int List QCheck String
