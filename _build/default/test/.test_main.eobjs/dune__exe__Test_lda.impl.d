test/test_lda.ml: Alcotest Array Float Fun Gen Helpers Int List Printf QCheck String Topics Util
