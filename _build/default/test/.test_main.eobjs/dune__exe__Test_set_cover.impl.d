test/test_set_cover.ml: Alcotest Array Fun Helpers List Mqdp Printf QCheck String
