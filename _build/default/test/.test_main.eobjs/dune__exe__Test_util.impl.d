test/test_util.ml: Alcotest Array Float Fun Gen Helpers Int List Printf QCheck Util
