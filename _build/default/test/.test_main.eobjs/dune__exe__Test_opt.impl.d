test/test_opt.ml: Alcotest Helpers List Mqdp QCheck Util
