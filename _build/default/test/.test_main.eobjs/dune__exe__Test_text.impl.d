test/test_text.ml: Alcotest Gen Helpers List QCheck String Text
