test/test_stemmer.ml: Alcotest Fun Helpers List QCheck String Text
