test/test_online.ml: Alcotest Float Helpers Int List Mqdp QCheck
