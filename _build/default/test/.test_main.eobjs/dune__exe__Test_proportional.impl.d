test/test_proportional.ml: Alcotest Float Helpers List Mqdp
