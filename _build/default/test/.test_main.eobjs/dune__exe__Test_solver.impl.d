test/test_solver.ml: Alcotest Helpers List Mqdp QCheck String
