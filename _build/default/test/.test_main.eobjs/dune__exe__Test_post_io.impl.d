test/test_post_io.ml: Alcotest Filename Fun Helpers List Mqdp QCheck String Sys Workload
