test/test_metrics.ml: Alcotest Float Fun Helpers List Mqdp
