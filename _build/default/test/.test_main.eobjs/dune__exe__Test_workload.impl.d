test/test_workload.ml: Alcotest Array Float List Mqdp Printf String Text Util Workload
