test/test_algorithms.ml: Alcotest Array Helpers List Mqdp QCheck
