test/test_integration.ml: Alcotest Array Hashtbl Index Int List Mqdp Printf String Topics Workload
