test/test_instance.ml: Alcotest Array Fun Helpers List Mqdp Util
