test/helpers.ml: Alcotest Array List Mqdp Printf QCheck QCheck_alcotest String
