test/test_streaming.ml: Alcotest Array Float Helpers List Mqdp Printf QCheck
