test/test_sat.ml: Alcotest Format Helpers List Printf QCheck Sat
