(* Differential fuzzer: cross-checks every solver against the exact ones
   on randomized instances until a time budget expires. Exits non-zero and
   prints the reproducing seed on the first discrepancy — the tool to run
   after touching any algorithm.

   usage: mqdp_fuzz [seconds (default 10)] [start-seed (default 1)] *)

let random_instance rng =
  let n = 2 + Util.Rng.int rng 12 in
  let num_labels = 1 + Util.Rng.int rng 3 in
  let span = 4 + Util.Rng.int rng 10 in
  let integral = Util.Rng.bool rng in
  let posts =
    List.init n (fun id ->
        let value =
          if integral then float_of_int (Util.Rng.int rng span)
          else Util.Rng.float rng (float_of_int span)
        in
        let k = 1 + Util.Rng.int rng (min 3 num_labels) in
        let labels =
          List.init k (fun _ -> Util.Rng.int rng num_labels)
        in
        Mqdp.Post.make ~id ~value ~labels:(Mqdp.Label_set.of_list labels))
  in
  Mqdp.Instance.create posts

exception Discrepancy of string

let check ~seed cond message =
  if not cond then
    raise (Discrepancy (Printf.sprintf "seed %d: %s" seed message))

let one_round seed =
  let rng = Util.Rng.create seed in
  let inst = random_instance rng in
  let l = 0.5 +. Util.Rng.float rng 3.5 in
  let lambda = Mqdp.Coverage.Fixed l in
  let tau = Util.Rng.float rng 6. in
  let optimal = List.length (Mqdp.Brute_force.solve inst lambda) in
  check ~seed
    (List.length (Mqdp.Opt.solve inst lambda) = optimal)
    "OPT disagrees with brute force";
  let s = Mqdp.Instance.max_labels_per_post inst in
  List.iter
    (fun algo ->
      let result = Mqdp.Solver.solve algo inst lambda in
      check ~seed
        (Mqdp.Coverage.is_cover inst lambda result.Mqdp.Solver.cover)
        (Mqdp.Solver.algorithm_name algo ^ " returned a non-cover");
      check ~seed
        (result.Mqdp.Solver.size >= optimal)
        (Mqdp.Solver.algorithm_name algo ^ " beat the optimum"))
    [ Mqdp.Solver.Greedy_sc; Mqdp.Solver.Greedy_sc_heap; Mqdp.Solver.Scan;
      Mqdp.Solver.Scan_plus ];
  check ~seed
    (List.length (Mqdp.Scan.solve inst lambda) <= s * optimal)
    "Scan exceeded its s-approximation bound";
  List.iter
    (fun algo ->
      let result = Mqdp.Solver.solve_stream algo ~tau inst lambda in
      let effective_tau = match algo with Mqdp.Solver.Instant -> 0. | _ -> tau in
      check ~seed
        (Mqdp.Coverage.is_cover inst lambda result.Mqdp.Solver.stream.Mqdp.Stream.cover)
        (Mqdp.Solver.streaming_algorithm_name algo ^ " returned a non-cover");
      check ~seed
        (Mqdp.Stream.check_deadline ~tau:effective_tau inst result.Mqdp.Solver.stream)
        (Mqdp.Solver.streaming_algorithm_name algo ^ " violated its deadline"))
    Mqdp.Solver.all_streaming_algorithms;
  let offline_scan = Mqdp.Scan.solve inst lambda in
  let streaming_scan =
    Mqdp.Stream_scan.solve ~plus:false ~tau:(l +. 0.25) inst lambda
  in
  check ~seed
    (streaming_scan.Mqdp.Stream.cover = offline_scan)
    "StreamScan with tau > lambda diverged from offline Scan";
  (* The instant bound of Section 5.1. *)
  let instant =
    List.length (Mqdp.Stream_scan.solve_instant inst lambda).Mqdp.Stream.cover
  in
  check ~seed (instant <= 2 * s * optimal) "instant output exceeded 2s bound"

let () =
  let seconds =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 10.
  in
  let seed0 = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let start = Unix.gettimeofday () in
  let rounds = ref 0 and seed = ref seed0 in
  (try
     while Unix.gettimeofday () -. start < seconds do
       one_round !seed;
       incr rounds;
       incr seed
     done;
     Printf.printf "fuzz: %d rounds clean in %.1fs (seeds %d..%d)\n" !rounds seconds
       seed0 (!seed - 1)
   with Discrepancy message ->
     Printf.eprintf "fuzz: DISCREPANCY after %d rounds — %s\n" !rounds message;
     exit 1)
