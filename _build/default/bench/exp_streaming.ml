(* Figures 9-12: streaming effectiveness. *)

let fixed l = Mqdp.Coverage.Fixed l

let stream_size algo ~tau inst lambda =
  (Mqdp.Solver.solve_stream algo ~tau inst lambda).Mqdp.Solver.stream_size

let algos =
  [ ("sscan", Mqdp.Solver.Stream_scan); ("sscan+", Mqdp.Solver.Stream_scan_plus);
    ("sgreedy", Mqdp.Solver.Stream_greedy);
    ("sgreedy+", Mqdp.Solver.Stream_greedy_plus) ]

(* Mean relative error of a streaming algorithm vs the clairvoyant optimum
   (offline OPT on the same interval), as the paper defines it. *)
let mean_error ~seeds ~make_instance ~lambda ~tau algo =
  let total = ref 0. and kept = ref 0 in
  for seed = 1 to seeds do
    let inst = make_instance seed in
    match Harness.opt_size_opt inst lambda with
    | None -> ()
    | Some optimal when optimal > 0 ->
      incr kept;
      total :=
        !total
        +. Harness.relative_error ~approx:(stream_size algo ~tau inst lambda) ~optimal
    | Some _ -> ()
  done;
  if !kept = 0 then None else Some (!total /. float_of_int !kept)

let cell = function
  | None -> "skip"
  | Some x -> Harness.f3 x

let error_table ~seeds ~make_instance ~x_header rows_spec =
  let rows =
    List.map
      (fun (x_label, lambda, tau) ->
        x_label
        :: List.map
             (fun (_, algo) -> cell (mean_error ~seeds ~make_instance ~lambda ~tau algo))
             algos)
      rows_spec
  in
  Harness.table (x_header :: List.map fst algos) rows

let fig9 () =
  Harness.section ~id:"fig9"
    ~paper:"Figure 9: streaming relative error vs lambda, for tau = 5/10/15s (|L|=2)"
    ~expect:"errors grow with lambda; StreamGreedySC+ slightly better than StreamGreedySC";
  Printf.printf "scale: 10-min slices at 18 posts/min, 6 seeds per point\n";
  let make_instance seed = Workloads.ten_minute ~labels:2 ~seed () in
  List.iter
    (fun tau ->
      Printf.printf "\ntau = %gs:\n" tau;
      error_table ~seeds:6 ~make_instance ~x_header:"lambda(s)"
        (List.map (fun l -> (Harness.f2 l, fixed l, tau)) [ 5.; 10.; 15.; 20.; 25.; 30. ]))
    [ 5.; 10.; 15. ]

let fig10 () =
  Harness.section ~id:"fig10"
    ~paper:"Figure 10: streaming relative error vs tau, for lambda = 10/15/20s (|L|=2)"
    ~expect:
      "scan-based errors stabilize once tau >= lambda; greedy errors dip near \
       tau = lambda and bump around tau slightly above 2*lambda (the \
       'in-between posts' effect)";
  Printf.printf "scale: 10-min slices at 18 posts/min, 10 seeds per point\n";
  let make_instance seed = Workloads.ten_minute ~labels:2 ~seed () in
  List.iter
    (fun lambda_s ->
      Printf.printf "\nlambda = %gs:\n" lambda_s;
      let taus =
        [ 1.; 0.25 *. lambda_s; 0.5 *. lambda_s; lambda_s; 1.5 *. lambda_s;
          2. *. lambda_s; 2.2 *. lambda_s; 2.5 *. lambda_s; 3. *. lambda_s;
          4. *. lambda_s ]
      in
      error_table ~seeds:10 ~make_instance ~x_header:"tau(s)"
        (List.map (fun tau -> (Harness.f2 tau, fixed lambda_s, tau)) taus))
    [ 10.; 15.; 20. ]

let fig11 () =
  Harness.section ~id:"fig11"
    ~paper:"Figure 11: streaming absolute sizes vs overlap (|L|=2, lambda=10s, tau=5s)"
    ~expect:
      "greedy variants win at high overlap, scan variants competitive near \
       overlap 1 (Scan optimal per label)";
  Printf.printf "scale: 10-min slices at 18 posts/min, 6 seeds per bucket\n\n";
  let lambda = fixed 10. and tau = 5. in
  let rows =
    List.map
      (fun overlap ->
        let size (_, algo) =
          Harness.mean_over_seeds ~seeds:6 (fun seed ->
              let inst = Workloads.ten_minute ~overlap ~labels:2 ~seed () in
              float_of_int (stream_size algo ~tau inst lambda))
        in
        Harness.f2 overlap :: List.map (fun a -> Harness.f2 (size a)) algos)
      [ 1.1; 1.4; 1.7; 2.0 ]
  in
  Harness.table ("overlap" :: List.map fst algos) rows

let fig12 () =
  Harness.section ~id:"fig12"
    ~paper:"Figure 12: streaming sizes on one day vs |L| (tau=30s, lambda=10/30min)"
    ~expect:"same ordering as offline Figure 8; StreamGreedySC beats StreamGreedySC+ at large lambda";
  let tau = 30. in
  List.iter
    (fun lambda_minutes ->
      let lambda = fixed (lambda_minutes *. 60.) in
      Printf.printf "\nlambda = %.0f minutes:\n" lambda_minutes;
      let rows =
        List.map
          (fun labels ->
            let inst = Workloads.one_day ~labels ~seed:42 in
            string_of_int labels
            :: string_of_int (Mqdp.Instance.size inst)
            :: List.map
                 (fun (_, algo) -> string_of_int (stream_size algo ~tau inst lambda))
                 algos)
          [ 2; 5; 10; 20 ]
      in
      Harness.table ("|L|" :: "posts" :: List.map fst algos) rows)
    [ 10.; 30. ]
