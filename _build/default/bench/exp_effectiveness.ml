(* Figures 6-8: offline effectiveness. *)

let fixed l = Mqdp.Coverage.Fixed l

let approx_size algo inst lambda =
  (Mqdp.Solver.solve algo inst lambda).Mqdp.Solver.size

(* Mean relative error vs OPT over seeds; skips seeds where OPT blows up
   and reports how many were kept. *)
let mean_error ~seeds ~make_instance ~lambda algo =
  let total = ref 0. and kept = ref 0 in
  for seed = 1 to seeds do
    let inst = make_instance seed in
    match Harness.opt_size_opt inst lambda with
    | None -> ()
    | Some optimal when optimal > 0 ->
      incr kept;
      total :=
        !total
        +. Harness.relative_error ~approx:(approx_size algo inst lambda) ~optimal
    | Some _ -> ()
  done;
  if !kept = 0 then None else Some (!total /. float_of_int !kept)

let cell = function
  | None -> "skip"
  | Some x -> Harness.f3 x

let fig6 () =
  Harness.section ~id:"fig6"
    ~paper:"Figure 6: relative error vs post overlap rate (|L|=3, lambda=5s, 10min)"
    ~expect:
      "GreedySC error below Scan/Scan+ except near overlap 1 where Scan is \
       optimal; absolute sizes drop as overlap grows";
  Printf.printf "scale: 10-min slices at 18 posts/min, 6 seeds per point\n\n";
  let overlaps = [ 1.0; 1.2; 1.4; 1.6; 1.8; 2.0; 2.2 ] in
  let lambda = fixed 5. in
  let rows =
    List.map
      (fun overlap ->
        let make_instance seed =
          Workloads.ten_minute ~overlap ~labels:3 ~seed ()
        in
        let err algo = cell (mean_error ~seeds:6 ~make_instance ~lambda algo) in
        let size =
          Harness.mean_over_seeds ~seeds:6 (fun seed ->
              float_of_int (approx_size Mqdp.Solver.Greedy_sc (make_instance seed) lambda))
        in
        [ Harness.f2 overlap; err Mqdp.Solver.Scan; err Mqdp.Solver.Scan_plus;
          err Mqdp.Solver.Greedy_sc; Harness.f2 size ])
      overlaps
  in
  Harness.table
    [ "overlap"; "scan err"; "scan+ err"; "greedy err"; "greedy |Z| (6d)" ]
    rows

let fig7 () =
  Harness.section ~id:"fig7"
    ~paper:"Figure 7: relative error vs lambda (|L|=2, 10min)"
    ~expect:"all approximation errors grow with lambda (more choices, harder problem)";
  Printf.printf "scale: 10-min slices at 18 posts/min, 6 seeds per point\n\n";
  let lambdas = [ 5.; 10.; 15.; 20.; 25.; 30. ] in
  let rows =
    List.map
      (fun l ->
        let lambda = fixed l in
        let make_instance seed = Workloads.ten_minute ~labels:2 ~seed () in
        let err algo = cell (mean_error ~seeds:6 ~make_instance ~lambda algo) in
        [ Harness.f2 l; err Mqdp.Solver.Scan; err Mqdp.Solver.Scan_plus;
          err Mqdp.Solver.Greedy_sc ])
      lambdas
  in
  Harness.table [ "lambda(s)"; "scan err"; "scan+ err"; "greedy err" ] rows

let fig8 () =
  Harness.section ~id:"fig8"
    ~paper:"Figure 8: solution sizes on one day vs |L| (lambda = 10min / 30min)"
    ~expect:
      "Scan roughly linear in |L| (independent per-label passes); GreedySC \
       smallest, and its margin grows with |L|";
  let label_sizes = [ 2; 5; 10; 20 ] in
  List.iter
    (fun lambda_minutes ->
      let lambda = fixed (lambda_minutes *. 60.) in
      Printf.printf "\nlambda = %.0f minutes (1%% of the paper's volume):\n"
        lambda_minutes;
      let rows =
        List.map
          (fun labels ->
            let inst = Workloads.one_day ~labels ~seed:42 in
            let size algo = approx_size algo inst lambda in
            [ string_of_int labels;
              string_of_int (Mqdp.Instance.size inst);
              string_of_int (size Mqdp.Solver.Greedy_sc);
              string_of_int (size Mqdp.Solver.Scan);
              string_of_int (size Mqdp.Solver.Scan_plus) ])
          label_sizes
      in
      Harness.table [ "|L|"; "posts"; "greedy |Z|"; "scan |Z|"; "scan+ |Z|" ] rows)
    [ 10.; 30. ]
