bench/exp_effectiveness.ml: Harness List Mqdp Printf Workloads
