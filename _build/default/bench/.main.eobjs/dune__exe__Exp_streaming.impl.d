bench/exp_streaming.ml: Harness List Mqdp Printf Workloads
